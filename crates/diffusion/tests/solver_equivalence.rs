//! Property tests for the unified diffusion solver: cold solves must be
//! bit-identical to the legacy [`FjEngine`] iteration, and warm-start
//! solves must be bit-identical to cold solves across random graphs,
//! inputs, and incremental seed sequences — the invariant that lets the
//! DM greedy take the warm path while keeping selection digests
//! byte-identical.

// The deprecated FjEngine iteration is the independent reference this
// suite checks the solver against.
#![allow(deprecated)]

use proptest::prelude::*;
use std::sync::Arc;
use vom_diffusion::{DiffusionSystem, FjEngine, SolveOptions, Solver};
use vom_graph::builder::graph_from_edges;
use vom_graph::{Node, SocialGraph};

/// Strategy: a random small weighted digraph + opinions + stubbornness.
fn arb_system() -> impl Strategy<Value = (SocialGraph, Vec<f64>, Vec<f64>)> {
    (3usize..12).prop_flat_map(|n| {
        let edges =
            proptest::collection::vec((0..n as Node, 0..n as Node, 0.1f64..5.0), 1..(3 * n));
        let opinions = proptest::collection::vec(0.0f64..=1.0, n);
        let stubbornness = proptest::collection::vec(0.0f64..=1.0, n);
        (edges, opinions, stubbornness).prop_map(move |(edges, b0, d)| {
            let g = graph_from_edges(n, &edges).expect("valid random edges");
            (g, b0, d)
        })
    })
}

fn bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cold_solve_is_bit_identical_to_fj_engine(
        (g, b0, d) in arb_system(),
        t in 0usize..15,
        raw_seeds in proptest::collection::vec(0u32..12, 0..4),
    ) {
        let n = g.num_nodes() as Node;
        let seeds: Vec<Node> = raw_seeds.iter().map(|s| s % n).collect();
        let engine = FjEngine::new(&g, &b0, &d).unwrap();
        let system = Arc::new(DiffusionSystem::new(&g, &b0, &d).unwrap());
        let mut solver = Solver::new(system);
        solver.solve(&seeds, &SolveOptions::exact(t));
        prop_assert_eq!(bits(solver.opinions()), bits(&engine.opinions_at(t, &seeds)));
    }

    #[test]
    fn warm_solve_is_bit_identical_to_cold_solve(
        (g, b0, d) in arb_system(),
        t in 1usize..15,
        committed in proptest::collection::vec(0u32..12, 0..3),
        trials in proptest::collection::vec(0u32..12, 1..5),
    ) {
        // The DM greedy shape: record a baseline for the committed set,
        // then evaluate committed ∪ {trial} for a sequence of trial nodes
        // against the same baseline.
        let n = g.num_nodes() as Node;
        let committed: Vec<Node> = committed.iter().map(|s| s % n).collect();
        let system = Arc::new(DiffusionSystem::new(&g, &b0, &d).unwrap());
        let mut warm = Solver::new(Arc::clone(&system));
        let mut cold = Solver::new(Arc::clone(&system));
        warm.solve(&committed, &SolveOptions::exact(t).recording());
        for trial in trials {
            let mut seeds = committed.clone();
            seeds.push(trial % n);
            let report = warm.solve(&seeds, &SolveOptions::exact(t).warm());
            prop_assert!(report.warm, "matching baseline must take the warm path");
            cold.solve(&seeds, &SolveOptions::exact(t));
            prop_assert_eq!(bits(warm.opinions()), bits(cold.opinions()));
        }
    }

    #[test]
    fn warm_equivalence_survives_growing_the_committed_set(
        (g, b0, d) in arb_system(),
        t in 1usize..12,
        picks in proptest::collection::vec(0u32..12, 1..5),
    ) {
        // Re-record after each commit, exactly like the greedy loop does,
        // and check the next warm evaluation still matches cold.
        let n = g.num_nodes() as Node;
        let system = Arc::new(DiffusionSystem::new(&g, &b0, &d).unwrap());
        let mut warm = Solver::new(Arc::clone(&system));
        let mut cold = Solver::new(Arc::clone(&system));
        let mut committed: Vec<Node> = Vec::new();
        for pick in picks {
            warm.solve(&committed, &SolveOptions::exact(t).recording());
            committed.push(pick % n);
            let report = warm.solve(&committed, &SolveOptions::exact(t).warm());
            prop_assert!(report.warm);
            cold.solve(&committed, &SolveOptions::exact(t));
            prop_assert_eq!(bits(warm.opinions()), bits(cold.opinions()));
        }
    }

    #[test]
    fn convergence_tolerance_bounds_the_residual(
        (g, b0, d) in arb_system(),
        eps in 1e-9f64..1e-3,
    ) {
        let system = Arc::new(DiffusionSystem::new(&g, &b0, &d).unwrap());
        let mut solver = Solver::new(system);
        let report = solver.solve(&[], &SolveOptions::exact(2000).with_tolerance(eps));
        if report.converged {
            prop_assert!(report.residual < eps);
        } else {
            prop_assert_eq!(report.steps, 2000);
        }
    }
}
