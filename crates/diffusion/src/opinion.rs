//! The `r × n` opinion matrix `B`.

use crate::error::{validate_unit_range, DiffusionError};
use crate::Result;
use vom_graph::Candidate;

/// All users' opinions about all candidates: `b_qv ∈ [0, 1]` is user `v`'s
/// opinion about candidate `c_q`. Stored row-major (one contiguous row per
/// candidate) so score computations stream each candidate's opinions.
#[derive(Debug, Clone, PartialEq)]
pub struct OpinionMatrix {
    r: usize,
    n: usize,
    data: Vec<f64>,
}

impl OpinionMatrix {
    /// An all-zeros matrix for `r` candidates and `n` users.
    pub fn zeros(r: usize, n: usize) -> Self {
        OpinionMatrix {
            r,
            n,
            data: vec![0.0; r * n],
        }
    }

    /// Reassembles a matrix from its persisted row-major data (snapshot
    /// load). Only the shape is validated — the values are whatever the
    /// diffusion produced, which a `[0, 1]` check must not second-guess
    /// bit-for-bit.
    pub fn from_flat(r: usize, n: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != r * n {
            return Err(DiffusionError::LengthMismatch {
                what: "opinion matrix data",
                got: data.len(),
                expected: r * n,
            });
        }
        Ok(OpinionMatrix { r, n, data })
    }

    /// The row-major backing data (`r·n` values) — what a snapshot writer
    /// serializes verbatim.
    pub fn flat_data(&self) -> &[f64] {
        &self.data
    }

    /// Builds from per-candidate rows, validating lengths and the `[0, 1]`
    /// range.
    pub fn from_rows(rows: Vec<Vec<f64>>) -> Result<Self> {
        if rows.is_empty() {
            return Err(DiffusionError::NoCandidates);
        }
        let n = rows[0].len();
        for row in &rows {
            if row.len() != n {
                return Err(DiffusionError::LengthMismatch {
                    what: "opinion row",
                    got: row.len(),
                    expected: n,
                });
            }
            validate_unit_range("opinion", row)?;
        }
        let r = rows.len();
        let mut data = Vec::with_capacity(r * n);
        for row in rows {
            data.extend_from_slice(&row);
        }
        Ok(OpinionMatrix { r, n, data })
    }

    /// Number of candidates `r`.
    #[inline]
    pub fn num_candidates(&self) -> usize {
        self.r
    }

    /// Number of users `n`.
    #[inline]
    pub fn num_users(&self) -> usize {
        self.n
    }

    /// Candidate `q`'s opinion row `B_q` (length `n`).
    #[inline]
    pub fn row(&self, q: Candidate) -> &[f64] {
        debug_assert!(q < self.r);
        &self.data[q * self.n..(q + 1) * self.n]
    }

    /// Mutable access to candidate `q`'s row.
    #[inline]
    pub fn row_mut(&mut self, q: Candidate) -> &mut [f64] {
        debug_assert!(q < self.r);
        &mut self.data[q * self.n..(q + 1) * self.n]
    }

    /// `b_qv`: user `v`'s opinion about candidate `q`.
    #[inline]
    pub fn get(&self, q: Candidate, v: u32) -> f64 {
        self.data[q * self.n + v as usize]
    }

    /// Sets `b_qv`.
    #[inline]
    pub fn set(&mut self, q: Candidate, v: u32, value: f64) {
        self.data[q * self.n + v as usize] = value;
    }

    /// Replaces candidate `q`'s row.
    pub fn set_row(&mut self, q: Candidate, row: &[f64]) {
        self.row_mut(q).copy_from_slice(row);
    }

    /// Validates every entry is in `[0, 1]`.
    pub fn validate(&self) -> Result<()> {
        validate_unit_range("opinion", &self.data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_roundtrip() {
        let m = OpinionMatrix::from_rows(vec![vec![0.4, 0.8], vec![0.35, 0.75]]).unwrap();
        assert_eq!(m.num_candidates(), 2);
        assert_eq!(m.num_users(), 2);
        assert_eq!(m.row(0), &[0.4, 0.8]);
        assert_eq!(m.get(1, 1), 0.75);
    }

    #[test]
    fn rejects_ragged_rows() {
        let e = OpinionMatrix::from_rows(vec![vec![0.4], vec![0.3, 0.2]]).unwrap_err();
        assert!(matches!(e, DiffusionError::LengthMismatch { .. }));
    }

    #[test]
    fn rejects_empty_and_out_of_range() {
        assert_eq!(
            OpinionMatrix::from_rows(vec![]).unwrap_err(),
            DiffusionError::NoCandidates
        );
        assert!(OpinionMatrix::from_rows(vec![vec![1.5]]).is_err());
    }

    #[test]
    fn set_and_mutate() {
        let mut m = OpinionMatrix::zeros(2, 3);
        m.set(1, 2, 0.9);
        assert_eq!(m.get(1, 2), 0.9);
        m.set_row(0, &[0.1, 0.2, 0.3]);
        assert_eq!(m.row(0), &[0.1, 0.2, 0.3]);
        m.row_mut(0)[0] = 0.5;
        assert_eq!(m.get(0, 0), 0.5);
        m.validate().unwrap();
    }
}
