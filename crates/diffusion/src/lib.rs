#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # vom-diffusion
//!
//! Opinion-formation models over a [`vom_graph::SocialGraph`]: the
//! **DeGroot** model and its stubbornness extension, the
//! **Friedkin–Johnsen (FJ)** model, exactly as used by the paper
//! (§II-A, Equations 1–2):
//!
//! ```text
//! B_q^(t+1) = B_q^(t) · W_q · (I − D_q) + B_q^(0) · D_q
//! ```
//!
//! The crate provides:
//!
//! * [`OpinionMatrix`] — the `r × n` matrix `B` of user opinions in `[0,1]`;
//! * [`FjEngine`] — an allocation-free exact engine computing `B_q^(t)[S]`
//!   for any seed set `S` by sparse matrix–vector iteration (the paper's
//!   **DM** building block);
//! * [`Instance`] — a full multi-candidate problem instance bundling, per
//!   candidate, the influence matrix `W_q`, initial opinions `B_q^(0)`,
//!   stubbornness `D_q`, and any pre-committed seed sets for non-target
//!   candidates;
//! * convergence analysis and per-step opinion-change tracking
//!   ([`convergence`], used by the paper's Appendix B / Figure 18).
//!
//! Seeding a node `s` for candidate `c_q` sets `b_qs^(0) = 1` **and**
//! `d_qs = 1` (fully stubborn at the maximum opinion), per §II-C. Engines
//! take seed sets as parameters rather than mutated inputs so that greedy
//! seed selection can evaluate thousands of candidate sets without copying.
//!
//! # Example
//!
//! The paper's Figure-1 running example at `t = 1` (Table I):
//!
//! ```
//! use vom_diffusion::FjEngine;
//! use vom_graph::builder::graph_from_edges;
//!
//! let g = graph_from_edges(4, &[(0, 2, 1.0), (1, 2, 1.0), (2, 3, 1.0)])?;
//! let engine = FjEngine::new(
//!     &g,
//!     &[0.40, 0.80, 0.60, 0.90], // initial opinions about the target
//!     &[0.0, 0.0, 0.5, 0.5],     // stubbornness
//! )?;
//!
//! // No seeds: users 3 and 4 average their in-neighbors with themselves.
//! let b1 = engine.opinions_at(1, &[]);
//! assert!((b1[2] - 0.60).abs() < 1e-12);
//! assert!((b1[3] - 0.75).abs() < 1e-12);
//!
//! // Seeding user 3 (paper seed set {3}) pins her at 1 and lifts user 4.
//! let seeded = engine.opinions_at(1, &[2]);
//! assert_eq!(seeded[2], 1.0);
//! assert!((seeded[3] - 0.95).abs() < 1e-12);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod budget;
pub mod campaign;
pub mod convergence;
pub mod degroot;
pub mod error;
pub mod fj;
pub mod opinion;
pub mod shared;
pub mod solver;
pub mod stubbornness;

pub use budget::{CostBudget, CostMeter};
pub use campaign::{CandidateData, Instance};
pub use error::DiffusionError;
pub use fj::{DiffusionBuffer, FjEngine};
pub use opinion::OpinionMatrix;
pub use shared::SharedValues;
pub use solver::{
    set_warm_start_enabled, warm_start_enabled, Baseline, DiffusionSystem, PooledSolver,
    SolveOptions, SolveReport, Solver, SolverCounters, SolverPool,
};
pub use stubbornness::Stubbornness;

/// Crate-wide result type.
pub type Result<T> = std::result::Result<T, DiffusionError>;
