//! Multi-candidate problem instances.

use crate::error::{validate_unit_range, DiffusionError};
use crate::fj::FjEngine;
use crate::opinion::OpinionMatrix;
use crate::shared::SharedValues;
use crate::solver::{DiffusionSystem, SolveOptions, Solver};
use crate::Result;
use std::sync::{Arc, OnceLock};
use vom_graph::{Candidate, Node, SocialGraph};

/// Everything that defines one candidate's campaign: her influence matrix
/// `W_q` (candidates may share the `Arc`), initial opinions `B_q^(0)`,
/// stubbornness diagonal `D_q`, and seeds already committed at time 0.
///
/// `fixed_seeds` implements the paper's general setting (§II-C Remark 2):
/// non-target candidates may have seed sets placed at time 0; the target's
/// seeds are chosen *relative to* those placements. They default to empty,
/// matching the paper's w.l.o.g. exposition.
#[derive(Debug, Clone)]
pub struct CandidateData {
    /// Influence matrix `W_q` (wrapped in the graph).
    pub graph: Arc<SocialGraph>,
    /// Initial opinions `B_q^(0)` of every user about this candidate —
    /// a window into the instance's shared opinion buffer when built via
    /// [`Instance::shared`] (structure-of-arrays storage).
    pub initial: SharedValues,
    /// Stubbornness diagonal `D_q` — one buffer shared by all candidates
    /// when built via [`Instance::shared`].
    pub stubbornness: SharedValues,
    /// Seeds committed for this candidate at time 0.
    pub fixed_seeds: Vec<Node>,
    /// Lazily built solver system (CSR copy of `graph` + `initial`/
    /// `stubbornness`), shared by every [`Solver`] over this candidate.
    system: OnceLock<Arc<DiffusionSystem>>,
}

impl CandidateData {
    /// Builds and validates one candidate's data (no fixed seeds).
    /// Accepts plain `Vec<f64>`s or [`SharedValues`] windows into buffers
    /// shared with other candidates.
    pub fn new(
        graph: Arc<SocialGraph>,
        initial: impl Into<SharedValues>,
        stubbornness: impl Into<SharedValues>,
    ) -> Result<Self> {
        let data = CandidateData {
            graph,
            initial: initial.into(),
            stubbornness: stubbornness.into(),
            fixed_seeds: Vec::new(),
            system: OnceLock::new(),
        };
        data.validate()?;
        Ok(data)
    }

    /// Adds pre-committed seeds.
    pub fn with_fixed_seeds(mut self, seeds: Vec<Node>) -> Self {
        self.fixed_seeds = seeds;
        self
    }

    fn validate(&self) -> Result<()> {
        let n = self.graph.num_nodes();
        if self.initial.len() != n {
            return Err(DiffusionError::LengthMismatch {
                what: "initial opinions",
                got: self.initial.len(),
                expected: n,
            });
        }
        if self.stubbornness.len() != n {
            return Err(DiffusionError::LengthMismatch {
                what: "stubbornness",
                got: self.stubbornness.len(),
                expected: n,
            });
        }
        validate_unit_range("initial opinion", &self.initial)?;
        validate_unit_range("stubbornness", &self.stubbornness)?;
        Ok(())
    }

    /// An exact FJ engine over this candidate's inputs.
    pub fn engine(&self) -> FjEngine<'_> {
        FjEngine::new(&self.graph, &self.initial, &self.stubbornness)
            .expect("validated at construction")
    }

    /// The candidate's [`DiffusionSystem`], built on first use and cached:
    /// the solver-owned CSR layout every cold and warm solve iterates.
    /// Cloning shares the cache; [`Instance::candidate_mut`] invalidates it.
    pub fn system(&self) -> &Arc<DiffusionSystem> {
        self.system.get_or_init(|| {
            Arc::new(
                DiffusionSystem::new(&self.graph, &self.initial, &self.stubbornness)
                    .expect("validated at construction"),
            )
        })
    }

    /// Installs a prebuilt system into the lazy cache — the snapshot-load
    /// path hands the deserialized [`DiffusionSystem`] here so every
    /// solver over this candidate shares one `Arc` (the DM backend
    /// asserts that identity). Returns the cached system: the existing
    /// one wins if the cache was already populated.
    pub fn install_system(&self, system: Arc<DiffusionSystem>) -> &Arc<DiffusionSystem> {
        self.system.get_or_init(|| system)
    }
}

/// A full FJ-Vote problem instance: `r` concurrent, independent campaigns
/// over the same user base (§II). Seed selection (in `vom-core`) chooses
/// seeds for one *target* candidate; this type computes the opinion matrix
/// `B^(t)[S]` those selections are scored on.
#[derive(Debug, Clone)]
pub struct Instance {
    candidates: Vec<CandidateData>,
    n: usize,
}

impl Instance {
    /// Builds an instance from per-candidate data; all candidates must
    /// cover the same user base.
    pub fn from_candidates(candidates: Vec<CandidateData>) -> Result<Self> {
        if candidates.is_empty() {
            return Err(DiffusionError::NoCandidates);
        }
        let n = candidates[0].graph.num_nodes();
        for c in &candidates {
            c.validate()?;
            if c.graph.num_nodes() != n {
                return Err(DiffusionError::LengthMismatch {
                    what: "candidate graph nodes",
                    got: c.graph.num_nodes(),
                    expected: n,
                });
            }
        }
        Ok(Instance { candidates, n })
    }

    /// Common case: every candidate shares the same influence matrix and
    /// stubbornness (as in the paper's running example and experiments);
    /// only the initial opinions differ.
    ///
    /// Storage is structure-of-arrays: all `r` candidates alias **one**
    /// stubbornness buffer and hold per-row windows into **one** flat
    /// `r × n` opinion buffer, instead of `r` private copies — at large
    /// `n` this is the dominant per-candidate memory term.
    pub fn shared(
        graph: Arc<SocialGraph>,
        initial: OpinionMatrix,
        stubbornness: Vec<f64>,
    ) -> Result<Self> {
        let r = initial.num_candidates();
        // The matrix's own row width (length mismatches against the graph
        // are still reported by `CandidateData::new`, not a window panic).
        let n = initial.flat_data().len() / r.max(1);
        let flat: Arc<[f64]> = initial.flat_data().into();
        let stubbornness = SharedValues::from(stubbornness);
        let mut candidates = Vec::with_capacity(r);
        for q in 0..r {
            candidates.push(CandidateData::new(
                Arc::clone(&graph),
                SharedValues::window(Arc::clone(&flat), q * n, n),
                stubbornness.clone(),
            )?);
        }
        Instance::from_candidates(candidates)
    }

    /// Number of users `n`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of candidates `r`.
    #[inline]
    pub fn num_candidates(&self) -> usize {
        self.candidates.len()
    }

    /// Candidate `q`'s data.
    pub fn candidate(&self, q: Candidate) -> &CandidateData {
        &self.candidates[q]
    }

    /// Mutable candidate data (e.g. to commit fixed seeds). Drops the
    /// candidate's cached [`DiffusionSystem`] since the caller may change
    /// the inputs it was built from; it is rebuilt lazily on next use.
    pub fn candidate_mut(&mut self, q: Candidate) -> &mut CandidateData {
        self.candidates[q].system = OnceLock::new();
        &mut self.candidates[q]
    }

    /// The target candidate's graph (used by walk generation / BFS).
    pub fn graph_of(&self, q: Candidate) -> &Arc<SocialGraph> {
        &self.candidates[q].graph
    }

    /// Checks `q < r`.
    pub fn check_candidate(&self, q: Candidate) -> Result<()> {
        if q >= self.candidates.len() {
            return Err(DiffusionError::CandidateOutOfBounds {
                candidate: q,
                r: self.candidates.len(),
            });
        }
        Ok(())
    }

    /// Opinions of candidate `q` at horizon `t`, with `extra_seeds` added
    /// on top of the candidate's fixed seeds.
    pub fn opinions_of(&self, q: Candidate, t: usize, extra_seeds: &[Node]) -> Vec<f64> {
        let c = &self.candidates[q];
        let mut solver = Solver::new(Arc::clone(c.system()));
        if c.fixed_seeds.is_empty() {
            solver.solve(extra_seeds, &SolveOptions::exact(t));
        } else {
            let mut seeds = c.fixed_seeds.clone();
            seeds.extend_from_slice(extra_seeds);
            solver.solve(&seeds, &SolveOptions::exact(t));
        }
        solver.opinions().to_vec()
    }

    /// The full opinion matrix `B^(t)[S]`: seeds `S` applied to the
    /// `target` candidate, every candidate's fixed seeds applied, all
    /// campaigns diffusing concurrently and independently (§II-B).
    pub fn opinions_at(&self, t: usize, target: Candidate, seeds: &[Node]) -> OpinionMatrix {
        let mut m = OpinionMatrix::zeros(self.num_candidates(), self.n);
        for q in 0..self.num_candidates() {
            let row = if q == target {
                self.opinions_of(q, t, seeds)
            } else {
                self.opinions_of(q, t, &[])
            };
            m.set_row(q, &row);
        }
        m
    }

    /// Opinions of every *non-target* candidate at horizon `t` (their seed
    /// sets are fixed, so this can be computed once and cached by the seed
    /// selectors — the `O((r−1)·t·m)` term of §V's complexity analysis).
    pub fn non_target_opinions(&self, t: usize, target: Candidate) -> OpinionMatrix {
        let mut m = OpinionMatrix::zeros(self.num_candidates(), self.n);
        for q in 0..self.num_candidates() {
            if q != target {
                m.set_row(q, &self.opinions_of(q, t, &[]));
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vom_graph::builder::graph_from_edges;

    fn running_instance() -> Instance {
        let g = Arc::new(graph_from_edges(4, &[(0, 2, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap());
        let initial = OpinionMatrix::from_rows(vec![
            vec![0.40, 0.80, 0.60, 0.90],
            vec![0.35, 0.75, 0.90, 0.90],
        ])
        .unwrap();
        Instance::shared(g, initial, vec![0.0, 0.0, 0.5, 0.5]).unwrap()
    }

    #[test]
    fn shared_instance_builds() {
        let inst = running_instance();
        assert_eq!(inst.num_nodes(), 4);
        assert_eq!(inst.num_candidates(), 2);
        inst.check_candidate(1).unwrap();
        assert!(inst.check_candidate(2).is_err());
    }

    #[test]
    fn opinions_at_applies_seeds_to_target_only() {
        let inst = running_instance();
        let b = inst.opinions_at(1, 0, &[2]);
        // Target row matches Table I seed {3} (1-indexed).
        assert_eq!(b.row(0), &[0.40, 0.80, 1.00, 0.95]);
        // Competitor row is seedless.
        let c2 = inst.opinions_of(1, 1, &[]);
        assert_eq!(b.row(1), c2.as_slice());
    }

    #[test]
    fn fixed_seeds_participate_for_non_targets() {
        let mut inst = running_instance();
        inst.candidate_mut(1).fixed_seeds = vec![0];
        let b = inst.opinions_at(1, 0, &[]);
        assert_eq!(b.get(1, 0), 1.0, "competitor's fixed seed is applied");
    }

    #[test]
    fn fixed_seeds_combine_with_extra_seeds_for_target() {
        let mut inst = running_instance();
        inst.candidate_mut(0).fixed_seeds = vec![0];
        let row = inst.opinions_of(0, 1, &[1]);
        assert_eq!(row[0], 1.0);
        assert_eq!(row[1], 1.0);
    }

    #[test]
    fn non_target_opinions_skips_target_row() {
        let inst = running_instance();
        let m = inst.non_target_opinions(1, 0);
        assert!(m.row(0).iter().all(|&b| b == 0.0));
        assert!(m.row(1).iter().any(|&b| b > 0.0));
    }

    #[test]
    fn mismatched_candidate_sizes_rejected() {
        let g1 = Arc::new(graph_from_edges(2, &[(0, 1, 1.0)]).unwrap());
        let g2 = Arc::new(graph_from_edges(3, &[(0, 1, 1.0)]).unwrap());
        let c1 = CandidateData::new(g1, vec![0.5, 0.5], vec![0.0, 0.0]).unwrap();
        let c2 = CandidateData::new(g2, vec![0.5; 3], vec![0.0; 3]).unwrap();
        assert!(Instance::from_candidates(vec![c1, c2]).is_err());
    }

    #[test]
    fn per_candidate_graphs_are_allowed() {
        // Different W per candidate (topic-aware IM setting, §II-A).
        let ga = Arc::new(graph_from_edges(2, &[(0, 1, 1.0)]).unwrap());
        let gb = Arc::new(graph_from_edges(2, &[(1, 0, 1.0)]).unwrap());
        let ca = CandidateData::new(ga, vec![0.9, 0.0], vec![0.0, 0.0]).unwrap();
        let cb = CandidateData::new(gb, vec![0.0, 0.9], vec![0.0, 0.0]).unwrap();
        let inst = Instance::from_candidates(vec![ca, cb]).unwrap();
        let b = inst.opinions_at(1, 0, &[]);
        assert_eq!(b.row(0), &[0.9, 0.9]);
        assert_eq!(b.row(1), &[0.9, 0.9]);
    }
}
