//! Deterministic cost budgets for cooperative cancellation.
//!
//! A [`CostBudget`] is a deadline measured in **work units** ("ticks"),
//! not wall-clock time: solver iteration steps, scored candidates, warm
//! frontier states — quantities that are identical at every thread
//! width and on every machine. A [`CostMeter`] accumulates charges
//! against that budget while a selection runs; greedy loops consult
//! [`CostMeter::exhausted`] at their sequential iteration checkpoints
//! and stop committing seeds once the budget is spent, leaving a valid
//! CELF-consistent prefix.
//!
//! # Determinism contract
//!
//! * **Charges** may come from anywhere, including parallel workers —
//!   the total is a commutative sum, so it is schedule-independent at
//!   any barrier.
//! * **Exhaustion checks** must happen only in *sequential* code, at
//!   points where every outstanding parallel charge has been joined
//!   (greedy iteration boundaries, CELF pop boundaries). Checking
//!   mid-parallel-region would tie the answer to thread interleaving.
//! * **Never** derive a budget or a charge from a wall clock
//!   (`Instant`, `elapsed()`, `as_millis()` …). The `vom-audit`
//!   `d-degrade-prefix` lint enforces this; wall-clock→tick calibration
//!   belongs in the (audit-exempt) bench crate only.
//!
//! Tick magnitudes: one tick per dense solver step per node batch is
//! too fine; the convention used across the workspace is **one tick
//! per solver iteration step** (cold or dense-fallback), **one tick
//! per warm frontier state**, and **one tick per scored candidate**.
//! Absolute calibration does not matter for correctness — only that
//! the schedule of charges is deterministic.

use std::sync::atomic::{AtomicU64, Ordering};

/// A deadline in deterministic work units. See the module docs for the
/// tick convention.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostBudget {
    /// Total ticks the query may spend before degrading.
    pub ticks: u64,
}

impl CostBudget {
    /// A budget of `ticks` work units.
    pub fn ticks(ticks: u64) -> CostBudget {
        CostBudget { ticks }
    }
}

/// A progress meter charging work against a [`CostBudget`].
///
/// Shareable across threads (charges are atomic adds, so the total at
/// any join point is schedule-independent); exhaustion must only be
/// consulted from sequential checkpoints — see the module docs.
#[derive(Debug)]
pub struct CostMeter {
    limit: u64,
    /// Every charge is multiplied by this factor. 1 in production; the
    /// fault-injection harness inflates it to force degradation at a
    /// deterministic point without hand-tuning budgets per dataset.
    scale: u64,
    spent: AtomicU64,
}

impl CostMeter {
    /// A meter over `budget` with the production scale of 1.
    pub fn new(budget: CostBudget) -> CostMeter {
        CostMeter::with_scale(budget, 1)
    }

    /// A meter whose charges are inflated `scale`× (fault injection;
    /// `scale` is clamped to at least 1).
    pub fn with_scale(budget: CostBudget, scale: u64) -> CostMeter {
        CostMeter {
            limit: budget.ticks,
            scale: scale.max(1),
            spent: AtomicU64::new(0),
        }
    }

    /// Records `ticks` work units (times the meter's scale).
    #[inline]
    pub fn charge(&self, ticks: u64) {
        if ticks != 0 {
            self.spent
                .fetch_add(ticks.saturating_mul(self.scale), Ordering::Relaxed);
        }
    }

    /// Total ticks charged so far (scale included).
    #[inline]
    pub fn spent(&self) -> u64 {
        self.spent.load(Ordering::Relaxed)
    }

    /// The budget limit this meter enforces.
    #[inline]
    pub fn limit(&self) -> u64 {
        self.limit
    }

    /// Whether the budget is spent. Only meaningful at sequential
    /// checkpoints (see the module docs); greedy loops that observe
    /// `true` stop before committing another seed.
    #[inline]
    pub fn exhausted(&self) -> bool {
        self.spent() >= self.limit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_and_exhaust() {
        let m = CostMeter::new(CostBudget::ticks(10));
        assert!(!m.exhausted());
        m.charge(4);
        m.charge(0); // no-op
        assert_eq!(m.spent(), 4);
        assert!(!m.exhausted());
        m.charge(6);
        assert!(m.exhausted());
        assert_eq!(m.limit(), 10);
    }

    #[test]
    fn scale_inflates_charges() {
        let m = CostMeter::with_scale(CostBudget::ticks(100), 50);
        m.charge(1);
        assert_eq!(m.spent(), 50);
        m.charge(1);
        assert!(m.exhausted());
        // Scale 0 clamps to 1 (a zero scale would disable the budget).
        let m = CostMeter::with_scale(CostBudget::ticks(2), 0);
        m.charge(1);
        assert_eq!(m.spent(), 1);
    }

    #[test]
    fn parallel_charges_sum_deterministically() {
        let m = CostMeter::new(CostBudget::ticks(u64::MAX));
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        m.charge(3);
                    }
                });
            }
        });
        assert_eq!(m.spent(), 8 * 1000 * 3);
    }

    #[test]
    fn zero_budget_is_exhausted_immediately() {
        let m = CostMeter::new(CostBudget::ticks(0));
        assert!(m.exhausted());
    }
}
