//! Structure-of-arrays storage for per-candidate node vectors.
//!
//! An [`crate::Instance`] holds `r` candidates over the same `n` users;
//! in the common shared-graph setting every candidate carries the same
//! stubbornness diagonal and a row of one `r × n` opinion matrix. Storing
//! those as `r` independent `Vec<f64>`s duplicates the stubbornness
//! `r − 1` times and scatters the opinion rows across `r` allocations —
//! at 10⁶ nodes that is 8 MB of pure waste per extra candidate.
//!
//! [`SharedValues`] is a window into one reference-counted `f64` buffer:
//! candidates alias a single backing allocation (one flat opinion buffer,
//! one stubbornness vector) and each hold only a `(ptr, offset, len)`
//! view. It dereferences to `&[f64]`, so every consumer that used to take
//! the `Vec` slices compiles unchanged.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable window into a shared `f64` buffer.
///
/// Behaves like a `&[f64]` (via `Deref`), compares by value, and clones
/// by bumping the backing buffer's reference count. Construct one from a
/// `Vec<f64>` (sole owner of its backing buffer) or with
/// [`SharedValues::window`] to alias a slice of an existing buffer.
#[derive(Clone)]
pub struct SharedValues {
    data: Arc<[f64]>,
    offset: usize,
    len: usize,
}

impl SharedValues {
    /// A view of `data[offset..offset + len]`.
    ///
    /// # Panics
    ///
    /// Panics if the window exceeds the buffer.
    pub fn window(data: Arc<[f64]>, offset: usize, len: usize) -> Self {
        assert!(
            offset.checked_add(len).is_some_and(|end| end <= data.len()),
            "window {offset}..{} exceeds buffer of {}",
            offset + len,
            data.len()
        );
        SharedValues { data, offset, len }
    }

    /// The viewed values as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data[self.offset..self.offset + self.len]
    }

    /// Whether two views alias the same backing buffer (not just equal
    /// values). Memory accounting uses this to count a shared buffer once.
    pub fn same_backing(&self, other: &SharedValues) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }

    /// Heap bytes of the full backing buffer (not just this window).
    /// Callers that sum across views should dedup with
    /// [`SharedValues::same_backing`].
    pub fn backing_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<f64>()
    }
}

impl Deref for SharedValues {
    type Target = [f64];

    #[inline]
    fn deref(&self) -> &[f64] {
        self.as_slice()
    }
}

impl From<Vec<f64>> for SharedValues {
    fn from(v: Vec<f64>) -> Self {
        let len = v.len();
        SharedValues {
            data: v.into(),
            offset: 0,
            len,
        }
    }
}

impl From<&[f64]> for SharedValues {
    fn from(v: &[f64]) -> Self {
        v.to_vec().into()
    }
}

impl PartialEq for SharedValues {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Vec<f64>> for SharedValues {
    fn eq(&self, other: &Vec<f64>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<[f64]> for SharedValues {
    fn eq(&self, other: &[f64]) -> bool {
        self.as_slice() == other
    }
}

impl std::fmt::Debug for SharedValues {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_round_trip_and_equality() {
        let v = vec![0.1, 0.2, 0.3];
        let s = SharedValues::from(v.clone());
        assert_eq!(s.len(), 3);
        assert_eq!(&s[..], &v[..]);
        assert_eq!(s, v);
        assert_eq!(s.to_vec(), v);
        assert_eq!(s, SharedValues::from(v));
    }

    #[test]
    fn windows_alias_one_buffer() {
        let flat: Arc<[f64]> = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0].into();
        let a = SharedValues::window(Arc::clone(&flat), 0, 3);
        let b = SharedValues::window(Arc::clone(&flat), 3, 3);
        assert_eq!(&a[..], &[1.0, 2.0, 3.0]);
        assert_eq!(&b[..], &[4.0, 5.0, 6.0]);
        assert!(a.same_backing(&b));
        assert_eq!(a.backing_bytes(), 6 * 8);
        // Independent buffers do not alias.
        assert!(!a.same_backing(&SharedValues::from(a.to_vec())));
    }

    #[test]
    fn clone_shares_rather_than_copies() {
        let s = SharedValues::from(vec![0.5; 4]);
        let c = s.clone();
        assert!(s.same_backing(&c));
        assert_eq!(s, c);
    }

    #[test]
    #[should_panic(expected = "exceeds buffer")]
    fn out_of_bounds_window_panics() {
        let flat: Arc<[f64]> = vec![0.0; 4].into();
        let _ = SharedValues::window(flat, 2, 3);
    }
}
