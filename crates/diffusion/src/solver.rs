//! The unified sparse diffusion solver behind every exact FJ evaluation.
//!
//! Three historical entry points ([`FjEngine::opinions_at`],
//! [`FjEngine::opinions_at_with`], [`crate::convergence::run_until_convergence`])
//! each re-ran the full `O(t·m)` fixed-horizon iteration from scratch.
//! This module collapses them behind one API — [`Solver::solve`] — built
//! on three pieces:
//!
//! * [`DiffusionSystem`] — the candidate's influence system in a
//!   solver-owned CSR layout (flat in-edge arrays plus the out-adjacency
//!   the warm frontier walks), built **once per candidate** and shared
//!   via `Arc` by every session and worker;
//! * cold solves with **exact fixed-point early-exit**: iteration stops
//!   as soon as a step reproduces its input bit for bit (every later row
//!   is provably identical) or, when a tolerance is supplied, as soon as
//!   the residual `max_v |b_v^{(s)} − b_v^{(s−1)}|` drops below it;
//! * **warm-start incremental solves**: greedy seed selection evaluates
//!   `S ∪ {v}` for thousands of trial nodes `v` against one committed
//!   set `S`. A cold solve of `S` recorded as a [`Baseline`] trajectory
//!   turns each trial into frontier propagation — only nodes whose
//!   opinion actually moves (a worklist over out-neighbors of moved
//!   nodes) are recomputed, and every untouched node reuses the baseline
//!   value, which is *bit-identical* to the full pass (see below).
//!
//! # Why warm-start is exact, not approximate
//!
//! Let `B^{(s)}` be the baseline rows for seed set `S` and `B'^{(s)}` the
//! rows for `S ∪ E`. At step 0 they differ exactly on the extra seeds `E`
//! (pinned to 1). Inductively, a node `u ∉ S ∪ E` satisfies
//! `b'_u^{(s+1)} = (1−d_u)·Σ_j w_ju·b'_j^{(s)} + d_u·b⁰_u`: if no
//! in-neighbor of `u` changed at step `s`, every operand is bitwise the
//! baseline operand, so the IEEE result is bitwise the baseline result.
//! The solver therefore only recomputes out-neighbors of changed nodes —
//! **with the full in-neighbor sum, in the same CSR order as the cold
//! step** — and detects change by bit comparison against the baseline
//! row. Nothing is truncated and no tolerance is involved, which is why
//! selection digests of warm-start greedy runs match the cold runs byte
//! for byte. A nonzero [`SolveOptions::tolerance`] requests the
//! *convergence* semantics instead; those solves always run cold.
//!
//! The legacy `FjEngine` entry points remain as thin compatibility shims
//! over the same arithmetic for callers holding bare slices; new code
//! should build a [`DiffusionSystem`] once and call [`Solver::solve`].

use crate::budget::CostMeter;
use crate::error::validate_unit_range;
use crate::Result;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use vom_graph::{Node, SocialGraph};
use vom_persist::FlatBuf;

#[cfg(doc)]
use crate::fj::FjEngine;

// ---------------------------------------------------------------------
// Process-wide solver counters and the warm-start toggle
// ---------------------------------------------------------------------

static COLD_SOLVES: AtomicU64 = AtomicU64::new(0);
static WARM_SOLVES: AtomicU64 = AtomicU64::new(0);
static COLD_STEPS: AtomicU64 = AtomicU64::new(0);
static WARM_FRONTIER_NODES: AtomicU64 = AtomicU64::new(0);
static BASELINE_IDS: AtomicU64 = AtomicU64::new(1);

static WARM_DISABLED: AtomicBool = AtomicBool::new(false);
static WARM_ENV: OnceLock<()> = OnceLock::new();

/// Warm-solve saturation guard: once the changed set at some state
/// reaches `n / DENSE_FALLBACK_DIVISOR`, the remaining steps run dense.
/// At that density the frontier bookkeeping (out-neighbor candidate
/// gathering plus the per-in-neighbor changed/baseline branch) costs
/// more than the straight CSR sweep it avoids.
const DENSE_FALLBACK_DIVISOR: usize = 8;

/// The fallback never triggers below this size: tiny graphs saturate in
/// a step either way, and keeping the frontier path live there keeps it
/// covered by the small-graph property tests.
const DENSE_FALLBACK_MIN_N: usize = 64;

fn warm_env_init() {
    WARM_ENV.get_or_init(|| {
        // audit:allow(d-env-read, "documented opt-out knob; toggles warm-start reuse, digests asserted identical either way")
        if let Ok(v) = std::env::var("VOM_WARM_START") {
            let off = matches!(v.trim(), "0" | "false" | "off" | "no");
            WARM_DISABLED.store(off, Ordering::Relaxed);
        }
    });
}

/// Whether [`Solver::solve`] may take the warm-start path. Defaults to
/// true; `VOM_WARM_START=0` in the environment or
/// [`set_warm_start_enabled`]`(false)` force every solve cold (results
/// are bit-identical either way — the switch exists so tests and benches
/// can pin that equivalence).
pub fn warm_start_enabled() -> bool {
    warm_env_init();
    !WARM_DISABLED.load(Ordering::Relaxed)
}

/// Overrides the warm-start toggle process-wide (takes precedence over
/// the `VOM_WARM_START` environment variable).
pub fn set_warm_start_enabled(enabled: bool) {
    warm_env_init();
    WARM_DISABLED.store(!enabled, Ordering::Relaxed);
}

/// Process-wide counters of solver activity, for the bench trajectory
/// and build diagnostics. Monotone; readers take [`SolverCounters::snapshot`]
/// deltas around the section they want attributed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverCounters {
    /// Full fixed-horizon solves (including baseline recordings).
    pub cold_solves: u64,
    /// Warm-start frontier solves.
    pub warm_solves: u64,
    /// Dense iteration sweeps executed — by cold solves (early-exit
    /// shortens) and by warm solves whose frontier saturated and fell
    /// back to dense stepping.
    pub cold_steps: u64,
    /// Total changed-node recomputations across warm solves — the
    /// `O(frontier)` work that replaced `O(t·m)` per evaluation
    /// (dense-fallback sweeps are counted in `cold_steps`, not here).
    pub warm_frontier_nodes: u64,
}

impl SolverCounters {
    /// Current counter values.
    pub fn snapshot() -> SolverCounters {
        SolverCounters {
            cold_solves: COLD_SOLVES.load(Ordering::Relaxed),
            warm_solves: WARM_SOLVES.load(Ordering::Relaxed),
            cold_steps: COLD_STEPS.load(Ordering::Relaxed),
            warm_frontier_nodes: WARM_FRONTIER_NODES.load(Ordering::Relaxed),
        }
    }

    /// Counter increments since an earlier snapshot.
    pub fn since(self, earlier: SolverCounters) -> SolverCounters {
        SolverCounters {
            cold_solves: self.cold_solves.saturating_sub(earlier.cold_solves),
            warm_solves: self.warm_solves.saturating_sub(earlier.warm_solves),
            cold_steps: self.cold_steps.saturating_sub(earlier.cold_steps),
            warm_frontier_nodes: self
                .warm_frontier_nodes
                .saturating_sub(earlier.warm_frontier_nodes),
        }
    }

    /// Accumulates another delta into this one.
    pub fn add(&mut self, other: SolverCounters) {
        self.cold_solves += other.cold_solves;
        self.warm_solves += other.warm_solves;
        self.cold_steps += other.cold_steps;
        self.warm_frontier_nodes += other.warm_frontier_nodes;
    }
}

// ---------------------------------------------------------------------
// DiffusionSystem
// ---------------------------------------------------------------------

/// One candidate's influence system in the solver's own cache-friendly
/// layout: flat in-CSR arrays (`in_offsets`/`in_sources`/`in_weights`)
/// driving the FJ update in exactly the [`SocialGraph::in_entries`]
/// order, the out-adjacency the warm frontier expands along, and the
/// per-node `b⁰`/`d` vectors. Built once per candidate (see
/// [`crate::CandidateData::system`]) and shared by `Arc`; immutable and
/// `Send + Sync`.
/// The flat arrays live in [`FlatBuf`]s so a snapshot load (`vom-persist`)
/// can borrow them zero-copy from the mapped file region; `has_in` stays a
/// `Vec<bool>` (persisted as bytes — casting raw bytes to `bool` is UB)
/// and the folded constants are always recomputed, bitwise identically,
/// from `b0`/`d`.
#[derive(Debug)]
pub struct DiffusionSystem {
    n: usize,
    in_offsets: FlatBuf<usize>,
    in_sources: FlatBuf<Node>,
    in_weights: FlatBuf<f64>,
    out_offsets: FlatBuf<usize>,
    out_targets: FlatBuf<Node>,
    has_in: Vec<bool>,
    b0: FlatBuf<f64>,
    d: FlatBuf<f64>,
    // Per-node constants of the update rule, folded once at build time
    // (bitwise the same values the per-step expressions would produce):
    // `omd[v] = 1.0 - d[v]`, `db0[v] = d[v] * b0[v]`.
    omd: Vec<f64>,
    db0: Vec<f64>,
}

impl DiffusionSystem {
    /// Copies the graph's adjacency and validates `b0`/`d` exactly like
    /// [`FjEngine::new`].
    pub fn new(graph: &SocialGraph, b0: &[f64], d: &[f64]) -> Result<Self> {
        let n = graph.num_nodes();
        if b0.len() != n {
            return Err(crate::DiffusionError::LengthMismatch {
                what: "initial opinions",
                got: b0.len(),
                expected: n,
            });
        }
        if d.len() != n {
            return Err(crate::DiffusionError::LengthMismatch {
                what: "stubbornness",
                got: d.len(),
                expected: n,
            });
        }
        validate_unit_range("initial opinion", b0)?;
        validate_unit_range("stubbornness", d)?;
        let m = graph.num_edges();
        let mut in_offsets = Vec::with_capacity(n + 1);
        let mut in_sources = Vec::with_capacity(m);
        let mut in_weights = Vec::with_capacity(m);
        let mut out_offsets = Vec::with_capacity(n + 1);
        let mut out_targets = Vec::with_capacity(m);
        let mut has_in = Vec::with_capacity(n);
        in_offsets.push(0);
        out_offsets.push(0);
        for v in 0..n as Node {
            for (j, w) in graph.in_entries(v) {
                in_sources.push(j);
                in_weights.push(w);
            }
            in_offsets.push(in_sources.len());
            out_targets.extend_from_slice(graph.out_neighbors(v));
            out_offsets.push(out_targets.len());
            has_in.push(graph.has_in_edges(v));
        }
        let omd: Vec<f64> = d.iter().map(|&dv| 1.0 - dv).collect();
        let db0: Vec<f64> = d.iter().zip(b0).map(|(&dv, &bv)| dv * bv).collect();
        Ok(DiffusionSystem {
            n,
            in_offsets: in_offsets.into(),
            in_sources: in_sources.into(),
            in_weights: in_weights.into(),
            out_offsets: out_offsets.into(),
            out_targets: out_targets.into(),
            has_in,
            b0: b0.to_vec().into(),
            d: d.to_vec().into(),
            omd,
            db0,
        })
    }

    /// Reassembles a system from its persisted arrays (snapshot load).
    /// The CSR shapes and every node id are validated up front so a
    /// corrupt-but-digest-valid snapshot fails closed here; the folded
    /// per-node constants are recomputed from `b0`/`d` with the same
    /// expressions [`DiffusionSystem::new`] folds, which is bitwise
    /// identical to having persisted them.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        n: usize,
        in_offsets: FlatBuf<usize>,
        in_sources: FlatBuf<Node>,
        in_weights: FlatBuf<f64>,
        out_offsets: FlatBuf<usize>,
        out_targets: FlatBuf<Node>,
        has_in: Vec<bool>,
        b0: FlatBuf<f64>,
        d: FlatBuf<f64>,
    ) -> std::result::Result<Self, &'static str> {
        let csr_ok = |off: &[usize], len: usize| {
            off.len() == n + 1
                && off.first() == Some(&0)
                && *off.last().unwrap() == len
                && off.windows(2).all(|w| w[0] <= w[1])
        };
        if !csr_ok(&in_offsets, in_sources.len()) || !csr_ok(&out_offsets, out_targets.len()) {
            return Err("adjacency offsets must span their arrays");
        }
        if in_weights.len() != in_sources.len() {
            return Err("in-weights must parallel in-sources");
        }
        if in_sources
            .iter()
            .chain(out_targets.iter())
            .any(|&v| (v as usize) >= n)
        {
            return Err("adjacency node id out of range");
        }
        if b0.len() != n || d.len() != n || has_in.len() != n {
            return Err("per-node arrays must have length n");
        }
        if (0..n).any(|v| has_in[v] != (in_offsets[v] < in_offsets[v + 1])) {
            return Err("has_in must mirror in-edge emptiness");
        }
        let omd: Vec<f64> = d.iter().map(|&dv| 1.0 - dv).collect();
        let db0: Vec<f64> = d.iter().zip(b0.iter()).map(|(&dv, &bv)| dv * bv).collect();
        Ok(DiffusionSystem {
            n,
            in_offsets,
            in_sources,
            in_weights,
            out_offsets,
            out_targets,
            has_in,
            b0,
            d,
            omd,
            db0,
        })
    }

    /// The persisted arrays `(in_offsets, in_sources, in_weights,
    /// out_offsets, out_targets, has_in)` — the exact buffers a snapshot
    /// writer serializes verbatim (plus [`DiffusionSystem::initial`] and
    /// [`DiffusionSystem::stubbornness`]).
    #[allow(clippy::type_complexity)]
    pub fn parts(&self) -> (&[usize], &[Node], &[f64], &[usize], &[Node], &[bool]) {
        (
            &self.in_offsets,
            &self.in_sources,
            &self.in_weights,
            &self.out_offsets,
            &self.out_targets,
            &self.has_in,
        )
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Number of directed edges `m`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.in_sources.len()
    }

    /// Initial opinions `B⁰` (without seeds applied).
    #[inline]
    pub fn initial(&self) -> &[f64] {
        &self.b0
    }

    /// Stubbornness diagonal `D` (without seeds applied).
    #[inline]
    pub fn stubbornness(&self) -> &[f64] {
        &self.d
    }

    /// `(source j, w_jv)` pairs of `v`, in [`SocialGraph::in_entries`]
    /// order.
    #[inline]
    fn in_entries(&self, v: usize) -> impl Iterator<Item = (Node, f64)> + '_ {
        let (s, e) = (self.in_offsets[v], self.in_offsets[v + 1]);
        self.in_sources[s..e]
            .iter()
            .copied()
            .zip(self.in_weights[s..e].iter().copied())
    }

    /// Out-neighbors of `u` — the nodes whose next-step value reads
    /// `u`'s current value.
    #[inline]
    fn out_neighbors(&self, u: usize) -> &[Node] {
        &self.out_targets[self.out_offsets[u]..self.out_offsets[u + 1]]
    }

    /// Exact owned heap footprint in bytes: `FlatBuf` capacities (zero
    /// for zero-copy snapshot borrows) plus the `Vec` capacities of the
    /// bitmap and the folded constants, so slack is never hidden.
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.in_offsets.heap_bytes()
            + self.in_sources.heap_bytes()
            + self.in_weights.heap_bytes()
            + self.out_offsets.heap_bytes()
            + self.out_targets.heap_bytes()
            + self.b0.heap_bytes()
            + self.d.heap_bytes()
            + (self.omd.capacity() + self.db0.capacity()) * size_of::<f64>()
            + self.has_in.capacity()
    }

    /// The FJ update of one node from the current row:
    /// `(1−d_v)·Σ w·cur + d_v·b⁰_v`, in-less nodes hold their value.
    /// Seeds are NOT handled here — callers pin them. `start..end` is
    /// `v`'s in-entry range (passed in so step loops stream the
    /// offsets array once).
    #[inline(always)]
    fn update(&self, v: usize, start: usize, end: usize, cur: &[f64]) -> f64 {
        if start == end {
            // No in-edges: the node holds its value (`has_in` mirrors
            // exactly this emptiness).
            cur[v]
        } else {
            let mut acc = 0.0;
            for (j, w) in self.in_sources[start..end]
                .iter()
                .zip(&self.in_weights[start..end])
            {
                acc += w * cur[*j as usize];
            }
            self.omd[v] * acc + self.db0[v]
        }
    }

    /// One exact FJ step, bit-identical to [`FjEngine`]'s: seeds pinned
    /// at 1, in-less nodes hold their value, everyone else averages
    /// in-neighbors in CSR order. Returns `(max |next−cur|, next ≡ cur
    /// bitwise)` so the caller gets residual and fixed-point detection
    /// for free. Used by tolerance-mode solves; exact solves take the
    /// leaner [`DiffusionSystem::step_exact`].
    fn step(&self, is_seed: &[bool], cur: &[f64], next: &mut [f64]) -> (f64, bool) {
        let mut residual = 0.0f64;
        let mut bits_equal = true;
        let mut start = 0usize;
        for v in 0..self.n {
            let end = self.in_offsets[v + 1];
            let out = if is_seed[v] {
                1.0
            } else {
                self.update(v, start, end, cur)
            };
            start = end;
            next[v] = out;
            if out.to_bits() != cur[v].to_bits() {
                bits_equal = false;
                residual = residual.max((out - cur[v]).abs());
            }
        }
        (residual, bits_equal)
    }

    /// [`DiffusionSystem::step`] without residual tracking: the same
    /// update values bit for bit, but only the fixed-point flag is
    /// accumulated (branchlessly), and the seed pins come from a
    /// **sorted, deduplicated** node list walked with a cursor — a
    /// register compare per node instead of a byte load from a seed
    /// mask. This is the hot kernel of exact solves, where the residual
    /// is never read.
    fn step_exact(&self, seeds_sorted: &[usize], cur: &[f64], next: &mut [f64]) -> bool {
        let mut diff_bits = 0u64;
        let mut start = 0usize;
        let mut si = 0usize;
        let mut next_seed = seeds_sorted.first().copied().unwrap_or(usize::MAX);
        for v in 0..self.n {
            let end = self.in_offsets[v + 1];
            let out = if v == next_seed {
                si += 1;
                next_seed = seeds_sorted.get(si).copied().unwrap_or(usize::MAX);
                1.0
            } else {
                self.update(v, start, end, cur)
            };
            start = end;
            next[v] = out;
            diff_bits |= out.to_bits() ^ cur[v].to_bits();
        }
        diff_bits == 0
    }
}

// ---------------------------------------------------------------------
// SolveOptions / SolveReport / Baseline
// ---------------------------------------------------------------------

/// How one [`Solver::solve`] call should run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveOptions {
    /// Step budget `t` (the paper's finite horizon).
    pub horizon: usize,
    /// Residual threshold for convergence-style solves: stop once
    /// `max_v |b_v^{(s)} − b_v^{(s−1)}| < tolerance`. `0.0` (the
    /// default) keeps the exact fixed-horizon semantics, where only a
    /// bitwise fixed point may end the iteration early.
    pub tolerance: f64,
    /// Attempt the warm-start path: if the installed [`Baseline`] has
    /// the same horizon and its seeds are a prefix of this call's
    /// seeds, only the changed frontier is propagated. Falls back to a
    /// cold solve otherwise (and whenever [`warm_start_enabled`] is
    /// off or a tolerance is set).
    pub warm: bool,
    /// Record the cold trajectory and install it as the solver's
    /// [`Baseline`] for subsequent warm solves. Forces a cold solve.
    pub record_baseline: bool,
}

impl SolveOptions {
    /// Exact fixed-horizon semantics (the historical
    /// `opinions_at(t, …)` contract).
    pub fn exact(horizon: usize) -> SolveOptions {
        SolveOptions {
            horizon,
            tolerance: 0.0,
            warm: false,
            record_baseline: false,
        }
    }

    /// Enables the warm-start path.
    pub fn warm(mut self) -> SolveOptions {
        self.warm = true;
        self
    }

    /// Records the trajectory as the solver's baseline.
    pub fn recording(mut self) -> SolveOptions {
        self.record_baseline = true;
        self
    }

    /// Sets the convergence tolerance.
    pub fn with_tolerance(mut self, eps: f64) -> SolveOptions {
        self.tolerance = eps;
        self
    }
}

/// What one [`Solver::solve`] call did — the solver-level extension of
/// [`crate::convergence::ConvergenceReport`] (which is now derived from
/// it).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolveReport {
    /// Iteration steps actually executed (`≤ horizon`; early-exit and
    /// empty warm frontiers shorten).
    pub steps: usize,
    /// Final residual: for tolerance-mode solves
    /// `max_v |b_v^{(s)} − b_v^{(s−1)}|` of the last executed step; for
    /// warm solves the largest final deviation from the baseline row.
    /// Exact cold solves (`tolerance == 0`) skip residual tracking in
    /// the hot kernel and report `0.0`.
    pub residual: f64,
    /// Whether the solve ended before exhausting the horizon (bitwise
    /// fixed point, tolerance reached, or a warm frontier that died
    /// out).
    pub converged: bool,
    /// Whether the warm-start path was taken.
    pub warm: bool,
    /// Node updates performed: changed-node recomputations on the warm
    /// path, `steps · n` on the cold path.
    pub frontier: usize,
}

/// A recorded cold trajectory for a committed seed set — the fixed
/// point warm-start solves perturb. Rows are stored up to the step the
/// cold solve actually executed; at a bitwise fixed point every later
/// row equals the last stored one, so the accessor clamps.
#[derive(Debug)]
pub struct Baseline {
    id: u64,
    seeds: Vec<Node>,
    is_seed: Vec<bool>,
    horizon: usize,
    rows: Vec<Vec<f64>>,
}

impl Baseline {
    /// The committed seed set this trajectory was recorded with.
    #[inline]
    pub fn seeds(&self) -> &[Node] {
        &self.seeds
    }

    /// The horizon the trajectory was recorded for.
    #[inline]
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// Row `B^{(s)}`, clamped past a fixed point.
    #[inline]
    fn row(&self, s: usize) -> &[f64] {
        &self.rows[s.min(self.rows.len() - 1)]
    }

    /// The final row `B^{(horizon)}`.
    #[inline]
    pub fn final_row(&self) -> &[f64] {
        self.rows.last().expect("baseline has at least row 0")
    }

    /// Exact owned heap footprint in bytes (`Vec` capacities throughout,
    /// including each recorded row's own buffer).
    pub fn heap_bytes(&self) -> usize {
        self.rows.capacity() * std::mem::size_of::<Vec<f64>>()
            + self
                .rows
                .iter()
                .map(|r| r.capacity() * std::mem::size_of::<f64>())
                .sum::<usize>()
            + self.is_seed.capacity()
            + self.seeds.capacity() * std::mem::size_of::<Node>()
    }
}

// ---------------------------------------------------------------------
// Solver
// ---------------------------------------------------------------------

/// A reusable solve context over one shared [`DiffusionSystem`]: all
/// iteration/frontier scratch is owned here, so repeated solves (the
/// greedy `(k, trial)` loop) allocate nothing. Not `Sync` by design —
/// one solver per worker; pool them with [`SolverPool`].
#[derive(Debug)]
pub struct Solver {
    system: Arc<DiffusionSystem>,
    baseline: Option<Arc<Baseline>>,
    // Cold-solve scratch (the historical DiffusionBuffer shape).
    cur: Vec<f64>,
    next: Vec<f64>,
    is_seed: Vec<bool>,
    seed_marks: Vec<Node>,
    // Sorted, deduplicated seed list handed to the exact kernel (a
    // cursor walk beats a per-node mask load).
    seeds_sorted: Vec<usize>,
    // Warm-solve scratch, sized lazily on first warm solve.
    chg: Vec<bool>,
    val: Vec<f64>,
    chg_next: Vec<bool>,
    val_next: Vec<f64>,
    frontier: Vec<Node>,
    frontier_next: Vec<Node>,
    cand: Vec<Node>,
    cand_seen: Vec<bool>,
    extra: Vec<bool>,
    extra_marks: Vec<Node>,
    // Materialized warm output row: baseline final row + `dirty`
    // overrides, undone lazily before the next warm solve.
    row: Vec<f64>,
    dirty: Vec<Node>,
    row_baseline: u64,
    last_was_warm: bool,
}

impl Solver {
    /// A solver over `system` with cold scratch allocated eagerly (warm
    /// scratch follows on first use).
    pub fn new(system: Arc<DiffusionSystem>) -> Solver {
        let n = system.num_nodes();
        Solver {
            system,
            baseline: None,
            cur: vec![0.0; n],
            next: vec![0.0; n],
            is_seed: vec![false; n],
            seed_marks: Vec::new(),
            seeds_sorted: Vec::new(),
            chg: Vec::new(),
            val: Vec::new(),
            chg_next: Vec::new(),
            val_next: Vec::new(),
            frontier: Vec::new(),
            frontier_next: Vec::new(),
            cand: Vec::new(),
            cand_seen: Vec::new(),
            extra: Vec::new(),
            extra_marks: Vec::new(),
            row: Vec::new(),
            dirty: Vec::new(),
            row_baseline: 0,
            last_was_warm: false,
        }
    }

    /// The shared system this solver iterates.
    #[inline]
    pub fn system(&self) -> &Arc<DiffusionSystem> {
        &self.system
    }

    /// The installed warm-start baseline, if any.
    pub fn baseline(&self) -> Option<&Arc<Baseline>> {
        self.baseline.as_ref()
    }

    /// Installs a baseline recorded by another solver (pooled workers
    /// share one committed-set trajectory via `Arc`).
    pub fn set_baseline(&mut self, baseline: Arc<Baseline>) {
        self.baseline = Some(baseline);
    }

    /// Drops the installed baseline.
    pub fn clear_baseline(&mut self) {
        self.baseline = None;
    }

    /// The one solve entry point. `seeds` are pinned at opinion 1,
    /// fully stubborn, on top of the system's `b⁰`/`d` (the caller
    /// includes any fixed seeds). The resulting opinions are read with
    /// [`Solver::opinions`]; the report says how the solve ran.
    ///
    /// Warm-start is taken when all of: `opts.warm`, warm start is
    /// enabled process-wide, `opts.tolerance == 0`, no baseline
    /// recording was requested, and the installed baseline matches
    /// (same horizon, `baseline.seeds()` a prefix of `seeds`). The
    /// result is bit-identical to the cold solve in every case.
    pub fn solve(&mut self, seeds: &[Node], opts: &SolveOptions) -> SolveReport {
        self.solve_metered(seeds, opts, None)
    }

    /// [`Solver::solve`] with a [`CostMeter`] charged from inside the
    /// iteration loop: one tick per executed step (cold or
    /// dense-fallback) and one tick per warm frontier state. The solve
    /// itself always runs to completion — truncating mid-solve would
    /// change the computed opinions and break the warm-start/bitwise
    /// exactness contract — so metered callers check
    /// [`CostMeter::exhausted`] *between* solves, at their own
    /// sequential checkpoints, and stop issuing further work there.
    pub fn solve_metered(
        &mut self,
        seeds: &[Node],
        opts: &SolveOptions,
        meter: Option<&CostMeter>,
    ) -> SolveReport {
        if opts.warm && !opts.record_baseline && opts.tolerance == 0.0 && warm_start_enabled() {
            if let Some(base) = &self.baseline {
                if base.horizon == opts.horizon
                    && seeds.len() >= base.seeds.len()
                    && seeds[..base.seeds.len()] == base.seeds[..]
                {
                    let base = Arc::clone(base);
                    return self.warm_solve(&base, &seeds[base.seeds.len()..], meter);
                }
            }
        }
        self.cold_solve(seeds, opts, meter)
    }

    /// The opinions computed by the last [`Solver::solve`] call, as a
    /// full `n`-row (warm solves materialize baseline + frontier
    /// overrides, so downstream sums see the same IEEE evaluation order
    /// as ever).
    #[inline]
    pub fn opinions(&self) -> &[f64] {
        if self.last_was_warm {
            &self.row
        } else {
            &self.cur
        }
    }

    fn cold_solve(
        &mut self,
        seeds: &[Node],
        opts: &SolveOptions,
        meter: Option<&CostMeter>,
    ) -> SolveReport {
        let system = Arc::clone(&self.system);
        let n = system.num_nodes();
        for &s in seeds {
            if !self.is_seed[s as usize] {
                self.is_seed[s as usize] = true;
                self.seed_marks.push(s);
            }
        }
        self.cur.copy_from_slice(system.initial());
        for &s in seeds {
            self.cur[s as usize] = 1.0;
        }
        self.seeds_sorted.clear();
        self.seeds_sorted
            .extend(self.seed_marks.iter().map(|&s| s as usize));
        self.seeds_sorted.sort_unstable();
        let mut rows: Vec<Vec<f64>> = Vec::new();
        if opts.record_baseline {
            rows.reserve(opts.horizon + 1);
            rows.push(self.cur.clone());
        }
        let mut steps = 0usize;
        let mut residual = 0.0f64;
        let mut converged = false;
        let track_residual = opts.tolerance > 0.0;
        for _ in 0..opts.horizon {
            let bits_equal = if track_residual {
                let (res, eq) = system.step(&self.is_seed, &self.cur, &mut self.next);
                residual = res;
                eq
            } else {
                system.step_exact(&self.seeds_sorted, &self.cur, &mut self.next)
            };
            std::mem::swap(&mut self.cur, &mut self.next);
            steps += 1;
            if let Some(m) = meter {
                m.charge(1);
            }
            if opts.record_baseline {
                rows.push(self.cur.clone());
            }
            if bits_equal || (track_residual && residual < opts.tolerance) {
                converged = true;
                break;
            }
        }
        if opts.record_baseline {
            self.baseline = Some(Arc::new(Baseline {
                id: BASELINE_IDS.fetch_add(1, Ordering::Relaxed),
                seeds: seeds.to_vec(),
                is_seed: self.is_seed.clone(),
                horizon: opts.horizon,
                rows,
            }));
        }
        for s in self.seed_marks.drain(..) {
            self.is_seed[s as usize] = false;
        }
        self.last_was_warm = false;
        COLD_SOLVES.fetch_add(1, Ordering::Relaxed);
        COLD_STEPS.fetch_add(steps as u64, Ordering::Relaxed);
        SolveReport {
            steps,
            residual,
            converged,
            warm: false,
            frontier: steps * n,
        }
    }

    fn ensure_warm_scratch(&mut self) {
        let n = self.system.num_nodes();
        if self.chg.len() < n {
            self.chg.resize(n, false);
            self.val.resize(n, 0.0);
            self.chg_next.resize(n, false);
            self.val_next.resize(n, 0.0);
            self.cand_seen.resize(n, false);
            self.extra.resize(n, false);
        }
    }

    /// Frontier propagation of `extras` on top of `base` (whose seeds
    /// are already pinned in every baseline row). See the module docs
    /// for the exactness argument.
    ///
    /// When the changed set saturates — reaches `n /`
    /// [`DENSE_FALLBACK_DIVISOR`] at any state — the remaining steps run
    /// as plain dense sweeps over the materialized true state instead:
    /// per-candidate gathering and the per-neighbor changed/baseline
    /// branch cost more than a dense step well before the frontier
    /// covers the graph, and on small-world graphs one extra seed can
    /// reach most nodes within a few steps. The fallback is bit-identical
    /// too: the materialized state *is* the true state `s`, and a dense
    /// step computes exactly the sums the frontier recompute would.
    fn warm_solve(
        &mut self,
        base: &Arc<Baseline>,
        extras: &[Node],
        meter: Option<&CostMeter>,
    ) -> SolveReport {
        self.ensure_warm_scratch();
        let system = Arc::clone(&self.system);
        let n = system.num_nodes();
        let t = base.horizon;

        // Load (or lazily restore) the baseline's final row into the
        // materialized output row.
        if self.row_baseline != base.id {
            self.row.clear();
            self.row.extend_from_slice(base.final_row());
            self.dirty.clear();
            self.row_baseline = base.id;
        } else {
            let final_row = base.final_row();
            for u in self.dirty.drain(..) {
                self.row[u as usize] = final_row[u as usize];
            }
        }

        // Deduplicate the extra seeds; extras already committed in the
        // baseline are no-ops (pinned on both sides).
        for &v in extras {
            let vi = v as usize;
            if !self.extra[vi] && !base.is_seed[vi] {
                self.extra[vi] = true;
                self.extra_marks.push(v);
            }
        }

        // State 0: the extras flip to 1.
        self.frontier.clear();
        for &v in &self.extra_marks {
            let vi = v as usize;
            if 1.0f64.to_bits() != base.row(0)[vi].to_bits() {
                self.chg[vi] = true;
                self.val[vi] = 1.0;
                self.frontier.push(v);
            }
        }
        let mut frontier_total = self.frontier.len();

        let mut frontier = std::mem::take(&mut self.frontier);
        let mut frontier_next = std::mem::take(&mut self.frontier_next);
        let mut cand = std::mem::take(&mut self.cand);
        let mut fallback_from: Option<usize> = None;
        for s in 0..t {
            if n >= DENSE_FALLBACK_MIN_N && frontier.len() * DENSE_FALLBACK_DIVISOR >= n {
                fallback_from = Some(s);
                break;
            }
            let brow = base.row(s);
            let brow_next = base.row(s + 1);
            // Candidates for state s+1: out-neighbors of nodes changed
            // at state s. Baseline seeds never move; extras are handled
            // separately (their pin can diverge from the baseline again
            // even after a step of agreement).
            cand.clear();
            for &u in &frontier {
                for &w in system.out_neighbors(u as usize) {
                    let wi = w as usize;
                    if !self.cand_seen[wi] && !base.is_seed[wi] && !self.extra[wi] {
                        self.cand_seen[wi] = true;
                        cand.push(w);
                    }
                }
            }
            frontier_next.clear();
            for &v in &self.extra_marks {
                let vi = v as usize;
                if 1.0f64.to_bits() != brow_next[vi].to_bits() {
                    self.chg_next[vi] = true;
                    self.val_next[vi] = 1.0;
                    frontier_next.push(v);
                }
            }
            for &u in &cand {
                let ui = u as usize;
                self.cand_seen[ui] = false;
                let new = if !system.has_in[ui] {
                    // Unreachable via out-edges, kept for robustness: an
                    // in-less non-seed holds its (baseline) value.
                    if self.chg[ui] {
                        self.val[ui]
                    } else {
                        brow[ui]
                    }
                } else {
                    let mut acc = 0.0;
                    for (j, w) in system.in_entries(ui) {
                        let ji = j as usize;
                        let bj = if self.chg[ji] { self.val[ji] } else { brow[ji] };
                        acc += w * bj;
                    }
                    // Same folded constants as the dense kernels, so the
                    // result is bit-identical to a cold recompute.
                    system.omd[ui] * acc + system.db0[ui]
                };
                if new.to_bits() != brow_next[ui].to_bits() {
                    self.chg_next[ui] = true;
                    self.val_next[ui] = new;
                    frontier_next.push(u);
                }
            }
            for &u in &frontier {
                self.chg[u as usize] = false;
            }
            std::mem::swap(&mut frontier, &mut frontier_next);
            std::mem::swap(&mut self.chg, &mut self.chg_next);
            std::mem::swap(&mut self.val, &mut self.val_next);
            frontier_total += frontier.len();
            if let Some(m) = meter {
                m.charge(1);
            }
        }

        if let Some(s0) = fallback_from {
            // Saturated: materialize the true state `s0` (baseline row
            // plus the changed overrides) and finish dense.
            self.cur.copy_from_slice(base.row(s0));
            for &u in &frontier {
                let ui = u as usize;
                self.cur[ui] = self.val[ui];
                self.chg[ui] = false;
            }
            self.seeds_sorted.clear();
            self.seeds_sorted
                .extend(base.seeds().iter().map(|&s| s as usize));
            self.seeds_sorted
                .extend(self.extra_marks.iter().map(|&v| v as usize));
            self.seeds_sorted.sort_unstable();
            self.seeds_sorted.dedup();
            let mut dense_steps = 0usize;
            for _ in s0..t {
                let bits_equal = system.step_exact(&self.seeds_sorted, &self.cur, &mut self.next);
                std::mem::swap(&mut self.cur, &mut self.next);
                dense_steps += 1;
                if let Some(m) = meter {
                    m.charge(1);
                }
                if bits_equal {
                    // Fixed point: every remaining row is identical.
                    break;
                }
            }
            frontier.clear();
            self.frontier = frontier;
            self.frontier_next = frontier_next;
            self.cand = cand;
            for v in self.extra_marks.drain(..) {
                self.extra[v as usize] = false;
            }
            // Residual/convergence vs the baseline final row, matching
            // the frontier path's materialization semantics. `self.row`
            // stays a clean copy of the baseline final row (nothing was
            // marked dirty), so the next warm solve restores nothing.
            let final_row = base.final_row();
            let mut residual = 0.0f64;
            let mut moved = false;
            for (&x, &b) in self.cur.iter().zip(final_row) {
                if x.to_bits() != b.to_bits() {
                    moved = true;
                    residual = residual.max((x - b).abs());
                }
            }
            self.last_was_warm = false;
            WARM_SOLVES.fetch_add(1, Ordering::Relaxed);
            WARM_FRONTIER_NODES.fetch_add(frontier_total as u64, Ordering::Relaxed);
            COLD_STEPS.fetch_add(dense_steps as u64, Ordering::Relaxed);
            return SolveReport {
                steps: t,
                residual,
                converged: !moved,
                warm: true,
                frontier: frontier_total + dense_steps * n,
            };
        }

        // Materialize: final changed values override the baseline row.
        let final_row = base.final_row();
        let mut residual = 0.0f64;
        for &u in &frontier {
            let ui = u as usize;
            self.chg[ui] = false;
            self.row[ui] = self.val[ui];
            self.dirty.push(u);
            residual = residual.max((self.val[ui] - final_row[ui]).abs());
        }
        let converged = frontier.is_empty();
        frontier.clear();
        self.frontier = frontier;
        self.frontier_next = frontier_next;
        self.cand = cand;
        for v in self.extra_marks.drain(..) {
            self.extra[v as usize] = false;
        }
        self.last_was_warm = true;
        WARM_SOLVES.fetch_add(1, Ordering::Relaxed);
        WARM_FRONTIER_NODES.fetch_add(frontier_total as u64, Ordering::Relaxed);
        SolveReport {
            steps: t,
            residual,
            converged,
            warm: true,
            frontier: frontier_total,
        }
    }
}

// ---------------------------------------------------------------------
// SolverPool
// ---------------------------------------------------------------------

/// A checkout pool of [`Solver`]s, shared by parallel greedy workers
/// (and across the `(k, trial)` loop and successive queries via the
/// session scratch) so solver buffers are allocated once, not per
/// parallel iteration. Solvers are keyed to their system: a checkout
/// for a different [`DiffusionSystem`] drops stale entries.
#[derive(Debug, Default)]
pub struct SolverPool {
    slots: Mutex<Vec<Solver>>,
}

impl SolverPool {
    /// An empty pool.
    pub fn new() -> SolverPool {
        SolverPool::default()
    }

    /// Takes a solver for `system` out of the pool (or builds one). The
    /// guard returns it on drop.
    pub fn checkout(&self, system: &Arc<DiffusionSystem>) -> PooledSolver<'_> {
        let mut slots = self.slots.lock().expect("solver pool lock");
        let solver = loop {
            match slots.pop() {
                Some(s) if Arc::ptr_eq(s.system(), system) => break s,
                Some(_) => continue,
                None => break Solver::new(Arc::clone(system)),
            }
        };
        PooledSolver {
            pool: self,
            solver: Some(solver),
        }
    }
}

/// RAII guard over a pooled [`Solver`]; derefs to the solver and puts
/// it back on drop.
#[derive(Debug)]
pub struct PooledSolver<'p> {
    pool: &'p SolverPool,
    solver: Option<Solver>,
}

impl std::ops::Deref for PooledSolver<'_> {
    type Target = Solver;
    fn deref(&self) -> &Solver {
        self.solver.as_ref().expect("present until drop")
    }
}

impl std::ops::DerefMut for PooledSolver<'_> {
    fn deref_mut(&mut self) -> &mut Solver {
        self.solver.as_mut().expect("present until drop")
    }
}

impl Drop for PooledSolver<'_> {
    fn drop(&mut self) {
        if let Some(solver) = self.solver.take() {
            let mut slots = self.pool.slots.lock().expect("solver pool lock");
            slots.push(solver);
        }
    }
}

#[cfg(test)]
// The deprecated FjEngine entry points are the independent reference
// these equivalence tests check the solver against.
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::fj::FjEngine;
    use vom_graph::builder::graph_from_edges;

    fn running_example() -> (SocialGraph, Vec<f64>, Vec<f64>) {
        let g = graph_from_edges(4, &[(0, 2, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap();
        (g, vec![0.40, 0.80, 0.60, 0.90], vec![0.0, 0.0, 0.5, 0.5])
    }

    fn system(g: &SocialGraph, b0: &[f64], d: &[f64]) -> Arc<DiffusionSystem> {
        Arc::new(DiffusionSystem::new(g, b0, d).unwrap())
    }

    #[test]
    fn cold_solve_matches_fj_engine_bitwise() {
        let (g, b0, d) = running_example();
        let eng = FjEngine::new(&g, &b0, &d).unwrap();
        let mut solver = Solver::new(system(&g, &b0, &d));
        for t in 0..6 {
            for seeds in [vec![], vec![0], vec![2], vec![0, 1]] {
                solver.solve(&seeds, &SolveOptions::exact(t));
                let reference = eng.opinions_at(t, &seeds);
                assert_eq!(solver.opinions(), &reference[..], "t={t} seeds={seeds:?}");
            }
        }
    }

    #[test]
    fn warm_solve_is_bit_identical_to_cold() {
        let (g, b0, d) = running_example();
        let sys = system(&g, &b0, &d);
        let mut warm = Solver::new(Arc::clone(&sys));
        let mut cold = Solver::new(Arc::clone(&sys));
        let t = 4;
        warm.solve(&[], &SolveOptions::exact(t).recording());
        for v in 0..4 as Node {
            let rep = warm.solve(&[v], &SolveOptions::exact(t).warm());
            assert!(rep.warm, "baseline prefix must trigger the warm path");
            cold.solve(&[v], &SolveOptions::exact(t));
            let (w, c) = (warm.opinions().to_vec(), cold.opinions().to_vec());
            for (a, b) in w.iter().zip(&c) {
                assert_eq!(a.to_bits(), b.to_bits(), "seed {v}");
            }
        }
        // Growing the committed set keeps the equivalence.
        warm.solve(&[2], &SolveOptions::exact(t).recording());
        let rep = warm.solve(&[2, 0], &SolveOptions::exact(t).warm());
        assert!(rep.warm);
        cold.solve(&[2, 0], &SolveOptions::exact(t));
        assert_eq!(warm.opinions(), cold.opinions());
    }

    #[test]
    fn warm_falls_back_cold_without_matching_baseline() {
        let (g, b0, d) = running_example();
        let mut solver = Solver::new(system(&g, &b0, &d));
        // No baseline at all.
        let rep = solver.solve(&[1], &SolveOptions::exact(3).warm());
        assert!(!rep.warm);
        // Baseline at a different horizon.
        solver.solve(&[], &SolveOptions::exact(2).recording());
        let rep = solver.solve(&[1], &SolveOptions::exact(3).warm());
        assert!(!rep.warm);
        // Non-prefix seed list.
        solver.solve(&[1], &SolveOptions::exact(3).recording());
        let rep = solver.solve(&[2, 1], &SolveOptions::exact(3).warm());
        assert!(!rep.warm);
    }

    #[test]
    fn fixed_point_early_exit_keeps_values_exact() {
        // 0 -> 1 with full stubbornness everywhere: nothing ever moves,
        // so the solve must stop after one step with identical values.
        let g = graph_from_edges(2, &[(0, 1, 1.0)]).unwrap();
        let b0 = [0.3, 0.7];
        let d = [1.0, 1.0];
        let eng = FjEngine::new(&g, &b0, &d).unwrap();
        let mut solver = Solver::new(system(&g, &b0, &d));
        let rep = solver.solve(&[], &SolveOptions::exact(50));
        assert!(rep.converged);
        assert!(rep.steps < 50);
        assert_eq!(rep.residual, 0.0);
        assert_eq!(solver.opinions(), &eng.opinions_at(50, &[])[..]);
    }

    #[test]
    fn tolerance_stops_like_the_legacy_convergence_loop() {
        let (g, b0, d) = running_example();
        let mut solver = Solver::new(system(&g, &b0, &d));
        let rep = solver.solve(&[], &SolveOptions::exact(500).with_tolerance(1e-9));
        assert!(rep.converged);
        assert!(rep.residual < 1e-9);
        assert!((solver.opinions()[3] - 0.75).abs() < 1e-6);
    }

    #[test]
    fn reports_count_warm_frontier_work() {
        let (g, b0, d) = running_example();
        let mut solver = Solver::new(system(&g, &b0, &d));
        solver.solve(&[], &SolveOptions::exact(3).recording());
        // Seeding node 3 (no out-edges) moves only itself.
        let rep = solver.solve(&[3], &SolveOptions::exact(3).warm());
        assert!(rep.warm);
        assert_eq!(rep.steps, 3);
        assert!(rep.frontier >= 1 && rep.frontier <= 4, "{}", rep.frontier);
        // A no-op extra (already at the baseline fixed point) converges.
        let rep = solver.solve(&[], &SolveOptions::exact(3).warm());
        assert!(rep.warm && rep.converged);
        assert_eq!(rep.frontier, 0);
        assert_eq!(solver.opinions(), solver.baseline().unwrap().final_row());
    }

    #[test]
    fn saturated_warm_solve_takes_the_dense_fallback_and_stays_exact() {
        // A hub spraying a 100-node ring: seeding the hub changes nearly
        // every node by state 1, so the changed set crosses
        // `n / DENSE_FALLBACK_DIVISOR` immediately (n ≥
        // DENSE_FALLBACK_MIN_N) and the warm solve must finish dense —
        // still bit-identical to the cold solve.
        let n = 100usize;
        let mut edges: Vec<(Node, Node, f64)> = (1..n as Node).map(|v| (0, v, 1.0)).collect();
        edges.extend((0..n as Node).map(|v| (v, (v + 1) % n as Node, 0.5)));
        let g = graph_from_edges(n, &edges).unwrap();
        let b0: Vec<f64> = (0..n).map(|i| (i as f64) / (n as f64)).collect();
        let d: Vec<f64> = (0..n).map(|i| if i % 2 == 0 { 0.1 } else { 0.3 }).collect();
        let sys = system(&g, &b0, &d);
        let mut warm = Solver::new(Arc::clone(&sys));
        let mut cold = Solver::new(Arc::clone(&sys));
        let t = 6;
        warm.solve(&[], &SolveOptions::exact(t).recording());
        for seed in [0 as Node, 17, 63] {
            let rep = warm.solve(&[seed], &SolveOptions::exact(t).warm());
            assert!(rep.warm, "seed {seed}");
            cold.solve(&[seed], &SolveOptions::exact(t));
            for (i, (a, b)) in warm.opinions().iter().zip(cold.opinions()).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "seed {seed}, node {i}");
            }
        }
        // Interleaving saturated and narrow solves on one solver keeps
        // the materialized-row bookkeeping consistent: seeding node 99
        // (out-edge only to the hub-adjacent ring) moves few nodes.
        let rep = warm.solve(&[99], &SolveOptions::exact(t).warm());
        assert!(rep.warm);
        cold.solve(&[99], &SolveOptions::exact(t));
        assert_eq!(warm.opinions(), cold.opinions());
        let rep = warm.solve(&[0], &SolveOptions::exact(t).warm());
        assert!(rep.warm);
        cold.solve(&[0], &SolveOptions::exact(t));
        assert_eq!(warm.opinions(), cold.opinions());
    }

    #[test]
    fn pool_reuses_matching_solvers() {
        let (g, b0, d) = running_example();
        let sys = system(&g, &b0, &d);
        let pool = SolverPool::new();
        {
            let mut s = pool.checkout(&sys);
            s.solve(&[], &SolveOptions::exact(2).recording());
        }
        {
            // The returned solver still carries its baseline.
            let s = pool.checkout(&sys);
            assert!(s.baseline().is_some());
        }
        // A different system drops the stale entry.
        let other = system(&g, &b0, &d);
        let s = pool.checkout(&other);
        assert!(Arc::ptr_eq(s.system(), &other));
    }

    #[test]
    fn counters_accumulate() {
        let (g, b0, d) = running_example();
        let before = SolverCounters::snapshot();
        let mut solver = Solver::new(system(&g, &b0, &d));
        solver.solve(&[], &SolveOptions::exact(3).recording());
        solver.solve(&[0], &SolveOptions::exact(3).warm());
        let delta = SolverCounters::snapshot().since(before);
        assert!(delta.cold_solves >= 1);
        assert!(delta.cold_steps >= 1);
        assert!(delta.warm_solves >= 1);
        let mut acc = SolverCounters::default();
        acc.add(delta);
        assert_eq!(acc.cold_solves, delta.cold_solves);
    }

    #[test]
    fn metered_solves_charge_ticks_without_changing_results() {
        use crate::budget::{CostBudget, CostMeter};
        let (g, b0, d) = running_example();
        let sys = system(&g, &b0, &d);
        let mut metered = Solver::new(Arc::clone(&sys));
        let mut plain = Solver::new(Arc::clone(&sys));
        let meter = CostMeter::new(CostBudget::ticks(u64::MAX));
        // Cold: one tick per executed step.
        let rep = metered.solve_metered(&[], &SolveOptions::exact(3).recording(), Some(&meter));
        assert_eq!(meter.spent(), rep.steps as u64);
        plain.solve(&[], &SolveOptions::exact(3).recording());
        assert_eq!(metered.opinions(), plain.opinions());
        // Warm: one tick per frontier state; values identical to the
        // unmetered path.
        let before = meter.spent();
        let rep = metered.solve_metered(&[0], &SolveOptions::exact(3).warm(), Some(&meter));
        assert!(rep.warm);
        assert_eq!(meter.spent() - before, rep.steps as u64);
        plain.solve(&[0], &SolveOptions::exact(3).warm());
        assert_eq!(metered.opinions(), plain.opinions());
        // A solve is never truncated by an exhausted meter — budgets
        // cancel *between* solves, at greedy checkpoints.
        let spent_meter = CostMeter::new(CostBudget::ticks(0));
        assert!(spent_meter.exhausted());
        let rep = metered.solve_metered(&[1], &SolveOptions::exact(3), Some(&spent_meter));
        assert_eq!(rep.steps, 3);
        plain.solve(&[1], &SolveOptions::exact(3));
        assert_eq!(metered.opinions(), plain.opinions());
    }

    #[test]
    fn system_layout_matches_graph() {
        let (g, b0, d) = running_example();
        let sys = DiffusionSystem::new(&g, &b0, &d).unwrap();
        assert_eq!(sys.num_nodes(), 4);
        assert_eq!(sys.num_edges(), 3);
        // Capacity-exact accounting: `new` allocates the CSR arrays with
        // exact capacities (n+1 offsets, m sources/targets/weights) and
        // five n-sized per-node arrays (b0, d, omd, db0, has_in).
        let (n, m) = (4usize, 3usize);
        assert_eq!(
            sys.heap_bytes(),
            2 * (n + 1) * std::mem::size_of::<usize>()
                + 2 * m * std::mem::size_of::<Node>()
                + (m + 4 * n) * std::mem::size_of::<f64>()
                + n
        );
        let in2: Vec<_> = sys.in_entries(2).collect();
        assert_eq!(in2, vec![(0, 0.5), (1, 0.5)]);
        assert_eq!(sys.out_neighbors(2), &[3]);
        assert!(DiffusionSystem::new(&g, &b0[..3], &d).is_err());
        assert!(DiffusionSystem::new(&g, &[2.0, 0.0, 0.0, 0.0], &d).is_err());
    }
}
