//! Per-user stubbornness (the diagonal of `D_q`).

use crate::error::validate_unit_range;
use crate::Result;

/// The diagonal of the FJ stubbornness matrix `D_q`: `d_v ∈ [0, 1]` is how
/// strongly user `v` clings to her initial opinion about the candidate.
///
/// * `d_v = 0` — non-stubborn: pure DeGroot averaging;
/// * `0 < d_v < 1` — partially stubborn;
/// * `d_v = 1` — fully stubborn: the opinion never moves (this is what
///   seeding forces).
#[derive(Debug, Clone, PartialEq)]
pub struct Stubbornness(Vec<f64>);

impl Stubbornness {
    /// Validates and wraps per-node stubbornness values.
    pub fn new(values: Vec<f64>) -> Result<Self> {
        validate_unit_range("stubbornness", &values)?;
        Ok(Stubbornness(values))
    }

    /// All users share the same stubbornness `d`.
    pub fn uniform(n: usize, d: f64) -> Result<Self> {
        Self::new(vec![d; n])
    }

    /// The DeGroot special case: nobody is stubborn.
    pub fn non_stubborn(n: usize) -> Self {
        Stubbornness(vec![0.0; n])
    }

    /// The underlying per-node values.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.0
    }

    /// Number of users.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Stubbornness of user `v`.
    #[inline]
    pub fn get(&self, v: u32) -> f64 {
        self.0[v as usize]
    }

    /// Consumes into the raw vector.
    pub fn into_inner(self) -> Vec<f64> {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_and_non_stubborn() {
        let s = Stubbornness::uniform(3, 0.5).unwrap();
        assert_eq!(s.as_slice(), &[0.5, 0.5, 0.5]);
        let z = Stubbornness::non_stubborn(2);
        assert_eq!(z.as_slice(), &[0.0, 0.0]);
        assert_eq!(z.len(), 2);
        assert!(!z.is_empty());
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(Stubbornness::new(vec![0.5, 1.2]).is_err());
        assert!(Stubbornness::uniform(2, -0.1).is_err());
    }

    #[test]
    fn get_and_into_inner() {
        let s = Stubbornness::new(vec![0.1, 0.9]).unwrap();
        assert_eq!(s.get(1), 0.9);
        assert_eq!(s.into_inner(), vec![0.1, 0.9]);
    }
}
