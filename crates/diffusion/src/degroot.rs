//! The DeGroot model as the stubbornness-free special case of FJ.

use crate::fj::{DiffusionBuffer, FjEngine};
use crate::Result;
use vom_graph::{Node, SocialGraph};

/// DeGroot evaluator: `B^(t+1) = B^(t) · W` (Eq. 1). Everything is
/// delegated to [`FjEngine`] with an all-zero stubbornness diagonal, so
/// every result proven for FJ holds here too, as the paper notes.
///
/// Seeding still pins seeds at opinion 1 (seeding sets `d_s = 1` even when
/// the underlying model is DeGroot — Problem 1 modifies `D_q`).
///
/// Like the [`FjEngine`] entry points it wraps, the per-call methods here
/// are deprecated in docs in favor of [`crate::Solver::solve`] over a
/// [`crate::DiffusionSystem`] built with zero stubbornness.
#[derive(Debug, Clone)]
pub struct DeGrootEngine<'a> {
    graph: &'a SocialGraph,
    b0: &'a [f64],
    zeros: Vec<f64>,
}

impl<'a> DeGrootEngine<'a> {
    /// Builds a DeGroot engine over `graph` with initial opinions `b0`.
    pub fn new(graph: &'a SocialGraph, b0: &'a [f64]) -> Result<Self> {
        let zeros = vec![0.0; graph.num_nodes()];
        // Validate eagerly via a throw-away FjEngine.
        FjEngine::new(graph, b0, &zeros)?;
        Ok(DeGrootEngine { graph, b0, zeros })
    }

    /// The equivalent FJ engine (zero stubbornness).
    pub fn as_fj(&self) -> FjEngine<'_> {
        FjEngine::new(self.graph, self.b0, &self.zeros).expect("validated at construction")
    }

    /// Computes `B^(t)[S]`.
    #[deprecated(
        since = "0.1.0",
        note = "build a zero-stubbornness DiffusionSystem and use Solver::solve"
    )]
    pub fn opinions_at(&self, t: usize, seeds: &[Node]) -> Vec<f64> {
        #[allow(deprecated)]
        self.as_fj().opinions_at(t, seeds)
    }

    /// Computes `B^(t)[S]` into caller scratch space.
    #[deprecated(
        since = "0.1.0",
        note = "build a zero-stubbornness DiffusionSystem and use Solver::solve"
    )]
    #[allow(deprecated)]
    pub fn opinions_at_with<'b>(
        &self,
        t: usize,
        seeds: &[Node],
        buf: &'b mut DiffusionBuffer,
    ) -> &'b [f64] {
        // Lifetime gymnastics: build the FJ view inline so the returned
        // slice only borrows `buf`.
        FjEngine::new(self.graph, self.b0, &self.zeros)
            .expect("validated at construction")
            .opinions_at_with(t, seeds, buf)
    }
}

#[cfg(test)]
// The suite pins the deprecated per-call surface against itself.
#[allow(deprecated)]
mod tests {
    use super::*;
    use vom_graph::builder::graph_from_edges;

    #[test]
    fn degroot_averages_in_neighbors() {
        // 0 -> 2, 1 -> 2 with equal weights: node 2 adopts the mean.
        let g = graph_from_edges(3, &[(0, 2, 1.0), (1, 2, 1.0)]).unwrap();
        let b0 = vec![0.2, 0.8, 0.0];
        let eng = DeGrootEngine::new(&g, &b0).unwrap();
        let b1 = eng.opinions_at(1, &[]);
        assert!((b1[2] - 0.5).abs() < 1e-12);
        // Sources never move.
        assert_eq!(b1[0], 0.2);
        assert_eq!(b1[1], 0.8);
    }

    #[test]
    fn consensus_on_strongly_connected_cycle() {
        // A 2-cycle swaps opinions each step under pure DeGroot.
        let g = graph_from_edges(2, &[(0, 1, 1.0), (1, 0, 1.0)]).unwrap();
        let eng = DeGrootEngine::new(&g, &[1.0, 0.0]).unwrap();
        assert_eq!(eng.opinions_at(1, &[]), vec![0.0, 1.0]);
        assert_eq!(eng.opinions_at(2, &[]), vec![1.0, 0.0]);
    }

    #[test]
    fn seeded_degroot_pins_the_seed() {
        let g = graph_from_edges(2, &[(0, 1, 1.0), (1, 0, 1.0)]).unwrap();
        let eng = DeGrootEngine::new(&g, &[0.0, 0.0]).unwrap();
        let b = eng.opinions_at(5, &[0]);
        assert_eq!(b, vec![1.0, 1.0]);
    }

    #[test]
    fn matches_fj_with_zero_stubbornness() {
        let g = graph_from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)]).unwrap();
        let b0 = vec![0.3, 0.6, 0.9];
        let zeros = vec![0.0; 3];
        let de = DeGrootEngine::new(&g, &b0).unwrap();
        let fj = FjEngine::new(&g, &b0, &zeros).unwrap();
        for t in 0..8 {
            assert_eq!(de.opinions_at(t, &[1]), fj.opinions_at(t, &[1]));
        }
    }

    #[test]
    fn buffer_variant_matches() {
        let g = graph_from_edges(2, &[(0, 1, 1.0)]).unwrap();
        let eng = DeGrootEngine::new(&g, &[0.7, 0.1]).unwrap();
        let mut buf = DiffusionBuffer::new(2);
        assert_eq!(
            eng.opinions_at_with(4, &[], &mut buf).to_vec(),
            eng.opinions_at(4, &[])
        );
    }
}
