//! Convergence analysis and per-step opinion-change tracking.
//!
//! The paper motivates the *finite time horizon* (Appendix B) by showing
//! that a significant fraction of users still change opinions before
//! `t = 30` (Figure 18) and that optimal seed sets differ across horizons.
//! These routines reproduce that analysis and detect FJ convergence.

use crate::fj::FjEngine;
use crate::solver::{DiffusionSystem, SolveOptions, SolveReport, Solver};
use std::sync::Arc;
use vom_graph::Node;

/// Result of running FJ until the opinions stop moving.
///
/// This is the historical, convergence-focused view; the solver-level
/// [`SolveReport`] carries the same information plus residual/frontier
/// detail, and this type is now derived from it.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceReport {
    /// Number of steps actually taken.
    pub steps: usize,
    /// Whether `max_v |b_v^(t) − b_v^(t−1)| < eps` was reached within the
    /// step budget.
    pub converged: bool,
    /// Opinions at the final step.
    pub opinions: Vec<f64>,
}

impl ConvergenceReport {
    /// Derives the legacy report from a solver run.
    fn from_solve(report: SolveReport, eps: f64, opinions: Vec<f64>) -> ConvergenceReport {
        ConvergenceReport {
            steps: report.steps,
            // The historical loop only tested deltas of executed steps, so a
            // zero step budget never counted as converged.
            converged: report.steps > 0 && report.residual < eps,
            opinions,
        }
    }
}

/// Iterates FJ with seed set `seeds` until the maximum per-node change
/// drops below `eps`, or `max_steps` is exhausted.
///
/// Compatibility wrapper over [`Solver::solve`] with
/// [`SolveOptions::with_tolerance`] — one `O(t · m)` pass instead of the
/// historical `O(t² · m)` re-evaluation per horizon. New code should build
/// a [`DiffusionSystem`] once and call the solver directly.
#[deprecated(
    since = "0.1.0",
    note = "build a DiffusionSystem and use Solver::solve with SolveOptions::with_tolerance"
)]
pub fn run_until_convergence(
    engine: &FjEngine<'_>,
    seeds: &[Node],
    eps: f64,
    max_steps: usize,
) -> ConvergenceReport {
    let system = Arc::new(
        DiffusionSystem::new(engine.graph(), engine.initial(), engine.stubbornness())
            .expect("engine inputs were validated at construction"),
    );
    let mut solver = Solver::new(system);
    let report = solver.solve(seeds, &SolveOptions::exact(max_steps).with_tolerance(eps));
    ConvergenceReport::from_solve(report, eps, solver.opinions().to_vec())
}

/// For each `t ∈ 1..=t_max`, the fraction of nodes whose opinion changed
/// by more than `tolerance_percent`% of its previous value — exactly the
/// quantity plotted in Figure 18:
/// `|b^(t) − b^(t−1)| > (∆/100) · b^(t−1)`.
pub fn change_fraction_series(
    engine: &FjEngine<'_>,
    seeds: &[Node],
    t_max: usize,
    tolerance_percent: f64,
) -> Vec<f64> {
    let traj = engine.trajectory(t_max, seeds);
    let n = engine.graph().num_nodes() as f64;
    let thr = tolerance_percent / 100.0;
    traj.windows(2)
        .map(|w| {
            let changed = w[0]
                .iter()
                .zip(&w[1])
                .filter(|(prev, cur)| (*cur - *prev).abs() > thr * **prev)
                .count();
            changed as f64 / n
        })
        .collect()
}

/// Oblivious nodes per the paper's §II-A: non-stubborn nodes not reachable
/// from any (partially or fully) stubborn node. FJ convergence is
/// guaranteed iff the subgraph induced by oblivious nodes is regular or
/// empty; detecting them lets callers check the precondition.
pub fn oblivious_nodes(engine: &FjEngine<'_>) -> Vec<Node> {
    let g = engine.graph();
    let d = engine.stubbornness();
    let n = g.num_nodes();
    // Nodes without in-edges hold their initial opinion forever; they act
    // as stubborn sources for this analysis.
    let stubborn: Vec<Node> = (0..n as Node)
        .filter(|&v| d[v as usize] > 0.0 || !g.has_in_edges(v))
        .collect();
    let mut reachable = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    for &s in &stubborn {
        reachable[s as usize] = true;
        queue.push_back(s);
    }
    while let Some(v) = queue.pop_front() {
        for &w in g.out_neighbors(v) {
            if !reachable[w as usize] {
                reachable[w as usize] = true;
                queue.push_back(w);
            }
        }
    }
    (0..n as Node)
        .filter(|&v| d[v as usize] == 0.0 && g.has_in_edges(v) && !reachable[v as usize])
        .collect()
}

#[cfg(test)]
// Pins the deprecated compatibility wrapper against the solver.
#[allow(deprecated)]
mod tests {
    use super::*;
    use vom_graph::builder::graph_from_edges;

    #[test]
    fn converges_on_running_example() {
        let g = graph_from_edges(4, &[(0, 2, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap();
        let b0 = vec![0.40, 0.80, 0.60, 0.90];
        let d = vec![0.0, 0.0, 0.5, 0.5];
        let eng = FjEngine::new(&g, &b0, &d).unwrap();
        let rep = run_until_convergence(&eng, &[], 1e-9, 500);
        assert!(rep.converged);
        // Fixed point of node 2: b = 0.5*0.6 + 0.5*0.6 = 0.6.
        assert!((rep.opinions[2] - 0.6).abs() < 1e-6);
        // Fixed point of node 3: b = 0.5*b2 + 0.5*0.9 -> 0.75.
        assert!((rep.opinions[3] - 0.75).abs() < 1e-6);
    }

    #[test]
    fn non_convergent_cycle_hits_step_budget() {
        // Pure 2-cycle oscillates forever under DeGroot.
        let g = graph_from_edges(2, &[(0, 1, 1.0), (1, 0, 1.0)]).unwrap();
        let eng = FjEngine::new(&g, &[1.0, 0.0], &[0.0, 0.0]).unwrap();
        let rep = run_until_convergence(&eng, &[], 1e-9, 50);
        assert!(!rep.converged);
        assert_eq!(rep.steps, 50);
    }

    #[test]
    fn change_fraction_decays_to_zero() {
        let g = graph_from_edges(4, &[(0, 2, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap();
        let b0 = vec![0.40, 0.80, 0.60, 0.90];
        let d = vec![0.0, 0.0, 0.5, 0.5];
        let eng = FjEngine::new(&g, &b0, &d).unwrap();
        let series = change_fraction_series(&eng, &[], 40, 1.0);
        assert_eq!(series.len(), 40);
        assert!(series[0] > 0.0, "something changes at t=1");
        assert_eq!(*series.last().unwrap(), 0.0, "settled by t=40");
        // Larger tolerance can only reduce the changing fraction.
        let loose = change_fraction_series(&eng, &[], 40, 20.0);
        for (tight, loose) in series.iter().zip(&loose) {
            assert!(loose <= tight);
        }
    }

    #[test]
    fn oblivious_cycle_is_detected() {
        // 2-cycle of non-stubborn nodes, unreachable from anything
        // stubborn; node 2 is fed only by the cycle, so all three are
        // oblivious (nothing stubborn exists in this graph).
        let g = graph_from_edges(3, &[(0, 1, 1.0), (1, 0, 1.0), (0, 2, 1.0)]).unwrap();
        let eng = FjEngine::new(&g, &[0.1, 0.2, 0.3], &[0.0, 0.0, 0.0]).unwrap();
        let obl = oblivious_nodes(&eng);
        assert_eq!(obl, vec![0, 1, 2]);
    }

    #[test]
    fn stubbornness_removes_obliviousness() {
        let g = graph_from_edges(2, &[(0, 1, 1.0), (1, 0, 1.0)]).unwrap();
        let eng = FjEngine::new(&g, &[0.1, 0.2], &[0.5, 0.0]).unwrap();
        assert!(oblivious_nodes(&eng).is_empty());
    }

    #[test]
    fn source_fed_nodes_are_not_oblivious() {
        // 0 (no in-edges) -> 1: node 1 is anchored by the source.
        let g = graph_from_edges(2, &[(0, 1, 1.0)]).unwrap();
        let eng = FjEngine::new(&g, &[0.1, 0.2], &[0.0, 0.0]).unwrap();
        assert!(oblivious_nodes(&eng).is_empty());
    }
}
