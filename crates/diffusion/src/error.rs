//! Error type for diffusion inputs.

use std::fmt;

/// Errors produced while constructing diffusion inputs.
#[derive(Debug, Clone, PartialEq)]
pub enum DiffusionError {
    /// A per-node vector's length did not match the graph's node count.
    LengthMismatch {
        /// What the vector holds ("initial opinions", "stubbornness", …).
        what: &'static str,
        /// Supplied length.
        got: usize,
        /// Expected length (`n`).
        expected: usize,
    },
    /// An opinion or stubbornness value was outside `[0, 1]` (or NaN).
    ValueOutOfRange {
        /// What the value is.
        what: &'static str,
        /// Node index of the offending entry.
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// An instance needs at least one candidate (the paper assumes `r > 1`
    /// for the competitive scores, but cumulative works with one).
    NoCandidates,
    /// A candidate index was `>= r`.
    CandidateOutOfBounds {
        /// The offending candidate index.
        candidate: usize,
        /// Number of candidates `r`.
        r: usize,
    },
}

impl fmt::Display for DiffusionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiffusionError::LengthMismatch {
                what,
                got,
                expected,
            } => write!(f, "{what} has length {got}, expected {expected}"),
            DiffusionError::ValueOutOfRange { what, index, value } => {
                write!(f, "{what}[{index}] = {value} is outside [0, 1]")
            }
            DiffusionError::NoCandidates => write!(f, "instance must have at least one candidate"),
            DiffusionError::CandidateOutOfBounds { candidate, r } => {
                write!(f, "candidate {candidate} out of bounds for {r} candidates")
            }
        }
    }
}

impl std::error::Error for DiffusionError {}

/// Validates that every entry of `values` lies in `[0, 1]`.
pub(crate) fn validate_unit_range(what: &'static str, values: &[f64]) -> super::Result<()> {
    for (i, &v) in values.iter().enumerate() {
        if !(0.0..=1.0).contains(&v) {
            return Err(DiffusionError::ValueOutOfRange {
                what,
                index: i,
                value: v,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_range_accepts_bounds() {
        validate_unit_range("x", &[0.0, 1.0, 0.5]).unwrap();
    }

    #[test]
    fn unit_range_rejects_nan_and_out_of_range() {
        assert!(validate_unit_range("x", &[f64::NAN]).is_err());
        assert!(validate_unit_range("x", &[-0.1]).is_err());
        assert!(validate_unit_range("x", &[1.1]).is_err());
    }

    #[test]
    fn messages_name_the_field() {
        let e = DiffusionError::LengthMismatch {
            what: "stubbornness",
            got: 3,
            expected: 4,
        };
        assert!(e.to_string().contains("stubbornness"));
    }
}
