//! Exact Friedkin–Johnsen iteration (the paper's **DM** building block).

use crate::error::{validate_unit_range, DiffusionError};
use crate::Result;
use vom_graph::{Node, SocialGraph};

/// Scratch space for repeated FJ evaluations.
///
/// Greedy seed selection evaluates `O(k · n)` seed sets; reusing the two
/// iteration vectors and the seed bitmap avoids per-evaluation allocation.
#[derive(Debug, Clone)]
pub struct DiffusionBuffer {
    cur: Vec<f64>,
    next: Vec<f64>,
    is_seed: Vec<bool>,
    marked: Vec<Node>,
}

impl DiffusionBuffer {
    /// Creates scratch space for `n` nodes.
    pub fn new(n: usize) -> Self {
        DiffusionBuffer {
            cur: vec![0.0; n],
            next: vec![0.0; n],
            is_seed: vec![false; n],
            marked: Vec::new(),
        }
    }

    fn mark_seeds(&mut self, seeds: &[Node]) {
        for &s in seeds {
            if !self.is_seed[s as usize] {
                self.is_seed[s as usize] = true;
                self.marked.push(s);
            }
        }
    }

    fn clear_seeds(&mut self) {
        for s in self.marked.drain(..) {
            self.is_seed[s as usize] = false;
        }
    }
}

/// Exact FJ evaluator for one candidate: given `W_q` (inside the graph),
/// `B_q^(0)` and `D_q`, computes `B_q^(t)[S]` for arbitrary seed sets `S`
/// by `t` sparse matrix–vector products (`O(t · m)` per evaluation,
/// matching the paper's §III-C analysis).
///
/// Seeds are *pinned* during iteration (opinion 1, fully stubborn) instead
/// of copying modified `B⁰`/`D` vectors, which is what makes greedy
/// marginal-gain evaluation cheap.
#[derive(Debug, Clone, Copy)]
pub struct FjEngine<'a> {
    graph: &'a SocialGraph,
    b0: &'a [f64],
    d: &'a [f64],
}

impl<'a> FjEngine<'a> {
    /// Validates lengths and ranges and builds an engine.
    pub fn new(graph: &'a SocialGraph, b0: &'a [f64], d: &'a [f64]) -> Result<Self> {
        let n = graph.num_nodes();
        if b0.len() != n {
            return Err(DiffusionError::LengthMismatch {
                what: "initial opinions",
                got: b0.len(),
                expected: n,
            });
        }
        if d.len() != n {
            return Err(DiffusionError::LengthMismatch {
                what: "stubbornness",
                got: d.len(),
                expected: n,
            });
        }
        validate_unit_range("initial opinion", b0)?;
        validate_unit_range("stubbornness", d)?;
        Ok(FjEngine { graph, b0, d })
    }

    /// The underlying graph.
    pub fn graph(&self) -> &SocialGraph {
        self.graph
    }

    /// Initial opinions `B_q^(0)` (without seeds applied).
    pub fn initial(&self) -> &[f64] {
        self.b0
    }

    /// Stubbornness diagonal `D_q` (without seeds applied).
    pub fn stubbornness(&self) -> &[f64] {
        self.d
    }

    /// Computes `B_q^(t)[S]`, allocating a fresh buffer.
    ///
    /// Deprecated in favor of [`crate::Solver::solve`] — build a
    /// [`crate::DiffusionSystem`] once per candidate and solve through it
    /// to get scratch reuse, fixed-point early-exit, and warm starts. This
    /// entry point is kept (bit-identical arithmetic, no early exit) for
    /// callers holding bare slices and as the independent reference the
    /// solver's equivalence tests check against.
    #[deprecated(
        since = "0.1.0",
        note = "build a DiffusionSystem and use Solver::solve"
    )]
    pub fn opinions_at(&self, t: usize, seeds: &[Node]) -> Vec<f64> {
        let mut buf = DiffusionBuffer::new(self.graph.num_nodes());
        #[allow(deprecated)]
        self.opinions_at_with(t, seeds, &mut buf).to_vec()
    }

    /// Computes `B_q^(t)[S]` into `buf`; the returned slice borrows `buf`.
    ///
    /// Deprecated in favor of [`crate::Solver::solve`] (see
    /// [`FjEngine::opinions_at`]); [`crate::Solver`] owns its scratch, so
    /// the separate [`DiffusionBuffer`] becomes unnecessary there.
    #[deprecated(
        since = "0.1.0",
        note = "build a DiffusionSystem and use Solver::solve"
    )]
    pub fn opinions_at_with<'b>(
        &self,
        t: usize,
        seeds: &[Node],
        buf: &'b mut DiffusionBuffer,
    ) -> &'b [f64] {
        buf.mark_seeds(seeds);
        buf.cur.copy_from_slice(self.b0);
        for &s in seeds {
            buf.cur[s as usize] = 1.0;
        }
        for _ in 0..t {
            self.step(&buf.is_seed, &buf.cur, &mut buf.next);
            std::mem::swap(&mut buf.cur, &mut buf.next);
        }
        buf.clear_seeds();
        &buf.cur
    }

    /// Full trajectory `[B^(0)[S], B^(1)[S], …, B^(t)[S]]` (t + 1 rows).
    pub fn trajectory(&self, t: usize, seeds: &[Node]) -> Vec<Vec<f64>> {
        let mut buf = DiffusionBuffer::new(self.graph.num_nodes());
        buf.mark_seeds(seeds);
        buf.cur.copy_from_slice(self.b0);
        for &s in seeds {
            buf.cur[s as usize] = 1.0;
        }
        let mut out = Vec::with_capacity(t + 1);
        out.push(buf.cur.clone());
        for _ in 0..t {
            self.step(&buf.is_seed, &buf.cur, &mut buf.next);
            std::mem::swap(&mut buf.cur, &mut buf.next);
            out.push(buf.cur.clone());
        }
        buf.clear_seeds();
        out
    }

    /// One FJ step: `next = cur · W · (I − D[S]) + B⁰[S] · D[S]`.
    ///
    /// Nodes without in-edges retain their current (= initial) opinion,
    /// matching the paper's convention; seeds are pinned at 1.
    fn step(&self, is_seed: &[bool], cur: &[f64], next: &mut [f64]) {
        let g = self.graph;
        for v in 0..g.num_nodes() {
            let vu = v as Node;
            next[v] = if is_seed[v] {
                1.0
            } else if !g.has_in_edges(vu) {
                cur[v]
            } else {
                let mut acc = 0.0;
                for (j, w) in g.in_entries(vu) {
                    acc += w * cur[j as usize];
                }
                let dv = self.d[v];
                (1.0 - dv) * acc + dv * self.b0[v]
            };
        }
    }
}

#[cfg(test)]
// The suite pins the deprecated per-call surface (the solver's
// equivalence reference), so it exercises it on purpose.
#[allow(deprecated)]
mod tests {
    use super::*;
    use vom_graph::builder::graph_from_edges;

    /// The paper's Figure 1 running example (0-indexed).
    fn running_example() -> (SocialGraph, Vec<f64>, Vec<f64>) {
        let g = graph_from_edges(4, &[(0, 2, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap();
        let b0 = vec![0.40, 0.80, 0.60, 0.90];
        let d = vec![0.0, 0.0, 0.5, 0.5];
        (g, b0, d)
    }

    #[test]
    fn table1_no_seeds() {
        let (g, b0, d) = running_example();
        let eng = FjEngine::new(&g, &b0, &d).unwrap();
        let b1 = eng.opinions_at(1, &[]);
        // Table I, row {}: 0.40, 0.80, 0.60, 0.75.
        let expected = [0.40, 0.80, 0.60, 0.75];
        for (got, want) in b1.iter().zip(expected) {
            assert!((got - want).abs() < 1e-12, "{got} vs {want}");
        }
    }

    #[test]
    fn table1_seed_rows() {
        let (g, b0, d) = running_example();
        let eng = FjEngine::new(&g, &b0, &d).unwrap();
        let cases: [(&[Node], [f64; 4]); 5] = [
            (&[0], [1.00, 0.80, 0.75, 0.75]),
            (&[1], [0.40, 1.00, 0.65, 0.75]),
            (&[2], [0.40, 0.80, 1.00, 0.95]),
            (&[3], [0.40, 0.80, 0.60, 1.00]),
            (&[0, 1], [1.00, 1.00, 0.80, 0.75]),
        ];
        for (seeds, expected) in cases {
            let b1 = eng.opinions_at(1, seeds);
            for (v, (got, want)) in b1.iter().zip(expected).enumerate() {
                assert!(
                    (got - want).abs() < 1e-12,
                    "seeds {seeds:?} node {v}: {got} vs {want}"
                );
            }
        }
    }

    #[test]
    fn horizon_zero_returns_seeded_initial() {
        let (g, b0, d) = running_example();
        let eng = FjEngine::new(&g, &b0, &d).unwrap();
        let b = eng.opinions_at(0, &[2]);
        assert_eq!(b, vec![0.40, 0.80, 1.00, 0.90]);
    }

    #[test]
    fn seeds_stay_pinned_across_steps() {
        let (g, b0, d) = running_example();
        let eng = FjEngine::new(&g, &b0, &d).unwrap();
        for t in 0..10 {
            let b = eng.opinions_at(t, &[2]);
            assert_eq!(b[2], 1.0, "seed must stay at 1 at t={t}");
        }
    }

    #[test]
    fn buffer_reuse_matches_fresh_runs_and_clears_seeds() {
        let (g, b0, d) = running_example();
        let eng = FjEngine::new(&g, &b0, &d).unwrap();
        let mut buf = DiffusionBuffer::new(4);
        let with_seed = eng.opinions_at_with(3, &[0], &mut buf).to_vec();
        assert_eq!(with_seed, eng.opinions_at(3, &[0]));
        // Seed marks must not leak into the next evaluation.
        let without = eng.opinions_at_with(3, &[], &mut buf).to_vec();
        assert_eq!(without, eng.opinions_at(3, &[]));
        assert!(without[0] < 1.0);
    }

    #[test]
    fn trajectory_is_consistent_with_point_queries() {
        let (g, b0, d) = running_example();
        let eng = FjEngine::new(&g, &b0, &d).unwrap();
        let traj = eng.trajectory(5, &[1]);
        assert_eq!(traj.len(), 6);
        for (t, row) in traj.iter().enumerate() {
            assert_eq!(row, &eng.opinions_at(t, &[1]), "mismatch at t={t}");
        }
    }

    #[test]
    fn opinions_remain_in_unit_interval() {
        let (g, b0, d) = running_example();
        let eng = FjEngine::new(&g, &b0, &d).unwrap();
        for t in 0..50 {
            for b in eng.opinions_at(t, &[3]) {
                assert!((0.0..=1.0).contains(&b));
            }
        }
    }

    #[test]
    fn fully_stubborn_node_never_moves() {
        let g = graph_from_edges(2, &[(0, 1, 1.0)]).unwrap();
        let b0 = vec![1.0, 0.2];
        let d = vec![0.0, 1.0];
        let eng = FjEngine::new(&g, &b0, &d).unwrap();
        let b = eng.opinions_at(20, &[]);
        assert_eq!(b[1], 0.2);
    }

    #[test]
    fn degroot_limit_on_path_converges_to_source() {
        // 0 -> 1 with d = 0: node 1 adopts node 0's opinion after 1 step.
        let g = graph_from_edges(2, &[(0, 1, 1.0)]).unwrap();
        let b0 = vec![0.9, 0.1];
        let d = vec![0.0, 0.0];
        let eng = FjEngine::new(&g, &b0, &d).unwrap();
        assert_eq!(eng.opinions_at(1, &[]), vec![0.9, 0.9]);
    }

    #[test]
    fn rejects_bad_inputs() {
        let (g, b0, _) = running_example();
        assert!(FjEngine::new(&g, &b0, &[0.0; 3]).is_err());
        assert!(FjEngine::new(&g, &[0.0; 3], &[0.0; 4]).is_err());
        assert!(FjEngine::new(&g, &[2.0, 0.0, 0.0, 0.0], &[0.0; 4]).is_err());
        assert!(FjEngine::new(&g, &b0, &[0.0, 0.0, 0.0, -0.5]).is_err());
    }
}
