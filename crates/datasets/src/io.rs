//! Plain-text dataset IO, so real data can be swapped in for the
//! synthetic replicas.
//!
//! Format (whitespace-separated, `#` comments):
//!
//! ```text
//! # edges: src dst raw_weight
//! e 0 2 1.0
//! # initial opinion of user v about candidate q: q v value
//! b 0 2 0.6
//! # stubbornness: v value
//! d 2 0.5
//! ```

use crate::replicas::Dataset;
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;
use std::sync::Arc;
use vom_diffusion::{Instance, OpinionMatrix};
use vom_graph::{GraphBuilder, WeightTransform};

/// IO errors: IO itself or malformed content.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// A malformed line, with its 1-based number.
    Parse {
        /// 1-based line number of the malformed line.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// Inconsistent content (e.g. opinions out of range).
    Invalid(String),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse { line, message } => write!(f, "line {line}: {message}"),
            IoError::Invalid(m) => write!(f, "invalid dataset: {m}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Writes a dataset (graph weights are the *normalized* ones; loading
/// re-normalizes, which is idempotent).
pub fn save_dataset(ds: &Dataset, path: &Path) -> Result<(), IoError> {
    let f = std::fs::File::create(path)?;
    let mut w = BufWriter::new(f);
    let inst = &ds.instance;
    let g = inst.graph_of(0);
    writeln!(w, "# vom dataset: {}", ds.name)?;
    writeln!(w, "n {} {}", inst.num_nodes(), inst.num_candidates())?;
    for name in &ds.candidate_names {
        writeln!(w, "c {}", name)?;
    }
    for v in g.nodes() {
        for (u, weight) in g.in_entries(v) {
            writeln!(w, "e {u} {v} {weight}")?;
        }
    }
    for q in 0..inst.num_candidates() {
        for (v, b) in inst.candidate(q).initial.iter().enumerate() {
            writeln!(w, "b {q} {v} {b}")?;
        }
    }
    for (v, d) in inst.candidate(0).stubbornness.iter().enumerate() {
        writeln!(w, "d {v} {d}")?;
    }
    Ok(())
}

/// Loads a dataset previously written with [`save_dataset`] (or authored
/// by hand for real data). All candidates share the stubbornness vector
/// and graph, mirroring the paper's experimental setup.
pub fn load_dataset(path: &Path) -> Result<Dataset, IoError> {
    let f = std::fs::File::open(path)?;
    let reader = std::io::BufReader::new(f);
    let mut n = 0usize;
    let mut r = 0usize;
    let mut names = Vec::new();
    let mut builder: Option<GraphBuilder> = None;
    let mut opinions: Vec<Vec<f64>> = Vec::new();
    let mut stubbornness: Vec<f64> = Vec::new();

    let parse_err = |line: usize, message: &str| IoError::Parse {
        line,
        message: message.to_string(),
    };

    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = i + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let tag = parts.next().expect("non-empty line");
        let next_f64 = |parts: &mut dyn Iterator<Item = &str>| -> Result<f64, IoError> {
            parts
                .next()
                .ok_or_else(|| parse_err(lineno, "missing field"))?
                .parse::<f64>()
                .map_err(|e| parse_err(lineno, &e.to_string()))
        };
        match tag {
            "n" => {
                n = next_f64(&mut parts)? as usize;
                r = next_f64(&mut parts)? as usize;
                builder = Some(GraphBuilder::new(n));
                opinions = vec![vec![0.0; n]; r];
                stubbornness = vec![0.0; n];
            }
            "c" => names.push(parts.collect::<Vec<_>>().join(" ")),
            "e" => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| parse_err(lineno, "edge before header"))?;
                let u = next_f64(&mut parts)? as u32;
                let v = next_f64(&mut parts)? as u32;
                let w = next_f64(&mut parts)?;
                b.add_edge(u, v, w);
            }
            "b" => {
                let q = next_f64(&mut parts)? as usize;
                let v = next_f64(&mut parts)? as usize;
                let val = next_f64(&mut parts)?;
                if q >= r || v >= n {
                    return Err(parse_err(lineno, "opinion index out of range"));
                }
                opinions[q][v] = val;
            }
            "d" => {
                let v = next_f64(&mut parts)? as usize;
                let val = next_f64(&mut parts)?;
                if v >= n {
                    return Err(parse_err(lineno, "stubbornness index out of range"));
                }
                stubbornness[v] = val;
            }
            other => return Err(parse_err(lineno, &format!("unknown tag '{other}'"))),
        }
    }
    let builder = builder.ok_or_else(|| IoError::Invalid("missing 'n' header".into()))?;
    let graph = Arc::new(
        builder
            .build_with(WeightTransform::Raw)
            .map_err(|e| IoError::Invalid(e.to_string()))?,
    );
    let initial =
        OpinionMatrix::from_rows(opinions).map_err(|e| IoError::Invalid(e.to_string()))?;
    let instance = Instance::shared(graph, initial, stubbornness)
        .map_err(|e| IoError::Invalid(e.to_string()))?;
    Ok(Dataset {
        name: "loaded",
        instance,
        default_target: 0,
        candidate_names: names,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replicas::{dblp_like, ReplicaParams};

    #[test]
    fn roundtrip_preserves_instance() {
        let ds = dblp_like(&ReplicaParams::at_scale(0.002, 5));
        let dir = std::env::temp_dir().join("vom_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.txt");
        save_dataset(&ds, &path).unwrap();
        let loaded = load_dataset(&path).unwrap();
        let (a, b) = (&ds.instance, &loaded.instance);
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.num_candidates(), b.num_candidates());
        assert_eq!(loaded.candidate_names, ds.candidate_names);
        // Diffusion results must match exactly: same graph, opinions,
        // stubbornness.
        let ba = a.opinions_at(5, 0, &[1]);
        let bb = b.opinions_at(5, 0, &[1]);
        for q in 0..a.num_candidates() {
            for (x, y) in ba.row(q).iter().zip(bb.row(q)) {
                assert!((x - y).abs() < 1e-9);
            }
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn hand_authored_file_parses_with_comments_and_blanks() {
        let dir = std::env::temp_dir().join("vom_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hand.txt");
        std::fs::write(
            &path,
            "# a tiny two-candidate dataset\n\
             n 3 2\n\
             c Alice\n\
             c Bob the Builder\n\
             \n\
             e 0 2 1.0\n\
             e 1 2 3.0\n\
             # opinions\n\
             b 0 0 0.9\n\
             b 1 0 0.1\n\
             b 0 2 0.4\n\
             d 2 0.5\n",
        )
        .unwrap();
        let ds = load_dataset(&path).unwrap();
        assert_eq!(ds.instance.num_nodes(), 3);
        assert_eq!(ds.instance.num_candidates(), 2);
        assert_eq!(
            ds.candidate_names,
            vec!["Alice".to_string(), "Bob the Builder".to_string()],
            "multi-word names survive"
        );
        // Raw weights 1.0/3.0 normalize to 0.25/0.75 on node 2's column.
        let g = ds.instance.graph_of(0);
        let total: f64 = g.in_weights(2).iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!(g.in_weights(2).contains(&0.75));
        assert_eq!(ds.instance.candidate(0).initial[0], 0.9);
        assert_eq!(ds.instance.candidate(0).stubbornness[2], 0.5);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn parse_errors_carry_the_line_number() {
        let dir = std::env::temp_dir().join("vom_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("lineno.txt");
        std::fs::write(&path, "n 2 1\ne 0 1 1.0\ne 0 not_a_number 1.0\n").unwrap();
        let err = load_dataset(&path).unwrap_err();
        match err {
            IoError::Parse { line, .. } => assert_eq!(line, 3),
            other => panic!("expected Parse, got {other}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_header_and_missing_fields_are_rejected() {
        let dir = std::env::temp_dir().join("vom_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("broken.txt");
        // Edge before the 'n' header.
        std::fs::write(&path, "e 0 1 1.0\n").unwrap();
        assert!(matches!(
            load_dataset(&path),
            Err(IoError::Parse { line: 1, .. })
        ));
        // No header at all.
        std::fs::write(&path, "# only comments\n").unwrap();
        assert!(matches!(load_dataset(&path), Err(IoError::Invalid(_))));
        // Truncated edge line.
        std::fs::write(&path, "n 2 1\ne 0\n").unwrap();
        assert!(matches!(
            load_dataset(&path),
            Err(IoError::Parse { line: 2, .. })
        ));
        // Out-of-range opinion value is caught at instance validation.
        std::fs::write(&path, "n 2 1\ne 0 1 1.0\nb 0 0 7.5\n").unwrap();
        assert!(matches!(load_dataset(&path), Err(IoError::Invalid(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn io_error_from_filesystem_is_propagated() {
        let err = load_dataset(Path::new("/nonexistent/vom/nope.txt")).unwrap_err();
        assert!(matches!(err, IoError::Io(_)));
        assert!(err.to_string().contains("io error"));
    }

    #[test]
    fn rejects_garbage() {
        let dir = std::env::temp_dir().join("vom_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.txt");
        std::fs::write(&path, "x 1 2 3\n").unwrap();
        assert!(load_dataset(&path).is_err());
        std::fs::write(&path, "n 2 1\nb 5 0 0.5\n").unwrap();
        assert!(load_dataset(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
