//! Scaled synthetic replicas of the paper's five datasets (Table III).

use crate::dist::{beta, interaction_count};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use vom_diffusion::{Instance, OpinionMatrix};
use vom_graph::{generators, Candidate, GraphBuilder, WeightTransform};

/// Generation parameters shared by all replicas.
#[derive(Debug, Clone)]
pub struct ReplicaParams {
    /// Fraction of the paper's node count to generate (e.g. `0.01` turns
    /// the 63,910-node DBLP into ~639 nodes). Edge counts scale along.
    pub scale: f64,
    /// RNG seed; everything downstream is deterministic in it.
    pub seed: u64,
    /// The `µ` of the `1 − e^{−a/µ}` weight transform (paper default 10;
    /// swept in Figure 19).
    pub mu: f64,
}

impl Default for ReplicaParams {
    fn default() -> Self {
        ReplicaParams {
            scale: 0.05,
            seed: 42,
            mu: 10.0,
        }
    }
}

impl ReplicaParams {
    /// Params with a given scale, paper-default µ.
    pub fn at_scale(scale: f64, seed: u64) -> Self {
        ReplicaParams {
            scale,
            seed,
            mu: 10.0,
        }
    }
}

/// A generated dataset: the diffusion instance plus display metadata.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Dataset name as in Table III.
    pub name: &'static str,
    /// The multi-candidate diffusion instance.
    pub instance: Instance,
    /// The paper's default target candidate for this dataset.
    pub default_target: Candidate,
    /// Candidate display names.
    pub candidate_names: Vec<String>,
}

/// Paper-scale node/edge counts (Table III) for proportional scaling.
struct PaperScale {
    nodes: usize,
    edges: usize,
}

fn scaled(paper: PaperScale, scale: f64) -> (usize, usize) {
    let n = ((paper.nodes as f64 * scale).round() as usize).max(50);
    // The `4n` floor keeps tiny replicas connected enough to diffuse,
    // but a simple digraph holds at most `n·(n−1)` edges — without the
    // cap the edge target is unreachable and generation rejects forever.
    // The cap never binds at the floor's own scale (`4n ≤ n·(n−1)` for
    // every `n ≥ 50`), so existing replicas are unchanged.
    let m = ((paper.edges as f64 * scale).round() as usize)
        .max(4 * n)
        .min(n.saturating_mul(n - 1));
    (n, m)
}

/// How initial opinions for one candidate are drawn.
enum OpinionModel {
    /// `Beta(a, b)` i.i.d. across users.
    Beta(f64, f64),
    /// Polarized: with probability `w` the user is a supporter
    /// (`Beta(5, 1.5)`), otherwise an opponent (`Beta(1.5, 5)`) — the
    /// sentiment-score regime of the Twitter datasets.
    Bimodal(f64),
}

impl OpinionModel {
    fn sample(&self, rng: &mut StdRng) -> f64 {
        match *self {
            OpinionModel::Beta(a, b) => beta(a, b, rng),
            OpinionModel::Bimodal(w) => {
                if rng.gen::<f64>() < w {
                    beta(5.0, 1.5, rng)
                } else {
                    beta(1.5, 5.0, rng)
                }
            }
        }
    }
}

enum StubbornnessModel {
    /// `U[0, 1]` — the paper's protocol for the Twitter datasets.
    Uniform,
    /// Engagement-derived (1 − opinion variance over time): moderate,
    /// right-skewed stubbornness `Beta(2.5, 3)` — the DBLP/Yelp regime.
    /// (Kept below the Twitter uniform mean so small replicas, whose
    /// diameters are short, still show multi-step dynamics — Figure 18.)
    Engagement,
}

impl StubbornnessModel {
    fn sample(&self, rng: &mut StdRng) -> f64 {
        match self {
            StubbornnessModel::Uniform => rng.gen::<f64>(),
            StubbornnessModel::Engagement => beta(2.5, 3.0, rng),
        }
    }
}

/// Shared replica assembly: heavy-tailed Chung–Lu topology, geometric
/// interaction counts through the `1 − e^{−a/µ}` transform, per-candidate
/// opinions and stubbornness.
fn build_dataset(
    name: &'static str,
    paper: PaperScale,
    candidate_names: Vec<String>,
    opinion_models: Vec<OpinionModel>,
    stubbornness: StubbornnessModel,
    default_target: Candidate,
    params: &ReplicaParams,
) -> Dataset {
    let (n, m) = scaled(paper, params.scale);
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut edges = generators::chung_lu(n, m, 2.3, &mut rng);
    // Replace unit counts with geometric interaction counts (paper:
    // co-authorships / common visits / retweets).
    for e in &mut edges {
        e.2 = interaction_count(0.4, &mut rng);
    }
    let mut builder = GraphBuilder::new(n).with_edge_capacity(edges.len());
    for (s, d, w) in edges {
        builder.add_edge(s, d, w);
    }
    let graph = Arc::new(
        builder
            .build_with(WeightTransform::ExpSaturation { mu: params.mu })
            .expect("generated edges are valid"),
    );

    let r = opinion_models.len();
    let mut rows = Vec::with_capacity(r);
    for model in &opinion_models {
        rows.push((0..n).map(|_| model.sample(&mut rng)).collect::<Vec<_>>());
    }
    let initial = OpinionMatrix::from_rows(rows).expect("sampled opinions are in range");
    let d: Vec<f64> = (0..n).map(|_| stubbornness.sample(&mut rng)).collect();
    let instance = Instance::shared(graph, initial, d).expect("consistent by construction");
    Dataset {
        name,
        instance,
        default_target,
        candidate_names,
    }
}

/// DBLP-like collaboration network (paper: 63,910 senior researchers,
/// 2.85M co-author edges, 2 candidates). The target ("Joseph A. Konstan")
/// starts behind the competitor, as in the case study.
pub fn dblp_like(params: &ReplicaParams) -> Dataset {
    build_dataset(
        "DBLP",
        PaperScale {
            nodes: 63_910,
            edges: 2_847_120,
        },
        vec!["Joseph A. Konstan".into(), "Yannis E. Ioannidis".into()],
        vec![OpinionModel::Beta(2.0, 3.0), OpinionModel::Beta(3.0, 2.0)],
        StubbornnessModel::Engagement,
        0,
        params,
    )
}

/// Yelp-like friendship network (paper: 966,240 users, 8.8M edges, 10
/// restaurant-category candidates with ratings-derived opinions). The
/// default target is "Chinese".
pub fn yelp_like(params: &ReplicaParams) -> Dataset {
    let categories = [
        "Chinese",
        "American",
        "Italian",
        "Mexican",
        "Japanese",
        "Thai",
        "Indian",
        "French",
        "Korean",
        "Mediterranean",
    ];
    // Ratings-like opinion levels: popular categories have higher means.
    let models: Vec<OpinionModel> = (0..10)
        .map(|q| OpinionModel::Beta(2.0 + 0.25 * (10 - q) as f64 * 0.4, 2.5))
        .collect();
    build_dataset(
        "Yelp",
        PaperScale {
            nodes: 966_240,
            edges: 8_815_788,
        },
        categories.iter().map(|s| s.to_string()).collect(),
        models,
        StubbornnessModel::Engagement,
        0,
        params,
    )
}

/// Twitter-US-Election-like retweet network (paper: 2.25M users, 4.27M
/// edges, 4 party candidates). Default target: "Democratic".
pub fn twitter_election_like(params: &ReplicaParams) -> Dataset {
    build_dataset(
        "Twitter_US_Election",
        PaperScale {
            nodes: 2_246_604,
            edges: 4_270_918,
        },
        vec![
            "Democratic".into(),
            "Republican".into(),
            "Green".into(),
            "Libertarian".into(),
        ],
        vec![
            OpinionModel::Bimodal(0.45),
            OpinionModel::Bimodal(0.47),
            OpinionModel::Bimodal(0.08),
            OpinionModel::Bimodal(0.06),
        ],
        StubbornnessModel::Uniform,
        0,
        params,
    )
}

/// Twitter-Social-Distancing-like network (paper: 3.24M users, 4.2M
/// edges, 2 stances). Default target: "For Social Distancing".
pub fn twitter_distancing_like(params: &ReplicaParams) -> Dataset {
    build_dataset(
        "Twitter_Social_Distancing",
        PaperScale {
            nodes: 3_244_762,
            edges: 4_202_083,
        },
        vec!["For Social Distancing".into(), "Against".into()],
        vec![OpinionModel::Bimodal(0.47), OpinionModel::Bimodal(0.53)],
        StubbornnessModel::Uniform,
        0,
        params,
    )
}

/// Twitter-Mask-like network (paper: 2.34M users, 3.24M edges, 2
/// stances). Default target: "For Wearing a Mask".
pub fn twitter_mask_like(params: &ReplicaParams) -> Dataset {
    build_dataset(
        "Twitter_Mask",
        PaperScale {
            nodes: 2_341_769,
            edges: 3_241_153,
        },
        vec!["For Wearing a Mask".into(), "Against".into()],
        vec![OpinionModel::Bimodal(0.48), OpinionModel::Bimodal(0.52)],
        StubbornnessModel::Uniform,
        0,
        params,
    )
}

/// All five replicas at the same parameters (Table III order).
pub fn all_replicas(params: &ReplicaParams) -> Vec<Dataset> {
    vec![
        dblp_like(params),
        yelp_like(params),
        twitter_election_like(params),
        twitter_distancing_like(params),
        twitter_mask_like(params),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use vom_graph::stats::GraphStats;

    fn tiny() -> ReplicaParams {
        ReplicaParams::at_scale(0.002, 7)
    }

    #[test]
    fn replicas_have_table3_candidate_counts() {
        let p = tiny();
        assert_eq!(dblp_like(&p).instance.num_candidates(), 2);
        assert_eq!(yelp_like(&p).instance.num_candidates(), 10);
        assert_eq!(twitter_election_like(&p).instance.num_candidates(), 4);
        assert_eq!(twitter_distancing_like(&p).instance.num_candidates(), 2);
        assert_eq!(twitter_mask_like(&p).instance.num_candidates(), 2);
    }

    #[test]
    fn scaled_edge_target_fits_a_simple_digraph() {
        // A pathological paper ratio (edges ≫ nodes²) at tiny scale used
        // to demand more edges than a simple digraph can hold; the clamp
        // keeps the target achievable.
        let (n, m) = scaled(
            PaperScale {
                nodes: 60,
                edges: 40_000_000,
            },
            1.0,
        );
        assert!(m <= n * (n - 1), "m = {m} exceeds simple-graph capacity");
        // The 4n floor itself is never clamped away (4n ≤ n(n−1) at n ≥ 50).
        let (n2, m2) = scaled(
            PaperScale {
                nodes: 63_910,
                edges: 2_847_120,
            },
            0.002,
        );
        assert!(m2 >= 4 * n2);
    }

    #[test]
    fn scaling_tracks_paper_sizes() {
        let d = dblp_like(&ReplicaParams::at_scale(0.01, 3));
        let n = d.instance.num_nodes();
        assert!((550..=750).contains(&n), "n = {n}");
    }

    #[test]
    fn generation_is_deterministic() {
        let p = tiny();
        let a = twitter_mask_like(&p);
        let b = twitter_mask_like(&p);
        assert_eq!(a.instance.num_nodes(), b.instance.num_nodes());
        assert_eq!(
            a.instance.candidate(0).initial,
            b.instance.candidate(0).initial
        );
        assert_eq!(
            a.instance.candidate(0).stubbornness,
            b.instance.candidate(0).stubbornness
        );
    }

    #[test]
    fn graphs_are_column_stochastic_and_heavy_tailed() {
        let d = yelp_like(&ReplicaParams::at_scale(0.005, 11));
        let g = d.instance.graph_of(0);
        g.validate_column_stochastic(1e-9).unwrap();
        let stats = GraphStats::compute(g);
        assert!(
            stats.max_in_degree as f64 > 5.0 * stats.mean_degree,
            "expected hubs: {stats}"
        );
    }

    #[test]
    fn opinions_and_stubbornness_are_valid() {
        for ds in all_replicas(&tiny()) {
            for q in 0..ds.instance.num_candidates() {
                let c = ds.instance.candidate(q);
                assert!(c.initial.iter().all(|&b| (0.0..=1.0).contains(&b)));
                assert!(c.stubbornness.iter().all(|&d| (0.0..=1.0).contains(&d)));
            }
            assert!(ds.default_target < ds.instance.num_candidates());
            assert_eq!(
                ds.candidate_names.len(),
                ds.instance.num_candidates(),
                "{}",
                ds.name
            );
        }
    }

    #[test]
    fn mu_changes_edge_weights() {
        let mut p = tiny();
        let a = dblp_like(&p);
        p.mu = 1.0;
        let b = dblp_like(&p);
        // Same topology, different normalized weights on multi-in nodes.
        let ga = a.instance.graph_of(0);
        let gb = b.instance.graph_of(0);
        assert_eq!(ga.num_edges(), gb.num_edges());
        let mut differs = false;
        for v in ga.nodes() {
            if ga.in_degree(v) > 1 {
                let wa = ga.in_weights(v);
                let wb = gb.in_weights(v);
                if wa.iter().zip(wb).any(|(x, y)| (x - y).abs() > 1e-12) {
                    differs = true;
                    break;
                }
            }
        }
        assert!(differs, "µ must reweight edges");
    }
}
