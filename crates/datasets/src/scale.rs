//! Deterministic scale-stress datasets: synthetic instances that grow to
//! 10⁶ nodes and beyond.
//!
//! The Table III replicas (`crate::replicas`) are scaled *down* from the
//! paper's corpora to keep the repro suite fast; the scale-stress
//! workload goes the other way — it asks how build time, query time, and
//! index memory behave as `n` grows toward the paper's full dataset
//! sizes. This module generates those instances: an R-MAT topology
//! (heavy-tailed, community-rich, `O(m log n)` to sample — see
//! [`vom_graph::generators::rmat`]), the same `1 − e^{−a/µ}`
//! interaction-count weight pipeline the replicas use, and two
//! candidates with Beta-distributed opinions and moderate stubbornness.
//!
//! Everything is bit-for-bit deterministic in `(nodes, seed)`; the
//! `repro --scale-stress` harness (`vom-bench`) leans on that to assert
//! selections are identical run-to-run and across thread counts.

use crate::dist::{beta, interaction_count};
use crate::replicas::Dataset;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use vom_diffusion::{Instance, OpinionMatrix};
use vom_graph::{generators, GraphBuilder, WeightTransform};

/// Parameters of one scale-stress instance.
#[derive(Debug, Clone)]
pub struct ScaleParams {
    /// Number of users `n`. Edges scale as `4n` (the replica floor
    /// density, sparse enough to generate at 10⁶ nodes in seconds).
    pub nodes: usize,
    /// RNG seed; the instance is bit-for-bit reproducible from
    /// `(nodes, seed)`.
    pub seed: u64,
}

impl ScaleParams {
    /// Params for `nodes` users at the default seed.
    pub fn at(nodes: usize) -> ScaleParams {
        ScaleParams {
            nodes,
            seed: 0x5CA1E,
        }
    }
}

/// Builds a two-candidate scale-stress instance with `params.nodes`
/// users and `4n` expected edges over an R-MAT topology.
///
/// The opinion regime mirrors the DBLP replica (target starts behind:
/// `Beta(2, 3)` vs `Beta(3, 2)`), with engagement-style stubbornness
/// `Beta(2.5, 3)` so large instances still show multi-step dynamics.
/// Candidate storage is structure-of-arrays ([`Instance::shared`]): one
/// flat opinion buffer and one stubbornness buffer shared by both
/// candidates.
pub fn scale_stress(params: &ScaleParams) -> Dataset {
    let n = params.nodes;
    assert!(n >= 50, "scale-stress instances start at 50 nodes");
    let m = 4 * n;
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut edges = generators::rmat(n, m, &mut rng);
    for e in &mut edges {
        e.2 = interaction_count(0.4, &mut rng);
    }
    let mut builder = GraphBuilder::new(n).with_edge_capacity(edges.len());
    for (s, d, w) in edges {
        builder.add_edge(s, d, w);
    }
    let graph = Arc::new(
        builder
            .build_with(WeightTransform::ExpSaturation { mu: 10.0 })
            .expect("generated edges are valid"),
    );

    let rows = vec![
        (0..n).map(|_| beta(2.0, 3.0, &mut rng)).collect::<Vec<_>>(),
        (0..n).map(|_| beta(3.0, 2.0, &mut rng)).collect::<Vec<_>>(),
    ];
    let initial = OpinionMatrix::from_rows(rows).expect("sampled opinions are in range");
    let d: Vec<f64> = (0..n).map(|_| beta(2.5, 3.0, &mut rng)).collect();
    let instance = Instance::shared(graph, initial, d).expect("consistent by construction");
    Dataset {
        name: "ScaleStress",
        instance,
        default_target: 0,
        candidate_names: vec!["Challenger".into(), "Incumbent".into()],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vom_graph::stats::GraphStats;

    #[test]
    fn generation_is_deterministic() {
        let p = ScaleParams {
            nodes: 2000,
            seed: 3,
        };
        let a = scale_stress(&p);
        let b = scale_stress(&p);
        assert_eq!(a.instance.num_nodes(), b.instance.num_nodes());
        assert_eq!(
            a.instance.graph_of(0).num_edges(),
            b.instance.graph_of(0).num_edges()
        );
        assert_eq!(
            a.instance.candidate(0).initial,
            b.instance.candidate(0).initial
        );
        assert_eq!(
            a.instance.candidate(1).stubbornness,
            b.instance.candidate(1).stubbornness
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = scale_stress(&ScaleParams {
            nodes: 500,
            seed: 1,
        });
        let b = scale_stress(&ScaleParams {
            nodes: 500,
            seed: 2,
        });
        assert_ne!(
            a.instance.candidate(0).initial,
            b.instance.candidate(0).initial
        );
    }

    #[test]
    fn instances_are_valid_and_heavy_tailed() {
        let ds = scale_stress(&ScaleParams::at(5000));
        assert_eq!(ds.instance.num_nodes(), 5000);
        assert_eq!(ds.instance.num_candidates(), 2);
        let g = ds.instance.graph_of(0);
        g.validate_column_stochastic(1e-9).unwrap();
        let stats = GraphStats::compute(g);
        assert!(
            stats.max_in_degree as f64 > 8.0 * stats.mean_degree,
            "expected hubs: {stats}"
        );
        for q in 0..2 {
            let c = ds.instance.candidate(q);
            assert!(c.initial.iter().all(|&b| (0.0..=1.0).contains(&b)));
            assert!(c.stubbornness.iter().all(|&d| (0.0..=1.0).contains(&d)));
        }
    }

    #[test]
    fn candidates_share_soa_buffers() {
        let ds = scale_stress(&ScaleParams::at(200));
        let c0 = ds.instance.candidate(0);
        let c1 = ds.instance.candidate(1);
        assert!(c0.initial.same_backing(&c1.initial));
        assert!(c0.stubbornness.same_backing(&c1.stubbornness));
    }
}
