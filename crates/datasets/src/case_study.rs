//! The ACM-general-election case study generator (§VIII-B, Table IV/V,
//! Figure 4).

use crate::dist::{beta, interaction_count};
use crate::replicas::{Dataset, ReplicaParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use vom_diffusion::{Instance, OpinionMatrix};
use vom_graph::{GraphBuilder, Node, WeightTransform};

/// The seven research domains of Table IV.
pub const DOMAINS: [&str; 7] = ["DM", "HCI", "ML", "CN", "AL", "SW", "HW"];

/// Relative domain populations from Table IV (of 63,910 users; users can
/// hold up to three domains, the remainder are domain-less).
const DOMAIN_POP: [f64; 7] = [5056.0, 4688.0, 4263.0, 4969.0, 2641.0, 1729.0, 4113.0];

/// Domain-overlap affinities: `OVERLAP[a][b]` is the propensity of a user
/// whose primary domain is `a` to also work in `b`. Encodes the paper's
/// observations: DM overlaps HCI/ML/CN heavily, HW does *not* overlap DM,
/// SW sits near HW/CN.
const OVERLAP: [[f64; 7]; 7] = [
    // DM    HCI   ML    CN    AL    SW    HW
    [0.00, 0.30, 0.35, 0.30, 0.15, 0.05, 0.00], // DM
    [0.30, 0.00, 0.30, 0.10, 0.05, 0.10, 0.05], // HCI
    [0.35, 0.30, 0.00, 0.10, 0.15, 0.05, 0.05], // ML
    [0.30, 0.10, 0.10, 0.00, 0.10, 0.15, 0.25], // CN
    [0.15, 0.05, 0.15, 0.10, 0.00, 0.10, 0.05], // AL
    [0.05, 0.10, 0.05, 0.15, 0.10, 0.00, 0.30], // SW
    [0.00, 0.05, 0.05, 0.25, 0.05, 0.30, 0.00], // HW
];

/// Candidate affinity to each domain in `[0, 1]`: how aligned a user of
/// that domain initially is with the candidate. Calibrated so that
/// seedless support for the target is low (~20%, the paper's 21.8%) and
/// concentrated in SW, while the competitor dominates DM/HCI/ML/CN.
const TARGET_AFFINITY: [f64; 7] = [0.42, 0.35, 0.33, 0.45, 0.35, 0.62, 0.44];
const COMPETITOR_AFFINITY: [f64; 7] = [0.55, 0.52, 0.50, 0.52, 0.48, 0.45, 0.50];

/// The generated case study: the dataset plus per-user domain labels.
#[derive(Debug, Clone)]
pub struct CaseStudy {
    /// Diffusion instance + metadata; target = "Joseph A. Konstan".
    pub dataset: Dataset,
    /// Per-user domain indices (0..7), at most three each; possibly
    /// empty for domain-less users.
    pub user_domains: Vec<Vec<u8>>,
}

impl CaseStudy {
    /// Users belonging to domain `d`.
    pub fn domain_members(&self, d: usize) -> Vec<Node> {
        self.user_domains
            .iter()
            .enumerate()
            .filter(|(_, doms)| doms.contains(&(d as u8)))
            .map(|(v, _)| v as Node)
            .collect()
    }
}

/// Generates an ACM-election-like instance at `scale` of the paper's
/// 63,910 users.
///
/// Users get 1–3 research domains (populations and overlaps from Table
/// IV/V structure); co-authorship edges form mostly within shared
/// domains; initial opinions blend the user's domain affinities to each
/// candidate with noise; stubbornness is engagement-like.
pub fn acm_case_study(params: &ReplicaParams) -> CaseStudy {
    let n = ((63_910.0 * params.scale).round() as usize).max(100);
    let mut rng = StdRng::seed_from_u64(params.seed);

    // Assign domains: each user gets a primary domain with probability
    // proportional to the Table IV populations (some users stay
    // domain-less, as in the paper), then up to two correlated extras.
    let pop_total: f64 = DOMAIN_POP.iter().sum();
    let domainless = 1.0 - (pop_total / 63_910.0) * 1.8; // overlaps inflate membership
    let mut user_domains: Vec<Vec<u8>> = Vec::with_capacity(n);
    for _ in 0..n {
        let mut doms = Vec::new();
        if rng.gen::<f64>() >= domainless.max(0.1) {
            let mut x = rng.gen::<f64>() * pop_total;
            let mut primary = 0usize;
            for (d, &p) in DOMAIN_POP.iter().enumerate() {
                if x < p {
                    primary = d;
                    break;
                }
                x -= p;
            }
            doms.push(primary as u8);
            for (d, &aff) in OVERLAP[primary].iter().enumerate() {
                if doms.len() < 3 && rng.gen::<f64>() < aff * 0.8 {
                    doms.push(d as u8);
                }
            }
        }
        user_domains.push(doms);
    }

    // Group users by domain for intra-domain edge wiring.
    let mut members: Vec<Vec<Node>> = vec![Vec::new(); 7];
    for (v, doms) in user_domains.iter().enumerate() {
        for &d in doms {
            members[d as usize].push(v as Node);
        }
    }

    // Co-authorship edges: mostly within domains (weighted toward a few
    // prolific hubs via quadratic index skew), plus a sprinkle of random
    // cross-domain collaborations.
    let m_target = (n as f64 * 12.0) as usize;
    let mut builder = GraphBuilder::new(n).with_edge_capacity(2 * m_target);
    let mut added = 0usize;
    while added < m_target {
        let (u, v) = if rng.gen::<f64>() < 0.85 {
            // Intra-domain pair.
            let d = rng.gen_range(0..7usize);
            let ms = &members[d];
            if ms.len() < 2 {
                continue;
            }
            // Quadratic skew: low indices (hubs) picked more often.
            let pick = |rng: &mut StdRng| {
                let x: f64 = rng.gen::<f64>();
                ms[((x * x) * ms.len() as f64) as usize]
            };
            (pick(&mut rng), pick(&mut rng))
        } else {
            (rng.gen_range(0..n) as Node, rng.gen_range(0..n) as Node)
        };
        if u == v {
            continue;
        }
        let papers = interaction_count(0.35, &mut rng);
        // Co-authorship influences both directions.
        builder.add_edge(u, v, papers);
        builder.add_edge(v, u, papers);
        added += 1;
    }
    let graph = Arc::new(
        builder
            .build_with(WeightTransform::ExpSaturation { mu: params.mu })
            .expect("generated edges are valid"),
    );

    // Initial opinions: mean affinity of the user's domains to the
    // candidate (cosine-similarity surrogate) + Beta noise; domain-less
    // users are mildly pro-competitor neutral.
    let opinion = |affinity: &[f64; 7], doms: &[u8], rng: &mut StdRng| -> f64 {
        let base = if doms.is_empty() {
            0.48
        } else {
            doms.iter().map(|&d| affinity[d as usize]).sum::<f64>() / doms.len() as f64
        };
        (0.75 * base + 0.25 * beta(2.0, 2.0, rng)).clamp(0.0, 1.0)
    };
    let target_row: Vec<f64> = user_domains
        .iter()
        .map(|doms| opinion(&TARGET_AFFINITY, doms, &mut rng))
        .collect();
    let competitor_row: Vec<f64> = user_domains
        .iter()
        .map(|doms| opinion(&COMPETITOR_AFFINITY, doms, &mut rng))
        .collect();
    let initial =
        OpinionMatrix::from_rows(vec![target_row, competitor_row]).expect("opinions in range");
    let stubbornness: Vec<f64> = (0..n).map(|_| beta(5.0, 2.0, &mut rng)).collect();
    let instance =
        Instance::shared(graph, initial, stubbornness).expect("consistent by construction");

    CaseStudy {
        dataset: Dataset {
            name: "ACM_Election",
            instance,
            default_target: 0,
            candidate_names: vec!["Joseph A. Konstan".into(), "Yannis E. Ioannidis".into()],
        },
        user_domains,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vom_voting::ScoringFunction;

    fn study() -> CaseStudy {
        acm_case_study(&ReplicaParams::at_scale(0.02, 13))
    }

    #[test]
    fn structure_is_well_formed() {
        let cs = study();
        let n = cs.dataset.instance.num_nodes();
        assert_eq!(cs.user_domains.len(), n);
        assert!(cs.user_domains.iter().all(|d| d.len() <= 3));
        cs.dataset
            .instance
            .graph_of(0)
            .validate_column_stochastic(1e-9)
            .unwrap();
    }

    #[test]
    fn domain_populations_follow_table4_ordering() {
        let cs = study();
        let dm = cs.domain_members(0).len();
        let sw = cs.domain_members(5).len();
        assert!(dm > sw, "DM ({dm}) outnumbers SW ({sw}) as in Table IV");
    }

    #[test]
    fn target_starts_behind() {
        // The paper: only 21.8% favor the target before seeding.
        let cs = study();
        let inst = &cs.dataset.instance;
        let b = inst.opinions_at(20, 0, &[]);
        let plurality = ScoringFunction::Plurality.score(&b, 0);
        let share = plurality / inst.num_nodes() as f64;
        assert!(
            share < 0.40,
            "target should trail initially, got {share:.2}"
        );
        let competitor = ScoringFunction::Plurality.score(&b, 1);
        assert!(competitor > plurality, "competitor leads seedlessly");
    }

    #[test]
    fn sw_domain_is_most_supportive() {
        let cs = study();
        let inst = &cs.dataset.instance;
        let b = inst.opinions_at(20, 0, &[]);
        let support = |members: &[Node]| -> f64 {
            if members.is_empty() {
                return 0.0;
            }
            members
                .iter()
                .filter(|&&v| b.get(0, v) > b.get(1, v))
                .count() as f64
                / members.len() as f64
        };
        let sw = support(&cs.domain_members(5));
        let dm = support(&cs.domain_members(0));
        assert!(
            sw > dm,
            "SW ({sw:.2}) should favor the target more than DM ({dm:.2})"
        );
    }
}
