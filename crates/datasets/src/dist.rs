//! Small samplers used by the dataset generators (kept local to avoid a
//! `rand_distr` dependency for three functions).

use rand::Rng;

/// Gamma(shape, 1) via Marsaglia–Tsang squeeze (shape >= 1), with the
/// `U^{1/a}` boost for shape < 1.
pub fn gamma<R: Rng>(shape: f64, rng: &mut R) -> f64 {
    assert!(shape > 0.0, "shape must be positive");
    if shape < 1.0 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        return gamma(shape + 1.0, rng) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        // Standard normal via Box–Muller.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let v = (1.0 + c * z).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        if u.ln() < 0.5 * z * z + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

/// Beta(alpha, beta) in `(0, 1)` via two gammas.
pub fn beta<R: Rng>(alpha: f64, b: f64, rng: &mut R) -> f64 {
    let x = gamma(alpha, rng);
    let y = gamma(b, rng);
    (x / (x + y)).clamp(f64::MIN_POSITIVE, 1.0 - f64::EPSILON)
}

/// Geometric number of interactions: `1 + Geom(p)` failures, i.e. at
/// least one interaction per observed edge, heavier tails for smaller `p`.
pub fn interaction_count<R: Rng>(p: f64, rng: &mut R) -> f64 {
    assert!((0.0..1.0).contains(&(1.0 - p)) && p > 0.0);
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    1.0 + (u.ln() / (1.0 - p).ln()).floor()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mean_of(mut f: impl FnMut(&mut StdRng) -> f64, n: usize) -> f64 {
        let mut rng = StdRng::seed_from_u64(12345);
        (0..n).map(|_| f(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn gamma_mean_matches_shape() {
        let m = mean_of(|r| gamma(3.0, r), 50_000);
        assert!((m - 3.0).abs() < 0.05, "mean {m}");
        let m = mean_of(|r| gamma(0.5, r), 50_000);
        assert!((m - 0.5).abs() < 0.02, "mean {m}");
    }

    #[test]
    fn beta_mean_and_range() {
        let m = mean_of(|r| beta(2.0, 6.0, r), 50_000);
        assert!((m - 0.25).abs() < 0.01, "mean {m}");
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = beta(0.5, 0.5, &mut rng);
            assert!((0.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn interaction_counts_are_positive_with_geometric_mean() {
        // 1 + Geom(p = 0.5): mean = 1 + (1-p)/p = 2.
        let m = mean_of(|r| interaction_count(0.5, r), 50_000);
        assert!((m - 2.0).abs() < 0.05, "mean {m}");
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            assert!(interaction_count(0.3, &mut rng) >= 1.0);
        }
    }
}
