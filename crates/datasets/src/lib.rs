#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # vom-datasets
//!
//! Deterministic synthetic replicas of the paper's five evaluation
//! datasets (Table III) and the ACM-general-election case study
//! (§VIII-B), plus plain-text IO for real data.
//!
//! The paper's raw corpora (DBLP crawl, Yelp reviews, three Twitter
//! crawls with VADER sentiment) are not redistributable; each replica
//! reproduces the properties the algorithms actually consume — graph
//! scale and degree skew, candidate count, the `1 − e^{−a/µ}`
//! interaction-count weight pipeline, opinion polarization regime, and
//! the stubbornness protocol (uniform-random for Twitter, engagement-
//! derived otherwise). See DESIGN.md §"Data substitutions" for the
//! per-dataset mapping and rationale.
//!
//! Every generator takes an explicit scale (fraction of the paper's node
//! count) and RNG seed, and is bit-for-bit reproducible.
//!
//! # Example
//!
//! ```
//! use vom_datasets::{dblp_like, ReplicaParams};
//!
//! let params = ReplicaParams { scale: 0.001, seed: 7, mu: 10.0 };
//! let ds = dblp_like(&params);
//! assert_eq!(ds.instance.num_candidates(), 2); // Table III: DBLP has r = 2
//! assert!(ds.instance.num_nodes() >= 50);
//! // Bit-for-bit reproducible from (scale, seed, mu).
//! let again = dblp_like(&params);
//! assert_eq!(
//!     ds.instance.candidate(0).initial,
//!     again.instance.candidate(0).initial,
//! );
//! ```

pub mod case_study;
pub mod dist;
pub mod io;
pub mod replicas;
pub mod scale;

pub use case_study::{acm_case_study, CaseStudy};
pub use replicas::{
    all_replicas, dblp_like, twitter_distancing_like, twitter_election_like, twitter_mask_like,
    yelp_like, Dataset, ReplicaParams,
};
pub use scale::{scale_stress, ScaleParams};
