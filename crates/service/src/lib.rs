#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # vom-service
//!
//! A shared-state query service over the prepared-index lifecycle:
//! register named diffusion instances once, then throw batches of
//! [`Query`]s at them from any number of callers.
//!
//! [`VomService`] is the facade the ROADMAP's serving story needs on top
//! of `vom-core`'s [`PreparedIndex`]/[`vom_core::QuerySession`] split:
//!
//! * **named graphs** — instances are registered under a name and shared
//!   behind `Arc`s;
//! * **memoized indexes** — each `(graph, method, target, horizon,
//!   rule-class, budget-bucket)` builds its [`PreparedIndex`] exactly
//!   once, whoever asks first; later queries (and whole batches) reuse
//!   it — including the competitive-scoring artifacts it carries (the
//!   exact competitor matrix and its `vom_voting::RankIndex`, which
//!   every session's delta-driven greedy ranks against);
//! * **parallel batches** — [`VomService::run_batch`] fans a
//!   `&[ServiceRequest]` across the worker pool (the vendored rayon
//!   shim), one cheap [`vom_core::QuerySession`] per request, and returns
//!   results **in request order**;
//! * **per-query errors** — an invalid query (unknown graph, `k = 0`,
//!   out-of-range target, oversized budget, bad rule) yields a readable
//!   [`ServiceError`] in its slot; the rest of the batch is unaffected.
//!
//! # Determinism contract
//!
//! Selections are bit-identical however the batch is scheduled: indexes
//! are immutable, artifact builds are deterministic given the engine
//! seed, and the budget each index is prepared at depends only on the
//! query (`k` rounded up to a power of two, capped at `n`) — never on
//! batch composition, memoization history, or thread count. The
//! workspace test `tests/query_service.rs` and the `repro --bench-json`
//! query-throughput section both assert this cross-width.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use vom_core::{MethodId, Query};
//! use vom_diffusion::{Instance, OpinionMatrix};
//! use vom_graph::builder::graph_from_edges;
//! use vom_service::{ServiceRequest, VomService};
//! use vom_voting::ScoringFunction;
//!
//! let g = Arc::new(graph_from_edges(4, &[(0, 2, 1.0), (1, 2, 1.0), (2, 3, 1.0)])?);
//! let b = OpinionMatrix::from_rows(vec![
//!     vec![0.40, 0.80, 0.60, 0.90],
//!     vec![0.35, 0.75, 1.00, 0.80],
//! ])?;
//! let inst = Instance::shared(g, b, vec![0.0, 0.0, 0.5, 0.5])?;
//!
//! let service = VomService::new();
//! service.register("toy", Arc::new(inst))?;
//!
//! let batch = vec![
//!     ServiceRequest::new("toy", MethodId::Rs, 1, Query::new(1, ScoringFunction::Cumulative, 0)),
//!     ServiceRequest::new("toy", MethodId::Rs, 1, Query::new(0, ScoringFunction::Cumulative, 0)),
//!     ServiceRequest::new("toy", MethodId::Dm, 1, Query::new(1, ScoringFunction::Plurality, 0)),
//! ];
//! let results = service.run_batch(&batch);
//!
//! assert_eq!(results.len(), 3); // request order, one slot per request
//! assert_eq!(results[0].as_ref().unwrap().seeds, vec![0]);
//! assert!(results[1].is_err()); // k = 0 fails alone, not the batch
//! assert_eq!(results[2].as_ref().unwrap().exact_score, 4.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use rayon::IntoParallelIterator;
// audit:allow(d-hash-iter, "HashMap is a keyed cache probed by exact key; every enumeration goes through sorted snapshots")
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Duration;
use vom_baselines::AnyEngine;
use vom_core::engine::{Outcome, PreparedIndex, Query, RuleClass, SeedSelector, SelectionResult};
use vom_core::persist::{graph_digest, IndexSource};
use vom_core::{CoreError, CostBudget, CostMeter, MethodId, ProblemSpec};
use vom_diffusion::Instance;
use vom_graph::Candidate;
use vom_persist::PersistError;

/// Builds the engine (with its configuration) the service uses for a
/// registry method. The default is [`AnyEngine::with_defaults`]; a bench
/// harness can inject its §VIII-B parameter settings instead.
pub type EngineFactory = Box<dyn Fn(MethodId) -> AnyEngine + Send + Sync>;

/// Scheduling class of a request within a batch. Classes order the
/// deterministic batch schedule (all `High` requests are dispatched —
/// and their indexes resolved/admitted — before any `Normal`, which
/// precede any `Low`; request order breaks ties). Priorities never
/// change *what* a query answers, only *when* it is scheduled and in
/// which order its index competes for the memory budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Priority {
    /// Scheduled before all other classes.
    High,
    /// The default class.
    #[default]
    Normal,
    /// Scheduled after everything else.
    Low,
}

/// One query against a named, registered graph.
#[derive(Debug, Clone)]
pub struct ServiceRequest {
    /// The registered instance name.
    pub graph: String,
    /// The selection method (any of the nine registered methods).
    pub method: MethodId,
    /// The diffusion horizon `t` the artifacts are built for.
    pub horizon: usize,
    /// The selection query (budget, rule, target, mode).
    pub query: Query,
    /// Optional deterministic deadline in cost-meter ticks (see
    /// [`vom_core::CostBudget`]). `None` (the default) runs to
    /// completion; `Some(t)` may yield [`Outcome::Degraded`] with a
    /// bit-identical prefix of the full selection — surface it with
    /// [`VomService::run_batch_full`] / [`VomService::run_full`].
    pub budget: Option<u64>,
    /// Scheduling class (default [`Priority::Normal`]).
    pub priority: Priority,
}

impl ServiceRequest {
    /// Convenience constructor (no budget, normal priority).
    pub fn new(
        graph: impl Into<String>,
        method: MethodId,
        horizon: usize,
        query: Query,
    ) -> ServiceRequest {
        ServiceRequest {
            graph: graph.into(),
            method,
            horizon,
            query,
            budget: None,
            priority: Priority::Normal,
        }
    }

    /// Sets a deterministic tick budget for this request.
    pub fn with_budget(mut self, ticks: u64) -> ServiceRequest {
        self.budget = Some(ticks);
        self
    }

    /// Sets the scheduling class for this request.
    pub fn with_priority(mut self, priority: Priority) -> ServiceRequest {
        self.priority = priority;
        self
    }
}

/// A per-query service failure. Batches never fail as a whole: each
/// request gets its own `Result` slot.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The request named a graph that was never registered.
    UnknownGraph {
        /// The unknown name.
        name: String,
    },
    /// `register` was called with a name that is already taken.
    DuplicateGraph {
        /// The contested name.
        name: String,
    },
    /// The query itself was invalid or the selection failed (propagated
    /// from `vom-core`, e.g. `k = 0`, out-of-range target, `k > n`).
    Selection(CoreError),
    /// Saving or loading an index snapshot failed (typed; see
    /// [`vom_persist::PersistError`]). Loads fail closed — a bad
    /// snapshot never becomes a served index.
    Persist(PersistError),
    /// The index this request needs does not fit the service memory
    /// budget even after evicting every cold cached index. The request
    /// is rejected, not silently served from an over-budget cache.
    AdmissionDenied {
        /// The graph whose index was denied.
        graph: String,
        /// Heap bytes the new index needs.
        needed_bytes: usize,
        /// The configured service budget.
        budget_bytes: usize,
    },
    /// A query or index build panicked. The panic is confined to this
    /// slot (sibling batch entries are unaffected) and a panicked build
    /// is quarantined — the next caller retries a fresh build instead
    /// of observing a poisoned memo cell.
    Panicked {
        /// Human-readable description of where the panic happened.
        context: String,
    },
    /// A budgeted request degraded (its deadline expired before `k`
    /// seeds were selected) but was run through an API that can only
    /// carry complete results. The degraded prefix is still valid —
    /// retrieve it with [`VomService::run_batch_full`].
    Degraded {
        /// Ticks spent when the deadline fired.
        budget_spent: u64,
        /// The configured tick budget.
        budget_limit: u64,
        /// Seeds selected before the deadline (the prefix length).
        seeds_found: usize,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownGraph { name } => {
                write!(f, "no graph registered under {name:?}")
            }
            ServiceError::DuplicateGraph { name } => {
                write!(f, "a graph is already registered under {name:?}")
            }
            ServiceError::Selection(e) => write!(f, "selection failed: {e}"),
            ServiceError::Persist(e) => write!(f, "index snapshot failed: {e}"),
            ServiceError::AdmissionDenied {
                graph,
                needed_bytes,
                budget_bytes,
            } => write!(
                f,
                "index for {graph:?} needs {needed_bytes} B, over the {budget_bytes} B service budget"
            ),
            ServiceError::Panicked { context } => write!(f, "panicked: {context}"),
            ServiceError::Degraded {
                budget_spent,
                budget_limit,
                seeds_found,
            } => write!(
                f,
                "degraded to a {seeds_found}-seed prefix after {budget_spent}/{budget_limit} ticks \
                 (use run_batch_full to receive partial results)"
            ),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Selection(e) => Some(e),
            ServiceError::Persist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for ServiceError {
    fn from(e: CoreError) -> Self {
        ServiceError::Selection(e)
    }
}

impl From<PersistError> for ServiceError {
    fn from(e: PersistError) -> Self {
        ServiceError::Persist(e)
    }
}

/// Per-request outcome of a batch.
pub type ServiceResult = Result<SelectionResult, ServiceError>;

/// One row of [`VomService::index_stats`]: the memo key of a cached
/// index plus its build-side diagnostics.
#[derive(Debug, Clone)]
pub struct IndexStats {
    /// The registered graph name.
    pub graph: String,
    /// The prepared method.
    pub method: MethodId,
    /// The prepared target candidate.
    pub target: Candidate,
    /// The prepared horizon.
    pub horizon: usize,
    /// The rule class the index was keyed under.
    pub class: RuleClass,
    /// The prepared (bucketed) budget.
    pub budget: usize,
    /// Heap bytes currently held by the estimator artifacts.
    pub heap_bytes: usize,
    /// Estimator artifacts present (eager + lazy builds, or loaded).
    pub artifact_builds: usize,
    /// Time to readiness: the prepare wall time for built indexes, the
    /// load wall time for snapshot-loaded ones.
    pub build_time: Duration,
}

/// Outcome of a [`VomService::warm_from_dir`] scan: how many snapshots
/// became served indexes, and — per file — why the rest did not. A
/// non-empty `skipped` list is not an error (the affected indexes are
/// rebuilt lazily), but it is the difference between a clean warm
/// restart and one degrading to cold builds, so callers should log it.
#[derive(Debug)]
pub struct WarmSummary {
    /// Snapshots loaded and memoized.
    pub loaded: usize,
    /// Snapshot files present but not served, with typed reasons.
    pub skipped: Vec<SkippedSnapshot>,
    /// Files whose open hit a transient IO error and was retried, with
    /// the exact deterministic backoff schedule that was applied —
    /// recorded whether or not the retries eventually succeeded.
    pub retries: Vec<RetryRecord>,
}

impl WarmSummary {
    /// Whether every `.vpi` file in the directory was served.
    pub fn is_clean(&self) -> bool {
        self.skipped.is_empty()
    }
}

/// One file [`VomService::warm_from_dir_with`] retried after a
/// transient IO failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryRecord {
    /// The snapshot file.
    pub path: PathBuf,
    /// Backoff pauses requested between attempts, in order (ms). The
    /// schedule is a pure function of the [`RetryPolicy`] — never of
    /// wall-clock time.
    pub backoff_ms: Vec<u64>,
    /// Whether a retry eventually opened the file.
    pub recovered: bool,
}

/// Bounded-retry policy for transient (`PersistError::Io`) snapshot
/// failures during a warm restart. Corruption and digest mismatches are
/// *not* retried — rereading a corrupt file cannot fix it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total open attempts per file (1 = no retries).
    pub attempts: u32,
    /// First backoff pause; each further retry doubles it. The schedule
    /// is deterministic: `base, 2·base, 4·base, …`.
    pub base_backoff_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            base_backoff_ms: 10,
        }
    }
}

impl RetryPolicy {
    /// The pause before retry number `retry` (0-based).
    fn backoff_ms(&self, retry: u32) -> u64 {
        self.base_backoff_ms.saturating_mul(1u64 << retry.min(16))
    }
}

/// How a warm restart waits out a backoff pause. Production uses
/// [`SleepScheduler`]; tests use [`NoopScheduler`] so retry logic is
/// exercised without real sleeps (the recorded schedule is identical —
/// it is computed, not measured).
pub trait WarmScheduler {
    /// Waits `ms` milliseconds (or records that it would).
    fn pause(&self, ms: u64);
}

/// Blocks the warming thread for the scheduled pause.
pub struct SleepScheduler;

impl WarmScheduler for SleepScheduler {
    fn pause(&self, ms: u64) {
        std::thread::sleep(Duration::from_millis(ms));
    }
}

/// Skips pauses entirely (deterministic tests, impatient operators).
pub struct NoopScheduler;

impl WarmScheduler for NoopScheduler {
    fn pause(&self, _ms: u64) {}
}

/// A deterministic, seeded fault-injection plan. Installed with
/// [`VomService::set_fault_plan`], consulted at the service's fault
/// boundaries; every trigger is keyed on stable identifiers (graph
/// names, batch request indexes, snapshot file names) — never thread
/// ids or wall-clock time — so a faulted run is reproducible at any
/// worker-pool width.
///
/// Faults modeled:
/// * **build panics** — the next `count` index builds for a graph
///   panic inside the build boundary (exercises catch + quarantine);
/// * **query panics** — the request at a given batch index panics in
///   its worker (exercises per-slot isolation; membership is not
///   consumed, so every batch run faults the same slot);
/// * **tick inflation** — every budgeted query's meter charges are
///   multiplied, forcing earlier deadline degradation;
/// * **transient unreadable** — the next `count` opens of a snapshot
///   file during a warm restart fail with a synthetic transient IO
///   error (exercises the bounded-retry path).
#[derive(Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    tick_scale: u64,
    build_panics: Mutex<BTreeMap<String, u32>>,
    query_panics: BTreeSet<usize>,
    unreadable: Mutex<BTreeMap<String, u32>>,
}

impl FaultPlan {
    /// An empty plan carrying `seed` (harnesses derive fault sites from
    /// it; the plan itself treats it as opaque provenance).
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            tick_scale: 1,
            ..FaultPlan::default()
        }
    }

    /// The seed this plan was derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The next `count` index builds for `graph` panic.
    pub fn with_build_panics(self, graph: impl Into<String>, count: u32) -> FaultPlan {
        self.build_panics
            .lock()
            .expect("fault lock")
            .insert(graph.into(), count);
        self
    }

    /// The batch request at `request_index` panics in its worker.
    pub fn with_query_panic(mut self, request_index: usize) -> FaultPlan {
        self.query_panics.insert(request_index);
        self
    }

    /// Multiplies every budgeted query's meter charges by `scale`
    /// (clamped to ≥ 1), forcing earlier degradation.
    pub fn with_tick_scale(mut self, scale: u64) -> FaultPlan {
        self.tick_scale = scale.max(1);
        self
    }

    /// The next `count` warm-restart opens of snapshot `file_name`
    /// (the bare file name, e.g. `"toy--rs-c0-t0-h1-b1.vpi"`) fail
    /// with a transient IO error.
    pub fn with_transient_unreadable(self, file_name: impl Into<String>, count: u32) -> FaultPlan {
        self.unreadable
            .lock()
            .expect("fault lock")
            .insert(file_name.into(), count);
        self
    }

    /// The configured charge multiplier (≥ 1).
    pub fn tick_scale(&self) -> u64 {
        self.tick_scale.max(1)
    }

    /// Consumes one pending build panic for `graph`, if any.
    fn take_build_panic(&self, graph: &str) -> bool {
        let mut map = self.build_panics.lock().expect("fault lock");
        match map.get_mut(graph) {
            Some(n) if *n > 0 => {
                *n -= 1;
                true
            }
            _ => false,
        }
    }

    /// Whether the batch request at `index` is planned to panic.
    fn query_panics_at(&self, index: usize) -> bool {
        self.query_panics.contains(&index)
    }

    /// Consumes one pending transient-unreadable fault for `file_name`.
    fn take_unreadable(&self, file_name: &str) -> bool {
        let mut map = self.unreadable.lock().expect("fault lock");
        match map.get_mut(file_name) {
            Some(n) if *n > 0 => {
                *n -= 1;
                true
            }
            _ => false,
        }
    }
}

/// One `.vpi` file a warm restart could not serve from.
#[derive(Debug)]
pub struct SkippedSnapshot {
    /// The snapshot file.
    pub path: PathBuf,
    /// Why it was skipped.
    pub reason: SkipReason,
}

/// Why [`VomService::warm_from_dir`] skipped a snapshot file.
#[derive(Debug)]
pub enum SkipReason {
    /// The file failed to open or validate (truncation, corruption,
    /// format-version drift — see the wrapped [`PersistError`]).
    Unreadable(PersistError),
    /// No registered graph matches the snapshot's graph digest.
    NoMatchingGraph {
        /// The snapshot's graph digest.
        digest: u64,
    },
    /// A graph digest-matched but reconstructing the index failed.
    LoadFailed(ServiceError),
}

impl fmt::Display for SkipReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SkipReason::Unreadable(e) => write!(f, "unreadable snapshot: {e}"),
            SkipReason::NoMatchingGraph { digest } => {
                write!(f, "no registered graph matches digest {digest:016x}")
            }
            SkipReason::LoadFailed(e) => write!(f, "index load failed: {e}"),
        }
    }
}

/// Everything a prepared index depends on — the memoization key. The
/// budget bucket (`k` rounded up to a power of two, capped at `n`)
/// depends only on the query, so memo hits can never change results.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct IndexKey {
    graph: String,
    method: MethodId,
    target: Candidate,
    horizon: usize,
    class: RuleClass,
    budget: usize,
}

/// The budget an index is prepared at for a query asking `k ≤ n` seeds:
/// the next power of two (so nearby budgets share one index) capped at
/// `n` (a budget can never exceed the node count).
fn prepared_budget(k: usize, n: usize) -> usize {
    k.max(1).checked_next_power_of_two().unwrap_or(n).min(n)
}

/// Renders a caught panic payload for [`ServiceError::Panicked`].
fn panic_context(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One memo slot: same-key callers share the cell and only the first
/// runs the build (inside the cell's `OnceLock`, *outside* the cache
/// map lock — memo hits and unrelated builds never wait on each other).
type IndexCell = Arc<OnceLock<Result<Arc<PreparedIndex>, ServiceError>>>;

/// One cache slot: the memo cell plus the logical sequence number of
/// its last use. Recency is a **logical clock** (bumped once per cache
/// probe under the map lock), never wall-clock time — so eviction order
/// is a pure function of the request history.
struct CacheEntry {
    cell: IndexCell,
    last_use: u64,
}

/// The index memo: entries by key, LRU-evicted by logical admission
/// sequence under an optional entry capacity and/or heap-byte budget.
/// Eviction is safe at any moment — in-flight sessions keep their index
/// alive through their own `Arc`s, and a rebuilt index is bit-identical
/// by the determinism contract.
struct IndexCache {
    cells: HashMap<IndexKey, CacheEntry>,
    /// Logical use counter; every probe gets a fresh, unique value.
    seq: u64,
    capacity: Option<usize>,
    /// Heap-byte budget over built indexes; enforced at admission.
    memory_budget: Option<usize>,
}

impl IndexCache {
    /// Evicts the least-recently-used entry, skipping `protect`.
    /// Returns `false` when nothing (else) is left to evict.
    fn evict_lru(&mut self, protect: Option<&IndexKey>) -> bool {
        // Min over unique logical last_use values — iteration-order
        // independent, so hash order never reaches results.
        let victim = self
            .cells
            .iter()
            .filter(|(k, _)| protect != Some(*k))
            .min_by_key(|(_, e)| e.last_use)
            .map(|(k, _)| k.clone());
        match victim {
            Some(k) => {
                self.cells.remove(&k);
                true
            }
            None => false,
        }
    }

    /// Heap bytes currently resident in *built* cells other than
    /// `except` (cells still building, or whose build failed, hold no
    /// artifacts and count zero).
    fn resident_bytes(&self, except: &IndexKey) -> usize {
        // Commutative sum — iteration-order independent.
        self.cells
            .iter()
            .filter(|(k, _)| *k != except)
            .filter_map(|(_, e)| e.cell.get())
            .filter_map(|r| r.as_ref().ok())
            .map(|ix| ix.build_stats().heap_bytes)
            .sum()
    }
}

/// The shared-state query service facade. One `VomService` is meant to
/// live for the process: it is `Send + Sync`, all methods take `&self`,
/// and every piece of prepared state is shared behind `Arc`s.
pub struct VomService {
    engine_factory: EngineFactory,
    graphs: RwLock<BTreeMap<String, Arc<Instance>>>,
    /// The cache map lock is held only for cell lookup/insert/evict —
    /// never across an artifact build.
    indexes: Mutex<IndexCache>,
    /// Installed fault-injection plan (tests, chaos harness); `None`
    /// in production — every fault boundary is then a strict no-op.
    faults: Mutex<Option<Arc<FaultPlan>>>,
}

impl Default for VomService {
    fn default() -> Self {
        VomService::new()
    }
}

impl VomService {
    /// A service using each method's default configuration.
    pub fn new() -> VomService {
        VomService::with_engine_factory(Box::new(AnyEngine::with_defaults))
    }

    /// A service with custom engine configurations (e.g. the bench
    /// harness's §VIII-B parameter settings).
    pub fn with_engine_factory(factory: EngineFactory) -> VomService {
        VomService {
            engine_factory: factory,
            graphs: RwLock::new(BTreeMap::new()),
            indexes: Mutex::new(IndexCache {
                cells: HashMap::new(),
                seq: 0,
                capacity: None,
                memory_budget: None,
            }),
            faults: Mutex::new(None),
        }
    }

    /// Caps the index memo at `capacity` entries with LRU eviction
    /// (default: unbounded). A long-lived service whose requests vary
    /// target/horizon/budget freely should set this — every distinct
    /// key otherwise retains its arena/sketch artifacts forever.
    /// Eviction never changes results: a re-requested key rebuilds the
    /// identical index. Recency is a logical use counter, not
    /// wall-clock time, so eviction order is reproducible.
    pub fn with_index_capacity(self, capacity: usize) -> VomService {
        self.indexes.lock().expect("index lock").capacity = Some(capacity.max(1));
        self
    }

    /// Caps the total heap bytes of built cached indexes (default:
    /// unbounded). A new build that would overflow the budget first
    /// evicts cold indexes (LRU by logical use sequence); if the new
    /// index *alone* exceeds the budget, the request is rejected with
    /// [`ServiceError::AdmissionDenied`] — the cache never silently
    /// exceeds its budget.
    pub fn with_memory_budget(self, bytes: usize) -> VomService {
        self.indexes.lock().expect("index lock").memory_budget = Some(bytes);
        self
    }

    /// Installs (or clears, with `None`) a deterministic fault plan.
    /// Intended for tests and the chaos harness; with no plan every
    /// fault boundary is a strict no-op.
    pub fn set_fault_plan(&self, plan: Option<Arc<FaultPlan>>) {
        *self.faults.lock().expect("fault lock") = plan;
    }

    /// The installed fault plan, if any.
    fn fault_plan(&self) -> Option<Arc<FaultPlan>> {
        self.faults.lock().expect("fault lock").clone()
    }

    /// Drops every memoized index (e.g. after a bulk workload, to
    /// release artifact memory). Sessions already holding an index keep
    /// it alive through their own `Arc`s.
    pub fn clear_indexes(&self) {
        let mut cache = self.indexes.lock().expect("index lock");
        cache.cells.clear();
    }

    /// Registers an instance under a name. Names are first-come:
    /// re-registering is an error (indexes built for the old instance
    /// would silently answer for the new one otherwise).
    pub fn register(
        &self,
        name: impl Into<String>,
        instance: Arc<Instance>,
    ) -> Result<(), ServiceError> {
        let name = name.into();
        let mut graphs = self.graphs.write().expect("graphs lock");
        if graphs.contains_key(&name) {
            return Err(ServiceError::DuplicateGraph { name });
        }
        graphs.insert(name, instance);
        Ok(())
    }

    /// The registered instance names, sorted.
    pub fn graph_names(&self) -> Vec<String> {
        self.graphs
            .read()
            .expect("graphs lock")
            .keys()
            .cloned()
            .collect()
    }

    /// The registered instance under `name`, if any.
    pub fn instance(&self, name: &str) -> Option<Arc<Instance>> {
        self.graphs.read().expect("graphs lock").get(name).cloned()
    }

    /// Number of distinct prepared indexes currently memoized.
    pub fn index_count(&self) -> usize {
        self.indexes.lock().expect("index lock").cells.len()
    }

    /// The memo cell for `key`, creating (and LRU-evicting, if over
    /// capacity) under the short-held map lock. Every probe bumps the
    /// key's logical recency.
    fn cell_for(&self, key: &IndexKey) -> IndexCell {
        let mut cache = self.indexes.lock().expect("index lock");
        cache.seq += 1;
        let now = cache.seq;
        if let Some(entry) = cache.cells.get_mut(key) {
            entry.last_use = now;
            return Arc::clone(&entry.cell);
        }
        if let Some(cap) = cache.capacity {
            while cache.cells.len() >= cap && cache.evict_lru(None) {}
        }
        let cell: IndexCell = Arc::new(OnceLock::new());
        cache.cells.insert(
            key.clone(),
            CacheEntry {
                cell: Arc::clone(&cell),
                last_use: now,
            },
        );
        cell
    }

    /// Removes `key`'s slot iff it still holds exactly `cell` — used to
    /// quarantine panicked builds and to back out denied admissions
    /// without disturbing a racing rebuild that already replaced it.
    fn remove_cell(&self, key: &IndexKey, cell: &IndexCell) {
        let mut cache = self.indexes.lock().expect("index lock");
        if cache
            .cells
            .get(key)
            .is_some_and(|e| Arc::ptr_eq(&e.cell, cell))
        {
            cache.cells.remove(key);
        }
    }

    /// Admission control for a just-built index: evicts cold cached
    /// indexes (LRU) until the newcomer fits the memory budget, or
    /// denies it when it can never fit. Only the thread that ran the
    /// build calls this, so admission order equals build order —
    /// deterministic for any serial request sequence.
    fn admit(&self, key: &IndexKey, index: &Arc<PreparedIndex>) -> Result<(), ServiceError> {
        let mut cache = self.indexes.lock().expect("index lock");
        let Some(budget) = cache.memory_budget else {
            return Ok(());
        };
        let needed = index.build_stats().heap_bytes;
        if needed > budget {
            cache.cells.remove(key);
            return Err(ServiceError::AdmissionDenied {
                graph: key.graph.clone(),
                needed_bytes: needed,
                budget_bytes: budget,
            });
        }
        while cache.resident_bytes(key) + needed > budget {
            if !cache.evict_lru(Some(key)) {
                break;
            }
        }
        Ok(())
    }

    /// Build-side diagnostics of every successfully built (or loaded)
    /// memoized index: the memo key, current artifact heap bytes, and
    /// build counters — the serving-side view of Figure 17(b).
    pub fn index_stats(&self) -> Vec<IndexStats> {
        let cells: Vec<(IndexKey, IndexCell)> = {
            let cache = self.indexes.lock().expect("index lock");
            cache
                .cells
                .iter()
                .map(|(k, e)| (k.clone(), Arc::clone(&e.cell)))
                .collect()
        };
        let mut stats: Vec<IndexStats> = cells
            .into_iter()
            .filter_map(|(key, cell)| {
                let index = cell.get()?.as_ref().ok()?.clone();
                let b = index.build_stats();
                Some(IndexStats {
                    graph: key.graph,
                    method: key.method,
                    target: key.target,
                    horizon: key.horizon,
                    class: key.class,
                    budget: key.budget,
                    heap_bytes: b.heap_bytes,
                    artifact_builds: b.artifact_builds,
                    build_time: b.build_time,
                })
            })
            .collect();
        stats.sort_by(|a, b| {
            (&a.graph, a.method as usize, a.target, a.horizon, a.budget).cmp(&(
                &b.graph,
                b.method as usize,
                b.target,
                b.horizon,
                b.budget,
            ))
        });
        stats
    }

    /// The canonical snapshot filename for an index under `graph`.
    fn snapshot_name(key: &IndexKey) -> String {
        format!(
            "{}--{}-c{}-t{}-h{}-b{}.vpi",
            key.graph,
            key.method.name().to_lowercase(),
            key.class as usize,
            key.target,
            key.horizon,
            key.budget
        )
    }

    /// Resolves (building if absent) the index a request needs and
    /// writes it as a snapshot file into `dir`, returning the path.
    /// Pair with [`VomService::warm_from_dir`] on the next process start.
    pub fn save_index(&self, req: &ServiceRequest, dir: &Path) -> Result<PathBuf, ServiceError> {
        let index = self.index_for(req)?;
        let instance = self
            .instance(&req.graph)
            .ok_or_else(|| ServiceError::UnknownGraph {
                name: req.graph.clone(),
            })?;
        let key = IndexKey {
            graph: req.graph.clone(),
            method: req.method,
            target: req.query.target,
            horizon: req.horizon,
            class: RuleClass::of(&req.query.rule),
            budget: prepared_budget(req.query.k, instance.num_nodes()),
        };
        let path = dir.join(Self::snapshot_name(&key));
        index.save(&path)?;
        Ok(path)
    }

    /// Loads one index snapshot against the named registered graph and
    /// memoizes it. The snapshot's graph digest must match the
    /// registered instance — loading fails closed otherwise. If the key
    /// is already cached (e.g. a racing build won), the existing index
    /// is kept; both are bit-identical by the determinism contract.
    pub fn load_index(&self, graph: &str, path: &Path) -> Result<(), ServiceError> {
        let instance = self
            .instance(graph)
            .ok_or_else(|| ServiceError::UnknownGraph {
                name: graph.to_string(),
            })?;
        let index = Arc::new(PreparedIndex::load(instance, IndexSource::Mapped(path))?);
        let key = IndexKey {
            graph: graph.to_string(),
            method: index.method_id(),
            target: index.target(),
            horizon: index.horizon(),
            class: RuleClass::of(index.rule()),
            budget: index.budget(),
        };
        let cell = self.cell_for(&key);
        let _ = cell.set(Ok(index));
        Ok(())
    }

    /// Warm restart: scans `dir` for `.vpi` snapshots, matches each to a
    /// registered graph **by graph digest** (no filename convention
    /// required), and memoizes every match. Snapshots that fail to load
    /// — corruption, version drift, no matching graph — are skipped, not
    /// fatal: the corresponding indexes are simply rebuilt on first use.
    /// Every skip is reported with its file and typed reason in the
    /// returned [`WarmSummary`], so operators can tell a clean restart
    /// from one that silently fell back to rebuilds. Transient IO
    /// failures are retried under [`RetryPolicy::default`] with real
    /// backoff sleeps; see [`VomService::warm_from_dir_with`].
    pub fn warm_from_dir(&self, dir: &Path) -> Result<WarmSummary, ServiceError> {
        self.warm_from_dir_with(dir, RetryPolicy::default(), &SleepScheduler)
    }

    /// [`VomService::warm_from_dir`] with an explicit retry policy and
    /// backoff scheduler. Only transient (`PersistError::Io`) open
    /// failures are retried — up to `policy.attempts` total tries per
    /// file with a deterministic doubling backoff, every pause recorded
    /// in [`WarmSummary::retries`]. Corruption and digest mismatches
    /// skip immediately: rereading a corrupt file cannot fix it.
    pub fn warm_from_dir_with(
        &self,
        dir: &Path,
        policy: RetryPolicy,
        scheduler: &dyn WarmScheduler,
    ) -> Result<WarmSummary, ServiceError> {
        let plan = self.fault_plan();
        let digests: Vec<(String, u64)> = {
            let graphs = self.graphs.read().expect("graphs lock");
            graphs
                .iter()
                .map(|(name, inst)| (name.clone(), graph_digest(inst)))
                .collect()
        };
        let entries = std::fs::read_dir(dir).map_err(|e| {
            ServiceError::Persist(PersistError::Io {
                op: "read_dir",
                message: e.to_string(),
            })
        })?;
        let mut summary = WarmSummary {
            loaded: 0,
            skipped: Vec::new(),
            retries: Vec::new(),
        };
        let mut paths: Vec<PathBuf> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "vpi"))
            .collect();
        paths.sort();
        for path in paths {
            let file_name = path
                .file_name()
                .map(|s| s.to_string_lossy().into_owned())
                .unwrap_or_default();
            let mut backoff_ms: Vec<u64> = Vec::new();
            let snap = loop {
                let injected = plan
                    .as_deref()
                    .is_some_and(|p| p.take_unreadable(&file_name));
                let opened = if injected {
                    Err(PersistError::Io {
                        op: "open",
                        message: format!("injected transient fault ({file_name})"),
                    })
                } else {
                    vom_persist::Snapshot::open(&path, vom_persist::LoadMode::Copy)
                };
                match opened {
                    Ok(snap) => break Some(snap),
                    Err(e) => {
                        let transient = matches!(e, PersistError::Io { .. });
                        let retries_done = backoff_ms.len() as u32;
                        if transient && retries_done + 1 < policy.attempts.max(1) {
                            let pause = policy.backoff_ms(retries_done);
                            backoff_ms.push(pause);
                            scheduler.pause(pause);
                            continue;
                        }
                        summary.skipped.push(SkippedSnapshot {
                            path: path.clone(),
                            reason: SkipReason::Unreadable(e),
                        });
                        break None;
                    }
                }
            };
            if !backoff_ms.is_empty() {
                summary.retries.push(RetryRecord {
                    path: path.clone(),
                    backoff_ms,
                    recovered: snap.is_some(),
                });
            }
            let Some(snap) = snap else { continue };
            let Some((graph, _)) = digests.iter().find(|(_, d)| *d == snap.graph_digest()) else {
                summary.skipped.push(SkippedSnapshot {
                    path,
                    reason: SkipReason::NoMatchingGraph {
                        digest: snap.graph_digest(),
                    },
                });
                continue;
            };
            match self.load_index(graph, &path) {
                Ok(()) => summary.loaded += 1,
                Err(e) => summary.skipped.push(SkippedSnapshot {
                    path,
                    reason: SkipReason::LoadFailed(e),
                }),
            }
        }
        Ok(summary)
    }

    /// The memoized (building if absent) index for a request, after
    /// cheap upfront validation — so garbage queries fail readably
    /// *before* any expensive artifact build.
    fn index_for(&self, req: &ServiceRequest) -> Result<Arc<PreparedIndex>, ServiceError> {
        let instance = self
            .instance(&req.graph)
            .ok_or_else(|| ServiceError::UnknownGraph {
                name: req.graph.clone(),
            })?;
        let n = instance.num_nodes();
        let r = instance.num_candidates();
        if req.query.target >= r {
            return Err(CoreError::BadTarget {
                target: req.query.target,
                r,
            }
            .into());
        }
        if req.query.k == 0 {
            return Err(CoreError::EmptyQuery.into());
        }
        if req.query.k > n {
            return Err(CoreError::BudgetTooLarge { k: req.query.k, n }.into());
        }
        req.query.rule.validate(r).map_err(CoreError::from)?;

        let key = IndexKey {
            graph: req.graph.clone(),
            method: req.method,
            target: req.query.target,
            horizon: req.horizon,
            class: RuleClass::of(&req.query.rule),
            budget: prepared_budget(req.query.k, n),
        };
        // Grab (or create) the key's memo cell under the map lock —
        // cheap — then build outside it, inside the cell: same-key
        // racers wait for the one build, everyone else proceeds.
        let cell = self.cell_for(&key);
        let mut built_now = false;
        let result = cell
            .get_or_init(|| {
                built_now = true;
                let build = catch_unwind(AssertUnwindSafe(|| {
                    if let Some(plan) = self.fault_plan() {
                        if plan.take_build_panic(&req.graph) {
                            panic!("injected build fault ({})", req.graph);
                        }
                    }
                    let engine = (self.engine_factory)(req.method);
                    let spec = ProblemSpec::new(
                        instance,
                        req.query.target,
                        key.budget,
                        req.horizon,
                        req.query.rule.clone(),
                    )?;
                    Ok(Arc::new(engine.prepare_spec(spec)?))
                }));
                build.unwrap_or_else(|payload| {
                    Err(ServiceError::Panicked {
                        context: format!(
                            "index build for {:?}/{} panicked: {}",
                            req.graph,
                            req.method.name(),
                            panic_context(payload.as_ref())
                        ),
                    })
                })
            })
            .clone();
        match &result {
            // The builder thread enforces admission; a denial backs the
            // cell out so the cache never carries an over-budget index.
            Ok(index) if built_now => {
                if let Err(denied) = self.admit(&key, index) {
                    self.remove_cell(&key, &cell);
                    return Err(denied);
                }
            }
            // Quarantine a panicked build: drop the poisoned cell so
            // the next caller retries a fresh build. Deterministic
            // failures (bad spec) stay memoized — rebuilding cannot
            // change them.
            Err(ServiceError::Panicked { .. }) => self.remove_cell(&key, &cell),
            _ => {}
        }
        result
    }

    /// Builds (and memoizes) every index a batch will need, skipping
    /// requests that fail validation — their errors resurface per-query
    /// in [`VomService::run_batch`]. Returns the number of indexes
    /// built. Useful to warm the service before latency-sensitive
    /// serving, and to time build vs. query phases separately.
    pub fn warm(&self, requests: &[ServiceRequest]) -> usize {
        let before = self.index_count();
        for req in requests {
            let _ = self.index_for(req);
        }
        self.index_count() - before
    }

    /// Runs one query session, honoring the request's optional tick
    /// budget (with any installed fault plan's tick inflation).
    fn answer(
        &self,
        req: &ServiceRequest,
        index: &Arc<PreparedIndex>,
        plan: Option<&FaultPlan>,
    ) -> Result<Outcome, ServiceError> {
        let mut session = PreparedIndex::session(index);
        match req.budget {
            Some(ticks) => {
                let scale = plan.map_or(1, FaultPlan::tick_scale);
                let meter = Arc::new(CostMeter::with_scale(CostBudget::ticks(ticks), scale));
                session
                    .select_with_meter(&req.query, &meter)
                    .map_err(ServiceError::Selection)
            }
            None => session
                .select(&req.query)
                .map(Outcome::Complete)
                .map_err(ServiceError::Selection),
        }
    }

    /// Answers one request (building or reusing its index), honoring
    /// its tick budget: a spent deadline yields [`Outcome::Degraded`]
    /// with a bit-identical prefix of the full selection.
    pub fn run_full(&self, req: &ServiceRequest) -> Result<Outcome, ServiceError> {
        let plan = self.fault_plan();
        let index = self.index_for(req)?;
        self.answer(req, &index, plan.as_deref())
    }

    /// Answers one request (building or reusing its index). A budgeted
    /// request that degrades maps to [`ServiceError::Degraded`] here —
    /// use [`VomService::run_full`] to receive the prefix.
    pub fn run(&self, req: &ServiceRequest) -> ServiceResult {
        match self.run_full(req)? {
            Outcome::Complete(res) => Ok(res),
            Outcome::Degraded {
                seeds_prefix,
                budget_spent,
                budget_limit,
            } => Err(ServiceError::Degraded {
                budget_spent,
                budget_limit,
                seeds_found: seeds_prefix.len(),
            }),
        }
    }

    /// Answers a whole batch with full outcomes: indexes are resolved
    /// (and missing ones built, each exactly once) in deterministic
    /// schedule order — priority class first, request order within —
    /// then the queries run on the worker pool, one
    /// [`vom_core::QuerySession`] per request. The result vector is in
    /// **request order** regardless of schedule or priority, and each
    /// slot carries its own error: an invalid query, a denied
    /// admission, or even a panicking query
    /// ([`ServiceError::Panicked`], confined by a `catch_unwind` at the
    /// worker boundary) never sinks the batch.
    pub fn run_batch_full(
        &self,
        requests: &[ServiceRequest],
    ) -> Vec<Result<Outcome, ServiceError>> {
        let plan = self.fault_plan();
        // Deterministic schedule: priority class, then request order.
        // The same permutation orders index resolution (and therefore
        // admission/eviction) and worker dispatch.
        let mut order: Vec<usize> = (0..requests.len()).collect();
        order.sort_by_key(|&i| (requests[i].priority, i));
        let mut indexes: Vec<Option<Result<Arc<PreparedIndex>, ServiceError>>> =
            (0..requests.len()).map(|_| None).collect();
        for &i in &order {
            indexes[i] = Some(self.index_for(&requests[i]));
        }
        let indexes: Vec<Result<Arc<PreparedIndex>, ServiceError>> = indexes
            .into_iter()
            .map(|slot| slot.expect("resolved"))
            .collect();
        let scheduled: Vec<(usize, Result<Outcome, ServiceError>)> = (0..order.len())
            .into_par_iter()
            .map(|p| {
                let i = order[p];
                let req = &requests[i];
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    if let Some(p) = plan.as_deref() {
                        if p.query_panics_at(i) {
                            panic!("injected query fault (request {i})");
                        }
                    }
                    let index = indexes[i].clone()?;
                    self.answer(req, &index, plan.as_deref())
                }));
                let slot = outcome.unwrap_or_else(|payload| {
                    Err(ServiceError::Panicked {
                        context: format!(
                            "query {i} ({:?}/{}) panicked: {}",
                            req.graph,
                            req.method.name(),
                            panic_context(payload.as_ref())
                        ),
                    })
                });
                (i, slot)
            })
            .collect();
        let mut results: Vec<Option<Result<Outcome, ServiceError>>> =
            (0..requests.len()).map(|_| None).collect();
        for (i, slot) in scheduled {
            results[i] = Some(slot);
        }
        results
            .into_iter()
            .map(|slot| slot.expect("scattered"))
            .collect()
    }

    /// [`VomService::run_batch_full`] flattened to the historical
    /// complete-results API: a degraded slot maps to
    /// [`ServiceError::Degraded`] (requests without budgets — the
    /// common case — are unaffected).
    pub fn run_batch(&self, requests: &[ServiceRequest]) -> Vec<ServiceResult> {
        self.run_batch_full(requests)
            .into_iter()
            .map(|slot| match slot? {
                Outcome::Complete(res) => Ok(res),
                Outcome::Degraded {
                    seeds_prefix,
                    budget_spent,
                    budget_limit,
                } => Err(ServiceError::Degraded {
                    budget_spent,
                    budget_limit,
                    seeds_found: seeds_prefix.len(),
                }),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vom_diffusion::OpinionMatrix;
    use vom_graph::builder::graph_from_edges;
    use vom_voting::ScoringFunction;

    fn instance() -> Arc<Instance> {
        let g = Arc::new(graph_from_edges(4, &[(0, 2, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap());
        let b = OpinionMatrix::from_rows(vec![
            vec![0.40, 0.80, 0.60, 0.90],
            vec![0.35, 0.75, 1.00, 0.80],
        ])
        .unwrap();
        Arc::new(Instance::shared(g, b, vec![0.0, 0.0, 0.5, 0.5]).unwrap())
    }

    fn service() -> VomService {
        let service = VomService::new();
        service.register("toy", instance()).unwrap();
        service
    }

    #[test]
    fn service_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<VomService>();
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let service = service();
        assert!(matches!(
            service.register("toy", instance()),
            Err(ServiceError::DuplicateGraph { .. })
        ));
        assert_eq!(service.graph_names(), vec!["toy".to_string()]);
    }

    #[test]
    fn batch_preserves_request_order_and_isolates_errors() {
        let service = service();
        let batch = vec![
            ServiceRequest::new(
                "toy",
                MethodId::Rs,
                1,
                Query::new(1, ScoringFunction::Cumulative, 0),
            ),
            ServiceRequest::new(
                "toy",
                MethodId::Rs,
                1,
                Query::new(0, ScoringFunction::Cumulative, 0),
            ),
            ServiceRequest::new(
                "nope",
                MethodId::Rs,
                1,
                Query::new(1, ScoringFunction::Cumulative, 0),
            ),
            ServiceRequest::new(
                "toy",
                MethodId::Rs,
                1,
                Query::new(1, ScoringFunction::Cumulative, 9),
            ),
            ServiceRequest::new(
                "toy",
                MethodId::Rs,
                1,
                Query::new(99, ScoringFunction::Cumulative, 0),
            ),
            ServiceRequest::new(
                "toy",
                MethodId::Dm,
                1,
                Query::new(1, ScoringFunction::Plurality, 0),
            ),
        ];
        let results = service.run_batch(&batch);
        assert_eq!(results.len(), batch.len());
        assert_eq!(results[0].as_ref().unwrap().seeds, vec![0]);
        assert!(matches!(
            results[1],
            Err(ServiceError::Selection(CoreError::EmptyQuery))
        ));
        assert!(matches!(
            results[2],
            Err(ServiceError::UnknownGraph { ref name }) if name == "nope"
        ));
        assert!(matches!(
            results[3],
            Err(ServiceError::Selection(CoreError::BadTarget {
                target: 9,
                r: 2
            }))
        ));
        assert!(matches!(
            results[4],
            Err(ServiceError::Selection(CoreError::BudgetTooLarge {
                k: 99,
                n: 4
            }))
        ));
        assert_eq!(results[5].as_ref().unwrap().exact_score, 4.0);
    }

    #[test]
    fn indexes_are_memoized_per_key_and_shared_across_budgets() {
        let service = service();
        // k = 3 and k = 4 share the power-of-two budget bucket 4; a
        // different rule class gets its own index.
        let reqs = vec![
            ServiceRequest::new(
                "toy",
                MethodId::Rs,
                1,
                Query::new(3, ScoringFunction::Cumulative, 0),
            ),
            ServiceRequest::new(
                "toy",
                MethodId::Rs,
                1,
                Query::new(4, ScoringFunction::Cumulative, 0),
            ),
            ServiceRequest::new(
                "toy",
                MethodId::Rs,
                1,
                Query::new(1, ScoringFunction::Plurality, 0),
            ),
        ];
        assert_eq!(service.warm(&reqs), 2);
        // Warming again builds nothing; neither does running the batch.
        assert_eq!(service.warm(&reqs), 0);
        let results = service.run_batch(&reqs);
        assert!(results.iter().all(|r| r.is_ok()));
        assert_eq!(service.index_count(), 2);
    }

    #[test]
    fn batch_results_match_single_runs() {
        let service = service();
        let reqs: Vec<ServiceRequest> = (1..=2)
            .flat_map(|k| {
                [ScoringFunction::Cumulative, ScoringFunction::Plurality]
                    .into_iter()
                    .map(move |rule| {
                        ServiceRequest::new("toy", MethodId::Rs, 1, Query::new(k, rule, 0))
                    })
            })
            .collect();
        let batch = service.run_batch(&reqs);
        for (req, out) in reqs.iter().zip(&batch) {
            let solo = service.run(req).unwrap();
            let out = out.as_ref().unwrap();
            assert_eq!(solo.seeds, out.seeds);
            assert_eq!(solo.exact_score.to_bits(), out.exact_score.to_bits());
        }
    }

    #[test]
    fn index_capacity_evicts_fifo_without_changing_results() {
        let service = VomService::new().with_index_capacity(1);
        service.register("toy", instance()).unwrap();
        let cum = ServiceRequest::new(
            "toy",
            MethodId::Rs,
            1,
            Query::new(1, ScoringFunction::Cumulative, 0),
        );
        let plu = ServiceRequest::new(
            "toy",
            MethodId::Rs,
            1,
            Query::new(1, ScoringFunction::Plurality, 0),
        );
        let first = service.run(&cum).unwrap();
        assert_eq!(service.index_count(), 1);
        // A second key evicts the first (capacity 1)…
        service.run(&plu).unwrap();
        assert_eq!(service.index_count(), 1);
        // …and re-requesting the first rebuilds a bit-identical index.
        let again = service.run(&cum).unwrap();
        assert_eq!(service.index_count(), 1);
        assert_eq!(first.seeds, again.seeds);
        assert_eq!(first.exact_score.to_bits(), again.exact_score.to_bits());
        // clear_indexes releases everything.
        service.clear_indexes();
        assert_eq!(service.index_count(), 0);
    }

    #[test]
    fn save_then_warm_restart_reproduces_results_without_rebuilding() {
        let dir = std::env::temp_dir().join(format!(
            "vom-service-warm-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();

        let reqs = vec![
            ServiceRequest::new(
                "toy",
                MethodId::Rs,
                1,
                Query::new(2, ScoringFunction::Cumulative, 0),
            ),
            ServiceRequest::new(
                "toy",
                MethodId::Dm,
                1,
                Query::new(1, ScoringFunction::Plurality, 1),
            ),
        ];

        // First process: build, serve, snapshot to disk.
        let first = service();
        let fresh = first.run_batch(&reqs);
        for req in &reqs {
            let path = first.save_index(req, &dir).unwrap();
            assert!(path.exists());
        }

        // Toss in one corrupt snapshot: warm restarts must skip it.
        std::fs::write(dir.join("junk.vpi"), b"not a snapshot").unwrap();

        // Second process: warm from the directory, then serve without
        // building anything.
        let second = service();
        let summary = second.warm_from_dir(&dir).unwrap();
        assert_eq!(summary.loaded, 2);
        // The junk file is reported, not silently dropped.
        assert!(!summary.is_clean());
        assert_eq!(summary.skipped.len(), 1);
        assert!(summary.skipped[0].path.ends_with("junk.vpi"));
        assert!(matches!(
            summary.skipped[0].reason,
            SkipReason::Unreadable(_)
        ));
        assert_eq!(second.index_count(), 2);
        let stats = second.index_stats();
        assert_eq!(stats.len(), 2);
        let rs = stats.iter().find(|s| s.method == MethodId::Rs).unwrap();
        // The RS sketch set was loaded, not rebuilt.
        assert_eq!(rs.artifact_builds, 1);
        let warmed = second.run_batch(&reqs);
        for (a, b) in fresh.iter().zip(&warmed) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(a.seeds, b.seeds);
            assert_eq!(a.exact_score.to_bits(), b.exact_score.to_bits());
        }

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn warm_from_dir_reports_each_skip_with_a_typed_reason() {
        let dir = std::env::temp_dir().join(format!(
            "vom-service-skips-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();

        let saver = service();
        let req = ServiceRequest::new(
            "toy",
            MethodId::Rs,
            1,
            Query::new(1, ScoringFunction::Cumulative, 0),
        );
        let good = saver.save_index(&req, &dir).unwrap();

        // A corrupt copy of the good snapshot: flip one payload byte so
        // the header parses but the payload digest fails.
        let mut bytes = std::fs::read(&good).unwrap();
        let at = bytes.len() - 1;
        bytes[at] ^= 0x01;
        std::fs::write(dir.join("corrupt.vpi"), &bytes).unwrap();
        // A snapshot whose graph was never registered here.
        let foreign = VomService::new();
        let g = Arc::new(graph_from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap());
        let b = OpinionMatrix::from_rows(vec![vec![0.2, 0.4, 0.6]]).unwrap();
        foreign
            .register(
                "elsewhere",
                Arc::new(Instance::shared(g, b, vec![0.5, 0.5, 0.5]).unwrap()),
            )
            .unwrap();
        let freq = ServiceRequest::new(
            "elsewhere",
            MethodId::Dm,
            1,
            Query::new(1, ScoringFunction::Cumulative, 0),
        );
        foreign.save_index(&freq, &dir).unwrap();

        let fresh = service();
        let summary = fresh.warm_from_dir(&dir).unwrap();
        assert_eq!(summary.loaded, 1, "only the good snapshot serves");
        assert_eq!(fresh.index_count(), 1);
        assert_eq!(summary.skipped.len(), 2);
        let corrupt = summary
            .skipped
            .iter()
            .find(|s| s.path.ends_with("corrupt.vpi"))
            .expect("corrupt file reported");
        assert!(matches!(
            corrupt.reason,
            SkipReason::Unreadable(PersistError::DigestMismatch { .. })
        ));
        let unmatched = summary
            .skipped
            .iter()
            .find(|s| !s.path.ends_with("corrupt.vpi"))
            .expect("foreign file reported");
        assert!(matches!(
            unmatched.reason,
            SkipReason::NoMatchingGraph { .. }
        ));
        // Reasons render readably for operator logs.
        assert!(corrupt.reason.to_string().contains("unreadable snapshot"));

        // The served index answers identically to a fresh build.
        let warmed = fresh.run(&req).unwrap();
        let rebuilt = saver.run(&req).unwrap();
        assert_eq!(warmed.seeds, rebuilt.seeds);
        assert_eq!(warmed.exact_score.to_bits(), rebuilt.exact_score.to_bits());

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_index_fails_closed_on_wrong_graph_and_unknown_name() {
        let dir = std::env::temp_dir().join(format!(
            "vom-service-closed-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();

        let service = service();
        let req = ServiceRequest::new(
            "toy",
            MethodId::Rw,
            1,
            Query::new(1, ScoringFunction::Cumulative, 0),
        );
        let path = service.save_index(&req, &dir).unwrap();

        // Unknown graph name.
        assert!(matches!(
            service.load_index("nope", &path),
            Err(ServiceError::UnknownGraph { .. })
        ));

        // A different registered instance: the graph digest must reject
        // the snapshot.
        let g = Arc::new(graph_from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap());
        let b = OpinionMatrix::from_rows(vec![
            vec![0.10, 0.20, 0.30, 0.40],
            vec![0.40, 0.30, 0.20, 0.10],
        ])
        .unwrap();
        let other = Arc::new(Instance::shared(g, b, vec![0.1, 0.1, 0.1, 0.1]).unwrap());
        service.register("other", other).unwrap();
        assert!(matches!(
            service.load_index("other", &path),
            Err(ServiceError::Persist(PersistError::DigestMismatch {
                what: "graph",
                ..
            }))
        ));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn index_stats_reports_cached_indexes_with_their_keys() {
        let service = service();
        assert!(service.index_stats().is_empty());
        let req = ServiceRequest::new(
            "toy",
            MethodId::Rs,
            2,
            Query::new(3, ScoringFunction::Cumulative, 1),
        );
        service.run(&req).unwrap();
        let stats = service.index_stats();
        assert_eq!(stats.len(), 1);
        let s = &stats[0];
        assert_eq!(s.graph, "toy");
        assert_eq!(s.method, MethodId::Rs);
        assert_eq!(s.target, 1);
        assert_eq!(s.horizon, 2);
        assert_eq!(s.class, RuleClass::Cumulative);
        assert_eq!(s.budget, 4); // k = 3 bucketed up to 4
        assert!(s.heap_bytes > 0);
        assert_eq!(s.artifact_builds, 1);
    }

    #[test]
    fn budgeted_requests_degrade_to_prefixes() {
        let service = service();
        let full = ServiceRequest::new(
            "toy",
            MethodId::Rs,
            1,
            Query::new(3, ScoringFunction::Cumulative, 0),
        );
        let complete = service.run(&full).unwrap();
        assert_eq!(complete.seeds.len(), 3);

        // A generous budget completes bit-identically to no budget.
        let roomy = full.clone().with_budget(u64::MAX);
        match service.run_full(&roomy).unwrap() {
            Outcome::Complete(res) => {
                assert_eq!(res.seeds, complete.seeds);
                assert_eq!(res.exact_score.to_bits(), complete.exact_score.to_bits());
            }
            out => panic!("expected completion, got {out:?}"),
        }

        // Every smaller budget yields a prefix; the legacy APIs map a
        // degraded outcome to a typed error instead of dropping it.
        let mut saw_degraded = false;
        for ticks in 0..40 {
            let req = full.clone().with_budget(ticks);
            match service.run_full(&req).unwrap() {
                Outcome::Complete(res) => assert_eq!(res.seeds, complete.seeds),
                Outcome::Degraded {
                    seeds_prefix,
                    budget_spent,
                    budget_limit,
                } => {
                    saw_degraded = true;
                    assert_eq!(seeds_prefix, complete.seeds[..seeds_prefix.len()]);
                    assert!(budget_spent >= budget_limit);
                    assert_eq!(budget_limit, ticks);
                    assert!(matches!(
                        service.run(&req),
                        Err(ServiceError::Degraded { .. })
                    ));
                }
            }
        }
        assert!(saw_degraded, "tiny budgets must degrade");

        // Batch slots behave identically.
        let batch = vec![full.clone(), full.clone().with_budget(0)];
        let outs = service.run_batch_full(&batch);
        assert!(matches!(outs[0], Ok(Outcome::Complete(_))));
        assert!(matches!(outs[1], Ok(Outcome::Degraded { .. })));
        let flat = service.run_batch(&batch);
        assert!(flat[0].is_ok());
        assert!(matches!(flat[1], Err(ServiceError::Degraded { .. })));
    }

    #[test]
    fn a_panicking_query_is_confined_to_its_slot() {
        let service = service();
        let req = ServiceRequest::new(
            "toy",
            MethodId::Rs,
            1,
            Query::new(2, ScoringFunction::Cumulative, 0),
        );
        let batch = vec![req.clone(), req.clone(), req.clone()];
        let clean = service.run_batch(&batch);
        assert!(clean.iter().all(|r| r.is_ok()));

        service.set_fault_plan(Some(Arc::new(FaultPlan::new(7).with_query_panic(1))));
        let faulted = service.run_batch(&batch);
        assert!(matches!(
            faulted[1],
            Err(ServiceError::Panicked { ref context }) if context.contains("injected query fault")
        ));
        for i in [0, 2] {
            let (c, f) = (clean[i].as_ref().unwrap(), faulted[i].as_ref().unwrap());
            assert_eq!(c.seeds, f.seeds);
            assert_eq!(c.exact_score.to_bits(), f.exact_score.to_bits());
        }
        // Clearing the plan restores fault-free serving.
        service.set_fault_plan(None);
        let after = service.run_batch(&batch);
        assert!(after.iter().all(|r| r.is_ok()));
    }

    #[test]
    fn panicked_builds_are_quarantined_and_retried() {
        let service = service();
        service.set_fault_plan(Some(Arc::new(
            FaultPlan::new(11).with_build_panics("toy", 1),
        )));
        let req = ServiceRequest::new(
            "toy",
            MethodId::Rs,
            1,
            Query::new(1, ScoringFunction::Cumulative, 0),
        );
        assert!(matches!(
            service.run(&req),
            Err(ServiceError::Panicked { ref context }) if context.contains("injected build fault")
        ));
        // The poisoned cell is quarantined, not memoized…
        assert_eq!(service.index_count(), 0);
        // …so the next caller rebuilds and serves (the plan's single
        // panic is spent).
        let retried = service.run(&req).unwrap();
        let reference = self::tests::service().run(&req).unwrap();
        assert_eq!(retried.seeds, reference.seeds);
        assert_eq!(
            retried.exact_score.to_bits(),
            reference.exact_score.to_bits()
        );
    }

    #[test]
    fn memory_budget_denies_and_evicts_deterministically() {
        let cum = ServiceRequest::new(
            "toy",
            MethodId::Rs,
            1,
            Query::new(1, ScoringFunction::Cumulative, 0),
        );
        let plu = ServiceRequest::new(
            "toy",
            MethodId::Rs,
            1,
            Query::new(1, ScoringFunction::Plurality, 0),
        );

        // Measure real index sizes on an unbudgeted service.
        let sizer = service();
        sizer.run(&cum).unwrap();
        sizer.run(&plu).unwrap();
        let sizes: Vec<usize> = sizer.index_stats().iter().map(|s| s.heap_bytes).collect();
        let largest = sizes.iter().copied().max().unwrap();
        assert!(largest > 1);

        // A budget below any index denies admission and caches nothing.
        let tiny = VomService::new().with_memory_budget(1);
        tiny.register("toy", instance()).unwrap();
        assert!(matches!(
            tiny.run(&cum),
            Err(ServiceError::AdmissionDenied {
                budget_bytes: 1,
                ..
            })
        ));
        assert_eq!(tiny.index_count(), 0);

        // A budget fitting one index at a time evicts LRU on overflow
        // without ever changing results.
        let lean = VomService::new().with_memory_budget(largest);
        lean.register("toy", instance()).unwrap();
        let a = lean.run(&cum).unwrap();
        assert_eq!(lean.index_count(), 1);
        let b = lean.run(&plu).unwrap();
        assert_eq!(lean.index_count(), 1, "cold index evicted");
        let a2 = lean.run(&cum).unwrap();
        assert_eq!(a.seeds, a2.seeds);
        assert_eq!(a.exact_score.to_bits(), a2.exact_score.to_bits());
        let b2 = sizer.run(&plu).unwrap();
        assert_eq!(b.seeds, b2.seeds);
    }

    #[test]
    fn priority_orders_admission_within_a_batch() {
        let cum = ServiceRequest::new(
            "toy",
            MethodId::Rs,
            1,
            Query::new(1, ScoringFunction::Cumulative, 0),
        );
        let plu = ServiceRequest::new(
            "toy",
            MethodId::Rs,
            1,
            Query::new(1, ScoringFunction::Plurality, 0),
        );
        let sizer = service();
        sizer.run(&cum).unwrap();
        sizer.run(&plu).unwrap();
        let largest = sizer
            .index_stats()
            .iter()
            .map(|s| s.heap_bytes)
            .max()
            .unwrap();

        // One-index budget: the batch's admission order decides which
        // index survives. High priority resolves first, so the normal
        // request's index is admitted last and is the one retained.
        let svc = VomService::new().with_memory_budget(largest);
        svc.register("toy", instance()).unwrap();
        let batch = vec![cum.clone(), plu.clone().with_priority(Priority::High)];
        let outs = svc.run_batch_full(&batch);
        assert!(
            outs.iter().all(|r| r.is_ok()),
            "results are in request order"
        );
        let kept: Vec<RuleClass> = svc.index_stats().iter().map(|s| s.class).collect();
        assert_eq!(kept, vec![RuleClass::Cumulative]);

        // Flipping the priorities flips the retained index.
        let svc = VomService::new().with_memory_budget(largest);
        svc.register("toy", instance()).unwrap();
        let batch = vec![cum.clone().with_priority(Priority::High), plu.clone()];
        let outs = svc.run_batch_full(&batch);
        assert!(outs.iter().all(|r| r.is_ok()));
        let kept: Vec<RuleClass> = svc.index_stats().iter().map(|s| s.class).collect();
        assert_eq!(kept, vec![RuleClass::Rank]);
    }

    #[test]
    fn warm_retries_transient_failures_with_deterministic_backoff() {
        let dir = std::env::temp_dir().join(format!(
            "vom-service-retry-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let saver = service();
        let req = ServiceRequest::new(
            "toy",
            MethodId::Rs,
            1,
            Query::new(1, ScoringFunction::Cumulative, 0),
        );
        let path = saver.save_index(&req, &dir).unwrap();
        let file = path.file_name().unwrap().to_string_lossy().into_owned();
        let policy = RetryPolicy {
            attempts: 3,
            base_backoff_ms: 10,
        };

        // Two transient failures, three attempts: recovered, with the
        // doubling backoff schedule recorded exactly.
        let svc = service();
        svc.set_fault_plan(Some(Arc::new(
            FaultPlan::new(3).with_transient_unreadable(&file, 2),
        )));
        let summary = svc
            .warm_from_dir_with(&dir, policy, &NoopScheduler)
            .unwrap();
        assert_eq!(summary.loaded, 1);
        assert!(summary.is_clean());
        assert_eq!(summary.retries.len(), 1);
        assert_eq!(summary.retries[0].backoff_ms, vec![10, 20]);
        assert!(summary.retries[0].recovered);

        // More failures than attempts: skipped as Unreadable, with the
        // exhausted schedule recorded.
        let svc = service();
        svc.set_fault_plan(Some(Arc::new(
            FaultPlan::new(3).with_transient_unreadable(&file, 99),
        )));
        let summary = svc
            .warm_from_dir_with(&dir, policy, &NoopScheduler)
            .unwrap();
        assert_eq!(summary.loaded, 0);
        assert_eq!(summary.skipped.len(), 1);
        assert!(matches!(
            summary.skipped[0].reason,
            SkipReason::Unreadable(PersistError::Io { .. })
        ));
        assert_eq!(summary.retries[0].backoff_ms, vec![10, 20]);
        assert!(!summary.retries[0].recovered);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prepared_budget_buckets_are_query_only() {
        assert_eq!(prepared_budget(1, 100), 1);
        assert_eq!(prepared_budget(3, 100), 4);
        assert_eq!(prepared_budget(4, 100), 4);
        assert_eq!(prepared_budget(90, 100), 100); // capped at n
        assert_eq!(prepared_budget(7, 7), 7);
    }
}
