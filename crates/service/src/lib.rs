#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # vom-service
//!
//! A shared-state query service over the prepared-index lifecycle:
//! register named diffusion instances once, then throw batches of
//! [`Query`]s at them from any number of callers.
//!
//! [`VomService`] is the facade the ROADMAP's serving story needs on top
//! of `vom-core`'s [`PreparedIndex`]/[`vom_core::QuerySession`] split:
//!
//! * **named graphs** — instances are registered under a name and shared
//!   behind `Arc`s;
//! * **memoized indexes** — each `(graph, method, target, horizon,
//!   rule-class, budget-bucket)` builds its [`PreparedIndex`] exactly
//!   once, whoever asks first; later queries (and whole batches) reuse
//!   it — including the competitive-scoring artifacts it carries (the
//!   exact competitor matrix and its `vom_voting::RankIndex`, which
//!   every session's delta-driven greedy ranks against);
//! * **parallel batches** — [`VomService::run_batch`] fans a
//!   `&[ServiceRequest]` across the worker pool (the vendored rayon
//!   shim), one cheap [`vom_core::QuerySession`] per request, and returns
//!   results **in request order**;
//! * **per-query errors** — an invalid query (unknown graph, `k = 0`,
//!   out-of-range target, oversized budget, bad rule) yields a readable
//!   [`ServiceError`] in its slot; the rest of the batch is unaffected.
//!
//! # Determinism contract
//!
//! Selections are bit-identical however the batch is scheduled: indexes
//! are immutable, artifact builds are deterministic given the engine
//! seed, and the budget each index is prepared at depends only on the
//! query (`k` rounded up to a power of two, capped at `n`) — never on
//! batch composition, memoization history, or thread count. The
//! workspace test `tests/query_service.rs` and the `repro --bench-json`
//! query-throughput section both assert this cross-width.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use vom_core::{MethodId, Query};
//! use vom_diffusion::{Instance, OpinionMatrix};
//! use vom_graph::builder::graph_from_edges;
//! use vom_service::{ServiceRequest, VomService};
//! use vom_voting::ScoringFunction;
//!
//! let g = Arc::new(graph_from_edges(4, &[(0, 2, 1.0), (1, 2, 1.0), (2, 3, 1.0)])?);
//! let b = OpinionMatrix::from_rows(vec![
//!     vec![0.40, 0.80, 0.60, 0.90],
//!     vec![0.35, 0.75, 1.00, 0.80],
//! ])?;
//! let inst = Instance::shared(g, b, vec![0.0, 0.0, 0.5, 0.5])?;
//!
//! let service = VomService::new();
//! service.register("toy", Arc::new(inst))?;
//!
//! let batch = vec![
//!     ServiceRequest::new("toy", MethodId::Rs, 1, Query::new(1, ScoringFunction::Cumulative, 0)),
//!     ServiceRequest::new("toy", MethodId::Rs, 1, Query::new(0, ScoringFunction::Cumulative, 0)),
//!     ServiceRequest::new("toy", MethodId::Dm, 1, Query::new(1, ScoringFunction::Plurality, 0)),
//! ];
//! let results = service.run_batch(&batch);
//!
//! assert_eq!(results.len(), 3); // request order, one slot per request
//! assert_eq!(results[0].as_ref().unwrap().seeds, vec![0]);
//! assert!(results[1].is_err()); // k = 0 fails alone, not the batch
//! assert_eq!(results[2].as_ref().unwrap().exact_score, 4.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use rayon::IntoParallelIterator;
// audit:allow(d-hash-iter, "HashMap is a keyed cache probed by exact key; every enumeration goes through sorted snapshots")
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Duration;
use vom_baselines::AnyEngine;
use vom_core::engine::{PreparedIndex, Query, RuleClass, SeedSelector, SelectionResult};
use vom_core::persist::{graph_digest, IndexSource};
use vom_core::{CoreError, MethodId, ProblemSpec};
use vom_diffusion::Instance;
use vom_graph::Candidate;
use vom_persist::PersistError;

/// Builds the engine (with its configuration) the service uses for a
/// registry method. The default is [`AnyEngine::with_defaults`]; a bench
/// harness can inject its §VIII-B parameter settings instead.
pub type EngineFactory = Box<dyn Fn(MethodId) -> AnyEngine + Send + Sync>;

/// One query against a named, registered graph.
#[derive(Debug, Clone)]
pub struct ServiceRequest {
    /// The registered instance name.
    pub graph: String,
    /// The selection method (any of the nine registered methods).
    pub method: MethodId,
    /// The diffusion horizon `t` the artifacts are built for.
    pub horizon: usize,
    /// The selection query (budget, rule, target, mode).
    pub query: Query,
}

impl ServiceRequest {
    /// Convenience constructor.
    pub fn new(
        graph: impl Into<String>,
        method: MethodId,
        horizon: usize,
        query: Query,
    ) -> ServiceRequest {
        ServiceRequest {
            graph: graph.into(),
            method,
            horizon,
            query,
        }
    }
}

/// A per-query service failure. Batches never fail as a whole: each
/// request gets its own `Result` slot.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The request named a graph that was never registered.
    UnknownGraph {
        /// The unknown name.
        name: String,
    },
    /// `register` was called with a name that is already taken.
    DuplicateGraph {
        /// The contested name.
        name: String,
    },
    /// The query itself was invalid or the selection failed (propagated
    /// from `vom-core`, e.g. `k = 0`, out-of-range target, `k > n`).
    Selection(CoreError),
    /// Saving or loading an index snapshot failed (typed; see
    /// [`vom_persist::PersistError`]). Loads fail closed — a bad
    /// snapshot never becomes a served index.
    Persist(PersistError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::UnknownGraph { name } => {
                write!(f, "no graph registered under {name:?}")
            }
            ServiceError::DuplicateGraph { name } => {
                write!(f, "a graph is already registered under {name:?}")
            }
            ServiceError::Selection(e) => write!(f, "selection failed: {e}"),
            ServiceError::Persist(e) => write!(f, "index snapshot failed: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Selection(e) => Some(e),
            ServiceError::Persist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for ServiceError {
    fn from(e: CoreError) -> Self {
        ServiceError::Selection(e)
    }
}

impl From<PersistError> for ServiceError {
    fn from(e: PersistError) -> Self {
        ServiceError::Persist(e)
    }
}

/// Per-request outcome of a batch.
pub type ServiceResult = Result<SelectionResult, ServiceError>;

/// One row of [`VomService::index_stats`]: the memo key of a cached
/// index plus its build-side diagnostics.
#[derive(Debug, Clone)]
pub struct IndexStats {
    /// The registered graph name.
    pub graph: String,
    /// The prepared method.
    pub method: MethodId,
    /// The prepared target candidate.
    pub target: Candidate,
    /// The prepared horizon.
    pub horizon: usize,
    /// The rule class the index was keyed under.
    pub class: RuleClass,
    /// The prepared (bucketed) budget.
    pub budget: usize,
    /// Heap bytes currently held by the estimator artifacts.
    pub heap_bytes: usize,
    /// Estimator artifacts present (eager + lazy builds, or loaded).
    pub artifact_builds: usize,
    /// Time to readiness: the prepare wall time for built indexes, the
    /// load wall time for snapshot-loaded ones.
    pub build_time: Duration,
}

/// Outcome of a [`VomService::warm_from_dir`] scan: how many snapshots
/// became served indexes, and — per file — why the rest did not. A
/// non-empty `skipped` list is not an error (the affected indexes are
/// rebuilt lazily), but it is the difference between a clean warm
/// restart and one degrading to cold builds, so callers should log it.
#[derive(Debug)]
pub struct WarmSummary {
    /// Snapshots loaded and memoized.
    pub loaded: usize,
    /// Snapshot files present but not served, with typed reasons.
    pub skipped: Vec<SkippedSnapshot>,
}

impl WarmSummary {
    /// Whether every `.vpi` file in the directory was served.
    pub fn is_clean(&self) -> bool {
        self.skipped.is_empty()
    }
}

/// One `.vpi` file a warm restart could not serve from.
#[derive(Debug)]
pub struct SkippedSnapshot {
    /// The snapshot file.
    pub path: PathBuf,
    /// Why it was skipped.
    pub reason: SkipReason,
}

/// Why [`VomService::warm_from_dir`] skipped a snapshot file.
#[derive(Debug)]
pub enum SkipReason {
    /// The file failed to open or validate (truncation, corruption,
    /// format-version drift — see the wrapped [`PersistError`]).
    Unreadable(PersistError),
    /// No registered graph matches the snapshot's graph digest.
    NoMatchingGraph {
        /// The snapshot's graph digest.
        digest: u64,
    },
    /// A graph digest-matched but reconstructing the index failed.
    LoadFailed(ServiceError),
}

impl fmt::Display for SkipReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SkipReason::Unreadable(e) => write!(f, "unreadable snapshot: {e}"),
            SkipReason::NoMatchingGraph { digest } => {
                write!(f, "no registered graph matches digest {digest:016x}")
            }
            SkipReason::LoadFailed(e) => write!(f, "index load failed: {e}"),
        }
    }
}

/// Everything a prepared index depends on — the memoization key. The
/// budget bucket (`k` rounded up to a power of two, capped at `n`)
/// depends only on the query, so memo hits can never change results.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct IndexKey {
    graph: String,
    method: MethodId,
    target: Candidate,
    horizon: usize,
    class: RuleClass,
    budget: usize,
}

/// The budget an index is prepared at for a query asking `k ≤ n` seeds:
/// the next power of two (so nearby budgets share one index) capped at
/// `n` (a budget can never exceed the node count).
fn prepared_budget(k: usize, n: usize) -> usize {
    k.max(1).checked_next_power_of_two().unwrap_or(n).min(n)
}

/// One memo slot: same-key callers share the cell and only the first
/// runs the build (inside the cell's `OnceLock`, *outside* the cache
/// map lock — memo hits and unrelated builds never wait on each other).
type IndexCell = Arc<OnceLock<Result<Arc<PreparedIndex>, ServiceError>>>;

/// The index memo: cells by key, insertion order for FIFO eviction, and
/// an optional capacity. Eviction is safe at any moment — in-flight
/// sessions keep their index alive through their own `Arc`s, and a
/// rebuilt index is bit-identical by the determinism contract.
struct IndexCache {
    cells: HashMap<IndexKey, IndexCell>,
    order: VecDeque<IndexKey>,
    capacity: Option<usize>,
}

/// The shared-state query service facade. One `VomService` is meant to
/// live for the process: it is `Send + Sync`, all methods take `&self`,
/// and every piece of prepared state is shared behind `Arc`s.
pub struct VomService {
    engine_factory: EngineFactory,
    graphs: RwLock<BTreeMap<String, Arc<Instance>>>,
    /// The cache map lock is held only for cell lookup/insert/evict —
    /// never across an artifact build.
    indexes: Mutex<IndexCache>,
}

impl Default for VomService {
    fn default() -> Self {
        VomService::new()
    }
}

impl VomService {
    /// A service using each method's default configuration.
    pub fn new() -> VomService {
        VomService::with_engine_factory(Box::new(AnyEngine::with_defaults))
    }

    /// A service with custom engine configurations (e.g. the bench
    /// harness's §VIII-B parameter settings).
    pub fn with_engine_factory(factory: EngineFactory) -> VomService {
        VomService {
            engine_factory: factory,
            graphs: RwLock::new(BTreeMap::new()),
            indexes: Mutex::new(IndexCache {
                cells: HashMap::new(),
                order: VecDeque::new(),
                capacity: None,
            }),
        }
    }

    /// Caps the index memo at `capacity` entries with FIFO eviction
    /// (default: unbounded). A long-lived service whose requests vary
    /// target/horizon/budget freely should set this — every distinct
    /// key otherwise retains its arena/sketch artifacts forever.
    /// Eviction never changes results: a re-requested key rebuilds the
    /// identical index.
    pub fn with_index_capacity(self, capacity: usize) -> VomService {
        self.indexes.lock().expect("index lock").capacity = Some(capacity.max(1));
        self
    }

    /// Drops every memoized index (e.g. after a bulk workload, to
    /// release artifact memory). Sessions already holding an index keep
    /// it alive through their own `Arc`s.
    pub fn clear_indexes(&self) {
        let mut cache = self.indexes.lock().expect("index lock");
        cache.cells.clear();
        cache.order.clear();
    }

    /// Registers an instance under a name. Names are first-come:
    /// re-registering is an error (indexes built for the old instance
    /// would silently answer for the new one otherwise).
    pub fn register(
        &self,
        name: impl Into<String>,
        instance: Arc<Instance>,
    ) -> Result<(), ServiceError> {
        let name = name.into();
        let mut graphs = self.graphs.write().expect("graphs lock");
        if graphs.contains_key(&name) {
            return Err(ServiceError::DuplicateGraph { name });
        }
        graphs.insert(name, instance);
        Ok(())
    }

    /// The registered instance names, sorted.
    pub fn graph_names(&self) -> Vec<String> {
        self.graphs
            .read()
            .expect("graphs lock")
            .keys()
            .cloned()
            .collect()
    }

    /// The registered instance under `name`, if any.
    pub fn instance(&self, name: &str) -> Option<Arc<Instance>> {
        self.graphs.read().expect("graphs lock").get(name).cloned()
    }

    /// Number of distinct prepared indexes currently memoized.
    pub fn index_count(&self) -> usize {
        self.indexes.lock().expect("index lock").cells.len()
    }

    /// The memo cell for `key`, creating (and FIFO-evicting, if over
    /// capacity) under the short-held map lock.
    fn cell_for(&self, key: &IndexKey) -> IndexCell {
        let mut cache = self.indexes.lock().expect("index lock");
        match cache.cells.get(key) {
            Some(cell) => Arc::clone(cell),
            None => {
                if let Some(cap) = cache.capacity {
                    while cache.cells.len() >= cap {
                        match cache.order.pop_front() {
                            Some(oldest) => {
                                cache.cells.remove(&oldest);
                            }
                            None => break,
                        }
                    }
                }
                let cell: IndexCell = Arc::new(OnceLock::new());
                cache.cells.insert(key.clone(), Arc::clone(&cell));
                cache.order.push_back(key.clone());
                cell
            }
        }
    }

    /// Build-side diagnostics of every successfully built (or loaded)
    /// memoized index: the memo key, current artifact heap bytes, and
    /// build counters — the serving-side view of Figure 17(b).
    pub fn index_stats(&self) -> Vec<IndexStats> {
        let cells: Vec<(IndexKey, IndexCell)> = {
            let cache = self.indexes.lock().expect("index lock");
            cache
                .cells
                .iter()
                .map(|(k, c)| (k.clone(), Arc::clone(c)))
                .collect()
        };
        let mut stats: Vec<IndexStats> = cells
            .into_iter()
            .filter_map(|(key, cell)| {
                let index = cell.get()?.as_ref().ok()?.clone();
                let b = index.build_stats();
                Some(IndexStats {
                    graph: key.graph,
                    method: key.method,
                    target: key.target,
                    horizon: key.horizon,
                    class: key.class,
                    budget: key.budget,
                    heap_bytes: b.heap_bytes,
                    artifact_builds: b.artifact_builds,
                    build_time: b.build_time,
                })
            })
            .collect();
        stats.sort_by(|a, b| {
            (&a.graph, a.method as usize, a.target, a.horizon, a.budget).cmp(&(
                &b.graph,
                b.method as usize,
                b.target,
                b.horizon,
                b.budget,
            ))
        });
        stats
    }

    /// The canonical snapshot filename for an index under `graph`.
    fn snapshot_name(key: &IndexKey) -> String {
        format!(
            "{}--{}-c{}-t{}-h{}-b{}.vpi",
            key.graph,
            key.method.name().to_lowercase(),
            key.class as usize,
            key.target,
            key.horizon,
            key.budget
        )
    }

    /// Resolves (building if absent) the index a request needs and
    /// writes it as a snapshot file into `dir`, returning the path.
    /// Pair with [`VomService::warm_from_dir`] on the next process start.
    pub fn save_index(&self, req: &ServiceRequest, dir: &Path) -> Result<PathBuf, ServiceError> {
        let index = self.index_for(req)?;
        let instance = self
            .instance(&req.graph)
            .ok_or_else(|| ServiceError::UnknownGraph {
                name: req.graph.clone(),
            })?;
        let key = IndexKey {
            graph: req.graph.clone(),
            method: req.method,
            target: req.query.target,
            horizon: req.horizon,
            class: RuleClass::of(&req.query.rule),
            budget: prepared_budget(req.query.k, instance.num_nodes()),
        };
        let path = dir.join(Self::snapshot_name(&key));
        index.save(&path)?;
        Ok(path)
    }

    /// Loads one index snapshot against the named registered graph and
    /// memoizes it. The snapshot's graph digest must match the
    /// registered instance — loading fails closed otherwise. If the key
    /// is already cached (e.g. a racing build won), the existing index
    /// is kept; both are bit-identical by the determinism contract.
    pub fn load_index(&self, graph: &str, path: &Path) -> Result<(), ServiceError> {
        let instance = self
            .instance(graph)
            .ok_or_else(|| ServiceError::UnknownGraph {
                name: graph.to_string(),
            })?;
        let index = Arc::new(PreparedIndex::load(instance, IndexSource::Mapped(path))?);
        let key = IndexKey {
            graph: graph.to_string(),
            method: index.method_id(),
            target: index.target(),
            horizon: index.horizon(),
            class: RuleClass::of(index.rule()),
            budget: index.budget(),
        };
        let cell = self.cell_for(&key);
        let _ = cell.set(Ok(index));
        Ok(())
    }

    /// Warm restart: scans `dir` for `.vpi` snapshots, matches each to a
    /// registered graph **by graph digest** (no filename convention
    /// required), and memoizes every match. Snapshots that fail to load
    /// — corruption, version drift, no matching graph — are skipped, not
    /// fatal: the corresponding indexes are simply rebuilt on first use.
    /// Every skip is reported with its file and typed reason in the
    /// returned [`WarmSummary`], so operators can tell a clean restart
    /// from one that silently fell back to rebuilds.
    pub fn warm_from_dir(&self, dir: &Path) -> Result<WarmSummary, ServiceError> {
        let digests: Vec<(String, u64)> = {
            let graphs = self.graphs.read().expect("graphs lock");
            graphs
                .iter()
                .map(|(name, inst)| (name.clone(), graph_digest(inst)))
                .collect()
        };
        let entries = std::fs::read_dir(dir).map_err(|e| {
            ServiceError::Persist(PersistError::Io {
                op: "read_dir",
                message: e.to_string(),
            })
        })?;
        let mut summary = WarmSummary {
            loaded: 0,
            skipped: Vec::new(),
        };
        let mut paths: Vec<PathBuf> = entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|ext| ext == "vpi"))
            .collect();
        paths.sort();
        for path in paths {
            let snap = match vom_persist::Snapshot::open(&path, vom_persist::LoadMode::Copy) {
                Ok(snap) => snap,
                Err(e) => {
                    summary.skipped.push(SkippedSnapshot {
                        path,
                        reason: SkipReason::Unreadable(e),
                    });
                    continue;
                }
            };
            let Some((graph, _)) = digests.iter().find(|(_, d)| *d == snap.graph_digest()) else {
                summary.skipped.push(SkippedSnapshot {
                    path,
                    reason: SkipReason::NoMatchingGraph {
                        digest: snap.graph_digest(),
                    },
                });
                continue;
            };
            match self.load_index(graph, &path) {
                Ok(()) => summary.loaded += 1,
                Err(e) => summary.skipped.push(SkippedSnapshot {
                    path,
                    reason: SkipReason::LoadFailed(e),
                }),
            }
        }
        Ok(summary)
    }

    /// The memoized (building if absent) index for a request, after
    /// cheap upfront validation — so garbage queries fail readably
    /// *before* any expensive artifact build.
    fn index_for(&self, req: &ServiceRequest) -> Result<Arc<PreparedIndex>, ServiceError> {
        let instance = self
            .instance(&req.graph)
            .ok_or_else(|| ServiceError::UnknownGraph {
                name: req.graph.clone(),
            })?;
        let n = instance.num_nodes();
        let r = instance.num_candidates();
        if req.query.target >= r {
            return Err(CoreError::BadTarget {
                target: req.query.target,
                r,
            }
            .into());
        }
        if req.query.k == 0 {
            return Err(CoreError::EmptyQuery.into());
        }
        if req.query.k > n {
            return Err(CoreError::BudgetTooLarge { k: req.query.k, n }.into());
        }
        req.query.rule.validate(r).map_err(CoreError::from)?;

        let key = IndexKey {
            graph: req.graph.clone(),
            method: req.method,
            target: req.query.target,
            horizon: req.horizon,
            class: RuleClass::of(&req.query.rule),
            budget: prepared_budget(req.query.k, n),
        };
        // Grab (or create) the key's memo cell under the map lock —
        // cheap — then build outside it, inside the cell: same-key
        // racers wait for the one build, everyone else proceeds.
        let cell = self.cell_for(&key);
        cell.get_or_init(|| {
            let engine = (self.engine_factory)(req.method);
            let spec = ProblemSpec::new(
                instance,
                req.query.target,
                key.budget,
                req.horizon,
                req.query.rule.clone(),
            )?;
            Ok(Arc::new(engine.prepare_spec(spec)?))
        })
        .clone()
    }

    /// Builds (and memoizes) every index a batch will need, skipping
    /// requests that fail validation — their errors resurface per-query
    /// in [`VomService::run_batch`]. Returns the number of indexes
    /// built. Useful to warm the service before latency-sensitive
    /// serving, and to time build vs. query phases separately.
    pub fn warm(&self, requests: &[ServiceRequest]) -> usize {
        let before = self.index_count();
        for req in requests {
            let _ = self.index_for(req);
        }
        self.index_count() - before
    }

    /// Answers one request (building or reusing its index).
    pub fn run(&self, req: &ServiceRequest) -> ServiceResult {
        let index = self.index_for(req)?;
        let mut session = PreparedIndex::session(&index);
        session.select(&req.query).map_err(ServiceError::Selection)
    }

    /// Answers a whole batch: indexes are resolved (and missing ones
    /// built, each exactly once) up front, then the queries run on the
    /// worker pool, one [`vom_core::QuerySession`] per request. The
    /// result vector is in request order regardless of schedule, and
    /// each slot carries its own error — one bad query never sinks the
    /// batch.
    pub fn run_batch(&self, requests: &[ServiceRequest]) -> Vec<ServiceResult> {
        let indexes: Vec<Result<Arc<PreparedIndex>, ServiceError>> =
            requests.iter().map(|req| self.index_for(req)).collect();
        (0..requests.len())
            .into_par_iter()
            .map(|i| {
                let index = indexes[i].clone()?;
                let mut session = PreparedIndex::session(&index);
                session
                    .select(&requests[i].query)
                    .map_err(ServiceError::Selection)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vom_diffusion::OpinionMatrix;
    use vom_graph::builder::graph_from_edges;
    use vom_voting::ScoringFunction;

    fn instance() -> Arc<Instance> {
        let g = Arc::new(graph_from_edges(4, &[(0, 2, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap());
        let b = OpinionMatrix::from_rows(vec![
            vec![0.40, 0.80, 0.60, 0.90],
            vec![0.35, 0.75, 1.00, 0.80],
        ])
        .unwrap();
        Arc::new(Instance::shared(g, b, vec![0.0, 0.0, 0.5, 0.5]).unwrap())
    }

    fn service() -> VomService {
        let service = VomService::new();
        service.register("toy", instance()).unwrap();
        service
    }

    #[test]
    fn service_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<VomService>();
    }

    #[test]
    fn duplicate_registration_is_rejected() {
        let service = service();
        assert!(matches!(
            service.register("toy", instance()),
            Err(ServiceError::DuplicateGraph { .. })
        ));
        assert_eq!(service.graph_names(), vec!["toy".to_string()]);
    }

    #[test]
    fn batch_preserves_request_order_and_isolates_errors() {
        let service = service();
        let batch = vec![
            ServiceRequest::new(
                "toy",
                MethodId::Rs,
                1,
                Query::new(1, ScoringFunction::Cumulative, 0),
            ),
            ServiceRequest::new(
                "toy",
                MethodId::Rs,
                1,
                Query::new(0, ScoringFunction::Cumulative, 0),
            ),
            ServiceRequest::new(
                "nope",
                MethodId::Rs,
                1,
                Query::new(1, ScoringFunction::Cumulative, 0),
            ),
            ServiceRequest::new(
                "toy",
                MethodId::Rs,
                1,
                Query::new(1, ScoringFunction::Cumulative, 9),
            ),
            ServiceRequest::new(
                "toy",
                MethodId::Rs,
                1,
                Query::new(99, ScoringFunction::Cumulative, 0),
            ),
            ServiceRequest::new(
                "toy",
                MethodId::Dm,
                1,
                Query::new(1, ScoringFunction::Plurality, 0),
            ),
        ];
        let results = service.run_batch(&batch);
        assert_eq!(results.len(), batch.len());
        assert_eq!(results[0].as_ref().unwrap().seeds, vec![0]);
        assert!(matches!(
            results[1],
            Err(ServiceError::Selection(CoreError::EmptyQuery))
        ));
        assert!(matches!(
            results[2],
            Err(ServiceError::UnknownGraph { ref name }) if name == "nope"
        ));
        assert!(matches!(
            results[3],
            Err(ServiceError::Selection(CoreError::BadTarget {
                target: 9,
                r: 2
            }))
        ));
        assert!(matches!(
            results[4],
            Err(ServiceError::Selection(CoreError::BudgetTooLarge {
                k: 99,
                n: 4
            }))
        ));
        assert_eq!(results[5].as_ref().unwrap().exact_score, 4.0);
    }

    #[test]
    fn indexes_are_memoized_per_key_and_shared_across_budgets() {
        let service = service();
        // k = 3 and k = 4 share the power-of-two budget bucket 4; a
        // different rule class gets its own index.
        let reqs = vec![
            ServiceRequest::new(
                "toy",
                MethodId::Rs,
                1,
                Query::new(3, ScoringFunction::Cumulative, 0),
            ),
            ServiceRequest::new(
                "toy",
                MethodId::Rs,
                1,
                Query::new(4, ScoringFunction::Cumulative, 0),
            ),
            ServiceRequest::new(
                "toy",
                MethodId::Rs,
                1,
                Query::new(1, ScoringFunction::Plurality, 0),
            ),
        ];
        assert_eq!(service.warm(&reqs), 2);
        // Warming again builds nothing; neither does running the batch.
        assert_eq!(service.warm(&reqs), 0);
        let results = service.run_batch(&reqs);
        assert!(results.iter().all(|r| r.is_ok()));
        assert_eq!(service.index_count(), 2);
    }

    #[test]
    fn batch_results_match_single_runs() {
        let service = service();
        let reqs: Vec<ServiceRequest> = (1..=2)
            .flat_map(|k| {
                [ScoringFunction::Cumulative, ScoringFunction::Plurality]
                    .into_iter()
                    .map(move |rule| {
                        ServiceRequest::new("toy", MethodId::Rs, 1, Query::new(k, rule, 0))
                    })
            })
            .collect();
        let batch = service.run_batch(&reqs);
        for (req, out) in reqs.iter().zip(&batch) {
            let solo = service.run(req).unwrap();
            let out = out.as_ref().unwrap();
            assert_eq!(solo.seeds, out.seeds);
            assert_eq!(solo.exact_score.to_bits(), out.exact_score.to_bits());
        }
    }

    #[test]
    fn index_capacity_evicts_fifo_without_changing_results() {
        let service = VomService::new().with_index_capacity(1);
        service.register("toy", instance()).unwrap();
        let cum = ServiceRequest::new(
            "toy",
            MethodId::Rs,
            1,
            Query::new(1, ScoringFunction::Cumulative, 0),
        );
        let plu = ServiceRequest::new(
            "toy",
            MethodId::Rs,
            1,
            Query::new(1, ScoringFunction::Plurality, 0),
        );
        let first = service.run(&cum).unwrap();
        assert_eq!(service.index_count(), 1);
        // A second key evicts the first (capacity 1)…
        service.run(&plu).unwrap();
        assert_eq!(service.index_count(), 1);
        // …and re-requesting the first rebuilds a bit-identical index.
        let again = service.run(&cum).unwrap();
        assert_eq!(service.index_count(), 1);
        assert_eq!(first.seeds, again.seeds);
        assert_eq!(first.exact_score.to_bits(), again.exact_score.to_bits());
        // clear_indexes releases everything.
        service.clear_indexes();
        assert_eq!(service.index_count(), 0);
    }

    #[test]
    fn save_then_warm_restart_reproduces_results_without_rebuilding() {
        let dir = std::env::temp_dir().join(format!(
            "vom-service-warm-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();

        let reqs = vec![
            ServiceRequest::new(
                "toy",
                MethodId::Rs,
                1,
                Query::new(2, ScoringFunction::Cumulative, 0),
            ),
            ServiceRequest::new(
                "toy",
                MethodId::Dm,
                1,
                Query::new(1, ScoringFunction::Plurality, 1),
            ),
        ];

        // First process: build, serve, snapshot to disk.
        let first = service();
        let fresh = first.run_batch(&reqs);
        for req in &reqs {
            let path = first.save_index(req, &dir).unwrap();
            assert!(path.exists());
        }

        // Toss in one corrupt snapshot: warm restarts must skip it.
        std::fs::write(dir.join("junk.vpi"), b"not a snapshot").unwrap();

        // Second process: warm from the directory, then serve without
        // building anything.
        let second = service();
        let summary = second.warm_from_dir(&dir).unwrap();
        assert_eq!(summary.loaded, 2);
        // The junk file is reported, not silently dropped.
        assert!(!summary.is_clean());
        assert_eq!(summary.skipped.len(), 1);
        assert!(summary.skipped[0].path.ends_with("junk.vpi"));
        assert!(matches!(
            summary.skipped[0].reason,
            SkipReason::Unreadable(_)
        ));
        assert_eq!(second.index_count(), 2);
        let stats = second.index_stats();
        assert_eq!(stats.len(), 2);
        let rs = stats.iter().find(|s| s.method == MethodId::Rs).unwrap();
        // The RS sketch set was loaded, not rebuilt.
        assert_eq!(rs.artifact_builds, 1);
        let warmed = second.run_batch(&reqs);
        for (a, b) in fresh.iter().zip(&warmed) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(a.seeds, b.seeds);
            assert_eq!(a.exact_score.to_bits(), b.exact_score.to_bits());
        }

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn warm_from_dir_reports_each_skip_with_a_typed_reason() {
        let dir = std::env::temp_dir().join(format!(
            "vom-service-skips-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();

        let saver = service();
        let req = ServiceRequest::new(
            "toy",
            MethodId::Rs,
            1,
            Query::new(1, ScoringFunction::Cumulative, 0),
        );
        let good = saver.save_index(&req, &dir).unwrap();

        // A corrupt copy of the good snapshot: flip one payload byte so
        // the header parses but the payload digest fails.
        let mut bytes = std::fs::read(&good).unwrap();
        let at = bytes.len() - 1;
        bytes[at] ^= 0x01;
        std::fs::write(dir.join("corrupt.vpi"), &bytes).unwrap();
        // A snapshot whose graph was never registered here.
        let foreign = VomService::new();
        let g = Arc::new(graph_from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap());
        let b = OpinionMatrix::from_rows(vec![vec![0.2, 0.4, 0.6]]).unwrap();
        foreign
            .register(
                "elsewhere",
                Arc::new(Instance::shared(g, b, vec![0.5, 0.5, 0.5]).unwrap()),
            )
            .unwrap();
        let freq = ServiceRequest::new(
            "elsewhere",
            MethodId::Dm,
            1,
            Query::new(1, ScoringFunction::Cumulative, 0),
        );
        foreign.save_index(&freq, &dir).unwrap();

        let fresh = service();
        let summary = fresh.warm_from_dir(&dir).unwrap();
        assert_eq!(summary.loaded, 1, "only the good snapshot serves");
        assert_eq!(fresh.index_count(), 1);
        assert_eq!(summary.skipped.len(), 2);
        let corrupt = summary
            .skipped
            .iter()
            .find(|s| s.path.ends_with("corrupt.vpi"))
            .expect("corrupt file reported");
        assert!(matches!(
            corrupt.reason,
            SkipReason::Unreadable(PersistError::DigestMismatch { .. })
        ));
        let unmatched = summary
            .skipped
            .iter()
            .find(|s| !s.path.ends_with("corrupt.vpi"))
            .expect("foreign file reported");
        assert!(matches!(
            unmatched.reason,
            SkipReason::NoMatchingGraph { .. }
        ));
        // Reasons render readably for operator logs.
        assert!(corrupt.reason.to_string().contains("unreadable snapshot"));

        // The served index answers identically to a fresh build.
        let warmed = fresh.run(&req).unwrap();
        let rebuilt = saver.run(&req).unwrap();
        assert_eq!(warmed.seeds, rebuilt.seeds);
        assert_eq!(warmed.exact_score.to_bits(), rebuilt.exact_score.to_bits());

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn load_index_fails_closed_on_wrong_graph_and_unknown_name() {
        let dir = std::env::temp_dir().join(format!(
            "vom-service-closed-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::create_dir_all(&dir).unwrap();

        let service = service();
        let req = ServiceRequest::new(
            "toy",
            MethodId::Rw,
            1,
            Query::new(1, ScoringFunction::Cumulative, 0),
        );
        let path = service.save_index(&req, &dir).unwrap();

        // Unknown graph name.
        assert!(matches!(
            service.load_index("nope", &path),
            Err(ServiceError::UnknownGraph { .. })
        ));

        // A different registered instance: the graph digest must reject
        // the snapshot.
        let g = Arc::new(graph_from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap());
        let b = OpinionMatrix::from_rows(vec![
            vec![0.10, 0.20, 0.30, 0.40],
            vec![0.40, 0.30, 0.20, 0.10],
        ])
        .unwrap();
        let other = Arc::new(Instance::shared(g, b, vec![0.1, 0.1, 0.1, 0.1]).unwrap());
        service.register("other", other).unwrap();
        assert!(matches!(
            service.load_index("other", &path),
            Err(ServiceError::Persist(PersistError::DigestMismatch {
                what: "graph",
                ..
            }))
        ));

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn index_stats_reports_cached_indexes_with_their_keys() {
        let service = service();
        assert!(service.index_stats().is_empty());
        let req = ServiceRequest::new(
            "toy",
            MethodId::Rs,
            2,
            Query::new(3, ScoringFunction::Cumulative, 1),
        );
        service.run(&req).unwrap();
        let stats = service.index_stats();
        assert_eq!(stats.len(), 1);
        let s = &stats[0];
        assert_eq!(s.graph, "toy");
        assert_eq!(s.method, MethodId::Rs);
        assert_eq!(s.target, 1);
        assert_eq!(s.horizon, 2);
        assert_eq!(s.class, RuleClass::Cumulative);
        assert_eq!(s.budget, 4); // k = 3 bucketed up to 4
        assert!(s.heap_bytes > 0);
        assert_eq!(s.artifact_builds, 1);
    }

    #[test]
    fn prepared_budget_buckets_are_query_only() {
        assert_eq!(prepared_budget(1, 100), 1);
        assert_eq!(prepared_budget(3, 100), 4);
        assert_eq!(prepared_budget(4, 100), 4);
        assert_eq!(prepared_budget(90, 100), 100); // capped at n
        assert_eq!(prepared_budget(7, 7), 7);
    }
}
