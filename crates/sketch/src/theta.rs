//! Sketch-count (θ) selection.

/// `ln C(n, k)` — log binomial coefficient, computed exactly as a sum of
/// logs (`k` is a seed budget, so this is cheap).
pub fn ln_choose(n: usize, k: usize) -> f64 {
    assert!(k <= n, "k must not exceed n");
    let k = k.min(n - k);
    let mut acc = 0.0;
    for i in 0..k {
        acc += ((n - i) as f64).ln() - ((i + 1) as f64).ln();
    }
    acc
}

/// Theorem 13's sketch count for the cumulative score:
///
/// ```text
/// θ ≥ (2n / (OPT·ε²)) · [ (1−1/e)·√ln(2n^l)
///                         + √((1−1/e)·(ln(2n^l) + ln C(n,k))) ]²
/// ```
///
/// guaranteeing a `(1 − 1/e − ε)`-approximation with probability
/// `≥ 1 − n^{−l}`. `opt_lower` is a lower bound on `OPT`
/// (see [`crate::opt_bound`]); a smaller bound only makes θ larger,
/// preserving the guarantee.
pub fn theta_cumulative(n: usize, k: usize, epsilon: f64, l: f64, opt_lower: f64) -> usize {
    assert!(epsilon > 0.0, "epsilon must be positive");
    assert!(opt_lower > 0.0, "opt_lower must be positive");
    let n_f = n as f64;
    let one_minus_inv_e = 1.0 - std::f64::consts::E.powi(-1);
    let ln_2nl = l * n_f.ln() + 2.0f64.ln();
    let term =
        one_minus_inv_e * ln_2nl.sqrt() + (one_minus_inv_e * (ln_2nl + ln_choose(n, k))).sqrt();
    let theta = 2.0 * n_f / (opt_lower * epsilon * epsilon) * term * term;
    theta.ceil() as usize
}

/// Heuristic θ for the plurality variants and Copeland (§VI-E): double θ
/// until the estimated score stabilizes.
///
/// `eval(θ)` must return the estimated score obtained with `θ` sketches
/// (typically: build a sketch set, run the greedy selection, return the
/// score of the selected seeds). Doubling stops once the relative change
/// stays below `rel_tol` for `patience` consecutive doublings, or
/// `theta_max` is reached. Returns the smallest converged θ — the paper
/// picks the smaller of the admissible values (Figure 3) and reuses it
/// across `k` and `t`, which is exactly how the benches use this.
pub fn converge_theta<F>(
    mut eval: F,
    theta0: usize,
    theta_max: usize,
    rel_tol: f64,
    patience: usize,
) -> usize
where
    F: FnMut(usize) -> f64,
{
    assert!(theta0 > 0, "theta0 must be positive");
    assert!(patience > 0, "patience must be positive");
    let mut theta = theta0;
    let mut prev = eval(theta);
    let mut stable = 0;
    let mut converged_at = theta;
    while theta < theta_max {
        let next_theta = (theta * 2).min(theta_max);
        let cur = eval(next_theta);
        let denom = prev.abs().max(1.0);
        if ((cur - prev) / denom).abs() < rel_tol {
            if stable == 0 {
                converged_at = theta;
            }
            stable += 1;
            if stable >= patience {
                return converged_at;
            }
        } else {
            stable = 0;
        }
        prev = cur;
        theta = next_theta;
    }
    theta
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_choose_small_cases() {
        assert!((ln_choose(5, 2) - 10.0f64.ln()).abs() < 1e-12);
        assert!((ln_choose(10, 0) - 0.0).abs() < 1e-12);
        assert!((ln_choose(10, 10) - 0.0).abs() < 1e-12);
        // Symmetry.
        assert!((ln_choose(100, 3) - ln_choose(100, 97)).abs() < 1e-9);
    }

    #[test]
    fn theta_decreases_with_opt_and_epsilon() {
        let a = theta_cumulative(1000, 10, 0.1, 1.0, 10.0);
        let b = theta_cumulative(1000, 10, 0.1, 1.0, 100.0);
        assert!(b < a, "larger OPT bound needs fewer sketches");
        let c = theta_cumulative(1000, 10, 0.2, 1.0, 10.0);
        assert!(c < a, "looser epsilon needs fewer sketches");
    }

    #[test]
    fn theta_scales_with_n() {
        let small = theta_cumulative(1000, 10, 0.1, 1.0, 100.0);
        let large = theta_cumulative(10_000, 10, 0.1, 1.0, 100.0);
        assert!(large > small);
    }

    #[test]
    fn converge_theta_stops_on_stable_scores() {
        // Score saturates at theta >= 80.
        let theta = converge_theta(
            |t| if t >= 80 { 100.0 } else { t as f64 },
            10,
            10_000,
            0.01,
            2,
        );
        assert!(theta >= 80, "converged too early: {theta}");
        assert!(theta < 10_000, "should not need the cap");
    }

    #[test]
    fn converge_theta_respects_cap() {
        // Never converges: hits theta_max.
        let mut x = 0.0;
        let theta = converge_theta(
            |_| {
                x += 100.0;
                x
            },
            16,
            256,
            0.001,
            2,
        );
        assert_eq!(theta, 256);
    }
}
