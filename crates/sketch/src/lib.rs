#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # vom-sketch
//!
//! Sketch-based opinion and score estimation (§VI of the paper).
//!
//! Instead of `λ_v` walks from *every* node (the RW method), a sketch set
//! holds `θ` reverse walks from **uniformly sampled** start nodes.
//! Averaging end-node initial opinions over the sketch set estimates the
//! voting scores directly:
//!
//! * cumulative — `F̂ = (n/θ) Σ_j b̂_{qv_j}[S]` (Eq. 35), with the
//!   Theorem 13 sample-complexity bound and an IMM-style statistical
//!   lower-bound test for `OPT` ([`opt_bound`]);
//! * positional-p-approval — Eq. 42 ([`SketchSet::estimated_positional`]);
//! * Copeland — Eq. 47 via the sampled majority relation `≻_M̂`
//!   ([`SketchSet::estimated_copeland`]);
//! * heuristic θ search for the non-submodular scores (§VI-E,
//!   [`theta::converge_theta`]).
//!
//! Sketches reuse the walk arena and truncation machinery of `vom-walks`;
//! like the paper's, they are plain walks — "simpler and less memory
//! consuming" than the RR-set trees of classic IM.
//!
//! # Example
//!
//! ```
//! use vom_graph::builder::graph_from_edges;
//! use vom_sketch::SketchSet;
//!
//! let g = graph_from_edges(4, &[(0, 2, 1.0), (1, 2, 1.0), (2, 3, 1.0)])?;
//! let mut sk = SketchSet::generate(
//!     &g,
//!     &[0.0, 0.0, 0.5, 0.5],     // stubbornness
//!     &[0.40, 0.80, 0.60, 0.90], // initial opinions about the target
//!     1,                          // horizon t
//!     8192,                       // θ sketches
//!     3,                          // RNG seed
//! );
//! assert_eq!(sk.theta(), 8192);
//! // Eq. 35 estimate of the seedless cumulative score (exact: 2.55).
//! assert!((sk.estimated_cumulative() - 2.55).abs() < 0.1);
//! # Ok::<(), vom_graph::GraphError>(())
//! ```

pub mod opt_bound;
pub mod sketch;
pub mod theta;

pub use sketch::SketchSet;
pub use theta::{converge_theta, theta_cumulative};
