//! The sketch set: θ walks from uniformly sampled start nodes.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use std::sync::Arc;
use vom_diffusion::OpinionMatrix;
use vom_graph::{Candidate, Node, SocialGraph};
use vom_voting::rank::beta_with_target;
use vom_voting::ScoringFunction;
use vom_walks::estimator::{DeltaScratch, PairDelta};
use vom_walks::{Truncation, WalkArena, WalkGenerator};

/// θ reverse random walks from uniformly sampled starts, with incremental
/// seed truncation (Algorithm 5 state).
///
/// Because start nodes are sampled with replacement, a node can head
/// several sketches; per the paper's §VI-B (footnote 6) all walks sharing
/// a start are **pooled** into one estimate `b̂_qv[S]`, and each of the θ
/// samples contributes through its start's pooled estimate. Pooling is
/// what makes the rank-based estimates (Eqs. 42/47) consistent — a
/// single-walk estimate of a rank indicator is biased.
/// Cloning shares the immutable walk arena (`Arc`) and copies only the
/// `O(θ + n)` truncation/pooling state, so prepared engines can hand out
/// a fresh sketch per query cheaply.
#[derive(Debug)]
pub struct SketchSet {
    arena: Arc<WalkArena>,
    trunc: Truncation,
    b0: Vec<f64>,
    n: usize,
    /// Per start node: sum of current end values over its sketches.
    start_sum: Vec<f64>,
    /// Per start node: number of sketches started there.
    start_count: Vec<u32>,
}

/// Manual impl so `clone_from` reuses the target's allocations: a query
/// session that resets its working sketch from the prepared pristine
/// copy re-fills the existing `O(θ + n)` buffers instead of allocating
/// fresh ones per query.
impl Clone for SketchSet {
    fn clone(&self) -> Self {
        SketchSet {
            arena: Arc::clone(&self.arena),
            trunc: self.trunc.clone(),
            b0: self.b0.clone(),
            n: self.n,
            start_sum: self.start_sum.clone(),
            start_count: self.start_count.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.arena = Arc::clone(&source.arena);
        self.trunc.clone_from(&source.trunc);
        self.b0.clone_from(&source.b0);
        self.n = source.n;
        self.start_sum.clone_from(&source.start_sum);
        self.start_count.clone_from(&source.start_count);
    }
}

impl SketchSet {
    /// Samples `theta` start nodes uniformly at random (with replacement,
    /// as in Algorithm 5) and generates one seedless `t`-step reverse walk
    /// from each.
    pub fn generate(
        graph: &SocialGraph,
        stubbornness: &[f64],
        b0_target: &[f64],
        t: usize,
        theta: usize,
        seed: u64,
    ) -> Self {
        let n = graph.num_nodes();
        let mut rng = SmallRng::seed_from_u64(seed);
        let starts: Vec<Node> = (0..theta).map(|_| rng.gen_range(0..n) as Node).collect();
        let gen = WalkGenerator::new(graph, stubbornness, t);
        let arena = gen.generate_for_starts(&starts, seed.wrapping_add(1));
        let trunc = Truncation::new(&arena, n);
        // End values are independent per sketch, so they run on the
        // pool; the pooled accumulation folds sequentially in sketch
        // order, keeping the float sums schedule-independent (the
        // determinism contract — see `vendor/rayon`'s crate docs).
        let end_values: Vec<f64> = (0..arena.num_walks())
            .into_par_iter()
            .map(|j| trunc.end_value(&arena, b0_target, j))
            .collect();
        let mut start_sum = vec![0.0f64; n];
        let mut start_count = vec![0u32; n];
        for (j, &end) in end_values.iter().enumerate() {
            let v = arena.start(j) as usize;
            start_sum[v] += end;
            start_count[v] += 1;
        }
        SketchSet {
            arena: Arc::new(arena),
            trunc,
            b0: b0_target.to_vec(),
            n,
            start_sum,
            start_count,
        }
    }

    /// Reassembles a *pristine* (seedless) sketch set from persisted
    /// parts: the shared walk arena, its truncation state, and the pooled
    /// end-value arrays (snapshot load). Shapes are validated against the
    /// arena; the pooled values themselves are whatever the generation
    /// produced and are restored bit-for-bit.
    pub fn from_parts(
        arena: Arc<WalkArena>,
        trunc: Truncation,
        b0: Vec<f64>,
        n: usize,
        start_sum: Vec<f64>,
        start_count: Vec<u32>,
    ) -> Result<Self, &'static str> {
        if b0.len() != n || start_sum.len() != n || start_count.len() != n {
            return Err("per-node sketch arrays must have length n");
        }
        if !trunc.seeds().is_empty() {
            return Err("a persisted sketch set must be pristine");
        }
        if arena.walks().any(|w| w.iter().any(|&v| (v as usize) >= n)) {
            return Err("sketch walk node out of range");
        }
        Ok(SketchSet {
            arena,
            trunc,
            b0,
            n,
            start_sum,
            start_count,
        })
    }

    /// The persisted pieces: the shared arena, the truncation, and the
    /// pooled arrays `(b0, start_sum, start_count)` — exactly the
    /// buffers a snapshot writer serializes verbatim. (Per-sketch gains
    /// are not stored: `1 − end_value` is derived from the truncation.)
    pub fn parts(&self) -> (&Arc<WalkArena>, &Truncation, &[f64], &[f64], &[u32]) {
        (
            &self.arena,
            &self.trunc,
            &self.b0,
            &self.start_sum,
            &self.start_count,
        )
    }

    /// Number of sketches `θ`.
    pub fn theta(&self) -> usize {
        self.arena.num_walks()
    }

    /// Number of users `n`.
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Seeds applied so far.
    pub fn seeds(&self) -> &[Node] {
        self.trunc.seeds()
    }

    /// Whether `v` is a seed.
    pub fn is_seed(&self, v: Node) -> bool {
        self.trunc.is_seed(v)
    }

    /// Start node of sketch `j`.
    pub fn walk_start(&self, j: usize) -> Node {
        self.arena.start(j)
    }

    /// Current end value of sketch `j` alone (before pooling).
    pub fn walk_value(&self, j: usize) -> f64 {
        self.trunc.end_value(&self.arena, &self.b0, j)
    }

    /// How many sketches start at `v`.
    pub fn start_count(&self, v: Node) -> u32 {
        self.start_count[v as usize]
    }

    /// Pooled opinion estimate `b̂_qv^{(t)}[S]` across all sketches
    /// starting at `v` (1 for seeds; `None` if `v` was never sampled).
    pub fn pooled_estimate(&self, v: Node) -> Option<f64> {
        if self.trunc.is_seed(v) {
            return Some(1.0);
        }
        let c = self.start_count[v as usize];
        if c == 0 {
            None
        } else {
            Some(self.start_sum[v as usize] / c as f64)
        }
    }

    /// The weight a sampled user carries in score estimates: `v` was drawn
    /// `count_v` times out of θ, each draw standing for `n/θ` users.
    pub fn user_weight(&self, v: Node) -> f64 {
        self.start_count[v as usize] as f64 * self.n as f64 / self.theta() as f64
    }

    /// Adds `u` to the seed set, truncating affected sketches and
    /// updating the pooled sums. Returns the start nodes whose pooled
    /// estimates changed (deduplicated).
    pub fn add_seed(&mut self, u: Node) -> Vec<Node> {
        let mut touched = Vec::new();
        self.add_seed_into(u, &mut touched);
        touched
    }

    /// [`SketchSet::add_seed`] writing the changed-users delta report
    /// into a caller-owned buffer (cleared first; sorted ascending,
    /// deduplicated) so greedy loops reuse one allocation per seed.
    pub fn add_seed_into(&mut self, u: Node, touched: &mut Vec<Node>) {
        touched.clear();
        let arena = &self.arena;
        let b0 = &self.b0;
        let start_sum = &mut self.start_sum;
        self.trunc.add_seed(arena, u, |walk, old_end| {
            let start = arena.start(walk);
            start_sum[start as usize] += 1.0 - b0[old_end as usize];
            touched.push(start);
        });
        touched.sort_unstable();
        touched.dedup();
    }

    /// Estimated cumulative score `(n/θ) Σ_j b̂_{qv_j}[S]` (Eq. 35).
    pub fn estimated_cumulative(&self) -> f64 {
        // Σ_j over samples of the pooled estimate equals Σ_v sum_v, so the
        // per-walk sum is identical and cheaper.
        let sum: f64 = self.start_sum.iter().sum();
        sum * self.n as f64 / self.theta() as f64
    }

    /// Estimated positional-p-approval score (Eq. 42): each sample
    /// contributes `ω[β(b̂_{qv_j})]·1[β ≤ p]`, where `β` ranks the pooled
    /// target estimate against the *exact* opinions of the other
    /// candidates for the start user. `score` must be a plurality
    /// variant; `non_target` holds exact horizon-`t` opinions of all
    /// candidates (the target row is ignored).
    pub fn estimated_positional(
        &self,
        score: &ScoringFunction,
        non_target: &OpinionMatrix,
        q: Candidate,
    ) -> f64 {
        let p = score
            .approval_depth()
            .expect("estimated_positional requires a plurality-variant score");
        let mut total = 0.0;
        for v in 0..self.n as Node {
            let Some(est) = self.pooled_estimate(v) else {
                continue;
            };
            let c = self.start_count[v as usize];
            if c == 0 {
                continue;
            }
            total += c as f64 * positional_contribution(score, non_target, q, v, est, p);
        }
        total * self.n as f64 / self.theta() as f64
    }

    /// Estimated Copeland score (Eq. 47): `c_q ≻_M̂ c_x` iff among the θ
    /// samples more hold `b̂_qv > b_xv` than the opposite (samples vote
    /// with their multiplicity).
    pub fn estimated_copeland(&self, non_target: &OpinionMatrix, q: Candidate) -> f64 {
        let r = non_target.num_candidates();
        let mut wins = 0usize;
        for x in 0..r {
            if x == q {
                continue;
            }
            let mut above = 0i64;
            for v in 0..self.n as Node {
                let c = self.start_count[v as usize] as i64;
                if c == 0 {
                    continue;
                }
                let est = self.pooled_estimate(v).expect("count > 0");
                let bx = non_target.get(x, v);
                if est > bx {
                    above += c;
                } else if est < bx {
                    above -= c;
                }
            }
            if above > 0 {
                wins += 1;
            }
        }
        wins as f64
    }

    /// For the greedy selectors: the marginal gain in the estimated
    /// cumulative score for every candidate seed, from one scan over the
    /// live prefixes.
    pub fn cumulative_gains(&self) -> Vec<f64> {
        let scale = self.n as f64 / self.theta() as f64;
        let mut gains = vec![0.0f64; self.n];
        self.scan_prefixes(|w, _, gain| gains[w as usize] += gain * scale);
        gains
    }

    /// Restricted cumulative estimate over the users in `mask`
    /// (`(n/θ) Σ_{j: mask[v_j]} b̂`), for the sandwich lower bound.
    pub fn estimated_cumulative_masked(&self, mask: &[bool]) -> f64 {
        let sum: f64 = (0..self.n)
            .filter(|&v| mask[v])
            .map(|v| self.start_sum[v])
            .sum();
        sum * self.n as f64 / self.theta() as f64
    }

    /// [`SketchSet::cumulative_gains`] restricted to sketches whose start
    /// node is in `mask`.
    pub fn cumulative_gains_masked(&self, mask: &[bool]) -> Vec<f64> {
        let scale = self.n as f64 / self.theta() as f64;
        let mut gains = vec![0.0f64; self.n];
        self.scan_prefixes(|w, start, gain| {
            if mask[start as usize] {
                gains[w as usize] += gain * scale;
            }
        });
        gains
    }

    /// Per-(seed, user) **pooled estimate** deltas, sorted by seed: adding
    /// `seed` raises user `user`'s pooled estimate by `delta`. Mirrors
    /// [`vom_walks::OpinionEstimator::pair_deltas`] so the rank-based
    /// greedy can treat RW and RS estimates uniformly.
    pub fn pair_deltas(&self) -> Vec<PairDelta> {
        let mut deltas = Vec::new();
        self.scan_prefixes(|w, start, gain| {
            deltas.push(PairDelta {
                seed: w,
                user: start,
                delta: gain / self.start_count[start as usize] as f64,
            });
        });
        deltas.sort_unstable_by_key(|d| (d.seed, d.user));
        deltas.dedup_by(|b, a| {
            if a.seed == b.seed && a.user == b.user {
                a.delta += b.delta;
                true
            } else {
                false
            }
        });
        deltas
    }

    /// Visits `(sketch, start, 1 − end_value)` for every live sketch
    /// whose live prefix contains candidate `w`, in ascending sketch
    /// order — `w`'s occurrence list instead of a pass over all θ
    /// prefixes. Visit set and order match [`Self::scan_prefixes`]
    /// exactly, so sums taken here are bit-identical to the scan-based
    /// gains.
    #[inline]
    fn visit_candidate_walks<F: FnMut(usize, Node, f64)>(&self, w: Node, mut visit: F) {
        debug_assert!(!self.trunc.is_seed(w));
        let (walks, positions) = self.trunc.first_occurrences(w);
        for (&walk, &pos) in walks.iter().zip(positions) {
            let walk = walk as usize;
            // Derived, not cached: a sketch's gain is `1 − end_value` at
            // all times (end_value pins to 1 once the end is a seed), so
            // no θ-sized gain array is kept. Same value, same check
            // order as the historical cached-gain path — bit-identical.
            let gain = 1.0 - self.trunc.end_value(&self.arena, &self.b0, walk);
            if gain <= 0.0 {
                continue;
            }
            if pos as usize > self.trunc.end_pos(walk) {
                continue;
            }
            visit(walk, self.arena.start(walk), gain);
        }
    }

    /// The marginal gain of candidate seed `w` in the estimated
    /// cumulative score — bit-identical to `cumulative_gains()[w]`,
    /// computed from `w`'s occurrence list alone. `0.0` for seeds.
    pub fn cumulative_gain_of(&self, w: Node) -> f64 {
        if self.trunc.is_seed(w) {
            return 0.0;
        }
        let scale = self.n as f64 / self.theta() as f64;
        let mut gain = 0.0;
        self.visit_candidate_walks(w, |_, _, g| gain += g * scale);
        gain
    }

    /// [`SketchSet::cumulative_gain_of`] restricted to sketches whose
    /// start node is in `mask`.
    pub fn cumulative_gain_of_masked(&self, w: Node, mask: &[bool]) -> f64 {
        if self.trunc.is_seed(w) {
            return 0.0;
        }
        let scale = self.n as f64 / self.theta() as f64;
        let mut gain = 0.0;
        self.visit_candidate_walks(w, |_, start, g| {
            if mask[start as usize] {
                gain += g * scale;
            }
        });
        gain
    }

    /// Visits the merged per-user **pooled-estimate** deltas of one
    /// candidate seed `w` — `(user, Δb̂_qv)` pairs in ascending user
    /// order, the `seed == w` run of [`SketchSet::pair_deltas`] —
    /// without scanning any other candidate's sketches. Sketch starts
    /// are sampled with replacement (not grouped), so the merge goes
    /// through the caller's reusable [`DeltaScratch`].
    pub fn for_candidate_deltas<F: FnMut(Node, f64)>(
        &self,
        w: Node,
        scratch: &mut DeltaScratch,
        mut visit: F,
    ) {
        if self.trunc.is_seed(w) {
            return;
        }
        scratch.begin(self.n);
        self.visit_candidate_walks(w, |_, start, g| {
            scratch.add(start, g / self.start_count[start as usize] as f64);
        });
        scratch.drain_sorted(&mut visit);
    }

    /// [`SketchSet::for_candidate_deltas`] that *also* accumulates the
    /// candidate's estimated-cumulative gain in occurrence order — one
    /// pass serves both the rank gain and its cumulative tie-break
    /// (bit-identical to [`SketchSet::cumulative_gain_of`]).
    pub fn for_candidate_deltas_cum<F: FnMut(Node, f64)>(
        &self,
        w: Node,
        scratch: &mut DeltaScratch,
        mut visit: F,
    ) -> f64 {
        if self.trunc.is_seed(w) {
            return 0.0;
        }
        let scale = self.n as f64 / self.theta() as f64;
        let mut cum = 0.0;
        scratch.begin(self.n);
        self.visit_candidate_walks(w, |_, start, g| {
            cum += g * scale;
            scratch.add(start, g / self.start_count[start as usize] as f64);
        });
        scratch.drain_sorted(&mut visit);
        cum
    }

    /// Visits `(candidate seed w, walk start, 1 − end_value)` for the
    /// first occurrence of every non-seed node in every live prefix.
    fn scan_prefixes<F: FnMut(Node, Node, f64)>(&self, mut visit: F) {
        for j in 0..self.theta() {
            let gain = 1.0 - self.walk_value(j);
            if gain <= 0.0 {
                continue;
            }
            let prefix = self.trunc.prefix(&self.arena, j);
            let start = self.arena.start(j);
            for (pos, &w) in prefix.iter().enumerate() {
                if prefix[..pos].contains(&w) || self.trunc.is_seed(w) {
                    continue;
                }
                visit(w, start, gain);
            }
        }
    }

    /// Exact owned heap footprint (Figure 17's memory comparison and the
    /// scale-stress workload): `Vec` **capacities**, the shared arena's
    /// buffers, and the truncation state — post-build slack included.
    pub fn heap_bytes(&self) -> usize {
        self.arena.heap_bytes()
            + self.trunc.heap_bytes()
            + self.b0.capacity() * std::mem::size_of::<f64>()
            + self.start_sum.capacity() * std::mem::size_of::<f64>()
            + self.start_count.capacity() * std::mem::size_of::<u32>()
    }
}

/// One user's contribution to the positional estimate (Eq. 42 summand).
pub(crate) fn positional_contribution(
    score: &ScoringFunction,
    non_target: &OpinionMatrix,
    q: Candidate,
    user: Node,
    target_value: f64,
    p: usize,
) -> f64 {
    let rank = beta_with_target(non_target, q, user, target_value);
    if rank <= p {
        score.position_weight(rank)
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vom_graph::builder::graph_from_edges;

    fn running_example() -> (SocialGraph, Vec<f64>, Vec<f64>, OpinionMatrix) {
        let g = graph_from_edges(4, &[(0, 2, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap();
        let b0 = vec![0.40, 0.80, 0.60, 0.90];
        let d = vec![0.0, 0.0, 0.5, 0.5];
        // Exact opinions at t = 1; competitor row from Table I.
        let exact = OpinionMatrix::from_rows(vec![
            vec![0.40, 0.80, 0.60, 0.75],
            vec![0.35, 0.75, 0.78, 0.90],
        ])
        .unwrap();
        (g, b0, d, exact)
    }

    #[test]
    fn generation_is_deterministic() {
        let (g, b0, d, _) = running_example();
        let a = SketchSet::generate(&g, &d, &b0, 2, 500, 7);
        let b = SketchSet::generate(&g, &d, &b0, 2, 500, 7);
        assert_eq!(a.theta(), 500);
        for j in 0..500 {
            assert_eq!(a.walk_start(j), b.walk_start(j));
            assert_eq!(a.walk_value(j), b.walk_value(j));
        }
    }

    #[test]
    fn start_counts_sum_to_theta() {
        let (g, b0, d, _) = running_example();
        let s = SketchSet::generate(&g, &d, &b0, 2, 1000, 41);
        let total: u32 = (0..4).map(|v| s.start_count(v)).sum();
        assert_eq!(total as usize, s.theta());
        let weight_total: f64 = (0..4).map(|v| s.user_weight(v)).sum();
        assert!((weight_total - 4.0).abs() < 1e-9, "weights sum to n");
    }

    #[test]
    fn cumulative_estimate_converges() {
        let (g, b0, d, _) = running_example();
        let s = SketchSet::generate(&g, &d, &b0, 1, 200_000, 11);
        // Exact cumulative at t=1, no seeds: 2.55.
        let est = s.estimated_cumulative();
        assert!((est - 2.55).abs() < 0.05, "estimate {est}");
    }

    #[test]
    fn seeded_cumulative_estimate_converges() {
        let (g, b0, d, _) = running_example();
        let mut s = SketchSet::generate(&g, &d, &b0, 1, 200_000, 13);
        s.add_seed(2);
        // Table I row {3}: cumulative 3.15.
        let est = s.estimated_cumulative();
        assert!((est - 3.15).abs() < 0.05, "estimate {est}");
        assert_eq!(s.seeds(), &[2]);
        assert!(s.is_seed(2));
    }

    #[test]
    fn pooled_estimates_converge_to_exact_opinions() {
        let (g, b0, d, exact) = running_example();
        let s = SketchSet::generate(&g, &d, &b0, 1, 100_000, 43);
        for v in 0..4 {
            let est = s.pooled_estimate(v).unwrap();
            let want = exact.get(0, v);
            assert!((est - want).abs() < 0.02, "node {v}: {est} vs {want}");
        }
    }

    #[test]
    fn cumulative_gains_match_realized_gains() {
        let (g, b0, d, _) = running_example();
        let s = SketchSet::generate(&g, &d, &b0, 2, 5_000, 17);
        let gains = s.cumulative_gains();
        let base = s.estimated_cumulative();
        for w in 0..4u32 {
            let mut clone = s.clone();
            clone.add_seed(w);
            let realized = clone.estimated_cumulative() - base;
            assert!(
                (gains[w as usize] - realized).abs() < 1e-9,
                "seed {w}: {} vs {realized}",
                gains[w as usize]
            );
        }
    }

    #[test]
    fn plurality_estimate_converges() {
        let (g, b0, d, exact) = running_example();
        let s = SketchSet::generate(&g, &d, &b0, 1, 200_000, 19);
        // Exact plurality at t=1, no seeds: 2 (users 0 and 1).
        let est = s.estimated_positional(&ScoringFunction::Plurality, &exact, 0);
        assert!((est - 2.0).abs() < 0.1, "estimate {est}");
    }

    #[test]
    fn seeded_plurality_estimate_converges() {
        let (g, b0, d, exact) = running_example();
        let mut s = SketchSet::generate(&g, &d, &b0, 1, 200_000, 23);
        s.add_seed(2);
        // Table I row {3}: plurality 4.
        let est = s.estimated_positional(&ScoringFunction::Plurality, &exact, 0);
        assert!((est - 4.0).abs() < 0.1, "estimate {est}");
    }

    #[test]
    fn copeland_estimate_matches_exact_on_clear_majorities() {
        // Note: the *seedless* running example is a 2-vs-2 knife-edge tie
        // (µ[S] = 0), which the paper's Theorem 12 explicitly assumes
        // away — sampling cannot resolve it. We test the clear cases.
        let (g, b0, d, exact) = running_example();
        let mut s = SketchSet::generate(&g, &d, &b0, 1, 50_000, 29);
        s.add_seed(2);
        // Seed {3}: all 4 users above -> 1.
        assert_eq!(s.estimated_copeland(&exact, 0), 1.0);

        // A clearly losing target: everyone far below the competitor.
        let low_b0 = vec![0.05; 4];
        let s2 = SketchSet::generate(&g, &d, &low_b0, 1, 20_000, 59);
        assert_eq!(s2.estimated_copeland(&exact, 0), 0.0);
    }

    #[test]
    fn pair_deltas_predict_pooled_estimate_changes() {
        let (g, b0, d, _) = running_example();
        let s = SketchSet::generate(&g, &d, &b0, 2, 2_000, 31);
        let deltas = s.pair_deltas();
        for pair in deltas.windows(2) {
            assert!((pair[0].seed, pair[0].user) < (pair[1].seed, pair[1].user));
        }
        // Realized check for seed 2.
        let before: Vec<_> = (0..4).map(|v| s.pooled_estimate(v)).collect();
        let mut clone = s.clone();
        clone.add_seed(2);
        let mut predicted: Vec<f64> = before.iter().map(|e| e.unwrap_or(0.0)).collect();
        for pd in deltas.iter().filter(|d| d.seed == 2) {
            predicted[pd.user as usize] += pd.delta;
        }
        for v in 0..4u32 {
            if v == 2 || before[v as usize].is_none() {
                continue; // the seed itself pins to 1
            }
            let realized = clone.pooled_estimate(v).unwrap();
            assert!(
                (predicted[v as usize] - realized).abs() < 1e-9,
                "node {v}: predicted {} vs {realized}",
                predicted[v as usize]
            );
        }
    }

    #[test]
    fn per_candidate_gain_matches_full_scan() {
        let (g, b0, d, _) = running_example();
        let mut s = SketchSet::generate(&g, &d, &b0, 2, 3_000, 61);
        let mask = [true, true, false, true];
        for step in 0..2 {
            let gains = s.cumulative_gains();
            let masked = s.cumulative_gains_masked(&mask);
            for w in 0..4u32 {
                if s.is_seed(w) {
                    continue;
                }
                assert_eq!(
                    s.cumulative_gain_of(w).to_bits(),
                    gains[w as usize].to_bits(),
                    "step {step} node {w}"
                );
                assert_eq!(
                    s.cumulative_gain_of_masked(w, &mask).to_bits(),
                    masked[w as usize].to_bits(),
                    "step {step} node {w} (masked)"
                );
            }
            s.add_seed(3);
        }
    }

    #[test]
    fn per_candidate_deltas_match_pair_deltas() {
        let (g, b0, d, _) = running_example();
        let mut s = SketchSet::generate(&g, &d, &b0, 3, 2_000, 67);
        s.add_seed(0);
        let all = s.pair_deltas();
        let mut scratch = DeltaScratch::default();
        for w in 0..4u32 {
            if s.is_seed(w) {
                continue;
            }
            let mut got: Vec<(Node, f64)> = Vec::new();
            s.for_candidate_deltas(w, &mut scratch, |user, delta| got.push((user, delta)));
            let want: Vec<(Node, f64)> = all
                .iter()
                .filter(|d| d.seed == w)
                .map(|d| (d.user, d.delta))
                .collect();
            assert_eq!(got.len(), want.len(), "node {w}");
            for (g, w_) in got.iter().zip(&want) {
                assert_eq!(g.0, w_.0, "node {w}");
                assert!((g.1 - w_.1).abs() < 1e-12, "{} vs {}", g.1, w_.1);
            }
            assert!(got.windows(2).all(|p| p[0].0 < p[1].0), "ascending users");
        }
    }

    #[test]
    fn heap_bytes_is_capacity_exact() {
        let (g, b0, d, _) = running_example();
        let s = SketchSet::generate(&g, &d, &b0, 2, 100, 37);
        // The accounting is the sum of its parts — arena, truncation, and
        // the three pooled per-node arrays (all built exact-size).
        let (arena, trunc, b0s, sums, counts) = s.parts();
        assert_eq!(
            s.heap_bytes(),
            arena.heap_bytes()
                + trunc.heap_bytes()
                + (b0s.len() + sums.len()) * std::mem::size_of::<f64>()
                + std::mem::size_of_val(counts)
        );
        // No θ-sized gain cache rides along: the footprint beyond arena +
        // truncation is exactly the 3 per-node arrays (20 bytes/node).
        assert_eq!(
            s.heap_bytes() - arena.heap_bytes() - trunc.heap_bytes(),
            s.num_nodes() * 20
        );
    }
}
