//! Statistical lower bound on `OPT` for the cumulative score.
//!
//! Theorem 13's θ depends on `OPT`, which is unknown. Following the
//! paper's §VI-B (which adopts Algorithm 2 of the IMM paper), we run a
//! hypothesis test for exponentially decreasing guesses
//! `x ∈ {n/2, n/4, …, k}`: build a sketch set sized for `x`, greedily
//! select `k` seeds on it, and accept `x` once the estimated score clears
//! `(1 + ε′)·x`. A rejected guess means `OPT < x` with high probability.

use crate::sketch::SketchSet;
use crate::theta::ln_choose;
use vom_graph::{Node, SocialGraph};

/// Greedy cumulative-score seed selection directly on a sketch set:
/// repeatedly add the node with the largest estimated marginal gain.
/// Returns the seeds in selection order (the sketch set keeps them
/// applied). This is the inner loop of both the OPT test and the RS
/// selector in `vom-core`.
pub fn greedy_cumulative(sketch: &mut SketchSet, k: usize) -> Vec<Node> {
    let mut seeds = Vec::with_capacity(k);
    for _ in 0..k {
        let gains = sketch.cumulative_gains();
        let best = gains
            .iter()
            .enumerate()
            .filter(|(v, _)| !sketch.is_seed(*v as Node))
            // `total_cmp`: total order even for NaN gains (degenerate
            // estimates order deterministically instead of panicking).
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(v, _)| v as Node);
        let Some(u) = best else { break };
        sketch.add_seed(u);
        seeds.push(u);
    }
    seeds
}

/// Parameters for the OPT lower-bound test.
#[derive(Debug, Clone)]
pub struct OptBoundConfig {
    /// Accuracy parameter ε of the final guarantee.
    pub epsilon: f64,
    /// Confidence exponent `l` (failure probability `n^{-l}`).
    pub l: f64,
    /// RNG seed.
    pub seed: u64,
    /// Cap on the per-guess sketch count, to bound the cost of the test
    /// on adversarial inputs.
    pub max_theta: usize,
}

impl Default for OptBoundConfig {
    fn default() -> Self {
        OptBoundConfig {
            epsilon: 0.1,
            l: 1.0,
            seed: 0x0B7B_0D11,
            max_theta: 4_000_000,
        }
    }
}

/// Estimates a lower bound on `OPT = max_{|S|=k} Σ_v b_qv^{(t)}[S]`.
///
/// Always returns at least `k` — `k` fully-stubborn seeds at opinion 1
/// contribute `k` on their own, so `OPT ≥ k` unconditionally.
pub fn opt_lower_bound(
    graph: &SocialGraph,
    stubbornness: &[f64],
    b0_target: &[f64],
    t: usize,
    k: usize,
    cfg: &OptBoundConfig,
) -> f64 {
    let n = graph.num_nodes();
    let k = k.min(n);
    let mut lb = k as f64;
    if n <= 1 {
        return lb;
    }
    let eps_prime = std::f64::consts::SQRT_2 * cfg.epsilon;
    let n_f = n as f64;
    let log_term = ln_choose(n, k) + cfg.l * n_f.ln() + n_f.log2().max(1.0).ln();
    let mut x = n_f / 2.0;
    let mut round = 0u64;
    while x >= lb.max(1.0) {
        let theta = (((2.0 + 2.0 / 3.0 * eps_prime) * n_f * log_term) / (eps_prime * eps_prime * x))
            .ceil() as usize;
        let theta = theta.clamp(1, cfg.max_theta);
        let mut sketch = SketchSet::generate(
            graph,
            stubbornness,
            b0_target,
            t,
            theta,
            cfg.seed.wrapping_add(round),
        );
        greedy_cumulative(&mut sketch, k);
        let est = sketch.estimated_cumulative();
        if est >= (1.0 + eps_prime) * x {
            return (est / (1.0 + eps_prime)).max(lb);
        }
        x /= 2.0;
        round += 1;
    }
    lb = lb.max(b0_target.iter().sum::<f64>());
    lb
}

#[cfg(test)]
mod tests {
    use super::*;
    use vom_graph::builder::graph_from_edges;
    use vom_graph::generators;

    #[test]
    fn greedy_on_sketches_picks_influential_node() {
        // Star hub 0 -> everyone; hub as seed lifts all estimates.
        let edges = generators::star(50);
        let g = graph_from_edges(50, &edges).unwrap();
        let d = vec![0.3; 50];
        let b0 = vec![0.0; 50];
        let mut s = SketchSet::generate(&g, &d, &b0, 5, 20_000, 3);
        let seeds = greedy_cumulative(&mut s, 1);
        assert_eq!(seeds, vec![0], "the hub dominates every other choice");
    }

    #[test]
    fn opt_bound_is_at_least_k_and_at_most_n() {
        let edges = generators::cycle(30);
        let g = graph_from_edges(30, &edges).unwrap();
        let d = vec![0.5; 30];
        let b0 = vec![0.2; 30];
        let lb = opt_lower_bound(&g, &d, &b0, 5, 3, &OptBoundConfig::default());
        assert!(lb >= 3.0, "OPT >= k always; got {lb}");
        // OPT <= n for the cumulative score.
        assert!(lb <= 30.0 + 1e-9, "lower bound cannot exceed n; got {lb}");
    }

    #[test]
    fn opt_bound_detects_high_baseline_scores() {
        // Everybody already at opinion ~0.9: OPT >= 0.9n, and the first
        // guess x = n/2 should be accepted.
        let edges = generators::cycle(40);
        let g = graph_from_edges(40, &edges).unwrap();
        let d = vec![0.5; 40];
        let b0 = vec![0.9; 40];
        let lb = opt_lower_bound(&g, &d, &b0, 3, 2, &OptBoundConfig::default());
        assert!(lb >= 20.0 * 0.9, "expected a strong bound, got {lb}");
    }
}
