//! The [`DynamicsModel`] trait unifying all opinion-diffusion models.

use vom_diffusion::OpinionMatrix;
use vom_graph::{Candidate, Node};

/// An opinion-diffusion model over a fixed multi-candidate configuration
/// (graph, initial opinions, model parameters).
///
/// `opinions_at` produces the opinion snapshot `B^(t)[S]` after `t`
/// steps with the seed set `S` installed for `target` — a *single
/// realization* for stochastic models (`is_stochastic() == true`); use
/// [`crate::montecarlo::expected_opinions`] for expectations. Seeding
/// semantics follow the paper's §II-C: seeds are pinned at maximal
/// support for the target for the entire diffusion and are immune to
/// influence; non-target candidates are untouched.
///
/// Implementations must be deterministic given `(horizon, target, seeds,
/// rng_seed)` so that experiments are reproducible bit-for-bit.
pub trait DynamicsModel: Send + Sync {
    /// Model name for reporting.
    fn name(&self) -> &'static str;

    /// Whether realizations vary with `rng_seed`.
    fn is_stochastic(&self) -> bool;

    /// Number of users `n`.
    fn num_nodes(&self) -> usize;

    /// Number of candidates `r`.
    fn num_candidates(&self) -> usize;

    /// One realization of `B^(t)[S]`.
    fn opinions_at(
        &self,
        horizon: usize,
        target: Candidate,
        seeds: &[Node],
        rng_seed: u64,
    ) -> OpinionMatrix;
}

/// Marks the seed nodes in a dense boolean mask.
pub(crate) fn seed_mask(n: usize, seeds: &[Node]) -> Vec<bool> {
    let mut mask = vec![false; n];
    for &s in seeds {
        mask[s as usize] = true;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_mask_marks_exactly_the_seeds() {
        let mask = seed_mask(5, &[1, 3]);
        assert_eq!(mask, vec![false, true, false, true, false]);
        assert_eq!(seed_mask(3, &[]), vec![false; 3]);
    }
}
