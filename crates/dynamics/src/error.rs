//! Error type for dynamics-model configuration.

use std::fmt;

/// Errors raised when constructing or running a dynamics model.
#[derive(Debug, Clone, PartialEq)]
pub enum DynamicsError {
    /// A vector input has the wrong length for the graph.
    LengthMismatch {
        /// What was being validated.
        what: &'static str,
        /// Supplied length.
        got: usize,
        /// Required length.
        expected: usize,
    },
    /// A model parameter is outside its valid range.
    BadParameter {
        /// Parameter name.
        name: &'static str,
        /// Supplied value.
        value: f64,
        /// Human-readable constraint.
        constraint: &'static str,
    },
    /// The model needs at least one candidate.
    NoCandidates,
    /// The target candidate index is out of range.
    BadTarget {
        /// Supplied target.
        target: usize,
        /// Number of candidates.
        r: usize,
    },
    /// Underlying opinion-matrix validation failed.
    Diffusion(String),
}

impl fmt::Display for DynamicsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DynamicsError::LengthMismatch {
                what,
                got,
                expected,
            } => write!(f, "{what}: length {got}, expected {expected}"),
            DynamicsError::BadParameter {
                name,
                value,
                constraint,
            } => write!(f, "parameter {name} = {value} violates {constraint}"),
            DynamicsError::NoCandidates => write!(f, "at least one candidate is required"),
            DynamicsError::BadTarget { target, r } => {
                write!(f, "target candidate {target} out of range (r = {r})")
            }
            DynamicsError::Diffusion(msg) => write!(f, "diffusion error: {msg}"),
        }
    }
}

impl std::error::Error for DynamicsError {}

impl From<vom_diffusion::DiffusionError> for DynamicsError {
    fn from(e: vom_diffusion::DiffusionError) -> Self {
        DynamicsError::Diffusion(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DynamicsError::BadParameter {
            name: "epsilon",
            value: -0.5,
            constraint: "0 <= epsilon <= 1",
        };
        let s = e.to_string();
        assert!(s.contains("epsilon") && s.contains("-0.5"));
        assert!(DynamicsError::NoCandidates
            .to_string()
            .contains("candidate"));
    }
}
