//! The (weighted, synchronous) **voter model** (Holley–Liggett 1975;
//! §VII of the paper).
//!
//! At every timestamp each non-seed user samples one in-neighbor with
//! probability proportional to the influence weight on the incoming edge
//! (the column-stochastic `W` makes the in-weights of every node a
//! probability distribution already) and adopts that neighbor's
//! *previous* preferred candidate. Users without in-neighbors keep their
//! preference, mirroring the FJ convention for source nodes.
//!
//! This is the natural multi-candidate, influence-weighted voter model
//! on the paper's substrate: in the classic unweighted statement a node
//! copies a uniformly random neighbor; here the copy distribution is the
//! same `W` column the FJ model averages over.

use crate::discrete::{initial_states, states_to_matrix, validate_config, State};
use crate::model::DynamicsModel;
use crate::{mix_seed, Result};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use vom_diffusion::OpinionMatrix;
use vom_graph::{Candidate, Node, SocialGraph};

/// Voter-model configuration over a fixed graph and initial opinions.
#[derive(Debug, Clone)]
pub struct VoterModel {
    graph: Arc<SocialGraph>,
    initial: OpinionMatrix,
    /// Zealots: users permanently committed to a candidate (Moreno et
    /// al. 2020, the paper's reference [55]), independent of the
    /// target's seed set.
    zealots: Vec<(Candidate, Node)>,
}

impl VoterModel {
    /// Builds a voter model; the initial discrete preferences are the
    /// per-user argmax of `initial`.
    pub fn new(graph: Arc<SocialGraph>, initial: OpinionMatrix) -> Result<Self> {
        validate_config(graph.num_nodes(), &initial)?;
        Ok(VoterModel {
            graph,
            initial,
            zealots: Vec::new(),
        })
    }

    /// Commits `nodes` as zealots for `candidate`: they hold that
    /// preference at `t = 0` and never change, whatever their neighbors
    /// do. Zealots model entrenched opposition (or support) the seeding
    /// campaign has to work around; a later seed on the same node takes
    /// precedence (the campaign *bought* the zealot).
    pub fn with_zealots(mut self, candidate: Candidate, nodes: &[Node]) -> Self {
        self.zealots.extend(nodes.iter().map(|&v| (candidate, v)));
        self
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Arc<SocialGraph> {
        &self.graph
    }

    /// Runs the chain and returns the final discrete states (exposed for
    /// tests and the consensus experiments).
    pub fn states_at(
        &self,
        horizon: usize,
        target: Candidate,
        seeds: &[Node],
        rng_seed: u64,
    ) -> Vec<State> {
        let n = self.graph.num_nodes();
        let mut states = initial_states(&self.initial);
        // Zealots first, seeds second: a seed on a zealot node wins.
        let mut pinned = vec![false; n];
        for &(c, v) in &self.zealots {
            states[v as usize] = c as State;
            pinned[v as usize] = true;
        }
        for &s in seeds {
            states[s as usize] = target as State;
            pinned[s as usize] = true;
        }
        let mut next = states.clone();
        for step in 0..horizon {
            let mut rng = SmallRng::seed_from_u64(mix_seed(rng_seed, step as u64));
            for v in 0..n as Node {
                let neighbors = self.graph.in_neighbors(v);
                if neighbors.is_empty() {
                    continue;
                }
                // Inverse-CDF sample over the (already normalized)
                // incoming weights. The draw happens even for pinned
                // nodes so that seeded and seedless realizations of the
                // same rng_seed are *coupled*: every non-seed node copies
                // the same neighbor in both runs, which makes the set of
                // target supporters monotone in the seed set per
                // realization (not just in expectation) and reduces the
                // variance of seeding-gain estimates.
                let weights = self.graph.in_weights(v);
                let mut u: f64 = rng.gen();
                let mut chosen = *neighbors.last().expect("non-empty");
                for (&w, &nb) in weights.iter().zip(neighbors) {
                    if u < w {
                        chosen = nb;
                        break;
                    }
                    u -= w;
                }
                if !pinned[v as usize] {
                    next[v as usize] = states[chosen as usize];
                }
            }
            std::mem::swap(&mut states, &mut next);
            next.copy_from_slice(&states);
        }
        states
    }
}

impl DynamicsModel for VoterModel {
    fn name(&self) -> &'static str {
        "voter"
    }

    fn is_stochastic(&self) -> bool {
        true
    }

    fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    fn num_candidates(&self) -> usize {
        self.initial.num_candidates()
    }

    fn opinions_at(
        &self,
        horizon: usize,
        target: Candidate,
        seeds: &[Node],
        rng_seed: u64,
    ) -> OpinionMatrix {
        let states = self.states_at(horizon, target, seeds, rng_seed);
        states_to_matrix(&states, self.initial.num_candidates())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vom_graph::builder::graph_from_edges;

    /// Path 0 → 1 → 2 with an extra source 3 → 1.
    fn model() -> VoterModel {
        let g = Arc::new(graph_from_edges(4, &[(0, 1, 0.5), (3, 1, 0.5), (1, 2, 1.0)]).unwrap());
        let initial =
            OpinionMatrix::from_rows(vec![vec![0.9, 0.1, 0.2, 0.3], vec![0.1, 0.8, 0.7, 0.6]])
                .unwrap();
        VoterModel::new(g, initial).unwrap()
    }

    #[test]
    fn rejects_mismatched_inputs() {
        let g = Arc::new(graph_from_edges(2, &[(0, 1, 1.0)]).unwrap());
        let bad = OpinionMatrix::from_rows(vec![vec![0.5; 3]]).unwrap();
        assert!(VoterModel::new(g, bad).is_err());
    }

    #[test]
    fn horizon_zero_returns_initial_preferences() {
        let m = model();
        let states = m.states_at(0, 0, &[], 1);
        assert_eq!(states, vec![0, 1, 1, 1]);
    }

    #[test]
    fn seeds_are_pinned_to_the_target() {
        let m = model();
        for seed in 0..50 {
            let states = m.states_at(10, 0, &[1, 2], seed);
            assert_eq!(states[1], 0, "seed users never leave the target");
            assert_eq!(states[2], 0);
        }
    }

    #[test]
    fn unanimous_initial_state_is_absorbing() {
        let g = Arc::new(graph_from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)]).unwrap());
        let initial = OpinionMatrix::from_rows(vec![vec![0.1; 3], vec![0.9; 3]]).unwrap();
        let m = VoterModel::new(g, initial).unwrap();
        for seed in 0..20 {
            assert_eq!(m.states_at(15, 0, &[], seed), vec![1, 1, 1]);
        }
    }

    #[test]
    fn source_nodes_keep_their_preference() {
        let m = model();
        for seed in 0..20 {
            let states = m.states_at(8, 0, &[], seed);
            assert_eq!(states[0], 0, "node 0 has no in-edges");
            assert_eq!(states[3], 1, "node 3 has no in-edges");
        }
    }

    #[test]
    fn deterministic_given_the_same_seed() {
        let m = model();
        assert_eq!(m.states_at(12, 0, &[], 99), m.states_at(12, 0, &[], 99));
    }

    #[test]
    fn influence_propagates_along_the_path() {
        // Node 2 copies node 1's previous state; node 1 copies node 0 or
        // node 3. Seeding node 3 for candidate 0 makes both of node 1's
        // influencers prefer candidate 0, so after a couple of steps
        // node 1 (and then node 2) must hold candidate 0.
        let m = model();
        let states = m.states_at(10, 0, &[3], 7);
        assert_eq!(states, vec![0, 0, 0, 0]);
    }

    #[test]
    fn zealots_never_change_and_block_consensus() {
        // Path 0 → 1 → 2: node 0 prefers the target; a zealot for
        // candidate 1 sits at node 1, cutting the target's influence
        // chain to node 2 permanently.
        let g = Arc::new(graph_from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap());
        let initial =
            OpinionMatrix::from_rows(vec![vec![0.9, 0.9, 0.9], vec![0.1, 0.1, 0.1]]).unwrap();
        let m = VoterModel::new(g, initial).unwrap().with_zealots(1, &[1]);
        for seed in 0..20 {
            let states = m.states_at(10, 0, &[0], seed);
            assert_eq!(states[0], 0, "seed pinned");
            assert_eq!(states[1], 1, "zealot pinned to candidate 1");
            // Node 2 copies the zealot eventually (its only influencer).
            assert_eq!(states[2], 1, "the zealot firewall holds");
        }
    }

    #[test]
    fn a_seed_on_a_zealot_node_takes_precedence() {
        let g = Arc::new(graph_from_edges(2, &[(0, 1, 1.0)]).unwrap());
        let initial = OpinionMatrix::from_rows(vec![vec![0.2, 0.2], vec![0.8, 0.8]]).unwrap();
        let m = VoterModel::new(g, initial).unwrap().with_zealots(1, &[0]);
        // Without a seed, the zealot spreads candidate 1.
        assert_eq!(m.states_at(3, 0, &[], 1), vec![1, 1]);
        // Buying the zealot converts the chain.
        assert_eq!(m.states_at(3, 0, &[0], 1), vec![0, 0]);
    }

    #[test]
    fn opinions_matrix_is_one_hot() {
        let m = model();
        let b = m.opinions_at(5, 0, &[], 3);
        for v in 0..4u32 {
            let sum: f64 = (0..2).map(|q| b.get(q, v)).sum();
            assert_eq!(sum, 1.0);
        }
    }
}
