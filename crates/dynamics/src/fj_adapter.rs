//! Adapter exposing the paper's Friedkin–Johnsen [`Instance`] through
//! the [`DynamicsModel`] trait, so FJ can be swept side-by-side with the
//! alternative models (and so [`crate::seeding::DynamicsSeeder`] can be
//! sanity-checked against the exact `vom-core` selectors).

use crate::model::DynamicsModel;
use std::sync::Arc;
use vom_diffusion::{Instance, OpinionMatrix};
use vom_graph::{Candidate, Node};

/// A [`DynamicsModel`] view of an FJ instance. Deterministic; the RNG
/// seed is ignored.
#[derive(Debug, Clone)]
pub struct FjDynamics {
    instance: Arc<Instance>,
}

impl FjDynamics {
    /// Wraps a multi-candidate FJ instance.
    pub fn new(instance: Arc<Instance>) -> Self {
        FjDynamics { instance }
    }

    /// The wrapped instance.
    pub fn instance(&self) -> &Arc<Instance> {
        &self.instance
    }
}

impl DynamicsModel for FjDynamics {
    fn name(&self) -> &'static str {
        "friedkin-johnsen"
    }

    fn is_stochastic(&self) -> bool {
        false
    }

    fn num_nodes(&self) -> usize {
        self.instance.num_nodes()
    }

    fn num_candidates(&self) -> usize {
        self.instance.num_candidates()
    }

    fn opinions_at(
        &self,
        horizon: usize,
        target: Candidate,
        seeds: &[Node],
        _rng_seed: u64,
    ) -> OpinionMatrix {
        self.instance.opinions_at(horizon, target, seeds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vom_diffusion::CandidateData;
    use vom_graph::builder::graph_from_edges;

    fn instance() -> Arc<Instance> {
        let g = Arc::new(graph_from_edges(4, &[(0, 2, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap());
        let d = vec![0.0, 0.0, 0.5, 0.5];
        let c1 = CandidateData::new(g.clone(), vec![0.40, 0.80, 0.60, 0.90], d.clone()).unwrap();
        let c2 = CandidateData::new(g, vec![0.35, 0.75, 1.00, 0.80], d).unwrap();
        Arc::new(Instance::from_candidates(vec![c1, c2]).unwrap())
    }

    #[test]
    fn adapter_matches_the_instance_exactly() {
        let inst = instance();
        let dyn_model = FjDynamics::new(inst.clone());
        for t in [0, 1, 5] {
            for seeds in [vec![], vec![2u32], vec![0, 1]] {
                assert_eq!(
                    dyn_model.opinions_at(t, 0, &seeds, 42),
                    inst.opinions_at(t, 0, &seeds),
                    "t = {t}, seeds = {seeds:?}"
                );
            }
        }
    }

    #[test]
    fn metadata_is_forwarded() {
        let dyn_model = FjDynamics::new(instance());
        assert_eq!(dyn_model.num_nodes(), 4);
        assert_eq!(dyn_model.num_candidates(), 2);
        assert!(!dyn_model.is_stochastic());
        assert_eq!(dyn_model.name(), "friedkin-johnsen");
    }
}
