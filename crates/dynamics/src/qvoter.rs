//! The **q-voter model** (Castellano, Muñoz & Pastor-Satorras 2009), a
//! conformity-threshold generalization of the voter model.
//!
//! At every timestamp each non-seed user samples `q` in-neighbors
//! independently (with replacement, by influence weight — the same copy
//! distribution as [`crate::VoterModel`]) and adopts their preferred
//! candidate only if **all `q` agree**; otherwise she keeps her current
//! preference. `q = 1` recovers the voter model exactly; larger `q`
//! demands unanimous social proof, which slows adoption and makes
//! entrenched majorities far harder for a seeded campaign to crack —
//! the discrete analogue of bounded confidence.

use crate::discrete::{initial_states, states_to_matrix, validate_config, State};
use crate::error::DynamicsError;
use crate::model::{seed_mask, DynamicsModel};
use crate::{mix_seed, Result};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use vom_diffusion::OpinionMatrix;
use vom_graph::{Candidate, Node, SocialGraph};

/// q-voter configuration over a fixed graph and initial opinions.
#[derive(Debug, Clone)]
pub struct QVoterModel {
    graph: Arc<SocialGraph>,
    initial: OpinionMatrix,
    q: usize,
}

impl QVoterModel {
    /// Builds a q-voter model with conformity threshold `q >= 1`
    /// (`q = 1` is the plain voter model).
    pub fn new(graph: Arc<SocialGraph>, initial: OpinionMatrix, q: usize) -> Result<Self> {
        validate_config(graph.num_nodes(), &initial)?;
        if q == 0 {
            return Err(DynamicsError::BadParameter {
                name: "q",
                value: 0.0,
                constraint: "q >= 1",
            });
        }
        Ok(QVoterModel { graph, initial, q })
    }

    /// The conformity threshold `q`.
    pub fn q(&self) -> usize {
        self.q
    }

    /// Samples one in-neighbor of `v` by influence weight.
    fn sample_neighbor(&self, v: Node, rng: &mut SmallRng) -> Node {
        let neighbors = self.graph.in_neighbors(v);
        let weights = self.graph.in_weights(v);
        let mut u: f64 = rng.gen();
        let mut chosen = *neighbors.last().expect("caller checked non-empty");
        for (&w, &nb) in weights.iter().zip(neighbors) {
            if u < w {
                chosen = nb;
                break;
            }
            u -= w;
        }
        chosen
    }

    /// Runs the chain and returns the final discrete states.
    pub fn states_at(
        &self,
        horizon: usize,
        target: Candidate,
        seeds: &[Node],
        rng_seed: u64,
    ) -> Vec<State> {
        let n = self.graph.num_nodes();
        let mut states = initial_states(&self.initial);
        let pinned = seed_mask(n, seeds);
        for (v, &is_pinned) in pinned.iter().enumerate() {
            if is_pinned {
                states[v] = target as State;
            }
        }
        let mut next = states.clone();
        for step in 0..horizon {
            let mut rng = SmallRng::seed_from_u64(mix_seed(rng_seed, step as u64));
            for v in 0..n as Node {
                if self.graph.in_neighbors(v).is_empty() {
                    continue;
                }
                // Draw the full q-panel even for pinned nodes so seeded
                // and seedless realizations of one rng_seed stay coupled
                // (same rationale as VoterModel).
                let first = states[self.sample_neighbor(v, &mut rng) as usize];
                let mut unanimous = true;
                for _ in 1..self.q {
                    let s = states[self.sample_neighbor(v, &mut rng) as usize];
                    unanimous &= s == first;
                }
                if unanimous && !pinned[v as usize] {
                    next[v as usize] = first;
                }
            }
            std::mem::swap(&mut states, &mut next);
            next.copy_from_slice(&states);
        }
        states
    }
}

impl DynamicsModel for QVoterModel {
    fn name(&self) -> &'static str {
        "q-voter"
    }

    fn is_stochastic(&self) -> bool {
        true
    }

    fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    fn num_candidates(&self) -> usize {
        self.initial.num_candidates()
    }

    fn opinions_at(
        &self,
        horizon: usize,
        target: Candidate,
        seeds: &[Node],
        rng_seed: u64,
    ) -> OpinionMatrix {
        let states = self.states_at(horizon, target, seeds, rng_seed);
        states_to_matrix(&states, self.initial.num_candidates())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::montecarlo::expected_opinions;
    use crate::VoterModel;
    use vom_graph::builder::graph_from_edges;

    fn mixed_graph() -> Arc<SocialGraph> {
        Arc::new(
            graph_from_edges(
                4,
                &[
                    (0, 2, 0.5),
                    (1, 2, 0.5),
                    (2, 3, 1.0),
                    (3, 0, 1.0),
                    (2, 1, 1.0),
                ],
            )
            .unwrap(),
        )
    }

    fn polarized_initial() -> OpinionMatrix {
        OpinionMatrix::from_rows(vec![vec![0.9, 0.2, 0.3, 0.8], vec![0.1, 0.8, 0.7, 0.2]]).unwrap()
    }

    #[test]
    fn rejects_q_zero() {
        assert!(matches!(
            QVoterModel::new(mixed_graph(), polarized_initial(), 0),
            Err(DynamicsError::BadParameter { name: "q", .. })
        ));
    }

    #[test]
    fn q1_matches_the_voter_model_in_expectation() {
        let qv = QVoterModel::new(mixed_graph(), polarized_initial(), 1).unwrap();
        let v = VoterModel::new(mixed_graph(), polarized_initial()).unwrap();
        let a = expected_opinions(&qv, 6, 0, &[], 4000, 3);
        let b = expected_opinions(&v, 6, 0, &[], 4000, 3);
        for u in 0..4u32 {
            assert!(
                (a.get(0, u) - b.get(0, u)).abs() < 0.05,
                "user {u}: q-voter {} vs voter {}",
                a.get(0, u),
                b.get(0, u)
            );
        }
    }

    #[test]
    fn unanimity_is_absorbing_for_any_q() {
        let initial = OpinionMatrix::from_rows(vec![vec![0.8; 4], vec![0.2; 4]]).unwrap();
        for q in [1, 2, 4] {
            let m = QVoterModel::new(mixed_graph(), initial.clone(), q).unwrap();
            for seed in 0..10 {
                assert_eq!(m.states_at(8, 1, &[], seed), vec![0; 4], "q = {q}");
            }
        }
    }

    #[test]
    fn seeds_stay_pinned() {
        let m = QVoterModel::new(mixed_graph(), polarized_initial(), 2).unwrap();
        for seed in 0..20 {
            let states = m.states_at(10, 0, &[1], seed);
            assert_eq!(states[1], 0);
        }
    }

    #[test]
    fn split_panel_blocks_adoption() {
        // Node 2 hears nodes 0 and 1 (weight ½ each) who permanently
        // disagree (both are sources). With q = 2 the panel must be
        // unanimous: it is (0,0) w.p. ¼, (1,1) w.p. ¼, split otherwise.
        // Over one step from a fresh state, node 2 keeps its preference
        // in the split cases — so across many runs it flips to
        // candidate 0 (from initial candidate 1) in ≈ ¼ of realizations,
        // never all of them. Under q = 1 it flips in ≈ ½.
        let g = Arc::new(graph_from_edges(3, &[(0, 2, 0.5), (1, 2, 0.5)]).unwrap());
        let initial =
            OpinionMatrix::from_rows(vec![vec![0.9, 0.1, 0.2], vec![0.1, 0.9, 0.8]]).unwrap();
        let q2 = QVoterModel::new(g.clone(), initial.clone(), 2).unwrap();
        let q1 = QVoterModel::new(g, initial, 1).unwrap();
        let runs = 4000;
        let flips = |m: &QVoterModel| -> f64 {
            let avg = expected_opinions(m, 1, 0, &[], runs, 7);
            avg.get(0, 2)
        };
        let p2 = flips(&q2);
        let p1 = flips(&q1);
        assert!((p2 - 0.25).abs() < 0.04, "q=2 flip rate {p2}");
        assert!((p1 - 0.50).abs() < 0.04, "q=1 flip rate {p1}");
    }

    #[test]
    fn higher_q_slows_target_adoption() {
        // Seed the hub of a star: with q = 1 every leaf copies the hub
        // immediately; with q = 3 a leaf needs three unanimous draws of
        // its single neighbor — identical here, so use a two-influencer
        // leaf instead. Statistically, expected target support after a
        // few steps must be weakly decreasing in q.
        let g = Arc::new(
            graph_from_edges(
                5,
                &[
                    (0, 2, 0.5),
                    (1, 2, 0.5),
                    (0, 3, 0.5),
                    (1, 3, 0.5),
                    (0, 4, 0.5),
                    (1, 4, 0.5),
                ],
            )
            .unwrap(),
        );
        // Influencer 0 seeded for target; influencer 1 fixed against.
        let initial = OpinionMatrix::from_rows(vec![vec![0.2; 5], vec![0.8; 5]]).unwrap();
        let support = |q: usize| -> f64 {
            let m = QVoterModel::new(g.clone(), initial.clone(), q).unwrap();
            expected_opinions(&m, 4, 0, &[0], 2000, 13)
                .row(0)
                .iter()
                .sum()
        };
        // Exact two-state-chain values for a leaf after 4 steps starting
        // against the target: q=1 → 0.5; q=2 → 0.5(1 − 0.5⁴) ≈ 0.469;
        // q=3 → 0.5(1 − 0.75⁴) ≈ 0.342. Totals (seed + 3 leaves):
        // 2.5 / ≈2.41 / ≈2.03.
        let s1 = support(1);
        let s2 = support(2);
        let s3 = support(3);
        assert!((s1 - 2.5).abs() < 0.08, "q=1 {s1}");
        assert!(s1 > s2, "q=1 {s1} vs q=2 {s2}");
        assert!(s2 > s3 + 0.2, "q=2 {s2} vs q=3 {s3}");
    }

    #[test]
    fn deterministic_given_the_same_seed() {
        let m = QVoterModel::new(mixed_graph(), polarized_initial(), 2).unwrap();
        assert_eq!(m.states_at(9, 0, &[], 77), m.states_at(9, 0, &[], 77));
    }
}
