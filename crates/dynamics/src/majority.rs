//! Synchronous (weighted) **majority rule** (Krapivsky–Redner 2003;
//! §VII of the paper).
//!
//! At every timestamp each non-seed user adopts the candidate with the
//! largest total incoming influence weight among her in-neighbors'
//! previous preferences. Ties keep the user's current preference when it
//! is among the tied leaders, otherwise the smallest candidate index
//! wins. Users without in-neighbors keep their preference. The update is
//! deterministic — `rng_seed` is ignored.

use crate::discrete::{initial_states, states_to_matrix, validate_config, State};
use crate::model::{seed_mask, DynamicsModel};
use crate::Result;
use std::sync::Arc;
use vom_diffusion::OpinionMatrix;
use vom_graph::{Candidate, Node, SocialGraph};

/// Majority-rule configuration over a fixed graph and initial opinions.
#[derive(Debug, Clone)]
pub struct MajorityRule {
    graph: Arc<SocialGraph>,
    initial: OpinionMatrix,
}

impl MajorityRule {
    /// Builds a majority-rule model; initial preferences are the
    /// per-user argmax of `initial`.
    pub fn new(graph: Arc<SocialGraph>, initial: OpinionMatrix) -> Result<Self> {
        validate_config(graph.num_nodes(), &initial)?;
        Ok(MajorityRule { graph, initial })
    }

    /// Runs the deterministic chain and returns the final states.
    pub fn states_at(&self, horizon: usize, target: Candidate, seeds: &[Node]) -> Vec<State> {
        let n = self.graph.num_nodes();
        let r = self.initial.num_candidates();
        let mut states = initial_states(&self.initial);
        let pinned = seed_mask(n, seeds);
        for (v, &is_pinned) in pinned.iter().enumerate() {
            if is_pinned {
                states[v] = target as State;
            }
        }
        let mut next = states.clone();
        let mut weight_of = vec![0.0f64; r];
        for _ in 0..horizon {
            for v in 0..n as Node {
                if pinned[v as usize] {
                    continue;
                }
                let neighbors = self.graph.in_neighbors(v);
                if neighbors.is_empty() {
                    continue;
                }
                weight_of.iter_mut().for_each(|w| *w = 0.0);
                for (&nb, &w) in neighbors.iter().zip(self.graph.in_weights(v)) {
                    weight_of[states[nb as usize] as usize] += w;
                }
                let max = weight_of.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let current = states[v as usize] as usize;
                // Keep the current preference on ties; otherwise the
                // smallest tied index.
                let winner = if weight_of[current] == max {
                    current
                } else {
                    weight_of
                        .iter()
                        .position(|&w| w == max)
                        .expect("max is attained")
                };
                next[v as usize] = winner as State;
            }
            std::mem::swap(&mut states, &mut next);
            next.copy_from_slice(&states);
        }
        states
    }
}

impl DynamicsModel for MajorityRule {
    fn name(&self) -> &'static str {
        "majority-rule"
    }

    fn is_stochastic(&self) -> bool {
        false
    }

    fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    fn num_candidates(&self) -> usize {
        self.initial.num_candidates()
    }

    fn opinions_at(
        &self,
        horizon: usize,
        target: Candidate,
        seeds: &[Node],
        _rng_seed: u64,
    ) -> OpinionMatrix {
        let states = self.states_at(horizon, target, seeds);
        states_to_matrix(&states, self.initial.num_candidates())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vom_graph::builder::graph_from_edges;

    /// Star: leaves 1..=3 all point into center 0; center points back at
    /// every leaf (so leaves are also influenced).
    fn star() -> Arc<SocialGraph> {
        Arc::new(
            graph_from_edges(
                4,
                &[
                    (1, 0, 1.0 / 3.0),
                    (2, 0, 1.0 / 3.0),
                    (3, 0, 1.0 / 3.0),
                    (0, 1, 1.0),
                    (0, 2, 1.0),
                    (0, 3, 1.0),
                ],
            )
            .unwrap(),
        )
    }

    #[test]
    fn center_adopts_leaf_majority() {
        // Leaves prefer candidate 1 (two of three); the center starts at
        // candidate 0 and must flip after one step.
        let initial =
            OpinionMatrix::from_rows(vec![vec![0.9, 0.1, 0.2, 0.8], vec![0.1, 0.9, 0.8, 0.2]])
                .unwrap();
        let m = MajorityRule::new(star(), initial).unwrap();
        let states = m.states_at(1, 0, &[]);
        assert_eq!(states[0], 1, "center follows the 2-vs-1 leaf majority");
    }

    #[test]
    fn seeding_the_center_flips_all_leaves() {
        let initial =
            OpinionMatrix::from_rows(vec![vec![0.1, 0.1, 0.2, 0.2], vec![0.9, 0.9, 0.8, 0.8]])
                .unwrap();
        let m = MajorityRule::new(star(), initial).unwrap();
        let states = m.states_at(1, 0, &[0]);
        assert_eq!(states, vec![0, 0, 0, 0], "leaves copy the seeded center");
    }

    #[test]
    fn ties_keep_the_current_preference() {
        // Node 2 hears one vote for each candidate with equal weight.
        let g = Arc::new(graph_from_edges(3, &[(0, 2, 0.5), (1, 2, 0.5)]).unwrap());
        let initial =
            OpinionMatrix::from_rows(vec![vec![0.9, 0.1, 0.6], vec![0.1, 0.9, 0.4]]).unwrap();
        let m = MajorityRule::new(g, initial).unwrap();
        let states = m.states_at(5, 0, &[]);
        assert_eq!(states[2], 0, "tie resolves to the held preference");
    }

    #[test]
    fn deterministic_and_rng_independent() {
        let initial =
            OpinionMatrix::from_rows(vec![vec![0.9, 0.1, 0.2, 0.8], vec![0.1, 0.9, 0.8, 0.2]])
                .unwrap();
        let m = MajorityRule::new(star(), initial).unwrap();
        let a = m.opinions_at(4, 0, &[], 1);
        let b = m.opinions_at(4, 0, &[], 999);
        assert_eq!(a, b);
    }

    #[test]
    fn horizon_zero_is_the_initial_profile() {
        let initial =
            OpinionMatrix::from_rows(vec![vec![0.9, 0.1, 0.2, 0.8], vec![0.1, 0.9, 0.8, 0.2]])
                .unwrap();
        let m = MajorityRule::new(star(), initial).unwrap();
        assert_eq!(m.states_at(0, 0, &[]), vec![0, 1, 1, 0]);
    }

    #[test]
    fn oscillation_is_possible_without_damping() {
        // Two nodes copying each other with opposite preferences swap
        // every step — the classic synchronous-majority 2-cycle. This
        // documents (rather than hides) the model's known behaviour.
        let g = Arc::new(graph_from_edges(2, &[(0, 1, 1.0), (1, 0, 1.0)]).unwrap());
        let initial = OpinionMatrix::from_rows(vec![vec![0.9, 0.1], vec![0.1, 0.9]]).unwrap();
        let m = MajorityRule::new(g, initial).unwrap();
        assert_eq!(m.states_at(1, 0, &[]), vec![1, 0]);
        assert_eq!(m.states_at(2, 0, &[]), vec![0, 1]);
    }
}
