#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # vom-dynamics
//!
//! Alternative opinion-diffusion models for voting-based opinion
//! maximization — the paper's §IX future-work direction ("consider more
//! opinion diffusion models") realized over the same substrate as the
//! Friedkin–Johnsen engine.
//!
//! The paper's related work (§VII) surveys two families:
//!
//! * **Discrete models**, where every user holds one preferred candidate
//!   at a time: the **voter model** ([`VoterModel`], Holley–Liggett 1975),
//!   its conformity-threshold generalization the **q-voter model**
//!   ([`QVoterModel`], Castellano et al. 2009), **majority rule**
//!   ([`MajorityRule`], Krapivsky–Redner 2003), and the **Sznajd model**
//!   ([`SznajdModel`], Sznajd-Weron & Sznajd 2000).
//! * **Continuous bounded-confidence models**, where opinions are reals
//!   in `[0, 1]` but users only listen to peers whose opinions are within
//!   a confidence bound ε: **Deffuant** ([`DeffuantModel`], Deffuant et
//!   al. 2000) and **Hegselmann–Krause** ([`HkModel`], 2002).
//!
//! All models implement the [`DynamicsModel`] trait: given a target
//! candidate, a seed set and a horizon `t`, produce the opinion snapshot
//! `B^(t)[S]` (one realization for stochastic models). Seeding follows
//! the paper's §II-C semantics: a seed node's opinion about the *target*
//! is pinned at 1 for the whole diffusion (in discrete models the seed's
//! preferred candidate is pinned to the target); other candidates are
//! unaffected.
//!
//! On top of the trait the crate provides:
//!
//! * [`montecarlo::expected_opinions`] — Monte-Carlo expectation of
//!   `B^(t)[S]` over independent realizations (deterministic per run
//!   seed, parallel over runs);
//! * [`seeding::DynamicsSeeder`] — greedy seed selection under *any*
//!   dynamics model and *any* voting rule (`vom_voting::OpinionScore`),
//!   by exact/Monte-Carlo simulation of each candidate seed;
//! * [`fj_adapter::FjDynamics`] — an adapter exposing the paper's FJ
//!   instance through the same trait, so FJ seeds can be compared
//!   head-to-head against the alternative models.
//!
//! # Example
//!
//! Seed a voter-model campaign on a star network and measure the
//! expected plurality lift:
//!
//! ```
//! use std::sync::Arc;
//! use vom_diffusion::OpinionMatrix;
//! use vom_dynamics::{expected_opinions, DynamicsSeeder, VoterModel};
//! use vom_graph::builder::graph_from_edges;
//! use vom_voting::ScoringFunction;
//!
//! // Hub 0 influences four leaves; everyone initially prefers
//! // candidate 1 over candidate 0.
//! let graph = Arc::new(graph_from_edges(
//!     5,
//!     &[(0, 1, 1.0), (0, 2, 1.0), (0, 3, 1.0), (0, 4, 1.0)],
//! )?);
//! let initial = OpinionMatrix::from_rows(vec![vec![0.2; 5], vec![0.8; 5]])?;
//! let model = VoterModel::new(graph, initial)?;
//!
//! // Greedily pick one seed for candidate 0 at horizon 3 (64 Monte-Carlo
//! // runs per evaluation); the hub is the obvious choice.
//! let seeder = DynamicsSeeder::new(&model, 3, 0, 64, 7);
//! let seeds = seeder.greedy(1, &ScoringFunction::Plurality);
//! assert_eq!(seeds, vec![0]);
//!
//! // The pinned hub converts every leaf.
//! let after = expected_opinions(&model, 3, 0, &seeds, 64, 7);
//! assert_eq!(ScoringFunction::Plurality.score(&after, 0), 5.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod analysis;
pub mod deffuant;
pub mod discrete;
pub mod error;
pub mod fj_adapter;
pub mod hk;
pub mod majority;
pub mod model;
pub mod montecarlo;
pub mod qvoter;
pub mod seeding;
pub mod sznajd;
pub mod voter;

pub use analysis::{
    consensus_time, is_unanimous, opinion_clusters, polarization_index, support_trajectory, Cluster,
};
pub use deffuant::DeffuantModel;
pub use error::DynamicsError;
pub use fj_adapter::FjDynamics;
pub use hk::HkModel;
pub use majority::MajorityRule;
pub use model::DynamicsModel;
pub use montecarlo::expected_opinions;
pub use qvoter::QVoterModel;
pub use seeding::DynamicsSeeder;
pub use sznajd::SznajdModel;
pub use voter::VoterModel;

/// Crate-wide result type.
pub type Result<T> = std::result::Result<T, DynamicsError>;

/// SplitMix64-style seed mixing (same scheme as `vom-walks`): derives an
/// independent RNG stream per (base seed, stream id) pair so parallel
/// realizations are deterministic regardless of scheduling.
#[inline]
pub(crate) fn mix_seed(base: u64, stream: u64) -> u64 {
    let mut z = base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_seed_is_deterministic_and_spreads() {
        assert_eq!(mix_seed(7, 3), mix_seed(7, 3));
        assert_ne!(mix_seed(7, 3), mix_seed(7, 4));
        assert_ne!(mix_seed(7, 3), mix_seed(8, 3));
    }
}
