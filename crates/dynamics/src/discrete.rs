//! Shared machinery for the discrete-state models (voter, majority rule,
//! Sznajd): users hold exactly one preferred candidate at a time.
//!
//! The bridge to the paper's voting scores is the 0/1 opinion snapshot:
//! `b_qv = 1` iff user `v` currently prefers candidate `q`. Under
//! Monte-Carlo averaging ([`crate::montecarlo`]) the snapshot entries
//! become *preference probabilities*, so e.g. the cumulative score of a
//! candidate is her expected number of supporters and the plurality
//! score counts users preferring her in the majority of realizations.

use crate::error::DynamicsError;
use crate::Result;
use vom_diffusion::OpinionMatrix;
use vom_graph::Candidate;

/// A discrete preference state: one candidate index per user.
pub type State = u32;

/// Derives the initial discrete states from a real-valued opinion
/// matrix: every user starts preferring her argmax candidate (ties break
/// toward the smaller candidate index, matching the tally convention).
pub fn initial_states(b0: &OpinionMatrix) -> Vec<State> {
    let n = b0.num_users();
    let r = b0.num_candidates();
    let mut states = vec![0 as State; n];
    for (v, state) in states.iter_mut().enumerate() {
        let mut best = 0usize;
        let mut best_val = f64::NEG_INFINITY;
        for q in 0..r {
            let val = b0.row(q)[v];
            if val > best_val {
                best = q;
                best_val = val;
            }
        }
        *state = best as State;
    }
    states
}

/// Converts discrete states to the 0/1 opinion snapshot described in the
/// module docs.
pub fn states_to_matrix(states: &[State], r: usize) -> OpinionMatrix {
    let n = states.len();
    let mut b = OpinionMatrix::zeros(r, n);
    for (v, &s) in states.iter().enumerate() {
        b.set(s as Candidate, v as u32, 1.0);
    }
    b
}

/// Whether every user holds the same preference (consensus).
pub fn is_consensus(states: &[State]) -> bool {
    states.windows(2).all(|w| w[0] == w[1])
}

/// Per-candidate supporter counts.
pub fn support_counts(states: &[State], r: usize) -> Vec<usize> {
    let mut counts = vec![0usize; r];
    for &s in states {
        counts[s as usize] += 1;
    }
    counts
}

/// Validates a shared (graph, initial opinions) configuration.
pub(crate) fn validate_config(n: usize, initial: &OpinionMatrix) -> Result<()> {
    if initial.num_candidates() == 0 {
        return Err(DynamicsError::NoCandidates);
    }
    if initial.num_users() != n {
        return Err(DynamicsError::LengthMismatch {
            what: "initial opinions",
            got: initial.num_users(),
            expected: n,
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> OpinionMatrix {
        OpinionMatrix::from_rows(vec![
            vec![0.9, 0.2, 0.5],
            vec![0.5, 0.2, 0.5],
            vec![0.1, 0.8, 0.4],
        ])
        .unwrap()
    }

    #[test]
    fn initial_states_take_argmax_with_low_index_ties() {
        assert_eq!(initial_states(&snapshot()), vec![0, 2, 0]);
    }

    #[test]
    fn states_round_trip_to_unit_rows() {
        let states = vec![0, 2, 1, 1];
        let b = states_to_matrix(&states, 3);
        for v in 0..4u32 {
            let col_sum: f64 = (0..3).map(|q| b.get(q, v)).sum();
            assert_eq!(col_sum, 1.0, "user {v}");
        }
        assert_eq!(initial_states(&b), states);
    }

    #[test]
    fn consensus_detection() {
        assert!(is_consensus(&[1, 1, 1]));
        assert!(!is_consensus(&[1, 0, 1]));
        assert!(is_consensus(&[]));
    }

    #[test]
    fn support_counts_sum_to_n() {
        let counts = support_counts(&[0, 2, 2, 1, 2], 3);
        assert_eq!(counts, vec![1, 1, 3]);
    }

    #[test]
    fn validate_rejects_mismatch_and_empty() {
        let b = snapshot();
        assert!(validate_config(3, &b).is_ok());
        assert!(matches!(
            validate_config(4, &b),
            Err(DynamicsError::LengthMismatch { .. })
        ));
    }
}
