//! The **Hegselmann–Krause (HK)** bounded-confidence model (2002; §VII
//! of the paper), run per candidate over the social graph.
//!
//! Synchronous and deterministic: at every timestamp each non-seed user
//! replaces her opinion about a candidate with the *unweighted average*
//! over her confidence set — herself plus every in-neighbor whose
//! opinion lies within `ε` of her own. With `ε = 1` on a strongly
//! connected graph this degenerates to neighborhood averaging (DeGroot
//! with uniform weights plus a self-loop); with small `ε` users only
//! average with like-minded peers, producing the model's signature
//! opinion clusters.
//!
//! Seeds are pinned at opinion 1 for the target candidate; they still
//! appear in neighbors' confidence sets and pull them toward 1.

use crate::discrete::validate_config;
use crate::error::DynamicsError;
use crate::model::{seed_mask, DynamicsModel};
use crate::Result;
use std::sync::Arc;
use vom_diffusion::OpinionMatrix;
use vom_graph::{Candidate, Node, SocialGraph};

/// HK-model configuration.
#[derive(Debug, Clone)]
pub struct HkModel {
    graph: Arc<SocialGraph>,
    initial: OpinionMatrix,
    epsilon: f64,
}

impl HkModel {
    /// Builds an HK model with confidence bound `epsilon ∈ [0, 1]`.
    pub fn new(graph: Arc<SocialGraph>, initial: OpinionMatrix, epsilon: f64) -> Result<Self> {
        validate_config(graph.num_nodes(), &initial)?;
        if !(0.0..=1.0).contains(&epsilon) {
            return Err(DynamicsError::BadParameter {
                name: "epsilon",
                value: epsilon,
                constraint: "0 <= epsilon <= 1",
            });
        }
        Ok(HkModel {
            graph,
            initial,
            epsilon,
        })
    }

    /// The confidence bound ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Evolves one candidate's opinion row for `horizon` synchronous
    /// steps; `pinned` users never move.
    fn evolve_row(&self, row: &mut Vec<f64>, pinned: &[bool], horizon: usize) {
        let n = self.graph.num_nodes();
        let mut next = row.clone();
        for _ in 0..horizon {
            for v in 0..n as Node {
                let vi = v as usize;
                if pinned[vi] {
                    continue;
                }
                let xv = row[vi];
                let mut sum = xv;
                let mut count = 1usize;
                for &u in self.graph.in_neighbors(v) {
                    let xu = row[u as usize];
                    if (xu - xv).abs() <= self.epsilon {
                        sum += xu;
                        count += 1;
                    }
                }
                next[vi] = sum / count as f64;
            }
            std::mem::swap(row, &mut next);
            next.copy_from_slice(row);
        }
    }
}

impl DynamicsModel for HkModel {
    fn name(&self) -> &'static str {
        "hegselmann-krause"
    }

    fn is_stochastic(&self) -> bool {
        false
    }

    fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    fn num_candidates(&self) -> usize {
        self.initial.num_candidates()
    }

    fn opinions_at(
        &self,
        horizon: usize,
        target: Candidate,
        seeds: &[Node],
        _rng_seed: u64,
    ) -> OpinionMatrix {
        let n = self.graph.num_nodes();
        let r = self.initial.num_candidates();
        let mut b = self.initial.clone();
        let pinned = seed_mask(n, seeds);
        let no_pins = vec![false; n];
        for q in 0..r {
            let mut row = b.row(q).to_vec();
            let pins = if q == target {
                for (v, &p) in pinned.iter().enumerate() {
                    if p {
                        row[v] = 1.0;
                    }
                }
                &pinned
            } else {
                &no_pins
            };
            self.evolve_row(&mut row, pins, horizon);
            b.set_row(q, &row);
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vom_graph::builder::graph_from_edges;

    /// Complete directed graph on 3 nodes (uniform in-weights).
    fn triangle() -> Arc<SocialGraph> {
        Arc::new(
            graph_from_edges(
                3,
                &[
                    (0, 1, 0.5),
                    (2, 1, 0.5),
                    (1, 0, 0.5),
                    (2, 0, 0.5),
                    (0, 2, 0.5),
                    (1, 2, 0.5),
                ],
            )
            .unwrap(),
        )
    }

    #[test]
    fn rejects_bad_epsilon() {
        let initial = OpinionMatrix::from_rows(vec![vec![0.5; 3]]).unwrap();
        assert!(matches!(
            HkModel::new(triangle(), initial, -0.1),
            Err(DynamicsError::BadParameter { .. })
        ));
    }

    #[test]
    fn full_confidence_reaches_the_global_mean_in_one_step() {
        let initial = OpinionMatrix::from_rows(vec![vec![0.0, 0.5, 1.0]]).unwrap();
        let m = HkModel::new(triangle(), initial, 1.0).unwrap();
        let b = m.opinions_at(1, 0, &[], 0);
        for v in 0..3u32 {
            assert!((b.get(0, v) - 0.5).abs() < 1e-12, "user {v}");
        }
    }

    #[test]
    fn zero_confidence_freezes_distinct_opinions() {
        let initial = OpinionMatrix::from_rows(vec![vec![0.1, 0.5, 0.9]]).unwrap();
        let m = HkModel::new(triangle(), initial, 0.0).unwrap();
        let b = m.opinions_at(10, 0, &[], 0);
        assert_eq!(b.row(0), &[0.1, 0.5, 0.9]);
    }

    #[test]
    fn clusters_form_under_a_tight_bound() {
        // Users at 0.0/0.1 and 0.9/1.0 with ε = 0.2: the two camps
        // average internally but never bridge the 0.8 gap.
        let g = Arc::new(
            graph_from_edges(4, &[(1, 0, 1.0), (0, 1, 1.0), (3, 2, 1.0), (2, 3, 1.0)]).unwrap(),
        );
        let initial = OpinionMatrix::from_rows(vec![vec![0.0, 0.1, 0.9, 1.0]]).unwrap();
        let m = HkModel::new(g, initial, 0.2).unwrap();
        let b = m.opinions_at(30, 0, &[], 0);
        assert!((b.get(0, 0) - 0.05).abs() < 1e-9);
        assert!((b.get(0, 1) - 0.05).abs() < 1e-9);
        assert!((b.get(0, 2) - 0.95).abs() < 1e-9);
        assert!((b.get(0, 3) - 0.95).abs() < 1e-9);
    }

    #[test]
    fn seeds_pull_confident_neighbors_toward_one() {
        let initial = OpinionMatrix::from_rows(vec![vec![0.6, 0.6, 0.6]]).unwrap();
        let m = HkModel::new(triangle(), initial, 1.0).unwrap();
        let b = m.opinions_at(20, 0, &[0], 0);
        assert_eq!(b.get(0, 0), 1.0);
        assert!(b.get(0, 1) > 0.95);
        assert!(b.get(0, 2) > 0.95);
    }

    #[test]
    fn out_of_confidence_seed_is_ignored() {
        // Neighbors at 0.1 with ε = 0.3 cannot hear a seed at 1.0.
        let initial = OpinionMatrix::from_rows(vec![vec![0.6, 0.1, 0.1]]).unwrap();
        let m = HkModel::new(triangle(), initial, 0.3).unwrap();
        let b = m.opinions_at(10, 0, &[0], 0);
        assert_eq!(b.get(0, 0), 1.0);
        assert!(b.get(0, 1) < 0.2, "got {}", b.get(0, 1));
        assert!(b.get(0, 2) < 0.2);
    }

    #[test]
    fn rng_seed_is_irrelevant() {
        let initial = OpinionMatrix::from_rows(vec![vec![0.3, 0.4, 0.8]]).unwrap();
        let m = HkModel::new(triangle(), initial, 0.5).unwrap();
        assert_eq!(m.opinions_at(6, 0, &[], 1), m.opinions_at(6, 0, &[], 2));
    }

    #[test]
    fn opinions_stay_bounded_by_initial_extremes() {
        let initial = OpinionMatrix::from_rows(vec![vec![0.2, 0.5, 0.7]]).unwrap();
        let m = HkModel::new(triangle(), initial, 1.0).unwrap();
        let b = m.opinions_at(9, 0, &[], 0);
        for v in 0..3u32 {
            let x = b.get(0, v);
            assert!((0.2..=0.7).contains(&x), "user {v}: {x}");
        }
    }
}
