//! Monte-Carlo expectation of `B^(t)[S]` for stochastic dynamics.

use crate::mix_seed;
use crate::model::DynamicsModel;
use rayon::prelude::*;
use vom_diffusion::OpinionMatrix;
use vom_graph::{Candidate, Node};

/// Averages `runs` independent realizations of the model's opinion
/// snapshot. For deterministic models a single realization is computed
/// regardless of `runs`.
///
/// Runs are parallel but deterministic: realization `j` uses the RNG
/// stream `mix(base_seed, j)`, and the shim's `reduce` folds the
/// per-run snapshots sequentially in run order, so the float
/// accumulation is bit-identical for every `VOM_THREADS` setting. For
/// discrete models the averaged entries are per-user preference
/// probabilities (each user's column still sums to 1).
pub fn expected_opinions<M: DynamicsModel + ?Sized>(
    model: &M,
    horizon: usize,
    target: Candidate,
    seeds: &[Node],
    runs: usize,
    base_seed: u64,
) -> OpinionMatrix {
    let r = model.num_candidates();
    let n = model.num_nodes();
    if !model.is_stochastic() || runs <= 1 {
        return model.opinions_at(horizon, target, seeds, base_seed);
    }
    let sum: Vec<f64> = (0..runs)
        .into_par_iter()
        .map(|j| {
            let b = model.opinions_at(horizon, target, seeds, mix_seed(base_seed, j as u64));
            let mut flat = Vec::with_capacity(r * n);
            for q in 0..r {
                flat.extend_from_slice(b.row(q));
            }
            flat
        })
        .reduce(
            || vec![0.0; r * n],
            |mut acc, flat| {
                for (a, x) in acc.iter_mut().zip(&flat) {
                    *a += x;
                }
                acc
            },
        );
    let mut b = OpinionMatrix::zeros(r, n);
    let scale = 1.0 / runs as f64;
    for q in 0..r {
        let row: Vec<f64> = sum[q * n..(q + 1) * n].iter().map(|x| x * scale).collect();
        b.set_row(q, &row);
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HkModel, VoterModel};
    use std::sync::Arc;
    use vom_graph::builder::graph_from_edges;

    fn graph() -> Arc<vom_graph::SocialGraph> {
        Arc::new(
            graph_from_edges(3, &[(0, 1, 0.5), (2, 1, 0.5), (1, 0, 1.0), (1, 2, 1.0)]).unwrap(),
        )
    }

    fn initial() -> OpinionMatrix {
        OpinionMatrix::from_rows(vec![vec![0.9, 0.4, 0.2], vec![0.1, 0.6, 0.8]]).unwrap()
    }

    #[test]
    fn deterministic_model_short_circuits_to_one_run() {
        let m = HkModel::new(graph(), initial(), 1.0).unwrap();
        let single = m.opinions_at(5, 0, &[], 7);
        let avg = expected_opinions(&m, 5, 0, &[], 100, 7);
        assert_eq!(single, avg);
    }

    #[test]
    fn discrete_expectations_are_probabilities() {
        let m = VoterModel::new(graph(), initial()).unwrap();
        let avg = expected_opinions(&m, 6, 0, &[], 200, 3);
        for v in 0..3u32 {
            let col: f64 = (0..2).map(|q| avg.get(q, v)).sum();
            assert!((col - 1.0).abs() < 1e-12, "user {v}: {col}");
            for q in 0..2 {
                let x = avg.get(q, v);
                assert!((0.0..=1.0).contains(&x));
            }
        }
    }

    #[test]
    fn expectation_is_deterministic_in_the_base_seed() {
        let m = VoterModel::new(graph(), initial()).unwrap();
        let a = expected_opinions(&m, 6, 0, &[], 64, 5);
        let b = expected_opinions(&m, 6, 0, &[], 64, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn seeding_raises_target_support_in_expectation() {
        let m = VoterModel::new(graph(), initial()).unwrap();
        let before = expected_opinions(&m, 6, 0, &[], 300, 1);
        let after = expected_opinions(&m, 6, 0, &[1], 300, 1);
        let sum_before: f64 = before.row(0).iter().sum();
        let sum_after: f64 = after.row(0).iter().sum();
        assert!(
            sum_after > sum_before,
            "seeding the hub must raise expected support: {sum_after} vs {sum_before}"
        );
    }
}
