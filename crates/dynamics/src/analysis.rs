//! Analysis utilities for dynamics runs: consensus detection, opinion
//! clusters (the bounded-confidence literature's headline observable),
//! polarization, and expected-support trajectories.

use crate::model::DynamicsModel;
use crate::montecarlo::expected_opinions;
use vom_diffusion::OpinionMatrix;
use vom_graph::{Candidate, Node};

/// Whether a snapshot is a (discrete) consensus: every user gives
/// opinion 1 to the same single candidate and 0 to all others.
pub fn is_unanimous(b: &OpinionMatrix) -> Option<Candidate> {
    let n = b.num_users();
    if n == 0 {
        return None;
    }
    let winner = (0..b.num_candidates()).find(|&q| b.get(q, 0) == 1.0)?;
    for v in 0..n as Node {
        for q in 0..b.num_candidates() {
            let expect = if q == winner { 1.0 } else { 0.0 };
            if b.get(q, v) != expect {
                return None;
            }
        }
    }
    Some(winner)
}

/// The first timestamp `t ≤ max_t` at which one realization of the model
/// reaches unanimity, together with the consensus candidate; `None` if
/// it never does within the window. Intended for the discrete models
/// (voter/majority/Sznajd), whose snapshots are one-hot.
pub fn consensus_time<M: DynamicsModel + ?Sized>(
    model: &M,
    max_t: usize,
    target: Candidate,
    seeds: &[Node],
    rng_seed: u64,
) -> Option<(usize, Candidate)> {
    for t in 0..=max_t {
        if let Some(winner) = is_unanimous(&model.opinions_at(t, target, seeds, rng_seed)) {
            return Some((t, winner));
        }
    }
    None
}

/// One opinion cluster: mean value and member count.
#[derive(Debug, Clone, PartialEq)]
pub struct Cluster {
    /// Mean opinion of the cluster's members.
    pub centroid: f64,
    /// Number of users in the cluster.
    pub size: usize,
}

/// Groups a continuous opinion row into clusters separated by gaps
/// larger than `gap`: sort the values and cut wherever two consecutive
/// opinions differ by more than `gap`. For Deffuant/HK runs with
/// confidence bound ε, `gap = ε` recovers the model's own notion of
/// mutually unreachable camps (the classic `⌊1/(2ε)⌋` cluster-count
/// observable).
pub fn opinion_clusters(row: &[f64], gap: f64) -> Vec<Cluster> {
    assert!(gap >= 0.0, "gap must be non-negative");
    if row.is_empty() {
        return Vec::new();
    }
    let mut sorted: Vec<f64> = row.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let mut clusters = Vec::new();
    let mut start = 0usize;
    for i in 1..=sorted.len() {
        if i == sorted.len() || sorted[i] - sorted[i - 1] > gap {
            let members = &sorted[start..i];
            clusters.push(Cluster {
                centroid: members.iter().sum::<f64>() / members.len() as f64,
                size: members.len(),
            });
            start = i;
        }
    }
    clusters
}

/// A variance-based polarization index in `[0, 1]`: the opinion variance
/// normalized by its maximum (1/4, attained by a half-at-0 / half-at-1
/// split). 0 means full agreement.
pub fn polarization_index(row: &[f64]) -> f64 {
    let n = row.len();
    if n == 0 {
        return 0.0;
    }
    let mean = row.iter().sum::<f64>() / n as f64;
    let var = row.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
    (var / 0.25).min(1.0)
}

/// Expected cumulative support for `target` at every timestamp in
/// `0..=horizon` — the dynamics counterpart of the paper's Figure 12
/// score-vs-t series. Stochastic models are averaged over `runs`
/// realizations per timestamp.
pub fn support_trajectory<M: DynamicsModel + ?Sized>(
    model: &M,
    horizon: usize,
    target: Candidate,
    seeds: &[Node],
    runs: usize,
    base_seed: u64,
) -> Vec<f64> {
    (0..=horizon)
        .map(|t| {
            expected_opinions(model, t, target, seeds, runs, base_seed)
                .row(target)
                .iter()
                .sum()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{HkModel, MajorityRule, VoterModel};
    use std::sync::Arc;
    use vom_graph::builder::graph_from_edges;

    #[test]
    fn unanimity_detection() {
        let yes = OpinionMatrix::from_rows(vec![vec![1.0, 1.0], vec![0.0, 0.0]]).unwrap();
        assert_eq!(is_unanimous(&yes), Some(0));
        let split = OpinionMatrix::from_rows(vec![vec![1.0, 0.0], vec![0.0, 1.0]]).unwrap();
        assert_eq!(is_unanimous(&split), None);
        let continuous = OpinionMatrix::from_rows(vec![vec![0.9, 0.9], vec![0.1, 0.1]]).unwrap();
        assert_eq!(is_unanimous(&continuous), None, "not one-hot");
        let empty = OpinionMatrix::from_rows(vec![vec![], vec![]]).unwrap();
        assert_eq!(is_unanimous(&empty), None);
    }

    #[test]
    fn seeded_star_reaches_consensus_quickly_under_majority_rule() {
        // Hub points at every leaf; seeding the hub converts all leaves
        // in one step.
        let edges: Vec<(u32, u32, f64)> = (1..6).map(|v| (0u32, v, 1.0)).collect();
        let g = Arc::new(graph_from_edges(6, &edges).unwrap());
        let initial = OpinionMatrix::from_rows(vec![vec![0.1; 6], vec![0.9; 6]]).unwrap();
        let m = MajorityRule::new(g, initial).unwrap();
        let (t, winner) = consensus_time(&m, 5, 0, &[0], 0).expect("consensus expected");
        assert_eq!(winner, 0);
        assert_eq!(t, 1);
    }

    #[test]
    fn voter_consensus_time_is_none_when_sources_disagree() {
        // Two sources with fixed opposite preferences feeding one node:
        // unanimity is impossible.
        let g = Arc::new(graph_from_edges(3, &[(0, 2, 0.5), (1, 2, 0.5)]).unwrap());
        let initial =
            OpinionMatrix::from_rows(vec![vec![0.9, 0.1, 0.5], vec![0.1, 0.9, 0.4]]).unwrap();
        let m = VoterModel::new(g, initial).unwrap();
        assert_eq!(consensus_time(&m, 30, 0, &[], 3), None);
    }

    #[test]
    fn cluster_extraction_splits_on_gaps() {
        let row = [0.02, 0.05, 0.1, 0.85, 0.9, 0.95];
        let clusters = opinion_clusters(&row, 0.2);
        assert_eq!(clusters.len(), 2);
        assert_eq!(clusters[0].size, 3);
        assert_eq!(clusters[1].size, 3);
        assert!((clusters[0].centroid - 0.17 / 3.0).abs() < 1e-12);
        assert!((clusters[1].centroid - 0.9).abs() < 1e-12);
        // A huge gap threshold merges everything.
        assert_eq!(opinion_clusters(&row, 1.0).len(), 1);
        assert!(opinion_clusters(&[], 0.1).is_empty());
    }

    #[test]
    fn hk_cluster_count_tracks_the_confidence_bound() {
        // Fully connected 6-node graph, opinions spread over [0, 1]:
        // ε = 1 collapses to one cluster; ε = 0.15 preserves the two
        // extreme camps.
        let mut edges = Vec::new();
        for u in 0..6u32 {
            for v in 0..6u32 {
                if u != v {
                    edges.push((u, v, 0.2));
                }
            }
        }
        let g = Arc::new(graph_from_edges(6, &edges).unwrap());
        let initial = OpinionMatrix::from_rows(vec![vec![0.0, 0.05, 0.1, 0.9, 0.95, 1.0]]).unwrap();
        let wide = HkModel::new(g.clone(), initial.clone(), 1.0).unwrap();
        let snap = crate::model::DynamicsModel::opinions_at(&wide, 20, 0, &[], 0);
        assert_eq!(opinion_clusters(snap.row(0), 0.05).len(), 1);

        let tight = HkModel::new(g, initial, 0.15).unwrap();
        let snap = crate::model::DynamicsModel::opinions_at(&tight, 20, 0, &[], 0);
        let clusters = opinion_clusters(snap.row(0), 0.15);
        assert_eq!(clusters.len(), 2, "clusters: {clusters:?}");
        assert_eq!(clusters[0].size, 3);
        assert_eq!(clusters[1].size, 3);
    }

    #[test]
    fn polarization_index_extremes() {
        assert_eq!(polarization_index(&[0.5; 8]), 0.0);
        assert!((polarization_index(&[0.0, 0.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert_eq!(polarization_index(&[]), 0.0);
        let mild = polarization_index(&[0.4, 0.5, 0.6]);
        assert!(mild > 0.0 && mild < 0.2);
    }

    #[test]
    fn trajectory_starts_at_initial_support_and_is_finite() {
        let g = Arc::new(graph_from_edges(3, &[(0, 1, 1.0), (1, 2, 1.0)]).unwrap());
        let initial =
            OpinionMatrix::from_rows(vec![vec![0.9, 0.1, 0.1], vec![0.1, 0.9, 0.9]]).unwrap();
        let m = VoterModel::new(g, initial).unwrap();
        let traj = support_trajectory(&m, 6, 0, &[0], 32, 9);
        assert_eq!(traj.len(), 7);
        // t = 0: exactly the (pinned-adjusted) initial one-hot support.
        assert_eq!(traj[0], 1.0);
        for (t, s) in traj.iter().enumerate() {
            assert!((0.0..=3.0).contains(s), "t = {t}: {s}");
        }
    }
}
