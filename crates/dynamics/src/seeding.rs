//! Greedy seed selection under *any* dynamics model and *any* voting
//! rule — the extension counterpart of the paper's Algorithm 1.
//!
//! Every greedy iteration evaluates each remaining candidate seed by
//! simulating the model to the horizon (Monte-Carlo averaged for
//! stochastic models) and scoring the expected snapshot with the chosen
//! [`OpinionScore`]. Cost per iteration is `O(n · runs · cost(model))`,
//! so this is intended for the moderate instance sizes of the dynamics
//! comparison experiments, not the paper-scale sweeps (which use the
//! RW/RS estimators specialized to FJ).

use crate::model::DynamicsModel;
use crate::montecarlo::expected_opinions;
use rayon::prelude::*;
use vom_graph::{Candidate, Node};
use vom_voting::OpinionScore;

/// Greedy seed selection harness over a dynamics model.
#[derive(Debug, Clone, Copy)]
pub struct DynamicsSeeder<'a, M: DynamicsModel + ?Sized> {
    model: &'a M,
    /// Time horizon `t`.
    pub horizon: usize,
    /// Target candidate `c_q`.
    pub target: Candidate,
    /// Monte-Carlo realizations per evaluation (ignored for
    /// deterministic models).
    pub runs: usize,
    /// Base RNG seed for reproducibility.
    pub base_seed: u64,
}

impl<'a, M: DynamicsModel + ?Sized> DynamicsSeeder<'a, M> {
    /// Creates a seeder; `runs` is clamped to at least 1.
    pub fn new(
        model: &'a M,
        horizon: usize,
        target: Candidate,
        runs: usize,
        base_seed: u64,
    ) -> Self {
        DynamicsSeeder {
            model,
            horizon,
            target,
            runs: runs.max(1),
            base_seed,
        }
    }

    /// Expected objective value of a seed set.
    pub fn evaluate<S: OpinionScore + ?Sized>(&self, seeds: &[Node], rule: &S) -> f64 {
        let b = expected_opinions(
            self.model,
            self.horizon,
            self.target,
            seeds,
            self.runs,
            self.base_seed,
        );
        rule.evaluate(&b, self.target)
    }

    /// Whether `seeds` make the target the **strict** expected winner
    /// under `rule` at the horizon.
    pub fn wins<S: OpinionScore + ?Sized>(&self, seeds: &[Node], rule: &S) -> bool {
        let b = expected_opinions(
            self.model,
            self.horizon,
            self.target,
            seeds,
            self.runs,
            self.base_seed,
        );
        let mine = rule.evaluate(&b, self.target);
        (0..self.model.num_candidates())
            .filter(|&x| x != self.target)
            .all(|x| rule.evaluate(&b, x) < mine)
    }

    /// The minimum budget whose greedy seed set makes the target the
    /// strict expected winner (FJ-Vote-Win, Problem 2, under arbitrary
    /// dynamics): doubling to find a winning budget, then binary search.
    /// Returns the budget and its seed set, or `None` if seeding every
    /// node still does not win.
    pub fn min_seeds_to_win<S: OpinionScore + ?Sized>(
        &self,
        rule: &S,
    ) -> Option<(usize, Vec<Node>)> {
        if self.wins(&[], rule) {
            return Some((0, Vec::new()));
        }
        let n = self.model.num_nodes();
        let mut lo = 0usize;
        let mut k = 1usize;
        let mut best = loop {
            let probe = k.min(n);
            let seeds = self.greedy(probe, rule);
            if self.wins(&seeds, rule) {
                break (probe, seeds);
            }
            lo = probe;
            if probe == n {
                return None;
            }
            k *= 2;
        };
        let mut hi = best.0;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            let seeds = self.greedy(mid, rule);
            if self.wins(&seeds, rule) {
                hi = mid;
                best = (mid, seeds);
            } else {
                lo = mid;
            }
        }
        Some(best)
    }

    /// Greedy selection of `k` seeds maximizing the expected rule value
    /// (ties: larger expected cumulative target support, then smaller
    /// node id). Returns `min(k, n)` distinct seeds in selection order.
    ///
    /// Candidate evaluations run on the parallel pool; the inner
    /// Monte-Carlo loop of [`expected_opinions`] then executes inline on
    /// each worker (the pool never nests), and every evaluation is
    /// seeded per candidate, so selections are identical at any
    /// `VOM_THREADS` setting.
    pub fn greedy<S: OpinionScore + ?Sized>(&self, k: usize, rule: &S) -> Vec<Node> {
        let n = self.model.num_nodes();
        let mut is_seed = vec![false; n];
        let mut seeds: Vec<Node> = Vec::with_capacity(k);
        for _ in 0..k.min(n) {
            let evals: Vec<(Node, f64, f64)> = (0..n as Node)
                .into_par_iter()
                .filter(|&v| !is_seed[v as usize])
                .map(|v| {
                    let mut trial = seeds.clone();
                    trial.push(v);
                    let b = expected_opinions(
                        self.model,
                        self.horizon,
                        self.target,
                        &trial,
                        self.runs,
                        self.base_seed,
                    );
                    let score = rule.evaluate(&b, self.target);
                    let cum: f64 = b.row(self.target).iter().sum();
                    (v, score, cum)
                })
                .collect();
            let Some(&(best, _, _)) = evals.iter().max_by(|a, b| {
                // `total_cmp` keeps the argmax total (a NaN score orders
                // deterministically instead of panicking); identical to
                // the tuple `partial_cmp` on every finite trajectory.
                a.1.total_cmp(&b.1)
                    .then_with(|| a.2.total_cmp(&b.2))
                    .then_with(|| b.0.cmp(&a.0))
            }) else {
                break;
            };
            is_seed[best as usize] = true;
            seeds.push(best);
        }
        seeds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FjDynamics, MajorityRule, VoterModel};
    use std::sync::Arc;
    use vom_diffusion::{CandidateData, Instance, OpinionMatrix};
    use vom_graph::builder::graph_from_edges;
    use vom_voting::{ExtendedRule, ScoringFunction};

    fn running_example_instance() -> Arc<Instance> {
        let g = Arc::new(graph_from_edges(4, &[(0, 2, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap());
        let d = vec![0.0, 0.0, 0.5, 0.5];
        let c1 = CandidateData::new(g.clone(), vec![0.40, 0.80, 0.60, 0.90], d.clone()).unwrap();
        let c2 = CandidateData::new(g, vec![0.35, 0.75, 1.00, 0.80], d).unwrap();
        Arc::new(Instance::from_candidates(vec![c1, c2]).unwrap())
    }

    #[test]
    fn fj_adapter_greedy_reproduces_table_1_plurality_seed() {
        // Table I: user 3 (our node 2) is the best single plurality
        // seed; the seeder on the exact FJ adapter must find it.
        let model = FjDynamics::new(running_example_instance());
        let seeder = DynamicsSeeder::new(&model, 1, 0, 1, 0);
        let seeds = seeder.greedy(1, &ScoringFunction::Plurality);
        assert_eq!(seeds, vec![2]);
    }

    #[test]
    fn fj_adapter_greedy_reproduces_table_1_cumulative_seed() {
        let model = FjDynamics::new(running_example_instance());
        let seeder = DynamicsSeeder::new(&model, 1, 0, 1, 0);
        let seeds = seeder.greedy(1, &ScoringFunction::Cumulative);
        assert_eq!(seeds, vec![0], "Table I: node 1 (our 0) wins cumulative");
    }

    #[test]
    fn voter_greedy_prefers_the_influential_hub() {
        // Star: node 0 influences everyone; the best voter-model seed
        // for expected support must be the hub.
        let g = Arc::new(
            graph_from_edges(5, &[(0, 1, 1.0), (0, 2, 1.0), (0, 3, 1.0), (0, 4, 1.0)]).unwrap(),
        );
        let initial = OpinionMatrix::from_rows(vec![vec![0.2; 5], vec![0.8; 5]]).unwrap();
        let model = VoterModel::new(g, initial).unwrap();
        let seeder = DynamicsSeeder::new(&model, 3, 0, 200, 9);
        let seeds = seeder.greedy(1, &ScoringFunction::Cumulative);
        assert_eq!(seeds, vec![0]);
    }

    #[test]
    fn greedy_objective_is_non_decreasing_along_the_selection() {
        let g = Arc::new(graph_from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap());
        let initial =
            OpinionMatrix::from_rows(vec![vec![0.3, 0.4, 0.2, 0.1], vec![0.7, 0.6, 0.8, 0.9]])
                .unwrap();
        let model = MajorityRule::new(g, initial).unwrap();
        let seeder = DynamicsSeeder::new(&model, 2, 0, 1, 0);
        let rule = ExtendedRule::Borda;
        let seeds = seeder.greedy(3, &rule);
        let mut prev = seeder.evaluate(&[], &rule);
        for i in 1..=seeds.len() {
            let cur = seeder.evaluate(&seeds[..i], &rule);
            assert!(cur >= prev, "step {i}: {cur} < {prev}");
            prev = cur;
        }
    }

    #[test]
    fn min_seeds_to_win_on_the_running_example() {
        // Plurality on the running example: seedless is a 2–2 tie, one
        // seed (node 2) flips all four users — matches the exact
        // win-search in vom-core.
        let model = FjDynamics::new(running_example_instance());
        let seeder = DynamicsSeeder::new(&model, 1, 0, 1, 0);
        let rule = ScoringFunction::Plurality;
        assert!(!seeder.wins(&[], &rule));
        let (k, seeds) = seeder.min_seeds_to_win(&rule).expect("winnable");
        assert_eq!(k, 1);
        assert!(seeder.wins(&seeds, &rule));
    }

    #[test]
    fn min_seeds_to_win_zero_when_already_winning() {
        // Candidate 1 already wins the cumulative score seedlessly.
        let model = FjDynamics::new(running_example_instance());
        let seeder = DynamicsSeeder::new(&model, 1, 1, 1, 0);
        let (k, seeds) = seeder
            .min_seeds_to_win(&ScoringFunction::Cumulative)
            .expect("already winning");
        assert_eq!((k, seeds.len()), (0, 0));
    }

    #[test]
    fn min_seeds_to_win_under_the_voter_model() {
        // Star hub: the target trails 0-vs-5 but one pinned hub converts
        // every leaf within two steps.
        let g = Arc::new(
            graph_from_edges(5, &[(0, 1, 1.0), (0, 2, 1.0), (0, 3, 1.0), (0, 4, 1.0)]).unwrap(),
        );
        let initial = OpinionMatrix::from_rows(vec![vec![0.2; 5], vec![0.8; 5]]).unwrap();
        let model = VoterModel::new(g, initial).unwrap();
        let seeder = DynamicsSeeder::new(&model, 3, 0, 64, 5);
        let (k, seeds) = seeder
            .min_seeds_to_win(&ScoringFunction::Plurality)
            .expect("winnable via the hub");
        assert_eq!(k, 1);
        assert_eq!(seeds, vec![0]);
    }

    #[test]
    fn budget_is_capped_at_n() {
        let model = FjDynamics::new(running_example_instance());
        let seeder = DynamicsSeeder::new(&model, 1, 0, 1, 0);
        let seeds = seeder.greedy(10, &ScoringFunction::Cumulative);
        assert_eq!(seeds.len(), 4);
        let mut sorted = seeds;
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }
}
