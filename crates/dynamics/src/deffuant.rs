//! The **Deffuant–Weisbuch** bounded-confidence model (Deffuant et al.
//! 2000; §VII of the paper), run per candidate over the social graph.
//!
//! Opinions stay real-valued in `[0, 1]` and, as in the paper's FJ
//! setting, each candidate's opinions diffuse independently. One
//! timestamp performs `m` pairwise encounters (one per edge in
//! expectation): sample an edge `(u, v)` uniformly; if the two users'
//! opinions about a candidate differ by at most the confidence bound
//! `ε`, both move toward each other by a fraction `µ` of the gap.
//! Users outside each other's confidence interval ignore each other —
//! the mechanism that lets Deffuant dynamics sustain opinion clusters
//! where DeGroot-style averaging would force consensus.
//!
//! Seeds are pinned at opinion 1 for the target candidate and never
//! move, but still pull confidence-compatible neighbors upward.

use crate::discrete::validate_config;
use crate::error::DynamicsError;
use crate::model::{seed_mask, DynamicsModel};
use crate::{mix_seed, Result};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use vom_diffusion::OpinionMatrix;
use vom_graph::{Candidate, Node, SocialGraph};

/// Deffuant-model configuration.
#[derive(Debug, Clone)]
pub struct DeffuantModel {
    graph: Arc<SocialGraph>,
    initial: OpinionMatrix,
    epsilon: f64,
    mu: f64,
    edges: Vec<(Node, Node)>,
}

impl DeffuantModel {
    /// Builds a Deffuant model with confidence bound `epsilon ∈ [0, 1]`
    /// and convergence rate `mu ∈ (0, 0.5]` (µ = 0.5 means both meet in
    /// the middle; larger values would overshoot).
    pub fn new(
        graph: Arc<SocialGraph>,
        initial: OpinionMatrix,
        epsilon: f64,
        mu: f64,
    ) -> Result<Self> {
        validate_config(graph.num_nodes(), &initial)?;
        if !(0.0..=1.0).contains(&epsilon) {
            return Err(DynamicsError::BadParameter {
                name: "epsilon",
                value: epsilon,
                constraint: "0 <= epsilon <= 1",
            });
        }
        if !(mu > 0.0 && mu <= 0.5) {
            return Err(DynamicsError::BadParameter {
                name: "mu",
                value: mu,
                constraint: "0 < mu <= 0.5",
            });
        }
        let mut edges = Vec::with_capacity(graph.num_edges());
        for u in 0..graph.num_nodes() as Node {
            for v in graph.out_neighbors(u) {
                edges.push((u, *v));
            }
        }
        Ok(DeffuantModel {
            graph,
            initial,
            epsilon,
            mu,
            edges,
        })
    }

    /// The confidence bound ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The convergence rate µ.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Evolves one candidate's opinion row for `horizon` timestamps.
    /// `pinned` users never move (used for the target's seeds; empty for
    /// other candidates).
    fn evolve_row(&self, row: &mut [f64], pinned: &[bool], horizon: usize, stream: u64) {
        if self.edges.is_empty() {
            return;
        }
        for step in 0..horizon {
            let mut rng = SmallRng::seed_from_u64(mix_seed(stream, step as u64));
            for _ in 0..self.edges.len() {
                let (u, v) = self.edges[rng.gen_range(0..self.edges.len())];
                let (u, v) = (u as usize, v as usize);
                let xu = row[u];
                let xv = row[v];
                if (xu - xv).abs() > self.epsilon {
                    continue;
                }
                if !pinned[u] {
                    row[u] = xu + self.mu * (xv - xu);
                }
                if !pinned[v] {
                    row[v] = xv + self.mu * (xu - xv);
                }
            }
        }
    }
}

impl DynamicsModel for DeffuantModel {
    fn name(&self) -> &'static str {
        "deffuant"
    }

    fn is_stochastic(&self) -> bool {
        true
    }

    fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    fn num_candidates(&self) -> usize {
        self.initial.num_candidates()
    }

    fn opinions_at(
        &self,
        horizon: usize,
        target: Candidate,
        seeds: &[Node],
        rng_seed: u64,
    ) -> OpinionMatrix {
        let n = self.graph.num_nodes();
        let r = self.initial.num_candidates();
        let mut b = self.initial.clone();
        let pinned = seed_mask(n, seeds);
        let no_pins = vec![false; n];
        for q in 0..r {
            let row = b.row_mut(q);
            let pins = if q == target {
                for (v, &p) in pinned.iter().enumerate() {
                    if p {
                        row[v] = 1.0;
                    }
                }
                &pinned
            } else {
                &no_pins
            };
            self.evolve_row(row, pins, horizon, mix_seed(rng_seed, q as u64));
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vom_graph::builder::graph_from_edges;

    fn pair() -> Arc<SocialGraph> {
        Arc::new(graph_from_edges(2, &[(0, 1, 1.0), (1, 0, 1.0)]).unwrap())
    }

    #[test]
    fn rejects_bad_parameters() {
        let initial = OpinionMatrix::from_rows(vec![vec![0.5, 0.5]]).unwrap();
        assert!(matches!(
            DeffuantModel::new(pair(), initial.clone(), 1.5, 0.3),
            Err(DynamicsError::BadParameter {
                name: "epsilon",
                ..
            })
        ));
        assert!(matches!(
            DeffuantModel::new(pair(), initial.clone(), 0.5, 0.0),
            Err(DynamicsError::BadParameter { name: "mu", .. })
        ));
        assert!(matches!(
            DeffuantModel::new(pair(), initial, 0.5, 0.7),
            Err(DynamicsError::BadParameter { name: "mu", .. })
        ));
    }

    #[test]
    fn compatible_pair_converges_to_the_midpoint() {
        let initial = OpinionMatrix::from_rows(vec![vec![0.2, 0.6]]).unwrap();
        let m = DeffuantModel::new(pair(), initial, 1.0, 0.5).unwrap();
        let b = m.opinions_at(1, 0, &[], 1);
        // µ = 0.5: the very first encounter lands both on 0.4, where
        // they stay for the rest of the sweep.
        assert!((b.get(0, 0) - 0.4).abs() < 1e-12);
        assert!((b.get(0, 1) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn incompatible_pair_never_interacts() {
        let initial = OpinionMatrix::from_rows(vec![vec![0.1, 0.9]]).unwrap();
        let m = DeffuantModel::new(pair(), initial, 0.3, 0.5).unwrap();
        let b = m.opinions_at(20, 0, &[], 5);
        assert_eq!(b.get(0, 0), 0.1);
        assert_eq!(b.get(0, 1), 0.9);
    }

    #[test]
    fn opinions_stay_in_unit_interval() {
        let g = Arc::new(
            graph_from_edges(3, &[(0, 1, 0.5), (2, 1, 0.5), (1, 0, 1.0), (1, 2, 1.0)]).unwrap(),
        );
        let initial =
            OpinionMatrix::from_rows(vec![vec![0.0, 0.5, 1.0], vec![1.0, 0.0, 0.3]]).unwrap();
        let m = DeffuantModel::new(g, initial, 1.0, 0.5).unwrap();
        for seed in 0..10 {
            let b = m.opinions_at(15, 0, &[], seed);
            for q in 0..2 {
                for v in 0..3u32 {
                    let x = b.get(q, v);
                    assert!((0.0..=1.0).contains(&x), "b[{q}][{v}] = {x}");
                }
            }
        }
    }

    #[test]
    fn seeds_stay_at_one_and_pull_neighbors_up() {
        let initial = OpinionMatrix::from_rows(vec![vec![0.5, 0.5]]).unwrap();
        let m = DeffuantModel::new(pair(), initial, 1.0, 0.5).unwrap();
        let b = m.opinions_at(10, 0, &[0], 2);
        assert_eq!(b.get(0, 0), 1.0, "seed pinned");
        assert!(b.get(0, 1) > 0.9, "neighbor dragged toward the seed");
    }

    #[test]
    fn non_target_candidates_ignore_the_seeds() {
        let initial = OpinionMatrix::from_rows(vec![vec![0.5, 0.5], vec![0.4, 0.4]]).unwrap();
        let m = DeffuantModel::new(pair(), initial, 1.0, 0.5).unwrap();
        let b = m.opinions_at(5, 0, &[0], 3);
        // Candidate 1's row evolves without pins; both users already
        // agree at 0.4, so nothing moves.
        assert_eq!(b.get(1, 0), 0.4);
        assert_eq!(b.get(1, 1), 0.4);
    }

    #[test]
    fn deterministic_given_the_same_seed() {
        let initial = OpinionMatrix::from_rows(vec![vec![0.1, 0.8], vec![0.6, 0.2]]).unwrap();
        let m = DeffuantModel::new(pair(), initial, 0.8, 0.25).unwrap();
        assert_eq!(m.opinions_at(7, 0, &[], 11), m.opinions_at(7, 0, &[], 11));
    }
}
