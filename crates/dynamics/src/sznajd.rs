//! The **Sznajd model** generalized to directed graphs (Sznajd-Weron &
//! Sznajd 2000; §VII of the paper).
//!
//! "United we stand, divided we fall": a *pair* of agreeing users is
//! socially convincing. Each timestamp performs `m` micro-updates (one
//! per edge, so a timestamp is one expected full sweep): sample an edge
//! `(u, v)` uniformly; if `u` and `v` currently prefer the same
//! candidate, every out-neighbor of `u` and of `v` (except seeds) adopts
//! that candidate. Disagreeing pairs do nothing — the original model's
//! antiferromagnetic variant is deliberately omitted, since opinion
//! *adoption* is what the maximization problem manipulates.

use crate::discrete::{initial_states, states_to_matrix, validate_config, State};
use crate::model::{seed_mask, DynamicsModel};
use crate::{mix_seed, Result};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use vom_diffusion::OpinionMatrix;
use vom_graph::{Candidate, Node, SocialGraph};

/// Sznajd-model configuration over a fixed graph and initial opinions.
#[derive(Debug, Clone)]
pub struct SznajdModel {
    graph: Arc<SocialGraph>,
    initial: OpinionMatrix,
    /// Flattened edge list `(u, v)` for uniform edge sampling.
    edges: Vec<(Node, Node)>,
}

impl SznajdModel {
    /// Builds a Sznajd model; initial preferences are the per-user
    /// argmax of `initial`.
    pub fn new(graph: Arc<SocialGraph>, initial: OpinionMatrix) -> Result<Self> {
        validate_config(graph.num_nodes(), &initial)?;
        let mut edges = Vec::with_capacity(graph.num_edges());
        for u in 0..graph.num_nodes() as Node {
            for v in graph.out_neighbors(u) {
                edges.push((u, *v));
            }
        }
        Ok(SznajdModel {
            graph,
            initial,
            edges,
        })
    }

    /// Runs the chain and returns the final discrete states.
    pub fn states_at(
        &self,
        horizon: usize,
        target: Candidate,
        seeds: &[Node],
        rng_seed: u64,
    ) -> Vec<State> {
        let n = self.graph.num_nodes();
        let mut states = initial_states(&self.initial);
        let pinned = seed_mask(n, seeds);
        for (v, &is_pinned) in pinned.iter().enumerate() {
            if is_pinned {
                states[v] = target as State;
            }
        }
        if self.edges.is_empty() {
            return states;
        }
        for step in 0..horizon {
            let mut rng = SmallRng::seed_from_u64(mix_seed(rng_seed, step as u64));
            for _ in 0..self.edges.len() {
                let (u, v) = self.edges[rng.gen_range(0..self.edges.len())];
                let su = states[u as usize];
                if su != states[v as usize] {
                    continue;
                }
                for &w in self.graph.out_neighbors(u) {
                    if !pinned[w as usize] {
                        states[w as usize] = su;
                    }
                }
                for &w in self.graph.out_neighbors(v) {
                    if !pinned[w as usize] {
                        states[w as usize] = su;
                    }
                }
            }
        }
        states
    }
}

impl DynamicsModel for SznajdModel {
    fn name(&self) -> &'static str {
        "sznajd"
    }

    fn is_stochastic(&self) -> bool {
        true
    }

    fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    fn num_candidates(&self) -> usize {
        self.initial.num_candidates()
    }

    fn opinions_at(
        &self,
        horizon: usize,
        target: Candidate,
        seeds: &[Node],
        rng_seed: u64,
    ) -> OpinionMatrix {
        let states = self.states_at(horizon, target, seeds, rng_seed);
        states_to_matrix(&states, self.initial.num_candidates())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vom_graph::builder::graph_from_edges;

    /// Chain 0 → 1 → 2 → 3 (each node also feeding back so pairs exist).
    fn chain() -> Arc<SocialGraph> {
        Arc::new(
            graph_from_edges(
                4,
                &[
                    (0, 1, 0.5),
                    (2, 1, 0.5),
                    (1, 2, 0.5),
                    (3, 2, 0.5),
                    (2, 3, 1.0),
                    (1, 0, 1.0),
                ],
            )
            .unwrap(),
        )
    }

    fn polarized_initial() -> OpinionMatrix {
        OpinionMatrix::from_rows(vec![vec![0.9, 0.8, 0.2, 0.1], vec![0.1, 0.2, 0.8, 0.9]]).unwrap()
    }

    #[test]
    fn unanimity_is_absorbing() {
        let initial = OpinionMatrix::from_rows(vec![vec![0.2; 4], vec![0.8; 4]]).unwrap();
        let m = SznajdModel::new(chain(), initial).unwrap();
        for seed in 0..20 {
            assert_eq!(m.states_at(10, 0, &[], seed), vec![1, 1, 1, 1]);
        }
    }

    #[test]
    fn seeds_resist_conversion() {
        let m = SznajdModel::new(chain(), polarized_initial()).unwrap();
        for seed in 0..30 {
            let states = m.states_at(10, 1, &[0], seed);
            assert_eq!(states[0], 1, "the seed is pinned to the target");
        }
    }

    #[test]
    fn agreeing_pair_converts_out_neighbors() {
        // Nodes 0 and 1 agree on candidate 0; their out-neighbors are
        // {1, 0, 2}. After enough sweeps the agreement front reaches
        // node 3 through the 1–2 and 2–3 pairs with high probability;
        // at minimum, no realization may invent a third candidate.
        let m = SznajdModel::new(chain(), polarized_initial()).unwrap();
        let mut converted = 0;
        for seed in 0..50 {
            let states = m.states_at(20, 0, &[], seed);
            assert!(states.iter().all(|&s| s < 2));
            if states == vec![0, 0, 0, 0] {
                converted += 1;
            }
        }
        assert!(converted > 0, "consensus on candidate 0 is reachable");
    }

    #[test]
    fn empty_graph_keeps_initial_states() {
        let g = Arc::new(graph_from_edges(3, &[]).unwrap());
        let initial =
            OpinionMatrix::from_rows(vec![vec![0.9, 0.1, 0.5], vec![0.1, 0.9, 0.4]]).unwrap();
        let m = SznajdModel::new(g, initial).unwrap();
        assert_eq!(m.states_at(10, 0, &[], 3), vec![0, 1, 0]);
    }

    #[test]
    fn deterministic_given_the_same_seed() {
        let m = SznajdModel::new(chain(), polarized_initial()).unwrap();
        assert_eq!(m.states_at(10, 0, &[], 42), m.states_at(10, 0, &[], 42));
    }
}
