//! Integration pin of the `--save-index`/`--load-index` bench path:
//!
//! * a saved sweep-k run and a loaded one select byte-identical seeds
//!   (equal digests) without re-simulating any walk arena or sketch set
//!   (`run_workload` itself errors if the `BuildCounters` delta of an
//!   all-loaded pass is nonzero);
//! * counter hygiene — two passes in one process account their
//!   query-phase `SolverCounters` as deltas, so the reported counters
//!   are bitwise equal run over run;
//! * a corrupted snapshot falls back to a fresh build (with a warning,
//!   not an error) and still produces the same digest.
//!
//! Everything lives in **one** test function: the build/solver counters
//! are process-global, so concurrent sibling tests would race them.

use vom_bench::bench_parallel::sweep_k_pass;
use vom_bench::ExpConfig;

#[test]
fn save_load_digests_match_counters_are_hygienic_and_corruption_falls_back() {
    // A reduced-scale configuration so the debug-mode sweep stays fast;
    // the digest is compared run-over-run, not against a committed pin.
    let base = ExpConfig {
        scale: 0.0005,
        ..ExpConfig::default()
    };
    let dir = std::env::temp_dir().join(format!("vom-bench-index-io-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    // Build + save.
    let save_cfg = ExpConfig {
        save_index: Some(dir.clone()),
        ..base.clone()
    };
    let (digest_built, _) = sweep_k_pass(&save_cfg).expect("build+save pass");
    let snapshots: Vec<_> = std::fs::read_dir(&dir)
        .expect("snapshot dir exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "vpi"))
        .collect();
    assert!(!snapshots.is_empty(), "the save pass wrote snapshots");

    // Load: byte-identical selections, no artifact re-simulation (the
    // pass itself fails if the BuildCounters delta is nonzero).
    let load_cfg = ExpConfig {
        load_index: Some(dir.clone()),
        ..base.clone()
    };
    let (digest_loaded, counters_loaded) = sweep_k_pass(&load_cfg).expect("load pass");
    assert_eq!(digest_built, digest_loaded, "loaded indexes diverged");

    // Counter hygiene: delta accounting makes the reported query-phase
    // solver counters of identical runs bitwise equal, however many
    // runs (and however much global counter growth) preceded them.
    let (digest_again, counters_again) = sweep_k_pass(&load_cfg).expect("second load pass");
    assert_eq!(digest_loaded, digest_again);
    assert_eq!(
        counters_loaded, counters_again,
        "query-phase solver counters must not leak across runs"
    );

    // Corrupt one snapshot: the pass warns, rebuilds that index, and
    // still lands on the same digest.
    let victim = &snapshots[0];
    let mut bytes = std::fs::read(victim).expect("snapshot readable");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(victim, &bytes).expect("snapshot writable");
    let (digest_fallback, _) = sweep_k_pass(&load_cfg).expect("fallback pass");
    assert_eq!(
        digest_built, digest_fallback,
        "rebuild fallback diverged from the built selections"
    );

    std::fs::remove_dir_all(&dir).ok();
}
