//! Build-once guarantees for the prepared experiments: `fig2`, the
//! `sweep-k` family, and the `theta` calibration must build each RW/RS
//! estimator artifact exactly once per (method, dataset) — not once per
//! table cell — asserted against the process-wide build counters.
//!
//! All assertions live in one `#[test]` because the counters are global
//! to the process and the default test runner is multi-threaded.

use vom_bench::experiments::{fig2, sweep_k, theta};
use vom_bench::ExpConfig;
use vom_core::BuildCounters;
use vom_datasets::{twitter_mask_like, ReplicaParams};

fn cfg() -> ExpConfig {
    ExpConfig {
        scale: 0.0001,
        seed: 77,
        quick: true,
        out_dir: std::env::temp_dir().join("vom-build-counter-test"),
        ..ExpConfig::default()
    }
}

#[test]
fn prepared_experiments_build_artifacts_once_per_method_and_dataset() {
    let cfg = cfg();

    // fig2: RS on two datasets, three budgets each. One sketch per
    // dataset — not one per (dataset, k) cell.
    let before = BuildCounters::snapshot();
    fig2::run(&cfg).expect("fig2 runs");
    let delta = BuildCounters::snapshot().since(before);
    assert_eq!(delta.rs_sketches, 2, "fig2: one sketch set per dataset");
    assert_eq!(delta.rw_arenas, 0, "fig2 never touches RW");

    // sweep-k (Figure 6, plurality): RW and RS each prepare once per
    // dataset; the k sweep queries the shared artifacts.
    let before = BuildCounters::snapshot();
    sweep_k::run_plurality(&cfg).expect("fig6 runs");
    let delta = BuildCounters::snapshot().since(before);
    assert_eq!(delta.rw_arenas, 3, "fig6: one RW arena per dataset");
    assert_eq!(delta.rs_sketches, 3, "fig6: one sketch set per dataset");

    // theta (Figure 13): the sketch artifact depends on (t, θ) but not on
    // k, so the k-variants share builds — exactly one per (horizon
    // group, θ).
    let params = ReplicaParams {
        scale: cfg.scale,
        seed: cfg.seed,
        mu: 10.0,
    };
    let n = twitter_mask_like(&params).instance.num_nodes();
    let theta_count = theta::theta_sweep(n, cfg.quick).len();
    let base_k = cfg.default_k().min(n / 10); // clamped as fig13 does
    let horizon_groups = theta::distinct_horizons(&theta::variants(base_k)).len();
    let before = BuildCounters::snapshot();
    theta::run_plurality(&cfg).expect("fig13 runs");
    let delta = BuildCounters::snapshot().since(before);
    assert_eq!(
        delta.rs_sketches,
        horizon_groups * theta_count,
        "fig13: one sketch set per (horizon, θ), shared across k-variants"
    );
    assert_eq!(delta.rw_arenas, 0, "fig13 never touches RW");
}
