//! `BenchError` propagation: selection failures travel from the engine
//! layer through the harness as `Err` values — never panics — and the
//! `repro` binary turns them into a non-zero exit with a readable
//! message.

use std::process::Command;
use std::sync::Arc;
use vom_bench::{
    bench_parallel, evaluate_baseline, AnyMethod, BenchError, ExpConfig, PreparedMethod,
};
use vom_core::{CoreError, Problem};
use vom_diffusion::{Instance, OpinionMatrix};
use vom_graph::builder::graph_from_edges;
use vom_voting::ScoringFunction;

fn running_example() -> Instance {
    let g = Arc::new(graph_from_edges(4, &[(0, 2, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap());
    let b = OpinionMatrix::from_rows(vec![
        vec![0.40, 0.80, 0.60, 0.90],
        vec![0.35, 0.75, 1.00, 0.80],
    ])
    .unwrap();
    Instance::shared(g, b, vec![0.0, 0.0, 0.5, 0.5]).unwrap()
}

#[test]
fn evaluate_baseline_propagates_invalid_rules_as_err() {
    let inst = running_example();
    // An approval depth no 2-candidate instance can satisfy; built via
    // the struct literal because `Problem::new` (rightly) rejects it.
    let spec = Problem {
        instance: &inst,
        target: 0,
        k: 1,
        horizon: 1,
        score: ScoringFunction::PApproval { p: 9 },
    };
    let err = evaluate_baseline(&spec, AnyMethod::Dm, 1).expect_err("p=9 of r=2 cannot select");
    let msg = err.to_string();
    assert!(matches!(err, BenchError::Core(_)), "{msg}");
    assert!(msg.contains("selection failed"), "{msg}");
}

#[test]
fn over_budget_queries_return_err_not_panic() {
    let inst = running_example();
    let spec = Problem::new(&inst, 0, 1, 1, ScoringFunction::Cumulative).unwrap();
    let mut prepared = PreparedMethod::new(&spec, AnyMethod::Rs, 5).unwrap();
    let err = prepared
        .evaluate(3)
        .expect_err("budget 3 exceeds prepared 1");
    let msg = err.to_string();
    assert!(
        matches!(
            err,
            BenchError::Core(CoreError::BudgetExceedsPrepared { k: 3, budget: 1 })
        ),
        "{msg}"
    );
    assert!(msg.contains("selection failed"), "{msg}");
    assert!(msg.contains('3') && msg.contains('1'), "{msg}");
}

#[test]
fn bench_harness_rejects_unsatisfiable_budgets_with_err() {
    let cfg = ExpConfig {
        scale: 0.0002,
        seed: 1,
        k_override: Some(1_000_000),
        ..ExpConfig::default()
    };
    let err = bench_parallel::run(&cfg).expect_err("a million seeds cannot fit a tiny replica");
    let msg = err.to_string();
    assert!(
        matches!(err, BenchError::Core(CoreError::BudgetTooLarge { .. })),
        "{msg}"
    );
    assert!(msg.contains("exceeds node count"), "{msg}");
}

#[test]
fn repro_binary_exits_non_zero_with_a_readable_message() {
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([
            "--bench-json",
            "--k",
            "1000000",
            "--scale",
            "0.0002",
            "--seed",
            "1",
        ])
        .current_dir(env!("CARGO_TARGET_TMPDIR"))
        .output()
        .expect("repro binary runs");
    assert!(!output.status.success(), "unsatisfiable budget must fail");
    assert_eq!(output.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("bench-json failed"), "stderr: {stderr}");
    assert!(stderr.contains("exceeds node count"), "stderr: {stderr}");
}

#[test]
fn repro_binary_rejects_unknown_flags_with_usage() {
    let output = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("--no-such-flag")
        .output()
        .expect("repro binary runs");
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("usage:"), "stderr: {stderr}");
}
