//! End-to-end pin of the warm-start equivalence contract: the `sweep-k`
//! workload must select byte-identical seeds whether the DM greedy runs
//! cold-only or warm-started, at any pool width — asserted against the
//! digest committed in `BENCH_parallel.json`.
//!
//! The test replays the exact bench configuration (default scale/seed,
//! quick mode), so the digest below must match the `sweep-k` entries of
//! the committed trajectory file; refresh both together when the
//! workload changes.
//!
//! Marked `#[ignore]`: one full sweep-k pass per (mode, width) is too
//! slow for the debug-mode test sweep. CI runs it explicitly in release
//! (`cargo test -p vom-bench --release --test warm_start_digest -- --ignored`).

use vom_bench::bench_parallel::sweep_k_selection_digest;
use vom_bench::ExpConfig;
use vom_diffusion::set_warm_start_enabled;

/// The `sweep-k` selection digest committed in `BENCH_parallel.json`.
const COMMITTED_SWEEP_K_DIGEST: &str = "8c41fa6c26e3b30e";

#[test]
#[ignore = "release-mode digest pin; run explicitly with -- --ignored"]
fn sweep_k_digest_is_identical_cold_vs_warm_across_widths() {
    let cfg = ExpConfig::default();
    let entry_override = rayon::thread_override();
    let mut digests: Vec<(String, String)> = Vec::new();
    for (warm, threads) in [(true, 1), (true, 2), (true, 8), (false, 1)] {
        set_warm_start_enabled(warm);
        rayon::set_thread_override(Some(threads));
        let digest = sweep_k_selection_digest(&cfg).expect("sweep-k pass runs");
        digests.push((format!("warm={warm}/threads={threads}"), digest));
    }
    set_warm_start_enabled(true);
    rayon::set_thread_override(entry_override);
    for (label, digest) in &digests {
        assert_eq!(
            digest, COMMITTED_SWEEP_K_DIGEST,
            "{label}: selections diverged from the committed sweep-k digest"
        );
    }
}
