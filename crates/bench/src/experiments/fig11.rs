//! Figure 11: expected influence spread (IC/LT) of RW's voting-score
//! seeds vs IMM's seeds.

use crate::{ExpConfig, Result, Table};
use std::sync::Arc;
use vom_baselines::{expected_spread, imm_seeds, CascadeModel, ImmConfig};
use vom_core::engine::{PreparedIndex, SeedSelector};
use vom_core::rw::RwConfig;
use vom_core::{Engine, Problem, Query};
use vom_datasets::{twitter_mask_like, ReplicaParams};
use vom_voting::ScoringFunction;

/// Compares the EIS of RW-selected seeds (under each of the three main
/// voting scores) against IMM's own seeds — the paper's point: our seeds
/// reach over 80% of IMM's spread despite optimizing a different
/// objective. The RW engine prepares once; the three voting scores are
/// three queries.
pub fn run(cfg: &ExpConfig) -> Result<()> {
    let params = ReplicaParams {
        scale: cfg.scale,
        seed: cfg.seed,
        mu: 10.0,
    };
    let ds = twitter_mask_like(&params);
    let g = ds.instance.graph_of(ds.default_target);
    let k = cfg.default_k().min(ds.instance.num_nodes() / 10).max(1);
    let sims = if cfg.quick { 200 } else { 2_000 };
    let mut table = Table::new(
        "fig11",
        "expected influence spread of seed sets under IC and LT (paper Figure 11)",
        &["seeds from", "EIS under IC", "EIS under LT"],
    );
    let emit = |label: &str, seeds: &[vom_graph::Node], table: &mut Table| {
        let ic = expected_spread(g, CascadeModel::IndependentCascade, seeds, sims, cfg.seed);
        let lt = expected_spread(g, CascadeModel::LinearThreshold, seeds, sims, cfg.seed);
        table.row(vec![
            label.to_string(),
            format!("{ic:.1}"),
            format!("{lt:.1}"),
        ]);
    };
    let spec = Problem::new(
        &ds.instance,
        ds.default_target,
        k,
        cfg.default_t(),
        ScoringFunction::Cumulative,
    )?;
    let engine = Engine::Rw(RwConfig {
        seed: cfg.seed,
        ..RwConfig::default()
    });
    let index = Arc::new(engine.prepare_index(&spec)?);
    let mut session = PreparedIndex::session(&index);
    for (label, score) in [
        ("RW (cumulative)", ScoringFunction::Cumulative),
        ("RW (plurality)", ScoringFunction::Plurality),
        ("RW (copeland)", ScoringFunction::Copeland),
    ] {
        let query = Query::plain(k, score, ds.default_target);
        let seeds = session.select(&query)?.seeds;
        emit(label, &seeds, &mut table);
    }
    let imm_cfg = ImmConfig {
        seed: cfg.seed,
        max_rr_sets: 400_000,
        ..ImmConfig::default()
    };
    let ic_seeds = imm_seeds(g, CascadeModel::IndependentCascade, k, &imm_cfg);
    emit("IMM (IC)", &ic_seeds, &mut table);
    let lt_seeds = imm_seeds(g, CascadeModel::LinearThreshold, k, &imm_cfg);
    emit("IMM (LT)", &lt_seeds, &mut table);
    table.emit(&cfg.out_dir);
    Ok(())
}
