//! Table II: empirical validation of the score properties
//! (non-negativity, monotonicity, (non-)submodularity).

use crate::{ExpConfig, Result, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use vom_diffusion::{Instance, OpinionMatrix};
use vom_graph::builder::graph_from_edges;
use vom_graph::{generators, Node};
use vom_voting::ScoringFunction;

fn random_instance(n: usize, r: usize, rng: &mut StdRng) -> Instance {
    let m = n * 3;
    let edges = generators::erdos_renyi(n, m, rng);
    let g = Arc::new(graph_from_edges(n, &edges).unwrap());
    let rows: Vec<Vec<f64>> = (0..r)
        .map(|_| (0..n).map(|_| rng.gen::<f64>()).collect())
        .collect();
    let b = OpinionMatrix::from_rows(rows).unwrap();
    let d: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
    Instance::shared(g, b, d).unwrap()
}

fn score_of(inst: &Instance, score: &ScoringFunction, t: usize, seeds: &[Node]) -> f64 {
    let b = inst.opinions_at(t, 0, seeds);
    score.score(&b, 0)
}

/// Checks each property over random instances and random seed-set chains
/// `X ⊂ X∪{s}` / submodularity quadruples, reporting violation counts.
pub fn run(cfg: &ExpConfig) -> Result<()> {
    let trials = if cfg.quick { 100 } else { 500 };
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let scores: Vec<(ScoringFunction, bool)> = vec![
        (ScoringFunction::Cumulative, true),
        (ScoringFunction::Plurality, false),
        (ScoringFunction::PApproval { p: 2 }, false),
        (
            ScoringFunction::PositionalPApproval {
                p: 2,
                weights: vec![1.0, 0.5, 0.25],
            },
            false,
        ),
        (ScoringFunction::Copeland, false),
    ];
    let mut table = Table::new(
        "table2",
        "empirical score properties over random instances (paper Table II)",
        &[
            "score",
            "negative values",
            "monotonicity violations",
            "submodularity violations",
            "submodular (expected)",
        ],
    );
    for (score, expect_submodular) in &scores {
        let mut negatives = 0usize;
        let mut mono_violations = 0usize;
        let mut submod_violations = 0usize;
        for trial in 0..trials {
            let n = 12;
            let mut inst_rng = StdRng::seed_from_u64(cfg.seed ^ (trial as u64) << 8);
            let inst = random_instance(n, 3, &mut inst_rng);
            let t = 1 + (trial % 4);
            // Random chain X ⊂ Y = X∪{extra}, s ∉ Y.
            let mut nodes: Vec<Node> = (0..n as Node).collect();
            for i in (1..nodes.len()).rev() {
                nodes.swap(i, rng.gen_range(0..=i));
            }
            let x = &nodes[0..2];
            let y = &nodes[0..4];
            let s = nodes[5];
            let xs: Vec<Node> = x.iter().copied().chain([s]).collect();
            let ys: Vec<Node> = y.iter().copied().chain([s]).collect();
            let f_x = score_of(&inst, score, t, x);
            let f_y = score_of(&inst, score, t, y);
            let f_xs = score_of(&inst, score, t, &xs);
            let f_ys = score_of(&inst, score, t, &ys);
            if f_x < 0.0 || f_y < 0.0 {
                negatives += 1;
            }
            if f_xs < f_x - 1e-9 || f_ys < f_y - 1e-9 {
                mono_violations += 1;
            }
            if (f_xs - f_x) < (f_ys - f_y) - 1e-9 {
                submod_violations += 1;
            }
        }
        table.row(vec![
            score.to_string(),
            negatives.to_string(),
            mono_violations.to_string(),
            submod_violations.to_string(),
            if *expect_submodular { "yes" } else { "no" }.to_string(),
        ]);
    }
    table.emit(&cfg.out_dir);
    Ok(())
}
