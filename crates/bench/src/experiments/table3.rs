//! Table III: characteristics of the (replica) datasets.

use crate::{ExpConfig, Result, Table};
use vom_datasets::{all_replicas, ReplicaParams};
use vom_graph::stats::GraphStats;

/// Regenerates Table III for the synthetic replicas at the configured
/// scale (the paper-scale counts are shown alongside).
pub fn run(cfg: &ExpConfig) -> Result<()> {
    let paper: [(&str, usize, usize); 5] = [
        ("DBLP", 63_910, 2_847_120),
        ("Yelp", 966_240, 8_815_788),
        ("Twitter_US_Election", 2_246_604, 4_270_918),
        ("Twitter_Social_Distancing", 3_244_762, 4_202_083),
        ("Twitter_Mask", 2_341_769, 3_241_153),
    ];
    let mut table = Table::new(
        "table3",
        "dataset characteristics (paper Table III; replicas at the configured scale)",
        &[
            "name",
            "#nodes",
            "#edges",
            "#candidates",
            "paper #nodes",
            "paper #edges",
            "max in-deg",
        ],
    );
    let params = ReplicaParams {
        scale: cfg.scale,
        seed: cfg.seed,
        mu: 10.0,
    };
    for (ds, (pname, pn, pm)) in all_replicas(&params).into_iter().zip(paper) {
        assert_eq!(ds.name, pname);
        let stats = GraphStats::compute(ds.instance.graph_of(0));
        table.row(vec![
            ds.name.to_string(),
            stats.nodes.to_string(),
            stats.edges.to_string(),
            ds.instance.num_candidates().to_string(),
            pn.to_string(),
            pm.to_string(),
            stats.max_in_degree.to_string(),
        ]);
    }
    table.emit(&cfg.out_dir);
    Ok(())
}
