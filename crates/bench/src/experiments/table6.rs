//! Table VI: minimum seed-set sizes for the target to win the plurality
//! vote, per method.
//!
//! Prepared lifecycle: the budget search probes many `k` values; each
//! engine prepares its artifacts once (for the whole search) and every
//! probe is a cheap query against them.

use crate::error::Result;
use crate::{ExpConfig, Table};
use std::sync::Arc;
use vom_core::engine::{PreparedIndex, SeedSelector};
use vom_core::rs::RsConfig;
use vom_core::rw::RwConfig;
use vom_core::win::try_min_seeds_to_win;
use vom_core::{CoreError, Engine, Problem, Query};
use vom_datasets::{twitter_distancing_like, twitter_mask_like, ReplicaParams};
use vom_voting::ScoringFunction;

/// Binary-searches the minimum winning budget with each of DM/RW/RS (the
/// paper's finding: the more approximate the method, the more seeds it
/// needs). DM is skipped on replicas too large for its exact greedy.
pub fn run(cfg: &ExpConfig) -> Result<()> {
    let params = ReplicaParams {
        scale: (cfg.scale * 0.4).max(0.0005),
        seed: cfg.seed,
        mu: 10.0,
    };
    let mut table = Table::new(
        "table6",
        "minimum seeds for the target to win the plurality vote (paper Table VI)",
        &["dataset", "method", "k*"],
    );
    for ds in [twitter_mask_like(&params), twitter_distancing_like(&params)] {
        let n = ds.instance.num_nodes();
        let base = Problem::new(
            &ds.instance,
            ds.default_target,
            1,
            cfg.default_t(),
            ScoringFunction::Plurality,
        )?;
        let mut methods = vec![
            Engine::Rw(RwConfig {
                seed: cfg.seed,
                ..RwConfig::default()
            }),
            Engine::Rs(RsConfig {
                seed: cfg.seed,
                ..RsConfig::default()
            }),
        ];
        if n <= 3_000 {
            methods.insert(0, Engine::Dm);
        }
        for engine in methods {
            // Prepare at the search's maximum probe budget (n); probes
            // query the shared index through one session.
            let index = Arc::new(engine.prepare_index(&base.with_budget(n))?);
            let mut session = PreparedIndex::session(&index);
            let result: std::result::Result<_, CoreError> =
                try_min_seeds_to_win(&base, |p: &Problem<'_>| {
                    let query = Query::plain(p.k, p.score.clone(), p.target);
                    session.select(&query).map(|r| r.seeds)
                });
            let k_star = result?
                .map(|w| w.k.to_string())
                .unwrap_or_else(|| "unwinnable".to_string());
            table.row(vec![ds.name.to_string(), engine.name().to_string(), k_star]);
        }
    }
    table.emit(&cfg.out_dir);
    Ok(())
}
