//! Table VI: minimum seed-set sizes for the target to win the plurality
//! vote, per method.

use crate::{ExpConfig, Table};
use vom_core::rs::RsConfig;
use vom_core::rw::RwConfig;
use vom_core::win::min_seeds_to_win;
use vom_core::{select_seeds_plain, Method, Problem};
use vom_datasets::{twitter_distancing_like, twitter_mask_like, ReplicaParams};
use vom_voting::ScoringFunction;

/// Binary-searches the minimum winning budget with each of DM/RW/RS (the
/// paper's finding: the more approximate the method, the more seeds it
/// needs). DM is skipped on replicas too large for its exact greedy.
pub fn run(cfg: &ExpConfig) {
    let params = ReplicaParams {
        scale: (cfg.scale * 0.4).max(0.0005),
        seed: cfg.seed,
        mu: 10.0,
    };
    let mut table = Table::new(
        "table6",
        "minimum seeds for the target to win the plurality vote (paper Table VI)",
        &["dataset", "method", "k*"],
    );
    for ds in [twitter_mask_like(&params), twitter_distancing_like(&params)] {
        let n = ds.instance.num_nodes();
        let base = Problem::new(
            &ds.instance,
            ds.default_target,
            1,
            cfg.default_t(),
            ScoringFunction::Plurality,
        )
        .expect("valid problem");
        let mut methods = vec![
            (
                "RW",
                Method::Rw(RwConfig {
                    seed: cfg.seed,
                    ..RwConfig::default()
                }),
            ),
            (
                "RS",
                Method::Rs(RsConfig {
                    seed: cfg.seed,
                    ..RsConfig::default()
                }),
            ),
        ];
        if n <= 3_000 {
            methods.insert(0, ("DM", Method::Dm));
        }
        for (name, method) in methods {
            let result = min_seeds_to_win(&base, |p| {
                select_seeds_plain(p, &method)
                    .expect("selection succeeds")
                    .seeds
            });
            let k_star = result
                .map(|w| w.k.to_string())
                .unwrap_or_else(|| "unwinnable".to_string());
            table.row(vec![ds.name.to_string(), name.to_string(), k_star]);
        }
    }
    table.emit(&cfg.out_dir);
}
