//! Table IV / Figure 4: the ACM-general-election case study.

use crate::{ExpConfig, Result, Table};
use vom_core::rs::RsConfig;
use vom_core::{select_seeds, Method, Problem};
use vom_datasets::case_study::DOMAINS;
use vom_datasets::{acm_case_study, ReplicaParams};
use vom_voting::ScoringFunction;

/// Selects the top seeds for the trailing candidate and reports, per
/// research domain, the voters before/after seeding plus where the top-10
/// seeds act — the paper's headline: 100 seeds flip the election.
pub fn run(cfg: &ExpConfig) -> Result<()> {
    let params = ReplicaParams {
        scale: cfg.scale.max(0.02),
        seed: cfg.seed,
        mu: 10.0,
    };
    let cs = acm_case_study(&params);
    let inst = &cs.dataset.instance;
    let n = inst.num_nodes();
    let k = cfg.default_k().min(n / 10).max(1);
    let t = cfg.default_t();
    let problem = Problem::new(inst, 0, k, t, ScoringFunction::Plurality)?;
    let method = Method::Rs(RsConfig {
        seed: cfg.seed,
        ..RsConfig::default()
    });
    let res = select_seeds(&problem, &method)?;

    let before = inst.opinions_at(t, 0, &[]);
    let after = inst.opinions_at(t, 0, &res.seeds);
    let favors = |b: &vom_diffusion::OpinionMatrix, v: u32| b.get(0, v) > b.get(1, v);

    let total_before = (0..n as u32).filter(|&v| favors(&before, v)).count();
    let total_after = (0..n as u32).filter(|&v| favors(&after, v)).count();

    let mut table = Table::new(
        "table4",
        "ACM election case study: voters for the target per domain (paper Table IV / Fig. 4)",
        &[
            "domain",
            "#users",
            "voting before",
            "before %",
            "voting after",
            "after %",
            "top-10 seeds in domain",
        ],
    );
    for (d, name) in DOMAINS.iter().enumerate() {
        let members = cs.domain_members(d);
        let before_cnt = members.iter().filter(|&&v| favors(&before, v)).count();
        let after_cnt = members.iter().filter(|&&v| favors(&after, v)).count();
        let seeds_in = res
            .seeds
            .iter()
            .take(10)
            .filter(|&&s| cs.user_domains[s as usize].contains(&(d as u8)))
            .count();
        let pct = |c: usize| {
            if members.is_empty() {
                "0.0".to_string()
            } else {
                format!("{:.1}", 100.0 * c as f64 / members.len() as f64)
            }
        };
        table.row(vec![
            name.to_string(),
            members.len().to_string(),
            before_cnt.to_string(),
            pct(before_cnt),
            after_cnt.to_string(),
            pct(after_cnt),
            seeds_in.to_string(),
        ]);
    }
    table.row(vec![
        "TOTAL".into(),
        n.to_string(),
        total_before.to_string(),
        format!("{:.1}", 100.0 * total_before as f64 / n as f64),
        total_after.to_string(),
        format!("{:.1}", 100.0 * total_after as f64 / n as f64),
        format!("k={k}"),
    ]);
    table.emit(&cfg.out_dir);
    Ok(())
}
