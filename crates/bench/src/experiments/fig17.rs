//! Figure 17: scalability — seed-finding time and estimator memory vs
//! graph size.

use crate::{secs, AnyMethod, ExpConfig, Result, Table};
use vom_core::Problem;
use vom_datasets::{twitter_distancing_like, ReplicaParams};
use vom_voting::ScoringFunction;

/// Grows the Twitter-Social-Distancing replica through six sizes and
/// reports seed-finding time and memory for the cumulative score — the
/// paper's finding: RW/RS scale near-linearly, DM polynomially; DM holds
/// the least memory, RW far more than RS.
pub fn run(cfg: &ExpConfig) -> Result<()> {
    let fractions: &[f64] = if cfg.quick {
        &[0.25, 0.5, 1.0]
    } else {
        &[0.15, 0.3, 0.45, 0.6, 0.8, 1.0]
    };
    let mut table = Table::new(
        "fig17",
        "seed-finding time and memory vs graph size, cumulative score (paper Figure 17)",
        &["nodes", "edges", "method", "time_s", "memory_mb"],
    );
    for &f in fractions {
        let params = ReplicaParams {
            scale: cfg.scale * f,
            seed: cfg.seed,
            mu: 10.0,
        };
        let ds = twitter_distancing_like(&params);
        let n = ds.instance.num_nodes();
        let k = (cfg.default_k() / 2).clamp(5, n / 10);
        let problem = Problem::new(
            &ds.instance,
            ds.default_target,
            k,
            cfg.default_t(),
            ScoringFunction::Cumulative,
        )?;
        let mut methods = vec![AnyMethod::Rw, AnyMethod::Rs];
        if n <= 10_000 {
            methods.insert(0, AnyMethod::Dm);
        }
        // Each fraction is a different replica, so the build cost is part
        // of the scalability story — one-shot evaluation per cell.
        for m in methods {
            let out = crate::evaluate_baseline(&problem, m, cfg.seed)?;
            table.row(vec![
                n.to_string(),
                ds.instance.graph_of(0).num_edges().to_string(),
                m.name().to_string(),
                secs(out.elapsed),
                format!("{:.1}", out.memory as f64 / 1e6),
            ]);
        }
    }
    table.emit(&cfg.out_dir);
    Ok(())
}
