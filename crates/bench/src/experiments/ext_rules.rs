//! Extension experiment `ext-rules`: seed selection under the extended
//! voting rules (Borda, veto, maximin, Bucklin, Copeland⁰·⁵) — the
//! paper's §IX "more voting scores" future-work direction.
//!
//! For each rule the exact generic greedy (`vom_core::generic_greedy`)
//! picks `k` seeds on the Yelp-like replica (10 candidates, where rank
//! positions beyond the top matter) and we report the target's score and
//! winner before/after seeding, plus the seed overlap with the paper's
//! plurality selection — showing how much the *choice of rule* changes
//! who you should seed.

use crate::{secs, ExpConfig, Result, Table};
use vom_core::{evaluate_rule, generic_greedy};
use vom_datasets::{yelp_like, ReplicaParams};
use vom_voting::{ext_winner, ExtendedRule, OpinionScore, ScoringFunction};

/// Runs the extended-rules comparison.
pub fn run(cfg: &ExpConfig) -> Result<()> {
    // The generic greedy is exact (O(k·n·t·m) per rule), so run it on a
    // reduced replica; the rule comparison is about *who gets seeded*,
    // not scale.
    let params = ReplicaParams {
        scale: cfg.scale.min(if cfg.quick { 0.0003 } else { 0.0008 }),
        seed: cfg.seed,
        mu: 10.0,
    };
    let ds = yelp_like(&params);
    let inst = &ds.instance;
    let q = ds.default_target;
    let t = cfg.default_t();
    let k = if cfg.quick { 3 } else { 8 };

    let mut table = Table::new(
        "ext-rules",
        "extended voting rules: greedy seeds, score before/after, winner (extension of paper SIX)",
        &[
            "rule",
            "score(no seeds)",
            "score(greedy k)",
            "target wins?",
            "overlap w/ plurality seeds",
            "time_s",
        ],
    );

    // Reference: the paper's plurality greedy on the same exact path.
    let (plu_seeds, _) =
        crate::timed(|| generic_greedy(inst, q, k, t, &ScoringFunction::Plurality));
    let plu_seeds = plu_seeds?;

    let mut rules: Vec<(String, Box<dyn OpinionScore>)> = vec![(
        "plurality (paper)".to_string(),
        Box::new(ScoringFunction::Plurality),
    )];
    for rule in ExtendedRule::ALL {
        rules.push((rule.name().to_string(), Box::new(rule)));
    }

    for (name, rule) in &rules {
        let (seeds, elapsed) = crate::timed(|| generic_greedy(inst, q, k, t, rule.as_ref()));
        let seeds = seeds?;
        let before = evaluate_rule(inst, q, t, &[], rule.as_ref());
        let after = evaluate_rule(inst, q, t, &seeds, rule.as_ref());
        let b_after = inst.opinions_at(t, q, &seeds);
        // Winner under the same rule family after seeding.
        let winner = match name.as_str() {
            "plurality (paper)" => vom_voting::tally(&b_after, &ScoringFunction::Plurality).winner,
            _ => {
                let ext = ExtendedRule::ALL
                    .iter()
                    .find(|r| r.name() == name)
                    .copied()
                    .expect("known rule");
                ext_winner(&b_after, ext)
            }
        };
        let overlap = seeds.iter().filter(|s| plu_seeds.contains(s)).count();
        table.row(vec![
            name.clone(),
            format!("{before:.1}"),
            format!("{after:.1}"),
            if winner == q {
                "yes".into()
            } else {
                format!("no (c{winner})")
            },
            format!("{overlap}/{k}"),
            secs(elapsed),
        ]);
    }
    table.emit(&cfg.out_dir);
    Ok(())
}
