//! Figure 2: empirical sandwich approximation factor `F(S_U)/UB(S_U)`.
//!
//! Prepared lifecycle: the RS engine builds its sketch artifacts **once
//! per dataset** and every budget `k` queries the same prepared engine —
//! the one-shot path would rebuild them per trial (O(|ks|) builds
//! instead of 1; `tests/build_counter.rs` pins the count).

use crate::{ExpConfig, Result, Table};
use std::sync::Arc;
use vom_core::engine::{PreparedIndex, SeedSelector};
use vom_core::rs::RsConfig;
use vom_core::{Engine, Problem};
use vom_datasets::{twitter_distancing_like, yelp_like, ReplicaParams};
use vom_voting::ScoringFunction;

/// Trials varying `k` (the paper: 100..1000 step 100, here scaled) on
/// Twitter-Social-Distancing (plurality) and Yelp (Copeland); reports the
/// ratio per trial and the paper's summary statistics.
pub fn run(cfg: &ExpConfig) -> Result<()> {
    let params = ReplicaParams {
        scale: cfg.scale,
        seed: cfg.seed,
        mu: 10.0,
    };
    let cases = vec![
        (twitter_distancing_like(&params), ScoringFunction::Plurality),
        (yelp_like(&params), ScoringFunction::Copeland),
    ];
    let ks: Vec<usize> = if cfg.quick {
        vec![10, 20, 40]
    } else {
        (1..=10).map(|i| i * 10).collect()
    };
    let k_max = *ks.last().expect("non-empty sweep");
    let mut table = Table::new(
        "fig2",
        "sandwich approximation ratio F(S_U)/UB(S_U) (paper Figure 2)",
        &["dataset", "score", "k", "ratio"],
    );
    let mut ratios = Vec::new();
    for (ds, score) in cases {
        let spec = Problem::new(
            &ds.instance,
            ds.default_target,
            k_max,
            cfg.default_t(),
            score.clone(),
        )?;
        let engine = Engine::Rs(RsConfig {
            seed: cfg.seed,
            ..RsConfig::default()
        });
        let index = Arc::new(engine.prepare_index(&spec)?);
        let mut session = PreparedIndex::session(&index);
        for &k in &ks {
            let res = session.select_k(k)?;
            let ratio = res.sandwich.expect("non-submodular score").ratio;
            ratios.push(ratio);
            table.row(vec![
                ds.name.to_string(),
                score.to_string(),
                k.to_string(),
                format!("{ratio:.3}"),
            ]);
        }
    }
    let above_07 = ratios.iter().filter(|&&r| r >= 0.7).count();
    let above_08 = ratios.iter().filter(|&&r| r >= 0.8).count();
    table.row(vec![
        "summary".into(),
        format!("{} trials", ratios.len()),
        format!(
            "{:.0}% >= 0.7",
            100.0 * above_07 as f64 / ratios.len() as f64
        ),
        format!(
            "{:.0}% >= 0.8",
            100.0 * above_08 as f64 / ratios.len() as f64
        ),
    ]);
    table.emit(&cfg.out_dir);
    Ok(())
}
