//! Table I: scores of candidate c1 for all single/double seed sets at
//! t = 1 on the running example.

use crate::{ExpConfig, Result, Table};
use std::sync::Arc;
use vom_diffusion::{Instance, OpinionMatrix};
use vom_graph::builder::graph_from_edges;
use vom_graph::Node;
use vom_voting::ScoringFunction;

/// The Figure 1 running example, with the competitor row calibrated so
/// its t=1 opinions are 0.35/0.75/0.775/0.90 (the paper's stated 0.78 is
/// not exactly reachable; every comparison in Table I is preserved).
pub fn running_example_instance() -> Instance {
    let g = Arc::new(graph_from_edges(4, &[(0, 2, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap());
    let b = OpinionMatrix::from_rows(vec![
        vec![0.40, 0.80, 0.60, 0.90],
        vec![0.35, 0.75, 1.00, 0.80],
    ])
    .unwrap();
    Instance::shared(g, b, vec![0.0, 0.0, 0.5, 0.5]).unwrap()
}

/// Regenerates Table I.
pub fn run(cfg: &ExpConfig) -> Result<()> {
    let inst = running_example_instance();
    let mut table = Table::new(
        "table1",
        "scores of candidate c1 for various seed sets at t=1 (paper Table I)",
        &[
            "seed set",
            "u1",
            "u2",
            "u3",
            "u4",
            "cumulative",
            "plurality",
            "copeland",
        ],
    );
    // Paper's 1-indexed seed sets.
    let seed_sets: [&[Node]; 6] = [&[], &[0], &[1], &[2], &[3], &[0, 1]];
    let labels = ["{}", "{1}", "{2}", "{3}", "{4}", "{1,2}"];
    for (seeds, label) in seed_sets.iter().zip(labels) {
        let b = inst.opinions_at(1, 0, seeds);
        let row = b.row(0);
        table.row(vec![
            label.to_string(),
            format!("{:.2}", row[0]),
            format!("{:.2}", row[1]),
            format!("{:.2}", row[2]),
            format!("{:.2}", row[3]),
            format!("{:.2}", ScoringFunction::Cumulative.score(&b, 0)),
            format!("{}", ScoringFunction::Plurality.score(&b, 0) as i64),
            format!("{}", ScoringFunction::Copeland.score(&b, 0) as i64),
        ]);
    }
    table.emit(&cfg.out_dir);
    Ok(())
}
