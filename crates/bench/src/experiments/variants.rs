//! Figures 9–10: comparison among the plurality score variants.
//!
//! Prepared lifecycle: all compared rules are competitive, so they share
//! one sketch set — the RS engine prepares **once per dataset** and every
//! rule variant is just a different [`Query`].

use crate::{ExpConfig, Result, Table};
use std::sync::Arc;
use vom_core::engine::{PreparedIndex, SeedSelector};
use vom_core::rs::RsConfig;
use vom_core::{Engine, Problem, Query, QuerySession};
use vom_datasets::{yelp_like, Dataset, ReplicaParams};
use vom_graph::Node;
use vom_voting::rank::position_histogram;
use vom_voting::ScoringFunction;

fn overlap(a: &[Node], b: &[Node]) -> f64 {
    // audit:allow(d-hash-iter, "membership probe over one side of the overlap; never iterated")
    let set: std::collections::HashSet<_> = a.iter().collect();
    let common = b.iter().filter(|v| set.contains(v)).count();
    common as f64 / a.len().max(1) as f64
}

/// One RS index prepared for the dataset at budget `k`; rule variants
/// are queries on a session over it.
fn prepare_rs(ds: &Dataset, k: usize, t: usize, seed: u64) -> Result<QuerySession> {
    let spec = Problem::new(
        &ds.instance,
        ds.default_target,
        k,
        t,
        ScoringFunction::Plurality,
    )?;
    let engine = Engine::Rs(RsConfig {
        seed,
        ..RsConfig::default()
    });
    let index = Arc::new(engine.prepare_index(&spec)?);
    Ok(PreparedIndex::session(&index))
}

fn select_rule(session: &mut QuerySession, k: usize, rule: ScoringFunction) -> Result<Vec<Node>> {
    let query = Query::new(k, rule, session.index().target());
    Ok(session.select(&query)?.seeds)
}

/// Figure 9: seed-set overlap of positional-p-approval (varying `ω[p]`)
/// against plurality and p-approval, on Yelp.
pub fn run_overlap(cfg: &ExpConfig) -> Result<()> {
    let params = ReplicaParams {
        scale: cfg.scale,
        seed: cfg.seed,
        mu: 10.0,
    };
    let ds = yelp_like(&params);
    let r = ds.instance.num_candidates();
    let k = cfg.default_k().min(ds.instance.num_nodes() / 10).max(1);
    let t = cfg.default_t();
    let mut prepared = prepare_rs(&ds, k, t, cfg.seed)?;
    let mut table = Table::new(
        "fig9",
        "seed overlap of positional-p-approval vs plurality and p-approval (paper Figure 9)",
        &[
            "p",
            "omega_p",
            "overlap w/ plurality",
            "overlap w/ p-approval",
        ],
    );
    let plurality = select_rule(&mut prepared, k, ScoringFunction::Plurality)?;
    for p in [2usize, 3] {
        let papproval = select_rule(&mut prepared, k, ScoringFunction::PApproval { p })?;
        for omega_p in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let mut weights = vec![1.0; r];
            weights[p - 1] = omega_p;
            for w in weights.iter_mut().skip(p) {
                *w = 0.0;
            }
            let seeds = select_rule(
                &mut prepared,
                k,
                ScoringFunction::PositionalPApproval { p, weights },
            )?;
            table.row(vec![
                p.to_string(),
                format!("{omega_p:.2}"),
                format!("{:.2}", overlap(&seeds, &plurality)),
                format!("{:.2}", overlap(&seeds, &papproval)),
            ]);
        }
    }
    table.emit(&cfg.out_dir);
    Ok(())
}

/// Figure 10: number of users ranking the target at each position at the
/// horizon, before and after seeding, on Yelp.
pub fn run_positions(cfg: &ExpConfig) -> Result<()> {
    let params = ReplicaParams {
        scale: cfg.scale,
        seed: cfg.seed,
        mu: 10.0,
    };
    let ds = yelp_like(&params);
    let k = cfg.default_k().min(ds.instance.num_nodes() / 10).max(1);
    let t = cfg.default_t();
    let mut prepared = prepare_rs(&ds, k, t, cfg.seed)?;
    let mut table = Table::new(
        "fig10",
        "users ranking the target at each position at the horizon (paper Figure 10)",
        &["variant", "pos1", "pos2", "pos3", "pos4+"],
    );
    let mut emit = |label: &str, seeds: &[Node]| {
        let b = ds.instance.opinions_at(t, ds.default_target, seeds);
        let hist = position_histogram(&b, ds.default_target);
        let tail: usize = hist[3..].iter().sum();
        table.row(vec![
            label.to_string(),
            hist[0].to_string(),
            hist[1].to_string(),
            hist[2].to_string(),
            tail.to_string(),
        ]);
    };
    emit("no seeds", &[]);
    for (label, score) in [
        ("plurality", ScoringFunction::Plurality),
        ("2-approval", ScoringFunction::PApproval { p: 2 }),
        ("3-approval", ScoringFunction::PApproval { p: 3 }),
    ] {
        let seeds = select_rule(&mut prepared, k, score)?;
        emit(label, &seeds);
    }
    table.emit(&cfg.out_dir);
    Ok(())
}
