//! Figures 6–8: voting score and seed-finding time vs seed budget `k`,
//! for all nine methods on three dataset replicas.
//!
//! Prepared lifecycle: each method builds its artifacts **once per
//! dataset** (at the largest swept budget) and every `k` queries the same
//! prepared engine, so the sweep pays O(methods) builds instead of
//! O(methods × |ks|). `build_s` reports the one-time build, `select_s`
//! the per-query greedy.

use crate::{secs, AnyMethod, ExpConfig, PreparedMethod, Result, Table};
use vom_core::Problem;
use vom_datasets::{twitter_election_like, twitter_mask_like, yelp_like, Dataset, ReplicaParams};
use vom_voting::ScoringFunction;

pub(crate) fn datasets(cfg: &ExpConfig) -> Vec<Dataset> {
    let params = ReplicaParams {
        scale: cfg.scale,
        seed: cfg.seed,
        mu: 10.0,
    };
    vec![
        yelp_like(&params),
        twitter_election_like(&params),
        twitter_mask_like(&params),
    ]
}

/// Methods for the sweep: exact DM joins only when the graph is small
/// enough for its `O(k·t·m·n)` rank-score greedy (the paper ran DM on a
/// 512 GB server for days; the shape comparison survives without it on
/// the larger replicas).
pub(crate) fn sweep_methods(n: usize, score: &ScoringFunction) -> Vec<AnyMethod> {
    let dm_ok = match score {
        ScoringFunction::Cumulative => n <= 5_000,
        _ => n <= 1_500,
    };
    if dm_ok {
        AnyMethod::all().to_vec()
    } else {
        AnyMethod::without_exact().to_vec()
    }
}

fn run_sweep(cfg: &ExpConfig, id: &str, score: ScoringFunction) -> Result<()> {
    let t = cfg.default_t();
    let mut table = Table::new(
        id,
        &format!("{score} score and seed-finding time vs k (paper Figures 6-8)"),
        &[
            "dataset",
            "k",
            "method",
            "score",
            "select_s",
            "build_s",
            "memory_mb",
        ],
    );
    for ds in datasets(cfg) {
        let n = ds.instance.num_nodes();
        let methods = sweep_methods(n, &score);
        let ks: Vec<usize> = cfg
            .k_sweep()
            .iter()
            .map(|&k| k.min(n / 2))
            .filter(|&k| k > 0)
            .collect();
        let Some(&k_max) = ks.iter().max() else {
            continue;
        };
        let Ok(spec) = Problem::new(&ds.instance, ds.default_target, k_max, t, score.clone())
        else {
            continue;
        };
        for &m in &methods {
            let mut prepared = PreparedMethod::new(&spec, m, cfg.seed)?;
            let build = prepared.build_time();
            for &k in &ks {
                let out = prepared.evaluate(k)?;
                table.row(vec![
                    ds.name.to_string(),
                    k.to_string(),
                    m.name().to_string(),
                    format!("{:.2}", out.score),
                    secs(out.elapsed),
                    secs(build),
                    format!("{:.1}", out.memory as f64 / 1e6),
                ]);
            }
        }
    }
    table.emit(&cfg.out_dir);
    Ok(())
}

/// Figure 6: plurality score vs k.
pub fn run_plurality(cfg: &ExpConfig) -> Result<()> {
    run_sweep(cfg, "fig6", ScoringFunction::Plurality)
}

/// Figure 7: Copeland score vs k.
pub fn run_copeland(cfg: &ExpConfig) -> Result<()> {
    run_sweep(cfg, "fig7", ScoringFunction::Copeland)
}

/// Figure 8: cumulative score vs k.
pub fn run_cumulative(cfg: &ExpConfig) -> Result<()> {
    run_sweep(cfg, "fig8", ScoringFunction::Cumulative)
}
