//! Figures 6–8: voting score and seed-finding time vs seed budget `k`,
//! for all nine methods on three dataset replicas.

use crate::{secs, AnyMethod, ExpConfig, Table};
use vom_core::Problem;
use vom_datasets::{twitter_election_like, twitter_mask_like, yelp_like, Dataset, ReplicaParams};
use vom_voting::ScoringFunction;

fn datasets(cfg: &ExpConfig) -> Vec<Dataset> {
    let params = ReplicaParams {
        scale: cfg.scale,
        seed: cfg.seed,
        mu: 10.0,
    };
    vec![
        yelp_like(&params),
        twitter_election_like(&params),
        twitter_mask_like(&params),
    ]
}

/// Methods for the sweep: exact DM joins only when the graph is small
/// enough for its `O(k·t·m·n)` rank-score greedy (the paper ran DM on a
/// 512 GB server for days; the shape comparison survives without it on
/// the larger replicas).
fn sweep_methods(n: usize, score: &ScoringFunction) -> Vec<AnyMethod> {
    let dm_ok = match score {
        ScoringFunction::Cumulative => n <= 5_000,
        _ => n <= 1_500,
    };
    if dm_ok {
        AnyMethod::all().to_vec()
    } else {
        AnyMethod::without_exact().to_vec()
    }
}

fn run_sweep(cfg: &ExpConfig, id: &str, score: ScoringFunction) {
    let t = cfg.default_t();
    let mut table = Table::new(
        id,
        &format!("{score} score and seed-finding time vs k (paper Figures 6-8)"),
        &["dataset", "k", "method", "score", "time_s", "memory_mb"],
    );
    for ds in datasets(cfg) {
        let n = ds.instance.num_nodes();
        let methods = sweep_methods(n, &score);
        for &k in &cfg.k_sweep() {
            let k = k.min(n / 2);
            let Ok(problem) = Problem::new(&ds.instance, ds.default_target, k, t, score.clone())
            else {
                continue;
            };
            for &m in &methods {
                let out = crate::evaluate_baseline(&problem, m, cfg.seed);
                table.row(vec![
                    ds.name.to_string(),
                    k.to_string(),
                    m.name().to_string(),
                    format!("{:.2}", out.score),
                    secs(out.elapsed),
                    format!("{:.1}", out.memory as f64 / 1e6),
                ]);
            }
        }
    }
    table.emit(&cfg.out_dir);
}

/// Figure 6: plurality score vs k.
pub fn run_plurality(cfg: &ExpConfig) {
    run_sweep(cfg, "fig6", ScoringFunction::Plurality);
}

/// Figure 7: Copeland score vs k.
pub fn run_copeland(cfg: &ExpConfig) {
    run_sweep(cfg, "fig7", ScoringFunction::Copeland);
}

/// Figure 8: cumulative score vs k.
pub fn run_cumulative(cfg: &ExpConfig) {
    run_sweep(cfg, "fig8", ScoringFunction::Cumulative);
}
