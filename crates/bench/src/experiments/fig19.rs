//! Figure 19 (Appendix D): sensitivity of the scores to the edge-weight
//! parameter µ.

use crate::{ExpConfig, Result, Table};
use vom_core::rs::RsConfig;
use vom_core::{select_seeds_plain, Method, Problem};
use vom_datasets::{twitter_election_like, yelp_like, Dataset, ReplicaParams};
use vom_voting::ScoringFunction;

fn series(
    cfg: &ExpConfig,
    make: impl Fn(&ReplicaParams) -> Dataset,
    score: ScoringFunction,
    table: &mut Table,
) -> Result<()> {
    for mu in [1.0, 5.0, 10.0, 15.0, 25.0] {
        let params = ReplicaParams {
            scale: cfg.scale,
            seed: cfg.seed,
            mu,
        };
        let ds = make(&params);
        let k = cfg.default_k().min(ds.instance.num_nodes() / 10).max(1);
        let problem = Problem::new(
            &ds.instance,
            ds.default_target,
            k,
            cfg.default_t(),
            score.clone(),
        )?;
        let res = select_seeds_plain(
            &problem,
            &Method::Rs(RsConfig {
                seed: cfg.seed,
                ..RsConfig::default()
            }),
        )?;
        table.row(vec![
            ds.name.to_string(),
            score.to_string(),
            format!("{mu}"),
            format!("{:.2}", res.exact_score),
        ]);
    }
    Ok(())
}

/// The paper's justification of µ = 10: the column normalization damps
/// µ's influence, and the µ = 10 / µ = 15 curves nearly coincide.
pub fn run(cfg: &ExpConfig) -> Result<()> {
    let mut table = Table::new(
        "fig19",
        "score vs edge-weight parameter µ (paper Figure 19)",
        &["dataset", "score", "mu", "score value"],
    );
    series(cfg, yelp_like, ScoringFunction::Plurality, &mut table)?;
    series(
        cfg,
        twitter_election_like,
        ScoringFunction::Cumulative,
        &mut table,
    )?;
    table.emit(&cfg.out_dir);
    Ok(())
}
