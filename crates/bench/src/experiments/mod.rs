//! One module per paper artifact. See DESIGN.md §3 for the experiment
//! index (artifact → workload → module → command).

pub mod case_study;
pub mod ext_confidence;
pub mod ext_dynamics;
pub mod ext_rules;
pub mod fig11;
pub mod fig12;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod fig2;
pub mod params;
pub mod sweep_k;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table6;
pub mod theta;
pub mod variants;

use crate::{ExpConfig, Result};

/// Every experiment id, in presentation order.
pub const ALL_IDS: [&str; 23] = [
    "table1",
    "table2",
    "table3",
    "fig2",
    "case-study",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "table6",
    "ext-rules",
    "ext-dynamics",
    "ext-confidence",
];

/// Dispatches an experiment id. `Ok(false)` for unknown ids; selection
/// failures propagate as [`crate::BenchError`] instead of panicking
/// mid-sweep.
pub fn run(id: &str, cfg: &ExpConfig) -> Result<bool> {
    match id {
        "table1" => table1::run(cfg)?,
        "table2" => table2::run(cfg)?,
        "table3" => table3::run(cfg)?,
        "fig2" => fig2::run(cfg)?,
        "case-study" | "table4" | "fig4" => case_study::run(cfg)?,
        "table6" => table6::run(cfg)?,
        "fig6" => sweep_k::run_plurality(cfg)?,
        "fig7" => sweep_k::run_copeland(cfg)?,
        "fig8" => sweep_k::run_cumulative(cfg)?,
        "fig9" => variants::run_overlap(cfg)?,
        "fig10" => variants::run_positions(cfg)?,
        "fig11" => fig11::run(cfg)?,
        "fig12" => fig12::run(cfg)?,
        "fig13" => theta::run_plurality(cfg)?,
        "fig14" => theta::run_copeland(cfg)?,
        "fig15" => params::run_epsilon(cfg)?,
        "fig16" => params::run_rho(cfg)?,
        "fig17" => fig17::run(cfg)?,
        "fig18" => fig18::run(cfg)?,
        "fig19" => fig19::run(cfg)?,
        "ext-rules" => ext_rules::run(cfg)?,
        "ext-dynamics" => ext_dynamics::run(cfg)?,
        "ext-confidence" => ext_confidence::run(cfg)?,
        _ => return Ok(false),
    }
    Ok(true)
}
