//! Figures 15–16: sensitivity to the estimation parameters ε (RS) and
//! ρ (RW).

use crate::{secs, ExpConfig, Result, Table};
use vom_core::rs::RsConfig;
use vom_core::rw::RwConfig;
use vom_core::{select_seeds_plain, Method, Problem};
use vom_datasets::{twitter_distancing_like, twitter_election_like, ReplicaParams};
use vom_voting::ScoringFunction;

/// Figure 15: cumulative score and time vs ε for RS on
/// Twitter-US-Election. Larger ε → fewer sketches → faster but less
/// accurate; the paper picks ε = 0.1.
pub fn run_epsilon(cfg: &ExpConfig) -> Result<()> {
    let params = ReplicaParams {
        scale: cfg.scale,
        seed: cfg.seed,
        mu: 10.0,
    };
    let ds = twitter_election_like(&params);
    let k = cfg.default_k().min(ds.instance.num_nodes() / 10).max(1);
    let problem = Problem::new(
        &ds.instance,
        ds.default_target,
        k,
        cfg.default_t(),
        ScoringFunction::Cumulative,
    )?;
    let mut table = Table::new(
        "fig15",
        "cumulative score and time vs epsilon for RS (paper Figure 15)",
        &["epsilon", "theta", "score", "time_s"],
    );
    for epsilon in [0.05, 0.1, 0.2, 0.3] {
        let rs_cfg = RsConfig {
            epsilon,
            seed: cfg.seed,
            ..RsConfig::default()
        };
        let theta = vom_core::rs::choose_theta(&problem, &rs_cfg);
        let res = select_seeds_plain(&problem, &Method::Rs(rs_cfg))?;
        table.row(vec![
            format!("{epsilon}"),
            theta.to_string(),
            format!("{:.2}", res.exact_score),
            secs(res.elapsed),
        ]);
    }
    table.emit(&cfg.out_dir);
    Ok(())
}

/// Figure 16: plurality score and time vs ρ for RW on
/// Twitter-Social-Distancing. Larger ρ → more walks per node → slower but
/// more accurate; the paper picks ρ = 0.9.
pub fn run_rho(cfg: &ExpConfig) -> Result<()> {
    let params = ReplicaParams {
        scale: (cfg.scale * 0.6).max(0.0005),
        seed: cfg.seed,
        mu: 10.0,
    };
    let ds = twitter_distancing_like(&params);
    let k = cfg.default_k().min(ds.instance.num_nodes() / 10).max(1);
    let problem = Problem::new(
        &ds.instance,
        ds.default_target,
        k,
        cfg.default_t(),
        ScoringFunction::Plurality,
    )?;
    let mut table = Table::new(
        "fig16",
        "plurality score and time vs rho for RW (paper Figure 16)",
        &["rho", "score", "time_s"],
    );
    for rho in [0.75, 0.80, 0.85, 0.90, 0.95] {
        let rw_cfg = RwConfig {
            rho,
            seed: cfg.seed,
            ..RwConfig::default()
        };
        let res = select_seeds_plain(&problem, &Method::Rw(rw_cfg))?;
        table.row(vec![
            format!("{rho}"),
            format!("{:.2}", res.exact_score),
            secs(res.elapsed),
        ]);
    }
    table.emit(&cfg.out_dir);
    Ok(())
}
