//! Figures 13–14: score vs the sketch count θ, varying `k` and `t` —
//! the §VI-E heuristic calibration.
//!
//! Prepared lifecycle: one sketch set is built per (horizon, θ) and every
//! budget variant queries it — the artifact depends on `t` and θ but not
//! on `k`, so the k-variants ride along for free (the one-shot path paid
//! one build per table cell).

use crate::{ExpConfig, Result, Table};
use std::sync::Arc;
use vom_core::engine::{PreparedIndex, SeedSelector};
use vom_core::rs::RsConfig;
use vom_core::{Engine, Problem, Query};
use vom_datasets::{twitter_mask_like, yelp_like, Dataset, ReplicaParams};
use vom_voting::ScoringFunction;

/// The θ values swept for an `n`-node replica (exported so the
/// build-counter test can predict the exact number of sketch builds).
pub fn theta_sweep(n: usize, quick: bool) -> Vec<usize> {
    let mut thetas = Vec::new();
    let mut theta = 256usize;
    let cap = if quick { n } else { 4 * n };
    while theta <= cap {
        thetas.push(theta);
        theta *= 4;
    }
    thetas.push(cap.max(256));
    thetas.dedup();
    thetas
}

/// The distinct horizons among the variants, in first-seen order (order
/// preserved so the t = 20 rows keep leading the table). Exported for
/// the build-counter test so its expected count uses the same grouping.
pub fn distinct_horizons(variants: &[(String, usize, usize)]) -> Vec<usize> {
    let mut horizons: Vec<usize> = Vec::new();
    for (_, _, t) in variants {
        if !horizons.contains(t) {
            horizons.push(*t);
        }
    }
    horizons
}

/// The (label, k, t) variants for a base budget (exported for the
/// build-counter test). Two budgets share `t = 20`; the third variant
/// lowers the horizon.
pub fn variants(base_k: usize) -> [(String, usize, usize); 3] {
    [
        (format!("k={base_k},t=20"), base_k, 20),
        (format!("k={},t=20", base_k / 2), base_k / 2, 20),
        (format!("k={base_k},t=10"), base_k, 10),
    ]
}

fn run_theta(cfg: &ExpConfig, id: &str, ds: Dataset, score: ScoringFunction) -> Result<()> {
    let n = ds.instance.num_nodes();
    let mut table = Table::new(
        id,
        &format!("{score} score vs sketch count θ (paper Figures 13-14)"),
        &["variant", "theta", "score"],
    );
    let base_k = cfg.default_k().min(n / 10).max(1);
    let variants = variants(base_k);
    // Group the variants by horizon: the sketch artifacts depend on t
    // (and θ) but not on k, so each (t, θ) pair builds exactly once.
    let horizons = distinct_horizons(&variants);
    for t in horizons {
        let group: Vec<&(String, usize, usize)> =
            variants.iter().filter(|(_, _, vt)| *vt == t).collect();
        let k_max = group.iter().map(|(_, k, _)| *k).max().unwrap_or(1).max(1);
        let spec = Problem::new(&ds.instance, ds.default_target, k_max, t, score.clone())?;
        for &theta in &theta_sweep(n, cfg.quick) {
            let engine = Engine::Rs(RsConfig {
                theta_override: Some(theta),
                seed: cfg.seed,
                ..RsConfig::default()
            });
            let index = Arc::new(engine.prepare_index(&spec)?);
            let mut session = PreparedIndex::session(&index);
            for (label, k, _) in group.iter().copied() {
                let query = Query::plain((*k).max(1), score.clone(), ds.default_target);
                let res = session.select(&query)?;
                table.row(vec![
                    label.clone(),
                    theta.to_string(),
                    format!("{:.2}", res.exact_score),
                ]);
            }
        }
    }
    table.emit(&cfg.out_dir);
    Ok(())
}

/// Figure 13: plurality score vs θ on Twitter-Mask.
pub fn run_plurality(cfg: &ExpConfig) -> Result<()> {
    let params = ReplicaParams {
        scale: cfg.scale,
        seed: cfg.seed,
        mu: 10.0,
    };
    run_theta(
        cfg,
        "fig13",
        twitter_mask_like(&params),
        ScoringFunction::Plurality,
    )
}

/// Figure 14: Copeland score vs θ on Yelp.
pub fn run_copeland(cfg: &ExpConfig) -> Result<()> {
    let params = ReplicaParams {
        scale: cfg.scale,
        seed: cfg.seed,
        mu: 10.0,
    };
    run_theta(cfg, "fig14", yelp_like(&params), ScoringFunction::Copeland)
}
