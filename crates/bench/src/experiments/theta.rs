//! Figures 13–14: score vs the sketch count θ, varying `k` and `t` —
//! the §VI-E heuristic calibration.

use crate::{ExpConfig, Table};
use vom_core::rs::RsConfig;
use vom_core::{select_seeds_plain, Method, Problem};
use vom_datasets::{twitter_mask_like, yelp_like, Dataset, ReplicaParams};
use vom_voting::ScoringFunction;

fn theta_sweep(n: usize, quick: bool) -> Vec<usize> {
    let mut thetas = Vec::new();
    let mut theta = 256usize;
    let cap = if quick { n } else { 4 * n };
    while theta <= cap {
        thetas.push(theta);
        theta *= 4;
    }
    thetas.push(cap.max(256));
    thetas.dedup();
    thetas
}

fn run_theta(cfg: &ExpConfig, id: &str, ds: Dataset, score: ScoringFunction) {
    let n = ds.instance.num_nodes();
    let mut table = Table::new(
        id,
        &format!("{score} score vs sketch count θ (paper Figures 13-14)"),
        &["variant", "theta", "score"],
    );
    let base_k = cfg.default_k().min(n / 10);
    let variants: Vec<(String, usize, usize)> = vec![
        (format!("k={base_k},t=20"), base_k, 20),
        (format!("k={},t=20", base_k / 2), base_k / 2, 20),
        (format!("k={base_k},t=10"), base_k, 10),
    ];
    for (label, k, t) in variants {
        let problem = Problem::new(&ds.instance, ds.default_target, k.max(1), t, score.clone())
            .expect("valid problem");
        for &theta in &theta_sweep(n, cfg.quick) {
            let method = Method::Rs(RsConfig {
                theta_override: Some(theta),
                seed: cfg.seed,
                ..RsConfig::default()
            });
            let res = select_seeds_plain(&problem, &method).expect("selection succeeds");
            table.row(vec![
                label.clone(),
                theta.to_string(),
                format!("{:.2}", res.exact_score),
            ]);
        }
    }
    table.emit(&cfg.out_dir);
}

/// Figure 13: plurality score vs θ on Twitter-Mask.
pub fn run_plurality(cfg: &ExpConfig) {
    let params = ReplicaParams {
        scale: cfg.scale,
        seed: cfg.seed,
        mu: 10.0,
    };
    run_theta(
        cfg,
        "fig13",
        twitter_mask_like(&params),
        ScoringFunction::Plurality,
    );
}

/// Figure 14: Copeland score vs θ on Yelp.
pub fn run_copeland(cfg: &ExpConfig) {
    let params = ReplicaParams {
        scale: cfg.scale,
        seed: cfg.seed,
        mu: 10.0,
    };
    run_theta(cfg, "fig14", yelp_like(&params), ScoringFunction::Copeland);
}
