//! Figure 18 (Appendix B): fraction of users still changing opinion at
//! each timestamp, for several tolerances ∆.

use crate::{ExpConfig, Result, Table};
use vom_datasets::{yelp_like, ReplicaParams};
use vom_diffusion::convergence::change_fraction_series;

/// The paper's motivation for a finite horizon: a significant fraction of
/// users keeps moving before t = 30, especially at small tolerances.
pub fn run(cfg: &ExpConfig) -> Result<()> {
    let params = ReplicaParams {
        scale: cfg.scale,
        seed: cfg.seed,
        mu: 10.0,
    };
    let ds = yelp_like(&params);
    let cand = ds.instance.candidate(ds.default_target);
    let engine = cand.engine();
    let t_max = 30;
    let tolerances = [0.1, 0.5, 1.0, 5.0];
    let mut table = Table::new(
        "fig18",
        "% of nodes changing opinion from t-1 to t, per tolerance Δ (paper Figure 18)",
        &["t", "Δ=0.1%", "Δ=0.5%", "Δ=1%", "Δ=5%"],
    );
    let series: Vec<Vec<f64>> = tolerances
        .iter()
        .map(|&tol| change_fraction_series(&engine, &[], t_max, tol))
        .collect();
    for (t, row) in (1..=t_max).zip(0..t_max) {
        table.row(vec![
            t.to_string(),
            format!("{:.1}", 100.0 * series[0][row]),
            format!("{:.1}", 100.0 * series[1][row]),
            format!("{:.1}", 100.0 * series[2][row]),
            format!("{:.1}", 100.0 * series[3][row]),
        ]);
    }
    table.emit(&cfg.out_dir);
    Ok(())
}
