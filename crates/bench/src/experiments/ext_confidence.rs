//! Extension experiment `ext-confidence`: bounded-confidence structure
//! and what it means for seeding.
//!
//! Part 1 sweeps the confidence bound ε for Deffuant and
//! Hegselmann–Krause on a polarized two-community network and reports
//! the surviving opinion-cluster count and polarization index — the
//! bounded-confidence literature's headline observable (clusters ≈
//! `⌊1/(2ε)⌋` on uniform opinions; 2 frozen camps when ε is below the
//! inter-community gap).
//!
//! Part 2 measures how the *same seed budget* converts the rival camp
//! as ε grows: below the gap the seeds are inaudible to the rival
//! community, above it they pull everyone — the quantitative version of
//! the `polarized_communities` example.

use crate::{ExpConfig, Result, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use vom_diffusion::OpinionMatrix;
use vom_dynamics::{
    expected_opinions, opinion_clusters, polarization_index, DeffuantModel, DynamicsModel,
    DynamicsSeeder, HkModel,
};
use vom_graph::builder::graph_from_edges;
use vom_graph::generators::stochastic_block;
use vom_voting::ScoringFunction;

/// Builds the polarized two-community instance: SBM graph, candidate 0
/// loved by community 0 (even nodes) and disliked by community 1.
fn polarized(n: usize, seed: u64) -> (Arc<vom_graph::SocialGraph>, OpinionMatrix) {
    let mut rng = StdRng::seed_from_u64(seed);
    let edges = stochastic_block(n, 2, 0.12, 0.015, &mut rng);
    let graph = Arc::new(graph_from_edges(n, &edges).expect("valid SBM"));
    let mut row0 = vec![0.0; n];
    let mut row1 = vec![0.0; n];
    for v in 0..n {
        let noise: f64 = rng.gen_range(-0.05..0.05);
        if v % 2 == 0 {
            row0[v] = (0.75 + noise).clamp(0.0, 1.0);
            row1[v] = (0.25 - noise).clamp(0.0, 1.0);
        } else {
            row0[v] = (0.25 + noise).clamp(0.0, 1.0);
            row1[v] = (0.75 - noise).clamp(0.0, 1.0);
        }
    }
    let b = OpinionMatrix::from_rows(vec![row0, row1]).expect("valid opinions");
    (graph, b)
}

/// Runs the confidence-bound sweep.
pub fn run(cfg: &ExpConfig) -> Result<()> {
    let n = if cfg.quick { 80 } else { 160 };
    let t = if cfg.quick { 10 } else { 20 };
    let k = if cfg.quick { 3 } else { 5 };
    let runs = if cfg.quick { 12 } else { 24 };
    let (graph, initial) = polarized(n, cfg.seed);
    let epsilons = [0.1, 0.2, 0.3, 0.5, 0.8, 1.0];

    let mut structure = Table::new(
        "ext-confidence",
        &format!("opinion clusters & polarization vs epsilon, polarized SBM n={n}, t={t}"),
        &[
            "epsilon",
            "model",
            "clusters",
            "largest cluster",
            "polarization",
            "plurality lift of k seeds",
        ],
    );

    let score = ScoringFunction::Plurality;
    for &eps in &epsilons {
        let models: Vec<Box<dyn DynamicsModel>> = vec![
            Box::new(DeffuantModel::new(graph.clone(), initial.clone(), eps, 0.4).expect("valid")),
            Box::new(HkModel::new(graph.clone(), initial.clone(), eps).expect("valid")),
        ];
        for model in &models {
            // Seedless structure of the target's opinion row at t.
            let snap = expected_opinions(model.as_ref(), t, 0, &[], runs, cfg.seed);
            let clusters = opinion_clusters(snap.row(0), eps.max(0.05));
            let largest = clusters.iter().map(|c| c.size).max().unwrap_or(0);
            let polar = polarization_index(snap.row(0));

            // Seeding power at this ε.
            let seeder = DynamicsSeeder::new(model.as_ref(), t, 0, runs, cfg.seed);
            let seeds = seeder.greedy(k, &score);
            let before = score.score(&snap, 0);
            let after = score.score(
                &expected_opinions(model.as_ref(), t, 0, &seeds, runs, cfg.seed),
                0,
            );
            structure.row(vec![
                format!("{eps:.1}"),
                model.name().to_string(),
                clusters.len().to_string(),
                largest.to_string(),
                format!("{polar:.2}"),
                format!("{:+.1}", after - before),
            ]);
        }
    }
    structure.emit(&cfg.out_dir);
    Ok(())
}
