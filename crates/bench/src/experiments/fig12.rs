//! Figure 12: cumulative score and seed-finding time vs the time
//! horizon `t`.

use crate::{secs, AnyMethod, ExpConfig, Result, Table};
use vom_core::Problem;
use vom_datasets::{yelp_like, ReplicaParams};
use vom_voting::ScoringFunction;

/// Sweeps `t = 0..=30` for DM/RW/RS on Yelp — the paper's finding: the
/// score plateaus near `t = 20` (hence the default horizon), and DM's
/// time grows linearly in `t` while RW/RS barely move.
pub fn run(cfg: &ExpConfig) -> Result<()> {
    let params = ReplicaParams {
        scale: (cfg.scale * 0.4).max(0.0005),
        seed: cfg.seed,
        mu: 10.0,
    };
    let ds = yelp_like(&params);
    let k = (cfg.default_k() / 2)
        .clamp(5, ds.instance.num_nodes() / 10)
        .max(1);
    let horizons: Vec<usize> = if cfg.quick {
        vec![0, 5, 10, 20]
    } else {
        vec![0, 2, 5, 10, 15, 20, 25, 30]
    };
    let mut table = Table::new(
        "fig12",
        "cumulative score and seed-finding time vs horizon t (paper Figure 12)",
        &["t", "method", "score", "time_s"],
    );
    for &t in &horizons {
        let problem = Problem::new(
            &ds.instance,
            ds.default_target,
            k,
            t,
            ScoringFunction::Cumulative,
        )?;
        // The artifacts depend on the horizon, so each t needs its own
        // build; the one-shot evaluation is the honest cost here.
        for m in [AnyMethod::Dm, AnyMethod::Rw, AnyMethod::Rs] {
            let out = crate::evaluate_baseline(&problem, m, cfg.seed)?;
            table.row(vec![
                t.to_string(),
                m.name().to_string(),
                format!("{:.2}", out.score),
                secs(out.elapsed),
            ]);
        }
    }
    table.emit(&cfg.out_dir);
    Ok(())
}
