//! Extension experiment `ext-dynamics`: the same seeding problem under
//! alternative opinion-dynamics models — the paper's §IX "more opinion
//! diffusion models" future-work direction.
//!
//! Two questions, on a DBLP-like replica:
//!
//! 1. *Per-model seeding*: for each model (FJ, voter, majority rule,
//!    Sznajd, Deffuant, Hegselmann–Krause), greedily pick `k` seeds for
//!    the target by simulating that model, and report the expected
//!    cumulative/plurality lift.
//! 2. *Seed portability*: evaluate the FJ-selected seeds under every
//!    other model. If FJ seeds transfer well, the cheap FJ machinery
//!    (RW/RS) remains useful even when the true dynamics differ.

use crate::{secs, ExpConfig, Result, Table};
use std::sync::Arc;
use vom_datasets::{dblp_like, ReplicaParams};
use vom_diffusion::OpinionMatrix;
use vom_dynamics::{
    expected_opinions, DeffuantModel, DynamicsModel, DynamicsSeeder, FjDynamics, HkModel,
    MajorityRule, QVoterModel, SznajdModel, VoterModel,
};
use vom_voting::ScoringFunction;

/// Runs the dynamics-model comparison.
pub fn run(cfg: &ExpConfig) -> Result<()> {
    // Greedy-by-simulation costs O(k·n·runs) realizations per model;
    // keep the replica small so the comparison finishes in minutes even
    // single-core (the Sznajd sweep is the expensive one).
    let params = ReplicaParams {
        scale: cfg.scale.min(if cfg.quick { 0.001 } else { 0.002 }),
        seed: cfg.seed,
        mu: 10.0,
    };
    let ds = dblp_like(&params);
    let inst = Arc::new(ds.instance);
    let q = ds.default_target;
    let n = inst.num_nodes();
    let t = if cfg.quick { 5 } else { 10 };
    let k = if cfg.quick { 3 } else { 4 };
    let runs = if cfg.quick { 12 } else { 24 };

    // Rebuild the shared graph + initial opinion matrix the models need.
    let graph = inst.graph_of(q).clone();
    let rows: Vec<Vec<f64>> = (0..inst.num_candidates())
        .map(|c| inst.candidate(c).initial.to_vec())
        .collect();
    let initial = OpinionMatrix::from_rows(rows).expect("replica opinions are valid");

    let models: Vec<Box<dyn DynamicsModel>> = vec![
        Box::new(FjDynamics::new(inst.clone())),
        Box::new(VoterModel::new(graph.clone(), initial.clone()).expect("valid")),
        Box::new(QVoterModel::new(graph.clone(), initial.clone(), 2).expect("valid")),
        Box::new(MajorityRule::new(graph.clone(), initial.clone()).expect("valid")),
        Box::new(SznajdModel::new(graph.clone(), initial.clone()).expect("valid")),
        Box::new(DeffuantModel::new(graph.clone(), initial.clone(), 0.4, 0.3).expect("valid")),
        Box::new(HkModel::new(graph, initial, 0.3).expect("valid")),
    ];

    let score = ScoringFunction::Plurality;
    let mut table = Table::new(
        "ext-dynamics",
        &format!(
            "plurality under alternative dynamics, n={n}, k={k}, t={t} (extension of paper SIX)"
        ),
        &[
            "model",
            "plurality(no seeds)",
            "plurality(own seeds)",
            "plurality(FJ seeds)",
            "portability %",
            "time_s",
        ],
    );

    // FJ reference seeds, reused for the portability column.
    let fj = FjDynamics::new(inst.clone());
    let fj_seeder = DynamicsSeeder::new(&fj, t, q, 1, cfg.seed);
    let fj_seeds = fj_seeder.greedy(k, &score);

    for model in &models {
        let seeder = DynamicsSeeder::new(model.as_ref(), t, q, runs, cfg.seed);
        let (own_seeds, elapsed) = crate::timed(|| seeder.greedy(k, &score));
        let before = score.score(
            &expected_opinions(model.as_ref(), t, q, &[], runs, cfg.seed),
            q,
        );
        let own = score.score(
            &expected_opinions(model.as_ref(), t, q, &own_seeds, runs, cfg.seed),
            q,
        );
        let ported = score.score(
            &expected_opinions(model.as_ref(), t, q, &fj_seeds, runs, cfg.seed),
            q,
        );
        let lift_own = own - before;
        let lift_ported = ported - before;
        let portability = if lift_own > 0.0 {
            100.0 * lift_ported / lift_own
        } else {
            100.0
        };
        table.row(vec![
            model.name().to_string(),
            format!("{before:.1}"),
            format!("{own:.1}"),
            format!("{ported:.1}"),
            format!("{portability:.0}"),
            secs(elapsed),
        ]);
    }
    table.emit(&cfg.out_dir);
    Ok(())
}
