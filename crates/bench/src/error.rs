//! Harness-level error type: experiments propagate selection failures
//! instead of panicking mid-sweep.

use std::fmt;
use vom_core::CoreError;

/// An error raised while running an experiment.
#[derive(Debug, Clone, PartialEq)]
pub enum BenchError {
    /// A selection engine failed (propagated from `vom-core`).
    Core(CoreError),
    /// An experiment was asked to build an invalid problem/configuration.
    InvalidConfig(String),
}

impl fmt::Display for BenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BenchError::Core(e) => write!(f, "selection failed: {e}"),
            BenchError::InvalidConfig(msg) => write!(f, "invalid experiment config: {msg}"),
        }
    }
}

impl std::error::Error for BenchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BenchError::Core(e) => Some(e),
            BenchError::InvalidConfig(_) => None,
        }
    }
}

impl From<CoreError> for BenchError {
    fn from(e: CoreError) -> Self {
        BenchError::Core(e)
    }
}

/// Harness-wide result type.
pub type Result<T> = std::result::Result<T, BenchError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_wrap_the_core_error() {
        let e: BenchError = CoreError::BudgetExceedsPrepared { k: 9, budget: 3 }.into();
        let msg = e.to_string();
        assert!(msg.contains("selection failed"), "{msg}");
        assert!(msg.contains('9'), "{msg}");
    }
}
