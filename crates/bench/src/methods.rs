//! The nine compared methods of §VIII-A, driven through the registry and
//! the prepared-engine lifecycle.
//!
//! [`AnyMethod`] is the core registry's [`vom_core::MethodId`] — legend
//! names, ours/baseline flags, and ordering all come from
//! [`vom_core::registry`]; this module only adds the harness-wide engine
//! configurations (§VIII-B parameter settings) and the
//! [`MethodOutcome`] row format the experiments emit.

use crate::error::Result;
use std::sync::Arc;
use std::time::Duration;
use vom_baselines::{AnyEngine, BaselineEngine, ImmConfig};
use vom_core::engine::{Engine, PreparedIndex, QuerySession, SeedSelector};
use vom_core::rs::RsConfig;
use vom_core::rw::RwConfig;
use vom_core::Problem;
use vom_graph::Node;

/// Every method of the paper's comparison: our DM / RW / RS plus the six
/// baselines. This *is* the registry id type — see
/// [`vom_core::registry::MethodId`] for `all()`, `without_exact()`,
/// `name()`, and `is_ours()`.
pub type AnyMethod = vom_core::MethodId;

/// The engine for a method under the harness-wide parameter settings
/// (§VIII-B): RW caps per-node walk counts and floors γ for the wide
/// sweeps; IMM gets a bounded RR-set arena.
pub fn harness_engine(method: AnyMethod, seed: u64) -> AnyEngine {
    let imm_cfg = ImmConfig {
        seed,
        max_rr_sets: 400_000,
        ..ImmConfig::default()
    };
    match method {
        AnyMethod::Dm => AnyEngine::Core(Engine::Dm),
        // Harness-wide RW setting: cap per-node walk counts and floor γ a
        // bit higher than the library default — the sweeps run many
        // (dataset, k, method) cells and the replicas' opinion gaps are
        // wide enough for λ = 150.
        AnyMethod::Rw => AnyEngine::Core(Engine::Rw(RwConfig {
            seed,
            max_lambda: 150,
            gamma_floor: 0.1,
            ..RwConfig::default()
        })),
        AnyMethod::Rs => AnyEngine::Core(Engine::Rs(RsConfig {
            seed,
            ..RsConfig::default()
        })),
        AnyMethod::Ic => AnyEngine::Baseline(BaselineEngine::Ic(imm_cfg)),
        AnyMethod::Lt => AnyEngine::Baseline(BaselineEngine::Lt(imm_cfg)),
        AnyMethod::Gedt => AnyEngine::Baseline(BaselineEngine::Gedt),
        AnyMethod::Pr => AnyEngine::Baseline(BaselineEngine::PageRank),
        AnyMethod::Rwr => AnyEngine::Baseline(BaselineEngine::Rwr),
        AnyMethod::Dc => AnyEngine::Baseline(BaselineEngine::Degree),
    }
}

/// Outcome of one (method, problem) evaluation.
#[derive(Debug, Clone)]
pub struct MethodOutcome {
    /// Selected seeds.
    pub seeds: Vec<Node>,
    /// Exact voting score of the seed set (the accuracy metric).
    pub score: f64,
    /// Seed-finding wall time (for prepared queries: the query alone —
    /// the one-time build is reported separately).
    pub elapsed: Duration,
    /// Estimator memory (0 where not applicable).
    pub memory: usize,
}

/// A method prepared once for a `(dataset, target, horizon, budget)` —
/// the unit the sweep experiments iterate: build the immutable
/// [`PreparedIndex`] here, then [`PreparedMethod::evaluate`] per `k`
/// through the bundled [`QuerySession`]. The index is `Arc`-shared:
/// [`PreparedMethod::index`] hands it to further sessions or threads.
pub struct PreparedMethod {
    method: AnyMethod,
    index: Arc<PreparedIndex>,
    session: QuerySession,
}

impl PreparedMethod {
    /// Prepares `method` for `problem` (whose `k` becomes the budget and
    /// whose score is the rule queries default to).
    pub fn new(problem: &Problem<'_>, method: AnyMethod, seed: u64) -> Result<PreparedMethod> {
        let index = Arc::new(harness_engine(method, seed).prepare_index(problem)?);
        let session = PreparedIndex::session(&index);
        Ok(PreparedMethod {
            method,
            index,
            session,
        })
    }

    /// Wraps an already-available index — e.g. one loaded from a
    /// `vom-persist` snapshot — in the prepared-method harness shape.
    /// Loaded and freshly built indexes are interchangeable here.
    pub fn from_index(method: AnyMethod, index: Arc<PreparedIndex>) -> PreparedMethod {
        let session = PreparedIndex::session(&index);
        PreparedMethod {
            method,
            index,
            session,
        }
    }

    /// The method's registry id.
    pub fn method(&self) -> AnyMethod {
        self.method
    }

    /// One-time artifact build wall time.
    pub fn build_time(&self) -> Duration {
        self.index.build_stats().build_time
    }

    /// Selects `k` seeds under the prepared rule and evaluates them
    /// exactly — "all baselines differ only in the seed selection
    /// methods; once the seeds are selected, all of them are evaluated in
    /// the same multi-campaign setting" (§VIII-A).
    pub fn evaluate(&mut self, k: usize) -> Result<MethodOutcome> {
        let res = self.session.select_k(k)?;
        Ok(MethodOutcome {
            seeds: res.seeds,
            score: res.exact_score,
            elapsed: res.elapsed,
            memory: res.estimator_heap_bytes,
        })
    }

    /// The shared prepared index (for opening sessions on other threads
    /// or reading build stats).
    pub fn index(&self) -> &Arc<PreparedIndex> {
        &self.index
    }

    /// The bundled query session, for queries beyond the default rule
    /// (e.g. the rule-comparison experiments).
    pub fn session(&mut self) -> &mut QuerySession {
        &mut self.session
    }
}

/// One-shot evaluation: prepare, run a single query, and fold the build
/// time into [`MethodOutcome::elapsed`] (the historical per-cell cost).
pub fn evaluate_baseline(
    problem: &Problem<'_>,
    method: AnyMethod,
    seed: u64,
) -> Result<MethodOutcome> {
    let mut prepared = PreparedMethod::new(problem, method, seed)?;
    let build = prepared.build_time();
    let mut out = prepared.evaluate(problem.k)?;
    out.elapsed += build;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vom_diffusion::{Instance, OpinionMatrix};
    use vom_graph::builder::graph_from_edges;
    use vom_voting::ScoringFunction;

    #[test]
    fn every_method_returns_k_seeds_and_a_score() {
        let g = Arc::new(graph_from_edges(4, &[(0, 2, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap());
        let b = OpinionMatrix::from_rows(vec![
            vec![0.40, 0.80, 0.60, 0.90],
            vec![0.35, 0.75, 1.00, 0.80],
        ])
        .unwrap();
        let inst = Instance::shared(g, b, vec![0.0, 0.0, 0.5, 0.5]).unwrap();
        let p = Problem::new(&inst, 0, 2, 1, ScoringFunction::Cumulative).unwrap();
        for m in AnyMethod::all() {
            let out = evaluate_baseline(&p, m, 5).unwrap();
            assert_eq!(out.seeds.len(), 2, "{}", m.name());
            assert!(
                out.score >= 2.55,
                "{} cannot lose to the empty set",
                m.name()
            );
        }
    }

    #[test]
    fn names_are_unique() {
        // Derived from the registry — the single source of legend names.
        let mut names: Vec<&str> = AnyMethod::all().iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 9);
    }

    #[test]
    fn prepared_method_amortizes_the_build() {
        let g = Arc::new(graph_from_edges(4, &[(0, 2, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap());
        let b = OpinionMatrix::from_rows(vec![
            vec![0.40, 0.80, 0.60, 0.90],
            vec![0.35, 0.75, 1.00, 0.80],
        ])
        .unwrap();
        let inst = Instance::shared(g, b, vec![0.0, 0.0, 0.5, 0.5]).unwrap();
        let p = Problem::new(&inst, 0, 2, 1, ScoringFunction::Cumulative).unwrap();
        let mut prepared = PreparedMethod::new(&p, AnyMethod::Rs, 5).unwrap();
        // Use the backend-local build count (the process-global counters
        // race with sibling tests on parallel test threads).
        let builds_before = prepared.index().build_stats().artifact_builds;
        for k in 1..=2 {
            assert_eq!(prepared.evaluate(k).unwrap().seeds.len(), k);
        }
        let builds_after = prepared.index().build_stats().artifact_builds;
        assert_eq!(
            builds_after, builds_before,
            "queries must not rebuild sketches"
        );
    }
}
