//! The nine compared methods of §VIII-A, behind one dispatch enum.

use std::time::Duration;
use vom_baselines::{
    degree_centrality_seeds, gedt_seeds, imm_seeds, pagerank_seeds, rwr_seeds, CascadeModel,
    ImmConfig,
};
use vom_core::rs::RsConfig;
use vom_core::rw::RwConfig;
use vom_core::{select_seeds, Method, Problem};
use vom_graph::Node;

/// Every method of the paper's comparison: our DM / RW / RS plus the six
/// baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnyMethod {
    /// Direct matrix multiplication greedy (ours).
    Dm,
    /// Random-walk greedy (ours).
    Rw,
    /// Reverse sketching greedy (ours, recommended).
    Rs,
    /// IMM under the Independent Cascade model.
    Ic,
    /// IMM under the Linear Threshold model.
    Lt,
    /// Gionis et al. greedy at a finite horizon.
    Gedt,
    /// PageRank centrality.
    Pr,
    /// Random walk with restart.
    Rwr,
    /// Degree centrality.
    Dc,
}

impl AnyMethod {
    /// All nine, in the paper's legend order.
    pub fn all() -> [AnyMethod; 9] {
        [
            AnyMethod::Dm,
            AnyMethod::Rw,
            AnyMethod::Rs,
            AnyMethod::Ic,
            AnyMethod::Lt,
            AnyMethod::Gedt,
            AnyMethod::Pr,
            AnyMethod::Rwr,
            AnyMethod::Dc,
        ]
    }

    /// The fast subset used by wide sweeps when DM would dominate the
    /// wall clock.
    pub fn without_exact() -> [AnyMethod; 8] {
        [
            AnyMethod::Rw,
            AnyMethod::Rs,
            AnyMethod::Ic,
            AnyMethod::Lt,
            AnyMethod::Gedt,
            AnyMethod::Pr,
            AnyMethod::Rwr,
            AnyMethod::Dc,
        ]
    }

    /// Legend name.
    pub fn name(&self) -> &'static str {
        match self {
            AnyMethod::Dm => "DM",
            AnyMethod::Rw => "RW",
            AnyMethod::Rs => "RS",
            AnyMethod::Ic => "IC",
            AnyMethod::Lt => "LT",
            AnyMethod::Gedt => "GED-T",
            AnyMethod::Pr => "PR",
            AnyMethod::Rwr => "RWR",
            AnyMethod::Dc => "DC",
        }
    }

    /// Whether this is one of the paper's proposed methods.
    pub fn is_ours(&self) -> bool {
        matches!(self, AnyMethod::Dm | AnyMethod::Rw | AnyMethod::Rs)
    }
}

/// Outcome of one (method, problem) evaluation.
#[derive(Debug, Clone)]
pub struct MethodOutcome {
    /// Selected seeds.
    pub seeds: Vec<Node>,
    /// Exact voting score of the seed set (the accuracy metric).
    pub score: f64,
    /// Seed-finding wall time.
    pub elapsed: Duration,
    /// Estimator memory (0 where not applicable).
    pub memory: usize,
}

/// Runs a method on a problem and evaluates its seed set exactly under
/// the problem's score — "all baselines differ only in the seed
/// selection methods; once the seeds are selected, all of them are
/// evaluated in the same multi-campaign setting" (§VIII-A).
pub fn evaluate_baseline(problem: &Problem<'_>, method: AnyMethod, seed: u64) -> MethodOutcome {
    let g = problem.instance.graph_of(problem.target);
    let imm_cfg = ImmConfig {
        seed,
        max_rr_sets: 400_000,
        ..ImmConfig::default()
    };
    match method {
        AnyMethod::Dm | AnyMethod::Rw | AnyMethod::Rs => {
            let m = match method {
                AnyMethod::Dm => Method::Dm,
                // Harness-wide RW setting: cap per-node walk counts and
                // floor γ a bit higher than the library default — the
                // sweeps run many (dataset, k, method) cells and the
                // replicas' opinion gaps are wide enough for λ = 150.
                AnyMethod::Rw => Method::Rw(RwConfig {
                    seed,
                    max_lambda: 150,
                    gamma_floor: 0.1,
                    ..RwConfig::default()
                }),
                _ => Method::Rs(RsConfig {
                    seed,
                    ..RsConfig::default()
                }),
            };
            let res = select_seeds(problem, &m).expect("validated problem");
            MethodOutcome {
                seeds: res.seeds,
                score: res.exact_score,
                elapsed: res.elapsed,
                memory: res.estimator_heap_bytes,
            }
        }
        other => {
            let (seeds, elapsed) = crate::timed(|| match other {
                AnyMethod::Ic => {
                    imm_seeds(g, CascadeModel::IndependentCascade, problem.k, &imm_cfg)
                }
                AnyMethod::Lt => imm_seeds(g, CascadeModel::LinearThreshold, problem.k, &imm_cfg),
                AnyMethod::Gedt => gedt_seeds(problem),
                AnyMethod::Pr => pagerank_seeds(g, problem.k),
                AnyMethod::Rwr => rwr_seeds(g, problem.k),
                AnyMethod::Dc => degree_centrality_seeds(g, problem.k),
                _ => unreachable!(),
            });
            let score = problem.exact_score(&seeds);
            MethodOutcome {
                seeds,
                score,
                elapsed,
                memory: 0,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vom_diffusion::{Instance, OpinionMatrix};
    use vom_graph::builder::graph_from_edges;
    use vom_voting::ScoringFunction;

    #[test]
    fn every_method_returns_k_seeds_and_a_score() {
        let g = Arc::new(graph_from_edges(4, &[(0, 2, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap());
        let b = OpinionMatrix::from_rows(vec![
            vec![0.40, 0.80, 0.60, 0.90],
            vec![0.35, 0.75, 1.00, 0.80],
        ])
        .unwrap();
        let inst = Instance::shared(g, b, vec![0.0, 0.0, 0.5, 0.5]).unwrap();
        let p = Problem::new(&inst, 0, 2, 1, ScoringFunction::Cumulative).unwrap();
        for m in AnyMethod::all() {
            let out = evaluate_baseline(&p, m, 5);
            assert_eq!(out.seeds.len(), 2, "{}", m.name());
            assert!(
                out.score >= 2.55,
                "{} cannot lose to the empty set",
                m.name()
            );
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = AnyMethod::all().iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 9);
    }
}
