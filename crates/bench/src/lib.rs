#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # vom-bench
//!
//! The experiment harness: one module per table/figure of the paper's
//! evaluation (§VIII + appendices), regenerating the same rows/series on
//! the synthetic dataset replicas. Entry point: the `repro` binary
//! (`cargo run -p vom-bench --release --bin repro -- <experiment|all>`).
//!
//! Absolute numbers differ from the paper (different hardware, synthetic
//! data at reduced scale); the *shape* — which method wins, monotonicity
//! in `k`/`t`, parameter sensitivities — is asserted by the workspace
//! integration tests in `tests/experiments_shape.rs`.

pub mod bench_parallel;
pub mod chaos;
pub mod error;
pub mod experiments;
pub mod methods;
pub mod scale_stress;
pub mod table;

pub use error::{BenchError, Result};
pub use methods::{evaluate_baseline, harness_engine, AnyMethod, MethodOutcome, PreparedMethod};
pub use table::Table;

use std::time::{Duration, Instant};

/// Global experiment configuration (set from `repro` CLI flags).
#[derive(Debug, Clone)]
pub struct ExpConfig {
    /// Dataset scale: fraction of the paper's node counts.
    pub scale: f64,
    /// Master RNG seed.
    pub seed: u64,
    /// Quick mode: smaller sweeps for smoke testing.
    pub quick: bool,
    /// Directory for JSON result rows (`results/` by default).
    pub out_dir: std::path::PathBuf,
    /// Explicit seed-budget override (`repro --k N`). Experiments that
    /// derive a budget from [`ExpConfig::default_k`] still clamp it to
    /// their instance size; the `--bench-json` harness takes it
    /// verbatim so unsatisfiable budgets exercise the error path.
    pub k_override: Option<usize>,
    /// Directory the `--bench-json` workloads snapshot their prepared
    /// indexes into after querying (`repro --save-index DIR`).
    pub save_index: Option<std::path::PathBuf>,
    /// Directory the `--bench-json` workloads load prepared-index
    /// snapshots from instead of building (`repro --load-index DIR`).
    /// A missing or unusable snapshot falls back to a fresh build with
    /// a warning; when every index loads, the harness asserts no walk or
    /// sketch artifact was re-simulated (`BuildCounters` delta zero).
    pub load_index: Option<std::path::PathBuf>,
}

impl Default for ExpConfig {
    fn default() -> Self {
        ExpConfig {
            scale: 0.003,
            seed: 2023,
            quick: false,
            out_dir: std::path::PathBuf::from("results"),
            k_override: None,
            save_index: None,
            load_index: None,
        }
    }
}

impl ExpConfig {
    /// The seed budgets swept in Figures 6–8, scaled down from the
    /// paper's 100..2000.
    pub fn k_sweep(&self) -> Vec<usize> {
        if self.quick {
            vec![5, 10, 20]
        } else {
            vec![10, 20, 50, 100]
        }
    }

    /// The default seed budget (paper: 100; `--k` overrides).
    pub fn default_k(&self) -> usize {
        if let Some(k) = self.k_override {
            return k;
        }
        if self.quick {
            10
        } else {
            100
        }
    }

    /// The default time horizon (paper: 20).
    pub fn default_t(&self) -> usize {
        20
    }
}

/// Times a closure.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Formats a duration in seconds with 3 decimals.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_sweeps_shrink_in_quick_mode() {
        let full = ExpConfig::default();
        let quick = ExpConfig {
            quick: true,
            ..ExpConfig::default()
        };
        assert!(quick.k_sweep().len() < full.k_sweep().len());
        assert!(quick.default_k() < full.default_k());
    }

    #[test]
    fn timed_reports_elapsed() {
        let (v, d) = timed(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0);
    }
}
