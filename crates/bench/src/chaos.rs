//! The seeded fault-injection harness behind `repro --chaos`.
//!
//! Replays the batched query-throughput workload of
//! [`crate::bench_parallel`] under a deterministic
//! [`vom_service::FaultPlan`] — an injected index-build panic, two
//! injected query panics, two deadline-budgeted requests with the
//! meter's tick charges inflated, and a transient snapshot IO fault
//! during a warm restart — and asserts the service's robustness
//! contracts hold at every worker-pool width:
//!
//! * every **injected fault surfaces as its typed error**
//!   ([`vom_service::ServiceError::Panicked`]) in exactly its own batch
//!   slot — a silently swallowed or misplaced fault fails the run
//!   (`repro` exits nonzero);
//! * every **non-faulted, non-budgeted slot is bit-identical** to the
//!   fault-free baseline selections;
//! * every **budgeted slot that degrades returns a verified prefix** of
//!   its baseline selection ([`vom_core::Outcome::Degraded`]);
//! * the whole faulted batch — panic placement, degraded prefix
//!   lengths, completed selections — is **identical at widths 1, 2,
//!   and the parallel target** (one digest per width, all equal);
//! * the **transient snapshot fault is retried** with the deterministic
//!   backoff schedule and recovers ([`vom_service::WarmSummary`]), with
//!   no real sleeps ([`vom_service::NoopScheduler`]).
//!
//! Which slots are faulted and how many ticks the budgets grant derive
//! from `cfg.seed` through a splitmix64 stream — never from wall-clock
//! time — so a chaos run is reproducible bit-for-bit from its seed
//! alone. Results are written to `BENCH_chaos.json`.

use crate::bench_parallel::{selections_digest, throughput_requests, Selections, QT_GRAPH};
use crate::error::{BenchError, Result};
use crate::experiments::sweep_k;
use crate::ExpConfig;
use std::path::PathBuf;
use std::sync::Arc;
use vom_core::engine::Outcome;
use vom_graph::Node;
use vom_service::{
    FaultPlan, NoopScheduler, RetryPolicy, ServiceError, ServiceRequest, VomService,
};

/// The seeded fault layout of one chaos run: which batch slots fault,
/// which are deadline-budgeted, and how hard the meter is inflated.
#[derive(Debug, Clone)]
struct FaultSpec {
    /// Injected build panics for the shared graph (the first scheduled
    /// request triggers the build, so its slot surfaces the panic).
    build_panics: u32,
    /// Batch slots whose worker panics (never slot 0 — that one is
    /// reserved for the build panic).
    query_panic_slots: Vec<usize>,
    /// `(slot, ticks)` — requests granted a deadline budget small
    /// enough to degrade under the greedy loops' metered checkpoints.
    budgets: Vec<(usize, u64)>,
    /// Meter charge multiplier applied to every budgeted query.
    tick_scale: u64,
    /// Injected transient-open failures for the warm-restart probe.
    transient_opens: u32,
}

/// splitmix64 — the workspace's stock seed-stream primitive.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Draws `count` distinct slots from `1..len`, skipping `taken`.
fn draw_slots(rng: &mut u64, len: usize, count: usize, taken: &[usize]) -> Vec<usize> {
    let mut slots = Vec::with_capacity(count);
    while slots.len() < count {
        let slot = 1 + (splitmix(rng) as usize) % (len - 1);
        if !taken.contains(&slot) && !slots.contains(&slot) {
            slots.push(slot);
        }
    }
    slots.sort_unstable();
    slots
}

/// Derives the fault layout for a batch of `len` requests from the
/// experiment seed. Pure function of `(seed, len)`.
fn derive_spec(seed: u64, len: usize) -> Result<FaultSpec> {
    if len < 6 {
        return Err(BenchError::InvalidConfig(format!(
            "chaos workload needs at least 6 requests, got {len}"
        )));
    }
    let mut rng = seed ^ 0xc4a05_u64.wrapping_mul(0x9e37_79b9);
    let query_panic_slots = draw_slots(&mut rng, len, 2, &[]);
    let budget_slots = draw_slots(&mut rng, len, 2, &query_panic_slots);
    let budgets = budget_slots
        .into_iter()
        .map(|slot| (slot, 3 + splitmix(&mut rng) % 29))
        .collect();
    Ok(FaultSpec {
        build_panics: 1,
        query_panic_slots,
        budgets,
        tick_scale: 2,
        transient_opens: 2,
    })
}

impl FaultSpec {
    /// The service-side plan this spec describes. Built fresh per run:
    /// build-panic and transient-open counts are consumed as they fire.
    fn plan(&self, seed: u64, snapshot_file: &str) -> Arc<FaultPlan> {
        let mut plan = FaultPlan::new(seed)
            .with_build_panics(QT_GRAPH, self.build_panics)
            .with_tick_scale(self.tick_scale)
            .with_transient_unreadable(snapshot_file, self.transient_opens);
        for &slot in &self.query_panic_slots {
            plan = plan.with_query_panic(slot);
        }
        Arc::new(plan)
    }

    /// The batch with this spec's deadline budgets applied.
    fn budgeted(&self, base: &[ServiceRequest]) -> Vec<ServiceRequest> {
        let mut requests = base.to_vec();
        for &(slot, ticks) in &self.budgets {
            requests[slot] = requests[slot].clone().with_budget(ticks);
        }
        requests
    }
}

/// What one faulted batch run looked like, reduced to comparable form.
struct ChaosPass {
    /// Injected faults that surfaced as `ServiceError::Panicked` in
    /// their own slot (expected: 1 build + every query-panic slot).
    faults_surfaced: usize,
    /// Budgeted slots that came back `Outcome::Degraded` with a
    /// verified baseline prefix.
    degraded: usize,
    /// Digest over every slot — outcome kind and seeds — so equal
    /// digests across widths mean the whole faulted batch (panic
    /// placement, prefix lengths, selections) was identical.
    slot_digest: String,
    /// Digest over only the clean (non-faulted, non-budgeted) slots,
    /// comparable against the same subset of the baseline.
    clean_digest: String,
}

/// The result vector of a fresh fault-free service at the current pool
/// width, with every slot required to complete.
fn baseline_pass(
    cfg: &ExpConfig,
    service: &VomService,
    base: &[ServiceRequest],
) -> Result<Selections> {
    let _ = cfg;
    let results = service.run_batch_full(base);
    let mut selections: Selections = Vec::with_capacity(results.len());
    for (i, slot) in results.into_iter().enumerate() {
        match slot {
            Ok(Outcome::Complete(res)) => selections.push((format!("slot{i}"), res.seeds)),
            Ok(Outcome::Degraded { .. }) => {
                return Err(BenchError::InvalidConfig(format!(
                    "baseline slot {i} degraded without a budget"
                )))
            }
            Err(e) => {
                return Err(BenchError::InvalidConfig(format!(
                    "fault-free baseline slot {i} failed: {e}"
                )))
            }
        }
    }
    Ok(selections)
}

/// Runs the faulted batch on a fresh service and checks every slot
/// against the baseline and the fault spec. Any contract violation —
/// a swallowed fault, a corrupted sibling, a non-prefix degradation —
/// is a [`BenchError`], which `repro --chaos` turns into a nonzero
/// exit.
fn chaos_pass(
    spec: &FaultSpec,
    service: &VomService,
    requests: &[ServiceRequest],
    baseline: &Selections,
) -> Result<ChaosPass> {
    let results = service.run_batch_full(requests);
    let mut faults_surfaced = 0usize;
    let mut degraded = 0usize;
    let mut slot_marks: Selections = Vec::with_capacity(results.len());
    let mut clean: Selections = Vec::new();
    for (i, slot) in results.into_iter().enumerate() {
        let budget = spec.budgets.iter().find(|&&(s, _)| s == i);
        if i == 0 {
            // The first scheduled request triggers the (panicking)
            // index build; its slot must carry the typed build fault.
            match slot {
                Err(ServiceError::Panicked { ref context }) if context.contains("index build") => {
                    faults_surfaced += 1;
                    slot_marks.push((format!("slot{i}/build-panic"), Vec::new()));
                }
                other => {
                    return Err(BenchError::InvalidConfig(format!(
                        "injected build panic did not surface in slot 0 (got {other:?})"
                    )))
                }
            }
        } else if spec.query_panic_slots.contains(&i) {
            match slot {
                Err(ServiceError::Panicked { ref context }) if context.contains("query") => {
                    faults_surfaced += 1;
                    slot_marks.push((format!("slot{i}/query-panic"), Vec::new()));
                }
                other => {
                    return Err(BenchError::InvalidConfig(format!(
                        "injected query panic at slot {i} did not surface (got {other:?})"
                    )))
                }
            }
        } else if let Some(&(_, ticks)) = budget {
            match slot {
                Ok(Outcome::Degraded {
                    seeds_prefix,
                    budget_spent,
                    budget_limit,
                }) => {
                    let full: &[Node] = &baseline[i].1;
                    if !full.starts_with(&seeds_prefix) {
                        return Err(BenchError::InvalidConfig(format!(
                            "degraded slot {i} is not a prefix of its baseline selection \
                             ({seeds_prefix:?} vs {full:?})"
                        )));
                    }
                    if budget_spent < budget_limit || budget_limit != ticks {
                        return Err(BenchError::InvalidConfig(format!(
                            "degraded slot {i} reported an inconsistent budget \
                             (spent {budget_spent}, limit {budget_limit}, granted {ticks})"
                        )));
                    }
                    degraded += 1;
                    slot_marks.push((format!("slot{i}/degraded"), seeds_prefix));
                }
                Ok(Outcome::Complete(res)) if res.seeds == baseline[i].1 => {
                    slot_marks.push((format!("slot{i}/complete"), res.seeds));
                }
                other => {
                    return Err(BenchError::InvalidConfig(format!(
                        "budgeted slot {i} neither degraded nor matched baseline (got {other:?})"
                    )))
                }
            }
        } else {
            match slot {
                Ok(Outcome::Complete(res)) if res.seeds == baseline[i].1 => {
                    clean.push((format!("slot{i}"), res.seeds.clone()));
                    slot_marks.push((format!("slot{i}/complete"), res.seeds));
                }
                other => {
                    return Err(BenchError::InvalidConfig(format!(
                        "clean slot {i} diverged from the fault-free baseline under faults \
                         (got {other:?})"
                    )))
                }
            }
        }
    }
    Ok(ChaosPass {
        faults_surfaced,
        degraded,
        slot_digest: selections_digest(&slot_marks),
        clean_digest: selections_digest(&clean),
    })
}

/// Builds a fresh service over the shared dataset instance.
fn fresh_service(cfg: &ExpConfig, instance: &Arc<vom_diffusion::Instance>) -> Result<VomService> {
    let seed = cfg.seed;
    let service =
        VomService::with_engine_factory(Box::new(move |m| crate::harness_engine(m, seed)));
    service
        .register(QT_GRAPH, Arc::clone(instance))
        .map_err(|e| BenchError::InvalidConfig(format!("service registration failed: {e}")))?;
    Ok(service)
}

/// The warm-restart probe: snapshot the workload's index, then warm a
/// fresh service from the snapshot directory while the fault plan makes
/// the first `transient_opens` opens fail. With the default policy's
/// three attempts the open must recover on the final try, with the
/// deterministic `10ms, 20ms` backoff schedule recorded (and no real
/// sleeps — the probe runs under [`NoopScheduler`]).
struct WarmProbe {
    backoff_ms: Vec<u64>,
    recovered: bool,
}

fn warm_retry_probe(
    cfg: &ExpConfig,
    spec: &FaultSpec,
    instance: &Arc<vom_diffusion::Instance>,
    requests: &[ServiceRequest],
) -> Result<WarmProbe> {
    let dir = std::env::temp_dir().join(format!("vom-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir)
        .map_err(|e| BenchError::InvalidConfig(format!("cannot create {}: {e}", dir.display())))?;
    let outcome = (|| -> Result<WarmProbe> {
        let builder = fresh_service(cfg, instance)?;
        let path = builder
            .save_index(&requests[0], &dir)
            .map_err(|e| BenchError::InvalidConfig(format!("snapshot save failed: {e}")))?;
        let file_name = path
            .file_name()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        let warmed = fresh_service(cfg, instance)?;
        warmed.set_fault_plan(Some(spec.plan(cfg.seed, &file_name)));
        let summary = warmed
            .warm_from_dir_with(&dir, RetryPolicy::default(), &NoopScheduler)
            .map_err(|e| BenchError::InvalidConfig(format!("warm restart failed: {e}")))?;
        let Some(record) = summary.retries.first() else {
            return Err(BenchError::InvalidConfig(
                "injected transient snapshot fault was swallowed (no retry recorded)".into(),
            ));
        };
        if !record.recovered || summary.loaded != 1 {
            return Err(BenchError::InvalidConfig(format!(
                "transient snapshot fault did not recover under retry \
                 (recovered: {}, loaded: {})",
                record.recovered, summary.loaded
            )));
        }
        Ok(WarmProbe {
            backoff_ms: record.backoff_ms.clone(),
            recovered: record.recovered,
        })
    })();
    std::fs::remove_dir_all(&dir).ok();
    outcome
}

/// Runs the chaos harness and writes `BENCH_chaos.json` into the
/// current directory. Returns the path written. The pool override in
/// effect at entry is always restored, also on error.
pub fn run(cfg: &ExpConfig) -> Result<PathBuf> {
    let quick = ExpConfig {
        quick: true,
        ..cfg.clone()
    };
    let datasets = sweep_k::datasets(&quick);
    let ds = datasets
        .first()
        .ok_or_else(|| BenchError::InvalidConfig("no dataset for the chaos workload".into()))?;
    let instance = Arc::new(ds.instance.clone());
    let base = throughput_requests(&quick, ds);
    let spec = derive_spec(quick.seed, base.len())?;
    let requests = spec.budgeted(&base);

    let entry_override = rayon::thread_override();
    // The contract is schedule-independence, not speedup, so the high
    // width is forced to at least 8 even on narrow machines — more
    // workers than work is exactly the kind of schedule the faulted
    // batch must shrug off.
    let hi = rayon::current_num_threads().max(8);
    let widths = vec![1usize, 2, hi];

    // Injected panics are caught and typed at the worker boundary;
    // the default hook's backtraces would only flood the log.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let outcome = (|| -> Result<(Selections, Vec<(usize, ChaosPass)>)> {
        // Fault-free reference at one thread: the selections every
        // clean slot — at every width, under every fault — must match.
        rayon::set_thread_override(Some(1));
        let baseline = baseline_pass(&quick, &fresh_service(&quick, &instance)?, &base)?;
        let mut passes = Vec::with_capacity(widths.len());
        for &threads in &widths {
            rayon::set_thread_override(Some(threads));
            // A fresh service and a fresh plan per width: the consumed
            // fault counts reset, so every width faces the identical
            // fault sequence.
            let service = fresh_service(&quick, &instance)?;
            service.set_fault_plan(Some(spec.plan(quick.seed, "unused.vpi")));
            let pass = chaos_pass(&spec, &service, &requests, &baseline)?;
            println!(
                "[chaos threads={threads}: {} faults surfaced, {} degraded, digest {}]",
                pass.faults_surfaced, pass.degraded, pass.slot_digest
            );
            passes.push((threads, pass));
        }
        Ok((baseline, passes))
    })();
    rayon::set_thread_override(entry_override);
    std::panic::set_hook(default_hook);
    let (baseline, passes) = outcome?;

    let expected_faults = 1 + spec.query_panic_slots.len();
    for (threads, pass) in &passes {
        if pass.faults_surfaced != expected_faults {
            return Err(BenchError::InvalidConfig(format!(
                "chaos run at {threads} threads surfaced {} of {expected_faults} injected \
                 faults — a fault was swallowed",
                pass.faults_surfaced
            )));
        }
        if pass.degraded == 0 {
            return Err(BenchError::InvalidConfig(format!(
                "chaos run at {threads} threads degraded no budgeted slot — the deadline \
                 budgets never bound"
            )));
        }
    }
    let reference_digest = &passes[0].1.slot_digest;
    if let Some((threads, _)) = passes
        .iter()
        .find(|(_, p)| &p.slot_digest != reference_digest)
    {
        return Err(BenchError::InvalidConfig(format!(
            "chaos run at {threads} threads diverged from the 1-thread faulted batch \
             (cross-width reproducibility contract violated)"
        )));
    }

    let warm = warm_retry_probe(&quick, &spec, &instance, &base)?;
    println!(
        "[chaos warm-retry: backoff {:?} ms, recovered: {}]",
        warm.backoff_ms, warm.recovered
    );

    let path = PathBuf::from("BENCH_chaos.json");
    std::fs::write(&path, render_json(&quick, &spec, &baseline, &passes, &warm))
        .map_err(|e| BenchError::InvalidConfig(format!("cannot write {}: {e}", path.display())))?;
    Ok(path)
}

/// Hand-rolled JSON (the workspace builds offline without serde; same
/// policy as [`crate::Table::to_json_pretty`]).
fn render_json(
    cfg: &ExpConfig,
    spec: &FaultSpec,
    baseline: &Selections,
    passes: &[(usize, ChaosPass)],
    warm: &WarmProbe,
) -> String {
    let slots = |v: &[usize]| {
        v.iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(", ")
    };
    let budgets = spec
        .budgets
        .iter()
        .map(|(slot, ticks)| format!("{{ \"slot\": {slot}, \"ticks\": {ticks} }}"))
        .collect::<Vec<_>>()
        .join(", ");
    let runs = passes
        .iter()
        .map(|(threads, p)| {
            format!(
                "    {{ \"threads\": {threads}, \"faults_surfaced\": {}, \"degraded\": {}, \
                 \"slot_digest\": \"{}\", \"clean_digest\": \"{}\" }}",
                p.faults_surfaced, p.degraded, p.slot_digest, p.clean_digest
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let backoff = warm
        .backoff_ms
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "{{\n  \"id\": \"chaos\",\n  \"title\": \"seeded fault injection over the \
         query-throughput batch (typed surfacing, prefix degradation, cross-width \
         reproducibility)\",\n  \"scale\": {},\n  \"seed\": {},\n  \
         \"requests\": {},\n  \"baseline_digest\": \"{}\",\n  \"faults\": {{ \
         \"build_panics\": {}, \"query_panic_slots\": [{}], \"budgets\": [{}], \
         \"tick_scale\": {}, \"transient_opens\": {} }},\n  \
         \"warm_retry\": {{ \"backoff_ms\": [{}], \"recovered\": {} }},\n  \
         \"runs\": [\n{}\n  ]\n}}\n",
        cfg.scale,
        cfg.seed,
        baseline.len(),
        selections_digest(baseline),
        spec.build_panics,
        slots(&spec.query_panic_slots),
        budgets,
        spec.tick_scale,
        spec.transient_opens,
        backoff,
        warm.recovered,
        runs
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_spec_is_a_pure_function_of_the_seed() {
        let a = derive_spec(2023, 24).unwrap();
        let b = derive_spec(2023, 24).unwrap();
        assert_eq!(a.query_panic_slots, b.query_panic_slots);
        assert_eq!(a.budgets, b.budgets);
        let c = derive_spec(7, 24).unwrap();
        assert!(a.query_panic_slots != c.query_panic_slots || a.budgets != c.budgets);
    }

    #[test]
    fn fault_slots_never_collide() {
        for seed in 0..32u64 {
            let spec = derive_spec(seed, 24).unwrap();
            // Slot 0 is reserved for the build panic.
            assert!(!spec.query_panic_slots.contains(&0));
            assert!(spec.budgets.iter().all(|&(s, _)| s != 0));
            for &(slot, ticks) in &spec.budgets {
                assert!(!spec.query_panic_slots.contains(&slot));
                assert!(ticks >= 3);
            }
        }
    }

    #[test]
    fn tiny_batches_are_rejected() {
        assert!(derive_spec(2023, 5).is_err());
    }

    #[test]
    fn budgets_apply_only_to_their_slots() {
        let cfg = ExpConfig {
            quick: true,
            ..ExpConfig::default()
        };
        let ds = sweep_k::datasets(&cfg).remove(0);
        let base = throughput_requests(&cfg, &ds);
        let spec = derive_spec(cfg.seed, base.len()).unwrap();
        let budgeted = spec.budgeted(&base);
        for (i, req) in budgeted.iter().enumerate() {
            let expected = spec.budgets.iter().find(|&&(s, _)| s == i).map(|&(_, t)| t);
            assert_eq!(req.budget, expected, "slot {i}");
        }
    }
}
