//! The scale-stress harness behind `repro --scale-stress`.
//!
//! The `--bench-json` trajectory answers "how does the engine parallelize
//! at the replica scales"; this harness answers the orthogonal question
//! the memory diet was funded by: **how do build time, query time, and
//! index memory grow with `n`**. It generates deterministic R-MAT
//! instances ([`vom_datasets::scale_stress`]) at 10⁵ and 10⁶ nodes
//! (quick mode: 5·10³ and 2·10⁴, small enough for the CI smoke), runs
//! the RS engine over each with θ pinned to `n`, and writes one row per
//! scale to `BENCH_scale.json`.
//!
//! Each row records:
//!
//! * per-phase wall clock — dataset generation (`gen_s`), the one-time
//!   sketch build (`build_s`), and the greedy query (`query_s`), plus
//!   the `vom_core::phases` breakdown of the query section;
//! * `heap_bytes` — the index's capacity-exact heap accounting (the
//!   byte-accurate [`vom_core::engine::BuildStats::heap_bytes`], read
//!   after the query so the lazily built sketch set is included);
//! * `heap_bytes_pre_diet` — what the same index cost before the memory
//!   diet: `+ 8θ` for the removed per-walk gain cache and `+ 8n` for
//!   the second candidate's duplicated stubbornness vector. The ratio
//!   of the two columns is the measured reduction;
//! * `deterministic`/`digest` — the selection is re-run at pool widths
//!   1 and 2 and must be bit-identical (the schedule-independence
//!   contract at stress scale); the FNV-1a digest lets external tooling
//!   re-assert run-to-run stability from the JSON alone.

use crate::bench_parallel::{phase_fields, selections_digest, solver_fields, Selections};
use crate::error::{BenchError, Result};
use crate::{timed, ExpConfig, PreparedMethod};
use std::path::PathBuf;
use std::sync::Arc;
use vom_core::engine::SeedSelector;
use vom_core::phases::{self, PhaseTimes, SolverCounters};
use vom_core::rs::RsConfig;
use vom_core::{Engine, MethodId, Problem};
use vom_datasets::{scale_stress, Dataset, ScaleParams};
use vom_voting::ScoringFunction;

/// One measured scale point.
#[derive(Debug, Clone)]
pub struct ScaleSample {
    /// Users `n` of the generated instance.
    pub nodes: usize,
    /// Realized edge count (R-MAT targets `4n`).
    pub edges: usize,
    /// Sketch count θ the RS engine was pinned to (θ = n).
    pub theta: usize,
    /// Seed budget of the greedy query.
    pub k: usize,
    /// Dataset generation wall clock.
    pub gen_s: f64,
    /// One-time index build wall clock (walk arena; the sketch set is
    /// lazy and lands in the first query).
    pub build_s: f64,
    /// Greedy query wall clock (includes the lazy sketch build and the
    /// exact evaluation of the selected seeds).
    pub query_s: f64,
    /// Query-phase breakdown from `vom_core::phases`.
    pub phases: PhaseTimes,
    /// Diffusion-solver work counters of the query section.
    pub solver: SolverCounters,
    /// Whether the width-2 rerun selected bit-identical seeds.
    pub deterministic: bool,
    /// FNV-1a digest of the selections.
    pub digest: String,
    /// Capacity-exact index heap bytes after the query (arena + sketch).
    pub heap_bytes: usize,
    /// The same index's heap bytes before the memory diet (analytic:
    /// `heap_bytes + 8θ + 8n`).
    pub heap_bytes_pre_diet: usize,
    /// Always true: `heap_bytes` is byte-accurate capacity accounting,
    /// not an estimate. CI asserts this stays so.
    pub heap_exact: bool,
}

/// The node counts measured: the paper's largest-corpus order of
/// magnitude (10⁶) plus one decade below it for the growth rate; quick
/// mode keeps the same 1:20-ish spread at smoke-test size.
pub fn scale_points(quick: bool) -> Vec<usize> {
    if quick {
        vec![5_000, 20_000]
    } else {
        vec![100_000, 1_000_000]
    }
}

/// Measures one scale point. The pool is pinned to width 1 for the
/// recorded timings (the stress axis is `n`, not parallelism — and the
/// CI smoke runs on small boxes), then the selection is re-run at width
/// 2 to assert schedule independence.
fn run_scale(cfg: &ExpConfig, nodes: usize) -> Result<ScaleSample> {
    let k = cfg.k_override.unwrap_or(20);
    let t = cfg.default_t();
    let (ds, gen) = timed(|| {
        scale_stress(&ScaleParams {
            nodes,
            seed: cfg.seed,
        })
    });
    let edges = ds.instance.graph_of(0).num_edges();
    let theta = nodes;

    rayon::set_thread_override(Some(1));
    let (sample, reference) = measure_pass(cfg, &ds, nodes, theta, k, t)?;
    // Schedule-independence check: same instance, two pool workers.
    rayon::set_thread_override(Some(2));
    let (_, rerun) = measure_pass(cfg, &ds, nodes, theta, k, t)?;
    let deterministic = rerun == reference;

    Ok(ScaleSample {
        nodes,
        edges,
        theta,
        k,
        gen_s: gen.as_secs_f64(),
        digest: selections_digest(&reference),
        deterministic,
        ..sample
    })
}

/// One timed build + query pass at the current pool width. Returns the
/// sample (without the generation/determinism fields, filled by the
/// caller) and the selections for cross-width comparison.
fn measure_pass(
    cfg: &ExpConfig,
    ds: &Dataset,
    nodes: usize,
    theta: usize,
    k: usize,
    t: usize,
) -> Result<(ScaleSample, Selections)> {
    let spec = Problem::new(
        &ds.instance,
        ds.default_target,
        k,
        t,
        ScoringFunction::Cumulative,
    )?;
    let engine = Engine::Rs(RsConfig {
        seed: cfg.seed,
        theta_override: Some(theta),
        ..RsConfig::default()
    });
    let (index, build) = timed(|| engine.prepare_index(&spec));
    let index = Arc::new(index?);
    let mut prepared = PreparedMethod::from_index(MethodId::Rs, Arc::clone(&index));

    let before = phases::snapshot();
    let solver_before = phases::solver_counters();
    let (out, query) = timed(|| prepared.evaluate(k));
    let out = out?;
    let phases_delta = phases::snapshot().since(before);
    let solver = phases::solver_counters().since(solver_before);
    let selections: Selections = vec![(format!("{}/RS/k{k}", ds.name), out.seeds)];

    // Read the accounting *after* the query: the sketch set is built
    // lazily on first select, and the diet is about its resident size.
    let heap_bytes = index.build_stats().heap_bytes;
    // What the pre-diet encoding would hold resident: the 8-byte cached
    // gain per sketch walk (now derived from truncation end values) and
    // the second candidate's own stubbornness vector (now one shared
    // SoA buffer).
    let heap_bytes_pre_diet =
        heap_bytes + theta * std::mem::size_of::<f64>() + nodes * std::mem::size_of::<f64>();

    Ok((
        ScaleSample {
            nodes,
            edges: 0,
            theta,
            k,
            gen_s: 0.0,
            build_s: build.as_secs_f64(),
            query_s: query.as_secs_f64(),
            phases: phases_delta,
            solver,
            deterministic: false,
            digest: String::new(),
            heap_bytes,
            heap_bytes_pre_diet,
            heap_exact: true,
        },
        selections,
    ))
}

/// Renders one sample as a JSON object (hand-rolled; same offline-build
/// policy as [`crate::bench_parallel`]).
fn row_json(s: &ScaleSample) -> String {
    format!(
        "    {{\n      \"nodes\": {},\n      \"edges\": {},\n      \"theta\": {},\n      \
         \"k\": {},\n      \"gen_s\": {:.6},\n      \"build_s\": {:.6},\n      \
         \"query_s\": {:.6},\n      \"deterministic\": {},\n      \"digest\": \"{}\",\n      \
         \"heap_bytes\": {},\n      \"heap_bytes_pre_diet\": {},\n      \"heap_exact\": {},\n      \
         \"phases\": {{ {} }},\n      \"solver\": {}\n    }}",
        s.nodes,
        s.edges,
        s.theta,
        s.k,
        s.gen_s,
        s.build_s,
        s.query_s,
        s.deterministic,
        s.digest,
        s.heap_bytes,
        s.heap_bytes_pre_diet,
        s.heap_exact,
        phase_fields(s.phases),
        solver_fields(s.solver)
    )
}

/// Renders the full `BENCH_scale.json` document.
fn render_json(cfg: &ExpConfig, samples: &[ScaleSample]) -> String {
    let rows = samples.iter().map(row_json).collect::<Vec<_>>().join(",\n");
    format!(
        "{{\n  \"id\": \"scale_stress\",\n  \"title\": \"build/query wall clock and \
         capacity-exact index memory vs n (R-MAT, RS engine, theta = n)\",\n  \
         \"seed\": {},\n  \"quick\": {},\n  \"rows\": [\n{rows}\n  ]\n}}\n",
        cfg.seed, cfg.quick
    )
}

/// Runs the scale-stress workload and writes `BENCH_scale.json` to the
/// current directory. Fails if any scale's width-2 rerun diverges from
/// the width-1 selections.
pub fn run(cfg: &ExpConfig) -> Result<PathBuf> {
    let entry_override = rayon::thread_override();
    let mut samples = Vec::new();
    let outcome = (|| -> Result<()> {
        for nodes in scale_points(cfg.quick) {
            let s = run_scale(cfg, nodes)?;
            println!(
                "[scale-stress n={}: gen {:.3}s, build {:.3}s, query {:.3}s, \
                 heap {:.1} MiB (pre-diet {:.1} MiB), digest {}]",
                s.nodes,
                s.gen_s,
                s.build_s,
                s.query_s,
                s.heap_bytes as f64 / (1024.0 * 1024.0),
                s.heap_bytes_pre_diet as f64 / (1024.0 * 1024.0),
                s.digest
            );
            samples.push(s);
        }
        Ok(())
    })();
    rayon::set_thread_override(entry_override);
    outcome?;

    if let Some(bad) = samples.iter().find(|s| !s.deterministic) {
        return Err(BenchError::InvalidConfig(format!(
            "scale-stress run at n = {} diverged between pool widths 1 and 2 \
             (schedule-independence contract violated)",
            bad.nodes
        )));
    }
    let path = PathBuf::from("BENCH_scale.json");
    std::fs::write(&path, render_json(cfg, &samples))
        .map_err(|e| BenchError::InvalidConfig(format!("cannot write {}: {e}", path.display())))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn json_is_shaped_for_the_trajectory_tooling() {
        let cfg = ExpConfig::default();
        let phases = PhaseTimes {
            diffusion: Duration::from_millis(10),
            truncation: Duration::from_millis(20),
            scoring: Duration::from_millis(30),
            diffusion_warm: Duration::from_millis(40),
        };
        let solver = SolverCounters {
            cold_solves: 1,
            warm_solves: 2,
            cold_steps: 3,
            warm_frontier_nodes: 4,
        };
        let samples = vec![ScaleSample {
            nodes: 100_000,
            edges: 399_500,
            theta: 100_000,
            k: 20,
            gen_s: 1.25,
            build_s: 2.5,
            query_s: 0.75,
            phases,
            solver,
            deterministic: true,
            digest: "00c0ffee00c0ffee".into(),
            heap_bytes: 10_000_000,
            heap_bytes_pre_diet: 11_600_000,
            heap_exact: true,
        }];
        let json = render_json(&cfg, &samples);
        assert!(json.contains("\"id\": \"scale_stress\""));
        assert!(json.contains("\"nodes\": 100000"));
        assert!(json.contains("\"theta\": 100000"));
        assert!(json.contains("\"gen_s\": 1.250000"));
        assert!(json.contains("\"build_s\": 2.500000"));
        assert!(json.contains("\"query_s\": 0.750000"));
        assert!(json.contains("\"deterministic\": true"));
        assert!(json.contains("\"digest\": \"00c0ffee00c0ffee\""));
        assert!(json.contains("\"heap_bytes\": 10000000"));
        assert!(json.contains("\"heap_bytes_pre_diet\": 11600000"));
        assert!(json.contains("\"heap_exact\": true"));
        assert!(json.contains("\"phases\": { \"diffusion_s\": 0.050000"));
        assert!(json.contains("\"solver\": { \"cold_solves\": 1"));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn scale_points_grow_and_shrink_with_quick() {
        let quick = scale_points(true);
        let full = scale_points(false);
        assert!(quick.windows(2).all(|w| w[0] < w[1]));
        assert!(full.windows(2).all(|w| w[0] < w[1]));
        assert!(quick.iter().max() < full.iter().min());
        assert!(
            *full.iter().max().unwrap() >= 1_000_000,
            "the point is 10^6"
        );
    }

    #[test]
    fn tiny_scale_point_is_deterministic_and_exactly_accounted() {
        let cfg = ExpConfig {
            quick: true,
            k_override: Some(4),
            ..ExpConfig::default()
        };
        let entry = rayon::thread_override();
        let a = run_scale(&cfg, 400);
        let b = run_scale(&cfg, 400);
        rayon::set_thread_override(entry);
        let (a, b) = (a.unwrap(), b.unwrap());
        assert!(a.deterministic, "widths 1 and 2 must select identically");
        assert_eq!(a.digest, b.digest, "run-to-run digests must match");
        assert_eq!(a.edges, b.edges);
        assert!(a.heap_exact);
        assert!(a.heap_bytes > 0);
        assert_eq!(
            a.heap_bytes_pre_diet - a.heap_bytes,
            8 * a.theta + 8 * a.nodes,
            "diet delta is the gain cache plus the duplicated stubbornness row"
        );
    }
}
