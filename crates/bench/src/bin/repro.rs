#![forbid(unsafe_code)]
//! `repro` — regenerates every table and figure of the paper.
//!
//! Usage:
//!
//! ```text
//! repro <experiment|all> [--scale F] [--seed N] [--quick] [--out DIR] [--k N] [--threads N]
//! repro --bench-json [--scale F] [--seed N] [--k N] [--threads N]
//!       [--save-index DIR] [--load-index DIR]
//! repro --scale-stress [--quick] [--seed N] [--k N]
//! repro --chaos [--seed N] [--threads N]
//! ```
//!
//! Experiments: table1 table2 table3 table6 fig2 case-study fig6 fig7
//! fig8 fig9 fig10 fig11 fig12 fig13 fig14 fig15 fig16 fig17 fig18 fig19.
//!
//! `--bench-json` times the fig6-quick and sweep-k workloads plus a
//! batched query-throughput workload at 1 and N pool threads and writes
//! `BENCH_parallel.json` (the perf trajectory); it can run alone or
//! alongside experiment ids.
//!
//! `--save-index DIR` snapshots every index the `--bench-json` sweep
//! workloads prepare into `DIR` (versioned `.vpi` files); `--load-index
//! DIR` makes a later invocation load them instead of re-simulating
//! walks and sketches — a warm service restart. Unusable snapshots fall
//! back to a fresh build with a warning; results are bit-identical
//! either way.
//!
//! `--scale-stress` runs the scale-stress workload (deterministic R-MAT
//! instances at 10⁵ and 10⁶ nodes; `--quick` shrinks them for smoke
//! testing) and writes `BENCH_scale.json`: build/query wall clock and
//! capacity-exact index memory per scale, with a cross-width
//! determinism check. It can run alone or alongside experiment ids.
//!
//! `--chaos` runs the seeded fault-injection harness: the
//! query-throughput batch under an injected build panic, query panics,
//! inflated deadline budgets, and a transient snapshot IO fault, at
//! pool widths 1/2/N. It asserts every fault surfaces as its typed
//! error, every clean slot stays bit-identical to the fault-free
//! baseline, and every degraded slot is a verified prefix — exiting
//! nonzero if any contract breaks — and writes `BENCH_chaos.json`.
//!
//! `--threads N` pins the worker pool width for the whole run. The pool
//! width resolves in this order: `--threads` flag, then the
//! `VOM_THREADS` environment variable, then the machine's available
//! parallelism (see README.md).

use vom_bench::experiments::{self, ALL_IDS};
use vom_bench::ExpConfig;

fn usage() -> ! {
    eprintln!(
        "usage: repro <experiment|all> [--scale F] [--seed N] [--quick] [--out DIR] [--k N] [--threads N]\n\
         \x20      repro --bench-json [--scale F] [--seed N] [--k N] [--threads N] [--save-index DIR] [--load-index DIR]\n\
         \x20      repro --scale-stress [--quick] [--seed N] [--k N]\n\
         \x20      repro --chaos [--seed N] [--threads N]\n\
         experiments: {}",
        ALL_IDS.join(" ")
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut cfg = ExpConfig::default();
    let mut targets: Vec<String> = Vec::new();
    let mut bench_json = false;
    let mut scale_stress = false;
    let mut chaos = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--bench-json" => bench_json = true,
            "--scale-stress" => scale_stress = true,
            "--chaos" => chaos = true,
            "--k" => {
                i += 1;
                cfg.k_override = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage()),
                );
            }
            "--scale" => {
                i += 1;
                cfg.scale = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--seed" => {
                i += 1;
                cfg.seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--out" => {
                i += 1;
                cfg.out_dir = args.get(i).map(Into::into).unwrap_or_else(|| usage());
            }
            "--save-index" => {
                i += 1;
                cfg.save_index = Some(args.get(i).map(Into::into).unwrap_or_else(|| usage()));
            }
            "--load-index" => {
                i += 1;
                cfg.load_index = Some(args.get(i).map(Into::into).unwrap_or_else(|| usage()));
            }
            "--threads" => {
                i += 1;
                let threads: usize = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&t| t >= 1)
                    .unwrap_or_else(|| usage());
                rayon::set_thread_override(Some(threads));
            }
            "--quick" => cfg.quick = true,
            flag if flag.starts_with("--") => usage(),
            id => targets.push(id.to_string()),
        }
        i += 1;
    }
    if targets.is_empty() && !bench_json && !scale_stress && !chaos {
        usage();
    }
    let ids: Vec<String> = if targets.iter().any(|t| t == "all") {
        ALL_IDS.iter().map(|s| s.to_string()).collect()
    } else {
        targets
    };
    println!(
        "# vom repro — scale {}, seed {}, quick: {}, threads: {}\n",
        cfg.scale,
        cfg.seed,
        cfg.quick,
        rayon::current_num_threads()
    );
    for id in ids {
        let (outcome, elapsed) = vom_bench::timed(|| experiments::run(&id, &cfg));
        match outcome {
            Ok(true) => println!("[{id} done in {:.1}s]\n", elapsed.as_secs_f64()),
            Ok(false) => {
                eprintln!("unknown experiment '{id}'");
                usage();
            }
            Err(e) => {
                eprintln!("experiment '{id}' failed: {e}");
                std::process::exit(1);
            }
        }
    }
    if bench_json {
        let (outcome, elapsed) = vom_bench::timed(|| vom_bench::bench_parallel::run(&cfg));
        match outcome {
            Ok(path) => println!(
                "[bench-json written to {} in {:.1}s]",
                path.display(),
                elapsed.as_secs_f64()
            ),
            Err(e) => {
                eprintln!("bench-json failed: {e}");
                std::process::exit(1);
            }
        }
    }
    if scale_stress {
        let (outcome, elapsed) = vom_bench::timed(|| vom_bench::scale_stress::run(&cfg));
        match outcome {
            Ok(path) => println!(
                "[scale-stress written to {} in {:.1}s]",
                path.display(),
                elapsed.as_secs_f64()
            ),
            Err(e) => {
                eprintln!("scale-stress failed: {e}");
                std::process::exit(1);
            }
        }
    }
    if chaos {
        let (outcome, elapsed) = vom_bench::timed(|| vom_bench::chaos::run(&cfg));
        match outcome {
            Ok(path) => println!(
                "[chaos written to {} in {:.1}s]",
                path.display(),
                elapsed.as_secs_f64()
            ),
            Err(e) => {
                eprintln!("chaos failed: {e}");
                std::process::exit(1);
            }
        }
    }
}
