//! Minimal table rendering + JSON row output for the experiments.

use std::path::Path;

/// A printable result table that can also be persisted as JSON rows.
#[derive(Debug, Clone)]
pub struct Table {
    /// Table/figure id, e.g. "fig6".
    pub id: String,
    /// Human caption.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// String-rendered rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts an empty table.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Table {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Serializes the table as pretty-printed JSON.
    ///
    /// Hand-rolled (all fields are strings or string lists) so the
    /// workspace does not need `serde` in the offline build; the shape
    /// matches what `#[derive(Serialize)]` + `serde_json` produced.
    pub fn to_json_pretty(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out.push('"');
            out
        }
        fn str_list(items: &[String], indent: &str) -> String {
            if items.is_empty() {
                return "[]".to_string();
            }
            let inner = items
                .iter()
                .map(|s| format!("{indent}  {}", esc(s)))
                .collect::<Vec<_>>()
                .join(",\n");
            format!("[\n{inner}\n{indent}]")
        }
        let rows = if self.rows.is_empty() {
            "[]".to_string()
        } else {
            let inner = self
                .rows
                .iter()
                .map(|r| format!("    {}", str_list(r, "    ")))
                .collect::<Vec<_>>()
                .join(",\n");
            format!("[\n{inner}\n  ]")
        };
        format!(
            "{{\n  \"id\": {},\n  \"title\": {},\n  \"headers\": {},\n  \"rows\": {}\n}}",
            esc(&self.id),
            esc(&self.title),
            str_list(&self.headers, "  "),
            rows
        )
    }

    /// Prints to stdout and writes `<out_dir>/<id>.json`.
    pub fn emit(&self, out_dir: &Path) {
        println!("{}", self.render());
        if std::fs::create_dir_all(out_dir).is_ok() {
            let path = out_dir.join(format!("{}.json", self.id));
            let _ = std::fs::write(path, self.to_json_pretty());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("t", "demo", &["method", "score"]);
        t.row(vec!["RS".into(), "123.4".into()]);
        t.row(vec!["GED-T".into(), "7".into()]);
        let s = t.render();
        assert!(s.contains("demo"));
        assert!(s.contains("GED-T"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn emit_writes_json() {
        let dir = std::env::temp_dir().join("vom_bench_table_test");
        let mut t = Table::new("test_table", "demo", &["a"]);
        t.row(vec!["1".into()]);
        t.emit(&dir);
        let json = std::fs::read_to_string(dir.join("test_table.json")).unwrap();
        assert!(json.contains("demo"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
