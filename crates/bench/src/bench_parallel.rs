//! The perf-trajectory harness behind `repro --bench-json`.
//!
//! Times the prepare and query phases of three representative workloads —
//! the Figure 6 plurality sweep in quick mode (`fig6-quick`), the
//! cumulative budget sweep (`sweep-k`), and a batched `query-throughput`
//! workload that fans mixed queries over **one shared
//! [`vom_service::VomService`] index** — with the pool pinned to a
//! single thread and at the parallel target, then writes the samples to
//! `BENCH_parallel.json`. The file seeds the repo's recorded perf
//! trajectory: each sample carries the thread count, phase wall clocks,
//! a `deterministic` flag asserting the run selected bit-identical
//! seeds to the single-threaded reference (the shim's
//! schedule-independence contract, checked on every bench run), and a
//! `digest` of the selections so external tooling (the CI smoke) can
//! re-assert the cross-width match from the JSON alone.
//!
//! The sweep workloads parallelize *inside* one query (artifact builds,
//! estimate updates); the query-throughput workload parallelizes
//! *across* queries — each batch item gets its own
//! [`vom_core::QuerySession`] on the shared `Send + Sync` index, so the
//! thread count scales served queries per second, not single-query
//! latency.
//!
//! Methodology: datasets are generated once and shared by all runs, so
//! the timings isolate engine work (artifact builds + greedy queries)
//! from replica synthesis; each (workload, width) pair runs
//! [`PASSES`] times with the widths interleaved — evening out cache
//! warmth — and the fastest pass is recorded (min-of-N, as criterion
//! does, so one scheduler hiccup cannot masquerade as a slowdown).

use crate::error::{BenchError, Result};
use crate::experiments::sweep_k;
use crate::{timed, ExpConfig};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;
use vom_core::engine::{BuildCounters, PreparedIndex, Query, RuleClass, SelectionMode};
use vom_core::phases::{self, PhaseTimes, SolverCounters};
use vom_core::{IndexSource, MethodId, Problem};
use vom_datasets::Dataset;
use vom_graph::Node;
use vom_service::{ServiceRequest, VomService};
use vom_voting::ScoringFunction;

/// One timed (workload, thread-count) sample.
#[derive(Debug, Clone)]
pub struct BenchSample {
    /// Workload id (`fig6-quick`, `sweep-k`, or `query-throughput`).
    pub experiment: &'static str,
    /// Pool threads the sample ran with.
    pub threads: usize,
    /// Wall clock of all `prepare` calls (artifact builds).
    pub prepare_s: f64,
    /// Wall clock of all `select` queries.
    pub query_s: f64,
    /// `prepare_s + query_s` — the workload's engine wall clock.
    pub total_s: f64,
    /// Whether the selected seed sets are bit-identical to the
    /// 1-thread reference run of the same workload.
    pub deterministic: bool,
    /// FNV-1a digest of the selections (labels + seeds), hex. Equal
    /// digests across thread counts of one experiment mean equal
    /// selections — asserted again from the JSON by the CI smoke.
    pub digest: String,
    /// Query-phase breakdown (diffusion vs truncation vs scoring wall
    /// clock, from `vom_core::phases`) of the recorded pass. The
    /// phases cover the hot work, not the orchestration, so they sum to
    /// slightly less than `query_s`. Diffusion is reported both as the
    /// historical cold+warm total (`diffusion_s`) and split into
    /// `diffusion_cold_s` / `diffusion_warm_s`.
    pub phases: PhaseTimes,
    /// The same breakdown attributed per engine (`DM`/`RW`/`RS`), in
    /// first-run order.
    pub method_phases: Vec<(String, PhaseTimes)>,
    /// Diffusion-solver work counters (cold/warm solves, cold steps,
    /// warm frontier nodes) of the recorded pass's query section, from
    /// `vom_diffusion::SolverCounters`.
    pub solver: SolverCounters,
}

/// Seed selections of one workload pass, for cross-thread comparison:
/// `(dataset, method, k) -> seeds`.
pub(crate) type Selections = Vec<(String, Vec<Node>)>;

struct WorkloadPass {
    prepare: Duration,
    query: Duration,
    selections: Selections,
    /// Per-phase attribution of the query wall clock.
    phases: PhaseTimes,
    /// Query phases split per method name.
    method_phases: Vec<(String, PhaseTimes)>,
    /// Diffusion-solver counters accumulated over the query sections.
    solver: SolverCounters,
}

/// Adds `delta` to `method`'s slot (insertion order preserved).
fn merge_method_phases(into: &mut Vec<(String, PhaseTimes)>, method: &str, delta: PhaseTimes) {
    match into.iter_mut().find(|(m, _)| m == method) {
        Some((_, acc)) => acc.add(delta),
        None => into.push((method.to_string(), delta)),
    }
}

/// Timed passes per (workload, width); the fastest is recorded. Three
/// passes converge the min to the noise floor on busy machines — with
/// one pass, scheduler jitter on the (mostly serial) query phase can
/// exceed the parallel build speedup being measured.
pub const PASSES: usize = 3;

/// The thread count for the parallel pass: the configured pool width,
/// but at least 2 so the comparison is meaningful on single-core boxes.
fn parallel_target() -> usize {
    rayon::current_num_threads().max(2)
}

/// FNV-1a over the selection labels and seed ids — a stable fingerprint
/// of "which seeds did every query pick".
pub(crate) fn selections_digest(selections: &Selections) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |byte: u8| {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for (label, seeds) in selections {
        for b in label.bytes() {
            eat(b);
        }
        eat(0xff);
        for &s in seeds {
            for b in s.to_le_bytes() {
                eat(b);
            }
        }
        eat(0xfe);
    }
    format!("{hash:016x}")
}

/// The snapshot file one (dataset, method) index of a sweep workload is
/// saved under: budget and horizon are part of the identity, so a `--k`
/// override never aliases a default-budget snapshot.
fn snapshot_path(
    dir: &Path,
    ds: &str,
    method: MethodId,
    score: &ScoringFunction,
    k_max: usize,
    t: usize,
) -> PathBuf {
    dir.join(format!(
        "{ds}--{}-c{}-k{k_max}-t{t}.vpi",
        method.name().to_lowercase(),
        RuleClass::of(score) as usize
    ))
}

/// Builds (or, under `cfg.load_index`, loads) one prepared method.
/// An unusable snapshot — missing file, corruption, digest mismatch —
/// falls back to a fresh build with a warning and clears `all_loaded`:
/// loads fail closed, the workload does not.
fn prepare_method(
    cfg: &ExpConfig,
    ds: &Dataset,
    spec: &Problem<'_>,
    m: MethodId,
    score: &ScoringFunction,
    k_max: usize,
    all_loaded: &mut bool,
) -> Result<crate::PreparedMethod> {
    if let Some(dir) = &cfg.load_index {
        let path = snapshot_path(dir, ds.name, m, score, k_max, cfg.default_t());
        match PreparedIndex::load(Arc::new(ds.instance.clone()), IndexSource::File(&path)) {
            Ok(index) => return Ok(crate::PreparedMethod::from_index(m, Arc::new(index))),
            Err(e) => {
                eprintln!(
                    "[bench] index snapshot {} unusable ({e}); rebuilding",
                    path.display()
                );
                *all_loaded = false;
            }
        }
    }
    crate::PreparedMethod::new(spec, m, cfg.seed)
}

/// Runs one sweep workload over the shared datasets at the current pool
/// setting, timing prepare and query phases separately. With
/// `cfg.load_index` the prepare phase loads snapshots instead of
/// simulating; with `cfg.save_index` every index is snapshotted after
/// its queries.
fn run_workload(
    cfg: &ExpConfig,
    datasets: &[Dataset],
    score: &ScoringFunction,
) -> Result<WorkloadPass> {
    let t = cfg.default_t();
    let mut prepare = Duration::ZERO;
    let mut query = Duration::ZERO;
    let mut selections: Selections = Vec::new();
    let mut query_phases = PhaseTimes::default();
    let mut method_phases: Vec<(String, PhaseTimes)> = Vec::new();
    let mut solver = SolverCounters::default();
    let counters_before = BuildCounters::snapshot();
    let mut all_loaded = cfg.load_index.is_some();
    if let Some(dir) = &cfg.save_index {
        std::fs::create_dir_all(dir).map_err(|e| {
            BenchError::InvalidConfig(format!("cannot create {}: {e}", dir.display()))
        })?;
    }
    for ds in datasets {
        let n = ds.instance.num_nodes();
        // An explicit --k override is taken verbatim (no clamping): an
        // unsatisfiable budget must surface as a BenchError, not be
        // silently shrunk to fit.
        let ks: Vec<usize> = match cfg.k_override {
            Some(k) => vec![k],
            None => cfg
                .k_sweep()
                .iter()
                .map(|&k| k.min(n / 2))
                .filter(|&k| k > 0)
                .collect(),
        };
        let Some(&k_max) = ks.iter().max() else {
            continue;
        };
        let spec = Problem::new(&ds.instance, ds.default_target, k_max, t, score.clone())?;
        let methods: Vec<_> = sweep_k::sweep_methods(n, score)
            .into_iter()
            .filter(|m| m.is_ours())
            .collect();
        for m in methods {
            let (prepared, build) =
                timed(|| prepare_method(cfg, ds, &spec, m, score, k_max, &mut all_loaded));
            let mut prepared = prepared?;
            prepare += build;
            let before = phases::snapshot();
            let solver_before = phases::solver_counters();
            for &k in &ks {
                let (out, select) = timed(|| prepared.evaluate(k));
                let out = out?;
                query += select;
                selections.push((format!("{}/{}/k{}", ds.name, m.name(), k), out.seeds));
            }
            let delta = phases::snapshot().since(before);
            query_phases.add(delta);
            solver.add(phases::solver_counters().since(solver_before));
            merge_method_phases(&mut method_phases, m.name(), delta);
            if let Some(dir) = &cfg.save_index {
                let path = snapshot_path(dir, ds.name, m, score, k_max, t);
                prepared.index().save(&path).map_err(|e| {
                    BenchError::InvalidConfig(format!("cannot save {}: {e}", path.display()))
                })?;
            }
        }
    }
    if all_loaded {
        // Every index came off disk: the load path must not have
        // re-simulated any walk arena or sketch set.
        let built = BuildCounters::snapshot().since(counters_before);
        if built.rw_arenas != 0 || built.rs_sketches != 0 {
            return Err(BenchError::InvalidConfig(format!(
                "--load-index run still built artifacts ({} arenas, {} sketch sets)",
                built.rw_arenas, built.rs_sketches
            )));
        }
    }
    Ok(WorkloadPass {
        prepare,
        query,
        selections,
        phases: query_phases,
        method_phases,
        solver,
    })
}

/// The mixed query batch of the throughput workload: every swept budget
/// under the plurality rule, auto (sandwich) and plain modes, replicated
/// [`QT_REPLICATION`] times — all answered by **one** shared RS index.
pub(crate) fn throughput_requests(cfg: &ExpConfig, ds: &Dataset) -> Vec<ServiceRequest> {
    let n = ds.instance.num_nodes();
    let ks: Vec<usize> = match cfg.k_override {
        Some(k) => vec![k],
        None => cfg
            .k_sweep()
            .iter()
            .map(|&k| k.min(n / 2))
            .filter(|&k| k > 0)
            .collect(),
    };
    let mut requests = Vec::new();
    for _rep in 0..QT_REPLICATION {
        for &k in &ks {
            for mode in [SelectionMode::Auto, SelectionMode::Plain] {
                let mut query = Query::new(k, ScoringFunction::Plurality, ds.default_target);
                query.mode = mode;
                requests.push(ServiceRequest::new(
                    QT_GRAPH,
                    MethodId::Rs,
                    cfg.default_t(),
                    query,
                ));
            }
        }
    }
    requests
}

pub(crate) const QT_GRAPH: &str = "bench";
/// Batch replication factor: enough in-flight queries that every pool
/// worker stays busy at the parallel target.
const QT_REPLICATION: usize = 4;

/// One pass of the batched query-throughput workload: a fresh service,
/// `warm` as the prepare phase (builds the one shared index), then
/// `run_batch` as the query phase.
fn run_query_throughput(cfg: &ExpConfig, ds: &Dataset) -> Result<WorkloadPass> {
    let seed = cfg.seed;
    let service =
        VomService::with_engine_factory(Box::new(move |m| crate::harness_engine(m, seed)));
    service
        .register(QT_GRAPH, Arc::new(ds.instance.clone()))
        .map_err(|e| BenchError::InvalidConfig(format!("service registration failed: {e}")))?;
    let requests = throughput_requests(cfg, ds);
    let (_, prepare) = timed(|| service.warm(&requests));
    let before = phases::snapshot();
    let solver_before = phases::solver_counters();
    let (results, query) = timed(|| service.run_batch(&requests));
    let query_phases = phases::snapshot().since(before);
    let solver = phases::solver_counters().since(solver_before);
    let mut selections: Selections = Vec::with_capacity(results.len());
    for (i, (req, res)) in requests.iter().zip(results).enumerate() {
        let out = res.map_err(|e| {
            BenchError::InvalidConfig(format!(
                "query-throughput request {i} (k={}) failed: {e}",
                req.query.k
            ))
        })?;
        selections.push((
            format!("{}/k{}/{:?}/{i}", ds.name, req.query.k, req.query.mode),
            out.seeds,
        ));
    }
    Ok(WorkloadPass {
        prepare,
        query,
        selections,
        phases: query_phases,
        method_phases: vec![(MethodId::Rs.name().to_string(), query_phases)],
        solver,
    })
}

/// The build-vs-load comparison of the index persistence path: one
/// workload prepared from scratch (and snapshotted), then the same
/// workload served from the snapshots.
#[derive(Debug, Clone)]
pub struct IndexIoSample {
    /// The workload the probe ran (`fig6-quick`).
    pub experiment: &'static str,
    /// Wall clock of building every index from the instance.
    pub index_build_s: f64,
    /// Wall clock of loading the same indexes from their snapshots.
    pub index_load_s: f64,
    /// `index_build_s / index_load_s`.
    pub speedup: f64,
    /// Selection digest of the built-index run.
    pub digest: String,
    /// Whether the loaded-index run selected bit-identical seeds.
    pub deterministic: bool,
}

/// Runs the fig6-quick workload twice at one pool thread — build+save,
/// then load — and compares wall clocks and selection digests. The
/// snapshots live in a scratch directory that is removed afterwards
/// (`--save-index`/`--load-index` are the user-facing way to keep them).
fn run_index_io_probe(cfg: &ExpConfig, datasets: &[Dataset]) -> Result<IndexIoSample> {
    let dir = std::env::temp_dir().join(format!("vom-index-io-{}", std::process::id()));
    let score = ScoringFunction::Plurality;
    let outcome = (|| -> Result<IndexIoSample> {
        let save_cfg = ExpConfig {
            save_index: Some(dir.clone()),
            load_index: None,
            ..cfg.clone()
        };
        let built = run_workload(&save_cfg, datasets, &score)?;
        let load_cfg = ExpConfig {
            save_index: None,
            load_index: Some(dir.clone()),
            ..cfg.clone()
        };
        let loaded = run_workload(&load_cfg, datasets, &score)?;
        let index_build_s = built.prepare.as_secs_f64();
        let index_load_s = loaded.prepare.as_secs_f64();
        Ok(IndexIoSample {
            experiment: "fig6-quick",
            index_build_s,
            index_load_s,
            speedup: index_build_s / index_load_s.max(f64::EPSILON),
            digest: selections_digest(&built.selections),
            deterministic: built.selections == loaded.selections,
        })
    })();
    std::fs::remove_dir_all(&dir).ok();
    outcome
}

/// Interleaves [`PASSES`] passes of one workload at 1 and `threads_hi`
/// pool threads, checks every pass against the 1-thread reference
/// selections, and records the fastest pass per width.
fn collect_workload(
    experiment: &'static str,
    threads_hi: usize,
    samples: &mut Vec<BenchSample>,
    mut pass_fn: impl FnMut() -> Result<WorkloadPass>,
) -> Result<()> {
    let mut reference: Option<Selections> = None;
    // threads -> (fastest pass, every pass matched the reference)
    let mut best: Vec<(usize, WorkloadPass, bool)> = Vec::new();
    for pass_no in 0..PASSES {
        for &threads in &[1usize, threads_hi] {
            rayon::set_thread_override(Some(threads));
            let pass = pass_fn()?;
            let matches = match &reference {
                None => {
                    reference = Some(pass.selections.clone());
                    true
                }
                Some(expected) => *expected == pass.selections,
            };
            println!(
                "[bench {experiment} threads={threads} pass {}/{PASSES}: \
                 prepare {:.3}s, query {:.3}s, deterministic: {matches}]",
                pass_no + 1,
                pass.prepare.as_secs_f64(),
                pass.query.as_secs_f64(),
            );
            match best.iter_mut().find(|(t, _, _)| *t == threads) {
                None => best.push((threads, pass, matches)),
                Some((_, fastest, all_match)) => {
                    *all_match = *all_match && matches;
                    if pass.prepare + pass.query < fastest.prepare + fastest.query {
                        *fastest = pass;
                    }
                }
            }
        }
    }
    for (threads, pass, deterministic) in best {
        samples.push(BenchSample {
            experiment,
            threads,
            prepare_s: pass.prepare.as_secs_f64(),
            query_s: pass.query.as_secs_f64(),
            total_s: (pass.prepare + pass.query).as_secs_f64(),
            deterministic,
            digest: selections_digest(&pass.selections),
            phases: pass.phases,
            method_phases: pass.method_phases,
            solver: pass.solver,
        });
    }
    Ok(())
}

/// Runs all three workloads at 1 and N threads (the configured pool
/// width, floored at 2) and writes `BENCH_parallel.json` into the
/// current directory. Returns the path written. The pool override in
/// effect at entry (e.g. from `repro --threads`) is always restored,
/// also on error.
pub fn run(cfg: &ExpConfig) -> Result<PathBuf> {
    let quick = ExpConfig {
        quick: true,
        ..cfg.clone()
    };
    let datasets = sweep_k::datasets(&quick);
    let entry_override = rayon::thread_override();
    let threads_hi = parallel_target();
    let workloads: [(&'static str, ScoringFunction); 2] = [
        ("fig6-quick", ScoringFunction::Plurality),
        ("sweep-k", ScoringFunction::Cumulative),
    ];

    let mut samples: Vec<BenchSample> = Vec::new();
    let mut index_io: Option<IndexIoSample> = None;
    let outcome = (|| -> Result<()> {
        for (experiment, score) in &workloads {
            collect_workload(experiment, threads_hi, &mut samples, || {
                run_workload(&quick, &datasets, score)
            })?;
        }
        // The batched service workload: one shared index, N sessions.
        let qt_dataset = datasets.first().ok_or_else(|| {
            BenchError::InvalidConfig("no dataset for the query-throughput workload".into())
        })?;
        collect_workload("query-throughput", threads_hi, &mut samples, || {
            run_query_throughput(&quick, qt_dataset)
        })?;
        // The persistence probe: build vs load wall clock, at one
        // thread so the parallel build speedup doesn't flatter the
        // load-path ratio.
        rayon::set_thread_override(Some(1));
        index_io = Some(run_index_io_probe(&quick, &datasets)?);
        Ok(())
    })();
    rayon::set_thread_override(entry_override);
    outcome?;

    if let Some(bad) = samples.iter().find(|s| !s.deterministic) {
        return Err(BenchError::InvalidConfig(format!(
            "parallel run of {} at {} threads diverged from the 1-thread selections \
             (schedule-independence contract violated)",
            bad.experiment, bad.threads
        )));
    }
    let index_io = index_io.expect("probe ran");
    if !index_io.deterministic {
        return Err(BenchError::InvalidConfig(
            "snapshot-loaded indexes diverged from freshly built ones \
             (persistence round-trip contract violated)"
                .into(),
        ));
    }
    println!(
        "[bench index-io: build {:.3}s, load {:.3}s ({:.1}x)]",
        index_io.index_build_s, index_io.index_load_s, index_io.speedup
    );

    let path = PathBuf::from("BENCH_parallel.json");
    std::fs::write(&path, render_json(&quick, &samples, &index_io))
        .map_err(|e| BenchError::InvalidConfig(format!("cannot write {}: {e}", path.display())))?;
    Ok(path)
}

/// Runs one pass of the `sweep-k` workload at the current pool setting
/// and returns the selection digest — the hook the warm-start digest
/// test uses to assert cold-only and warm-start runs pick byte-identical
/// seeds at any thread count, without writing a JSON file.
pub fn sweep_k_selection_digest(cfg: &ExpConfig) -> Result<String> {
    sweep_k_pass(cfg).map(|(digest, _)| digest)
}

/// One `sweep-k` pass (honoring `cfg.save_index`/`cfg.load_index`),
/// returning the selection digest and the query-phase solver counters.
/// Because the pass accounts all process-global counters as deltas, two
/// passes in one process must return bitwise-equal counters — the
/// counter-hygiene contract the persistence integration test pins.
pub fn sweep_k_pass(cfg: &ExpConfig) -> Result<(String, SolverCounters)> {
    let quick = ExpConfig {
        quick: true,
        ..cfg.clone()
    };
    let datasets = sweep_k::datasets(&quick);
    let pass = run_workload(&quick, &datasets, &ScoringFunction::Cumulative)?;
    Ok((selections_digest(&pass.selections), pass.solver))
}

/// Renders one phase breakdown as JSON object fields. `diffusion_s`
/// keeps its historical meaning (all exact diffusion wall clock) so the
/// trajectory stays comparable across the warm-start change; the
/// cold/warm split rides along as two extra fields.
pub(crate) fn phase_fields(p: PhaseTimes) -> String {
    format!(
        "\"diffusion_s\": {:.6}, \"diffusion_cold_s\": {:.6}, \"diffusion_warm_s\": {:.6}, \
         \"truncation_s\": {:.6}, \"scoring_s\": {:.6}",
        p.diffusion_total().as_secs_f64(),
        p.diffusion.as_secs_f64(),
        p.diffusion_warm.as_secs_f64(),
        p.truncation.as_secs_f64(),
        p.scoring.as_secs_f64()
    )
}

/// Renders the solver work counters as a JSON object.
pub(crate) fn solver_fields(c: SolverCounters) -> String {
    format!(
        "{{ \"cold_solves\": {}, \"warm_solves\": {}, \"cold_steps\": {}, \
         \"warm_frontier_nodes\": {} }}",
        c.cold_solves, c.warm_solves, c.cold_steps, c.warm_frontier_nodes
    )
}

/// Renders the build-vs-load probe as a JSON object.
fn index_io_fields(io: &IndexIoSample) -> String {
    format!(
        "{{ \"experiment\": \"{}\", \"index_build_s\": {:.6}, \"index_load_s\": {:.6}, \
         \"speedup\": {:.2}, \"digest\": \"{}\", \"deterministic\": {} }}",
        io.experiment, io.index_build_s, io.index_load_s, io.speedup, io.digest, io.deterministic
    )
}

/// Hand-rolled JSON (the workspace builds offline without serde; same
/// policy as [`crate::Table::to_json_pretty`]).
fn render_json(cfg: &ExpConfig, samples: &[BenchSample], index_io: &IndexIoSample) -> String {
    let runs = samples
        .iter()
        .map(|s| {
            let methods = s
                .method_phases
                .iter()
                .map(|(m, p)| {
                    format!("        {{ \"method\": \"{m}\", {} }}", phase_fields(*p))
                })
                .collect::<Vec<_>>()
                .join(",\n");
            format!(
                "    {{\n      \"experiment\": \"{}\",\n      \"threads\": {},\n      \
                 \"prepare_s\": {:.6},\n      \"query_s\": {:.6},\n      \"total_s\": {:.6},\n      \
                 \"deterministic\": {},\n      \"digest\": \"{}\",\n      \
                 \"phases\": {{ {} }},\n      \"solver\": {},\n      \
                 \"method_phases\": [\n{}\n      ]\n    }}",
                s.experiment,
                s.threads,
                s.prepare_s,
                s.query_s,
                s.total_s,
                s.deterministic,
                s.digest,
                phase_fields(s.phases),
                solver_fields(s.solver),
                methods
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!(
        "{{\n  \"id\": \"bench_parallel\",\n  \"title\": \"engine wall clock at 1 vs N pool \
         threads (prepare/query phases, fastest of {PASSES} passes)\",\n  \"scale\": {},\n  \
         \"seed\": {},\n  \"passes\": {PASSES},\n  \"index_io\": {},\n  \
         \"runs\": [\n{runs}\n  ]\n}}\n",
        cfg.scale,
        cfg.seed,
        index_io_fields(index_io)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_is_shaped_for_the_trajectory_tooling() {
        let cfg = ExpConfig::default();
        let phases = PhaseTimes {
            diffusion: Duration::from_millis(100),
            truncation: Duration::from_millis(50),
            scoring: Duration::from_millis(250),
            diffusion_warm: Duration::from_millis(300),
        };
        let solver = SolverCounters {
            cold_solves: 7,
            warm_solves: 1234,
            cold_steps: 140,
            warm_frontier_nodes: 9876,
        };
        let samples = vec![
            BenchSample {
                experiment: "fig6-quick",
                threads: 1,
                prepare_s: 1.5,
                query_s: 0.5,
                total_s: 2.0,
                deterministic: true,
                digest: "00c0ffee00c0ffee".into(),
                phases,
                method_phases: vec![("RW".into(), phases), ("RS".into(), phases)],
                solver,
            },
            BenchSample {
                experiment: "fig6-quick",
                threads: 4,
                prepare_s: 0.5,
                query_s: 0.25,
                total_s: 0.75,
                deterministic: true,
                digest: "00c0ffee00c0ffee".into(),
                phases,
                method_phases: vec![("RW".into(), phases)],
                solver,
            },
        ];
        let io = IndexIoSample {
            experiment: "fig6-quick",
            index_build_s: 1.0,
            index_load_s: 0.1,
            speedup: 10.0,
            digest: "00c0ffee00c0ffee".into(),
            deterministic: true,
        };
        let json = render_json(&cfg, &samples, &io);
        assert!(json.contains("\"threads\": 1"));
        assert!(json.contains("\"threads\": 4"));
        assert!(json.contains("\"total_s\": 2.000000"));
        assert!(json.contains("\"deterministic\": true"));
        assert!(json.contains("\"digest\": \"00c0ffee00c0ffee\""));
        // The per-phase breakdown is present at both levels:
        // diffusion_s stays cold+warm so the trajectory is comparable.
        assert!(json.contains("\"phases\": { \"diffusion_s\": 0.400000"));
        assert!(json.contains("\"diffusion_cold_s\": 0.100000"));
        assert!(json.contains("\"diffusion_warm_s\": 0.300000"));
        assert!(json.contains("\"scoring_s\": 0.250000"));
        // The persistence probe is a top-level object.
        assert!(json.contains("\"index_io\": { \"experiment\": \"fig6-quick\""));
        assert!(json.contains("\"index_build_s\": 1.000000"));
        assert!(json.contains("\"index_load_s\": 0.100000"));
        assert!(json.contains("\"speedup\": 10.00"));
        // Solver work counters ride along per sample.
        assert!(json.contains("\"solver\": { \"cold_solves\": 7, \"warm_solves\": 1234"));
        assert!(json.contains("\"warm_frontier_nodes\": 9876"));
        assert!(json.contains("\"method\": \"RW\""));
        assert!(json.contains("\"method\": \"RS\""));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn parallel_target_is_at_least_two() {
        assert!(parallel_target() >= 2);
    }

    #[test]
    fn digest_tracks_selection_content() {
        let a: Selections = vec![("x/k1".into(), vec![1, 2]), ("x/k2".into(), vec![3])];
        let b: Selections = vec![("x/k1".into(), vec![1, 2]), ("x/k2".into(), vec![4])];
        assert_eq!(selections_digest(&a), selections_digest(&a));
        assert_ne!(selections_digest(&a), selections_digest(&b));
        assert_eq!(selections_digest(&a).len(), 16);
    }

    #[test]
    fn throughput_batch_covers_budgets_modes_and_replicas() {
        let cfg = ExpConfig {
            quick: true,
            ..ExpConfig::default()
        };
        let ds = sweep_k::datasets(&cfg).remove(0);
        let reqs = throughput_requests(&cfg, &ds);
        assert!(!reqs.is_empty());
        assert_eq!(reqs.len() % (2 * QT_REPLICATION), 0, "k × mode × replicas");
        assert!(reqs.iter().all(|r| r.graph == QT_GRAPH));
        assert!(reqs.iter().any(|r| r.query.mode == SelectionMode::Plain));
    }
}
