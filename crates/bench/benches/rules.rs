//! Microbenchmarks for voting-rule evaluation: the paper's five scores
//! plus the extension rules, over a 10-candidate snapshot. Rule
//! evaluation sits in the inner loop of every exact greedy iteration, so
//! per-call cost directly scales DM/generic-greedy seed selection.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vom_datasets::{yelp_like, ReplicaParams};
use vom_voting::{ExtendedRule, OpinionScore, ScoringFunction};

fn rule_evaluation(c: &mut Criterion) {
    let ds = yelp_like(&ReplicaParams::at_scale(0.001, 3));
    let q = ds.default_target;
    let b = ds.instance.opinions_at(20, q, &[]);
    let n = ds.instance.num_nodes();

    let rules: Vec<(&str, Box<dyn OpinionScore>)> = vec![
        ("cumulative", Box::new(ScoringFunction::Cumulative)),
        ("plurality", Box::new(ScoringFunction::Plurality)),
        (
            "p-approval-3",
            Box::new(ScoringFunction::PApproval { p: 3 }),
        ),
        (
            "positional-3",
            Box::new(ScoringFunction::PositionalPApproval {
                p: 3,
                weights: vec![1.0, 0.8, 0.5, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            }),
        ),
        ("copeland", Box::new(ScoringFunction::Copeland)),
        ("borda", Box::new(ExtendedRule::Borda)),
        ("veto", Box::new(ExtendedRule::Veto)),
        ("maximin", Box::new(ExtendedRule::Maximin)),
        ("bucklin", Box::new(ExtendedRule::Bucklin)),
        ("copeland-0.5", Box::new(ExtendedRule::CopelandHalf)),
    ];

    let mut group = c.benchmark_group(format!("rule_eval_n{n}_r10"));
    for (name, rule) in &rules {
        group.bench_with_input(BenchmarkId::from_parameter(name), rule, |bench, rule| {
            bench.iter(|| std::hint::black_box(rule.evaluate(&b, q)));
        });
    }
    group.finish();
}

fn rank_vs_pairwise_scaling(c: &mut Criterion) {
    // Ablation: β-rank rules scan r per user, pairwise rules scan r−1
    // rows — confirm both stay linear in n.
    let mut group = c.benchmark_group("rule_eval_scaling");
    group.sample_size(30);
    for scale in [0.0005, 0.001, 0.002] {
        let ds = yelp_like(&ReplicaParams::at_scale(scale, 3));
        let q = ds.default_target;
        let b = ds.instance.opinions_at(20, q, &[]);
        let n = ds.instance.num_nodes();
        group.bench_with_input(BenchmarkId::new("borda", n), &b, |bench, b| {
            bench.iter(|| std::hint::black_box(ExtendedRule::Borda.score(b, q)));
        });
        group.bench_with_input(BenchmarkId::new("maximin", n), &b, |bench, b| {
            bench.iter(|| std::hint::black_box(ExtendedRule::Maximin.score(b, q)));
        });
    }
    group.finish();
}

criterion_group!(benches, rule_evaluation, rank_vs_pairwise_scaling);
criterion_main!(benches);
