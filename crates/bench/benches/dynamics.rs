//! Microbenchmarks for the alternative opinion-dynamics models: cost of
//! one full realization to the horizon, per model, on the same graph —
//! the per-evaluation cost inside `DynamicsSeeder::greedy`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;
use vom_datasets::{dblp_like, ReplicaParams};
use vom_diffusion::OpinionMatrix;
use vom_dynamics::{
    DeffuantModel, DynamicsModel, FjDynamics, HkModel, MajorityRule, SznajdModel, VoterModel,
};

fn models_for(scale: f64) -> (usize, Vec<Box<dyn DynamicsModel>>) {
    let ds = dblp_like(&ReplicaParams::at_scale(scale, 3));
    let inst = Arc::new(ds.instance);
    let n = inst.num_nodes();
    let graph = inst.graph_of(0).clone();
    let rows: Vec<Vec<f64>> = (0..inst.num_candidates())
        .map(|c| inst.candidate(c).initial.to_vec())
        .collect();
    let initial = OpinionMatrix::from_rows(rows).expect("valid replica opinions");
    let models: Vec<Box<dyn DynamicsModel>> = vec![
        Box::new(FjDynamics::new(inst)),
        Box::new(VoterModel::new(graph.clone(), initial.clone()).expect("valid")),
        Box::new(MajorityRule::new(graph.clone(), initial.clone()).expect("valid")),
        Box::new(SznajdModel::new(graph.clone(), initial.clone()).expect("valid")),
        Box::new(DeffuantModel::new(graph.clone(), initial.clone(), 0.4, 0.3).expect("valid")),
        Box::new(HkModel::new(graph, initial, 0.3).expect("valid")),
    ];
    (n, models)
}

fn one_realization(c: &mut Criterion) {
    let (n, models) = models_for(0.004);
    let mut group = c.benchmark_group(format!("dynamics_realization_n{n}_t20"));
    group.sample_size(20);
    for model in &models {
        group.bench_with_input(
            BenchmarkId::from_parameter(model.name()),
            model,
            |bench, model| {
                bench.iter(|| {
                    let b = model.opinions_at(20, 0, &[0, 1], 7);
                    std::hint::black_box(b.get(0, 0))
                });
            },
        );
    }
    group.finish();
}

fn horizon_scaling(c: &mut Criterion) {
    let (_, models) = models_for(0.002);
    let voter = &models[1];
    let mut group = c.benchmark_group("dynamics_voter_horizon");
    group.sample_size(30);
    for t in [5usize, 10, 20, 40] {
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |bench, &t| {
            bench.iter(|| {
                let b = voter.opinions_at(t, 0, &[0], 7);
                std::hint::black_box(b.get(0, 0))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, one_realization, horizon_scaling);
criterion_main!(benches);
