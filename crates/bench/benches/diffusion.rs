//! Microbenchmarks for the exact FJ engine (the DM building block).

// The deprecated per-call FjEngine surface is exactly what this bench
// measures: it is the reference iteration the solver is compared to.
#![allow(deprecated)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vom_datasets::{twitter_mask_like, ReplicaParams};
use vom_diffusion::DiffusionBuffer;

fn fj_iteration(c: &mut Criterion) {
    let mut group = c.benchmark_group("fj_opinions_at");
    group.sample_size(20);
    for scale in [0.0005, 0.001, 0.002] {
        let ds = twitter_mask_like(&ReplicaParams::at_scale(scale, 3));
        let cand = ds.instance.candidate(0);
        let engine = cand.engine();
        let n = ds.instance.num_nodes();
        let mut buf = DiffusionBuffer::new(n);
        group.bench_with_input(BenchmarkId::new("t20", n), &n, |b, _| {
            b.iter(|| {
                let row = engine.opinions_at_with(20, &[0, 1, 2], &mut buf);
                std::hint::black_box(row[0])
            });
        });
    }
    group.finish();
}

fn horizon_scaling(c: &mut Criterion) {
    let ds = twitter_mask_like(&ReplicaParams::at_scale(0.001, 3));
    let cand = ds.instance.candidate(0);
    let engine = cand.engine();
    let mut buf = DiffusionBuffer::new(ds.instance.num_nodes());
    let mut group = c.benchmark_group("fj_horizon_scaling");
    group.sample_size(20);
    for t in [5usize, 10, 20, 40] {
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            b.iter(|| {
                let row = engine.opinions_at_with(t, &[7], &mut buf);
                std::hint::black_box(row[0])
            });
        });
    }
    group.finish();
}

criterion_group!(benches, fj_iteration, horizon_scaling);
criterion_main!(benches);
