//! End-to-end seed-selection benchmarks: the DM / RW / RS engines per
//! score, plus the sketch and scoring building blocks.

use criterion::{criterion_group, criterion_main, Criterion};
use vom_core::rs::RsConfig;
use vom_core::rw::RwConfig;
use vom_core::{select_seeds_plain, Method, Problem};
use vom_datasets::{twitter_mask_like, yelp_like, ReplicaParams};
use vom_sketch::SketchSet;
use vom_voting::ScoringFunction;

fn engines_cumulative(c: &mut Criterion) {
    let ds = twitter_mask_like(&ReplicaParams::at_scale(0.0005, 3));
    let problem = Problem::new(&ds.instance, 0, 10, 20, ScoringFunction::Cumulative).unwrap();
    let mut group = c.benchmark_group("select_cumulative_k10");
    group.sample_size(10);
    group.bench_function("DM", |b| {
        b.iter(|| std::hint::black_box(select_seeds_plain(&problem, &Method::Dm).unwrap().seeds))
    });
    group.bench_function("RW", |b| {
        b.iter(|| {
            let m = Method::Rw(RwConfig::default());
            std::hint::black_box(select_seeds_plain(&problem, &m).unwrap().seeds)
        })
    });
    group.bench_function("RS", |b| {
        b.iter(|| {
            let m = Method::Rs(RsConfig::default());
            std::hint::black_box(select_seeds_plain(&problem, &m).unwrap().seeds)
        })
    });
    group.finish();
}

fn engines_plurality(c: &mut Criterion) {
    let ds = twitter_mask_like(&ReplicaParams::at_scale(0.0005, 3));
    let problem = Problem::new(&ds.instance, 0, 10, 20, ScoringFunction::Plurality).unwrap();
    let mut group = c.benchmark_group("select_plurality_k10");
    group.sample_size(10);
    group.bench_function("RW", |b| {
        b.iter(|| {
            let m = Method::Rw(RwConfig {
                max_lambda: 150,
                gamma_floor: 0.1,
                ..RwConfig::default()
            });
            std::hint::black_box(select_seeds_plain(&problem, &m).unwrap().seeds)
        })
    });
    group.bench_function("RS", |b| {
        b.iter(|| {
            let m = Method::Rs(RsConfig::default());
            std::hint::black_box(select_seeds_plain(&problem, &m).unwrap().seeds)
        })
    });
    group.finish();
}

fn scoring(c: &mut Criterion) {
    let ds = yelp_like(&ReplicaParams::at_scale(0.002, 3));
    let b = ds.instance.opinions_at(20, 0, &[1, 2, 3]);
    let mut group = c.benchmark_group("score_evaluation_r10");
    for score in [
        ScoringFunction::Cumulative,
        ScoringFunction::Plurality,
        ScoringFunction::PApproval { p: 3 },
        ScoringFunction::Copeland,
    ] {
        group.bench_function(score.to_string(), |bch| {
            bch.iter(|| std::hint::black_box(score.score(&b, 0)))
        });
    }
    group.finish();
}

fn sketch_building(c: &mut Criterion) {
    let ds = twitter_mask_like(&ReplicaParams::at_scale(0.001, 3));
    let cand = ds.instance.candidate(0);
    let mut group = c.benchmark_group("sketch_generate");
    group.sample_size(10);
    for theta in [1024usize, 8192] {
        group.bench_function(format!("theta_{theta}"), |b| {
            b.iter(|| {
                let s = SketchSet::generate(
                    &cand.graph,
                    &cand.stubbornness,
                    &cand.initial,
                    20,
                    theta,
                    5,
                );
                std::hint::black_box(s.theta())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    engines_cumulative,
    engines_plurality,
    scoring,
    sketch_building
);
criterion_main!(benches);
