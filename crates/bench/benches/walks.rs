//! Microbenchmarks for the random-walk machinery, including the paper's
//! key efficiency claim: post-generation truncation vs regenerating
//! walks per seed set (Direct Generation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vom_datasets::{twitter_mask_like, ReplicaParams};
use vom_walks::{Lambda, OpinionEstimator, WalkGenerator};

fn generation(c: &mut Criterion) {
    let ds = twitter_mask_like(&ReplicaParams::at_scale(0.001, 3));
    let cand = ds.instance.candidate(0);
    let gen = WalkGenerator::new(&cand.graph, &cand.stubbornness, 20);
    let mut group = c.benchmark_group("walk_generation");
    group.sample_size(10);
    for lambda in [50usize, 150] {
        group.bench_with_input(BenchmarkId::new("per_node", lambda), &lambda, |b, &l| {
            b.iter(|| std::hint::black_box(gen.generate_per_node(&Lambda::Uniform(l), 7)))
        });
    }
    group.finish();
}

/// The ablation the paper motivates in §V-B: adding one seed by
/// truncation is orders of magnitude cheaper than regenerating the walks
/// with the seed baked in.
fn truncation_vs_regeneration(c: &mut Criterion) {
    let ds = twitter_mask_like(&ReplicaParams::at_scale(0.001, 3));
    let cand = ds.instance.candidate(0);
    let gen = WalkGenerator::new(&cand.graph, &cand.stubbornness, 20);
    let arena = gen.generate_per_node(&Lambda::Uniform(150), 7);
    let mut group = c.benchmark_group("seed_update");
    group.sample_size(10);
    group.bench_function("post_generation_truncation", |b| {
        b.iter_batched(
            || OpinionEstimator::new(&arena, &cand.initial),
            |mut est| {
                est.add_seed(3);
                std::hint::black_box(est.estimate(0))
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("direct_regeneration", |b| {
        b.iter(|| {
            let a = gen.generate_direct(&Lambda::Uniform(150), &[3], 7);
            std::hint::black_box(a.num_walks())
        })
    });
    group.finish();
}

fn gain_scans(c: &mut Criterion) {
    let ds = twitter_mask_like(&ReplicaParams::at_scale(0.001, 3));
    let cand = ds.instance.candidate(0);
    let gen = WalkGenerator::new(&cand.graph, &cand.stubbornness, 20);
    let arena = gen.generate_per_node(&Lambda::Uniform(150), 7);
    let est = OpinionEstimator::new(&arena, &cand.initial);
    let mut group = c.benchmark_group("greedy_scans");
    group.sample_size(10);
    group.bench_function("cumulative_gains", |b| {
        b.iter(|| std::hint::black_box(est.cumulative_gains()))
    });
    group.bench_function("pair_deltas", |b| {
        b.iter(|| std::hint::black_box(est.pair_deltas().len()))
    });
    group.finish();
}

criterion_group!(benches, generation, truncation_vs_regeneration, gain_scans);
criterion_main!(benches);
