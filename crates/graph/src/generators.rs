//! Deterministic random-graph generators.
//!
//! These produce raw edge lists `(src, dst, interaction_count)` that are fed
//! through [`crate::GraphBuilder`]. They are used by the synthetic dataset
//! replicas (`vom-datasets`) and throughout the test-suite. All generators
//! take an explicit RNG so results are reproducible from a seed.

use crate::Node;
use rand::Rng;

/// Directed Erdős–Rényi graph: `m` distinct directed edges chosen uniformly
/// (self-loops excluded), each with interaction count 1.
pub fn erdos_renyi<R: Rng>(n: usize, m: usize, rng: &mut R) -> Vec<(Node, Node, f64)> {
    assert!(n >= 2, "erdos_renyi needs at least 2 nodes");
    let max_edges = n * (n - 1);
    let m = m.min(max_edges);
    // audit:allow(d-hash-iter, "edge-dedupe membership set; emission order comes from the edges Vec, the set is never iterated")
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    let mut edges = Vec::with_capacity(m);
    while edges.len() < m {
        let u = rng.gen_range(0..n) as Node;
        let v = rng.gen_range(0..n) as Node;
        if u != v && seen.insert((u, v)) {
            edges.push((u, v, 1.0));
        }
    }
    edges
}

/// Directed Chung–Lu (expected-degree) graph with a power-law weight
/// sequence `w_i ∝ (i + i0)^{-1/(γ−1)}`.
///
/// Samples `m` directed edges with both endpoints drawn from the weight
/// distribution; parallel picks are merged later by the builder (they then
/// act as higher interaction counts, which is realistic). `gamma` is the
/// target degree-distribution exponent — the paper's social networks are
/// heavy-tailed, typically `γ ∈ [2, 3]`.
pub fn chung_lu<R: Rng>(n: usize, m: usize, gamma: f64, rng: &mut R) -> Vec<(Node, Node, f64)> {
    assert!(n >= 2, "chung_lu needs at least 2 nodes");
    assert!(gamma > 1.0, "gamma must exceed 1");
    let alpha = 1.0 / (gamma - 1.0);
    // Cumulative weights for inverse-CDF sampling.
    let mut cum = Vec::with_capacity(n);
    let mut total = 0.0f64;
    for i in 0..n {
        total += ((i + 10) as f64).powf(-alpha);
        cum.push(total);
    }
    let sample = |rng: &mut R, cum: &[f64]| -> Node {
        let x = rng.gen_range(0.0..total);
        cum.partition_point(|&c| c <= x) as Node
    };
    let mut edges = Vec::with_capacity(m);
    let mut attempts = 0usize;
    while edges.len() < m && attempts < m * 20 {
        attempts += 1;
        let u = sample(rng, &cum);
        let v = sample(rng, &cum);
        if u != v {
            edges.push((u, v, 1.0));
        }
    }
    edges
}

/// Directed R-MAT graph (recursive matrix, the Graph500 generator):
/// each edge recursively descends the adjacency matrix, picking one of
/// four quadrants with probabilities `(a, b, c, d) = (0.57, 0.19, 0.19,
/// 0.05)`. The skew toward the top-left quadrant yields the heavy-tailed
/// degree distribution and community structure of real social networks,
/// in `O(m log n)` time and `O(1)` extra memory — the scale-stress
/// workloads use it to reach 10⁶ nodes where `chung_lu`'s cumulative
/// table and hash-based generators start to hurt.
///
/// `n` need not be a power of two: coordinates are drawn in the
/// enclosing power-of-two grid and rejected when they fall outside
/// `0..n` or on the diagonal, so the result is the R-MAT distribution
/// restricted to the valid off-diagonal square. Parallel picks are kept
/// (the builder merges them into higher interaction counts, like
/// [`chung_lu`]). Deterministic in the RNG: same seed, same edge list.
pub fn rmat<R: Rng>(n: usize, m: usize, rng: &mut R) -> Vec<(Node, Node, f64)> {
    assert!(n >= 2, "rmat needs at least 2 nodes");
    const A: f64 = 0.57;
    const B: f64 = 0.19;
    const C: f64 = 0.19;
    // ceil(log2 n) recursion levels span the enclosing 2^L × 2^L grid.
    let levels = (usize::BITS - (n - 1).leading_zeros()).max(1);
    let mut edges = Vec::with_capacity(m);
    let mut attempts = 0usize;
    while edges.len() < m && attempts < m * 20 {
        attempts += 1;
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..levels {
            u <<= 1;
            v <<= 1;
            let x = rng.gen::<f64>();
            if x < A {
                // top-left: both high bits stay 0
            } else if x < A + B {
                v |= 1;
            } else if x < A + B + C {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        if u < n && v < n && u != v {
            edges.push((u as Node, v as Node, 1.0));
        }
    }
    edges
}

/// Directed preferential attachment: nodes arrive in order, each adding
/// `m_per` out-edges to earlier nodes chosen proportional to in-degree + 1.
pub fn preferential_attachment<R: Rng>(
    n: usize,
    m_per: usize,
    rng: &mut R,
) -> Vec<(Node, Node, f64)> {
    assert!(n >= 2, "preferential_attachment needs at least 2 nodes");
    let mut edges = Vec::with_capacity(n.saturating_sub(1) * m_per);
    // Repeated-target list realizes degree-proportional sampling.
    let mut pool: Vec<Node> = vec![0];
    for u in 1..n as Node {
        for _ in 0..m_per {
            let v = pool[rng.gen_range(0..pool.len())];
            if v != u {
                edges.push((u, v, 1.0));
                pool.push(v);
            }
        }
        pool.push(u);
    }
    edges
}

/// Directed stochastic block model: `blocks` communities of (near-)equal
/// size; each ordered pair gets an edge with probability `p_in` inside a
/// community and `p_out` across communities. Community structure is what
/// bounded-confidence dynamics (Deffuant/HK in `vom-dynamics`) cluster
/// along, and what makes competitive seeding geographically "targeted".
///
/// Node `v` belongs to block `v % blocks`, so callers can assign
/// block-correlated opinions without a membership table.
pub fn stochastic_block<R: Rng>(
    n: usize,
    blocks: usize,
    p_in: f64,
    p_out: f64,
    rng: &mut R,
) -> Vec<(Node, Node, f64)> {
    assert!(n >= 2, "stochastic_block needs at least 2 nodes");
    assert!(blocks >= 1 && blocks <= n, "1 <= blocks <= n");
    assert!((0.0..=1.0).contains(&p_in), "p_in must be a probability");
    assert!((0.0..=1.0).contains(&p_out), "p_out must be a probability");
    let mut edges = Vec::new();
    for u in 0..n as Node {
        for v in 0..n as Node {
            if u == v {
                continue;
            }
            let p = if u as usize % blocks == v as usize % blocks {
                p_in
            } else {
                p_out
            };
            if rng.gen::<f64>() < p {
                edges.push((u, v, 1.0));
            }
        }
    }
    edges
}

/// Simple directed path `0 -> 1 -> … -> n-1`.
pub fn path(n: usize) -> Vec<(Node, Node, f64)> {
    (0..n.saturating_sub(1))
        .map(|i| (i as Node, i as Node + 1, 1.0))
        .collect()
}

/// Star with node 0 at the hub pointing at every other node.
pub fn star(n: usize) -> Vec<(Node, Node, f64)> {
    (1..n).map(|i| (0, i as Node, 1.0)).collect()
}

/// Directed cycle `0 -> 1 -> … -> n-1 -> 0`.
pub fn cycle(n: usize) -> Vec<(Node, Node, f64)> {
    (0..n)
        .map(|i| (i as Node, ((i + 1) % n) as Node, 1.0))
        .collect()
}

/// Complete directed graph (both directions on every pair).
pub fn complete(n: usize) -> Vec<(Node, Node, f64)> {
    let mut edges = Vec::with_capacity(n * (n - 1));
    for u in 0..n as Node {
        for v in 0..n as Node {
            if u != v {
                edges.push((u, v, 1.0));
            }
        }
    }
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn erdos_renyi_deterministic_given_seed() {
        let a = erdos_renyi(50, 200, &mut StdRng::seed_from_u64(7));
        let b = erdos_renyi(50, 200, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
        assert_eq!(a.len(), 200);
        assert!(a.iter().all(|&(u, v, _)| u != v));
    }

    #[test]
    fn erdos_renyi_caps_at_max_edges() {
        let e = erdos_renyi(3, 100, &mut StdRng::seed_from_u64(1));
        assert_eq!(e.len(), 6);
    }

    #[test]
    fn chung_lu_is_heavy_tailed() {
        let edges = chung_lu(2000, 10_000, 2.2, &mut StdRng::seed_from_u64(3));
        let g = graph_from_edges(2000, &edges).unwrap();
        let max_in = g.nodes().map(|v| g.in_degree(v)).max().unwrap();
        let mean_in = g.num_edges() as f64 / 2000.0;
        assert!(
            max_in as f64 > 8.0 * mean_in,
            "expected a hub: max {max_in} vs mean {mean_in}"
        );
    }

    #[test]
    fn rmat_deterministic_given_seed() {
        let a = rmat(1000, 4000, &mut StdRng::seed_from_u64(9));
        let b = rmat(1000, 4000, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        assert!(a.iter().all(|&(u, v, _)| u != v));
        assert!(a
            .iter()
            .all(|&(u, v, _)| (u as usize) < 1000 && (v as usize) < 1000));
    }

    #[test]
    fn rmat_is_heavy_tailed() {
        let edges = rmat(2048, 10_000, &mut StdRng::seed_from_u64(3));
        let g = graph_from_edges(2048, &edges).unwrap();
        let max_in = g.nodes().map(|v| g.in_degree(v)).max().unwrap();
        let mean_in = g.num_edges() as f64 / 2048.0;
        assert!(
            max_in as f64 > 8.0 * mean_in,
            "expected a hub: max {max_in} vs mean {mean_in}"
        );
    }

    #[test]
    fn rmat_handles_non_power_of_two_sizes() {
        // 1300 sits between 1024 and 2048: rejection against the
        // enclosing grid must still fill the edge budget in bounds.
        let n = 1300;
        let edges = rmat(n, 5 * n, &mut StdRng::seed_from_u64(21));
        assert_eq!(edges.len(), 5 * n);
        assert!(edges
            .iter()
            .all(|&(u, v, _)| (u as usize) < n && (v as usize) < n && u != v));
    }

    #[test]
    fn preferential_attachment_builds_hubs() {
        let edges = preferential_attachment(500, 3, &mut StdRng::seed_from_u64(5));
        let g = graph_from_edges(500, &edges).unwrap();
        let d0 = g.in_degree(0);
        let mean = g.num_edges() as f64 / 500.0;
        assert!(d0 as f64 > 3.0 * mean, "node 0 should be a hub: {d0}");
    }

    #[test]
    fn stochastic_block_is_community_dense() {
        let n = 200;
        let blocks = 4;
        let edges = stochastic_block(n, blocks, 0.2, 0.01, &mut StdRng::seed_from_u64(11));
        let (mut within, mut across) = (0usize, 0usize);
        for &(u, v, _) in &edges {
            if u as usize % blocks == v as usize % blocks {
                within += 1;
            } else {
                across += 1;
            }
        }
        // Within-pairs are 1/4 of all pairs but 20x more likely: the
        // within count must clearly dominate per-pair.
        let within_rate = within as f64 / (n * (n / blocks - 1)) as f64;
        let across_rate = across as f64 / (n * (n - n / blocks)) as f64;
        assert!(
            within_rate > 5.0 * across_rate,
            "within {within_rate} vs across {across_rate}"
        );
        let g = graph_from_edges(n, &edges).unwrap();
        g.validate_column_stochastic(1e-9).unwrap();
    }

    #[test]
    fn stochastic_block_extremes() {
        let none = stochastic_block(10, 2, 0.0, 0.0, &mut StdRng::seed_from_u64(2));
        assert!(none.is_empty());
        let full = stochastic_block(10, 2, 1.0, 1.0, &mut StdRng::seed_from_u64(2));
        assert_eq!(full.len(), 90);
    }

    #[test]
    fn structured_generators_have_expected_shapes() {
        assert_eq!(path(4).len(), 3);
        assert_eq!(star(5).len(), 4);
        assert_eq!(cycle(4).len(), 4);
        assert_eq!(complete(4).len(), 12);
        let g = graph_from_edges(4, &cycle(4)).unwrap();
        for v in g.nodes() {
            assert_eq!(g.in_degree(v), 1);
            assert_eq!(g.out_degree(v), 1);
        }
    }
}
