//! Error type for graph construction and validation.

use std::fmt;

/// Errors produced while building or validating a [`crate::SocialGraph`].
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// A graph must contain at least one node.
    EmptyGraph,
    /// An edge endpoint was `>= n`.
    NodeOutOfBounds {
        /// The offending node id.
        node: u32,
        /// Number of nodes in the graph.
        n: u32,
    },
    /// An edge weight was negative, NaN or infinite.
    InvalidWeight {
        /// Source of the offending edge.
        src: u32,
        /// Destination of the offending edge.
        dst: u32,
        /// The weight as supplied.
        weight: f64,
    },
    /// After normalization a column did not sum to one (within tolerance).
    NotColumnStochastic {
        /// The node (column) whose incoming weights are off.
        node: u32,
        /// The actual column sum.
        sum: f64,
    },
    /// A parameter was outside its valid range.
    InvalidParameter(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::EmptyGraph => write!(f, "graph must have at least one node"),
            GraphError::NodeOutOfBounds { node, n } => {
                write!(f, "node {node} out of bounds for graph with {n} nodes")
            }
            GraphError::InvalidWeight { src, dst, weight } => {
                write!(f, "edge ({src} -> {dst}) has invalid weight {weight}")
            }
            GraphError::NotColumnStochastic { node, sum } => {
                write!(
                    f,
                    "incoming weights of node {node} sum to {sum}, expected 1.0"
                )
            }
            GraphError::InvalidParameter(msg) => write!(f, "invalid parameter: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::NodeOutOfBounds { node: 7, n: 4 };
        assert!(e.to_string().contains('7'));
        assert!(e.to_string().contains('4'));
        let e = GraphError::InvalidWeight {
            src: 1,
            dst: 2,
            weight: f64::NAN,
        };
        assert!(e.to_string().contains("1 -> 2"));
        let e = GraphError::NotColumnStochastic { node: 3, sum: 0.5 };
        assert!(e.to_string().contains("0.5"));
        assert!(GraphError::EmptyGraph.to_string().contains("at least one"));
        let e = GraphError::InvalidParameter("p must be in [0,1]".into());
        assert!(e.to_string().contains("p must be"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&GraphError::EmptyGraph);
    }
}
