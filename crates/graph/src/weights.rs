//! Edge-weight transforms applied to raw interaction counts.

/// How raw interaction counts (co-authorships, common restaurant visits,
/// retweets, …) are turned into pre-normalization edge weights.
///
/// The paper (§VIII-A, Appendix D) uses the saturating transform
/// `w = 1 − e^{−a/µ}` from Potamias et al., with `µ = 10` by default; the
/// sensitivity of the final scores to `µ` is Figure 19.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightTransform {
    /// Use the raw count as the weight.
    Raw,
    /// `w = 1 − e^{−a/µ}`: more interactions → higher influence, saturating
    /// at 1.
    ExpSaturation {
        /// Saturation scale; the paper's default is `10.0`.
        mu: f64,
    },
}

impl WeightTransform {
    /// The paper's default transform (`µ = 10`).
    pub fn paper_default() -> Self {
        WeightTransform::ExpSaturation { mu: 10.0 }
    }

    /// Applies the transform to a raw interaction count `a`.
    #[inline]
    pub fn apply(self, a: f64) -> f64 {
        match self {
            WeightTransform::Raw => a,
            WeightTransform::ExpSaturation { mu } => 1.0 - (-a / mu).exp(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_is_identity() {
        assert_eq!(WeightTransform::Raw.apply(3.5), 3.5);
    }

    #[test]
    fn exp_saturation_monotone_and_bounded() {
        let t = WeightTransform::ExpSaturation { mu: 10.0 };
        let mut prev = t.apply(0.0);
        assert_eq!(prev, 0.0);
        for a in 1..100 {
            let w = t.apply(a as f64);
            assert!(w > prev, "must be strictly increasing");
            assert!(w < 1.0, "must saturate below 1");
            prev = w;
        }
        assert!(t.apply(1e6) > 0.999_999);
    }

    #[test]
    fn paper_default_matches_mu_10() {
        let t = WeightTransform::paper_default();
        let expected = 1.0 - (-1.0f64 / 10.0).exp();
        assert!((t.apply(1.0) - expected).abs() < 1e-15);
    }

    #[test]
    fn smaller_mu_saturates_faster() {
        let fast = WeightTransform::ExpSaturation { mu: 1.0 };
        let slow = WeightTransform::ExpSaturation { mu: 20.0 };
        assert!(fast.apply(2.0) > slow.apply(2.0));
    }
}
