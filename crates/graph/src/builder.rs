//! Edge-list ingestion and column normalization.

use crate::csr::Csr;
use crate::error::GraphError;
use crate::graph::SocialGraph;
use crate::weights::WeightTransform;
use crate::{Node, Result};

/// Builds a [`SocialGraph`] from raw weighted edges.
///
/// The pipeline mirrors the paper's §VIII-A setup:
///
/// 1. raw interaction counts are accumulated per directed pair (parallel
///    edges are merged by summing),
/// 2. a [`WeightTransform`] maps counts to pre-normalization weights,
/// 3. each node's incoming weights are normalized to sum to 1
///    (column-stochastic `W`).
///
/// Edges whose transformed weight is `<= 0` are dropped. Self-loops are
/// allowed (a node may weigh its own previous opinion, as user 4 in the
/// paper's running example effectively does via stubbornness).
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(Node, Node, f64)>,
    error: Option<GraphError>,
}

impl GraphBuilder {
    /// Starts a builder for a graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
            error: None,
        }
    }

    /// Pre-allocates space for `m` edges.
    pub fn with_edge_capacity(mut self, m: usize) -> Self {
        self.edges.reserve(m);
        self
    }

    /// Adds a directed edge `src -> dst` carrying raw interaction weight
    /// `raw` (chainable; errors are deferred to [`GraphBuilder::build`]).
    pub fn edge(mut self, src: Node, dst: Node, raw: f64) -> Self {
        self.push_edge(src, dst, raw);
        self
    }

    /// Adds a directed edge through a mutable reference (for loops).
    pub fn add_edge(&mut self, src: Node, dst: Node, raw: f64) {
        self.push_edge(src, dst, raw);
    }

    fn push_edge(&mut self, src: Node, dst: Node, raw: f64) {
        if self.error.is_some() {
            return;
        }
        if src as usize >= self.n {
            self.error = Some(GraphError::NodeOutOfBounds {
                node: src,
                n: self.n as u32,
            });
            return;
        }
        if dst as usize >= self.n {
            self.error = Some(GraphError::NodeOutOfBounds {
                node: dst,
                n: self.n as u32,
            });
            return;
        }
        if !raw.is_finite() || raw < 0.0 {
            self.error = Some(GraphError::InvalidWeight {
                src,
                dst,
                weight: raw,
            });
            return;
        }
        self.edges.push((src, dst, raw));
    }

    /// Number of edges added so far (before merging).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Builds with raw weights (no transform).
    pub fn build(self) -> Result<SocialGraph> {
        self.build_with(WeightTransform::Raw)
    }

    /// Builds the graph, applying `transform` to merged interaction counts
    /// and normalizing every node's incoming weights to sum to 1.
    pub fn build_with(mut self, transform: WeightTransform) -> Result<SocialGraph> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        if self.n == 0 {
            return Err(GraphError::EmptyGraph);
        }
        // Merge parallel edges: sort by (dst, src) and sum raw counts.
        self.edges.sort_unstable_by_key(|a| (a.1, a.0));
        let mut merged: Vec<(Node, Node, f64)> = Vec::with_capacity(self.edges.len());
        for &(src, dst, raw) in &self.edges {
            match merged.last_mut() {
                Some(&mut (ps, pd, ref mut pw)) if ps == src && pd == dst => *pw += raw,
                _ => merged.push((src, dst, raw)),
            }
        }
        // Transform and drop non-positive weights.
        merged.retain_mut(|e| {
            e.2 = transform.apply(e.2);
            e.2 > 0.0
        });
        // Normalize per destination column.
        let mut col_sum = vec![0.0f64; self.n];
        for &(_, dst, w) in &merged {
            col_sum[dst as usize] += w;
        }
        for e in &mut merged {
            e.2 /= col_sum[e.1 as usize];
        }
        let mut has_in = vec![false; self.n];
        for &(_, dst, _) in &merged {
            has_in[dst as usize] = true;
        }
        // in-CSR keyed by destination, out-CSR keyed by source.
        let in_edges: Vec<(Node, Node, f64)> = merged.iter().map(|&(s, d, w)| (d, s, w)).collect();
        let in_csr = Csr::from_grouped_edges(self.n, &in_edges);
        let out_csr = Csr::from_grouped_edges(self.n, &merged);
        let g = SocialGraph::from_parts(in_csr, out_csr, has_in);
        debug_assert!(g.validate_column_stochastic(1e-9).is_ok());
        Ok(g)
    }
}

/// Convenience: builds a graph directly from `(src, dst, raw_weight)`
/// triples with raw weights.
pub fn graph_from_edges(n: usize, edges: &[(Node, Node, f64)]) -> Result<SocialGraph> {
    let mut b = GraphBuilder::new(n).with_edge_capacity(edges.len());
    for &(s, d, w) in edges {
        b.add_edge(s, d, w);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_out_of_bounds() {
        let err = GraphBuilder::new(2).edge(0, 5, 1.0).build().unwrap_err();
        assert_eq!(err, GraphError::NodeOutOfBounds { node: 5, n: 2 });
    }

    #[test]
    fn rejects_negative_and_nan_weights() {
        assert!(matches!(
            GraphBuilder::new(2).edge(0, 1, -1.0).build(),
            Err(GraphError::InvalidWeight { .. })
        ));
        assert!(matches!(
            GraphBuilder::new(2).edge(0, 1, f64::NAN).build(),
            Err(GraphError::InvalidWeight { .. })
        ));
    }

    #[test]
    fn rejects_empty_graph() {
        assert_eq!(
            GraphBuilder::new(0).build().unwrap_err(),
            GraphError::EmptyGraph
        );
    }

    #[test]
    fn first_error_wins_and_is_sticky() {
        let err = GraphBuilder::new(2)
            .edge(0, 9, 1.0)
            .edge(0, 1, f64::NAN)
            .build()
            .unwrap_err();
        assert_eq!(err, GraphError::NodeOutOfBounds { node: 9, n: 2 });
    }

    #[test]
    fn merges_parallel_edges_before_transform() {
        // Two interactions on the same pair must merge to a = 2 first,
        // then transform: w = 1 - e^{-2/10}; a single in-edge normalizes to 1.
        let g = GraphBuilder::new(2)
            .edge(0, 1, 1.0)
            .edge(0, 1, 1.0)
            .build_with(WeightTransform::ExpSaturation { mu: 10.0 })
            .unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.in_weights(1), &[1.0]);
    }

    #[test]
    fn normalizes_columns_proportionally() {
        let g = graph_from_edges(3, &[(0, 2, 1.0), (1, 2, 3.0)]).unwrap();
        let w = g.in_weights(2);
        assert!((w[0] - 0.25).abs() < 1e-12);
        assert!((w[1] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn drops_zero_weight_edges() {
        let g = graph_from_edges(3, &[(0, 2, 0.0), (1, 2, 2.0)]).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.in_neighbors(2), &[1]);
        assert_eq!(g.in_weights(2), &[1.0]);
    }

    #[test]
    fn node_with_only_zero_edges_has_no_in_edges() {
        let g = graph_from_edges(3, &[(0, 2, 0.0)]).unwrap();
        assert!(!g.has_in_edges(2));
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn self_loops_are_kept_and_normalized() {
        let g = graph_from_edges(2, &[(1, 1, 1.0), (0, 1, 1.0)]).unwrap();
        assert_eq!(g.in_degree(1), 2);
        let sum: f64 = g.in_weights(1).iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn exp_transform_changes_relative_weights() {
        // Raw counts 1 and 100 into the same node: under Raw the ratio is
        // 1:100; under ExpSaturation both saturate so the ratio compresses.
        let raw = graph_from_edges(3, &[(0, 2, 1.0), (1, 2, 100.0)]).unwrap();
        let sat = GraphBuilder::new(3)
            .edge(0, 2, 1.0)
            .edge(1, 2, 100.0)
            .build_with(WeightTransform::ExpSaturation { mu: 10.0 })
            .unwrap();
        assert!(raw.in_weights(2)[0] < sat.in_weights(2)[0]);
    }
}
