//! Bounded-hop breadth-first search.
//!
//! Under the FJ model, influence from a seed travels one hop per timestamp,
//! so a seed set `S` can only affect nodes within `t` outgoing hops: the
//! *reachable users set* `N_S^{(t)}` (Definition 2). These routines
//! compute it and support the coverage-style greedy maximization of the
//! sandwich upper bounds (Definitions 4 and 6).

use crate::graph::SocialGraph;
use crate::Node;
use std::collections::VecDeque;

/// Reusable scratch space for repeated bounded BFS runs.
///
/// Uses an epoch-stamped visited array so clearing between runs is O(1).
#[derive(Debug, Clone)]
pub struct BfsBuffer {
    stamp: Vec<u32>,
    epoch: u32,
    queue: VecDeque<(Node, u32)>,
}

impl BfsBuffer {
    /// Creates scratch space for a graph with `n` nodes.
    pub fn new(n: usize) -> Self {
        BfsBuffer {
            stamp: vec![0; n],
            epoch: 0,
            queue: VecDeque::new(),
        }
    }

    fn begin(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // Extremely rare wrap: reset stamps so stale marks cannot alias.
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 1;
        }
        self.queue.clear();
    }

    #[inline]
    fn mark(&mut self, v: Node) -> bool {
        let s = &mut self.stamp[v as usize];
        if *s == self.epoch {
            false
        } else {
            *s = self.epoch;
            true
        }
    }
}

/// Collects every node at most `t` outgoing hops from any node in
/// `sources` (sources themselves included — `h = 0`).
pub fn bounded_out_bfs(g: &SocialGraph, sources: &[Node], t: usize) -> Vec<Node> {
    let mut buf = BfsBuffer::new(g.num_nodes());
    bounded_out_bfs_with(g, sources, t, &mut buf)
}

/// [`bounded_out_bfs`] with caller-provided scratch space.
pub fn bounded_out_bfs_with(
    g: &SocialGraph,
    sources: &[Node],
    t: usize,
    buf: &mut BfsBuffer,
) -> Vec<Node> {
    buf.begin();
    let mut out = Vec::new();
    for &s in sources {
        if buf.mark(s) {
            out.push(s);
            buf.queue.push_back((s, 0));
        }
    }
    while let Some((v, h)) = buf.queue.pop_front() {
        if h as usize >= t {
            continue;
        }
        for &w in g.out_neighbors(v) {
            if buf.mark(w) {
                out.push(w);
                buf.queue.push_back((w, h + 1));
            }
        }
    }
    out
}

/// Incremental coverage state for greedily maximizing
/// `|N_S^{(t)} ∪ base|`-style submodular coverage functions.
///
/// `marginal(s)` counts nodes within `t` hops of `s` not yet covered;
/// `commit(s)` adds them. Both are exact (full bounded BFS per call), as
/// in the paper's sandwich upper-bound greedy, which is cheap relative to
/// opinion computation because no diffusion is involved (§IV-D).
#[derive(Debug, Clone)]
pub struct HopCoverage {
    covered: Vec<bool>,
    covered_count: usize,
    t: usize,
    buf: BfsBuffer,
}

impl HopCoverage {
    /// Starts coverage over `n` nodes with hop budget `t`, pre-covering
    /// `base` (e.g. the favorable users set `V_q^{(t)}`).
    pub fn new(n: usize, t: usize, base: &[Node]) -> Self {
        let mut covered = vec![false; n];
        let mut covered_count = 0;
        for &v in base {
            if !covered[v as usize] {
                covered[v as usize] = true;
                covered_count += 1;
            }
        }
        HopCoverage {
            covered,
            covered_count,
            t,
            buf: BfsBuffer::new(n),
        }
    }

    /// Number of covered nodes so far (`|N_S^{(t)} ∪ base|`).
    pub fn covered_count(&self) -> usize {
        self.covered_count
    }

    /// Marginal coverage gain of adding `s` to the seed set.
    pub fn marginal(&mut self, g: &SocialGraph, s: Node) -> usize {
        let reach = bounded_out_bfs_with(g, &[s], self.t, &mut self.buf);
        reach.iter().filter(|&&v| !self.covered[v as usize]).count()
    }

    /// Commits `s`: marks everything within `t` hops covered and returns
    /// the realized gain.
    pub fn commit(&mut self, g: &SocialGraph, s: Node) -> usize {
        let reach = bounded_out_bfs_with(g, &[s], self.t, &mut self.buf);
        let mut gain = 0;
        for v in reach {
            let c = &mut self.covered[v as usize];
            if !*c {
                *c = true;
                gain += 1;
            }
        }
        self.covered_count += gain;
        gain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    fn path4() -> SocialGraph {
        // 0 -> 1 -> 2 -> 3
        graph_from_edges(4, &[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap()
    }

    #[test]
    fn zero_hops_is_sources_only() {
        let g = path4();
        let mut r = bounded_out_bfs(&g, &[1], 0);
        r.sort_unstable();
        assert_eq!(r, vec![1]);
    }

    #[test]
    fn hop_limit_respected() {
        let g = path4();
        let mut r = bounded_out_bfs(&g, &[0], 2);
        r.sort_unstable();
        assert_eq!(r, vec![0, 1, 2]);
        let mut r = bounded_out_bfs(&g, &[0], 10);
        r.sort_unstable();
        assert_eq!(r, vec![0, 1, 2, 3]);
    }

    #[test]
    fn multiple_sources_union() {
        let g = path4();
        let mut r = bounded_out_bfs(&g, &[0, 3], 1);
        r.sort_unstable();
        assert_eq!(r, vec![0, 1, 3]);
    }

    #[test]
    fn duplicate_sources_deduplicated() {
        let g = path4();
        let r = bounded_out_bfs(&g, &[2, 2], 0);
        assert_eq!(r, vec![2]);
    }

    #[test]
    fn buffer_reuse_across_runs() {
        let g = path4();
        let mut buf = BfsBuffer::new(4);
        for _ in 0..100 {
            let r = bounded_out_bfs_with(&g, &[0], 1, &mut buf);
            assert_eq!(r.len(), 2);
        }
    }

    #[test]
    fn coverage_marginal_then_commit() {
        let g = path4();
        let mut cov = HopCoverage::new(4, 1, &[]);
        assert_eq!(cov.marginal(&g, 0), 2); // {0, 1}
        assert_eq!(cov.commit(&g, 0), 2);
        assert_eq!(cov.covered_count(), 2);
        assert_eq!(cov.marginal(&g, 1), 1); // {1, 2} minus covered {1}
        assert_eq!(cov.commit(&g, 1), 1);
        assert_eq!(cov.covered_count(), 3);
    }

    #[test]
    fn coverage_respects_base_set() {
        let g = path4();
        let mut cov = HopCoverage::new(4, 1, &[1, 1, 2]);
        assert_eq!(cov.covered_count(), 2);
        assert_eq!(cov.marginal(&g, 0), 1); // only node 0 is new
    }

    #[test]
    fn coverage_is_submodular_on_paths() {
        // marginal(s | X) >= marginal(s | Y) for X ⊆ Y.
        let g = path4();
        let mut small = HopCoverage::new(4, 2, &[]);
        small.commit(&g, 0);
        let mut large = HopCoverage::new(4, 2, &[]);
        large.commit(&g, 0);
        large.commit(&g, 1);
        assert!(small.marginal(&g, 2) >= large.marginal(&g, 2));
    }
}
