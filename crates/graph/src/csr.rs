//! Compressed-sparse-row adjacency with per-edge weights.

use crate::Node;

/// A weighted CSR adjacency structure.
///
/// For every node `v` in `0..n`, `neighbors(v)` and `weights(v)` return the
/// adjacent node ids and the matching edge weights. Whether the adjacency
/// stores *incoming* or *outgoing* edges is decided by the caller
/// ([`crate::SocialGraph`] keeps one of each).
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    offsets: Vec<usize>,
    targets: Vec<Node>,
    weights: Vec<f64>,
}

impl Csr {
    /// Builds a CSR from an edge list, grouping by `key` (the node each
    /// entry is filed under) with `(other, weight)` payloads.
    ///
    /// `edges` yields `(key, other, weight)` triples; all ids must be `< n`
    /// (validated by [`crate::GraphBuilder`], debug-asserted here).
    pub fn from_grouped_edges(n: usize, edges: &[(Node, Node, f64)]) -> Self {
        let mut counts = vec![0usize; n + 1];
        for &(key, _, _) in edges {
            debug_assert!((key as usize) < n);
            counts[key as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts;
        let mut cursor = offsets.clone();
        let mut targets = vec![0 as Node; edges.len()];
        let mut weights = vec![0.0f64; edges.len()];
        for &(key, other, w) in edges {
            let slot = cursor[key as usize];
            targets[slot] = other;
            weights[slot] = w;
            cursor[key as usize] += 1;
        }
        Csr {
            offsets,
            targets,
            weights,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of stored edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Adjacent node ids of `v`.
    #[inline]
    pub fn neighbors(&self, v: Node) -> &[Node] {
        let (s, e) = self.range(v);
        &self.targets[s..e]
    }

    /// Edge weights of `v`, aligned with [`Csr::neighbors`].
    #[inline]
    pub fn weights(&self, v: Node) -> &[f64] {
        let (s, e) = self.range(v);
        &self.weights[s..e]
    }

    /// Number of adjacent edges of `v`.
    #[inline]
    pub fn degree(&self, v: Node) -> usize {
        let (s, e) = self.range(v);
        e - s
    }

    /// Iterates `(neighbor, weight)` pairs of `v`.
    #[inline]
    pub fn entries(&self, v: Node) -> impl Iterator<Item = (Node, f64)> + '_ {
        let (s, e) = self.range(v);
        self.targets[s..e]
            .iter()
            .copied()
            .zip(self.weights[s..e].iter().copied())
    }

    #[inline]
    fn range(&self, v: Node) -> (usize, usize) {
        let v = v as usize;
        debug_assert!(v < self.num_nodes());
        (self.offsets[v], self.offsets[v + 1])
    }

    /// Exact owned heap footprint in bytes — `Vec` **capacities**, so any
    /// post-build slack is visible to the memory accounting.
    pub fn heap_bytes(&self) -> usize {
        self.offsets.capacity() * std::mem::size_of::<usize>()
            + self.targets.capacity() * std::mem::size_of::<Node>()
            + self.weights.capacity() * std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr {
        // key = destination: in-edges of a 4-node graph 0->2, 1->2, 2->3.
        Csr::from_grouped_edges(4, &[(2, 0, 0.5), (2, 1, 0.5), (3, 2, 1.0)])
    }

    #[test]
    fn builds_and_queries() {
        let csr = sample();
        assert_eq!(csr.num_nodes(), 4);
        assert_eq!(csr.num_edges(), 3);
        assert_eq!(csr.neighbors(2), &[0, 1]);
        assert_eq!(csr.weights(2), &[0.5, 0.5]);
        assert_eq!(csr.neighbors(3), &[2]);
        assert!(csr.neighbors(0).is_empty());
        assert_eq!(csr.degree(2), 2);
        assert_eq!(csr.degree(0), 0);
    }

    #[test]
    fn entries_iterates_pairs() {
        let csr = sample();
        let pairs: Vec<_> = csr.entries(2).collect();
        assert_eq!(pairs, vec![(0, 0.5), (1, 0.5)]);
    }

    #[test]
    fn preserves_insertion_order_within_group() {
        let csr = Csr::from_grouped_edges(2, &[(0, 1, 1.0), (0, 0, 2.0)]);
        assert_eq!(csr.neighbors(0), &[1, 0]);
        assert_eq!(csr.weights(0), &[1.0, 2.0]);
    }

    #[test]
    fn empty_graph_of_isolated_nodes() {
        let csr = Csr::from_grouped_edges(3, &[]);
        assert_eq!(csr.num_nodes(), 3);
        assert_eq!(csr.num_edges(), 0);
        for v in 0..3 {
            assert!(csr.neighbors(v).is_empty());
        }
    }

    #[test]
    fn heap_bytes_is_capacity_exact() {
        // `from_grouped_edges` allocates every buffer exact-size, so the
        // capacity-based accounting equals the closed-form footprint.
        let csr = sample();
        assert_eq!(
            csr.heap_bytes(),
            (csr.num_nodes() + 1) * std::mem::size_of::<usize>()
                + csr.num_edges() * std::mem::size_of::<Node>()
                + csr.num_edges() * std::mem::size_of::<f64>()
        );
    }
}
