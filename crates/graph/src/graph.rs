//! The column-stochastic social graph.

use crate::csr::Csr;
use crate::error::GraphError;
use crate::{Node, Result};

/// A directed social network with a column-stochastic influence matrix.
///
/// For every node `v` **with at least one incoming edge**, the weights on
/// its incoming edges sum to 1 — this is the column-stochasticity the
/// DeGroot/FJ models require (Eq. 1–2 of the paper). Nodes without
/// incoming edges keep their initial opinion forever, which matches the
/// paper's convention ("users without in-neighbors retain their initial
/// opinions") and is equivalent to an implicit self-loop of weight 1.
///
/// The same weights are exposed in two layouts:
///
/// * [`SocialGraph::in_entries`]`(v)` — `(source j, w_jv)`: drives the FJ
///   update `b_v ← (1 − d_v)·Σ_j w_jv·b_j + d_v·b⁰_v` and the *reverse*
///   random walks of §V (a walk at `v` moves to in-neighbor `j` with
///   probability `w_jv`);
/// * [`SocialGraph::out_entries`]`(u)` — `(dest v, w_uv)`: drives the
///   bounded-hop BFS for the reachable set `N_S^{(t)}` and the IC/LT
///   baseline cascades.
#[derive(Debug, Clone)]
pub struct SocialGraph {
    in_csr: Csr,
    out_csr: Csr,
    has_in: Vec<bool>,
    num_edges: usize,
}

impl SocialGraph {
    /// Assembles a graph from already-normalized parts. Used by
    /// [`crate::GraphBuilder`]; library users should go through the builder.
    pub(crate) fn from_parts(in_csr: Csr, out_csr: Csr, has_in: Vec<bool>) -> Self {
        let num_edges = in_csr.num_edges();
        SocialGraph {
            in_csr,
            out_csr,
            has_in,
            num_edges,
        }
    }

    /// Number of nodes `n`.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.in_csr.num_nodes()
    }

    /// Number of directed edges `m` (with positive normalized weight).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Whether `v` has at least one incoming edge.
    #[inline]
    pub fn has_in_edges(&self, v: Node) -> bool {
        self.has_in[v as usize]
    }

    /// In-neighbors of `v` (sources of edges into `v`).
    #[inline]
    pub fn in_neighbors(&self, v: Node) -> &[Node] {
        self.in_csr.neighbors(v)
    }

    /// Normalized incoming weights of `v`, aligned with
    /// [`SocialGraph::in_neighbors`]. Sums to 1 when `v` has in-edges.
    #[inline]
    pub fn in_weights(&self, v: Node) -> &[f64] {
        self.in_csr.weights(v)
    }

    /// Iterates `(in-neighbor j, w_jv)` for `v`.
    #[inline]
    pub fn in_entries(&self, v: Node) -> impl Iterator<Item = (Node, f64)> + '_ {
        self.in_csr.entries(v)
    }

    /// Out-neighbors of `u` (destinations of edges out of `u`).
    #[inline]
    pub fn out_neighbors(&self, u: Node) -> &[Node] {
        self.out_csr.neighbors(u)
    }

    /// Iterates `(out-neighbor v, w_uv)` for `u`. The weight is the same
    /// normalized `w_uv` stored on `v`'s in-list.
    #[inline]
    pub fn out_entries(&self, u: Node) -> impl Iterator<Item = (Node, f64)> + '_ {
        self.out_csr.entries(u)
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: Node) -> usize {
        self.in_csr.degree(v)
    }

    /// Out-degree of `u`.
    #[inline]
    pub fn out_degree(&self, u: Node) -> usize {
        self.out_csr.degree(u)
    }

    /// Iterates all node ids `0..n`.
    #[inline]
    pub fn nodes(&self) -> impl Iterator<Item = Node> {
        0..self.num_nodes() as Node
    }

    /// Verifies column-stochasticity within `tol`; returns the first
    /// violating node otherwise. Cheap enough to run in tests and after
    /// deserialization.
    pub fn validate_column_stochastic(&self, tol: f64) -> Result<()> {
        for v in self.nodes() {
            if !self.has_in_edges(v) {
                continue;
            }
            let sum: f64 = self.in_weights(v).iter().sum();
            if (sum - 1.0).abs() > tol {
                return Err(GraphError::NotColumnStochastic { node: v, sum });
            }
        }
        Ok(())
    }

    /// Exact owned heap footprint in bytes (both CSR layouts + bitmap),
    /// counting `Vec` capacities so allocation slack is visible.
    pub fn heap_bytes(&self) -> usize {
        self.in_csr.heap_bytes() + self.out_csr.heap_bytes() + self.has_in.capacity()
    }
}

#[cfg(test)]
mod tests {
    use crate::GraphBuilder;

    #[test]
    fn running_example_structure() {
        // Figure 1: edges 1->3, 2->3, 3->4 (0-indexed: 0->2, 1->2, 2->3).
        let g = GraphBuilder::new(4)
            .edge(0, 2, 1.0)
            .edge(1, 2, 1.0)
            .edge(2, 3, 1.0)
            .build()
            .unwrap();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 3);
        assert!(!g.has_in_edges(0));
        assert!(!g.has_in_edges(1));
        assert!(g.has_in_edges(2));
        assert_eq!(g.in_neighbors(2), &[0, 1]);
        assert_eq!(g.in_weights(2), &[0.5, 0.5]);
        assert_eq!(g.in_weights(3), &[1.0]);
        assert_eq!(g.out_neighbors(2), &[3]);
        assert_eq!(g.out_degree(2), 1);
        assert_eq!(g.in_degree(2), 2);
        g.validate_column_stochastic(1e-12).unwrap();
    }

    #[test]
    fn out_weights_match_in_weights() {
        let g = GraphBuilder::new(3)
            .edge(0, 2, 3.0)
            .edge(1, 2, 1.0)
            .build()
            .unwrap();
        // Column of node 2 normalized: 0.75 / 0.25.
        let out0: Vec<_> = g.out_entries(0).collect();
        assert_eq!(out0, vec![(2, 0.75)]);
        let out1: Vec<_> = g.out_entries(1).collect();
        assert_eq!(out1, vec![(2, 0.25)]);
    }
}
