#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # vom-graph
//!
//! Directed social-graph substrate for voting-based opinion maximization.
//!
//! The central type is [`SocialGraph`]: a compressed-sparse-row (CSR)
//! representation of a directed graph whose edge weights form a
//! *column-stochastic* influence matrix `W` — for every node `v`, the
//! weights on the incoming edges of `v` sum to one. This is exactly the
//! matrix the DeGroot and Friedkin–Johnsen opinion-diffusion models
//! multiply against (see the `vom-diffusion` crate).
//!
//! The crate also provides:
//!
//! * [`GraphBuilder`] — edge-list ingestion with interaction-count weight
//!   transforms (`w = 1 − e^{−a/µ}`, as used by the paper) and column
//!   normalization;
//! * bounded-hop BFS for the *reachable users set* `N_S^{(t)}`
//!   ([`bfs::bounded_out_bfs`], [`bfs::HopCoverage`]);
//! * deterministic random-graph generators used by the synthetic dataset
//!   replicas and the test-suite ([`generators`]);
//! * degree statistics ([`stats`]).
//!
//! Nodes are dense `u32` indices in `0..n` (alias [`Node`]); this keeps the
//! hot arrays (`Vec<f64>` opinion vectors, walk arenas) directly indexable.
//!
//! # Example
//!
//! ```
//! use vom_graph::GraphBuilder;
//!
//! // Raw interaction strengths; incoming weights normalize to sum to 1.
//! let g = GraphBuilder::new(3)
//!     .edge(0, 2, 3.0)
//!     .edge(1, 2, 1.0)
//!     .build()?;
//! assert_eq!(g.num_nodes(), 3);
//! assert_eq!(g.in_degree(2), 2);
//! let total: f64 = g.in_weights(2).iter().sum();
//! assert!((total - 1.0).abs() < 1e-12);
//! assert!(g.in_weights(2).contains(&0.75)); // 3.0 / (3.0 + 1.0)
//! g.validate_column_stochastic(1e-12)?;
//! # Ok::<(), vom_graph::GraphError>(())
//! ```

pub mod bfs;
pub mod builder;
pub mod csr;
pub mod error;
pub mod generators;
pub mod graph;
pub mod stats;
pub mod weights;

pub use builder::GraphBuilder;
pub use csr::Csr;
pub use error::GraphError;
pub use graph::SocialGraph;
pub use weights::WeightTransform;

/// Dense node identifier (`0..n`).
pub type Node = u32;

/// Candidate (campaigner) identifier (`0..r`).
pub type Candidate = usize;

/// Crate-wide result type.
pub type Result<T> = std::result::Result<T, GraphError>;
