//! Graph summary statistics (Table III style).

use crate::graph::SocialGraph;
use std::fmt;

/// Degree and size statistics of a [`SocialGraph`].
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of nodes.
    pub nodes: usize,
    /// Number of edges (positive normalized weight).
    pub edges: usize,
    /// Mean in-degree (= mean out-degree).
    pub mean_degree: f64,
    /// Maximum in-degree.
    pub max_in_degree: usize,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Number of nodes with no incoming edges (opinion sources).
    pub source_nodes: usize,
}

impl GraphStats {
    /// Computes statistics for `g`.
    pub fn compute(g: &SocialGraph) -> Self {
        let n = g.num_nodes();
        let mut max_in = 0;
        let mut max_out = 0;
        let mut sources = 0;
        for v in g.nodes() {
            max_in = max_in.max(g.in_degree(v));
            max_out = max_out.max(g.out_degree(v));
            if !g.has_in_edges(v) {
                sources += 1;
            }
        }
        GraphStats {
            nodes: n,
            edges: g.num_edges(),
            mean_degree: g.num_edges() as f64 / n as f64,
            max_in_degree: max_in,
            max_out_degree: max_out,
            source_nodes: sources,
        }
    }
}

impl fmt::Display for GraphStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} m={} mean_deg={:.2} max_in={} max_out={} sources={}",
            self.nodes,
            self.edges,
            self.mean_degree,
            self.max_in_degree,
            self.max_out_degree,
            self.source_nodes
        )
    }
}

/// Histogram of in-degrees, bucketed by powers of two (`[0]`, `[1]`,
/// `[2,3]`, `[4,7]`, …). Useful for eyeballing heavy tails.
pub fn in_degree_histogram(g: &SocialGraph) -> Vec<(usize, usize)> {
    let mut buckets: Vec<usize> = Vec::new();
    for v in g.nodes() {
        let d = g.in_degree(v);
        let b = if d == 0 {
            0
        } else {
            (usize::BITS - d.leading_zeros()) as usize
        };
        if buckets.len() <= b {
            buckets.resize(b + 1, 0);
        }
        buckets[b] += 1;
    }
    buckets
        .into_iter()
        .enumerate()
        .map(|(b, c)| (if b == 0 { 0 } else { 1 << (b - 1) }, c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;
    use crate::generators;

    #[test]
    fn stats_on_running_example() {
        let g = graph_from_edges(4, &[(0, 2, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap();
        let s = GraphStats::compute(&g);
        assert_eq!(s.nodes, 4);
        assert_eq!(s.edges, 3);
        assert_eq!(s.max_in_degree, 2);
        assert_eq!(s.max_out_degree, 1);
        assert_eq!(s.source_nodes, 2);
        assert!((s.mean_degree - 0.75).abs() < 1e-12);
        let shown = s.to_string();
        assert!(shown.contains("n=4"));
        assert!(shown.contains("m=3"));
    }

    #[test]
    fn histogram_buckets_counts_sum_to_n() {
        let g = graph_from_edges(5, &generators::star(5)).unwrap();
        let h = in_degree_histogram(&g);
        let total: usize = h.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 5);
        // Hub has in-degree 0, leaves have 1.
        assert_eq!(h[0], (0, 1));
        assert_eq!(h[1], (1, 4));
    }
}
