//! Reverse-reachable (RR) set generation for IC and LT (Borgs et al.;
//! Tang et al.).

use crate::cascade::CascadeModel;
use rand::rngs::SmallRng;
use rand::Rng;
use vom_graph::{Node, SocialGraph};

/// Generates one RR set rooted at a uniformly random node.
///
/// * IC: randomized reverse BFS — each incoming edge `(u, v)` is crossed
///   with probability `w_uv`.
/// * LT: reverse live-edge walk — each visited node picks exactly one
///   in-neighbor (weights sum to 1), stopping on a revisit or a node
///   without in-edges.
pub fn generate_rr_set(g: &SocialGraph, model: CascadeModel, rng: &mut SmallRng) -> Vec<Node> {
    let root = rng.gen_range(0..g.num_nodes()) as Node;
    rr_set_from(g, model, root, rng)
}

/// Generates one RR set rooted at `root`.
pub fn rr_set_from(
    g: &SocialGraph,
    model: CascadeModel,
    root: Node,
    rng: &mut SmallRng,
) -> Vec<Node> {
    match model {
        CascadeModel::IndependentCascade => {
            let mut visited = vec![root];
            // audit:allow(d-hash-iter, "membership-only dedupe set; traversal order comes from the visited Vec, the set is never iterated")
            let mut in_set = std::collections::HashSet::new();
            in_set.insert(root);
            let mut frontier = vec![root];
            while let Some(v) = frontier.pop() {
                for (u, w) in g.in_entries(v) {
                    if !in_set.contains(&u) && rng.gen::<f64>() < w {
                        in_set.insert(u);
                        visited.push(u);
                        frontier.push(u);
                    }
                }
            }
            visited
        }
        CascadeModel::LinearThreshold => {
            let mut visited = vec![root];
            // audit:allow(d-hash-iter, "membership-only dedupe set; traversal order comes from the visited Vec, the set is never iterated")
            let mut in_set = std::collections::HashSet::new();
            in_set.insert(root);
            let mut cur = root;
            loop {
                if !g.has_in_edges(cur) {
                    break;
                }
                let neighbors = g.in_neighbors(cur);
                let weights = g.in_weights(cur);
                let x: f64 = rng.gen();
                let mut acc = 0.0;
                let mut next = *neighbors.last().expect("has in-edges");
                for (i, &w) in weights.iter().enumerate() {
                    acc += w;
                    if x < acc {
                        next = neighbors[i];
                        break;
                    }
                }
                if !in_set.insert(next) {
                    break; // revisit: the live-edge path loops
                }
                visited.push(next);
                cur = next;
            }
            visited
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use vom_graph::builder::graph_from_edges;
    use vom_graph::generators;

    #[test]
    fn ic_rr_sets_follow_reverse_edges() {
        // Path 0 -> 1 -> 2 with weight 1: RR set of node 2 is {2, 1, 0}.
        let g = graph_from_edges(3, &generators::path(3)).unwrap();
        let mut rng = SmallRng::seed_from_u64(1);
        let rr = rr_set_from(&g, CascadeModel::IndependentCascade, 2, &mut rng);
        assert_eq!(rr, vec![2, 1, 0]);
        // Node 0 has no in-edges: singleton.
        let rr0 = rr_set_from(&g, CascadeModel::IndependentCascade, 0, &mut rng);
        assert_eq!(rr0, vec![0]);
    }

    #[test]
    fn lt_rr_sets_are_paths_without_repeats() {
        let g = graph_from_edges(4, &generators::cycle(4)).unwrap();
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..50 {
            let rr = generate_rr_set(&g, CascadeModel::LinearThreshold, &mut rng);
            let mut sorted = rr.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), rr.len(), "no repeats in {rr:?}");
            assert!(rr.len() <= 4);
        }
    }

    #[test]
    fn ic_rr_membership_probability_matches_edge_weight() {
        // Edge (0 -> 1) with probability 0.25 after normalization.
        let g = graph_from_edges(2, &[(0, 1, 1.0), (1, 1, 3.0)]).unwrap();
        let mut rng = SmallRng::seed_from_u64(5);
        let mut hits = 0;
        let trials = 40_000;
        for _ in 0..trials {
            let rr = rr_set_from(&g, CascadeModel::IndependentCascade, 1, &mut rng);
            if rr.contains(&0) {
                hits += 1;
            }
        }
        let p = hits as f64 / trials as f64;
        assert!((p - 0.25).abs() < 0.02, "membership probability {p}");
    }
}
