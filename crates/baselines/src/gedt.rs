//! GED-T — the greedy opinion-maximization algorithm of Gionis, Terzi &
//! Tsaparas, adapted to a finite time horizon.

use vom_core::dm::dm_greedy;
use vom_core::Problem;
use vom_graph::Node;
use vom_voting::ScoringFunction;

/// GED-T seed selection.
///
/// The original algorithm greedily maximizes the *sum of expressed
/// opinions at the Nash equilibrium* for a single campaign. Adapted to a
/// finite horizon `t` (as the paper does for its experiments), it
/// coincides with DM's exact greedy on the **cumulative** score —
/// regardless of the voting score the evaluation later applies, which is
/// precisely why GED-T trails on plurality/Copeland in Figures 6–7 while
/// matching DM on Figure 8.
pub fn gedt_seeds(problem: &Problem<'_>) -> Vec<Node> {
    let cumulative = Problem::new(
        problem.instance,
        problem.target,
        problem.k,
        problem.horizon,
        ScoringFunction::Cumulative,
    )
    .expect("a valid problem stays valid with the cumulative score");
    dm_greedy(&cumulative)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vom_diffusion::{Instance, OpinionMatrix};
    use vom_graph::builder::graph_from_edges;

    fn instance() -> Instance {
        let g = Arc::new(graph_from_edges(4, &[(0, 2, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap());
        let b = OpinionMatrix::from_rows(vec![
            vec![0.40, 0.80, 0.60, 0.90],
            vec![0.35, 0.75, 1.00, 0.80],
        ])
        .unwrap();
        Instance::shared(g, b, vec![0.0, 0.0, 0.5, 0.5]).unwrap()
    }

    #[test]
    fn gedt_equals_dm_on_cumulative() {
        let inst = instance();
        let p = Problem::new(&inst, 0, 2, 1, ScoringFunction::Cumulative).unwrap();
        assert_eq!(gedt_seeds(&p), dm_greedy(&p));
    }

    #[test]
    fn gedt_ignores_the_requested_score() {
        let inst = instance();
        let plurality = Problem::new(&inst, 0, 1, 1, ScoringFunction::Plurality).unwrap();
        let seeds = gedt_seeds(&plurality);
        // GED-T optimizes cumulative: it picks node 0 (score 3.30), not
        // the plurality-optimal node 2.
        assert_eq!(seeds, vec![0]);
        assert_eq!(plurality.exact_score(&seeds), 2.0);
    }
}
