//! Random Walk with Restart baseline (RWR), following the heuristic used
//! as a baseline in Gionis et al.

use crate::top_k_by_score;
use vom_graph::{Node, SocialGraph};

/// RWR influence scores: a walker starts anywhere uniformly and at each
/// step restarts with probability `restart`, otherwise moves **backwards**
/// along incoming edges proportional to the influence weights. The
/// stationary mass of a node measures how often opinion flows are traced
/// back to it — i.e. how influential it is as an opinion *source* (this
/// mirrors the reverse-walk semantics of the FJ model, where opinion
/// value flows from walk end to walk start).
pub fn rwr_scores(g: &SocialGraph, restart: f64, iterations: usize) -> Vec<f64> {
    let n = g.num_nodes();
    assert!(n > 0);
    assert!((0.0..=1.0).contains(&restart), "restart must be in [0, 1]");
    let uniform = 1.0 / n as f64;
    let mut mass = vec![uniform; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..iterations {
        next.iter_mut().for_each(|x| *x = 0.0);
        let mut restarted = 0.0f64;
        for v in 0..n as Node {
            let m = mass[v as usize];
            restarted += restart * m;
            let moving = (1.0 - restart) * m;
            if !g.has_in_edges(v) {
                // Sources hold their mass (the walk cannot move).
                next[v as usize] += moving;
            } else {
                for (u, w) in g.in_entries(v) {
                    next[u as usize] += moving * w;
                }
            }
        }
        let share = restarted / n as f64;
        for x in next.iter_mut() {
            *x += share;
        }
        std::mem::swap(&mut mass, &mut next);
    }
    mass
}

/// The RWR baseline: top-`k` nodes by reverse-walk stationary mass
/// (restart 0.15, 50 iterations).
pub fn rwr_seeds(g: &SocialGraph, k: usize) -> Vec<Node> {
    top_k_by_score(&rwr_scores(g, 0.15, 50), k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vom_graph::builder::graph_from_edges;
    use vom_graph::generators;

    #[test]
    fn mass_is_conserved() {
        let g = graph_from_edges(5, &generators::star(5)).unwrap();
        let scores = rwr_scores(&g, 0.15, 40);
        let sum: f64 = scores.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
    }

    #[test]
    fn hub_of_star_collects_reverse_mass() {
        // All leaves' in-edges come from the hub: reverse walks funnel
        // into node 0, which is exactly the most influential source.
        let g = graph_from_edges(6, &generators::star(6)).unwrap();
        let scores = rwr_scores(&g, 0.15, 40);
        for leaf in 1..6 {
            assert!(scores[0] > scores[leaf]);
        }
        assert_eq!(rwr_seeds(&g, 1), vec![0]);
    }

    #[test]
    fn uniform_on_symmetric_cycle() {
        let g = graph_from_edges(4, &generators::cycle(4)).unwrap();
        let scores = rwr_scores(&g, 0.15, 60);
        for s in &scores {
            assert!((s - 0.25).abs() < 1e-9);
        }
    }
}
