//! Degree-centrality baseline (DC).

use crate::top_k_by_score;
use vom_graph::{Node, SocialGraph};

/// The DC baseline: top-`k` nodes by **weighted out-degree** (total
/// outgoing influence weight) — the natural "many strong followers"
/// heuristic.
pub fn degree_centrality_seeds(g: &SocialGraph, k: usize) -> Vec<Node> {
    let scores: Vec<f64> = (0..g.num_nodes() as Node)
        .map(|u| g.out_entries(u).map(|(_, w)| w).sum())
        .collect();
    top_k_by_score(&scores, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vom_graph::builder::graph_from_edges;
    use vom_graph::generators;

    #[test]
    fn hub_wins_on_star() {
        let g = graph_from_edges(10, &generators::star(10)).unwrap();
        assert_eq!(degree_centrality_seeds(&g, 1), vec![0]);
    }

    #[test]
    fn weighted_degree_beats_raw_count() {
        // Node 0 has two weak edges (each normalized to small weight via
        // heavy competition); node 1 has one strong edge it fully owns.
        let g = graph_from_edges(
            5,
            &[
                (0, 2, 1.0),
                (3, 2, 9.0), // node 0's edge into 2 normalizes to 0.1
                (0, 4, 1.0),
                (3, 4, 9.0), // node 0's edge into 4 normalizes to 0.1
                (1, 3, 1.0), // node 1 fully owns node 3: weight 1.0
            ],
        )
        .unwrap();
        // weighted out-degree: node 0: 0.2, node 1: 1.0, node 3: 1.8.
        assert_eq!(degree_centrality_seeds(&g, 2), vec![3, 1]);
    }

    #[test]
    fn returns_k_nodes() {
        let g = graph_from_edges(4, &generators::cycle(4)).unwrap();
        assert_eq!(degree_centrality_seeds(&g, 3).len(), 3);
    }
}
