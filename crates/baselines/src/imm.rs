//! IMM — Influence Maximization via Martingales (Tang, Shi, Xiao 2015),
//! the seed-selection engine behind the paper's IC and LT baselines.

use crate::cascade::CascadeModel;
use crate::rrset::generate_rr_set;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use vom_graph::{Node, SocialGraph};
use vom_sketch::theta::ln_choose;
use vom_walks::mix_seed;

/// IMM parameters (paper setting: `ε = 0.1`, `l = 1`).
#[derive(Debug, Clone)]
pub struct ImmConfig {
    /// Approximation slack ε of the `(1 − 1/e − ε)` guarantee.
    pub epsilon: f64,
    /// Confidence exponent `l` (failure probability `n^{-l}`).
    pub l: f64,
    /// Cap on the number of RR sets (memory guard on huge inputs).
    pub max_rr_sets: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ImmConfig {
    fn default() -> Self {
        ImmConfig {
            epsilon: 0.1,
            l: 1.0,
            max_rr_sets: 2_000_000,
            seed: 0x1111_2222,
        }
    }
}

/// Greedy maximum coverage over RR sets: returns the `k` chosen nodes and
/// the number of covered sets. Linear in the total RR-set size via
/// decremental degree counting.
fn max_coverage(rr_sets: &[Vec<Node>], n: usize, k: usize) -> (Vec<Node>, usize) {
    let mut occ: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (i, rr) in rr_sets.iter().enumerate() {
        for &v in rr {
            occ[v as usize].push(i as u32);
        }
    }
    let mut degree: Vec<i64> = occ.iter().map(|o| o.len() as i64).collect();
    let mut covered = vec![false; rr_sets.len()];
    let mut covered_count = 0usize;
    let mut chosen = Vec::with_capacity(k);
    let mut is_chosen = vec![false; n];
    for _ in 0..k.min(n) {
        let mut best: Option<(Node, i64)> = None;
        for v in 0..n {
            if is_chosen[v] {
                continue;
            }
            match best {
                Some((_, bd)) if degree[v] <= bd => {}
                _ => best = Some((v as Node, degree[v])),
            }
        }
        let Some((v, _)) = best else { break };
        is_chosen[v as usize] = true;
        chosen.push(v);
        for &rr in &occ[v as usize] {
            if !covered[rr as usize] {
                covered[rr as usize] = true;
                covered_count += 1;
                for &u in &rr_sets[rr as usize] {
                    degree[u as usize] -= 1;
                }
            }
        }
    }
    (chosen, covered_count)
}

/// Full IMM: the martingale sampling phase estimates a lower bound on
/// `OPT` by exponentially decreasing guesses, the node-selection phase
/// runs greedy max coverage on the final RR-set collection. Returns the
/// top-`k` seeds with a `(1 − 1/e − ε)` spread guarantee w.p. `1 − n^{-l}`
/// (subject to the `max_rr_sets` cap).
pub fn imm_seeds(g: &SocialGraph, model: CascadeModel, k: usize, cfg: &ImmConfig) -> Vec<Node> {
    let n = g.num_nodes();
    if n == 0 || k == 0 {
        return Vec::new();
    }
    let k = k.min(n);
    let n_f = n as f64;
    let eps = cfg.epsilon;
    let eps_prime = std::f64::consts::SQRT_2 * eps;
    let log2n = n_f.log2().max(1.0);
    let lambda_prime =
        (2.0 + 2.0 * eps_prime / 3.0) * (ln_choose(n, k) + cfg.l * n_f.ln() + log2n.ln()) * n_f
            / (eps_prime * eps_prime);

    let mut rr_sets: Vec<Vec<Node>> = Vec::new();
    let mut stream = 0u64;
    let rng_for = |stream: u64| SmallRng::seed_from_u64(mix_seed(cfg.seed, stream));
    let ensure = |rr_sets: &mut Vec<Vec<Node>>, stream: &mut u64, count: usize| {
        let count = count.min(cfg.max_rr_sets);
        while rr_sets.len() < count {
            let mut rng = rng_for(*stream);
            *stream += 1;
            rr_sets.push(generate_rr_set(g, model, &mut rng));
        }
    };

    // Sampling phase: estimate LB <= OPT.
    let mut lb = 1.0f64;
    let max_i = (log2n.ceil() as usize).max(1);
    for i in 1..max_i {
        let x = n_f / 2f64.powi(i as i32);
        let theta_i = (lambda_prime / x).ceil() as usize;
        ensure(&mut rr_sets, &mut stream, theta_i);
        let theta_now = rr_sets.len();
        let (_, cov) = max_coverage(&rr_sets, n, k);
        let est = n_f * cov as f64 / theta_now as f64;
        if est >= (1.0 + eps_prime) * x {
            lb = est / (1.0 + eps_prime);
            break;
        }
        if theta_now >= cfg.max_rr_sets {
            lb = est.max(k as f64);
            break;
        }
    }
    lb = lb.max(k as f64); // k seeds always activate themselves

    // Node-selection phase.
    let alpha = (cfg.l * n_f.ln() + 2f64.ln()).sqrt();
    let one_minus_inv_e = 1.0 - std::f64::consts::E.powi(-1);
    let beta = (one_minus_inv_e * (ln_choose(n, k) + cfg.l * n_f.ln() + 2f64.ln())).sqrt();
    let lambda_star = 2.0 * n_f * (one_minus_inv_e * alpha + beta).powi(2) / (eps * eps);
    let theta = ((lambda_star / lb).ceil() as usize).clamp(1, cfg.max_rr_sets);
    ensure(&mut rr_sets, &mut stream, theta);
    let (seeds, _) = max_coverage(&rr_sets, n, k);
    seeds
}

#[cfg(test)]
mod tests {
    use super::*;
    use vom_graph::builder::graph_from_edges;
    use vom_graph::generators;

    #[test]
    fn max_coverage_greedy_is_exact_on_hand_instance() {
        let rr: Vec<Vec<Node>> = vec![vec![0, 1], vec![1], vec![1, 2], vec![3], vec![3, 4]];
        let (seeds, cov) = max_coverage(&rr, 5, 2);
        assert_eq!(seeds, vec![1, 3]);
        assert_eq!(cov, 5);
    }

    #[test]
    fn max_coverage_handles_more_budget_than_nodes() {
        let rr: Vec<Vec<Node>> = vec![vec![0]];
        let (seeds, cov) = max_coverage(&rr, 2, 5);
        assert_eq!(seeds.len(), 2);
        assert_eq!(cov, 1);
    }

    #[test]
    fn imm_prefers_the_star_hub() {
        let g = graph_from_edges(60, &generators::star(60)).unwrap();
        for model in [
            CascadeModel::IndependentCascade,
            CascadeModel::LinearThreshold,
        ] {
            let cfg = ImmConfig {
                max_rr_sets: 50_000,
                ..ImmConfig::default()
            };
            let seeds = imm_seeds(&g, model, 1, &cfg);
            assert_eq!(seeds, vec![0], "{model:?}");
        }
    }

    #[test]
    fn imm_returns_k_distinct_seeds() {
        let edges =
            generators::preferential_attachment(200, 3, &mut rand::rngs::StdRng::seed_from_u64(4));
        let g = graph_from_edges(200, &edges).unwrap();
        let cfg = ImmConfig {
            max_rr_sets: 20_000,
            ..ImmConfig::default()
        };
        let seeds = imm_seeds(&g, CascadeModel::IndependentCascade, 10, &cfg);
        assert_eq!(seeds.len(), 10);
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10, "seeds must be distinct");
    }

    #[test]
    fn imm_is_deterministic_given_seed() {
        let g = graph_from_edges(50, &generators::cycle(50)).unwrap();
        let cfg = ImmConfig {
            max_rr_sets: 5_000,
            ..ImmConfig::default()
        };
        let a = imm_seeds(&g, CascadeModel::LinearThreshold, 3, &cfg);
        let b = imm_seeds(&g, CascadeModel::LinearThreshold, 3, &cfg);
        assert_eq!(a, b);
    }
}
