#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # vom-baselines
//!
//! Every baseline the paper compares against (§VIII-A "Methods
//! Compared"):
//!
//! * **IC / LT** ([`cascade`]) — the classic influence-diffusion models,
//!   with Monte-Carlo expected-spread estimation (also the metric of the
//!   Figure 11 experiment);
//! * **IMM** ([`imm`]) — Tang et al.'s near-linear-time influence
//!   maximization via reverse-reachable sets ([`rrset`]), used to select
//!   seeds under IC and LT;
//! * **GED-T** ([`gedt`]) — the greedy opinion-maximization algorithm of
//!   Gionis et al., adapted to a finite time horizon (equivalent to DM's
//!   cumulative greedy, which the paper confirms);
//! * **PR / RWR / DC** ([`pagerank`], [`rwr`], [`degree`]) — centrality
//!   heuristics.
//!
//! All baselines only choose seed sets; they are evaluated afterwards in
//! the same multi-campaign FJ setting and voting scores as our methods.
//!
//! # Example
//!
//! ```
//! use vom_baselines::{degree_centrality_seeds, pagerank_seeds};
//! use vom_graph::builder::graph_from_edges;
//! use vom_graph::generators;
//!
//! // DC ranks by outgoing influence: the out-star hub wins.
//! let out_star = graph_from_edges(6, &generators::star(6))?;
//! assert_eq!(degree_centrality_seeds(&out_star, 1), vec![0]);
//!
//! // PageRank mass flows along edges: with every leaf pointing at the
//! // center, the center collects it.
//! let edges: Vec<(u32, u32, f64)> = (1..6).map(|v| (v, 0, 1.0)).collect();
//! let in_star = graph_from_edges(6, &edges)?;
//! assert_eq!(pagerank_seeds(&in_star, 1), vec![0]);
//! # Ok::<(), vom_graph::GraphError>(())
//! ```

pub mod cascade;
pub mod degree;
pub mod gedt;
pub mod imm;
pub mod pagerank;
pub mod rrset;
pub mod rwr;
pub mod selectors;

pub use cascade::{expected_spread, CascadeModel};
pub use degree::degree_centrality_seeds;
pub use gedt::gedt_seeds;
pub use imm::{imm_seeds, ImmConfig};
pub use pagerank::pagerank_seeds;
pub use rwr::rwr_seeds;
pub use selectors::{AnyEngine, BaselineEngine};

/// Selects the `k` nodes with the largest scores (ties toward smaller
/// ids), used by all centrality-style baselines.
pub(crate) fn top_k_by_score(scores: &[f64], k: usize) -> Vec<vom_graph::Node> {
    let mut idx: Vec<vom_graph::Node> = (0..scores.len() as vom_graph::Node).collect();
    idx.sort_by(|&a, &b| {
        // `total_cmp` keeps the order total (a NaN score sorts
        // deterministically instead of panicking); identical to
        // `partial_cmp` on every finite trajectory.
        scores[b as usize]
            .total_cmp(&scores[a as usize])
            .then_with(|| a.cmp(&b))
    });
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn top_k_sorts_desc_and_breaks_ties_by_id() {
        let scores = [0.5, 0.9, 0.9, 0.1];
        assert_eq!(top_k_by_score(&scores, 3), vec![1, 2, 0]);
        assert_eq!(top_k_by_score(&scores, 0), Vec::<u32>::new());
    }
}
