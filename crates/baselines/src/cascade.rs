//! Independent Cascade and Linear Threshold diffusion, with Monte-Carlo
//! expected-spread estimation (Kempe et al.).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use vom_graph::{Node, SocialGraph};
use vom_walks::mix_seed;

/// The classic one-shot activation models used by the IC/LT baselines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CascadeModel {
    /// Each newly activated `u` gets one chance to activate each
    /// out-neighbor `v`, succeeding with probability `w_uv`.
    IndependentCascade,
    /// Each node draws a threshold `θ_v ~ U[0,1]`; `v` activates once the
    /// weight of its active in-neighbors reaches `θ_v` (in-weights sum to
    /// 1, matching the LT requirement).
    LinearThreshold,
}

/// One cascade simulation; returns the number of activated nodes.
fn simulate(g: &SocialGraph, model: CascadeModel, seeds: &[Node], rng: &mut SmallRng) -> usize {
    let n = g.num_nodes();
    let mut active = vec![false; n];
    let mut frontier: Vec<Node> = Vec::new();
    let mut activated = 0usize;
    for &s in seeds {
        if !active[s as usize] {
            active[s as usize] = true;
            activated += 1;
            frontier.push(s);
        }
    }
    match model {
        CascadeModel::IndependentCascade => {
            while let Some(u) = frontier.pop() {
                for (v, w) in g.out_entries(u) {
                    if !active[v as usize] && rng.gen::<f64>() < w {
                        active[v as usize] = true;
                        activated += 1;
                        frontier.push(v);
                    }
                }
            }
        }
        CascadeModel::LinearThreshold => {
            let thresholds: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
            let mut incoming = vec![0.0f64; n];
            while let Some(u) = frontier.pop() {
                for (v, w) in g.out_entries(u) {
                    if active[v as usize] {
                        continue;
                    }
                    incoming[v as usize] += w;
                    if incoming[v as usize] >= thresholds[v as usize] {
                        active[v as usize] = true;
                        activated += 1;
                        frontier.push(v);
                    }
                }
            }
        }
    }
    activated
}

/// Monte-Carlo expected influence spread of `seeds` under `model`
/// (Figure 11's metric), averaged over `simulations` runs. Deterministic
/// for a given `seed` at any `VOM_THREADS` setting: simulations run in
/// parallel with independent RNG streams `mix(seed, i)` and the
/// activation counts sum in run order.
pub fn expected_spread(
    g: &SocialGraph,
    model: CascadeModel,
    seeds: &[Node],
    simulations: usize,
    seed: u64,
) -> f64 {
    assert!(simulations > 0, "need at least one simulation");
    let total: usize = (0..simulations as u64)
        .into_par_iter()
        .map(|i| {
            let mut rng = SmallRng::seed_from_u64(mix_seed(seed, i));
            simulate(g, model, seeds, &mut rng)
        })
        .sum();
    total as f64 / simulations as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use vom_graph::builder::graph_from_edges;
    use vom_graph::generators;

    #[test]
    fn spread_includes_seeds_and_is_monotone() {
        let g = graph_from_edges(4, &generators::path(4)).unwrap();
        for model in [
            CascadeModel::IndependentCascade,
            CascadeModel::LinearThreshold,
        ] {
            let one = expected_spread(&g, model, &[0], 200, 7);
            let two = expected_spread(&g, model, &[0, 2], 200, 7);
            assert!(one >= 1.0, "{model:?}: seeds count themselves");
            assert!(two >= one, "{model:?}: spread is monotone in seeds");
            assert!(two <= 4.0);
        }
    }

    #[test]
    fn deterministic_edges_cascade_fully_under_ic() {
        // Path with weight-1 edges: IC activates everything downstream.
        let g = graph_from_edges(3, &generators::path(3)).unwrap();
        let s = expected_spread(&g, CascadeModel::IndependentCascade, &[0], 50, 3);
        assert_eq!(s, 3.0);
    }

    #[test]
    fn lt_with_full_weight_always_activates() {
        // Single in-neighbor with weight 1 >= any threshold in [0,1).
        let g = graph_from_edges(2, &[(0, 1, 1.0)]).unwrap();
        let s = expected_spread(&g, CascadeModel::LinearThreshold, &[0], 100, 5);
        assert_eq!(s, 2.0);
    }

    #[test]
    fn ic_matches_analytic_probability_on_split_edge() {
        // Edge probabilities 0.75 / 0.25 into node 2 from nodes 0 / 1:
        // seeding {0} activates 2 with p = 0.75: E[spread] = 1.75.
        let g = graph_from_edges(3, &[(0, 2, 3.0), (1, 2, 1.0)]).unwrap();
        let s = expected_spread(&g, CascadeModel::IndependentCascade, &[0], 40_000, 11);
        assert!((s - 1.75).abs() < 0.02, "spread {s}");
    }

    #[test]
    fn spread_is_deterministic_given_seed() {
        let g = graph_from_edges(5, &generators::star(5)).unwrap();
        let a = expected_spread(&g, CascadeModel::IndependentCascade, &[0], 500, 13);
        let b = expected_spread(&g, CascadeModel::IndependentCascade, &[0], 500, 13);
        assert_eq!(a, b);
    }
}
