//! The §VIII baselines behind the [`SeedSelector`] trait — the same
//! build-once/query-many lifecycle as the core DM/RW/RS engines, so one
//! harness loop drives all nine registered methods.
//!
//! Preparation computes each baseline's ranking once at the prepared
//! budget; queries take prefixes. Every ranking here is produced by a
//! deterministic greedy or a full sort, so the prefix for `k` seeds
//! equals what a fresh run at budget `k` would pick (for IMM the RR-set
//! count is sized for the *prepared* budget, which only makes smaller
//! queries better-estimated).

use crate::cascade::CascadeModel;
use crate::degree::degree_centrality_seeds;
use crate::gedt::gedt_seeds;
use crate::imm::{imm_seeds, ImmConfig};
use crate::pagerank::pagerank_seeds;
use crate::rwr::rwr_seeds;
use std::time::Instant;
use vom_core::engine::{Engine, IndexBackend, PreparedIndex, SeedSelector, SessionScratch};
use vom_core::greedy::Competitors;
use vom_core::registry::MethodId;
use vom_core::{Problem, ProblemSpec, Result};
use vom_graph::Node;

/// One of the six compared baselines (§VIII-A), ready to prepare.
#[derive(Debug, Clone)]
pub enum BaselineEngine {
    /// IMM under the Independent Cascade model.
    Ic(ImmConfig),
    /// IMM under the Linear Threshold model.
    Lt(ImmConfig),
    /// Gionis et al. greedy at a finite horizon.
    Gedt,
    /// PageRank centrality.
    PageRank,
    /// Random walk with restart.
    Rwr,
    /// Degree centrality.
    Degree,
}

impl BaselineEngine {
    /// The baseline for a registry id, with default configs; `None` for
    /// the core methods (DM/RW/RS) — use [`AnyEngine::with_defaults`]
    /// to cover all nine.
    pub fn with_defaults(id: MethodId) -> Option<BaselineEngine> {
        match id {
            MethodId::Ic => Some(BaselineEngine::Ic(ImmConfig::default())),
            MethodId::Lt => Some(BaselineEngine::Lt(ImmConfig::default())),
            MethodId::Gedt => Some(BaselineEngine::Gedt),
            MethodId::Pr => Some(BaselineEngine::PageRank),
            MethodId::Rwr => Some(BaselineEngine::Rwr),
            MethodId::Dc => Some(BaselineEngine::Degree),
            MethodId::Dm | MethodId::Rw | MethodId::Rs => None,
        }
    }

    /// The registry identity of this baseline.
    pub fn id(&self) -> MethodId {
        match self {
            BaselineEngine::Ic(_) => MethodId::Ic,
            BaselineEngine::Lt(_) => MethodId::Lt,
            BaselineEngine::Gedt => MethodId::Gedt,
            BaselineEngine::PageRank => MethodId::Pr,
            BaselineEngine::Rwr => MethodId::Rwr,
            BaselineEngine::Degree => MethodId::Dc,
        }
    }

    /// Display name from the registry.
    pub fn name(&self) -> &'static str {
        self.id().name()
    }
}

impl SeedSelector for BaselineEngine {
    fn id(&self) -> MethodId {
        BaselineEngine::id(self)
    }

    fn prepare_spec(&self, spec: ProblemSpec) -> Result<PreparedIndex> {
        // audit:allow(d-wall-clock, "phase timer: elapsed feeds reported timings, never selection order")
        let start = Instant::now();
        let order = {
            let problem = spec.problem();
            let g = problem.instance.graph_of(problem.target);
            match self {
                BaselineEngine::Ic(cfg) => {
                    imm_seeds(g, CascadeModel::IndependentCascade, problem.k, cfg)
                }
                BaselineEngine::Lt(cfg) => {
                    imm_seeds(g, CascadeModel::LinearThreshold, problem.k, cfg)
                }
                BaselineEngine::Gedt => gedt_seeds(&problem),
                BaselineEngine::PageRank => pagerank_seeds(g, problem.k),
                BaselineEngine::Rwr => rwr_seeds(g, problem.k),
                BaselineEngine::Degree => degree_centrality_seeds(g, problem.k),
            }
        };
        Ok(PreparedIndex::new(
            spec,
            self.id(),
            Box::new(RankedListIndex { order }),
            start.elapsed(),
        ))
    }
}

/// Prepared state of every baseline: the immutable selection order
/// computed at the prepared budget; a query takes the first `k`. The
/// ranking is prefix-consistent (deterministic greedy or full sort), so
/// concurrent sessions need no per-query state at all.
struct RankedListIndex {
    order: Vec<Node>,
}

impl IndexBackend for RankedListIndex {
    fn heap_bytes(&self) -> usize {
        0
    }

    fn greedy(
        &self,
        problem: &Problem<'_>,
        _comp: Option<Competitors<'_>>,
        _scratch: &mut SessionScratch,
    ) -> Result<Vec<Node>> {
        Ok(self.order.iter().take(problem.k).copied().collect())
    }

    fn needs_exact_competitors(&self) -> bool {
        false
    }
}

/// Any of the nine registered methods, behind one [`SeedSelector`] type —
/// the registry's factory output.
#[derive(Debug, Clone)]
pub enum AnyEngine {
    /// One of the paper's proposed engines (DM/RW/RS).
    Core(Engine),
    /// One of the six baselines.
    Baseline(BaselineEngine),
}

impl AnyEngine {
    /// The engine for a registry id with default configs.
    pub fn with_defaults(id: MethodId) -> AnyEngine {
        match id {
            MethodId::Dm => AnyEngine::Core(Engine::Dm),
            MethodId::Rw => AnyEngine::Core(Engine::rw_default()),
            MethodId::Rs => AnyEngine::Core(Engine::rs_default()),
            baseline => AnyEngine::Baseline(
                BaselineEngine::with_defaults(baseline).expect("non-core id is a baseline"),
            ),
        }
    }

    /// Display name from the registry.
    pub fn name(&self) -> &'static str {
        self.id().name()
    }
}

impl SeedSelector for AnyEngine {
    fn id(&self) -> MethodId {
        match self {
            AnyEngine::Core(e) => e.id(),
            AnyEngine::Baseline(b) => b.id(),
        }
    }

    fn prepare_spec(&self, spec: ProblemSpec) -> Result<PreparedIndex> {
        match self {
            AnyEngine::Core(e) => e.prepare_spec(spec),
            AnyEngine::Baseline(b) => b.prepare_spec(spec),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vom_diffusion::{Instance, OpinionMatrix};
    use vom_graph::builder::graph_from_edges;
    use vom_voting::ScoringFunction;

    fn instance() -> Instance {
        let g = Arc::new(graph_from_edges(4, &[(0, 2, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap());
        let b = OpinionMatrix::from_rows(vec![
            vec![0.40, 0.80, 0.60, 0.90],
            vec![0.35, 0.75, 1.00, 0.80],
        ])
        .unwrap();
        Instance::shared(g, b, vec![0.0, 0.0, 0.5, 0.5]).unwrap()
    }

    #[test]
    fn every_registered_method_prepares_and_selects() {
        let inst = instance();
        let p = Problem::new(&inst, 0, 2, 1, ScoringFunction::Cumulative).unwrap();
        for id in MethodId::all() {
            let engine = AnyEngine::with_defaults(id);
            assert_eq!(engine.id(), id);
            let mut prepared = engine.prepare(&p).unwrap();
            let res = prepared.select_k(2).unwrap();
            assert_eq!(res.seeds.len(), 2, "{}", id.name());
            assert!(
                res.exact_score >= 2.55,
                "{} cannot lose to the empty set",
                id.name()
            );
        }
    }

    #[test]
    fn baseline_prefixes_match_fresh_runs() {
        // The prepared ranking at budget k_max answers any smaller k with
        // exactly what a fresh budget-k run would pick (sort/greedy
        // rankings are nested).
        let inst = instance();
        let p3 = Problem::new(&inst, 0, 3, 1, ScoringFunction::Cumulative).unwrap();
        for id in [MethodId::Gedt, MethodId::Pr, MethodId::Rwr, MethodId::Dc] {
            let engine = AnyEngine::with_defaults(id);
            let mut prepared = engine.prepare(&p3).unwrap();
            for k in 1..=3usize {
                let via_prefix = prepared.select_k(k).unwrap().seeds;
                let pk = Problem::new(&inst, 0, k, 1, ScoringFunction::Cumulative).unwrap();
                let fresh = engine.prepare(&pk).unwrap().select_k(k).unwrap().seeds;
                assert_eq!(via_prefix, fresh, "{} k={k}", id.name());
            }
        }
    }

    #[test]
    fn baselines_skip_sandwich_and_competitor_matrices() {
        let inst = instance();
        let p = Problem::new(&inst, 0, 1, 1, ScoringFunction::Plurality).unwrap();
        let mut prepared = AnyEngine::with_defaults(MethodId::Dc).prepare(&p).unwrap();
        let res = prepared.select_k(1).unwrap();
        assert!(res.sandwich.is_none(), "baselines are evaluated as-is");
        assert_eq!(res.estimator_heap_bytes, 0);
    }
}
