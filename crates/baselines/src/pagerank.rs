//! PageRank centrality baseline (PR).

use crate::top_k_by_score;
use vom_graph::{Node, SocialGraph};

/// Power-iteration PageRank over the directed graph. The surfer follows
/// out-edges proportionally to their influence weights (renormalized per
/// source, since the stored weights are column- not row-stochastic);
/// dangling mass and the `1 − damping` restart are spread uniformly.
pub fn pagerank_scores(g: &SocialGraph, damping: f64, iterations: usize) -> Vec<f64> {
    let n = g.num_nodes();
    assert!(n > 0);
    assert!((0.0..1.0).contains(&damping), "damping must be in [0, 1)");
    // Per-source total outgoing weight for row normalization.
    let out_total: Vec<f64> = (0..n as Node)
        .map(|u| g.out_entries(u).map(|(_, w)| w).sum())
        .collect();
    let mut rank = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..iterations {
        let mut dangling = 0.0f64;
        next.iter_mut().for_each(|x| *x = 0.0);
        for u in 0..n as Node {
            let r = rank[u as usize];
            let total = out_total[u as usize];
            if total <= 0.0 {
                dangling += r;
                continue;
            }
            for (v, w) in g.out_entries(u) {
                next[v as usize] += r * w / total;
            }
        }
        let uniform = (1.0 - damping) / n as f64 + damping * dangling / n as f64;
        for x in next.iter_mut() {
            *x = damping * *x + uniform;
        }
        std::mem::swap(&mut rank, &mut next);
    }
    rank
}

/// The PR baseline: top-`k` nodes by PageRank score (damping 0.85,
/// 50 iterations — ample for the graph sizes in play).
pub fn pagerank_seeds(g: &SocialGraph, k: usize) -> Vec<Node> {
    top_k_by_score(&pagerank_scores(g, 0.85, 50), k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vom_graph::builder::graph_from_edges;
    use vom_graph::generators;

    #[test]
    fn scores_sum_to_one() {
        let g = graph_from_edges(6, &generators::cycle(6)).unwrap();
        let scores = pagerank_scores(&g, 0.85, 30);
        let sum: f64 = scores.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
    }

    #[test]
    fn symmetric_cycle_is_uniform() {
        let g = graph_from_edges(5, &generators::cycle(5)).unwrap();
        let scores = pagerank_scores(&g, 0.85, 60);
        for s in &scores {
            assert!((s - 0.2).abs() < 1e-9);
        }
    }

    #[test]
    fn star_leaves_outrank_nothing_hub_absorbs() {
        // Star hub points at leaves: leaves receive rank from the hub.
        let g = graph_from_edges(5, &generators::star(5)).unwrap();
        let scores = pagerank_scores(&g, 0.85, 60);
        for leaf in 1..5 {
            assert!(
                scores[leaf] > scores[0],
                "leaf {leaf} should outrank the hub"
            );
        }
        let seeds = pagerank_seeds(&g, 2);
        assert!(!seeds.contains(&0));
    }

    #[test]
    fn dangling_mass_is_redistributed() {
        // 0 -> 1, node 1 dangling: ranks must still sum to 1.
        let g = graph_from_edges(3, &[(0, 1, 1.0)]).unwrap();
        let scores = pagerank_scores(&g, 0.85, 60);
        let sum: f64 = scores.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(scores[1] > scores[0]);
    }
}
