#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]
//! # vom-persist
//!
//! Versioned, digest-validated, zero-copy on-disk snapshot format for
//! prepared-index artifacts (DESIGN.md §3e).
//!
//! A snapshot file is:
//!
//! ```text
//! header (7 × u64, little-endian):
//!     magic            "VOMPIDX1" as a LE u64
//!     format version   bumped on any layout change
//!     payload digest   FNV-1a 64 over every byte after the header
//!     graph digest     caller-defined (the instance fingerprint)
//!     spec digest      caller-defined (the problem-spec fingerprint)
//!     method           caller-defined method identity
//!     n_sections       number of section-table entries
//! section table (n_sections × 4 × u64): kind, id, file offset, byte length
//! payload: 8-byte-aligned flat sections, zero-padded between sections
//! ```
//!
//! Sections hold plain element arrays ([`Pod`] types) written verbatim in
//! little-endian order — saving an index serializes its existing flat
//! buffers with no per-element transformation, and loading on a
//! little-endian 64-bit target can borrow the file region directly
//! ([`FlatBuf::Static`]) instead of copying. The whole file is read with
//! one contiguous `read_exact` into an 8-byte-aligned buffer
//! ([`AlignedBuf`]); under [`LoadMode::MapStatic`] that buffer is leaked
//! (the `std`-only stand-in for an `mmap` region — the borrow seam is the
//! same, so a real mapping can be swapped in behind [`Snapshot`] without
//! touching callers).
//!
//! Every load validates the magic, format version, section bounds and the
//! payload digest before any section is handed out: corruption fails
//! closed with a typed [`PersistError`], never with a panic or garbage
//! data.

use std::fmt;
use std::fs::File;
use std::io::{Read, Write};
use std::ops::Deref;
use std::path::Path;

/// `"VOMPIDX1"` interpreted as a little-endian `u64`.
pub const MAGIC: u64 = u64::from_le_bytes(*b"VOMPIDX1");

/// Current snapshot format version; any change to the header, section
/// table or section encodings bumps this. Version 2 dropped the
/// redundant RS `walk_gain` section (gains are derived from the
/// truncation end values on load).
pub const FORMAT_VERSION: u64 = 2;

/// Header size in bytes (7 little-endian `u64` slots).
pub const HEADER_BYTES: usize = 7 * 8;

/// Section-table entry size in bytes (kind, id, offset, length).
pub const ENTRY_BYTES: usize = 4 * 8;

/// Typed snapshot failure. Every load/save error is one of these; loaders
/// are expected to fall back to a fresh build on any of them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// An I/O operation failed (message carries `std::io::Error` text).
    Io {
        /// The failing operation, e.g. `"open"`.
        op: &'static str,
        /// The OS error description.
        message: String,
    },
    /// The file does not start with [`MAGIC`].
    BadMagic {
        /// The first 8 bytes actually found.
        got: u64,
    },
    /// The file's format version is not [`FORMAT_VERSION`].
    UnsupportedVersion {
        /// Version found in the header.
        got: u64,
        /// Version this build understands.
        want: u64,
    },
    /// The file is shorter than its own header/table claims.
    Truncated {
        /// What was being read.
        what: &'static str,
        /// Bytes required.
        needed: usize,
        /// Bytes available.
        got: usize,
    },
    /// A digest check failed (corruption or a mismatched artifact).
    DigestMismatch {
        /// Which digest: `"payload"`, `"graph"`, or `"spec"`.
        what: &'static str,
        /// Digest computed / expected by the caller.
        want: u64,
        /// Digest found in the file.
        got: u64,
    },
    /// A required section is absent.
    SectionMissing {
        /// Section kind.
        kind: u32,
        /// Section id.
        id: u64,
    },
    /// A section-table entry points outside the file or is misaligned.
    SectionBounds {
        /// Section kind.
        kind: u32,
        /// Section id.
        id: u64,
    },
    /// A section or scalar failed semantic validation on load.
    BadValue {
        /// What was being decoded.
        what: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// The artifact's method has no snapshot support (e.g. baselines).
    UnsupportedMethod {
        /// Method display name.
        method: String,
    },
    /// The snapshot does not describe the problem the caller asked for.
    SpecMismatch {
        /// The mismatching field.
        what: &'static str,
    },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io { op, message } => write!(f, "snapshot {op} failed: {message}"),
            PersistError::BadMagic { got } => {
                write!(f, "not a snapshot file (magic {got:#018x})")
            }
            PersistError::UnsupportedVersion { got, want } => {
                write!(f, "snapshot format version {got} (this build reads {want})")
            }
            PersistError::Truncated { what, needed, got } => {
                write!(
                    f,
                    "snapshot truncated reading {what}: need {needed} bytes, have {got}"
                )
            }
            PersistError::DigestMismatch { what, want, got } => {
                write!(
                    f,
                    "{what} digest mismatch: file has {got:#018x}, expected {want:#018x}"
                )
            }
            PersistError::SectionMissing { kind, id } => {
                write!(f, "snapshot section missing: kind {kind}, id {id}")
            }
            PersistError::SectionBounds { kind, id } => {
                write!(f, "snapshot section out of bounds: kind {kind}, id {id}")
            }
            PersistError::BadValue { what, detail } => {
                write!(f, "invalid snapshot value for {what}: {detail}")
            }
            PersistError::UnsupportedMethod { method } => {
                write!(f, "method {method} has no snapshot support")
            }
            PersistError::SpecMismatch { what } => {
                write!(f, "snapshot describes a different problem: {what} differs")
            }
        }
    }
}

impl std::error::Error for PersistError {}

fn io_err(op: &'static str, e: std::io::Error) -> PersistError {
    PersistError::Io {
        op,
        message: e.to_string(),
    }
}

/// Crate-wide result type.
pub type Result<T> = std::result::Result<T, PersistError>;

// ---------------------------------------------------------------------------
// Digest
// ---------------------------------------------------------------------------

const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a 64 hasher — the same digest family the bench
/// harness uses for selection digests, chosen for bit-stable results with
/// no dependencies.
#[derive(Debug, Clone)]
pub struct Digest {
    state: u64,
}

impl Default for Digest {
    fn default() -> Self {
        Digest { state: FNV_BASIS }
    }
}

impl Digest {
    /// Fresh hasher at the FNV offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs raw bytes.
    pub fn update(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        self
    }

    /// Absorbs a `u64` in little-endian order.
    pub fn update_u64(&mut self, v: u64) -> &mut Self {
        self.update(&v.to_le_bytes())
    }

    /// Absorbs an `f64` by bit pattern (bit-exact, `-0.0 != 0.0`).
    pub fn update_f64(&mut self, v: f64) -> &mut Self {
        self.update_u64(v.to_bits())
    }

    /// The current digest value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// One-shot FNV-1a 64 over a byte slice.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut d = Digest::new();
    d.update(bytes);
    d.finish()
}

// ---------------------------------------------------------------------------
// Pod element types
// ---------------------------------------------------------------------------

/// A plain element type a snapshot section can hold.
///
/// On-disk encoding is little-endian with a fixed per-element width. When
/// the in-memory representation matches the disk representation on this
/// target (`cast_compatible`), whole sections are written with one
/// `memcpy` and loaded zero-copy; otherwise a per-element convert-copy
/// fallback runs (big-endian or 32-bit targets).
///
/// # Safety
///
/// Implementors must be `Copy` types with no padding and no invalid bit
/// patterns, so that casting an aligned byte region to `&[Self]` is sound
/// whenever `cast_compatible()` returns true.
pub unsafe trait Pod: Copy + Send + Sync + 'static {
    /// Bytes per element on disk.
    const WIDTH: usize;
    /// Element name for error messages.
    const NAME: &'static str;
    /// Whether `&[u8] -> &[Self]` casting is sound on this target
    /// (little-endian and matching element width).
    fn cast_compatible() -> bool;
    /// Appends `values` to `out` in the on-disk encoding.
    fn append_le(values: &[Self], out: &mut Vec<u8>);
    /// Decodes a byte region (length already validated as a multiple of
    /// [`Pod::WIDTH`]) into owned elements.
    fn decode_le(bytes: &[u8]) -> Vec<Self>;
}

/// Casts an aligned little-endian byte region to `&[T]`.
///
/// # Safety
///
/// The caller must check `T::cast_compatible()` (in-memory layout equals
/// the on-disk little-endian layout), that `bytes.len()` is a multiple
/// of `T::WIDTH`, and that `bytes.as_ptr()` is aligned to
/// `align_of::<T>()`.
unsafe fn cast_slice<T: Pod>(bytes: &[u8]) -> &[T] {
    // SAFETY: caller upholds alignment, length divisibility and layout
    // compatibility (see this function's `# Safety` contract); every
    // `Pod` type additionally guarantees no padding and no invalid bit
    // patterns, so any byte content is a valid `[T]`.
    unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const T, bytes.len() / T::WIDTH) }
}

macro_rules! pod_numeric {
    ($t:ty, $name:literal) => {
        // SAFETY: instantiated only for fixed-width unsigned integer
        // primitives (u8/u32/u64) — Copy, no padding, every bit pattern
        // valid — so casting aligned bytes to `&[$t]` is sound whenever
        // `cast_compatible()` (little-endian target) holds.
        unsafe impl Pod for $t {
            const WIDTH: usize = std::mem::size_of::<$t>();
            const NAME: &'static str = $name;

            fn cast_compatible() -> bool {
                cfg!(target_endian = "little")
            }

            fn append_le(values: &[Self], out: &mut Vec<u8>) {
                if Self::cast_compatible() {
                    // One memcpy: in-memory layout equals disk layout.
                    // SAFETY: `values` is a live, initialized slice; a
                    // `*const u8` view of it is always aligned, and
                    // `len * WIDTH` equals its exact byte length.
                    out.extend_from_slice(unsafe {
                        std::slice::from_raw_parts(
                            values.as_ptr() as *const u8,
                            values.len() * Self::WIDTH,
                        )
                    });
                } else {
                    for v in values {
                        out.extend_from_slice(&v.to_le_bytes());
                    }
                }
            }

            fn decode_le(bytes: &[u8]) -> Vec<Self> {
                bytes
                    .chunks_exact(Self::WIDTH)
                    .map(|c| Self::from_le_bytes(c.try_into().expect("chunk width")))
                    .collect()
            }
        }
    };
}

pod_numeric!(u8, "u8");
pod_numeric!(u32, "u32");
pod_numeric!(u64, "u64");

// SAFETY: `f64` is a Copy primitive with no padding and no invalid bit
// patterns (every 64-bit pattern is some float, NaNs included), so the
// aligned byte→slice cast is sound on little-endian targets.
unsafe impl Pod for f64 {
    const WIDTH: usize = 8;
    const NAME: &'static str = "f64";

    fn cast_compatible() -> bool {
        cfg!(target_endian = "little")
    }

    fn append_le(values: &[Self], out: &mut Vec<u8>) {
        if Self::cast_compatible() {
            // SAFETY: live initialized slice viewed as bytes; `u8` has
            // alignment 1 and `len * 8` is the slice's exact byte length.
            out.extend_from_slice(unsafe {
                std::slice::from_raw_parts(values.as_ptr() as *const u8, values.len() * 8)
            });
        } else {
            for v in values {
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
    }

    fn decode_le(bytes: &[u8]) -> Vec<Self> {
        bytes
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().expect("chunk width"))))
            .collect()
    }
}

// `usize` is stored on disk as `u64`; zero-copy only on 64-bit LE targets.
// SAFETY: `usize` is a Copy integer primitive (no padding, all bit
// patterns valid); `cast_compatible()` additionally requires
// `size_of::<usize>() == 8` so the in-memory width matches the on-disk
// `u64` width before any cast happens.
unsafe impl Pod for usize {
    const WIDTH: usize = 8;
    const NAME: &'static str = "usize";

    fn cast_compatible() -> bool {
        cfg!(target_endian = "little") && std::mem::size_of::<usize>() == 8
    }

    fn append_le(values: &[Self], out: &mut Vec<u8>) {
        if Self::cast_compatible() {
            // SAFETY: live initialized slice viewed as bytes; `u8` has
            // alignment 1 and `len * 8` is the slice's exact byte length
            // (WIDTH == size_of::<usize>() guaranteed by cast_compatible).
            out.extend_from_slice(unsafe {
                std::slice::from_raw_parts(values.as_ptr() as *const u8, values.len() * 8)
            });
        } else {
            for v in values {
                out.extend_from_slice(&(*v as u64).to_le_bytes());
            }
        }
    }

    fn decode_le(bytes: &[u8]) -> Vec<Self> {
        bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("chunk width")) as usize)
            .collect()
    }
}

// ---------------------------------------------------------------------------
// FlatBuf
// ---------------------------------------------------------------------------

/// An immutable flat buffer that is either owned or borrowed from a
/// leaked/mapped snapshot region.
///
/// This is the seam that makes loaded and built indexes interchangeable:
/// artifact types store their large immutable arrays as `FlatBuf<T>`, a
/// fresh build produces [`FlatBuf::Owned`], and a zero-copy load produces
/// [`FlatBuf::Static`] slices pointing into the snapshot buffer. Both
/// variants deref to `&[T]` and are `Send + Sync`.
#[derive(Debug)]
pub enum FlatBuf<T: 'static> {
    /// Heap-owned storage (the result of a fresh build or a copying load).
    Owned(Vec<T>),
    /// A borrow of a `'static` snapshot region (zero-copy load).
    Static(&'static [T]),
}

impl<T> FlatBuf<T> {
    /// The elements as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        match self {
            FlatBuf::Owned(v) => v,
            FlatBuf::Static(s) => s,
        }
    }

    /// Whether this buffer borrows a snapshot region (no owned heap).
    pub fn is_static(&self) -> bool {
        matches!(self, FlatBuf::Static(_))
    }

    /// Heap bytes owned by this buffer: the full `Vec` **capacity** for
    /// [`FlatBuf::Owned`] (post-build slack counts — it is resident), and
    /// zero for [`FlatBuf::Static`] (the snapshot region is shared, not
    /// owned). Every artifact `heap_bytes` impl sums these, so the
    /// accounting contract is capacity-exact by construction.
    pub fn heap_bytes(&self) -> usize {
        match self {
            FlatBuf::Owned(v) => v.capacity() * std::mem::size_of::<T>(),
            FlatBuf::Static(_) => 0,
        }
    }
}

impl<T> Deref for FlatBuf<T> {
    type Target = [T];

    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T> From<Vec<T>> for FlatBuf<T> {
    fn from(v: Vec<T>) -> Self {
        FlatBuf::Owned(v)
    }
}

impl<T> Default for FlatBuf<T> {
    fn default() -> Self {
        FlatBuf::Owned(Vec::new())
    }
}

impl<T: Clone> Clone for FlatBuf<T> {
    fn clone(&self) -> Self {
        match self {
            FlatBuf::Owned(v) => FlatBuf::Owned(v.clone()),
            // A static borrow is free to share.
            FlatBuf::Static(s) => FlatBuf::Static(s),
        }
    }
}

impl<T: PartialEq> PartialEq for FlatBuf<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Eq> Eq for FlatBuf<T> {}

// ---------------------------------------------------------------------------
// Aligned buffer
// ---------------------------------------------------------------------------

/// A byte buffer whose base address is 8-byte aligned (backed by
/// `Vec<u64>`), so every 8-aligned section inside a snapshot file can be
/// cast in place.
#[derive(Debug)]
pub struct AlignedBuf {
    words: Vec<u64>,
    len: usize,
}

impl AlignedBuf {
    /// A zeroed buffer of `len` bytes.
    pub fn with_len(len: usize) -> Self {
        AlignedBuf {
            words: vec![0u64; len.div_ceil(8)],
            len,
        }
    }

    /// Copies a plain byte vector into aligned storage.
    pub fn from_vec(bytes: Vec<u8>) -> Self {
        let mut buf = Self::with_len(bytes.len());
        buf.bytes_mut().copy_from_slice(&bytes);
        buf
    }

    /// The buffer contents.
    pub fn bytes(&self) -> &[u8] {
        // SAFETY: `words` owns at least `len.div_ceil(8) * 8 >= len`
        // initialized bytes; a `u8` view needs alignment 1; the borrow
        // of `self` keeps the allocation alive for the slice lifetime.
        unsafe { std::slice::from_raw_parts(self.words.as_ptr() as *const u8, self.len) }
    }

    /// Mutable contents (used by the one-shot file read).
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        // SAFETY: same bounds as `bytes()`; `&mut self` guarantees the
        // view is the only live reference into `words`.
        unsafe { std::slice::from_raw_parts_mut(self.words.as_mut_ptr() as *mut u8, self.len) }
    }

    /// Leaks the buffer, returning a `'static` view of its bytes. This is
    /// the `std`-only stand-in for keeping an `mmap` region alive for the
    /// process lifetime; one leak per [`LoadMode::MapStatic`] load.
    pub fn leak(self) -> &'static [u8] {
        let len = self.len;
        let words: &'static mut [u64] = Vec::leak(self.words);
        // SAFETY: `Vec::leak` just promoted the allocation to 'static,
        // so the pointer stays valid forever; `len <= words.len() * 8`
        // by construction and `u8` views are always aligned.
        unsafe { std::slice::from_raw_parts(words.as_ptr() as *const u8, len) }
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Builds a snapshot: header fields plus an ordered list of sections.
#[derive(Debug)]
pub struct SnapshotWriter {
    method: u64,
    graph_digest: u64,
    spec_digest: u64,
    sections: Vec<(u32, u64, Vec<u8>)>,
}

impl SnapshotWriter {
    /// Starts a snapshot for `method` over the given fingerprints.
    pub fn new(method: u64, graph_digest: u64, spec_digest: u64) -> Self {
        SnapshotWriter {
            method,
            graph_digest,
            spec_digest,
            sections: Vec::new(),
        }
    }

    /// Appends one flat section. `(kind, id)` must be unique per snapshot.
    pub fn section<T: Pod>(&mut self, kind: u32, id: u64, values: &[T]) {
        debug_assert!(
            !self.sections.iter().any(|(k, i, _)| *k == kind && *i == id),
            "duplicate section kind {kind} id {id}"
        );
        let mut bytes = Vec::with_capacity(values.len() * T::WIDTH);
        T::append_le(values, &mut bytes);
        self.sections.push((kind, id, bytes));
    }

    /// Serializes the snapshot to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let table_end = HEADER_BYTES + self.sections.len() * ENTRY_BYTES;
        let mut out = vec![0u8; table_end];
        // Payload: 8-aligned sections, recording absolute file offsets.
        let mut entries = Vec::with_capacity(self.sections.len());
        for (kind, id, bytes) in &self.sections {
            while out.len() % 8 != 0 {
                out.push(0);
            }
            entries.push((*kind, *id, out.len() as u64, bytes.len() as u64));
            out.extend_from_slice(bytes);
        }
        // Section table.
        for (i, (kind, id, offset, len)) in entries.iter().enumerate() {
            let at = HEADER_BYTES + i * ENTRY_BYTES;
            out[at..at + 8].copy_from_slice(&u64::from(*kind).to_le_bytes());
            out[at + 8..at + 16].copy_from_slice(&id.to_le_bytes());
            out[at + 16..at + 24].copy_from_slice(&offset.to_le_bytes());
            out[at + 24..at + 32].copy_from_slice(&len.to_le_bytes());
        }
        // Header; the payload digest covers everything after the header.
        let digest = fnv1a(&out[HEADER_BYTES..]);
        for (i, v) in [
            MAGIC,
            FORMAT_VERSION,
            digest,
            self.graph_digest,
            self.spec_digest,
            self.method,
            self.sections.len() as u64,
        ]
        .into_iter()
        .enumerate()
        {
            out[i * 8..i * 8 + 8].copy_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Writes the snapshot to `path` atomically (temp file + rename).
    pub fn write_to(&self, path: &Path) -> Result<()> {
        let bytes = self.to_bytes();
        let tmp = path.with_extension("vpi.tmp");
        let mut f = File::create(&tmp).map_err(|e| io_err("create", e))?;
        f.write_all(&bytes).map_err(|e| io_err("write", e))?;
        f.sync_all().map_err(|e| io_err("sync", e))?;
        drop(f);
        std::fs::rename(&tmp, path).map_err(|e| io_err("rename", e))
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// How a snapshot's sections are materialized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// Copy every requested section into owned `Vec`s; the file buffer is
    /// freed when the [`Snapshot`] drops.
    Copy,
    /// Keep the file buffer alive for the process lifetime (leaked; the
    /// mmap stand-in) and hand out zero-copy `&'static` section slices
    /// where the target's layout allows it.
    MapStatic,
}

#[derive(Debug, Clone, Copy)]
struct SectionEntry {
    kind: u32,
    id: u64,
    offset: usize,
    len: usize,
}

#[derive(Debug)]
enum SnapshotData {
    Owned(AlignedBuf),
    Leaked(&'static [u8]),
}

impl SnapshotData {
    fn bytes(&self) -> &[u8] {
        match self {
            SnapshotData::Owned(buf) => buf.bytes(),
            SnapshotData::Leaked(s) => s,
        }
    }
}

/// A parsed, digest-validated snapshot file.
#[derive(Debug)]
pub struct Snapshot {
    data: SnapshotData,
    entries: Vec<SectionEntry>,
    method: u64,
    graph_digest: u64,
    spec_digest: u64,
}

impl Snapshot {
    /// Opens and fully validates a snapshot file: one contiguous read
    /// into an aligned buffer, then magic / version / bounds / digest
    /// checks before any section is reachable.
    pub fn open(path: &Path, mode: LoadMode) -> Result<Snapshot> {
        let mut file = File::open(path).map_err(|e| io_err("open", e))?;
        let len = file
            .metadata()
            .map_err(|e| io_err("stat", e))?
            .len()
            .try_into()
            .map_err(|_| PersistError::BadValue {
                what: "file length",
                detail: "exceeds addressable memory".into(),
            })?;
        let mut buf = AlignedBuf::with_len(len);
        file.read_exact(buf.bytes_mut())
            .map_err(|e| io_err("read", e))?;
        Self::from_aligned(buf, mode)
    }

    /// Parses an in-memory image (used by tests and corruption probes).
    pub fn from_bytes(bytes: Vec<u8>, mode: LoadMode) -> Result<Snapshot> {
        Self::from_aligned(AlignedBuf::from_vec(bytes), mode)
    }

    fn from_aligned(buf: AlignedBuf, mode: LoadMode) -> Result<Snapshot> {
        let (entries, method, graph_digest, spec_digest) = Self::validate(buf.bytes())?;
        let data = match mode {
            LoadMode::Copy => SnapshotData::Owned(buf),
            LoadMode::MapStatic => SnapshotData::Leaked(buf.leak()),
        };
        Ok(Snapshot {
            data,
            entries,
            method,
            graph_digest,
            spec_digest,
        })
    }

    fn validate(bytes: &[u8]) -> Result<(Vec<SectionEntry>, u64, u64, u64)> {
        if bytes.len() < HEADER_BYTES {
            return Err(PersistError::Truncated {
                what: "header",
                needed: HEADER_BYTES,
                got: bytes.len(),
            });
        }
        let word = |i: usize| u64::from_le_bytes(bytes[i * 8..i * 8 + 8].try_into().unwrap());
        if word(0) != MAGIC {
            return Err(PersistError::BadMagic { got: word(0) });
        }
        if word(1) != FORMAT_VERSION {
            return Err(PersistError::UnsupportedVersion {
                got: word(1),
                want: FORMAT_VERSION,
            });
        }
        let n_sections = word(6) as usize;
        let table_end = HEADER_BYTES
            .checked_add(n_sections.saturating_mul(ENTRY_BYTES))
            .filter(|&end| end <= bytes.len())
            .ok_or(PersistError::Truncated {
                what: "section table",
                needed: HEADER_BYTES + n_sections * ENTRY_BYTES,
                got: bytes.len(),
            })?;
        // Whole-tail digest before trusting any entry contents.
        let digest = fnv1a(&bytes[HEADER_BYTES..]);
        if digest != word(2) {
            return Err(PersistError::DigestMismatch {
                what: "payload",
                want: digest,
                got: word(2),
            });
        }
        let mut entries = Vec::with_capacity(n_sections);
        for i in 0..n_sections {
            let at = HEADER_BYTES + i * ENTRY_BYTES;
            let cell = |j: usize| {
                u64::from_le_bytes(bytes[at + j * 8..at + j * 8 + 8].try_into().unwrap())
            };
            let (kind, id, offset, len) = (cell(0), cell(1), cell(2) as usize, cell(3) as usize);
            let kind = u32::try_from(kind).map_err(|_| PersistError::BadValue {
                what: "section kind",
                detail: format!("{kind} exceeds u32"),
            })?;
            let in_bounds = offset >= table_end
                && offset % 8 == 0
                && offset
                    .checked_add(len)
                    .is_some_and(|end| end <= bytes.len());
            if !in_bounds {
                return Err(PersistError::SectionBounds { kind, id });
            }
            entries.push(SectionEntry {
                kind,
                id,
                offset,
                len,
            });
        }
        Ok((entries, word(5), word(3), word(4)))
    }

    /// The method identity recorded in the header.
    pub fn method(&self) -> u64 {
        self.method
    }

    /// The graph fingerprint recorded in the header.
    pub fn graph_digest(&self) -> u64 {
        self.graph_digest
    }

    /// The problem-spec fingerprint recorded in the header.
    pub fn spec_digest(&self) -> u64 {
        self.spec_digest
    }

    /// All `(kind, id)` pairs present, in file order.
    pub fn sections(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.entries.iter().map(|e| (e.kind, e.id))
    }

    /// Whether a section is present.
    pub fn has_section(&self, kind: u32, id: u64) -> bool {
        self.entries.iter().any(|e| e.kind == kind && e.id == id)
    }

    /// Loads a section, or `None` if absent. Zero-copy when the snapshot
    /// was opened [`LoadMode::MapStatic`] and the target's in-memory
    /// layout matches the disk layout; an owned convert-copy otherwise.
    pub fn maybe_section<T: Pod>(&self, kind: u32, id: u64) -> Result<Option<FlatBuf<T>>> {
        let Some(entry) = self
            .entries
            .iter()
            .find(|e| e.kind == kind && e.id == id)
            .copied()
        else {
            return Ok(None);
        };
        if entry.len % T::WIDTH != 0 {
            return Err(PersistError::BadValue {
                what: T::NAME,
                detail: format!(
                    "section kind {kind} id {id}: {} bytes is not a whole number of elements",
                    entry.len
                ),
            });
        }
        let region = &self.data.bytes()[entry.offset..entry.offset + entry.len];
        if let SnapshotData::Leaked(all) = &self.data {
            if T::cast_compatible() && region.as_ptr() as usize % std::mem::align_of::<T>() == 0 {
                // Reborrow out of the leaked ('static) image.
                let start = entry.offset;
                let stat: &'static [u8] = &all[start..start + entry.len];
                // SAFETY: `cast_compatible()` and pointer alignment were
                // checked just above, and `entry.len % T::WIDTH == 0` was
                // rejected earlier — exactly the `cast_slice` contract.
                return Ok(Some(FlatBuf::Static(unsafe { cast_slice::<T>(stat) })));
            }
        }
        Ok(Some(FlatBuf::Owned(T::decode_le(region))))
    }

    /// Loads a required section ([`PersistError::SectionMissing`] if absent).
    pub fn section<T: Pod>(&self, kind: u32, id: u64) -> Result<FlatBuf<T>> {
        self.maybe_section(kind, id)?
            .ok_or(PersistError::SectionMissing { kind, id })
    }

    /// Loads a required section as owned scalars (convenience for small
    /// metadata sections).
    pub fn scalars(&self, kind: u32, id: u64) -> Result<Vec<u64>> {
        Ok(self.section::<u64>(kind, id)?.as_slice().to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SnapshotWriter {
        let mut w = SnapshotWriter::new(2, 0xAAAA, 0xBBBB);
        w.section::<u64>(1, 0, &[7, 8, 9]);
        w.section::<u32>(2, 3, &[1, 2, 3, 4, 5]);
        w.section::<f64>(3, 0, &[0.5, -0.0, std::f64::consts::PI]);
        w.section::<u8>(4, 1, &[1, 0, 1]);
        w.section::<usize>(5, 0, &[usize::MAX, 0, 42]);
        w
    }

    fn open(bytes: Vec<u8>, mode: LoadMode) -> Result<Snapshot> {
        Snapshot::from_bytes(bytes, mode)
    }

    #[test]
    fn round_trips_all_pod_types() {
        for mode in [LoadMode::Copy, LoadMode::MapStatic] {
            let snap = open(sample().to_bytes(), mode).unwrap();
            assert_eq!(snap.method(), 2);
            assert_eq!(snap.graph_digest(), 0xAAAA);
            assert_eq!(snap.spec_digest(), 0xBBBB);
            assert_eq!(snap.section::<u64>(1, 0).unwrap().as_slice(), &[7, 8, 9]);
            assert_eq!(
                snap.section::<u32>(2, 3).unwrap().as_slice(),
                &[1, 2, 3, 4, 5]
            );
            let floats = snap.section::<f64>(3, 0).unwrap();
            assert_eq!(floats[0].to_bits(), 0.5f64.to_bits());
            assert_eq!(floats[1].to_bits(), (-0.0f64).to_bits());
            assert_eq!(snap.section::<u8>(4, 1).unwrap().as_slice(), &[1, 0, 1]);
            assert_eq!(
                snap.section::<usize>(5, 0).unwrap().as_slice(),
                &[usize::MAX, 0, 42]
            );
            assert_eq!(snap.sections().count(), 5);
        }
    }

    #[test]
    fn map_static_borrows_sections_zero_copy() {
        let snap = open(sample().to_bytes(), LoadMode::MapStatic).unwrap();
        if <u64 as Pod>::cast_compatible() {
            assert!(snap.section::<u64>(1, 0).unwrap().is_static());
            assert!(snap.section::<f64>(3, 0).unwrap().is_static());
        }
        // Copy mode never borrows.
        let snap = open(sample().to_bytes(), LoadMode::Copy).unwrap();
        assert!(!snap.section::<u64>(1, 0).unwrap().is_static());
    }

    #[test]
    fn sections_are_eight_aligned_on_disk() {
        // The 3-byte u8 section sits between 8-wide ones, forcing the
        // writer to pad; every recorded offset must still be 8-aligned.
        let snap = open(sample().to_bytes(), LoadMode::Copy).unwrap();
        for e in &snap.entries {
            assert_eq!(e.offset % 8, 0, "kind {} misaligned", e.kind);
        }
    }

    #[test]
    fn missing_section_is_typed() {
        let snap = open(sample().to_bytes(), LoadMode::Copy).unwrap();
        assert_eq!(snap.maybe_section::<u64>(99, 0).unwrap(), None);
        assert_eq!(
            snap.section::<u64>(99, 0).unwrap_err(),
            PersistError::SectionMissing { kind: 99, id: 0 }
        );
    }

    #[test]
    fn flipped_byte_fails_closed() {
        let bytes = sample().to_bytes();
        for at in [HEADER_BYTES, HEADER_BYTES + 17, bytes.len() - 1] {
            let mut bad = bytes.clone();
            bad[at] ^= 0x40;
            match open(bad, LoadMode::Copy).unwrap_err() {
                PersistError::DigestMismatch {
                    what: "payload", ..
                } => {}
                other => panic!("expected payload digest mismatch, got {other:?}"),
            }
        }
    }

    #[test]
    fn truncation_fails_closed() {
        let bytes = sample().to_bytes();
        for keep in [0, 8, HEADER_BYTES - 1, HEADER_BYTES + 5, bytes.len() - 1] {
            let err = open(bytes[..keep].to_vec(), LoadMode::Copy).unwrap_err();
            assert!(
                matches!(
                    err,
                    PersistError::Truncated { .. } | PersistError::DigestMismatch { .. }
                ),
                "keep {keep}: got {err:?}"
            );
        }
    }

    #[test]
    fn version_bump_fails_closed() {
        let mut bytes = sample().to_bytes();
        bytes[8..16].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        assert_eq!(
            open(bytes, LoadMode::Copy).unwrap_err(),
            PersistError::UnsupportedVersion {
                got: FORMAT_VERSION + 1,
                want: FORMAT_VERSION
            }
        );
    }

    #[test]
    fn bad_magic_fails_closed() {
        let mut bytes = sample().to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            open(bytes, LoadMode::Copy).unwrap_err(),
            PersistError::BadMagic { .. }
        ));
    }

    #[test]
    fn out_of_bounds_entry_fails_closed() {
        // Hand-craft an entry pointing past the end of the file, with a
        // freshly computed digest so only the bounds check can object.
        let mut bytes = sample().to_bytes();
        let at = HEADER_BYTES + 16; // first entry's offset cell
        bytes[at..at + 8].copy_from_slice(&(1u64 << 40).to_le_bytes());
        let digest = fnv1a(&bytes[HEADER_BYTES..]);
        bytes[16..24].copy_from_slice(&digest.to_le_bytes());
        assert_eq!(
            open(bytes, LoadMode::Copy).unwrap_err(),
            PersistError::SectionBounds { kind: 1, id: 0 }
        );
    }

    #[test]
    fn misaligned_entry_fails_closed_before_any_cast() {
        // Nudge the first entry's offset off 8-alignment (still in
        // bounds) and re-seal the digest so only the alignment check can
        // object. Under `MapStatic` an accepted entry would be cast
        // zero-copy — validation must reject it before any cast runs.
        let mut bytes = sample().to_bytes();
        let at = HEADER_BYTES + 16; // first entry's offset cell
        let offset = u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
        bytes[at..at + 8].copy_from_slice(&(offset + 1).to_le_bytes());
        let digest = fnv1a(&bytes[HEADER_BYTES..]);
        bytes[16..24].copy_from_slice(&digest.to_le_bytes());
        for mode in [LoadMode::Copy, LoadMode::MapStatic] {
            assert_eq!(
                open(bytes.clone(), mode).unwrap_err(),
                PersistError::SectionBounds { kind: 1, id: 0 },
                "misaligned entry must fail closed under {mode:?}"
            );
        }
    }

    #[test]
    fn truncated_static_load_fails_closed() {
        // Same truncation points as the Copy-mode test, but under
        // `MapStatic`: validation runs before the image is leaked, so a
        // short file is a typed error, never a short-lived cast.
        let bytes = sample().to_bytes();
        for keep in [0, 8, HEADER_BYTES - 1, HEADER_BYTES + 5, bytes.len() - 1] {
            let err = open(bytes[..keep].to_vec(), LoadMode::MapStatic).unwrap_err();
            assert!(
                matches!(
                    err,
                    PersistError::Truncated { .. } | PersistError::DigestMismatch { .. }
                ),
                "keep {keep}: got {err:?}"
            );
        }
    }

    #[test]
    fn ragged_static_load_is_an_error_not_a_cast() {
        // A 3-byte u8 section read as u64 under `MapStatic` must be a
        // typed width error; the zero-copy path may not round the length.
        let snap = open(sample().to_bytes(), LoadMode::MapStatic).unwrap();
        assert!(matches!(
            snap.section::<u64>(4, 1).unwrap_err(),
            PersistError::BadValue { .. }
        ));
        // 5 u32s (20 bytes) is not a whole number of f64s either.
        assert!(matches!(
            snap.section::<f64>(2, 3).unwrap_err(),
            PersistError::BadValue { .. }
        ));
    }

    #[test]
    fn ragged_element_width_fails_closed() {
        let snap = open(sample().to_bytes(), LoadMode::Copy).unwrap();
        // The 3-byte u8 section is not a whole number of u64s.
        assert!(matches!(
            snap.section::<u64>(4, 1).unwrap_err(),
            PersistError::BadValue { .. }
        ));
    }

    #[test]
    fn file_round_trip_and_atomic_write() {
        let dir = std::env::temp_dir().join("vom-persist-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.vpi");
        sample().write_to(&path).unwrap();
        let snap = Snapshot::open(&path, LoadMode::Copy).unwrap();
        assert_eq!(snap.section::<u64>(1, 0).unwrap().as_slice(), &[7, 8, 9]);
        assert!(
            !dir.join("sample.vpi.tmp").exists(),
            "temp file left behind"
        );
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(
            Snapshot::open(&path, LoadMode::Copy).unwrap_err(),
            PersistError::Io { op: "open", .. }
        ));
    }

    #[test]
    fn digest_helpers_are_stable() {
        // Pinned FNV-1a vectors: the digest feeds persisted headers, so
        // accidental algorithm drift must fail a test.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        let mut d = Digest::new();
        d.update_u64(7).update_f64(-0.0);
        let mut manual = Digest::new();
        manual.update(&7u64.to_le_bytes());
        manual.update(&(-0.0f64).to_bits().to_le_bytes());
        assert_eq!(d.finish(), manual.finish());
    }

    #[test]
    fn flatbuf_semantics() {
        let owned: FlatBuf<u32> = vec![1, 2, 3].into();
        let leaked: &'static [u32] = Vec::leak(vec![1, 2, 3]);
        let stat = FlatBuf::Static(leaked);
        assert_eq!(owned, stat);
        assert!(!owned.is_static() && stat.is_static());
        assert_eq!(&*owned.clone(), &[1, 2, 3]);
        assert_eq!(FlatBuf::<u32>::default().len(), 0);
    }
}
