//! Deterministic, parallel reverse-walk generation.

use crate::arena::{WalkArena, WalkArenaBuilder};
use crate::mix_seed;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use vom_graph::{Node, SocialGraph};

/// How many walks to generate per start node.
#[derive(Debug, Clone, PartialEq)]
pub enum Lambda {
    /// The same `λ` for every node (e.g. the Theorem 10 bound).
    Uniform(usize),
    /// Per-node counts `λ_v` (e.g. γ-dependent bounds, Theorems 11–12).
    PerNode(Vec<u32>),
}

impl Lambda {
    /// Walks to generate from start node `v`.
    pub fn count(&self, v: Node) -> usize {
        match self {
            Lambda::Uniform(l) => *l,
            Lambda::PerNode(ls) => ls[v as usize] as usize,
        }
    }

    /// Total walks over `n` start nodes (`Σ_v λ_v`).
    pub fn total(&self, n: usize) -> usize {
        match self {
            Lambda::Uniform(l) => l * n,
            Lambda::PerNode(ls) => ls.iter().map(|&l| l as usize).sum(),
        }
    }
}

/// Generates t-step reverse random walks over a candidate's influence
/// graph with termination probabilities given by the stubbornness `d`
/// (§V-A of the paper).
#[derive(Debug, Clone, Copy)]
pub struct WalkGenerator<'a> {
    graph: &'a SocialGraph,
    d: &'a [f64],
    t: usize,
}

impl<'a> WalkGenerator<'a> {
    /// A generator for time horizon `t` with per-node stubbornness `d`
    /// (must have length `n`; validated by the diffusion layer upstream).
    pub fn new(graph: &'a SocialGraph, d: &'a [f64], t: usize) -> Self {
        assert_eq!(
            d.len(),
            graph.num_nodes(),
            "stubbornness length must equal node count"
        );
        WalkGenerator { graph, d, t }
    }

    /// The time horizon walks are generated for.
    pub fn horizon(&self) -> usize {
        self.t
    }

    /// Generates `λ_v` *seedless* walks from every node `v`, grouped by
    /// start node (Algorithm 4 line 1–3). Deterministic for a given
    /// `seed`: node `v`'s walks use an independent RNG stream
    /// `mix(seed, v)`, so the result is identical however rayon schedules
    /// the chunks.
    pub fn generate_per_node(&self, lambda: &Lambda, seed: u64) -> WalkArena {
        self.generate_grouped(lambda, None, seed)
    }

    /// Generates one seedless walk per listed start node (sketch
    /// generation, Algorithm 5 lines 1–3). Walk `j` uses RNG stream
    /// `mix(seed, j)`.
    pub fn generate_for_starts(&self, starts: &[Node], seed: u64) -> WalkArena {
        const CHUNK: usize = 4096;
        let shards: Vec<WalkArenaBuilder> = starts
            .par_chunks(CHUNK)
            .enumerate()
            .map(|(chunk_idx, chunk)| {
                let mut builder = WalkArenaBuilder::with_capacity(chunk.len(), 2);
                for (off, &v) in chunk.iter().enumerate() {
                    let j = chunk_idx * CHUNK + off;
                    let mut rng = SmallRng::seed_from_u64(mix_seed(seed, j as u64));
                    self.walk_from(v, None, &mut rng, &mut builder);
                }
                builder
            })
            .collect();
        let mut all = WalkArenaBuilder::with_capacity(starts.len(), 2);
        for shard in shards {
            all.append(shard);
        }
        all.build(None)
    }

    /// *Direct Generation* (§V-A): walks that already know the seed set —
    /// seeds are fully stubborn, so a walk terminates the moment it
    /// reaches one. This regenerates from scratch for every seed set and
    /// exists as the correctness reference / ablation baseline for
    /// post-generation truncation.
    pub fn generate_direct(&self, lambda: &Lambda, seeds: &[Node], seed: u64) -> WalkArena {
        let mut is_seed = vec![false; self.graph.num_nodes()];
        for &s in seeds {
            is_seed[s as usize] = true;
        }
        self.generate_grouped(lambda, Some(&is_seed), seed)
    }

    /// Shared implementation for the per-node-grouped generators.
    ///
    /// Nodes are processed in fixed 4096-node chunks so shard boundaries —
    /// and therefore the merged arena — are identical regardless of how
    /// rayon schedules them; each node also has its own RNG stream.
    fn generate_grouped(&self, lambda: &Lambda, is_seed: Option<&[bool]>, seed: u64) -> WalkArena {
        const CHUNK: usize = 4096;
        let n = self.graph.num_nodes();
        let node_ids: Vec<Node> = (0..n as Node).collect();
        let shards: Vec<WalkArenaBuilder> = node_ids
            .par_chunks(CHUNK)
            .map(|chunk| {
                let mut builder = WalkArenaBuilder::with_capacity(chunk.len(), 2);
                for &v in chunk {
                    let mut rng = SmallRng::seed_from_u64(mix_seed(seed, v as u64));
                    for _ in 0..lambda.count(v) {
                        self.walk_from(v, is_seed, &mut rng, &mut builder);
                    }
                }
                builder
            })
            .collect();
        let mut all = WalkArenaBuilder::with_capacity(lambda.total(n), 2);
        for shard in shards {
            all.append(shard);
        }
        let mut groups = Vec::with_capacity(n + 1);
        groups.push(0);
        let mut acc = 0usize;
        for v in 0..n as Node {
            acc += lambda.count(v);
            groups.push(acc);
        }
        all.build(Some(groups))
    }

    /// Generates one walk starting at `v` into `builder`.
    ///
    /// At each of up to `t` steps the walk at node `x`:
    /// 1. terminates with probability `d_x` (`1` if `x` is a seed, when
    ///    seeds are supplied — Direct Generation);
    /// 2. otherwise moves to an in-neighbor sampled by the incoming
    ///    weights (which sum to 1);
    /// 3. a node without in-neighbors holds its initial opinion, so the
    ///    walk can never move again and we stop early — the end node is
    ///    already determined.
    fn walk_from(
        &self,
        v: Node,
        is_seed: Option<&[bool]>,
        rng: &mut SmallRng,
        builder: &mut WalkArenaBuilder,
    ) {
        let mut cur = v;
        builder.push_node(cur);
        for _ in 0..self.t {
            let seeded = is_seed.is_some_and(|m| m[cur as usize]);
            let d = if seeded { 1.0 } else { self.d[cur as usize] };
            if d >= 1.0 || (d > 0.0 && rng.gen::<f64>() < d) {
                break;
            }
            if !self.graph.has_in_edges(cur) {
                break;
            }
            cur = sample_in_neighbor(self.graph, cur, rng);
            builder.push_node(cur);
        }
        builder.finish_walk();
    }
}

/// Samples an in-neighbor of `v` proportional to the incoming weights
/// (linear CDF scan; in-degrees in social graphs are small on average, so
/// this beats alias tables on memory and is competitive on speed).
#[inline]
fn sample_in_neighbor(g: &SocialGraph, v: Node, rng: &mut SmallRng) -> Node {
    let neighbors = g.in_neighbors(v);
    let weights = g.in_weights(v);
    let x: f64 = rng.gen();
    let mut acc = 0.0;
    for (i, &w) in weights.iter().enumerate() {
        acc += w;
        if x < acc {
            return neighbors[i];
        }
    }
    // Floating-point residue: fall back to the last neighbor.
    *neighbors.last().expect("v has in-edges")
}

#[cfg(test)]
mod tests {
    use super::*;
    use vom_graph::builder::graph_from_edges;

    fn running_example() -> (SocialGraph, Vec<f64>) {
        let g = graph_from_edges(4, &[(0, 2, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap();
        let d = vec![0.0, 0.0, 0.5, 0.5];
        (g, d)
    }

    #[test]
    fn per_node_generation_is_deterministic() {
        let (g, d) = running_example();
        let gen = WalkGenerator::new(&g, &d, 3);
        let a = gen.generate_per_node(&Lambda::Uniform(10), 7);
        let b = gen.generate_per_node(&Lambda::Uniform(10), 7);
        assert_eq!(a.num_walks(), 40);
        for i in 0..a.num_walks() {
            assert_eq!(a.walk(i), b.walk(i));
        }
    }

    #[test]
    fn groups_map_walks_to_starts() {
        let (g, d) = running_example();
        let gen = WalkGenerator::new(&g, &d, 3);
        let a = gen.generate_per_node(&Lambda::Uniform(5), 1);
        for v in 0..4 {
            let range = a.group_range(v).unwrap();
            assert_eq!(range.len(), 5);
            for i in range {
                assert_eq!(a.start(i), v);
            }
        }
    }

    #[test]
    fn per_node_lambda_controls_counts() {
        let (g, d) = running_example();
        let gen = WalkGenerator::new(&g, &d, 2);
        let a = gen.generate_per_node(&Lambda::PerNode(vec![1, 0, 3, 2]), 1);
        assert_eq!(a.num_walks(), 6);
        assert_eq!(a.group_range(1).unwrap().len(), 0);
        assert_eq!(a.group_range(2).unwrap().len(), 3);
    }

    #[test]
    fn walks_respect_horizon_and_reverse_edges() {
        let (g, d) = running_example();
        let t = 2;
        let gen = WalkGenerator::new(&g, &d, t);
        let a = gen.generate_per_node(&Lambda::Uniform(50), 3);
        for w in a.walks() {
            assert!(!w.is_empty() && w.len() <= t + 1);
            for pair in w.windows(2) {
                // Each move goes to an in-neighbor of the current node.
                assert!(
                    g.in_neighbors(pair[0]).contains(&pair[1]),
                    "{:?} not an in-step",
                    pair
                );
            }
        }
    }

    #[test]
    fn sources_never_move() {
        let (g, d) = running_example();
        let gen = WalkGenerator::new(&g, &d, 5);
        let a = gen.generate_per_node(&Lambda::Uniform(20), 9);
        for i in a.group_range(0).unwrap() {
            assert_eq!(a.walk(i), &[0], "node 0 has no in-edges");
        }
    }

    #[test]
    fn horizon_zero_walks_are_single_nodes() {
        let (g, d) = running_example();
        let gen = WalkGenerator::new(&g, &d, 0);
        let a = gen.generate_per_node(&Lambda::Uniform(3), 9);
        for w in a.walks() {
            assert_eq!(w.len(), 1);
        }
    }

    #[test]
    fn fully_stubborn_node_terminates_immediately() {
        let g = graph_from_edges(2, &[(0, 1, 1.0)]).unwrap();
        let d = vec![0.0, 1.0];
        let gen = WalkGenerator::new(&g, &d, 5);
        let a = gen.generate_per_node(&Lambda::Uniform(10), 2);
        for i in a.group_range(1).unwrap() {
            assert_eq!(a.walk(i), &[1]);
        }
    }

    #[test]
    fn starts_generation_matches_order() {
        let (g, d) = running_example();
        let gen = WalkGenerator::new(&g, &d, 3);
        let starts = vec![3, 3, 0, 2];
        let a = gen.generate_for_starts(&starts, 5);
        assert_eq!(a.num_walks(), 4);
        for (j, &s) in starts.iter().enumerate() {
            assert_eq!(a.start(j), s);
        }
        assert!(!a.has_groups());
    }

    #[test]
    fn direct_generation_stops_at_seeds() {
        let (g, d) = running_example();
        let gen = WalkGenerator::new(&g, &d, 5);
        let a = gen.generate_direct(&Lambda::Uniform(30), &[2], 11);
        for w in a.walks() {
            // Node 2 can only be an end node.
            for (pos, &x) in w.iter().enumerate() {
                if x == 2 {
                    assert_eq!(pos, w.len() - 1, "walk continued past a seed: {w:?}");
                }
            }
        }
        // Walks starting at the seed are the seed alone.
        for i in a.group_range(2).unwrap() {
            assert_eq!(a.walk(i), &[2]);
        }
    }

    #[test]
    fn transition_distribution_matches_weights() {
        // Node 2's in-weights are 0.75 / 0.25: walk endpoints from node 2
        // at t = 1 with d = 0 should split roughly 3:1.
        let g = graph_from_edges(3, &[(0, 2, 3.0), (1, 2, 1.0)]).unwrap();
        let d = vec![0.0; 3];
        let gen = WalkGenerator::new(&g, &d, 1);
        let a = gen.generate_per_node(&Lambda::PerNode(vec![0, 0, 20_000]), 13);
        let to0 = a.walks().filter(|w| w[w.len() - 1] == 0).count();
        let frac = to0 as f64 / 20_000.0;
        assert!((frac - 0.75).abs() < 0.02, "empirical fraction {frac}");
    }
}
