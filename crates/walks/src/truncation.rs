//! Post-generation truncation (Theorem 9).

use crate::arena::WalkArena;
use std::sync::Arc;
use vom_graph::Node;
use vom_persist::FlatBuf;

/// Incremental truncation state over a [`WalkArena`].
///
/// Walks are generated once without seeds; for a seed set `S`, each walk
/// is (virtually) cut at the **first occurrence** of a node in `S`, and
/// the cut node's opinion is 1. Theorem 9 shows the resulting end-node
/// initial opinion is still an unbiased estimate of `b_qu^{(t)}[S]`.
///
/// Seeds arrive one at a time (greedy adds one seed per iteration —
/// Algorithm 4 line 8 "truncate all walks containing u at u"), so the
/// state keeps, per walk, the current end position, plus an index from
/// node to its first occurrence in every walk. Ends only move leftwards;
/// each `add_seed` costs `O(#occurrences of the seed)`.
///
/// The occurrence index is immutable after construction and shared
/// behind an `Arc`, so cloning a `Truncation` (the prepared engines
/// clone per query) copies only the `O(θ + n)` mutable state, not the
/// `O(total walk length)` index.
#[derive(Debug)]
pub struct Truncation {
    end_pos: Vec<u32>,
    index: Arc<OccurrenceIndex>,
    is_seed: Vec<bool>,
    seeds: Vec<Node>,
}

/// Manual impl so `clone_from` reuses the target's allocations — a query
/// session resetting its working truncation from the pristine one then
/// allocates nothing.
impl Clone for Truncation {
    fn clone(&self) -> Self {
        Truncation {
            end_pos: self.end_pos.clone(),
            index: Arc::clone(&self.index),
            is_seed: self.is_seed.clone(),
            seeds: self.seeds.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.end_pos.clone_from(&source.end_pos);
        self.index = Arc::clone(&source.index);
        self.is_seed.clone_from(&source.is_seed);
        self.seeds.clone_from(&source.seeds);
    }
}

/// First-occurrence positions of every node in every walk (CSR by node).
/// The arrays sit in [`FlatBuf`]s so a snapshot load can borrow them from
/// the mapped file region instead of copying.
#[derive(Debug)]
struct OccurrenceIndex {
    occ_off: FlatBuf<usize>,
    occ_walk: FlatBuf<u32>,
    occ_pos: FlatBuf<u32>,
}

impl Truncation {
    /// Builds the truncation index for `arena` over `n` nodes.
    pub fn new(arena: &WalkArena, n: usize) -> Self {
        let mut end_pos = Vec::with_capacity(arena.num_walks());
        // Count first occurrences per node.
        let mut counts = vec![0usize; n + 1];
        for i in 0..arena.num_walks() {
            let w = arena.walk(i);
            end_pos.push((w.len() - 1) as u32);
            for (pos, &v) in w.iter().enumerate() {
                if first_occurrence(w, pos, v) {
                    counts[v as usize + 1] += 1;
                }
            }
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let occ_off = counts;
        let total = *occ_off.last().unwrap();
        let mut cursor = occ_off.clone();
        let mut occ_walk = vec![0u32; total];
        let mut occ_pos = vec![0u32; total];
        for i in 0..arena.num_walks() {
            let w = arena.walk(i);
            for (pos, &v) in w.iter().enumerate() {
                if first_occurrence(w, pos, v) {
                    let slot = cursor[v as usize];
                    occ_walk[slot] = i as u32;
                    occ_pos[slot] = pos as u32;
                    cursor[v as usize] += 1;
                }
            }
        }
        Truncation {
            end_pos,
            index: Arc::new(OccurrenceIndex {
                occ_off: occ_off.into(),
                occ_walk: occ_walk.into(),
                occ_pos: occ_pos.into(),
            }),
            is_seed: vec![false; n],
            seeds: Vec::new(),
        }
    }

    /// Reassembles a *pristine* (seedless) truncation from its persisted
    /// arrays: per-walk end positions plus the first-occurrence CSR.
    /// Every index is bounds-validated against `arena` up front, so a
    /// corrupt-but-digest-valid snapshot fails closed here instead of
    /// panicking inside a later query.
    pub fn from_parts(
        arena: &WalkArena,
        n: usize,
        end_pos: Vec<u32>,
        occ_off: FlatBuf<usize>,
        occ_walk: FlatBuf<u32>,
        occ_pos: FlatBuf<u32>,
    ) -> Result<Self, &'static str> {
        let walks = arena.num_walks();
        if end_pos.len() != walks {
            return Err("end positions must cover every walk");
        }
        if (0..walks).any(|i| end_pos[i] as usize >= arena.walk(i).len()) {
            return Err("end position beyond its walk");
        }
        if occ_off.len() != n + 1 || occ_off[0] != 0 {
            return Err("occurrence offsets must span every node");
        }
        if occ_off.windows(2).any(|w| w[1] < w[0]) {
            return Err("occurrence offsets must be non-decreasing");
        }
        let total = *occ_off.last().unwrap();
        if occ_walk.len() != total || occ_pos.len() != total {
            return Err("occurrence arrays must match their offsets");
        }
        for slot in 0..total {
            let w = occ_walk[slot] as usize;
            if w >= walks || occ_pos[slot] as usize >= arena.walk(w).len() {
                return Err("occurrence beyond its walk");
            }
        }
        Ok(Truncation {
            end_pos,
            index: Arc::new(OccurrenceIndex {
                occ_off,
                occ_walk,
                occ_pos,
            }),
            is_seed: vec![false; n],
            seeds: Vec::new(),
        })
    }

    /// The persisted arrays `(end_pos, occ_off, occ_walk, occ_pos)` — the
    /// exact buffers a snapshot writer serializes verbatim.
    pub fn parts(&self) -> (&[u32], &[usize], &[u32], &[u32]) {
        (
            &self.end_pos,
            &self.index.occ_off,
            &self.index.occ_walk,
            &self.index.occ_pos,
        )
    }

    /// Seeds applied so far, in insertion order.
    pub fn seeds(&self) -> &[Node] {
        &self.seeds
    }

    /// Whether `v` is a seed.
    #[inline]
    pub fn is_seed(&self, v: Node) -> bool {
        self.is_seed[v as usize]
    }

    /// Current end position (index within the walk) of walk `i`.
    #[inline]
    pub fn end_pos(&self, i: usize) -> usize {
        self.end_pos[i] as usize
    }

    /// Current end node of walk `i`.
    #[inline]
    pub fn end_node(&self, arena: &WalkArena, i: usize) -> Node {
        arena.walk(i)[self.end_pos(i)]
    }

    /// Estimated opinion contribution of walk `i`: the seeded initial
    /// opinion of its current end node (`1` if the end node is a seed —
    /// `b^{(0)}[S]` pins seeds at 1).
    #[inline]
    pub fn end_value(&self, arena: &WalkArena, b0: &[f64], i: usize) -> f64 {
        let e = self.end_node(arena, i);
        if self.is_seed(e) {
            1.0
        } else {
            b0[e as usize]
        }
    }

    /// The live prefix of walk `i` (everything up to and including the
    /// current end node).
    #[inline]
    pub fn prefix<'a>(&self, arena: &'a WalkArena, i: usize) -> &'a [Node] {
        &arena.walk(i)[..=self.end_pos(i)]
    }

    /// The first occurrence of node `u` in every walk that contains it:
    /// parallel slices of walk indices (ascending) and the position of
    /// the occurrence within the walk. This is the precomputed index
    /// `add_seed` truncates through; the delta-driven greedy scans it to
    /// evaluate one candidate in `O(occurrences)` instead of rescanning
    /// every walk prefix. An occurrence is inside the *live* prefix iff
    /// its position is `<= self.end_pos(walk)`.
    #[inline]
    pub fn first_occurrences(&self, u: Node) -> (&[u32], &[u32]) {
        let (s, e) = (
            self.index.occ_off[u as usize],
            self.index.occ_off[u as usize + 1],
        );
        (&self.index.occ_walk[s..e], &self.index.occ_pos[s..e])
    }

    /// Exact owned heap footprint in bytes: full `Vec` capacities for the
    /// per-query mutable state plus the shared occurrence index's
    /// [`FlatBuf`]s (capacity when owned, zero when borrowed from a
    /// snapshot). The index is `Arc`-shared across clones; each clone
    /// reports the whole index, which matches how one prepared engine
    /// holds exactly one pristine truncation.
    pub fn heap_bytes(&self) -> usize {
        self.end_pos.capacity() * std::mem::size_of::<u32>()
            + self.is_seed.capacity()
            + self.seeds.capacity() * std::mem::size_of::<Node>()
            + self.index.occ_off.heap_bytes()
            + self.index.occ_walk.heap_bytes()
            + self.index.occ_pos.heap_bytes()
    }

    /// Adds `u` to the seed set, truncating every walk whose live prefix
    /// contains `u`.
    ///
    /// A walk's contribution changes in two cases: `u` occurs strictly
    /// before the current end (the end *moves* to `u`'s position), or `u`
    /// *is* the current end node (the end stays but its value jumps from
    /// `b⁰_u` to 1). In both, the new value is 1 and
    /// `on_change(walk, old_end_node)` fires with the pre-update end node,
    /// which is guaranteed not to have been a seed — walks already ending
    /// at a seed keep value 1, so no callback is needed for them even when
    /// their end moves left.
    pub fn add_seed<F>(&mut self, arena: &WalkArena, u: Node, mut on_change: F)
    where
        F: FnMut(usize, Node),
    {
        if self.is_seed[u as usize] {
            return;
        }
        let (s, e) = (
            self.index.occ_off[u as usize],
            self.index.occ_off[u as usize + 1],
        );
        for idx in s..e {
            let walk = self.index.occ_walk[idx] as usize;
            let pos = self.index.occ_pos[idx];
            let end = self.end_pos[walk];
            if pos > end {
                continue; // u lies beyond the live prefix
            }
            let old_node = arena.walk(walk)[end as usize];
            // `u` is marked a seed only after this loop, so `is_seed`
            // reflects the state before this call (the old end can be a
            // later occurrence of `u` itself).
            let old_was_seed = self.is_seed[old_node as usize];
            if pos < end {
                self.end_pos[walk] = pos;
            }
            if !old_was_seed {
                on_change(walk, old_node);
            }
        }
        self.is_seed[u as usize] = true;
        self.seeds.push(u);
    }
}

/// Whether position `pos` holds the first occurrence of `v` in `w`.
#[inline]
fn first_occurrence(w: &[Node], pos: usize, v: Node) -> bool {
    !w[..pos].contains(&v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::WalkArenaBuilder;

    /// Hand-built arena: three walks over 4 nodes.
    fn arena() -> WalkArena {
        let mut b = WalkArenaBuilder::with_capacity(3, 3);
        // walk 0: 3 -> 2 -> 0
        for v in [3, 2, 0] {
            b.push_node(v);
        }
        b.finish_walk();
        // walk 1: 2 -> 1
        for v in [2, 1] {
            b.push_node(v);
        }
        b.finish_walk();
        // walk 2: 3 -> 2 -> 1 -> 2 (repeated node)
        for v in [3, 2, 1, 2] {
            b.push_node(v);
        }
        b.finish_walk();
        b.build(None)
    }

    #[test]
    fn initial_state_ends_at_walk_tails() {
        let a = arena();
        let t = Truncation::new(&a, 4);
        assert_eq!(t.end_node(&a, 0), 0);
        assert_eq!(t.end_node(&a, 1), 1);
        assert_eq!(t.end_node(&a, 2), 2);
        assert_eq!(t.prefix(&a, 1), &[2, 1]);
        assert!(t.seeds().is_empty());
    }

    #[test]
    fn add_seed_truncates_at_first_occurrence() {
        let a = arena();
        let mut t = Truncation::new(&a, 4);
        let mut truncated = Vec::new();
        t.add_seed(&a, 2, |w, _| truncated.push(w));
        truncated.sort_unstable();
        assert_eq!(truncated, vec![0, 1, 2]);
        assert_eq!(t.end_pos(0), 1);
        assert_eq!(t.end_pos(1), 0);
        assert_eq!(t.end_pos(2), 1, "first occurrence of 2, not the later one");
        assert_eq!(t.end_node(&a, 2), 2);
        assert!(t.is_seed(2));
    }

    #[test]
    fn end_values_use_seed_pinning() {
        let a = arena();
        let b0 = vec![0.1, 0.2, 0.3, 0.4];
        let mut t = Truncation::new(&a, 4);
        assert_eq!(t.end_value(&a, &b0, 0), 0.1);
        t.add_seed(&a, 2, |_, _| {});
        assert_eq!(t.end_value(&a, &b0, 0), 1.0);
        assert_eq!(t.end_value(&a, &b0, 1), 1.0);
    }

    #[test]
    fn later_seed_can_shorten_further() {
        let a = arena();
        let mut t = Truncation::new(&a, 4);
        t.add_seed(&a, 1, |_, _| {});
        assert_eq!(t.end_pos(2), 2);
        t.add_seed(&a, 3, |_, _| {});
        assert_eq!(t.end_pos(2), 0, "start node seed truncates to position 0");
        assert_eq!(t.end_pos(0), 0);
    }

    #[test]
    fn seed_beyond_current_end_is_a_noop() {
        let a = arena();
        let mut t = Truncation::new(&a, 4);
        t.add_seed(&a, 2, |_, _| {});
        let mut calls = 0;
        // Node 1 only appears after the new ends in walks 1 and 2 — but in
        // walk 1 node 1 is AT position 1 > end 0, walk 2 position 2 > end 1.
        t.add_seed(&a, 1, |_, _| calls += 1);
        assert_eq!(calls, 0);
        assert_eq!(t.end_pos(1), 0);
    }

    #[test]
    fn duplicate_seed_is_idempotent() {
        let a = arena();
        let mut t = Truncation::new(&a, 4);
        t.add_seed(&a, 2, |_, _| {});
        let ends: Vec<_> = (0..3).map(|i| t.end_pos(i)).collect();
        let mut calls = 0;
        t.add_seed(&a, 2, |_, _| calls += 1);
        assert_eq!(calls, 0);
        assert_eq!(ends, (0..3).map(|i| t.end_pos(i)).collect::<Vec<_>>());
        assert_eq!(t.seeds(), &[2]);
    }
}
