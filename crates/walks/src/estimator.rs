//! Per-node opinion estimates and greedy marginal-gain scans.

use crate::arena::WalkArena;
use crate::truncation::Truncation;
use vom_graph::Node;

/// One `(candidate seed, affected user, opinion delta)` triple produced by
/// [`OpinionEstimator::pair_deltas`]: adding `seed` would raise the
/// estimated opinion of `user` by `delta`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairDelta {
    /// Candidate seed node `w`.
    pub seed: Node,
    /// Start node `v` whose estimate would rise.
    pub user: Node,
    /// Increase in `b̂_qv` if `w` were added to the seed set.
    pub delta: f64,
}

/// Reusable buffers for per-candidate delta merging on estimators whose
/// walks are *not* grouped by start node (the sketch set samples starts
/// with replacement): walk-order contributions are accumulated per user
/// and then emitted in ascending user order. Per-node (grouped) arenas
/// never touch it. Keep one per greedy loop and pass it to every
/// `for_candidate_deltas` call — the buffers are epoch-reset, not
/// reallocated.
#[derive(Debug, Default)]
pub struct DeltaScratch {
    /// Per-user accumulated delta for the current candidate.
    acc: Vec<f64>,
    /// Epoch marks: `mark[v] == epoch` means `acc[v]` is live.
    mark: Vec<u32>,
    epoch: u32,
    /// Users touched by the current candidate, in first-visit order.
    dirty: Vec<Node>,
}

impl DeltaScratch {
    /// Starts a new candidate evaluation over `n` users.
    pub fn begin(&mut self, n: usize) {
        if self.mark.len() != n {
            self.acc.clear();
            self.acc.resize(n, 0.0);
            self.mark.clear();
            self.mark.resize(n, 0);
            self.epoch = 0;
        }
        self.dirty.clear();
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // One lap of the u32 epoch: clear the marks and restart.
            self.mark.iter_mut().for_each(|m| *m = 0);
            self.epoch = 1;
        }
    }

    /// Accumulates one walk's delta for `user` (walk order preserved
    /// within a user).
    #[inline]
    pub fn add(&mut self, user: Node, delta: f64) {
        let i = user as usize;
        if self.mark[i] == self.epoch {
            self.acc[i] += delta;
        } else {
            self.mark[i] = self.epoch;
            self.acc[i] = delta;
            self.dirty.push(user);
        }
    }

    /// Emits the merged `(user, delta)` pairs in ascending user order.
    pub fn drain_sorted(&mut self, mut visit: impl FnMut(Node, f64)) {
        self.dirty.sort_unstable();
        for &user in &self.dirty {
            visit(user, self.acc[user as usize]);
        }
    }
}

/// Walk-based estimator of `b̂_qv^{(t)}[S]` for a per-node walk arena
/// (Algorithm 4). The estimate for `v` is the mean end-node value of the
/// `λ_v` truncated walks starting at `v` (Theorems 9–10), maintained
/// incrementally as seeds are added.
#[derive(Debug, Clone)]
pub struct OpinionEstimator<'a> {
    arena: &'a WalkArena,
    trunc: Truncation,
    b0: Vec<f64>,
    /// Per start node: sum of current end values over its walks.
    sums: Vec<f64>,
    /// Per start node: λ_v.
    lambda: Vec<u32>,
    /// Walk index -> start node (walks are grouped, but O(1) lookup keeps
    /// the truncation callback cheap).
    walk_start: Vec<Node>,
    /// Walk index -> current contribution gain `1 − end_value`: cached
    /// so the per-candidate occurrence scans do one load instead of
    /// chasing the arena. `0.0` once the walk ends at a seed (it then
    /// never contributes again); maintained by `add_seed_into`.
    walk_gain: Vec<f64>,
}

impl<'a> OpinionEstimator<'a> {
    /// Builds an estimator over a **grouped** arena (one produced by
    /// [`crate::WalkGenerator::generate_per_node`]) and the target
    /// candidate's seedless initial opinions `b0`.
    ///
    /// # Panics
    /// If the arena has no start groups or `b0` length mismatches.
    pub fn new(arena: &'a WalkArena, b0: &[f64]) -> Self {
        let n = arena
            .num_groups()
            .expect("OpinionEstimator requires a per-node (grouped) arena");
        assert_eq!(b0.len(), n, "b0 length must equal node count");
        let trunc = Truncation::new(arena, n);
        let mut sums = vec![0.0f64; n];
        let mut lambda = vec![0u32; n];
        let mut walk_start = vec![0 as Node; arena.num_walks()];
        let mut walk_gain = vec![0.0f64; arena.num_walks()];
        for v in 0..n as Node {
            let range = arena.group_range(v).expect("grouped arena");
            lambda[v as usize] = range.len() as u32;
            for i in range {
                walk_start[i] = v;
                let end = trunc.end_value(arena, b0, i);
                sums[v as usize] += end;
                walk_gain[i] = 1.0 - end;
            }
        }
        OpinionEstimator {
            arena,
            trunc,
            b0: b0.to_vec(),
            sums,
            lambda,
            walk_start,
            walk_gain,
        }
    }

    /// Number of users.
    pub fn num_nodes(&self) -> usize {
        self.sums.len()
    }

    /// Seeds added so far.
    pub fn seeds(&self) -> &[Node] {
        self.trunc.seeds()
    }

    /// Whether `v` is a seed.
    pub fn is_seed(&self, v: Node) -> bool {
        self.trunc.is_seed(v)
    }

    /// Walks per node `λ_v`.
    pub fn lambda(&self, v: Node) -> u32 {
        self.lambda[v as usize]
    }

    /// Estimated opinion `b̂_qv^{(t)}[S]` for the current seed set.
    ///
    /// Seeds estimate exactly 1 (their walks truncate at position 0).
    /// Nodes with `λ_v = 0` fall back to the initial opinion — only
    /// relevant for per-node λ schedules that skip nodes.
    #[inline]
    pub fn estimate(&self, v: Node) -> f64 {
        if self.trunc.is_seed(v) {
            return 1.0;
        }
        let l = self.lambda[v as usize];
        if l == 0 {
            self.b0[v as usize]
        } else {
            self.sums[v as usize] / l as f64
        }
    }

    /// All per-node estimates.
    pub fn estimates(&self) -> Vec<f64> {
        (0..self.num_nodes() as Node)
            .map(|v| self.estimate(v))
            .collect()
    }

    /// Estimated cumulative score `Σ_v b̂_qv^{(t)}[S]`.
    pub fn estimated_cumulative(&self) -> f64 {
        (0..self.num_nodes() as Node)
            .map(|v| self.estimate(v))
            .sum()
    }

    /// Restricted cumulative estimate `Σ_{v: mask[v]} b̂_qv^{(t)}[S]` —
    /// the sandwich lower bound aggregates only over the favorable users
    /// set `V_q^{(t)}` (Definition 3).
    pub fn estimated_cumulative_masked(&self, mask: &[bool]) -> f64 {
        (0..self.num_nodes() as Node)
            .filter(|&v| mask[v as usize])
            .map(|v| self.estimate(v))
            .sum()
    }

    /// [`OpinionEstimator::cumulative_gains`] restricted to walks whose
    /// start node is in `mask` (used to greedily maximize the sandwich
    /// lower bound).
    pub fn cumulative_gains_masked(&self, mask: &[bool]) -> Vec<f64> {
        let mut gains = vec![0.0f64; self.num_nodes()];
        self.scan_prefixes(|w, start, per_walk_gain| {
            if mask[start as usize] {
                gains[w as usize] += per_walk_gain / self.lambda[start as usize] as f64;
            }
        });
        gains
    }

    /// Adds `u` to the seed set, truncating walks and updating sums.
    /// Returns the start nodes whose estimates changed (deduplicated),
    /// which the γ* heuristic and rank-based gain scans consume.
    pub fn add_seed(&mut self, u: Node) -> Vec<Node> {
        let mut touched = Vec::new();
        self.add_seed_into(u, &mut touched);
        touched
    }

    /// [`OpinionEstimator::add_seed`] writing the changed-users delta
    /// report into a caller-owned buffer (cleared first), so a greedy
    /// loop adding one seed per iteration reuses one allocation. The
    /// report is sorted ascending and deduplicated.
    pub fn add_seed_into(&mut self, u: Node, touched: &mut Vec<Node>) {
        touched.clear();
        let arena = self.arena;
        let b0 = &self.b0;
        let sums = &mut self.sums;
        let walk_start = &self.walk_start;
        let walk_gain = &mut self.walk_gain;
        self.trunc.add_seed(arena, u, |walk, old_end| {
            let start = walk_start[walk];
            sums[start as usize] += 1.0 - b0[old_end as usize];
            // The walk now ends at a seed: value 1, gain gone for good.
            walk_gain[walk] = 0.0;
            touched.push(start);
        });
        touched.sort_unstable();
        touched.dedup();
    }

    /// For every candidate seed `w`, the increase in the **estimated
    /// cumulative score** if `w` were added: one scan over all live walk
    /// prefixes (§V-B's "one scan over all walks"). Already-seeded nodes
    /// report 0.
    pub fn cumulative_gains(&self) -> Vec<f64> {
        let mut gains = vec![0.0f64; self.num_nodes()];
        self.scan_prefixes(|w, start, per_walk_gain| {
            gains[w as usize] += per_walk_gain / self.lambda[start as usize] as f64;
        });
        gains
    }

    /// Per-(seed, user) opinion deltas, sorted by seed node: everything
    /// the rank-based scores need to evaluate marginal gains exactly on
    /// the estimates. Size is bounded by the total live prefix length.
    pub fn pair_deltas(&self) -> Vec<PairDelta> {
        let mut deltas = Vec::new();
        self.scan_prefixes(|w, start, per_walk_gain| {
            deltas.push(PairDelta {
                seed: w,
                user: start,
                delta: per_walk_gain / self.lambda[start as usize] as f64,
            });
        });
        // Group by seed, then merge duplicate (seed, user) pairs from
        // different walks of the same start.
        deltas.sort_unstable_by_key(|d| (d.seed, d.user));
        deltas.dedup_by(|b, a| {
            if a.seed == b.seed && a.user == b.user {
                a.delta += b.delta;
                true
            } else {
                false
            }
        });
        deltas
    }

    /// Visits `(walk, start, walk-level gain)` for every **live** walk
    /// whose live prefix contains candidate `w`, in ascending walk
    /// order — the occurrence-index dual of [`Self::scan_prefixes`]:
    /// one candidate in `O(occurrences of w)` instead of one pass over
    /// every prefix. The visit set and order match the scan exactly
    /// (first occurrences only, dead walks skipped), so sums taken here
    /// are bit-identical to the scan-based gains.
    #[inline]
    fn visit_candidate_walks<F: FnMut(usize, Node, f64)>(&self, w: Node, mut visit: F) {
        debug_assert!(!self.trunc.is_seed(w));
        let (walks, positions) = self.trunc.first_occurrences(w);
        for (&walk, &pos) in walks.iter().zip(positions) {
            let walk = walk as usize;
            let gain = self.walk_gain[walk];
            if gain <= 0.0 {
                continue; // walk already ends at a seed (or at value 1)
            }
            if pos as usize > self.trunc.end_pos(walk) {
                continue; // beyond the live prefix
            }
            visit(walk, self.walk_start[walk], gain);
        }
    }

    /// The marginal estimated-cumulative gain of a single candidate seed
    /// `w` — bit-identical to `cumulative_gains()[w]`, computed from
    /// `w`'s occurrence list alone. `0.0` for seeds.
    pub fn cumulative_gain_of(&self, w: Node) -> f64 {
        if self.trunc.is_seed(w) {
            return 0.0;
        }
        let mut gain = 0.0;
        self.visit_candidate_walks(w, |_, start, g| {
            gain += g / self.lambda[start as usize] as f64;
        });
        gain
    }

    /// [`OpinionEstimator::cumulative_gain_of`] restricted to walks whose
    /// start node is in `mask`.
    pub fn cumulative_gain_of_masked(&self, w: Node, mask: &[bool]) -> f64 {
        if self.trunc.is_seed(w) {
            return 0.0;
        }
        let mut gain = 0.0;
        self.visit_candidate_walks(w, |_, start, g| {
            if mask[start as usize] {
                gain += g / self.lambda[start as usize] as f64;
            }
        });
        gain
    }

    /// Visits the merged per-user estimate deltas of one candidate seed
    /// `w` — `(user, Δb̂_qv)` pairs in ascending user order, exactly the
    /// `seed == w` run of [`OpinionEstimator::pair_deltas`] — without
    /// scanning any other candidate's walks. Grouped arenas emit
    /// straight off the occurrence list (walk order is start order);
    /// `scratch` is only for API parity with the sketch estimator.
    pub fn for_candidate_deltas<F: FnMut(Node, f64)>(
        &self,
        w: Node,
        _scratch: &mut DeltaScratch,
        mut visit: F,
    ) {
        if self.trunc.is_seed(w) {
            return;
        }
        // Walks are grouped by start node in ascending node order, so
        // occurrences arrive user-major: merge adjacent runs in place.
        let mut current: Option<(Node, f64)> = None;
        self.visit_candidate_walks(w, |_, start, g| {
            let delta = g / self.lambda[start as usize] as f64;
            match &mut current {
                Some((user, acc)) if *user == start => *acc += delta,
                _ => {
                    if let Some((user, acc)) = current.take() {
                        visit(user, acc);
                    }
                    current = Some((start, delta));
                }
            }
        });
        if let Some((user, acc)) = current {
            visit(user, acc);
        }
    }

    /// [`OpinionEstimator::for_candidate_deltas`] that *also*
    /// accumulates the candidate's estimated-cumulative gain in
    /// occurrence order — one pass serves both the rank gain and its
    /// cumulative tie-break (bit-identical to
    /// [`OpinionEstimator::cumulative_gain_of`]).
    pub fn for_candidate_deltas_cum<F: FnMut(Node, f64)>(
        &self,
        w: Node,
        _scratch: &mut DeltaScratch,
        mut visit: F,
    ) -> f64 {
        if self.trunc.is_seed(w) {
            return 0.0;
        }
        let mut cum = 0.0;
        let mut current: Option<(Node, f64)> = None;
        self.visit_candidate_walks(w, |_, start, g| {
            let delta = g / self.lambda[start as usize] as f64;
            cum += delta;
            match &mut current {
                Some((user, acc)) if *user == start => *acc += delta,
                _ => {
                    if let Some((user, acc)) = current.take() {
                        visit(user, acc);
                    }
                    current = Some((start, delta));
                }
            }
        });
        if let Some((user, acc)) = current {
            visit(user, acc);
        }
        cum
    }

    /// Visits `(candidate seed w, walk start, walk-level gain)` for the
    /// first occurrence of every non-seed node `w` in every live prefix,
    /// where the walk-level gain is `1 − end_value` (what truncating that
    /// walk at `w` would change its contribution by).
    fn scan_prefixes<F: FnMut(Node, Node, f64)>(&self, mut visit: F) {
        for i in 0..self.arena.num_walks() {
            let end_value = self.trunc.end_value(self.arena, &self.b0, i);
            let gain = 1.0 - end_value;
            if gain <= 0.0 {
                continue;
            }
            let prefix = self.trunc.prefix(self.arena, i);
            let start = self.walk_start[i];
            for (pos, &w) in prefix.iter().enumerate() {
                // First occurrence only: truncation cuts at the earliest.
                if prefix[..pos].contains(&w) || self.trunc.is_seed(w) {
                    continue;
                }
                visit(w, start, gain);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{Lambda, WalkGenerator};
    use vom_graph::builder::graph_from_edges;
    use vom_graph::SocialGraph;

    fn running_example() -> (SocialGraph, Vec<f64>, Vec<f64>) {
        let g = graph_from_edges(4, &[(0, 2, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap();
        let b0 = vec![0.40, 0.80, 0.60, 0.90];
        let d = vec![0.0, 0.0, 0.5, 0.5];
        (g, b0, d)
    }

    #[test]
    fn estimates_converge_to_exact_opinions() {
        let (g, b0, d) = running_example();
        let t = 1;
        let gen = WalkGenerator::new(&g, &d, t);
        let arena = gen.generate_per_node(&Lambda::Uniform(60_000), 17);
        let est = OpinionEstimator::new(&arena, &b0);
        // Exact t=1 opinions: 0.40, 0.80, 0.60, 0.75.
        let exact = [0.40, 0.80, 0.60, 0.75];
        for v in 0..4 {
            let e = est.estimate(v);
            assert!(
                (e - exact[v as usize]).abs() < 0.01,
                "node {v}: {e} vs {}",
                exact[v as usize]
            );
        }
    }

    #[test]
    fn seeded_estimates_converge_to_exact_seeded_opinions() {
        let (g, b0, d) = running_example();
        let gen = WalkGenerator::new(&g, &d, 1);
        let arena = gen.generate_per_node(&Lambda::Uniform(60_000), 23);
        let mut est = OpinionEstimator::new(&arena, &b0);
        let touched = est.add_seed(2);
        // Seeding node 2 influences node 3's estimate (walks 3 -> 2).
        assert!(touched.contains(&3));
        // Exact seeded opinions (Table I row {3}): 0.40, 0.80, 1.00, 0.95.
        let exact = [0.40, 0.80, 1.00, 0.95];
        for v in 0..4 {
            let e = est.estimate(v);
            assert!(
                (e - exact[v as usize]).abs() < 0.01,
                "node {v}: {e} vs {}",
                exact[v as usize]
            );
        }
        assert_eq!(est.estimate(2), 1.0, "seed estimates exactly 1");
    }

    #[test]
    fn cumulative_gains_match_manual_recompute() {
        let (g, b0, d) = running_example();
        let gen = WalkGenerator::new(&g, &d, 2);
        let arena = gen.generate_per_node(&Lambda::Uniform(500), 31);
        let est = OpinionEstimator::new(&arena, &b0);
        let gains = est.cumulative_gains();
        let base = est.estimated_cumulative();
        for w in 0..4 {
            let mut clone = est.clone();
            clone.add_seed(w);
            let realized = clone.estimated_cumulative() - base;
            assert!(
                (gains[w as usize] - realized).abs() < 1e-9,
                "node {w}: predicted {} vs realized {}",
                gains[w as usize],
                realized
            );
        }
    }

    #[test]
    fn gains_of_existing_seeds_are_zero() {
        let (g, b0, d) = running_example();
        let gen = WalkGenerator::new(&g, &d, 2);
        let arena = gen.generate_per_node(&Lambda::Uniform(200), 37);
        let mut est = OpinionEstimator::new(&arena, &b0);
        est.add_seed(2);
        let gains = est.cumulative_gains();
        assert_eq!(gains[2], 0.0);
    }

    #[test]
    fn pair_deltas_aggregate_to_cumulative_gains() {
        let (g, b0, d) = running_example();
        let gen = WalkGenerator::new(&g, &d, 2);
        let arena = gen.generate_per_node(&Lambda::Uniform(300), 41);
        let est = OpinionEstimator::new(&arena, &b0);
        let gains = est.cumulative_gains();
        let mut agg = [0.0f64; 4];
        for pd in est.pair_deltas() {
            agg[pd.seed as usize] += pd.delta;
        }
        for v in 0..4 {
            assert!((agg[v] - gains[v]).abs() < 1e-9, "node {v}");
        }
    }

    #[test]
    fn pair_deltas_are_sorted_and_deduplicated() {
        let (g, b0, d) = running_example();
        let gen = WalkGenerator::new(&g, &d, 3);
        let arena = gen.generate_per_node(&Lambda::Uniform(100), 43);
        let est = OpinionEstimator::new(&arena, &b0);
        let deltas = est.pair_deltas();
        for pair in deltas.windows(2) {
            assert!(
                (pair[0].seed, pair[0].user) < (pair[1].seed, pair[1].user),
                "must be strictly sorted (deduplicated)"
            );
        }
        assert!(deltas.iter().all(|d| d.delta > 0.0));
    }

    #[test]
    fn per_candidate_gain_matches_full_scan() {
        let (g, b0, d) = running_example();
        let gen = WalkGenerator::new(&g, &d, 2);
        let arena = gen.generate_per_node(&Lambda::Uniform(400), 47);
        let mut est = OpinionEstimator::new(&arena, &b0);
        let mask = [true, false, true, true];
        for step in 0..2 {
            let gains = est.cumulative_gains();
            let masked = est.cumulative_gains_masked(&mask);
            for w in 0..4u32 {
                if est.is_seed(w) {
                    continue;
                }
                assert_eq!(
                    est.cumulative_gain_of(w).to_bits(),
                    gains[w as usize].to_bits(),
                    "step {step} node {w}"
                );
                assert_eq!(
                    est.cumulative_gain_of_masked(w, &mask).to_bits(),
                    masked[w as usize].to_bits(),
                    "step {step} node {w} (masked)"
                );
            }
            est.add_seed(2);
        }
        assert_eq!(est.cumulative_gain_of(2), 0.0, "seeds gain nothing");
    }

    #[test]
    fn per_candidate_deltas_match_pair_deltas() {
        let (g, b0, d) = running_example();
        let gen = WalkGenerator::new(&g, &d, 3);
        let arena = gen.generate_per_node(&Lambda::Uniform(300), 53);
        let mut est = OpinionEstimator::new(&arena, &b0);
        est.add_seed(1);
        let all = est.pair_deltas();
        let mut scratch = DeltaScratch::default();
        for w in 0..4u32 {
            if est.is_seed(w) {
                continue;
            }
            let mut got: Vec<(Node, f64)> = Vec::new();
            est.for_candidate_deltas(w, &mut scratch, |user, delta| got.push((user, delta)));
            let want: Vec<(Node, f64)> = all
                .iter()
                .filter(|d| d.seed == w)
                .map(|d| (d.user, d.delta))
                .collect();
            assert_eq!(got.len(), want.len(), "node {w}");
            for (g, w_) in got.iter().zip(&want) {
                assert_eq!(g.0, w_.0);
                assert!((g.1 - w_.1).abs() < 1e-12, "{} vs {}", g.1, w_.1);
            }
            assert!(got.windows(2).all(|p| p[0].0 < p[1].0), "ascending users");
        }
    }

    #[test]
    fn add_seed_into_reuses_the_buffer() {
        let (g, b0, d) = running_example();
        let gen = WalkGenerator::new(&g, &d, 1);
        let arena = gen.generate_per_node(&Lambda::Uniform(500), 59);
        let mut est = OpinionEstimator::new(&arena, &b0);
        let mut buf = vec![99; 8]; // stale content must be cleared
        est.add_seed_into(2, &mut buf);
        let mut est2 = OpinionEstimator::new(&arena, &b0);
        assert_eq!(buf, est2.add_seed(2));
    }

    #[test]
    fn truncation_equals_direct_generation_in_expectation() {
        // Theorem 9: post-generation truncation and Direct Generation
        // estimate the same quantity. Statistical check on node 3.
        let (g, b0, d) = running_example();
        let gen = WalkGenerator::new(&g, &d, 3);
        let seeds = [2 as Node];
        let lambda = Lambda::Uniform(40_000);

        let arena_trunc = gen.generate_per_node(&lambda, 51);
        let mut est = OpinionEstimator::new(&arena_trunc, &b0);
        est.add_seed(2);
        let trunc_estimate = est.estimate(3);

        let arena_direct = gen.generate_direct(&lambda, &seeds, 53);
        // Direct walks already stop at seeds; value of end node e is 1 if
        // e is a seed else b0[e].
        let range = arena_direct.group_range(3).unwrap();
        let mut sum = 0.0;
        let count = range.len();
        for i in range {
            let w = arena_direct.walk(i);
            let e = w[w.len() - 1];
            sum += if seeds.contains(&e) {
                1.0
            } else {
                b0[e as usize]
            };
        }
        let direct_estimate = sum / count as f64;
        assert!(
            (trunc_estimate - direct_estimate).abs() < 0.01,
            "{trunc_estimate} vs {direct_estimate}"
        );
    }
}
