//! Walk-count bounds (Theorems 10–12) and the `γ*` heuristic (Eq. 33).

use crate::estimator::OpinionEstimator;
use crate::generator::{Lambda, WalkGenerator};
use vom_graph::{Node, SocialGraph};

/// Theorem 10: walks per node so that every opinion estimate is within
/// `δ` of the truth with probability at least `ρ`:
/// `λ ≥ ln(2 / (1 − ρ)) / (2δ²)`.
pub fn lambda_cumulative(delta: f64, rho: f64) -> usize {
    assert!(delta > 0.0, "delta must be positive");
    assert!((0.0..1.0).contains(&rho), "rho must be in [0, 1)");
    ((2.0 / (1.0 - rho)).ln() / (2.0 * delta * delta)).ceil() as usize
}

/// Theorem 11: walks so a user's *position* of the target candidate is
/// estimated correctly with probability at least `ρ`, given the opinion
/// gap `γ_v[S]`: `λ ≥ ln(2 / (1 − ρ)) / (2γ²)`.
pub fn lambda_rank(gamma: f64, rho: f64) -> usize {
    lambda_cumulative(gamma, rho)
}

/// Theorem 12: walks so each one-on-one comparison against another
/// candidate is estimated correctly with probability at least `ρ`:
/// `λ ≥ ln(1 / (1 − ρ)) / (2γ²)` (one-sided, hence the smaller constant).
pub fn lambda_copeland(gamma: f64, rho: f64) -> usize {
    assert!(gamma > 0.0, "gamma must be positive");
    assert!((0.0..1.0).contains(&rho), "rho must be in [0, 1)");
    ((1.0 / (1.0 - rho)).ln() / (2.0 * gamma * gamma)).ceil() as usize
}

/// Configuration for the `γ*` estimation heuristic (§V-C).
#[derive(Debug, Clone)]
pub struct GammaConfig {
    /// Walks per node for the pilot estimates; the paper suggests the
    /// Theorem 10 count `ln(2/(1−ρ)) / (2δ²)`.
    pub alpha: usize,
    /// Seed budget `k` the final selection will use (γ* minimizes over
    /// seed sets of size ≤ k).
    pub k: usize,
    /// Lower clamp on γ̂: tiny gaps would demand astronomically many
    /// walks, so estimates are floored here (making those users' rank
    /// estimates best-effort — they are the coin-flip users anyway).
    pub floor: f64,
    /// RNG seed for the pilot walks.
    pub seed: u64,
}

impl Default for GammaConfig {
    fn default() -> Self {
        GammaConfig {
            alpha: lambda_cumulative(0.1, 0.9),
            k: 10,
            floor: 0.05,
            seed: 0x00C0_FFEE,
        }
    }
}

/// Estimates `γ*_v = min_{|S| ≤ k} γ_v[S]` (Eq. 33) for every user.
///
/// `γ_v[S] = min_{p ≠ q} |b_pv^{(t)} − b̂_qv^{(t)}[S]|` couples the walk
/// count to how close the race is at user `v`. Minimizing over all seed
/// sets exactly is infeasible, so — following the paper's greedy
/// heuristic — we grow one greedy seed sequence (the nodes that move the
/// estimates the most, i.e. maximal estimated cumulative gain), track the
/// minimum γ̂_v observed at any prefix of it, and clamp at `floor`.
///
/// `non_target_rows` are the *exact* horizon-`t` opinions of every other
/// candidate (they do not depend on the target's seeds).
pub fn estimate_gamma_star(
    graph: &SocialGraph,
    stubbornness: &[f64],
    b0_target: &[f64],
    non_target_rows: &[&[f64]],
    t: usize,
    cfg: &GammaConfig,
) -> Vec<f64> {
    let n = graph.num_nodes();
    let gen = WalkGenerator::new(graph, stubbornness, t);
    let arena = gen.generate_per_node(&Lambda::Uniform(cfg.alpha.max(1)), cfg.seed);
    let mut est = OpinionEstimator::new(&arena, b0_target);

    let gap = |v: Node, estimate: f64| -> f64 {
        non_target_rows
            .iter()
            .map(|row| (row[v as usize] - estimate).abs())
            .fold(f64::INFINITY, f64::min)
    };

    let mut gamma: Vec<f64> = (0..n as Node).map(|v| gap(v, est.estimate(v))).collect();
    for _ in 0..cfg.k {
        let gains = est.cumulative_gains();
        let Some((best, best_gain)) = gains
            .iter()
            .copied()
            .enumerate()
            .filter(|(v, _)| !est.is_seed(*v as Node))
            // `total_cmp`: total order even for NaN gains (degenerate
            // estimates order deterministically instead of panicking).
            .max_by(|a, b| a.1.total_cmp(&b.1))
        else {
            break;
        };
        if best_gain <= 0.0 {
            break;
        }
        let touched = est.add_seed(best as Node);
        for v in touched {
            let g = gap(v, est.estimate(v));
            if g < gamma[v as usize] {
                gamma[v as usize] = g;
            }
        }
    }
    for g in &mut gamma {
        if !g.is_finite() || *g < cfg.floor {
            *g = cfg.floor;
        }
    }
    gamma
}

/// Converts per-node γ estimates into per-node walk counts via the
/// Theorem 11/12 bounds, capped at `max_lambda` to bound memory.
pub fn lambda_from_gammas(gammas: &[f64], rho: f64, copeland: bool, max_lambda: usize) -> Lambda {
    let counts: Vec<u32> = gammas
        .iter()
        .map(|&g| {
            let l = if copeland {
                lambda_copeland(g, rho)
            } else {
                lambda_rank(g, rho)
            };
            l.min(max_lambda) as u32
        })
        .collect();
    Lambda::PerNode(counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vom_graph::builder::graph_from_edges;

    #[test]
    fn theorem10_bound_matches_formula() {
        // δ = 0.1, ρ = 0.9: ln(20) / 0.02 ≈ 149.8 -> 150.
        assert_eq!(lambda_cumulative(0.1, 0.9), 150);
        // Tighter δ needs quadratically more walks.
        assert_eq!(lambda_cumulative(0.05, 0.9), 600);
    }

    #[test]
    fn copeland_bound_is_smaller() {
        assert!(lambda_copeland(0.1, 0.9) < lambda_rank(0.1, 0.9));
        assert_eq!(lambda_copeland(0.1, 0.9), 116); // ln(10)/0.02 ≈ 115.13
    }

    #[test]
    fn bounds_increase_with_rho() {
        assert!(lambda_cumulative(0.1, 0.95) > lambda_cumulative(0.1, 0.75));
    }

    #[test]
    #[should_panic(expected = "delta must be positive")]
    fn zero_delta_rejected() {
        lambda_cumulative(0.0, 0.9);
    }

    #[test]
    fn gamma_star_is_floored_and_not_above_initial_gap() {
        let g = graph_from_edges(4, &[(0, 2, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap();
        let d = vec![0.0, 0.0, 0.5, 0.5];
        let b0 = vec![0.40, 0.80, 0.60, 0.90];
        let c2 = vec![0.35, 0.75, 0.78, 0.90];
        let cfg = GammaConfig {
            alpha: 2000,
            k: 2,
            floor: 0.02,
            seed: 7,
        };
        let gamma = estimate_gamma_star(&g, &d, &b0, &[&c2], 1, &cfg);
        assert_eq!(gamma.len(), 4);
        for &g in &gamma {
            assert!(g >= 0.02 - 1e-12);
        }
        // Node 0's seedless gap is |0.35 - 0.40| = 0.05 and cannot grow.
        assert!(gamma[0] <= 0.06, "gamma[0] = {}", gamma[0]);
    }

    #[test]
    fn lambda_from_gammas_caps() {
        let l = lambda_from_gammas(&[0.001, 0.5], 0.9, false, 1000);
        match l {
            Lambda::PerNode(v) => {
                assert_eq!(v[0], 1000, "tiny gamma capped");
                assert!(v[1] < 10);
            }
            _ => panic!("expected per-node lambda"),
        }
    }
}
