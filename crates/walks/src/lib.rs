#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # vom-walks
//!
//! Reverse random-walk estimation of FJ opinions (§V of the paper).
//!
//! A *t-step reverse random walk* from `u` moves along **incoming** edges
//! (the out-edges of the reverse graph): at node `v` it terminates with
//! probability `d_v` (the stubbornness), otherwise it moves to in-neighbor
//! `y` with probability `w_yv`. The initial opinion of the walk's end node
//! is an unbiased estimate of `b_qu^{(t)}` (Theorem 8), and truncating
//! *seedless* walks at the first occurrence of a seed yields an unbiased
//! estimate of `b_qu^{(t)}[S]` for any seed set `S` (Theorem 9) — this
//! **post-generation truncation** is what lets the greedy algorithm reuse
//! one batch of walks across all `k` iterations.
//!
//! Components:
//!
//! * [`WalkArena`] — flat storage for millions of short walks;
//! * [`WalkGenerator`] — deterministic (seeded), parallel walk generation:
//!   per-node batches (RW, Algorithm 4), arbitrary start lists (sketches,
//!   Algorithm 5) and seed-aware *Direct Generation* (used as the ablation
//!   baseline for truncation);
//! * [`Truncation`] — incremental first-seed-occurrence truncation with a
//!   per-(walk, node) first-occurrence index;
//! * [`OpinionEstimator`] — per-start-node opinion estimates plus the
//!   marginal-gain scans the greedy selectors consume;
//! * [`lambda`] — the walk-count bounds of Theorems 10–12 and the `γ*`
//!   heuristic of Eq. 33.
//!
//! # Example
//!
//! Estimates converge to the exact `t = 1` opinions of the running
//! example, and post-generation truncation applies a seed without
//! regenerating a single walk:
//!
//! ```
//! use vom_graph::builder::graph_from_edges;
//! use vom_walks::{Lambda, OpinionEstimator, WalkGenerator};
//!
//! let g = graph_from_edges(4, &[(0, 2, 1.0), (1, 2, 1.0), (2, 3, 1.0)])?;
//! let d = [0.0, 0.0, 0.5, 0.5];
//! let gen = WalkGenerator::new(&g, &d, 1);
//! let arena = gen.generate_per_node(&Lambda::Uniform(20_000), 7);
//!
//! let mut est = OpinionEstimator::new(&arena, &[0.40, 0.80, 0.60, 0.90]);
//! assert!((est.estimate(3) - 0.75).abs() < 0.02); // exact: 0.75
//!
//! est.add_seed(0); // truncation, not regeneration
//! assert_eq!(est.estimate(0), 1.0);
//! assert!((est.estimate(2) - 0.75).abs() < 0.02); // exact b_3[{1}] = 0.75
//! # Ok::<(), vom_graph::GraphError>(())
//! ```

pub mod arena;
pub mod estimator;
pub mod generator;
pub mod lambda;
pub mod truncation;

pub use arena::{WalkArena, WalkArenaBuilder};
pub use estimator::{DeltaScratch, OpinionEstimator};
pub use generator::{Lambda, WalkGenerator};
pub use truncation::Truncation;

/// Mixes a base seed with a stream index into an independent RNG seed
/// (SplitMix64 finalizer). Used to give every node/walk its own
/// deterministic random stream regardless of thread scheduling.
#[inline]
pub fn mix_seed(base: u64, stream: u64) -> u64 {
    let mut z = base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_seed_is_deterministic_and_spreads() {
        assert_eq!(mix_seed(42, 1), mix_seed(42, 1));
        assert_ne!(mix_seed(42, 1), mix_seed(42, 2));
        assert_ne!(mix_seed(42, 1), mix_seed(43, 1));
    }
}
