//! Flat storage for reverse random walks.

use vom_graph::Node;
use vom_persist::FlatBuf;

/// An arena of walks, each a short sequence of node ids.
///
/// Walks are stored back-to-back in one `Vec<Node>` with an offsets array —
/// the paper's sketches "are walks, which are simpler and less memory
/// consuming" than RR-set trees (§VI), and this layout keeps them that way
/// (8 + 4·len bytes per walk amortized, no per-walk allocation).
///
/// When built by per-node generation ([`crate::WalkGenerator`]), the arena
/// also records *start groups*: walk indices `group_range(v)` all start at
/// node `v`.
///
/// Equality is structural (same walks in the same order with the same
/// groups) — the cross-thread determinism suite compares arenas built
/// under different `VOM_THREADS` settings with `==`.
/// The three flat arrays live in [`FlatBuf`]s so a snapshot load
/// (`vom-persist`) can borrow them zero-copy from the mapped file region;
/// a fresh build owns them as plain `Vec`s. Either way the arena is
/// immutable once constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalkArena {
    nodes: FlatBuf<Node>,
    offsets: FlatBuf<usize>,
    groups: Option<FlatBuf<usize>>,
}

impl WalkArena {
    pub(crate) fn new(nodes: Vec<Node>, offsets: Vec<usize>, groups: Option<Vec<usize>>) -> Self {
        Self::from_parts(nodes.into(), offsets.into(), groups.map(FlatBuf::from))
            .expect("builder invariants hold")
    }

    /// Reassembles an arena from flat buffers (a fresh build or a
    /// snapshot load); validates the offsets invariant the accessors
    /// index by, so a corrupt-but-digest-valid snapshot cannot panic
    /// later.
    pub fn from_parts(
        nodes: FlatBuf<Node>,
        offsets: FlatBuf<usize>,
        groups: Option<FlatBuf<usize>>,
    ) -> Result<Self, &'static str> {
        if offsets.is_empty() {
            return Err("offsets must carry a leading 0");
        }
        if offsets[0] != 0 || *offsets.last().unwrap() != nodes.len() {
            return Err("offsets must span exactly the node array");
        }
        if offsets.windows(2).any(|w| w[1] <= w[0]) {
            return Err("walks must be non-empty and offsets increasing");
        }
        if let Some(g) = &groups {
            let walks = offsets.len() - 1;
            if g.is_empty() || g[0] != 0 || *g.last().unwrap() != walks {
                return Err("groups must span exactly the walk list");
            }
            if g.windows(2).any(|w| w[1] < w[0]) {
                return Err("group offsets must be non-decreasing");
            }
        }
        Ok(WalkArena {
            nodes,
            offsets,
            groups,
        })
    }

    /// The flat arrays `(nodes, offsets, groups)` — the exact buffers a
    /// snapshot writer serializes verbatim.
    pub fn parts(&self) -> (&[Node], &[usize], Option<&[usize]>) {
        (&self.nodes, &self.offsets, self.groups.as_deref())
    }

    /// Number of walks stored.
    #[inline]
    pub fn num_walks(&self) -> usize {
        self.offsets.len() - 1
    }

    /// The node sequence of walk `i` (never empty; position 0 is the
    /// start node).
    #[inline]
    pub fn walk(&self, i: usize) -> &[Node] {
        &self.nodes[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Start node of walk `i`.
    #[inline]
    pub fn start(&self, i: usize) -> Node {
        self.nodes[self.offsets[i]]
    }

    /// Iterates all walks.
    pub fn walks(&self) -> impl Iterator<Item = &[Node]> {
        (0..self.num_walks()).map(move |i| self.walk(i))
    }

    /// Total stored node occurrences (the `Σ_v λ_v · len` factor in the
    /// paper's complexity analysis).
    #[inline]
    pub fn total_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// For per-node arenas: the contiguous range of walk indices starting
    /// at node `v`. `None` when the arena was built from an explicit start
    /// list (sketches).
    pub fn group_range(&self, v: Node) -> Option<std::ops::Range<usize>> {
        self.groups
            .as_ref()
            .map(|g| g[v as usize]..g[v as usize + 1])
    }

    /// Whether the arena records per-node start groups.
    pub fn has_groups(&self) -> bool {
        self.groups.is_some()
    }

    /// Number of start-group slots (`n` for per-node arenas).
    pub fn num_groups(&self) -> Option<usize> {
        self.groups.as_ref().map(|g| g.len() - 1)
    }

    /// Exact owned heap footprint in bytes (reported by the Figure 17
    /// memory experiment and the scale-stress workload): full `Vec`
    /// **capacity** for owned buffers — slack is resident memory and must
    /// be visible — and zero for zero-copy snapshot borrows.
    pub fn heap_bytes(&self) -> usize {
        self.nodes.heap_bytes()
            + self.offsets.heap_bytes()
            + self.groups.as_ref().map_or(0, FlatBuf::heap_bytes)
    }
}

/// Incremental builder used by the generators.
#[derive(Debug)]
pub struct WalkArenaBuilder {
    nodes: Vec<Node>,
    offsets: Vec<usize>,
}

impl Default for WalkArenaBuilder {
    /// An empty builder, equivalent to `with_capacity(0, 0)`. The
    /// offsets array must carry its leading 0 even when empty —
    /// `num_walks()` and `append` both rely on it — so this cannot be
    /// a derived field-wise default.
    fn default() -> Self {
        WalkArenaBuilder::with_capacity(0, 0)
    }
}

impl WalkArenaBuilder {
    /// Creates a builder, reserving for `walks_hint` walks of
    /// `len_hint` average length.
    pub fn with_capacity(walks_hint: usize, len_hint: usize) -> Self {
        let mut offsets = Vec::with_capacity(walks_hint + 1);
        offsets.push(0);
        WalkArenaBuilder {
            nodes: Vec::with_capacity(walks_hint * len_hint),
            offsets,
        }
    }

    /// Appends one node to the walk under construction.
    #[inline]
    pub fn push_node(&mut self, v: Node) {
        self.nodes.push(v);
    }

    /// Finishes the walk under construction.
    #[inline]
    pub fn finish_walk(&mut self) {
        debug_assert!(
            self.nodes.len() > *self.offsets.last().unwrap(),
            "a walk must contain at least its start node"
        );
        self.offsets.push(self.nodes.len());
    }

    /// Number of finished walks.
    pub fn num_walks(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Appends all walks from another builder (used to merge per-thread
    /// shards in deterministic order).
    pub fn append(&mut self, other: WalkArenaBuilder) {
        let base = self.nodes.len();
        self.nodes.extend_from_slice(&other.nodes);
        self.offsets
            .extend(other.offsets.iter().skip(1).map(|o| o + base));
    }

    /// Finalizes into an arena with optional start groups. The capacity
    /// hints over-reserve (walk lengths are random), so the buffers are
    /// shrunk to fit here — the arena is immutable from now on and its
    /// `heap_bytes` accounting charges capacity, not length.
    pub fn build(mut self, groups: Option<Vec<usize>>) -> WalkArena {
        self.nodes.shrink_to_fit();
        self.offsets.shrink_to_fit();
        WalkArena::new(self.nodes, self.offsets, groups)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> WalkArena {
        let mut b = WalkArenaBuilder::with_capacity(3, 2);
        b.push_node(0);
        b.push_node(2);
        b.finish_walk();
        b.push_node(1);
        b.finish_walk();
        b.push_node(2);
        b.push_node(0);
        b.push_node(1);
        b.finish_walk();
        b.build(None)
    }

    #[test]
    fn builder_roundtrip() {
        let a = sample();
        assert_eq!(a.num_walks(), 3);
        assert_eq!(a.walk(0), &[0, 2]);
        assert_eq!(a.walk(1), &[1]);
        assert_eq!(a.walk(2), &[2, 0, 1]);
        assert_eq!(a.start(2), 2);
        assert_eq!(a.total_nodes(), 6);
        assert!(!a.has_groups());
        assert!(a.group_range(0).is_none());
    }

    #[test]
    fn walks_iterator_matches_indexing() {
        let a = sample();
        let collected: Vec<_> = a.walks().collect();
        assert_eq!(collected.len(), 3);
        assert_eq!(collected[2], a.walk(2));
    }

    #[test]
    fn append_preserves_order_and_offsets() {
        let mut left = WalkArenaBuilder::with_capacity(1, 1);
        left.push_node(5);
        left.finish_walk();
        let mut right = WalkArenaBuilder::with_capacity(1, 2);
        right.push_node(6);
        right.push_node(7);
        right.finish_walk();
        left.append(right);
        let a = left.build(None);
        assert_eq!(a.num_walks(), 2);
        assert_eq!(a.walk(0), &[5]);
        assert_eq!(a.walk(1), &[6, 7]);
    }

    #[test]
    fn groups_expose_ranges() {
        let mut b = WalkArenaBuilder::with_capacity(3, 1);
        for v in [0, 0, 1] {
            b.push_node(v);
            b.finish_walk();
        }
        // Node 0 owns walks 0..2, node 1 owns 2..3.
        let a = b.build(Some(vec![0, 2, 3]));
        assert!(a.has_groups());
        assert_eq!(a.num_groups(), Some(2));
        assert_eq!(a.group_range(0), Some(0..2));
        assert_eq!(a.group_range(1), Some(2..3));
    }

    #[test]
    fn heap_bytes_is_capacity_exact() {
        // A built arena owns shrunk-to-fit buffers: the accounting must
        // equal the exact capacity-based formula, not a length estimate.
        let a = sample();
        let (nodes, offsets, _) = a.parts();
        assert_eq!(
            a.heap_bytes(),
            std::mem::size_of_val(nodes) + std::mem::size_of_val(offsets)
        );

        // Owned buffers with deliberate slack: capacity counts, len does
        // not.
        let mut nodes = Vec::with_capacity(64);
        nodes.extend_from_slice(&[0 as Node, 1]);
        let node_cap = nodes.capacity();
        let slack = WalkArena::from_parts(nodes.into(), vec![0usize, 2].into(), None).unwrap();
        assert_eq!(
            slack.heap_bytes(),
            node_cap * std::mem::size_of::<Node>() + 2 * std::mem::size_of::<usize>()
        );

        // Static (zero-copy loaded) buffers own no heap at all.
        static NODES: [Node; 2] = [0, 1];
        static OFFSETS: [usize; 2] = [0, 2];
        let mapped =
            WalkArena::from_parts(FlatBuf::Static(&NODES), FlatBuf::Static(&OFFSETS), None)
                .unwrap();
        assert_eq!(mapped.heap_bytes(), 0);
    }
}
