//! The five voting-based scoring functions (§II-B).

use crate::rank::beta;
use std::fmt;
use vom_diffusion::OpinionMatrix;
use vom_graph::{Candidate, Node};

/// Errors for score configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum ScoreError {
    /// `p` must satisfy `1 <= p <= r`.
    InvalidP {
        /// The supplied `p`.
        p: usize,
        /// Number of candidates.
        r: usize,
    },
    /// Position weights must have length `r`, lie in `[0, 1]` and be
    /// non-increasing.
    InvalidPositionWeights(String),
}

impl fmt::Display for ScoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScoreError::InvalidP { p, r } => {
                write!(f, "p = {p} must be in [1, {r}]")
            }
            ScoreError::InvalidPositionWeights(msg) => {
                write!(f, "invalid position weights: {msg}")
            }
        }
    }
}

impl std::error::Error for ScoreError {}

/// A voting-based scoring function `F(B^(t), c_q)`.
///
/// All five are non-negative and non-decreasing in the target's seed set;
/// only the cumulative score is submodular (Table II), which is why the
/// others go through sandwich approximation in `vom-core`.
#[derive(Debug, Clone, PartialEq)]
pub enum ScoringFunction {
    /// `Σ_v b_qv` (Eq. 3).
    Cumulative,
    /// Number of users ranking `c_q` strictly first (Eq. 4).
    Plurality,
    /// Number of users ranking `c_q` within the top `p` (Eq. 5).
    PApproval {
        /// Approval depth, `1 <= p <= r`.
        p: usize,
    },
    /// Position-weighted approval (Eq. 6): user at rank `i <= p`
    /// contributes `ω[i]`.
    PositionalPApproval {
        /// Approval depth, `1 <= p <= r`.
        p: usize,
        /// `ω[1..=r]` stored 0-indexed: `weights[i]` is `ω[i+1]`. Must be
        /// in `[0, 1]` and non-increasing.
        weights: Vec<f64>,
    },
    /// Number of one-on-one competitions won (Eq. 7).
    Copeland,
}

impl ScoringFunction {
    /// The **Borda count**, expressed in the paper's own score family:
    /// positional-`r`-approval with weights `ω[i] = (r − i)/(r − 1)`.
    /// Rank `i` earns `(r − i)/(r − 1)`, so the score equals the classic
    /// Borda count scaled by `1/(r − 1)` (`vom_voting::ext::ExtendedRule::Borda`
    /// holds the unscaled version) — the scaling keeps `ω ∈ [0, 1]` as
    /// Eq. 6 requires and changes no argmax.
    ///
    /// Because this *is* a positional-p-approval instance, Borda seed
    /// selection inherits the paper's full machinery: the sandwich
    /// bounds of §IV-B and the RW/RS estimator guarantees
    /// (Theorems 11 and 14) apply verbatim.
    pub fn borda(r: usize) -> Self {
        assert!(r >= 2, "Borda needs at least two candidates");
        ScoringFunction::PositionalPApproval {
            p: r,
            weights: (1..=r).map(|i| (r - i) as f64 / (r - 1) as f64).collect(),
        }
    }

    /// The **veto** (anti-plurality) rule, expressed in the paper's own
    /// score family: `(r − 1)`-approval — one point per user who does
    /// not rank the candidate strictly last. Same estimator guarantees
    /// as any p-approval instance.
    pub fn veto(r: usize) -> Self {
        assert!(r >= 2, "veto needs at least two candidates");
        ScoringFunction::PApproval { p: r - 1 }
    }

    /// Validates the configuration against `r` candidates.
    pub fn validate(&self, r: usize) -> Result<(), ScoreError> {
        match self {
            ScoringFunction::Cumulative
            | ScoringFunction::Plurality
            | ScoringFunction::Copeland => Ok(()),
            ScoringFunction::PApproval { p } => {
                if *p >= 1 && *p <= r {
                    Ok(())
                } else {
                    Err(ScoreError::InvalidP { p: *p, r })
                }
            }
            ScoringFunction::PositionalPApproval { p, weights } => {
                if !(*p >= 1 && *p <= r) {
                    return Err(ScoreError::InvalidP { p: *p, r });
                }
                if weights.len() != r {
                    return Err(ScoreError::InvalidPositionWeights(format!(
                        "expected {r} weights, got {}",
                        weights.len()
                    )));
                }
                for w in weights {
                    if !(0.0..=1.0).contains(w) {
                        return Err(ScoreError::InvalidPositionWeights(format!(
                            "weight {w} outside [0, 1]"
                        )));
                    }
                }
                if weights.windows(2).any(|w| w[1] > w[0]) {
                    return Err(ScoreError::InvalidPositionWeights(
                        "weights must be non-increasing".into(),
                    ));
                }
                Ok(())
            }
        }
    }

    /// Human-readable name (matches the paper's terminology).
    pub fn name(&self) -> &'static str {
        match self {
            ScoringFunction::Cumulative => "cumulative",
            ScoringFunction::Plurality => "plurality",
            ScoringFunction::PApproval { .. } => "p-approval",
            ScoringFunction::PositionalPApproval { .. } => "positional-p-approval",
            ScoringFunction::Copeland => "copeland",
        }
    }

    /// Whether the score is submodular in the seed set (Table II).
    pub fn is_submodular(&self) -> bool {
        matches!(self, ScoringFunction::Cumulative)
    }

    /// The approval depth `p`, if the score is rank-threshold based.
    pub fn approval_depth(&self) -> Option<usize> {
        match self {
            ScoringFunction::Plurality => Some(1),
            ScoringFunction::PApproval { p } => Some(*p),
            ScoringFunction::PositionalPApproval { p, .. } => Some(*p),
            _ => None,
        }
    }

    /// The position weight `ω[rank]` (1-indexed rank). Plurality and
    /// p-approval act as positional scores with all-ones weights.
    pub fn position_weight(&self, rank: usize) -> f64 {
        match self {
            ScoringFunction::PositionalPApproval { weights, .. } => {
                weights.get(rank - 1).copied().unwrap_or(0.0)
            }
            _ => 1.0,
        }
    }

    /// Evaluates `F(B, c_q)`.
    pub fn score(&self, b: &OpinionMatrix, q: Candidate) -> f64 {
        match self {
            ScoringFunction::Cumulative => b.row(q).iter().sum(),
            ScoringFunction::Plurality => self.rank_threshold_score(b, q, 1),
            ScoringFunction::PApproval { p } => self.rank_threshold_score(b, q, *p),
            ScoringFunction::PositionalPApproval { p, .. } => self.rank_threshold_score(b, q, *p),
            ScoringFunction::Copeland => copeland_score(b, q) as f64,
        }
    }

    fn rank_threshold_score(&self, b: &OpinionMatrix, q: Candidate, p: usize) -> f64 {
        let mut total = 0.0;
        for v in 0..b.num_users() as Node {
            let rank = beta(b, q, v);
            if rank <= p {
                total += self.position_weight(rank);
            }
        }
        total
    }
}

impl fmt::Display for ScoringFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScoringFunction::PApproval { p } => write!(f, "{p}-approval"),
            ScoringFunction::PositionalPApproval { p, .. } => {
                write!(f, "positional-{p}-approval")
            }
            other => f.write_str(other.name()),
        }
    }
}

/// The Copeland score as an integer: `|{c_p : c_q ≻_M c_p}|` where
/// `c_q ≻_M c_x` iff strictly more users hold `b_qv > b_xv` than
/// `b_qv < b_xv` (Eq. 7).
pub fn copeland_score(b: &OpinionMatrix, q: Candidate) -> usize {
    let row_q = b.row(q);
    let mut wins = 0;
    for x in 0..b.num_candidates() {
        if x == q {
            continue;
        }
        let row_x = b.row(x);
        let mut above = 0i64;
        for (bq, bx) in row_q.iter().zip(row_x) {
            if bq > bx {
                above += 1;
            } else if bq < bx {
                above -= 1;
            }
        }
        if above > 0 {
            wins += 1;
        }
    }
    wins
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Table I at t = 1 with no seeds: c1 row {} and the stated c2 row.
    fn table1_no_seed() -> OpinionMatrix {
        OpinionMatrix::from_rows(vec![
            vec![0.40, 0.80, 0.60, 0.75],
            vec![0.35, 0.75, 0.78, 0.90],
        ])
        .unwrap()
    }

    #[test]
    fn table1_scores_no_seed() {
        let b = table1_no_seed();
        assert!((ScoringFunction::Cumulative.score(&b, 0) - 2.55).abs() < 1e-12);
        assert_eq!(ScoringFunction::Plurality.score(&b, 0), 2.0);
        assert_eq!(ScoringFunction::Copeland.score(&b, 0), 0.0);
    }

    #[test]
    fn table1_scores_seed3() {
        // Seed {3} (paper's 1-indexed user 3 = our node 2).
        let b = OpinionMatrix::from_rows(vec![
            vec![0.40, 0.80, 1.00, 0.95],
            vec![0.35, 0.75, 0.78, 0.90],
        ])
        .unwrap();
        assert!((ScoringFunction::Cumulative.score(&b, 0) - 3.15).abs() < 1e-12);
        assert_eq!(ScoringFunction::Plurality.score(&b, 0), 4.0);
        assert_eq!(ScoringFunction::Copeland.score(&b, 0), 1.0);
    }

    #[test]
    fn plurality_equals_one_approval() {
        let b = table1_no_seed();
        for q in 0..2 {
            assert_eq!(
                ScoringFunction::Plurality.score(&b, q),
                ScoringFunction::PApproval { p: 1 }.score(&b, q)
            );
        }
    }

    #[test]
    fn p_approval_equals_positional_with_unit_weights() {
        let b = table1_no_seed();
        let pos = ScoringFunction::PositionalPApproval {
            p: 2,
            weights: vec![1.0, 1.0],
        };
        for q in 0..2 {
            assert_eq!(
                ScoringFunction::PApproval { p: 2 }.score(&b, q),
                pos.score(&b, q)
            );
        }
    }

    #[test]
    fn r_approval_counts_everyone() {
        let b = table1_no_seed();
        assert_eq!(ScoringFunction::PApproval { p: 2 }.score(&b, 0), 4.0);
    }

    #[test]
    fn positional_weights_scale_contributions() {
        let b = table1_no_seed();
        let s = ScoringFunction::PositionalPApproval {
            p: 2,
            weights: vec![1.0, 0.5],
        }
        .score(&b, 0);
        // Users 0, 1 rank c1 first (weight 1); users 2, 3 rank it second
        // (weight 0.5): total 2 + 1 = 3.
        assert_eq!(s, 3.0);
    }

    #[test]
    fn ties_give_no_plurality_credit() {
        let b = OpinionMatrix::from_rows(vec![vec![0.5, 0.7], vec![0.5, 0.2]]).unwrap();
        // User 0 ties: neither candidate is strictly first for them.
        assert_eq!(ScoringFunction::Plurality.score(&b, 0), 1.0);
        assert_eq!(ScoringFunction::Plurality.score(&b, 1), 0.0);
    }

    #[test]
    fn copeland_with_three_candidates() {
        // c0 beats c1 (2-1) and c2 (2-1): Condorcet winner, score 2.
        let b = OpinionMatrix::from_rows(vec![
            vec![0.9, 0.9, 0.1],
            vec![0.5, 0.1, 0.9],
            vec![0.1, 0.5, 0.95],
        ])
        .unwrap();
        assert_eq!(copeland_score(&b, 0), 2);
        assert_eq!(copeland_score(&b, 1), 0);
        assert_eq!(copeland_score(&b, 2), 1);
    }

    #[test]
    fn copeland_tie_is_not_a_win() {
        let b = OpinionMatrix::from_rows(vec![vec![0.9, 0.1], vec![0.1, 0.9]]).unwrap();
        assert_eq!(copeland_score(&b, 0), 0);
        assert_eq!(copeland_score(&b, 1), 0);
    }

    #[test]
    fn validation_rules() {
        assert!(ScoringFunction::PApproval { p: 0 }.validate(3).is_err());
        assert!(ScoringFunction::PApproval { p: 4 }.validate(3).is_err());
        assert!(ScoringFunction::PApproval { p: 3 }.validate(3).is_ok());
        let bad_len = ScoringFunction::PositionalPApproval {
            p: 1,
            weights: vec![1.0],
        };
        assert!(bad_len.validate(2).is_err());
        let increasing = ScoringFunction::PositionalPApproval {
            p: 2,
            weights: vec![0.5, 1.0],
        };
        assert!(increasing.validate(2).is_err());
        let out_of_range = ScoringFunction::PositionalPApproval {
            p: 2,
            weights: vec![1.5, 0.5],
        };
        assert!(out_of_range.validate(2).is_err());
        let ok = ScoringFunction::PositionalPApproval {
            p: 2,
            weights: vec![1.0, 0.5],
        };
        assert!(ok.validate(2).is_ok());
        assert!(ScoringFunction::Copeland.validate(2).is_ok());
    }

    #[test]
    fn names_and_submodularity_flags() {
        assert!(ScoringFunction::Cumulative.is_submodular());
        assert!(!ScoringFunction::Plurality.is_submodular());
        assert!(!ScoringFunction::Copeland.is_submodular());
        assert_eq!(
            ScoringFunction::PApproval { p: 2 }.to_string(),
            "2-approval"
        );
        assert_eq!(
            ScoringFunction::PositionalPApproval {
                p: 3,
                weights: vec![1.0, 1.0, 0.5]
            }
            .to_string(),
            "positional-3-approval"
        );
        assert_eq!(ScoringFunction::Cumulative.to_string(), "cumulative");
    }

    #[test]
    fn approval_depths() {
        assert_eq!(ScoringFunction::Plurality.approval_depth(), Some(1));
        assert_eq!(
            ScoringFunction::PApproval { p: 3 }.approval_depth(),
            Some(3)
        );
        assert_eq!(ScoringFunction::Cumulative.approval_depth(), None);
        assert_eq!(ScoringFunction::Copeland.approval_depth(), None);
    }
}
