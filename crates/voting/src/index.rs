//! Rank-indexed competitor opinions and delta-driven score accumulators.
//!
//! The rank `β(b_qv) = 1 + |{x ≠ q : b_xv ≥ b_qv}|` is the inner loop of
//! every competitive score evaluation: the naive [`crate::rank::beta_with_target`]
//! scans all `r − 1` competitor opinions per call, which turns one greedy
//! candidate evaluation into an `O(n·r)` pass. Since the competitor
//! opinions at the horizon are *fixed* while a selection runs (only the
//! target's opinions move with the seed set), they can be sorted once per
//! user — after which a rank is one `O(log r)` binary search, and a
//! score update for one user is a constant-size recomputation instead of
//! a matrix scan.
//!
//! * [`RankIndex`] — the per-user sorted competitor opinions (built once
//!   from the exact non-target opinion matrix, shared read-only by any
//!   number of concurrent queries);
//! * [`PositionalAccumulator`] — the current per-user values and
//!   positional contributions of a plurality / p-approval /
//!   positional-p-approval score, updated per changed user in
//!   `O(log r)`;
//! * [`CopelandAccumulator`] — the per-opponent pairwise nets of the
//!   Copeland score as exact integers, updated per changed user in
//!   `O(log r + crossed)` where `crossed` counts the competitor opinions
//!   the user's new value moved past.
//!
//! Both accumulators reproduce the from-scratch evaluations bit for bit:
//! ranks are exact integer counts (a binary search counts the same set a
//! linear scan does), positional contributions are the same
//! `ω[β]·1[β ≤ p]` lookups, and the Copeland nets are integer sums the
//! way [`crate::score::copeland_score`] computes them. The property
//! suite in `tests/properties_voting_index.rs` asserts this equivalence
//! on random opinion matrices and arbitrary update sequences.

use crate::rank::beta_with_target;
use crate::score::ScoringFunction;
use vom_diffusion::OpinionMatrix;
use vom_graph::{Candidate, Node};
use vom_persist::FlatBuf;

/// Per-user competitor opinions, sorted ascending — the index behind
/// `O(log r)` rank queries.
///
/// Built from the exact non-target opinion matrix for one target
/// candidate `q` (the target's own row is ignored, as in
/// [`beta_with_target`]). Immutable after construction; the prepared
/// engines cache one per index and share it across query sessions.
#[derive(Debug, Clone)]
pub struct RankIndex {
    q: Candidate,
    r: usize,
    n: usize,
    /// `r − 1` competitor opinions per user, ascending; user `v`'s slice
    /// is `values[v·(r−1) .. (v+1)·(r−1)]`. Held in a [`FlatBuf`] so a
    /// snapshot load can borrow the array zero-copy.
    values: FlatBuf<f64>,
    /// The competitor candidate owning each sorted value (parallel to
    /// `values`) — what the Copeland accumulator needs to know *which*
    /// duel a crossed value belongs to.
    owners: FlatBuf<Candidate>,
}

impl RankIndex {
    /// Builds the index for target `q` from the exact opinions of all
    /// candidates (the row of `q` itself is skipped, so the usual
    /// zeroed-target-row convention of `non_target_opinions` is fine).
    pub fn build(others: &OpinionMatrix, q: Candidate) -> RankIndex {
        let r = others.num_candidates();
        let n = others.num_users();
        let width = r.saturating_sub(1);
        let mut values = Vec::with_capacity(n * width);
        let mut owners = Vec::with_capacity(n * width);
        let mut scratch: Vec<(f64, Candidate)> = Vec::with_capacity(width);
        for v in 0..n as Node {
            scratch.clear();
            for x in 0..r {
                if x != q {
                    scratch.push((others.get(x, v), x));
                }
            }
            // Ties break by candidate id so the layout is deterministic;
            // rank counts are insensitive to the tie order.
            scratch.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
            for &(val, x) in &scratch {
                values.push(val);
                owners.push(x);
            }
        }
        RankIndex {
            q,
            r,
            n,
            values: values.into(),
            owners: owners.into(),
        }
    }

    /// Reassembles an index from its persisted arrays (snapshot load).
    /// Validates shape and per-user sort order, so a corrupt snapshot
    /// fails closed instead of silently mis-ranking.
    pub fn from_parts(
        q: Candidate,
        r: usize,
        n: usize,
        values: FlatBuf<f64>,
        owners: FlatBuf<Candidate>,
    ) -> Result<RankIndex, &'static str> {
        let width = r.saturating_sub(1);
        if q >= r {
            return Err("target out of range");
        }
        if values.len() != n * width || owners.len() != values.len() {
            return Err("rank-index arrays must be n·(r−1) wide");
        }
        if owners.iter().any(|&x| x >= r || x == q) {
            return Err("owner out of range");
        }
        for v in 0..n {
            let vals = &values[v * width..(v + 1) * width];
            if vals.windows(2).any(|w| w[0].total_cmp(&w[1]).is_gt()) {
                return Err("per-user values must be sorted ascending");
            }
        }
        Ok(RankIndex {
            q,
            r,
            n,
            values,
            owners,
        })
    }

    /// The persisted arrays `(values, owners)` — the exact buffers a
    /// snapshot writer serializes verbatim.
    pub fn parts(&self) -> (&[f64], &[Candidate]) {
        (&self.values, &self.owners)
    }

    /// Exact owned heap footprint in bytes: the two `n·(r−1)` arrays at
    /// full `Vec` capacity when owned, zero when borrowed zero-copy from
    /// a snapshot.
    pub fn heap_bytes(&self) -> usize {
        self.values.heap_bytes() + self.owners.heap_bytes()
    }

    /// The target candidate the index was built for.
    pub fn target(&self) -> Candidate {
        self.q
    }

    /// Number of candidates `r` (including the target).
    pub fn num_candidates(&self) -> usize {
        self.r
    }

    /// Number of users `n`.
    pub fn num_users(&self) -> usize {
        self.n
    }

    /// User `v`'s competitor opinions, ascending.
    #[inline]
    pub fn user_values(&self, v: Node) -> &[f64] {
        let w = self.r - 1;
        &self.values[v as usize * w..(v as usize + 1) * w]
    }

    /// The competitor candidates owning [`RankIndex::user_values`], in
    /// the same (sorted) order.
    #[inline]
    pub fn user_owners(&self, v: Node) -> &[Candidate] {
        let w = self.r - 1;
        &self.owners[v as usize * w..(v as usize + 1) * w]
    }

    /// The rank `β` of the target for user `v` if the target's opinion
    /// were `value`: `1 + |{x ≠ q : b_xv ≥ value}|`, exactly as
    /// [`beta_with_target`] counts it, in `O(log r)`.
    #[inline]
    pub fn rank(&self, v: Node, value: f64) -> usize {
        let vals = self.user_values(v);
        // Competitors `< value` sit left of the partition point; the
        // rest (`≥ value`, ties counting against the target) outrank.
        1 + (vals.len() - vals.partition_point(|&x| x < value))
    }

    /// One user's positional contribution `ω[β]·1[β ≤ p]` at a
    /// hypothetical target opinion `value` (`p` is the score's approval
    /// depth). `O(log r)`.
    #[inline]
    pub fn positional_contribution(
        &self,
        score: &ScoringFunction,
        p: usize,
        v: Node,
        value: f64,
    ) -> f64 {
        let rank = self.rank(v, value);
        if rank <= p {
            score.position_weight(rank)
        } else {
            0.0
        }
    }

    /// Sanity helper for tests: the linear-scan rank of the same query.
    pub fn rank_linear(&self, others: &OpinionMatrix, v: Node, value: f64) -> usize {
        beta_with_target(others, self.q, v, value)
    }
}

/// Incremental state of a plurality-variant score: per user the current
/// target opinion, the user's weight in the estimated score, and the
/// resulting weighted positional contribution `w·ω[β]·1[β ≤ p]`.
///
/// The greedy loops keep one of these alive across iterations and only
/// touch the users whose estimates actually changed (the truncation
/// delta report), instead of re-ranking all `n` users per candidate
/// evaluation.
#[derive(Debug, Clone)]
pub struct PositionalAccumulator {
    score: ScoringFunction,
    p: usize,
    value: Vec<f64>,
    weight: Vec<f64>,
    contrib: Vec<f64>,
}

impl PositionalAccumulator {
    /// An empty accumulator (all users weight 0) for a plurality-variant
    /// score.
    ///
    /// # Panics
    /// If `score` has no approval depth (i.e. is not a plurality
    /// variant).
    pub fn new(score: &ScoringFunction, n: usize) -> PositionalAccumulator {
        let p = score
            .approval_depth()
            .expect("PositionalAccumulator requires a plurality-variant score");
        PositionalAccumulator {
            score: score.clone(),
            p,
            value: vec![0.0; n],
            weight: vec![0.0; n],
            contrib: vec![0.0; n],
        }
    }

    /// Sets user `v`'s target opinion and weight, recomputing the
    /// contribution in `O(log r)`.
    #[inline]
    pub fn set_user(&mut self, index: &RankIndex, v: Node, value: f64, weight: f64) {
        let i = v as usize;
        self.value[i] = value;
        self.weight[i] = weight;
        self.contrib[i] = weight * index.positional_contribution(&self.score, self.p, v, value);
    }

    /// The weighted contribution user `v` would make at a hypothetical
    /// target opinion `value` (no mutation, `O(log r)`).
    #[inline]
    pub fn preview(&self, index: &RankIndex, v: Node, value: f64) -> f64 {
        self.weight[v as usize] * index.positional_contribution(&self.score, self.p, v, value)
    }

    /// User `v`'s current target opinion.
    #[inline]
    pub fn value(&self, v: Node) -> f64 {
        self.value[v as usize]
    }

    /// User `v`'s weight.
    #[inline]
    pub fn weight(&self, v: Node) -> f64 {
        self.weight[v as usize]
    }

    /// User `v`'s current weighted contribution.
    #[inline]
    pub fn contribution(&self, v: Node) -> f64 {
        self.contrib[v as usize]
    }

    /// The current total score — a fresh user-order sum over the stored
    /// contributions (so callers rebuilding a baseline get the same
    /// bits a from-scratch evaluation would).
    pub fn total(&self) -> f64 {
        self.contrib.iter().sum()
    }
}

/// Incremental state of the Copeland score with **exact integer nets**:
/// for every opponent `x`, `net_x = Σ_v sign(b_qv − b_xv)` (each user
/// counts ±1, as in [`crate::score::copeland_score`] and the exact DM
/// evaluation), and the score is `|{x : net_x > 0}|`.
///
/// Updating one user costs `O(log r + crossed)`: a binary search finds
/// the competitor opinions between the old and new value, and only the
/// duels those values belong to change their net.
#[derive(Debug, Clone)]
pub struct CopelandAccumulator {
    /// Dense opponent slot per candidate id (`usize::MAX` for the target).
    slot: Vec<usize>,
    /// Opponent candidate per slot.
    opponents: Vec<Candidate>,
    nets: Vec<i64>,
    wins: usize,
    value: Vec<f64>,
}

#[inline]
fn sign(b: f64, bx: f64) -> i64 {
    if b > bx {
        1
    } else if b < bx {
        -1
    } else {
        0
    }
}

impl CopelandAccumulator {
    /// Builds the accumulator from the index and every user's current
    /// target opinion (`values.len() == n`), in `O(n·r)`.
    pub fn new(index: &RankIndex, values: &[f64]) -> CopelandAccumulator {
        assert_eq!(values.len(), index.num_users(), "one value per user");
        let r = index.num_candidates();
        let opponents: Vec<Candidate> = (0..r).filter(|&x| x != index.target()).collect();
        let mut slot = vec![usize::MAX; r];
        for (i, &x) in opponents.iter().enumerate() {
            slot[x] = i;
        }
        let mut nets = vec![0i64; opponents.len()];
        for v in 0..index.num_users() as Node {
            let b = values[v as usize];
            let owners = index.user_owners(v);
            for (&bx, &x) in index.user_values(v).iter().zip(owners) {
                nets[slot[x]] += sign(b, bx);
            }
        }
        let wins = nets.iter().filter(|&&s| s > 0).count();
        CopelandAccumulator {
            slot,
            opponents,
            nets,
            wins,
            value: values.to_vec(),
        }
    }

    /// The opponents, in duel-slot order.
    pub fn opponents(&self) -> &[Candidate] {
        &self.opponents
    }

    /// The exact integer net of duel slot `i`.
    pub fn net(&self, i: usize) -> i64 {
        self.nets[i]
    }

    /// The current Copeland score `|{x : net_x > 0}|`.
    pub fn wins(&self) -> usize {
        self.wins
    }

    /// User `v`'s current target opinion.
    #[inline]
    pub fn value(&self, v: Node) -> f64 {
        self.value[v as usize]
    }

    /// Moves user `v`'s target opinion to `new_value`, updating only the
    /// duels whose competitor opinion lies between the old and new value.
    pub fn set_value(&mut self, index: &RankIndex, v: Node, new_value: f64) {
        let old = self.value[v as usize];
        if old == new_value {
            return;
        }
        self.value[v as usize] = new_value;
        let (vals, owners) = (index.user_values(v), index.user_owners(v));
        let (lo, hi) = crossing_range(vals, old, new_value);
        for i in lo..hi {
            let change = sign(new_value, vals[i]) - sign(old, vals[i]);
            if change != 0 {
                let s = self.slot[owners[i]];
                let before = self.nets[s] > 0;
                self.nets[s] += change;
                let after = self.nets[s] > 0;
                match (before, after) {
                    (false, true) => self.wins += 1,
                    (true, false) => self.wins -= 1,
                    _ => {}
                }
            }
        }
    }

    /// The Copeland score if the users in `moves` (pairs of user and
    /// hypothetical new value) all moved, without mutating the
    /// accumulator. `scratch` carries the sparse per-duel changes and is
    /// reusable across calls.
    pub fn preview_wins(
        &self,
        index: &RankIndex,
        moves: impl Iterator<Item = (Node, f64)>,
        scratch: &mut CopelandScratch,
    ) -> usize {
        scratch.reset(self.nets.len());
        for (v, new_value) in moves {
            let old = self.value[v as usize];
            if old == new_value {
                continue;
            }
            let (vals, owners) = (index.user_values(v), index.user_owners(v));
            let (lo, hi) = crossing_range(vals, old, new_value);
            for i in lo..hi {
                let change = sign(new_value, vals[i]) - sign(old, vals[i]);
                if change != 0 {
                    let s = self.slot[owners[i]];
                    // Membership must not key off `delta[s] == 0`: a
                    // slot whose changes cancel mid-batch would be
                    // re-pushed and double-counted in the tally.
                    if !scratch.touched[s] {
                        scratch.touched[s] = true;
                        scratch.dirty.push(s);
                    }
                    scratch.delta[s] += change;
                }
            }
        }
        let mut wins = self.wins as i64;
        for &s in &scratch.dirty {
            let d = scratch.delta[s];
            if d != 0 {
                wins += i64::from(self.nets[s] + d > 0) - i64::from(self.nets[s] > 0);
            }
        }
        wins as usize
    }
}

/// Reusable sparse-change buffers for [`CopelandAccumulator::preview_wins`].
#[derive(Debug, Default)]
pub struct CopelandScratch {
    delta: Vec<i64>,
    /// Whether a slot is already in `dirty` (delta values can cancel to
    /// zero mid-batch, so membership needs its own flag).
    touched: Vec<bool>,
    dirty: Vec<usize>,
}

impl CopelandScratch {
    fn reset(&mut self, slots: usize) {
        for &s in &self.dirty {
            self.delta[s] = 0;
            self.touched[s] = false;
        }
        self.dirty.clear();
        if self.delta.len() != slots {
            self.delta.clear();
            self.delta.resize(slots, 0);
            self.touched.clear();
            self.touched.resize(slots, false);
        }
    }
}

/// The index range of sorted competitor values a move from `old` to
/// `new` can cross (inclusive of exact ties at both endpoints).
#[inline]
fn crossing_range(vals: &[f64], old: f64, new: f64) -> (usize, usize) {
    let (min, max) = if old <= new { (old, new) } else { (new, old) };
    let lo = vals.partition_point(|&x| x < min);
    let hi = vals.partition_point(|&x| x <= max);
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rank::beta_with_target;
    use crate::score::copeland_score;

    fn matrix() -> OpinionMatrix {
        OpinionMatrix::from_rows(vec![
            vec![0.40, 0.80, 0.60, 0.75],
            vec![0.35, 0.75, 0.78, 0.90],
            vec![0.50, 0.20, 0.78, 0.10],
        ])
        .unwrap()
    }

    #[test]
    fn index_rank_matches_linear_beta() {
        let b = matrix();
        for q in 0..3 {
            let idx = RankIndex::build(&b, q);
            for v in 0..4 {
                for &value in &[0.0, 0.1, 0.35, 0.5, 0.78, 0.781, 0.9, 1.0] {
                    assert_eq!(
                        idx.rank(v, value),
                        beta_with_target(&b, q, v, value),
                        "q={q} v={v} value={value}"
                    );
                }
            }
        }
    }

    #[test]
    fn index_exposes_sorted_values_with_owners() {
        let b = matrix();
        let idx = RankIndex::build(&b, 0);
        assert_eq!(idx.num_candidates(), 3);
        assert_eq!(idx.num_users(), 4);
        for v in 0..4 {
            let vals = idx.user_values(v);
            assert_eq!(vals.len(), 2);
            assert!(vals.windows(2).all(|w| w[0] <= w[1]));
            for (&val, &x) in vals.iter().zip(idx.user_owners(v)) {
                assert_eq!(val, b.get(x, v));
                assert_ne!(x, 0);
            }
        }
    }

    #[test]
    fn positional_accumulator_tracks_from_scratch_total() {
        let b = matrix();
        let idx = RankIndex::build(&b, 0);
        let score = ScoringFunction::PApproval { p: 2 };
        let mut acc = PositionalAccumulator::new(&score, 4);
        let row = [0.40, 0.80, 0.60, 0.75];
        for v in 0..4u32 {
            acc.set_user(&idx, v, row[v as usize], 1.0);
        }
        let mut full = b.clone();
        full.set_row(0, &row);
        assert_eq!(acc.total(), score.score(&full, 0));
        // Move one user and re-check; preview must agree with commit.
        let preview = acc.preview(&idx, 2, 0.9);
        acc.set_user(&idx, 2, 0.9, 1.0);
        assert_eq!(acc.contribution(2), preview);
        full.set(0, 2, 0.9);
        assert_eq!(acc.total(), score.score(&full, 0));
        assert_eq!(acc.value(2), 0.9);
        assert_eq!(acc.weight(2), 1.0);
    }

    #[test]
    fn copeland_accumulator_matches_exact_score() {
        let b = matrix();
        let idx = RankIndex::build(&b, 0);
        let mut acc = CopelandAccumulator::new(&idx, b.row(0));
        assert_eq!(acc.wins(), copeland_score(&b, 0));
        let mut full = b.clone();
        for (v, val) in [(0u32, 0.9), (3u32, 0.05), (1u32, 0.75)] {
            acc.set_value(&idx, v, val);
            full.set(0, v, val);
            assert_eq!(acc.wins(), copeland_score(&full, 0), "after ({v}, {val})");
        }
        assert_eq!(acc.opponents(), &[1, 2]);
    }

    #[test]
    fn copeland_preview_is_non_mutating_and_exact() {
        let b = matrix();
        let idx = RankIndex::build(&b, 0);
        let acc = CopelandAccumulator::new(&idx, b.row(0));
        let mut scratch = CopelandScratch::default();
        let moves = [(0u32, 1.0), (1u32, 1.0), (2u32, 1.0), (3u32, 1.0)];
        let previewed = acc.preview_wins(&idx, moves.iter().copied(), &mut scratch);
        let mut full = b.clone();
        full.set_row(0, &[1.0; 4]);
        assert_eq!(previewed, copeland_score(&full, 0));
        // The accumulator itself is untouched.
        assert_eq!(acc.wins(), copeland_score(&b, 0));
        // Scratch reuse across previews stays correct.
        let again = acc.preview_wins(&idx, moves[..1].iter().copied(), &mut scratch);
        let mut one = b.clone();
        one.set(0, 0, 1.0);
        assert_eq!(again, copeland_score(&one, 0));
    }

    #[test]
    fn crossing_range_is_tie_inclusive() {
        let vals = [0.1, 0.2, 0.2, 0.5, 0.9];
        assert_eq!(crossing_range(&vals, 0.2, 0.5), (1, 4));
        assert_eq!(crossing_range(&vals, 0.5, 0.2), (1, 4));
        assert_eq!(crossing_range(&vals, 0.0, 0.05), (0, 0));
        assert_eq!(crossing_range(&vals, 0.95, 1.0), (5, 5));
    }
}
