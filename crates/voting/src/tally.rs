//! Election tallies and winner determination.

use crate::score::{copeland_score, ScoringFunction};
use vom_diffusion::OpinionMatrix;
use vom_graph::Candidate;

/// The outcome of scoring every candidate under one scoring function.
#[derive(Debug, Clone, PartialEq)]
pub struct ElectionResult {
    /// Per-candidate scores.
    pub scores: Vec<f64>,
    /// Candidate with the maximum score (lowest index on ties).
    pub winner: Candidate,
    /// Whether the winner's score is *strictly* larger than every other
    /// candidate's — the winning criterion of Problem 2 (FJ-Vote-Win).
    pub strict: bool,
}

impl ElectionResult {
    /// Whether `q` wins strictly (FJ-Vote-Win's criterion for `q`).
    pub fn wins_strictly(&self, q: Candidate) -> bool {
        self.scores
            .iter()
            .enumerate()
            .all(|(x, &s)| x == q || self.scores[q] > s)
    }
}

/// Scores every candidate on `b` and determines the winner.
pub fn tally(b: &OpinionMatrix, score: &ScoringFunction) -> ElectionResult {
    let scores: Vec<f64> = (0..b.num_candidates()).map(|q| score.score(b, q)).collect();
    // First maximum wins ties (max_by would return the last one).
    let mut winner = 0;
    for (q, &s) in scores.iter().enumerate().skip(1) {
        if s > scores[winner] {
            winner = q;
        }
    }
    let strict = scores
        .iter()
        .enumerate()
        .all(|(x, &s)| x == winner || scores[winner] > s);
    ElectionResult {
        scores,
        winner,
        strict,
    }
}

/// The Condorcet winner, if one exists: the candidate winning **all**
/// `r − 1` one-on-one competitions (maximum possible Copeland score).
pub fn condorcet_winner(b: &OpinionMatrix) -> Option<Candidate> {
    let r = b.num_candidates();
    (0..r).find(|&q| copeland_score(b, q) == r - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_way() -> OpinionMatrix {
        OpinionMatrix::from_rows(vec![
            vec![0.9, 0.9, 0.1],
            vec![0.5, 0.1, 0.9],
            vec![0.1, 0.5, 0.95],
        ])
        .unwrap()
    }

    #[test]
    fn tally_picks_maximum() {
        let b = three_way();
        let res = tally(&b, &ScoringFunction::Plurality);
        assert_eq!(res.scores, vec![2.0, 0.0, 1.0]);
        assert_eq!(res.winner, 0);
        assert!(res.strict);
        assert!(res.wins_strictly(0));
        assert!(!res.wins_strictly(2));
    }

    #[test]
    fn tally_marks_non_strict_winners() {
        let b = OpinionMatrix::from_rows(vec![vec![0.9, 0.1], vec![0.1, 0.9]]).unwrap();
        let res = tally(&b, &ScoringFunction::Plurality);
        assert_eq!(res.scores, vec![1.0, 1.0]);
        assert_eq!(res.winner, 0, "ties break to the lowest index");
        assert!(!res.strict);
        assert!(!res.wins_strictly(0));
    }

    #[test]
    fn condorcet_winner_found() {
        assert_eq!(condorcet_winner(&three_way()), Some(0));
    }

    #[test]
    fn condorcet_winner_can_be_absent() {
        // Rock-paper-scissors cycle: 0 beats 1, 1 beats 2, 2 beats 0.
        let b = OpinionMatrix::from_rows(vec![
            vec![0.9, 0.1, 0.5],
            vec![0.5, 0.9, 0.1],
            vec![0.1, 0.5, 0.9],
        ])
        .unwrap();
        assert_eq!(condorcet_winner(&b), None);
    }

    #[test]
    fn cumulative_tally_on_table1() {
        let b = OpinionMatrix::from_rows(vec![
            vec![0.40, 0.80, 0.60, 0.75],
            vec![0.35, 0.75, 0.78, 0.90],
        ])
        .unwrap();
        let res = tally(&b, &ScoringFunction::Cumulative);
        assert!((res.scores[0] - 2.55).abs() < 1e-12);
        assert!((res.scores[1] - 2.78).abs() < 1e-12);
        assert_eq!(res.winner, 1);
    }
}
