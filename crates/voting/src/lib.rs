#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! # vom-voting
//!
//! The five voting-based scoring functions of the paper (§II-B), computed
//! over an opinion matrix `B^(t)`:
//!
//! * **cumulative** — `Σ_v b_qv` (Eq. 3);
//! * **plurality** — number of users ranking `c_q` strictly first (Eq. 4);
//! * **p-approval** — users ranking `c_q` within the top `p` (Eq. 5);
//! * **positional-p-approval** — position-weighted approval (Eq. 6);
//! * **Copeland** — one-on-one competitions won (Eq. 7).
//!
//! Plus ranking utilities (the rank `β` with ties), election tallies,
//! (Condorcet) winner determination, an [`index`] module with the
//! rank-indexed competitor opinions and delta-driven score accumulators
//! the selection engines' hot paths run on, and an [`ext`] module with
//! extended voting rules (Borda, veto, maximin, Bucklin, Copeland⁰·⁵)
//! behind the [`OpinionScore`] trait — the paper's §IX future-work
//! direction.

pub mod ext;
pub mod index;
pub mod rank;
pub mod score;
pub mod tally;

pub use ext::{ext_winner, ExtendedRule, OpinionScore};
pub use index::{CopelandAccumulator, CopelandScratch, PositionalAccumulator, RankIndex};
pub use rank::{beta, position_histogram};
pub use score::{ScoreError, ScoringFunction};
pub use tally::{condorcet_winner, tally, ElectionResult};
