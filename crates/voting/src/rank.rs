//! The rank `β` of a candidate in a user's preference order.

use vom_diffusion::OpinionMatrix;
use vom_graph::{Candidate, Node};

/// The rank of candidate `q` in user `v`'s preference order at the given
/// opinion snapshot: `β(b_qv) = Σ_x 1[b_xv ≥ b_qv]` (ties count against
/// `q`, including `q` itself, so the best possible rank is 1).
#[inline]
pub fn beta(b: &OpinionMatrix, q: Candidate, v: Node) -> usize {
    let bqv = b.get(q, v);
    let mut rank = 0;
    for x in 0..b.num_candidates() {
        if b.get(x, v) >= bqv {
            rank += 1;
        }
    }
    rank
}

/// Rank of candidate `q` for user `v` when `q`'s opinion value is
/// `bqv_override` instead of the stored one — used by the estimators,
/// which combine an *estimated* target opinion with *exact* competitor
/// opinions (Eqs. 32, 42).
#[inline]
pub fn beta_with_target(b: &OpinionMatrix, q: Candidate, v: Node, bqv_override: f64) -> usize {
    let mut rank = 1; // q itself always satisfies b_qv >= b_qv.
    for x in 0..b.num_candidates() {
        if x != q && b.get(x, v) >= bqv_override {
            rank += 1;
        }
    }
    rank
}

/// For each position `p ∈ 1..=r`, the number of users whose rank of
/// candidate `q` is exactly `p` — the distribution plotted in Figure 10.
pub fn position_histogram(b: &OpinionMatrix, q: Candidate) -> Vec<usize> {
    let r = b.num_candidates();
    let mut hist = vec![0usize; r];
    for v in 0..b.num_users() as Node {
        let rank = beta(b, q, v);
        // With ties the rank can reach r but never exceed it.
        hist[rank.min(r) - 1] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot() -> OpinionMatrix {
        // 3 candidates, 2 users.
        OpinionMatrix::from_rows(vec![vec![0.9, 0.2], vec![0.5, 0.2], vec![0.1, 0.8]]).unwrap()
    }

    #[test]
    fn beta_ranks_with_strict_dominance() {
        let b = snapshot();
        assert_eq!(beta(&b, 0, 0), 1);
        assert_eq!(beta(&b, 1, 0), 2);
        assert_eq!(beta(&b, 2, 0), 3);
    }

    #[test]
    fn beta_ties_count_against_the_candidate() {
        let b = snapshot();
        // User 1: candidates 0 and 1 tie at 0.2 below candidate 2.
        assert_eq!(beta(&b, 0, 1), 3);
        assert_eq!(beta(&b, 1, 1), 3);
        assert_eq!(beta(&b, 2, 1), 1);
    }

    #[test]
    fn beta_with_target_matches_beta_on_stored_value() {
        let b = snapshot();
        for q in 0..3 {
            for v in 0..2 {
                assert_eq!(beta_with_target(&b, q, v, b.get(q, v)), beta(&b, q, v));
            }
        }
    }

    #[test]
    fn beta_with_target_uses_override() {
        let b = snapshot();
        // Boosting candidate 2's value for user 0 to 1.0 makes it rank 1.
        assert_eq!(beta_with_target(&b, 2, 0, 1.0), 1);
        // Dropping candidate 0 to 0.0 for user 0 makes it rank 3.
        assert_eq!(beta_with_target(&b, 0, 0, 0.0), 3);
    }

    #[test]
    fn histogram_sums_to_user_count() {
        let b = snapshot();
        for q in 0..3 {
            let h = position_histogram(&b, q);
            assert_eq!(h.iter().sum::<usize>(), 2, "candidate {q}");
        }
        assert_eq!(position_histogram(&b, 0), vec![1, 0, 1]);
        assert_eq!(position_histogram(&b, 2), vec![1, 0, 1]);
    }
}
