//! Extended voting rules beyond the paper's five scores (§IX lists
//! "more voting scores" as future work).
//!
//! Each rule maps an opinion snapshot `B^(t)` to a single non-negative
//! score for a candidate, exactly like [`ScoringFunction`]:
//!
//! * **Borda** — every user awards `r − β` points (their full ranking);
//! * **Veto** (anti-plurality) — users *not* ranking the candidate last;
//! * **Maximin** (Simpson) — the candidate's worst one-on-one support;
//! * **Bucklin** — majority-round rule: candidates are compared first by
//!   the earliest rank at which they accumulate a strict majority, then
//!   by the number of approvals at that rank;
//! * **Copeland⁰·⁵** — Copeland with half a point per pairwise tie.
//!
//! All rules are non-decreasing in the target's seed set (seeding only
//! improves the target's opinion values, hence weakly improves every rank
//! `β` and every pairwise count), so the greedy framework of `vom-core`
//! applies unchanged; none of them is submodular in general.

use crate::rank::beta;
use crate::score::ScoringFunction;
use std::fmt;
use vom_diffusion::OpinionMatrix;
use vom_graph::{Candidate, Node};

/// A voting rule from the extension set.
///
/// These supplement the paper's five scores. They are deliberately kept
/// in a separate enum: the paper's estimators (RW/RS) carry per-score
/// accuracy guarantees (Theorems 10–15) that have not been derived for
/// these rules, so they are only driven by the *exact* (DM) evaluation
/// path — see `vom-core`'s generic greedy. (Borda and veto do have
/// estimator-compatible forms: see `ScoringFunction::borda` /
/// `ScoringFunction::veto`.)
///
/// ```
/// use vom_diffusion::OpinionMatrix;
/// use vom_voting::{ext_winner, ExtendedRule};
///
/// // Three candidates, two users with opposite full rankings plus a
/// // third user who splits them.
/// let b = OpinionMatrix::from_rows(vec![
///     vec![0.9, 0.1, 0.5],
///     vec![0.6, 0.6, 0.9],
///     vec![0.1, 0.9, 0.1],
/// ])?;
/// // Candidate 1 is everyone's first or second choice: strong Borda.
/// assert_eq!(ExtendedRule::Borda.score(&b, 1), 4.0);
/// assert_eq!(ext_winner(&b, ExtendedRule::Borda), 1);
/// // ...but it wins no first places, so plurality-style rules differ.
/// assert_eq!(ExtendedRule::Veto.score(&b, 1), 3.0);
/// # Ok::<(), vom_diffusion::DiffusionError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtendedRule {
    /// Borda count: `Σ_v (r − β(b_qv))`. Range `[0, n·(r−1)]`.
    Borda,
    /// Anti-plurality: number of users who do **not** rank the candidate
    /// strictly last, i.e. `Σ_v 1[β(b_qv) ≤ r − 1]`. With the paper's
    /// tie-averse rank `β` this coincides with `(r−1)`-approval.
    Veto,
    /// Simpson's maximin: `min_{x ≠ q} |{v : b_qv > b_xv}|` — the
    /// candidate's support in her *worst* one-on-one competition. A
    /// Condorcet winner (over an odd electorate with no ties) is exactly
    /// a candidate with maximin score `> n/2`.
    Maximin,
    /// Bucklin: let `ρ` be the smallest rank with
    /// `|{v : β(b_qv) ≤ ρ}| > n/2` (always defined since every `β ≤ r`).
    /// The score is `(r − ρ)·(n + 1) + |{v : β(b_qv) ≤ ρ}|`, which orders
    /// candidates by earlier majority round first, approvals second.
    Bucklin,
    /// Copeland with ties worth half a win:
    /// `Σ_{x≠q} (1[net > 0] + ½·1[net = 0])` over pairwise nets.
    CopelandHalf,
}

impl ExtendedRule {
    /// All extension rules, for sweeps and tests.
    pub const ALL: [ExtendedRule; 5] = [
        ExtendedRule::Borda,
        ExtendedRule::Veto,
        ExtendedRule::Maximin,
        ExtendedRule::Bucklin,
        ExtendedRule::CopelandHalf,
    ];

    /// Human-readable rule name.
    pub fn name(&self) -> &'static str {
        match self {
            ExtendedRule::Borda => "borda",
            ExtendedRule::Veto => "veto",
            ExtendedRule::Maximin => "maximin",
            ExtendedRule::Bucklin => "bucklin",
            ExtendedRule::CopelandHalf => "copeland-0.5",
        }
    }

    /// The largest value the rule can take on `n` users and `r`
    /// candidates (used by tests and normalized reporting).
    pub fn upper_bound(&self, n: usize, r: usize) -> f64 {
        match self {
            ExtendedRule::Borda => (n * (r - 1)) as f64,
            ExtendedRule::Veto => n as f64,
            ExtendedRule::Maximin => n as f64,
            // Best case: majority at rank 1 with unanimous support.
            ExtendedRule::Bucklin => ((r - 1) * (n + 1) + n) as f64,
            ExtendedRule::CopelandHalf => (r - 1) as f64,
        }
    }

    /// Evaluates the rule for candidate `q` on the snapshot `b`.
    pub fn score(&self, b: &OpinionMatrix, q: Candidate) -> f64 {
        let n = b.num_users();
        let r = b.num_candidates();
        match self {
            ExtendedRule::Borda => {
                let mut total = 0usize;
                for v in 0..n as Node {
                    total += r - beta(b, q, v);
                }
                total as f64
            }
            ExtendedRule::Veto => {
                let mut total = 0usize;
                for v in 0..n as Node {
                    if beta(b, q, v) < r {
                        total += 1;
                    }
                }
                total as f64
            }
            ExtendedRule::Maximin => {
                let mut worst = usize::MAX;
                let row_q = b.row(q);
                for x in 0..r {
                    if x == q {
                        continue;
                    }
                    let row_x = b.row(x);
                    let support = row_q.iter().zip(row_x).filter(|(bq, bx)| bq > bx).count();
                    worst = worst.min(support);
                }
                if worst == usize::MAX {
                    // Single candidate: unopposed, full support.
                    n as f64
                } else {
                    worst as f64
                }
            }
            ExtendedRule::Bucklin => {
                // Approval counts by rank, then scan for the majority
                // round. `β ∈ [1, r]` so `counts` is complete.
                let mut by_rank = vec![0usize; r];
                for v in 0..n as Node {
                    by_rank[beta(b, q, v) - 1] += 1;
                }
                let mut cumulative = 0usize;
                for (i, &c) in by_rank.iter().enumerate() {
                    cumulative += c;
                    if 2 * cumulative > n {
                        let rho = i + 1;
                        return ((r - rho) * (n + 1) + cumulative) as f64;
                    }
                }
                // n == 0: no majority exists; score 0 by convention.
                0.0
            }
            ExtendedRule::CopelandHalf => {
                let row_q = b.row(q);
                let mut score = 0.0f64;
                for x in 0..r {
                    if x == q {
                        continue;
                    }
                    let row_x = b.row(x);
                    let mut net = 0i64;
                    for (bq, bx) in row_q.iter().zip(row_x) {
                        if bq > bx {
                            net += 1;
                        } else if bq < bx {
                            net -= 1;
                        }
                    }
                    if net > 0 {
                        score += 1.0;
                    } else if net == 0 {
                        score += 0.5;
                    }
                }
                score
            }
        }
    }
}

impl fmt::Display for ExtendedRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A voting-based objective usable by the exact greedy framework: any
/// function of the full opinion snapshot and a target candidate.
///
/// Implemented by both the paper's [`ScoringFunction`] and the
/// [`ExtendedRule`] set, so `vom-core::dm_ext::generic_greedy` selects
/// seeds for either family through one code path.
pub trait OpinionScore: Send + Sync {
    /// `F(B, c_q)`.
    fn evaluate(&self, b: &OpinionMatrix, q: Candidate) -> f64;

    /// Rule name for reporting.
    fn rule_name(&self) -> &'static str;
}

impl OpinionScore for ScoringFunction {
    fn evaluate(&self, b: &OpinionMatrix, q: Candidate) -> f64 {
        self.score(b, q)
    }

    fn rule_name(&self) -> &'static str {
        self.name()
    }
}

impl OpinionScore for ExtendedRule {
    fn evaluate(&self, b: &OpinionMatrix, q: Candidate) -> f64 {
        self.score(b, q)
    }

    fn rule_name(&self) -> &'static str {
        self.name()
    }
}

/// The winner under an extended rule: the candidate with the maximum
/// score (smallest index wins exact ties, mirroring `tally`).
pub fn ext_winner(b: &OpinionMatrix, rule: ExtendedRule) -> Candidate {
    let mut best = 0;
    let mut best_score = f64::NEG_INFINITY;
    for q in 0..b.num_candidates() {
        let s = rule.score(b, q);
        if s > best_score {
            best = q;
            best_score = s;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds an opinion snapshot from explicit strict preference orders:
    /// `orders[v]` lists candidate indices from most to least preferred.
    /// Opinion values are spaced so every comparison is strict.
    fn from_orders(r: usize, orders: &[Vec<Candidate>]) -> OpinionMatrix {
        let n = orders.len();
        let mut rows = vec![vec![0.0; n]; r];
        for (v, order) in orders.iter().enumerate() {
            assert_eq!(order.len(), r);
            for (pos, &c) in order.iter().enumerate() {
                rows[c][v] = 1.0 - (pos as f64 + 1.0) / (r as f64 + 1.0);
            }
        }
        OpinionMatrix::from_rows(rows).unwrap()
    }

    /// The classic profile where plurality and Borda disagree:
    /// 3 voters A>B>C, 2 voters B>C>A, 2 voters C>B>A.
    /// Plurality: A wins (3). Borda: B wins (3+2·2·2 = ...), computed below.
    fn plurality_vs_borda() -> OpinionMatrix {
        let a = 0;
        let b = 1;
        let c = 2;
        let mut orders = Vec::new();
        for _ in 0..3 {
            orders.push(vec![a, b, c]);
        }
        for _ in 0..2 {
            orders.push(vec![b, c, a]);
        }
        for _ in 0..2 {
            orders.push(vec![c, b, a]);
        }
        from_orders(3, &orders)
    }

    #[test]
    fn borda_disagrees_with_plurality_on_classic_profile() {
        let snapshot = plurality_vs_borda();
        // Plurality: A = 3, B = 2, C = 2.
        assert_eq!(ScoringFunction::Plurality.score(&snapshot, 0), 3.0);
        assert_eq!(ScoringFunction::Plurality.score(&snapshot, 1), 2.0);
        // Borda: A = 3·2 = 6, B = 3·1 + 2·2 + 2·1 = 9, C = 2·2 + 2·1 + 3·0 = ...
        assert_eq!(ExtendedRule::Borda.score(&snapshot, 0), 6.0);
        assert_eq!(ExtendedRule::Borda.score(&snapshot, 1), 9.0);
        assert_eq!(ExtendedRule::Borda.score(&snapshot, 2), 6.0);
        assert_eq!(ext_winner(&snapshot, ExtendedRule::Borda), 1);
    }

    #[test]
    fn borda_totals_are_conserved() {
        // Σ_q Borda(q) = n · r(r−1)/2 for strict orders.
        let snapshot = plurality_vs_borda();
        let total: f64 = (0..3)
            .map(|q| ExtendedRule::Borda.score(&snapshot, q))
            .sum();
        assert_eq!(total, 7.0 * 3.0);
    }

    #[test]
    fn veto_counts_non_last_places() {
        let snapshot = plurality_vs_borda();
        // A is last for 4 voters → veto = 3; B never last → 7; C last for 3 → 4.
        assert_eq!(ExtendedRule::Veto.score(&snapshot, 0), 3.0);
        assert_eq!(ExtendedRule::Veto.score(&snapshot, 1), 7.0);
        assert_eq!(ExtendedRule::Veto.score(&snapshot, 2), 4.0);
    }

    #[test]
    fn veto_equals_r_minus_1_approval() {
        let snapshot = plurality_vs_borda();
        let approval = ScoringFunction::PApproval { p: 2 };
        for q in 0..3 {
            assert_eq!(
                ExtendedRule::Veto.score(&snapshot, q),
                approval.score(&snapshot, q),
                "candidate {q}"
            );
        }
    }

    #[test]
    fn maximin_identifies_condorcet_winner() {
        // B beats A 4–3 and beats C 5–2 → maximin(B) = 4 > 7/2; B is the
        // Condorcet winner and the only candidate above half.
        let snapshot = plurality_vs_borda();
        assert_eq!(ExtendedRule::Maximin.score(&snapshot, 1), 4.0);
        assert!(ExtendedRule::Maximin.score(&snapshot, 0) < 3.5);
        assert!(ExtendedRule::Maximin.score(&snapshot, 2) < 3.5);
        assert_eq!(
            crate::tally::condorcet_winner(&snapshot),
            Some(1),
            "cross-check against the tally module"
        );
    }

    #[test]
    fn maximin_unopposed_candidate_gets_full_support() {
        let b = OpinionMatrix::from_rows(vec![vec![0.3, 0.7]]).unwrap();
        assert_eq!(ExtendedRule::Maximin.score(&b, 0), 2.0);
    }

    #[test]
    #[allow(clippy::identity_op, clippy::erasing_op)] // keep (r−ρ)·(n+1)+approvals explicit
    fn bucklin_prefers_earlier_majority_round() {
        let snapshot = plurality_vs_borda();
        // No candidate has a first-round majority (need > 3.5).
        // Round 2: A has 3, B has 3+4 = 7, C has 2+2 = 4 → B and C reach
        // majority at ρ = 2, A only at ρ = 3 (7 votes).
        let n = 7;
        let b_score = ExtendedRule::Bucklin.score(&snapshot, 1);
        let c_score = ExtendedRule::Bucklin.score(&snapshot, 2);
        let a_score = ExtendedRule::Bucklin.score(&snapshot, 0);
        assert_eq!(b_score, ((3 - 2) * (n + 1) + 7) as f64);
        assert_eq!(c_score, ((3 - 2) * (n + 1) + 4) as f64);
        assert_eq!(a_score, ((3 - 3) * (n + 1) + 7) as f64);
        assert!(b_score > c_score && c_score > a_score);
        assert_eq!(ext_winner(&snapshot, ExtendedRule::Bucklin), 1);
    }

    #[test]
    fn bucklin_empty_electorate_scores_zero() {
        let b = OpinionMatrix::from_rows(vec![vec![], vec![]]).unwrap();
        assert_eq!(ExtendedRule::Bucklin.score(&b, 0), 0.0);
    }

    #[test]
    fn copeland_half_awards_half_per_tie() {
        // Two candidates with identical rows: the duel is a tie.
        let b =
            OpinionMatrix::from_rows(vec![vec![0.4, 0.6], vec![0.4, 0.6], vec![0.1, 0.1]]).unwrap();
        assert_eq!(ExtendedRule::CopelandHalf.score(&b, 0), 1.5);
        assert_eq!(ExtendedRule::CopelandHalf.score(&b, 1), 1.5);
        assert_eq!(ExtendedRule::CopelandHalf.score(&b, 2), 0.0);
    }

    #[test]
    fn copeland_half_matches_copeland_without_ties() {
        let snapshot = plurality_vs_borda();
        for q in 0..3 {
            assert_eq!(
                ExtendedRule::CopelandHalf.score(&snapshot, q),
                ScoringFunction::Copeland.score(&snapshot, q),
                "candidate {q}"
            );
        }
    }

    #[test]
    fn all_rules_respect_their_upper_bounds() {
        let snapshot = plurality_vs_borda();
        for rule in ExtendedRule::ALL {
            for q in 0..3 {
                let s = rule.score(&snapshot, q);
                assert!(s >= 0.0, "{rule} candidate {q}");
                assert!(
                    s <= rule.upper_bound(7, 3),
                    "{rule} candidate {q}: {s} > {}",
                    rule.upper_bound(7, 3)
                );
            }
        }
    }

    #[test]
    fn trait_objects_dispatch_both_families() {
        let snapshot = plurality_vs_borda();
        let rules: Vec<Box<dyn OpinionScore>> = vec![
            Box::new(ScoringFunction::Plurality),
            Box::new(ExtendedRule::Borda),
        ];
        assert_eq!(rules[0].evaluate(&snapshot, 0), 3.0);
        assert_eq!(rules[1].evaluate(&snapshot, 1), 9.0);
        assert_eq!(rules[0].rule_name(), "plurality");
        assert_eq!(rules[1].rule_name(), "borda");
    }

    #[test]
    fn borda_is_a_positional_p_approval_instance() {
        // §IX bridge: ScoringFunction::borda(r) is positional-r-approval
        // with ω[i] = (r−i)/(r−1) and equals ExtendedRule::Borda scaled
        // by 1/(r−1) — so Borda inherits the paper's Theorem 11/14
        // estimator guarantees. Verify exactly, including tie handling.
        let snapshot = plurality_vs_borda();
        let r = 3;
        let paper_form = ScoringFunction::borda(r);
        paper_form.validate(r).unwrap();
        for q in 0..r {
            let scaled = paper_form.score(&snapshot, q) * (r - 1) as f64;
            assert!(
                (scaled - ExtendedRule::Borda.score(&snapshot, q)).abs() < 1e-12,
                "candidate {q}"
            );
        }
        // Also under ties: duplicate opinion values.
        let tied =
            OpinionMatrix::from_rows(vec![vec![0.5, 0.2], vec![0.5, 0.8], vec![0.1, 0.8]]).unwrap();
        for q in 0..3 {
            let scaled = paper_form.score(&tied, q) * 2.0;
            assert_eq!(scaled, ExtendedRule::Borda.score(&tied, q), "candidate {q}");
        }
    }

    #[test]
    fn veto_constructor_matches_extended_rule() {
        let snapshot = plurality_vs_borda();
        let paper_form = ScoringFunction::veto(3);
        paper_form.validate(3).unwrap();
        for q in 0..3 {
            assert_eq!(
                paper_form.score(&snapshot, q),
                ExtendedRule::Veto.score(&snapshot, q),
                "candidate {q}"
            );
        }
    }

    #[test]
    fn display_names_are_stable() {
        assert_eq!(ExtendedRule::Borda.to_string(), "borda");
        assert_eq!(ExtendedRule::CopelandHalf.to_string(), "copeland-0.5");
    }
}
