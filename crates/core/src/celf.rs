//! CELF lazy greedy (Leskovec et al.), used for every submodular
//! objective: the cumulative score under DM and the sandwich bound
//! functions.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use vom_diffusion::CostMeter;
use vom_graph::Node;

/// Heap entry: `(cached gain, node, iteration the gain was computed in)`.
#[derive(Debug, Clone, Copy)]
struct Entry {
    gain: f64,
    node: Node,
    round: u32,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.gain == other.gain && self.node == other.node
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap by gain; ties broken toward the smaller node id so the
        // selection is deterministic. `total_cmp` keeps the order total
        // even if a degenerate objective hands back a NaN gain — such an
        // entry sorts above +∞ (or below −∞ for negative NaN) instead of
        // panicking deep inside the heap.
        self.gain
            .total_cmp(&other.gain)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// Greedy maximization of a **submodular, non-decreasing** set function
/// with lazy (CELF) re-evaluation.
///
/// `marginal(v)` must return the marginal gain of adding `v` to the
/// currently committed set; `commit(v)` is called when `v` is selected.
/// Correctness relies on submodularity: a gain computed against an older
/// (smaller) set upper-bounds the current gain, so if a stale top entry,
/// once refreshed, still dominates the runner-up, it is optimal to take
/// without touching the rest of the heap.
///
/// Returns the selected nodes in order. Stops early if every remaining
/// gain is zero (adding more seeds cannot help a non-decreasing score).
pub fn celf_greedy<FM, FC>(n: usize, k: usize, marginal: FM, commit: FC) -> Vec<Node>
where
    FM: FnMut(Node) -> f64,
    FC: FnMut(Node),
{
    lazy_greedy(0..n as Node, k, true, None, marginal, commit)
}

/// [`celf_greedy`] with an optional [`CostMeter`]: one tick per marginal
/// evaluation, exhaustion checked at the (sequential) pop boundary. A
/// run stopped by the meter returns a bit-identical **prefix** of the
/// unmetered selection — the heap evolves through the same deterministic
/// state sequence and the meter only decides how far along it we stop.
pub fn celf_greedy_metered<FM, FC>(
    n: usize,
    k: usize,
    meter: Option<&CostMeter>,
    marginal: FM,
    commit: FC,
) -> Vec<Node>
where
    FM: FnMut(Node) -> f64,
    FC: FnMut(Node),
{
    lazy_greedy(0..n as Node, k, true, meter, marginal, commit)
}

/// The shared lazy-greedy loop behind [`celf_greedy`] and the
/// estimate-driven cumulative fills in `crate::greedy`: one heap, one
/// staleness protocol, one tie-breaking rule — any change to the lazy
/// evaluation semantics lands in every submodular selection path at
/// once. `stop_on_zero` selects between CELF's early stop and the
/// paper's fill-to-`k` semantics (zero-gain seeds committed by smallest
/// id); `candidates` seeds the heap (callers exclude existing seeds
/// either here or by returning `NEG_INFINITY` from `marginal`).
pub(crate) fn lazy_greedy<FM, FC>(
    candidates: impl Iterator<Item = Node>,
    k: usize,
    stop_on_zero: bool,
    meter: Option<&CostMeter>,
    mut marginal: FM,
    mut commit: FC,
) -> Vec<Node>
where
    FM: FnMut(Node) -> f64,
    FC: FnMut(Node),
{
    // One tick per marginal evaluation — the unit the paper's complexity
    // analysis counts. The charge schedule depends only on the heap's
    // deterministic state sequence, never on thread interleaving.
    let mut marginal = |v| {
        if let Some(m) = meter {
            m.charge(1);
        }
        marginal(v)
    };
    let mut heap: BinaryHeap<Entry> = candidates
        .map(|v| Entry {
            gain: marginal(v),
            node: v,
            round: 0,
        })
        .collect();
    let mut selected = Vec::with_capacity(k);
    let mut round = 0u32;
    while selected.len() < k {
        // Sequential checkpoint: stopping here leaves `selected` a valid
        // prefix of the full-budget selection (CELF prefix-consistency).
        if meter.is_some_and(|m| m.exhausted()) {
            break;
        }
        let Some(top) = heap.pop() else { break };
        if top.round == round {
            if stop_on_zero && top.gain <= 0.0 {
                break;
            }
            commit(top.node);
            selected.push(top.node);
            round += 1;
        } else {
            let fresh = marginal(top.node);
            heap.push(Entry {
                gain: fresh,
                node: top.node,
                round,
            });
        }
    }
    selected
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::collections::HashSet;

    /// Weighted coverage: each node covers a set of items with weights.
    fn coverage_instance() -> Vec<Vec<usize>> {
        vec![
            vec![0, 1, 2, 3],
            vec![3, 4, 5],
            vec![0, 1],
            vec![6],
            vec![4, 5, 6],
        ]
    }

    fn brute_force_best(sets: &[Vec<usize>], k: usize) -> usize {
        let n = sets.len();
        let mut best = 0;
        for mask in 0..(1usize << n) {
            if mask.count_ones() as usize != k {
                continue;
            }
            let mut covered = HashSet::new();
            for (i, s) in sets.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    covered.extend(s.iter().copied());
                }
            }
            best = best.max(covered.len());
        }
        best
    }

    #[test]
    fn celf_matches_plain_greedy_on_coverage() {
        let sets = coverage_instance();
        let covered = RefCell::new(HashSet::<usize>::new());
        let selected = celf_greedy(
            sets.len(),
            2,
            |v| {
                let c = covered.borrow();
                sets[v as usize].iter().filter(|i| !c.contains(i)).count() as f64
            },
            |v| {
                covered
                    .borrow_mut()
                    .extend(sets[v as usize].iter().copied());
            },
        );
        assert_eq!(selected.len(), 2);
        // Greedy on this instance is optimal: {0, 4} covering 7 items.
        assert_eq!(covered.borrow().len(), brute_force_best(&sets, 2));
    }

    #[test]
    fn lazy_evaluation_skips_most_recomputation() {
        // A modular (linear) function: gains never change, so after the
        // initial pass no re-evaluation should be needed beyond one
        // refresh per round.
        let weights = [5.0, 4.0, 3.0, 2.0, 1.0];
        let evals = RefCell::new(0usize);
        let selected = celf_greedy(
            5,
            3,
            |v| {
                *evals.borrow_mut() += 1;
                weights[v as usize]
            },
            |_| {},
        );
        assert_eq!(selected, vec![0, 1, 2]);
        // 5 initial + at most one refresh per selection.
        assert!(*evals.borrow() <= 5 + 3, "evals = {}", evals.borrow());
    }

    #[test]
    fn stops_when_gains_vanish() {
        let selected = celf_greedy(4, 4, |v| if v == 0 { 1.0 } else { 0.0 }, |_| {});
        assert_eq!(selected, vec![0], "zero-gain nodes are not selected");
    }

    #[test]
    fn ties_break_toward_smaller_ids() {
        let selected = celf_greedy(4, 2, |_| 1.0, |_| {});
        assert_eq!(selected, vec![0, 1]);
    }

    #[test]
    fn metered_runs_return_prefixes_of_the_full_selection() {
        use vom_diffusion::CostBudget;
        let weights = [5.0, 4.0, 3.0, 2.0, 1.0];
        let full = celf_greedy(5, 4, |v| weights[v as usize], |_| {});
        assert_eq!(full, vec![0, 1, 2, 3]);
        for budget in 0..20u64 {
            let m = CostMeter::new(CostBudget::ticks(budget));
            let got = celf_greedy_metered(5, 4, Some(&m), |v| weights[v as usize], |_| {});
            assert!(
                full.starts_with(&got),
                "budget {budget}: {got:?} is not a prefix of {full:?}"
            );
        }
        // An unlimited meter reproduces the unmetered selection exactly.
        let m = CostMeter::new(CostBudget::ticks(u64::MAX));
        let got = celf_greedy_metered(5, 4, Some(&m), |v| weights[v as usize], |_| {});
        assert_eq!(got, full);
        assert!(m.spent() > 0);
    }

    #[test]
    fn nan_gains_order_deterministically_instead_of_panicking() {
        // A degenerate objective: node 2's "gain" is NaN. total_cmp
        // sorts positive NaN above everything, so it is selected first —
        // deterministically — and the run completes.
        let selected = celf_greedy(4, 2, |v| if v == 2 { f64::NAN } else { 1.0 }, |_| {});
        assert_eq!(selected, vec![2, 0]);
        let again = celf_greedy(4, 2, |v| if v == 2 { f64::NAN } else { 1.0 }, |_| {});
        assert_eq!(selected, again, "NaN ordering is stable");
    }
}
