//! Sandwich approximation (Algorithm 3, §IV).

use crate::bounds::{evaluate_upper_bound, greedy_upper_bound, upper_bound_parts};
use crate::problem::Problem;
use vom_diffusion::OpinionMatrix;
use vom_graph::Node;

/// Diagnostics of a sandwich run. The approximation factor realized is at
/// least `ratio · (1 − 1/e)` (Theorem 4 with `η = 1 − 1/e`), which is what
/// Figure 2 reports empirically.
#[derive(Debug, Clone)]
pub struct SandwichInfo {
    /// The feasible (plain greedy) solution `S_F` and its exact score.
    pub s_f: Vec<Node>,
    /// Exact `F(S_F)`.
    pub f_sf: f64,
    /// The upper-bound greedy solution `S_U` and its exact score.
    pub s_u: Vec<Node>,
    /// Exact `F(S_U)`.
    pub f_su: f64,
    /// The lower-bound greedy solution `S_L` (plurality variants only —
    /// the paper leaves a useful Copeland lower bound open).
    pub s_l: Option<Vec<Node>>,
    /// Exact `F(S_L)`.
    pub f_sl: Option<f64>,
    /// `UB(S_U)`, the upper-bound function's value at `S_U`.
    pub ub_su: f64,
    /// The sandwich quality ratio `F(S_U) / UB(S_U)` (§IV-D).
    pub ratio: f64,
}

/// Algorithm 3: given the method's feasible solution `S_F` (and `S_L`
/// for the plurality variants), computes `S_U` by coverage greedy,
/// evaluates all candidates **exactly**, and returns the best of them
/// plus diagnostics.
///
/// `seedless` must be the exact horizon-`t` opinion matrix without target
/// seeds (used to build the favorable base sets).
pub fn sandwich_select(
    problem: &Problem<'_>,
    seedless: &OpinionMatrix,
    s_f: Vec<Node>,
    s_l: Option<Vec<Node>>,
) -> (Vec<Node>, SandwichInfo) {
    let (multiplier, base) = upper_bound_parts(problem, seedless);
    let s_u = greedy_upper_bound(problem, &base);
    sandwich_finish(problem, s_f, s_l, s_u, multiplier, &base)
}

/// [`sandwich_select`] with the upper-bound greedy solution `S_U`
/// supplied by the caller. The coverage greedy depends only on the
/// graph, horizon, favorable base set, and budget — and its CELF
/// selection is prefix-consistent in `k` — so prepared engines compute
/// the order once at the prepared budget and every query hands in a
/// prefix instead of re-running `n` bounded-BFS evaluations.
pub fn sandwich_select_with_su(
    problem: &Problem<'_>,
    seedless: &OpinionMatrix,
    s_f: Vec<Node>,
    s_l: Option<Vec<Node>>,
    s_u: Vec<Node>,
) -> (Vec<Node>, SandwichInfo) {
    let (multiplier, base) = upper_bound_parts(problem, seedless);
    sandwich_finish(problem, s_f, s_l, s_u, multiplier, &base)
}

/// Shared tail of the two entry points: exact evaluation of all
/// candidate solutions and Algorithm 3's arbitration.
fn sandwich_finish(
    problem: &Problem<'_>,
    s_f: Vec<Node>,
    s_l: Option<Vec<Node>>,
    s_u: Vec<Node>,
    multiplier: f64,
    base: &[Node],
) -> (Vec<Node>, SandwichInfo) {
    let f_sf = problem.exact_score(&s_f);
    let f_su = problem.exact_score(&s_u);
    let f_sl = s_l.as_ref().map(|s| problem.exact_score(s));
    let ub_su = evaluate_upper_bound(problem, base, multiplier, &s_u);
    let ratio = if ub_su > 0.0 { f_su / ub_su } else { 1.0 };

    let mut chosen = s_f.clone();
    let mut best = f_sf;
    if f_su > best {
        chosen = s_u.clone();
        best = f_su;
    }
    if let (Some(s), Some(f)) = (&s_l, f_sl) {
        if f > best {
            chosen = s.clone();
        }
    }
    let info = SandwichInfo {
        s_f,
        f_sf,
        s_u,
        f_su,
        s_l,
        f_sl,
        ub_su,
        ratio,
    };
    (chosen, info)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vom_diffusion::Instance;
    use vom_graph::builder::graph_from_edges;
    use vom_voting::ScoringFunction;

    fn instance() -> Instance {
        let g = Arc::new(graph_from_edges(4, &[(0, 2, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap());
        let b = OpinionMatrix::from_rows(vec![
            vec![0.40, 0.80, 0.60, 0.90],
            vec![0.35, 0.75, 1.00, 0.80],
        ])
        .unwrap();
        Instance::shared(g, b, vec![0.0, 0.0, 0.5, 0.5]).unwrap()
    }

    #[test]
    fn sandwich_keeps_the_best_of_three() {
        let inst = instance();
        let p = Problem::new(&inst, 0, 1, 1, ScoringFunction::Plurality).unwrap();
        let seedless = p.opinions(&[]);
        // Hand it a deliberately poor feasible solution; the UB greedy
        // should rescue the outcome (node 2 has the best coverage AND the
        // best plurality score).
        let (chosen, info) = sandwich_select(&p, &seedless, vec![0], None);
        assert_eq!(info.f_sf, 2.0);
        assert_eq!(info.f_su, 4.0);
        assert_eq!(chosen, info.s_u);
        assert!(info.ratio > 0.0 && info.ratio <= 1.0);
        assert!(info.ub_su >= info.f_su, "UB must dominate F");
    }

    #[test]
    fn lower_bound_solution_can_win() {
        let inst = instance();
        let p = Problem::new(&inst, 0, 1, 1, ScoringFunction::Plurality).unwrap();
        let seedless = p.opinions(&[]);
        let (chosen, info) = sandwich_select(&p, &seedless, vec![0], Some(vec![2]));
        assert_eq!(info.f_sl, Some(4.0));
        // S_L ties with S_U (both score 4); S_U wins the earlier check.
        assert_eq!(p.exact_score(&chosen), 4.0);
    }

    #[test]
    fn copeland_sandwich_has_no_lower_bound() {
        let inst = instance();
        let p = Problem::new(&inst, 0, 1, 1, ScoringFunction::Copeland).unwrap();
        let seedless = p.opinions(&[]);
        let (chosen, info) = sandwich_select(&p, &seedless, vec![2], None);
        assert!(info.s_l.is_none());
        assert_eq!(p.exact_score(&chosen), 1.0);
    }
}
