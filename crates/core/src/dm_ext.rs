//! Exact greedy seed selection for *any* voting rule through the
//! [`OpinionScore`] trait — the extension path that drives the Borda /
//! veto / maximin / Bucklin / Copeland⁰·⁵ rules of `vom_voting::ext`
//! (and, for parity, the paper's five scores).
//!
//! The estimators (RW/RS) carry per-score accuracy guarantees the paper
//! derives only for its five scores, so extension rules run on the exact
//! DM evaluation path: per candidate seed one `O(t·m)` FJ iteration and
//! one full-rule evaluation. This mirrors `dm::dm_greedy`'s plain-greedy
//! arm, with the same cumulative-gain tie-break.

use crate::{CoreError, Result};
use rayon::prelude::*;
use std::sync::Arc;
use vom_diffusion::{CostMeter, Instance, OpinionMatrix, SolveOptions, SolverPool};
use vom_graph::{Candidate, Node};
use vom_voting::OpinionScore;

/// Exact objective value of a seed set under any rule: runs the FJ model
/// to the horizon with `seeds` for `target` (on top of the target's fixed
/// seeds) and evaluates the rule on the full opinion snapshot.
pub fn evaluate_rule<S: OpinionScore + ?Sized>(
    instance: &Instance,
    target: Candidate,
    horizon: usize,
    seeds: &[Node],
    rule: &S,
) -> f64 {
    let b = instance.opinions_at(horizon, target, seeds);
    rule.evaluate(&b, target)
}

/// Greedy seed selection (Algorithm 1) for an arbitrary [`OpinionScore`].
///
/// Every iteration evaluates all non-seed candidates exactly — each one
/// warm-started FJ solve plus one rule evaluation — in parallel
/// (per-worker `map_init` scratch: pooled solver, trial seed list, and a
/// private snapshot copy; each is fully rewritten per candidate, so
/// results are schedule-independent), and commits the node with the largest
/// marginal gain (ties: larger cumulative target opinion, then smaller
/// node id). Returns `min(k, n − |fixed|)` seeds in selection order.
///
/// For non-decreasing rules (all of `vom_voting::ext`) this is the same
/// heuristic the paper analyses; quality guarantees depend on the rule's
/// submodularity structure and are not claimed here.
///
/// ```
/// use std::sync::Arc;
/// use vom_core::{evaluate_rule, generic_greedy};
/// use vom_diffusion::{Instance, OpinionMatrix};
/// use vom_graph::builder::graph_from_edges;
/// use vom_voting::ExtendedRule;
///
/// // The paper's Figure-1 running example, scored under Borda.
/// let graph = Arc::new(graph_from_edges(
///     4,
///     &[(0, 2, 1.0), (1, 2, 1.0), (2, 3, 1.0)],
/// )?);
/// let initial = OpinionMatrix::from_rows(vec![
///     vec![0.40, 0.80, 0.60, 0.90],
///     vec![0.35, 0.75, 1.00, 0.80],
/// ])?;
/// let instance = Instance::shared(graph, initial, vec![0.0, 0.0, 0.5, 0.5])?;
///
/// let rule = ExtendedRule::Borda;
/// let seeds = generic_greedy(&instance, 0, 1, 1, &rule)?;
/// assert_eq!(seeds.len(), 1);
/// let before = evaluate_rule(&instance, 0, 1, &[], &rule);
/// let after = evaluate_rule(&instance, 0, 1, &seeds, &rule);
/// assert!(after > before);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn generic_greedy<S: OpinionScore + ?Sized>(
    instance: &Instance,
    target: Candidate,
    k: usize,
    horizon: usize,
    rule: &S,
) -> Result<Vec<Node>> {
    generic_greedy_metered(instance, target, k, horizon, rule, None)
}

/// [`generic_greedy`] with an optional [`CostMeter`]: one tick per
/// solver step / warm frontier state plus one per scored candidate,
/// exhaustion checked at the sequential per-iteration head (after all
/// parallel trial charges joined at the collect), so a metered run
/// stopped early returns a bit-identical prefix of the unmetered
/// selection.
pub fn generic_greedy_metered<S: OpinionScore + ?Sized>(
    instance: &Instance,
    target: Candidate,
    k: usize,
    horizon: usize,
    rule: &S,
    meter: Option<&CostMeter>,
) -> Result<Vec<Node>> {
    let r = instance.num_candidates();
    if target >= r {
        return Err(CoreError::BadTarget { target, r });
    }
    let n = instance.num_nodes();
    if k > n {
        return Err(CoreError::BudgetTooLarge { k, n });
    }

    let cand = instance.candidate(target);
    let system = Arc::clone(cand.system());
    let others = instance.non_target_opinions(horizon, target);
    let opts = SolveOptions::exact(horizon);
    let pool = SolverPool::new();

    let mut seeds = cand.fixed_seeds.clone();
    let mut is_seed = vec![false; n];
    for &s in &seeds {
        is_seed[s as usize] = true;
    }

    let mut picked = Vec::with_capacity(k);
    for _ in 0..k {
        // Sequential checkpoint: stopping here leaves `picked` a prefix
        // of the full-budget selection.
        if meter.is_some_and(|m| m.exhausted()) {
            break;
        }
        // One cold recording solve per iteration; trial evaluations
        // warm-start from it (bit-identical — see vom_diffusion::solver).
        let base = {
            let mut solver = pool.checkout(&system);
            solver.solve_metered(&seeds, &opts.recording(), meter);
            Arc::clone(solver.baseline().expect("recording solve installs one"))
        };
        let evals: Vec<(Node, f64, f64)> = (0..n as Node)
            .into_par_iter()
            .filter(|&v| !is_seed[v as usize])
            .map_init(
                || {
                    let mut solver = pool.checkout(&system);
                    solver.set_baseline(Arc::clone(&base));
                    (solver, seeds.clone(), others.clone())
                },
                |(solver, trial, snapshot), v| {
                    trial.push(v);
                    if let Some(m) = meter {
                        m.charge(1); // one tick per scored candidate
                    }
                    solver.solve_metered(trial, &opts.warm(), meter);
                    let row = solver.opinions();
                    let cum: f64 = row.iter().sum();
                    snapshot.set_row(target, row);
                    let s = rule.evaluate(snapshot, target);
                    trial.pop();
                    (v, s, cum)
                },
            )
            .collect();
        let Some(&(best, _, _)) = evals.iter().max_by(|a, b| {
            // `total_cmp` keeps the argmax total (a NaN score orders
            // deterministically instead of panicking); identical to the
            // tuple `partial_cmp` on every finite trajectory.
            a.1.total_cmp(&b.1)
                .then_with(|| a.2.total_cmp(&b.2))
                .then_with(|| b.0.cmp(&a.0))
        }) else {
            break;
        };
        is_seed[best as usize] = true;
        seeds.push(best);
        picked.push(best);
    }
    Ok(picked)
}

/// Exhaustive argmax over all size-`k` seed sets — exponential, test-only
/// ground truth for small instances.
pub fn brute_force_best<S: OpinionScore + ?Sized>(
    instance: &Instance,
    target: Candidate,
    k: usize,
    horizon: usize,
    rule: &S,
) -> (Vec<Node>, f64) {
    let n = instance.num_nodes() as Node;
    let mut best: (Vec<Node>, f64) = (Vec::new(), f64::NEG_INFINITY);
    let mut subset: Vec<Node> = Vec::with_capacity(k);
    #[allow(clippy::too_many_arguments)] // test-only exhaustive search
    fn recurse<S: OpinionScore + ?Sized>(
        instance: &Instance,
        target: Candidate,
        horizon: usize,
        rule: &S,
        start: Node,
        n: Node,
        k: usize,
        subset: &mut Vec<Node>,
        best: &mut (Vec<Node>, f64),
    ) {
        if subset.len() == k {
            let s = evaluate_rule(instance, target, horizon, subset, rule);
            if s > best.1 {
                *best = (subset.clone(), s);
            }
            return;
        }
        for v in start..n {
            subset.push(v);
            recurse(instance, target, horizon, rule, v + 1, n, k, subset, best);
            subset.pop();
        }
    }
    recurse(
        instance,
        target,
        horizon,
        rule,
        0,
        n,
        k,
        &mut subset,
        &mut best,
    );
    best
}

/// Reference snapshot of an instance without extra target seeds, for
/// reporting before/after comparisons under any rule.
pub fn baseline_snapshot(instance: &Instance, target: Candidate, horizon: usize) -> OpinionMatrix {
    instance.opinions_at(horizon, target, &[])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dm::dm_greedy;
    use crate::problem::Problem;
    use std::sync::Arc;
    use vom_diffusion::CandidateData;
    use vom_graph::builder::graph_from_edges;
    use vom_voting::{ExtendedRule, ScoringFunction};

    /// The paper's running example (Figure 1) with the calibrated `c₂`
    /// initial opinions from DESIGN.md §4b.
    fn running_example() -> Instance {
        let g = Arc::new(graph_from_edges(4, &[(0, 2, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap());
        let d = vec![0.0, 0.0, 0.5, 0.5];
        let c1 = CandidateData::new(g.clone(), vec![0.40, 0.80, 0.60, 0.90], d.clone()).unwrap();
        let c2 = CandidateData::new(g, vec![0.35, 0.75, 1.00, 0.80], d).unwrap();
        Instance::from_candidates(vec![c1, c2]).unwrap()
    }

    #[test]
    fn generic_greedy_matches_dm_on_paper_scores() {
        let instance = running_example();
        for score in [
            ScoringFunction::Cumulative,
            ScoringFunction::Plurality,
            ScoringFunction::Copeland,
        ] {
            let problem = Problem::new(&instance, 0, 1, 1, score.clone()).unwrap();
            let dm = dm_greedy(&problem);
            let gen = generic_greedy(&instance, 0, 1, 1, &score).unwrap();
            // Both paths use exact evaluation with the cumulative
            // tie-break, so the *objective values* must agree (seed
            // identity can differ only on exact ties).
            assert_eq!(
                evaluate_rule(&instance, 0, 1, &dm, &score),
                evaluate_rule(&instance, 0, 1, &gen, &score),
                "{score}"
            );
        }
    }

    #[test]
    fn generic_greedy_borda_matches_brute_force_at_k1() {
        let instance = running_example();
        let rule = ExtendedRule::Borda;
        let greedy = generic_greedy(&instance, 0, 1, 1, &rule).unwrap();
        let (_, best) = brute_force_best(&instance, 0, 1, 1, &rule);
        assert_eq!(evaluate_rule(&instance, 0, 1, &greedy, &rule), best);
    }

    #[test]
    fn every_extension_rule_is_non_decreasing_under_greedy_growth() {
        let instance = running_example();
        for rule in ExtendedRule::ALL {
            let seeds = generic_greedy(&instance, 0, 3, 1, &rule).unwrap();
            let mut prev = evaluate_rule(&instance, 0, 1, &[], &rule);
            for i in 1..=seeds.len() {
                let cur = evaluate_rule(&instance, 0, 1, &seeds[..i], &rule);
                assert!(cur >= prev, "{rule}: {cur} < {prev} at {i}");
                prev = cur;
            }
        }
    }

    #[test]
    fn generic_greedy_validates_inputs() {
        let instance = running_example();
        assert!(matches!(
            generic_greedy(&instance, 5, 1, 1, &ExtendedRule::Borda),
            Err(CoreError::BadTarget { .. })
        ));
        assert!(matches!(
            generic_greedy(&instance, 0, 99, 1, &ExtendedRule::Borda),
            Err(CoreError::BudgetTooLarge { .. })
        ));
    }

    #[test]
    fn budget_never_exceeds_free_nodes() {
        let instance = running_example();
        let seeds = generic_greedy(&instance, 0, 4, 1, &ExtendedRule::Maximin).unwrap();
        assert_eq!(seeds.len(), 4);
        let mut sorted = seeds.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 4, "seeds must be distinct");
    }
}
