//! The estimate-driven greedy loop (Algorithms 4 and 5, lines 4–8),
//! shared by the RW and RS selectors, plus exact scoring helpers shared
//! with DM.
//!
//! # The incremental scoring engine
//!
//! Scoring is the inner loop of the paper's complexity analysis
//! (§III-C), and this module is where the full-rescan version of it was
//! replaced by index lookups and delta maintenance:
//!
//! * competitor ranks go through a [`RankIndex`] (per-user sorted
//!   competitor opinions) — `O(log r)` per lookup instead of the
//!   `O(r)` scan of [`vom_voting::rank::beta_with_target`];
//! * the per-user estimate/contribution state of the rank-based scores
//!   lives in a [`PositionalAccumulator`] that persists across greedy
//!   iterations; after a seed commits, only the users named in the
//!   estimator's changed-users delta report are refreshed (`O(Δ·log r)`
//!   instead of `O(n·r)`);
//! * candidate gains are evaluated per candidate from the truncation's
//!   occurrence index ([`OpinionEstimate::for_candidate_deltas`],
//!   [`OpinionEstimate::cumulative_gain_of`]) — no more whole-arena
//!   prefix rescans, sorts, or delta-list materialization per
//!   iteration;
//! * the submodular cumulative objectives run a lazy (CELF-style)
//!   greedy over those per-candidate gains: a candidate is only
//!   re-evaluated when it reaches the top of the heap.
//!
//! Everything is arranged to stay **bit-identical** to the historical
//! full-rescan loops: per-candidate gains visit the same walks in the
//! same order as the old whole-arena scans, accumulator contributions
//! are the same `w·ω[β]` products, and the lazy greedy's correctness
//! rests on the truncation estimates' gains being non-increasing (terms
//! are non-negative and seeds only remove them; an IEEE left-to-right
//! sum of non-negative terms is monotone under subset removal).

use crate::estimate::OpinionEstimate;
use crate::phases::{self, CostMeter, Phase};
use std::time::{Duration, Instant};
use vom_diffusion::OpinionMatrix;
use vom_graph::{Candidate, Node};
use vom_voting::rank::beta_with_target;
use vom_voting::{PositionalAccumulator, RankIndex, ScoringFunction};
use vom_walks::DeltaScratch;

/// The competitor-opinion artifacts a competitive-score greedy consumes:
/// the exact non-target opinion matrix and its rank index. Built once
/// per prepared engine (the index is cached alongside the matrix) and
/// shared read-only by every query.
#[derive(Debug, Clone, Copy)]
pub struct Competitors<'a> {
    /// Exact non-target opinions at the horizon (target row unused).
    pub matrix: &'a OpinionMatrix,
    /// Per-user sorted competitor opinions over `matrix`.
    pub ranks: &'a RankIndex,
}

/// Evaluates `F(B, c_q)` where the target's opinion row is `target_row`
/// and the other candidates' rows come from `others` (whose own target
/// row is ignored). The exact reference evaluation — DM's delta scoring
/// and the sandwich evaluation reduce to it.
pub fn score_with_target_row(
    score: &ScoringFunction,
    others: &OpinionMatrix,
    q: Candidate,
    target_row: &[f64],
) -> f64 {
    match score {
        ScoringFunction::Cumulative => target_row.iter().sum(),
        ScoringFunction::Plurality
        | ScoringFunction::PApproval { .. }
        | ScoringFunction::PositionalPApproval { .. } => {
            let p = score.approval_depth().expect("plurality variant");
            let mut total = 0.0;
            for (v, &b) in target_row.iter().enumerate() {
                let rank = beta_with_target(others, q, v as Node, b);
                if rank <= p {
                    total += score.position_weight(rank);
                }
            }
            total
        }
        ScoringFunction::Copeland => {
            let r = others.num_candidates();
            let mut wins = 0usize;
            for x in 0..r {
                if x == q {
                    continue;
                }
                let mut net = 0i64;
                for (v, &b) in target_row.iter().enumerate() {
                    let bx = others.get(x, v as Node);
                    if b > bx {
                        net += 1;
                    } else if b < bx {
                        net -= 1;
                    }
                }
                if net > 0 {
                    wins += 1;
                }
            }
            wins as f64
        }
    }
}

/// Greedy seed selection on an incremental opinion estimate, for any of
/// the five scores. `comp` (exact non-target opinions plus their rank
/// index) is required for the competitive scores and ignored for
/// cumulative.
///
/// Selects until `k` seeds are committed (estimated marginal gains can be
/// zero — the paper's Problem 1 asks for exactly `k` seeds, and real
/// gains may still be positive when estimates saturate; ties and zero
/// gains resolve toward the smallest node id for determinism).
pub fn greedy_on_estimate<E: OpinionEstimate>(
    est: &mut E,
    k: usize,
    score: &ScoringFunction,
    comp: Option<Competitors<'_>>,
    q: Candidate,
) -> Vec<Node> {
    greedy_on_estimate_metered(est, k, score, comp, q, None)
}

/// [`greedy_on_estimate`] with an optional [`CostMeter`]: one tick per
/// scored candidate, exhaustion checked at the sequential iteration
/// boundary before each seed commit. A metered run stopped early returns
/// a bit-identical **prefix** of the unmetered selection — every rule
/// class here commits seeds one iteration at a time against state that
/// evolves through the same deterministic sequence, so stopping between
/// iterations cannot change the seeds already chosen.
pub fn greedy_on_estimate_metered<E: OpinionEstimate>(
    est: &mut E,
    k: usize,
    score: &ScoringFunction,
    comp: Option<Competitors<'_>>,
    q: Candidate,
    meter: Option<&CostMeter>,
) -> Vec<Node> {
    match score {
        ScoringFunction::Cumulative => {
            lazy_greedy_fill(est, k, meter, |est, w| est.cumulative_gain_of(w))
        }
        ScoringFunction::Plurality
        | ScoringFunction::PApproval { .. }
        | ScoringFunction::PositionalPApproval { .. } => {
            let comp = comp.expect("competitive score needs competitor opinions");
            rank_greedy(est, k, score, comp.ranks, meter)
        }
        ScoringFunction::Copeland => {
            let comp = comp.expect("competitive score needs competitor opinions");
            copeland_greedy(est, k, comp.matrix, q, meter)
        }
    }
}

/// Greedy maximization of the **restricted cumulative** estimate
/// `Σ_{v ∈ mask} b̂_qv[S]` — the sandwich lower bound `LB(S)` of
/// Definition 3 (the constant `ω[p]` factor does not change the argmax).
pub fn greedy_masked_cumulative<E: OpinionEstimate>(
    est: &mut E,
    k: usize,
    mask: &[bool],
) -> Vec<Node> {
    lazy_greedy_fill(est, k, None, |est, w| {
        est.cumulative_gain_of_masked(w, mask)
    })
}

// ---------------------------------------------------------------------
// Lazy greedy for the submodular cumulative estimates
// ---------------------------------------------------------------------

/// CELF-style lazy greedy over per-candidate estimated-cumulative gains,
/// with the paper's *fill* semantics: exactly `min(k, non-seeds)` seeds
/// are committed even when gains hit zero (ties and zeros resolve to the
/// smallest id — the same selection the historical full-rescan argmax
/// produced, since truncation gains never increase and a stale heap
/// entry therefore always upper-bounds the fresh gain). The heap loop
/// itself is [`crate::celf::lazy_greedy`], shared with DM's exact CELF.
fn lazy_greedy_fill<E: OpinionEstimate>(
    est: &mut E,
    k: usize,
    meter: Option<&CostMeter>,
    gain_of: impl Fn(&E, Node) -> f64,
) -> Vec<Node> {
    // audit:allow(d-wall-clock, "phase timer: elapsed feeds reported timings, never selection order")
    let started = Instant::now();
    let mut truncating = Duration::ZERO;
    let n = est.num_nodes();
    let mut touched: Vec<Node> = Vec::new();
    // The est borrow is split across the two closures via a RefCell:
    // marginal reads, commit mutates, never concurrently.
    let cell = std::cell::RefCell::new(est);
    let selected = crate::celf::lazy_greedy(
        (0..n as Node).filter(|&v| !cell.borrow().is_seed(v)),
        k,
        false,
        meter,
        |v| gain_of(&cell.borrow(), v),
        |v| {
            // audit:allow(d-wall-clock, "phase timer: elapsed feeds reported timings, never selection order")
            let t = Instant::now();
            cell.borrow_mut().add_seed_into(v, &mut touched);
            truncating += t.elapsed();
        },
    );
    phases::record(Phase::Truncation, truncating);
    phases::record(Phase::Scoring, started.elapsed().saturating_sub(truncating));
    selected
}

// ---------------------------------------------------------------------
// Rank-based scores: delta-driven accumulator greedy
// ---------------------------------------------------------------------

/// The persistent per-user scoring state of a rank-based greedy run: the
/// current estimates and positional contributions, refreshed only for
/// users the truncation reports as changed.
pub(crate) struct RankState {
    acc: PositionalAccumulator,
    scratch: DeltaScratch,
}

impl RankState {
    /// Builds the state from the estimator's current per-user estimates
    /// (`O(n·log r)`, once per greedy run).
    pub(crate) fn init<E: OpinionEstimate>(
        est: &E,
        score: &ScoringFunction,
        index: &RankIndex,
    ) -> RankState {
        let n = est.num_nodes();
        let mut acc = PositionalAccumulator::new(score, n);
        for v in 0..n as Node {
            if let Some(e) = est.estimate(v) {
                let w = est.user_weight(v);
                if w > 0.0 {
                    acc.set_user(index, v, e, w);
                }
            }
        }
        RankState {
            acc,
            scratch: DeltaScratch::default(),
        }
    }

    /// Re-reads the listed users' estimates from the estimator
    /// (`O(Δ·log r)`), after a seed commit.
    pub(crate) fn refresh<E: OpinionEstimate>(
        &mut self,
        est: &E,
        index: &RankIndex,
        users: impl Iterator<Item = Node>,
    ) {
        for v in users {
            if let Some(e) = est.estimate(v) {
                let w = est.user_weight(v);
                if w > 0.0 {
                    self.acc.set_user(index, v, e, w);
                }
            }
        }
    }

    /// The marginal estimated-score gain of candidate seed `w` plus its
    /// estimated-cumulative gain (the tie-break criterion), from one
    /// pass over `w`'s occurrences: the merged per-user deltas are
    /// applied against the accumulator, re-ranking only the affected
    /// users (`O(Δ_w·log r)`).
    pub(crate) fn gain_and_cum<E: OpinionEstimate>(
        &mut self,
        est: &E,
        index: &RankIndex,
        w: Node,
    ) -> (f64, f64) {
        let acc = &self.acc;
        let mut gain = 0.0;
        let cum = est.for_candidate_deltas_cum(w, &mut self.scratch, |user, delta| {
            if acc.weight(user) <= 0.0 {
                return;
            }
            let new_contrib = acc.preview(index, user, acc.value(user) + delta);
            gain += new_contrib - acc.contribution(user);
        });
        (gain, cum)
    }
}

/// Greedy for the plurality variants. The discrete score is flat almost
/// everywhere, so ties break by the estimated-cumulative gain (still
/// moving opinions toward the target helps later iterations and the true
/// objective) — computed in the same single occurrence pass as the rank
/// gain, which is what makes carrying it for every candidate cheap.
fn rank_greedy<E: OpinionEstimate>(
    est: &mut E,
    k: usize,
    score: &ScoringFunction,
    index: &RankIndex,
    meter: Option<&CostMeter>,
) -> Vec<Node> {
    // audit:allow(d-wall-clock, "phase timer: elapsed feeds reported timings, never selection order")
    let started = Instant::now();
    let mut truncating = Duration::ZERO;
    let n = est.num_nodes();
    let mut state = RankState::init(est, score, index);
    let mut selected = Vec::with_capacity(k);
    let mut touched: Vec<Node> = Vec::new();
    for _ in 0..k {
        // Sequential checkpoint: per-iteration commits mean stopping here
        // leaves `selected` a prefix of the full-budget selection.
        if meter.is_some_and(|m| m.exhausted()) {
            break;
        }
        // (node, rank gain, cumulative tie-break gain) — both gains come
        // out of one pass over the candidate's occurrence list.
        let mut best: Option<(Node, f64, f64)> = None;
        let mut scanned = 0u64;
        for w in 0..n as Node {
            if est.is_seed(w) {
                continue;
            }
            scanned += 1;
            let (gain, cum) = state.gain_and_cum(est, index, w);
            let better = match best {
                None => true,
                Some((_, bg, bs)) => gain > bg || (gain == bg && cum > bs),
            };
            if better {
                best = Some((w, gain, cum));
            }
        }
        if let Some(m) = meter {
            m.charge(scanned); // one tick per scored candidate
        }
        let Some((bw, _, _)) = best else { break };
        // audit:allow(d-wall-clock, "phase timer: elapsed feeds reported timings, never selection order")
        let t = Instant::now();
        est.add_seed_into(bw, &mut touched);
        truncating += t.elapsed();
        selected.push(bw);
        state.refresh(est, index, touched.iter().copied().chain([bw]));
    }
    phases::record(Phase::Truncation, truncating);
    phases::record(Phase::Scoring, started.elapsed().saturating_sub(truncating));
    selected
}

// ---------------------------------------------------------------------
// Copeland: incremental estimates, per-candidate duel deltas
// ---------------------------------------------------------------------

/// Greedy for the Copeland score. The per-user estimates persist across
/// iterations (refreshed from the changed-users report); the weighted
/// per-opponent nets are rebuilt per iteration in fixed user order so
/// the float majorities match the historical evaluation bit for bit,
/// and each candidate's effect is evaluated from its own merged deltas.
/// Secondary criterion: total net-margin gained across the one-on-one
/// duels — near a majority tie the discrete win count is a coin flip on
/// estimates, but the margin still points at the seed that moves the
/// most users past their duel thresholds.
fn copeland_greedy<E: OpinionEstimate>(
    est: &mut E,
    k: usize,
    others: &OpinionMatrix,
    q: Candidate,
    meter: Option<&CostMeter>,
) -> Vec<Node> {
    // audit:allow(d-wall-clock, "phase timer: elapsed feeds reported timings, never selection order")
    let started = Instant::now();
    let mut truncating = Duration::ZERO;
    let n = est.num_nodes();
    let r = others.num_candidates();
    let opponents: Vec<Candidate> = (0..r).filter(|&x| x != q).collect();

    // Persistent per-user estimate state.
    let mut cur_est = vec![0.0f64; n];
    let mut weight = vec![0.0f64; n];
    let mut sampled = vec![false; n];
    for v in 0..n as Node {
        if let Some(e) = est.estimate(v) {
            let w = est.user_weight(v);
            if w > 0.0 {
                cur_est[v as usize] = e;
                weight[v as usize] = w;
                sampled[v as usize] = true;
            }
        }
    }

    let mut selected = Vec::with_capacity(k);
    let mut touched: Vec<Node> = Vec::new();
    let mut scratch = DeltaScratch::default();
    let mut net = vec![0.0f64; opponents.len()];
    let mut net_change = vec![0.0f64; opponents.len()];
    let mut gains = vec![0.0f64; n];
    let mut margins = vec![0.0f64; n];
    for _ in 0..k {
        // Sequential checkpoint: per-iteration commits mean stopping here
        // leaves `selected` a prefix of the full-budget selection.
        if meter.is_some_and(|m| m.exhausted()) {
            break;
        }
        // Current weighted majorities, re-summed in fixed user order
        // (incremental float nets would drift from the reference bits).
        net.iter_mut().for_each(|s| *s = 0.0);
        for v in 0..n {
            if sampled[v] {
                let e = cur_est[v];
                let w = weight[v];
                for (xi, &x) in opponents.iter().enumerate() {
                    let bx = others.get(x, v as Node);
                    if e > bx {
                        net[xi] += w;
                    } else if e < bx {
                        net[xi] -= w;
                    }
                }
            }
        }
        let current_wins = net.iter().filter(|&&s| s > 0.0).count() as f64;

        gains.iter_mut().for_each(|g| *g = 0.0);
        margins.iter_mut().for_each(|m| *m = 0.0);
        let mut scanned = 0u64;
        for w in 0..n as Node {
            if est.is_seed(w) {
                continue;
            }
            scanned += 1;
            net_change.iter_mut().for_each(|c| *c = 0.0);
            est.for_candidate_deltas(w, &mut scratch, |user, delta| {
                let v = user as usize;
                if sampled[v] {
                    let uw = weight[v];
                    let old = cur_est[v];
                    let new = old + delta;
                    for (xi, &x) in opponents.iter().enumerate() {
                        let bx = others.get(x, user);
                        net_change[xi] +=
                            uw * (sign_contribution(new, bx) - sign_contribution(old, bx));
                    }
                }
            });
            let new_wins = net
                .iter()
                .zip(&net_change)
                .filter(|(&s, &c)| s + c > 0.0)
                .count() as f64;
            gains[w as usize] = new_wins - current_wins;
            margins[w as usize] = net_change.iter().sum();
        }
        if let Some(m) = meter {
            m.charge(scanned); // one tick per scored candidate
        }
        let Some(bw) = argmax_non_seed(est, &gains, Some(&margins)) else {
            break;
        };
        // audit:allow(d-wall-clock, "phase timer: elapsed feeds reported timings, never selection order")
        let t = Instant::now();
        est.add_seed_into(bw, &mut touched);
        truncating += t.elapsed();
        selected.push(bw);
        for v in touched.iter().copied().chain([bw]) {
            if let Some(e) = est.estimate(v) {
                let w = est.user_weight(v);
                if w > 0.0 {
                    cur_est[v as usize] = e;
                    weight[v as usize] = w;
                    sampled[v as usize] = true;
                }
            }
        }
    }
    phases::record(Phase::Truncation, truncating);
    phases::record(Phase::Scoring, started.elapsed().saturating_sub(truncating));
    selected
}

/// Argmax over non-seed nodes, with an optional secondary criterion for
/// ties; remaining ties go to the smaller id. Returns `None` only when
/// every node is already a seed.
fn argmax_non_seed<E: OpinionEstimate>(
    est: &E,
    gains: &[f64],
    secondary: Option<&[f64]>,
) -> Option<Node> {
    let mut best: Option<(Node, f64, f64)> = None;
    for (v, &g) in gains.iter().enumerate() {
        let v = v as Node;
        if est.is_seed(v) {
            continue;
        }
        let s = secondary.map_or(0.0, |sec| sec[v as usize]);
        let better = match best {
            None => true,
            Some((_, bg, bs)) => g > bg || (g == bg && s > bs),
        };
        if better {
            best = Some((v, g, s));
        }
    }
    best.map(|(v, _, _)| v)
}

#[inline]
fn sign_contribution(b: f64, bx: f64) -> f64 {
    if b > bx {
        1.0
    } else if b < bx {
        -1.0
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vom_graph::builder::graph_from_edges;
    use vom_walks::{Lambda, OpinionEstimator, WalkGenerator};

    fn running_example() -> (vom_graph::SocialGraph, Vec<f64>, Vec<f64>, OpinionMatrix) {
        let g = graph_from_edges(4, &[(0, 2, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap();
        let b0 = vec![0.40, 0.80, 0.60, 0.90];
        let d = vec![0.0, 0.0, 0.5, 0.5];
        let others =
            OpinionMatrix::from_rows(vec![vec![0.0; 4], vec![0.35, 0.75, 0.78, 0.90]]).unwrap();
        (g, b0, d, others)
    }

    fn competitors(others: &OpinionMatrix) -> (RankIndex, ()) {
        (RankIndex::build(others, 0), ())
    }

    #[test]
    fn score_with_target_row_matches_full_matrix_scoring() {
        let (_, _, _, others) = running_example();
        let target_row = [0.40, 0.80, 0.60, 0.75];
        let mut full = others.clone();
        full.set_row(0, &target_row);
        for score in [
            ScoringFunction::Cumulative,
            ScoringFunction::Plurality,
            ScoringFunction::PApproval { p: 2 },
            ScoringFunction::Copeland,
        ] {
            assert_eq!(
                score_with_target_row(&score, &others, 0, &target_row),
                score.score(&full, 0),
                "{score}"
            );
        }
    }

    #[test]
    fn greedy_cumulative_picks_paper_best_single_seed() {
        // Table I: seed {1} (our node 0) maximizes the cumulative score.
        let (g, b0, d, _) = running_example();
        let gen = WalkGenerator::new(&g, &d, 1);
        let arena = gen.generate_per_node(&Lambda::Uniform(20_000), 7);
        let mut est = OpinionEstimator::new(&arena, &b0);
        let seeds = greedy_on_estimate(&mut est, 1, &ScoringFunction::Cumulative, None, 0);
        assert_eq!(seeds, vec![0]);
    }

    #[test]
    fn greedy_plurality_picks_paper_best_single_seed() {
        // Table I: seed {3} (our node 2) maximizes the plurality score (4).
        let (g, b0, d, others) = running_example();
        let gen = WalkGenerator::new(&g, &d, 1);
        let arena = gen.generate_per_node(&Lambda::Uniform(20_000), 11);
        let mut est = OpinionEstimator::new(&arena, &b0);
        let (ranks, _) = competitors(&others);
        let comp = Competitors {
            matrix: &others,
            ranks: &ranks,
        };
        let seeds = greedy_on_estimate(&mut est, 1, &ScoringFunction::Plurality, Some(comp), 0);
        assert_eq!(seeds, vec![2]);
    }

    #[test]
    fn greedy_copeland_picks_a_winning_seed() {
        // Table I: Copeland becomes 1 with seed node 2 or 3.
        let (g, b0, d, others) = running_example();
        let gen = WalkGenerator::new(&g, &d, 1);
        let arena = gen.generate_per_node(&Lambda::Uniform(20_000), 13);
        let mut est = OpinionEstimator::new(&arena, &b0);
        let (ranks, _) = competitors(&others);
        let comp = Competitors {
            matrix: &others,
            ranks: &ranks,
        };
        let seeds = greedy_on_estimate(&mut est, 1, &ScoringFunction::Copeland, Some(comp), 0);
        assert_eq!(seeds.len(), 1);
        assert!(seeds[0] == 2 || seeds[0] == 3, "got {seeds:?}");
    }

    #[test]
    fn greedy_fills_the_budget_even_with_zero_gains() {
        let (g, _, d, _) = running_example();
        let b0 = vec![1.0; 4]; // nothing can improve
        let gen = WalkGenerator::new(&g, &d, 1);
        let arena = gen.generate_per_node(&Lambda::Uniform(100), 17);
        let mut est = OpinionEstimator::new(&arena, &b0);
        let seeds = greedy_on_estimate(&mut est, 2, &ScoringFunction::Cumulative, None, 0);
        assert_eq!(seeds.len(), 2);
        assert_eq!(seeds, vec![0, 1], "deterministic smallest-id fill");
    }

    #[test]
    fn masked_greedy_fills_like_the_plain_one() {
        let (g, b0, d, _) = running_example();
        let gen = WalkGenerator::new(&g, &d, 2);
        let arena = gen.generate_per_node(&Lambda::Uniform(500), 29);
        // All-users mask: the masked greedy must equal the plain one.
        let mask = vec![true; 4];
        let mut est_a = OpinionEstimator::new(&arena, &b0);
        let mut est_b = OpinionEstimator::new(&arena, &b0);
        let a = greedy_masked_cumulative(&mut est_a, 3, &mask);
        let b = greedy_on_estimate(&mut est_b, 3, &ScoringFunction::Cumulative, None, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn non_submodularity_example_3_reproduced_on_estimates() {
        // §IV-D: F({2}) - F({}) = 0 but F({1,2}) - F({1}) = 1 for
        // plurality (paper's 1-indexed users; ours are 1 and 0).
        let (g, b0, d, others) = running_example();
        let gen = WalkGenerator::new(&g, &d, 1);
        let arena = gen.generate_per_node(&Lambda::Uniform(30_000), 19);
        let score = ScoringFunction::Plurality;
        let index = RankIndex::build(&others, 0);

        // Gain of node 1 on the empty set: 0.
        let est0 = OpinionEstimator::new(&arena, &b0);
        let mut state0 = RankState::init(&est0, &score, &index);
        assert_eq!(state0.gain_and_cum(&est0, &index, 1).0, 0.0);

        // Gain of node 1 once node 0 is seeded: 1 (user 2 flips).
        let mut est1 = OpinionEstimator::new(&arena, &b0);
        est1.add_seed(0);
        let mut state1 = RankState::init(&est1, &score, &index);
        let g1 = state1.gain_and_cum(&est1, &index, 1).0;
        assert!((g1 - 1.0).abs() < 0.1, "gain {g1}");
    }

    /// The delta-driven rank greedy must agree with a from-scratch
    /// reference that re-scores every user per candidate.
    #[test]
    fn rank_greedy_matches_full_rescan_reference() {
        let (g, b0, d, others) = running_example();
        let gen = WalkGenerator::new(&g, &d, 2);
        let arena = gen.generate_per_node(&Lambda::Uniform(700), 23);
        let score = ScoringFunction::PApproval { p: 2 };
        let index = RankIndex::build(&others, 0);

        // Reference: full rescan of the estimated score per candidate.
        let mut ref_est = OpinionEstimator::new(&arena, &b0);
        let mut ref_seeds = Vec::new();
        for _ in 0..3 {
            let estimated = |est: &OpinionEstimator<'_>| -> f64 {
                (0..4u32)
                    .map(|v| {
                        let rank = beta_with_target(&others, 0, v, est.estimate(v));
                        if rank <= 2 {
                            score.position_weight(rank)
                        } else {
                            0.0
                        }
                    })
                    .sum()
            };
            let base = estimated(&ref_est);
            let mut best: Option<(u32, f64, f64)> = None;
            for w in 0..4u32 {
                if ref_est.is_seed(w) {
                    continue;
                }
                let mut trial = ref_est.clone();
                trial.add_seed(w);
                let gain = estimated(&trial) - base;
                let cum = trial.estimated_cumulative() - ref_est.estimated_cumulative();
                let better = match best {
                    None => true,
                    Some((_, bg, bc)) => {
                        gain > bg + 1e-12 || ((gain - bg).abs() <= 1e-12 && cum > bc)
                    }
                };
                if better {
                    best = Some((w, gain, cum));
                }
            }
            let (w, _, _) = best.unwrap();
            ref_est.add_seed(w);
            ref_seeds.push(w);
        }

        let mut est = OpinionEstimator::new(&arena, &b0);
        let comp = Competitors {
            matrix: &others,
            ranks: &index,
        };
        let seeds = greedy_on_estimate(&mut est, 3, &score, Some(comp), 0);
        assert_eq!(seeds, ref_seeds);
    }
}
