//! The estimate-driven greedy loop (Algorithms 4 and 5, lines 4–8),
//! shared by the RW and RS selectors, plus exact scoring helpers shared
//! with DM.

use crate::estimate::OpinionEstimate;
use vom_diffusion::OpinionMatrix;
use vom_graph::{Candidate, Node};
use vom_voting::rank::beta_with_target;
use vom_voting::ScoringFunction;

/// Evaluates `F(B, c_q)` where the target's opinion row is `target_row`
/// and the other candidates' rows come from `others` (whose own target
/// row is ignored). Used by DM's greedy (which recomputes the target row
/// per candidate seed) and by the sandwich evaluation.
pub fn score_with_target_row(
    score: &ScoringFunction,
    others: &OpinionMatrix,
    q: Candidate,
    target_row: &[f64],
) -> f64 {
    match score {
        ScoringFunction::Cumulative => target_row.iter().sum(),
        ScoringFunction::Plurality
        | ScoringFunction::PApproval { .. }
        | ScoringFunction::PositionalPApproval { .. } => {
            let p = score.approval_depth().expect("plurality variant");
            let mut total = 0.0;
            for (v, &b) in target_row.iter().enumerate() {
                let rank = beta_with_target(others, q, v as Node, b);
                if rank <= p {
                    total += score.position_weight(rank);
                }
            }
            total
        }
        ScoringFunction::Copeland => {
            let r = others.num_candidates();
            let mut wins = 0usize;
            for x in 0..r {
                if x == q {
                    continue;
                }
                let mut net = 0i64;
                for (v, &b) in target_row.iter().enumerate() {
                    let bx = others.get(x, v as Node);
                    if b > bx {
                        net += 1;
                    } else if b < bx {
                        net -= 1;
                    }
                }
                if net > 0 {
                    wins += 1;
                }
            }
            wins as f64
        }
    }
}

/// One user's positional contribution `ω[β]·1[β ≤ p]` given a target
/// opinion value.
#[inline]
fn positional_contribution(
    score: &ScoringFunction,
    others: &OpinionMatrix,
    q: Candidate,
    v: Node,
    value: f64,
    p: usize,
) -> f64 {
    let rank = beta_with_target(others, q, v, value);
    if rank <= p {
        score.position_weight(rank)
    } else {
        0.0
    }
}

/// Greedy seed selection on an incremental opinion estimate, for any of
/// the five scores. `others` (exact non-target opinions at the horizon)
/// is required for the competitive scores and ignored for cumulative.
///
/// Selects until `k` seeds are committed (estimated marginal gains can be
/// zero — the paper's Problem 1 asks for exactly `k` seeds, and real
/// gains may still be positive when estimates saturate; ties and zero
/// gains resolve toward the smallest node id for determinism).
pub fn greedy_on_estimate<E: OpinionEstimate>(
    est: &mut E,
    k: usize,
    score: &ScoringFunction,
    others: Option<&OpinionMatrix>,
    q: Candidate,
) -> Vec<Node> {
    let mut selected = Vec::with_capacity(k);
    for _ in 0..k {
        let best = match score {
            ScoringFunction::Cumulative => argmax_non_seed(est, &est.cumulative_gains(), None),
            ScoringFunction::Plurality
            | ScoringFunction::PApproval { .. }
            | ScoringFunction::PositionalPApproval { .. } => {
                let gains = rank_gains(
                    est,
                    score,
                    others.expect("competitive score needs others"),
                    q,
                );
                // The discrete score is flat almost everywhere; ties are
                // broken by the cumulative gain (still moving opinions
                // toward the target helps later iterations and the true
                // objective).
                argmax_non_seed(est, &gains, Some(&est.cumulative_gains()))
            }
            ScoringFunction::Copeland => {
                let (gains, margins) =
                    copeland_gains(est, others.expect("competitive score needs others"), q);
                // Secondary criterion: total net-margin gained across the
                // one-on-one duels — near a majority tie the discrete win
                // count is a coin flip on estimates, but the margin still
                // points at the seed that moves the most users past their
                // duel thresholds.
                argmax_non_seed(est, &gains, Some(&margins))
            }
        };
        let Some(best) = best else { break };
        est.add_seed(best);
        selected.push(best);
    }
    selected
}

/// Greedy maximization of the **restricted cumulative** estimate
/// `Σ_{v ∈ mask} b̂_qv[S]` — the sandwich lower bound `LB(S)` of
/// Definition 3 (the constant `ω[p]` factor does not change the argmax).
pub fn greedy_masked_cumulative<E: OpinionEstimate>(
    est: &mut E,
    k: usize,
    mask: &[bool],
) -> Vec<Node> {
    let mut selected = Vec::with_capacity(k);
    for _ in 0..k {
        let gains = est.cumulative_gains_masked(mask);
        let Some(best) = argmax_non_seed(est, &gains, None) else {
            break;
        };
        est.add_seed(best);
        selected.push(best);
    }
    selected
}

/// Argmax over non-seed nodes, with an optional secondary criterion for
/// ties; remaining ties go to the smaller id. Returns `None` only when
/// every node is already a seed.
fn argmax_non_seed<E: OpinionEstimate>(
    est: &E,
    gains: &[f64],
    secondary: Option<&[f64]>,
) -> Option<Node> {
    let mut best: Option<(Node, f64, f64)> = None;
    for (v, &g) in gains.iter().enumerate() {
        let v = v as Node;
        if est.is_seed(v) {
            continue;
        }
        let s = secondary.map_or(0.0, |sec| sec[v as usize]);
        let better = match best {
            None => true,
            Some((_, bg, bs)) => g > bg || (g == bg && s > bs),
        };
        if better {
            best = Some((v, g, s));
        }
    }
    best.map(|(v, _, _)| v)
}

/// Marginal gains for the plurality variants: for each candidate seed,
/// how much the estimated positional score would change, computed exactly
/// on the estimates from the per-(seed, user) deltas.
fn rank_gains<E: OpinionEstimate>(
    est: &E,
    score: &ScoringFunction,
    others: &OpinionMatrix,
    q: Candidate,
) -> Vec<f64> {
    let p = score.approval_depth().expect("plurality variant");
    let n = est.num_nodes();
    // Cache the current estimate and contribution of every user.
    let mut cur_est = vec![0.0f64; n];
    let mut cur_contrib = vec![0.0f64; n];
    for v in 0..n as Node {
        if let Some(e) = est.estimate(v) {
            let w = est.user_weight(v);
            if w > 0.0 {
                cur_est[v as usize] = e;
                cur_contrib[v as usize] = w * positional_contribution(score, others, q, v, e, p);
            }
        }
    }
    let deltas = est.pair_deltas();
    let mut gains = vec![0.0f64; n];
    for d in deltas {
        let v = d.user as usize;
        let w = est.user_weight(d.user);
        if w <= 0.0 {
            continue;
        }
        let new_contrib =
            w * positional_contribution(score, others, q, d.user, cur_est[v] + d.delta, p);
        gains[d.seed as usize] += new_contrib - cur_contrib[v];
    }
    gains
}

/// Marginal gains for the Copeland score: per candidate seed, recompute
/// the per-opponent weighted majorities with the affected users' new
/// estimates and count the change in one-on-one wins. Also returns, per
/// candidate seed, the total net-margin change across all duels (the
/// tie-break criterion).
fn copeland_gains<E: OpinionEstimate>(
    est: &E,
    others: &OpinionMatrix,
    q: Candidate,
) -> (Vec<f64>, Vec<f64>) {
    let n = est.num_nodes();
    let r = others.num_candidates();
    let opponents: Vec<Candidate> = (0..r).filter(|&x| x != q).collect();
    // Current weighted nets and estimates.
    let mut cur_est = vec![0.0f64; n];
    let mut sampled = vec![false; n];
    let mut net = vec![0.0f64; opponents.len()];
    for v in 0..n as Node {
        if let Some(e) = est.estimate(v) {
            let w = est.user_weight(v);
            if w > 0.0 {
                cur_est[v as usize] = e;
                sampled[v as usize] = true;
                for (xi, &x) in opponents.iter().enumerate() {
                    let bx = others.get(x, v);
                    if e > bx {
                        net[xi] += w;
                    } else if e < bx {
                        net[xi] -= w;
                    }
                }
            }
        }
    }
    let current_wins = net.iter().filter(|&&s| s > 0.0).count() as f64;

    let deltas = est.pair_deltas();
    let mut gains = vec![0.0f64; n];
    let mut margins = vec![0.0f64; n];
    let mut i = 0;
    let mut net_change = vec![0.0f64; opponents.len()];
    while i < deltas.len() {
        let seed = deltas[i].seed;
        net_change.iter_mut().for_each(|c| *c = 0.0);
        let mut j = i;
        while j < deltas.len() && deltas[j].seed == seed {
            let d = deltas[j];
            let v = d.user as usize;
            if sampled[v] {
                let w = est.user_weight(d.user);
                let old = cur_est[v];
                let new = old + d.delta;
                for (xi, &x) in opponents.iter().enumerate() {
                    let bx = others.get(x, d.user);
                    let old_sign = sign_contribution(old, bx);
                    let new_sign = sign_contribution(new, bx);
                    net_change[xi] += w * (new_sign - old_sign);
                }
            }
            j += 1;
        }
        let new_wins = net
            .iter()
            .zip(&net_change)
            .filter(|(&s, &c)| s + c > 0.0)
            .count() as f64;
        gains[seed as usize] = new_wins - current_wins;
        margins[seed as usize] = net_change.iter().sum();
        i = j;
    }
    (gains, margins)
}

#[inline]
fn sign_contribution(b: f64, bx: f64) -> f64 {
    if b > bx {
        1.0
    } else if b < bx {
        -1.0
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vom_graph::builder::graph_from_edges;
    use vom_walks::{Lambda, OpinionEstimator, WalkGenerator};

    fn running_example() -> (vom_graph::SocialGraph, Vec<f64>, Vec<f64>, OpinionMatrix) {
        let g = graph_from_edges(4, &[(0, 2, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap();
        let b0 = vec![0.40, 0.80, 0.60, 0.90];
        let d = vec![0.0, 0.0, 0.5, 0.5];
        let others =
            OpinionMatrix::from_rows(vec![vec![0.0; 4], vec![0.35, 0.75, 0.78, 0.90]]).unwrap();
        (g, b0, d, others)
    }

    #[test]
    fn score_with_target_row_matches_full_matrix_scoring() {
        let (_, _, _, others) = running_example();
        let target_row = [0.40, 0.80, 0.60, 0.75];
        let mut full = others.clone();
        full.set_row(0, &target_row);
        for score in [
            ScoringFunction::Cumulative,
            ScoringFunction::Plurality,
            ScoringFunction::PApproval { p: 2 },
            ScoringFunction::Copeland,
        ] {
            assert_eq!(
                score_with_target_row(&score, &others, 0, &target_row),
                score.score(&full, 0),
                "{score}"
            );
        }
    }

    #[test]
    fn greedy_cumulative_picks_paper_best_single_seed() {
        // Table I: seed {1} (our node 0) maximizes the cumulative score.
        let (g, b0, d, _) = running_example();
        let gen = WalkGenerator::new(&g, &d, 1);
        let arena = gen.generate_per_node(&Lambda::Uniform(20_000), 7);
        let mut est = OpinionEstimator::new(&arena, &b0);
        let seeds = greedy_on_estimate(&mut est, 1, &ScoringFunction::Cumulative, None, 0);
        assert_eq!(seeds, vec![0]);
    }

    #[test]
    fn greedy_plurality_picks_paper_best_single_seed() {
        // Table I: seed {3} (our node 2) maximizes the plurality score (4).
        let (g, b0, d, others) = running_example();
        let gen = WalkGenerator::new(&g, &d, 1);
        let arena = gen.generate_per_node(&Lambda::Uniform(20_000), 11);
        let mut est = OpinionEstimator::new(&arena, &b0);
        let seeds = greedy_on_estimate(&mut est, 1, &ScoringFunction::Plurality, Some(&others), 0);
        assert_eq!(seeds, vec![2]);
    }

    #[test]
    fn greedy_copeland_picks_a_winning_seed() {
        // Table I: Copeland becomes 1 with seed node 2 or 3.
        let (g, b0, d, others) = running_example();
        let gen = WalkGenerator::new(&g, &d, 1);
        let arena = gen.generate_per_node(&Lambda::Uniform(20_000), 13);
        let mut est = OpinionEstimator::new(&arena, &b0);
        let seeds = greedy_on_estimate(&mut est, 1, &ScoringFunction::Copeland, Some(&others), 0);
        assert_eq!(seeds.len(), 1);
        assert!(seeds[0] == 2 || seeds[0] == 3, "got {seeds:?}");
    }

    #[test]
    fn greedy_fills_the_budget_even_with_zero_gains() {
        let (g, _, d, _) = running_example();
        let b0 = vec![1.0; 4]; // nothing can improve
        let gen = WalkGenerator::new(&g, &d, 1);
        let arena = gen.generate_per_node(&Lambda::Uniform(100), 17);
        let mut est = OpinionEstimator::new(&arena, &b0);
        let seeds = greedy_on_estimate(&mut est, 2, &ScoringFunction::Cumulative, None, 0);
        assert_eq!(seeds.len(), 2);
        assert_eq!(seeds, vec![0, 1], "deterministic smallest-id fill");
    }

    #[test]
    fn non_submodularity_example_3_reproduced_on_estimates() {
        // §IV-D: F({2}) - F({}) = 0 but F({1,2}) - F({1}) = 1 for
        // plurality (paper's 1-indexed users; ours are 1 and 0).
        let (g, b0, d, others) = running_example();
        let gen = WalkGenerator::new(&g, &d, 1);
        let arena = gen.generate_per_node(&Lambda::Uniform(30_000), 19);

        // Gain of node 1 on the empty set: 0.
        let est0 = OpinionEstimator::new(&arena, &b0);
        let g0 = rank_gains(&est0, &ScoringFunction::Plurality, &others, 0);
        assert_eq!(g0[1], 0.0);

        // Gain of node 1 once node 0 is seeded: 1 (user 2 flips).
        let mut est1 = OpinionEstimator::new(&arena, &b0);
        est1.add_seed(0);
        let g1 = rank_gains(&est1, &ScoringFunction::Plurality, &others, 0);
        assert!((g1[1] - 1.0).abs() < 0.1, "gain {}", g1[1]);
    }
}
