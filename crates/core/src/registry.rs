//! The unified method registry — the single source of truth for the nine
//! compared methods of §VIII-A ("Methods Compared"): identity, paper
//! legend name, and whether the method is one of the paper's proposed
//! engines or a baseline.
//!
//! Everything that used to hand-maintain its own copy of the legend
//! strings ([`crate::Method::name`], the bench harness's `AnyMethod`)
//! derives them from here instead.

/// Identity of one compared method. The discriminant doubles as the
/// index into [`METHOD_REGISTRY`], which also fixes the paper's legend
/// order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum MethodId {
    /// Direct matrix multiplication greedy (ours, exact).
    Dm = 0,
    /// Random-walk greedy (ours, Algorithm 4).
    Rw = 1,
    /// Reverse sketching greedy (ours, Algorithm 5 — recommended).
    Rs = 2,
    /// IMM under the Independent Cascade model.
    Ic = 3,
    /// IMM under the Linear Threshold model.
    Lt = 4,
    /// Gionis et al. greedy at a finite horizon.
    Gedt = 5,
    /// PageRank centrality.
    Pr = 6,
    /// Random walk with restart.
    Rwr = 7,
    /// Degree centrality.
    Dc = 8,
}

/// Registry entry: everything the harness needs to present a method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MethodDescriptor {
    /// The method's identity.
    pub id: MethodId,
    /// Display name matching the paper's figure legends.
    pub name: &'static str,
    /// Whether this is one of the paper's proposed methods (DM/RW/RS) as
    /// opposed to a §VIII baseline.
    pub ours: bool,
    /// One-line description (shown by tooling; mirrors §VIII-A).
    pub summary: &'static str,
}

/// All nine methods, in the paper's legend order.
pub const METHOD_REGISTRY: [MethodDescriptor; 9] = [
    MethodDescriptor {
        id: MethodId::Dm,
        name: "DM",
        ours: true,
        summary: "exact greedy by direct matrix-vector iteration",
    },
    MethodDescriptor {
        id: MethodId::Rw,
        name: "RW",
        ours: true,
        summary: "greedy on reverse random-walk estimates",
    },
    MethodDescriptor {
        id: MethodId::Rs,
        name: "RS",
        ours: true,
        summary: "greedy on reverse sketch estimates (recommended)",
    },
    MethodDescriptor {
        id: MethodId::Ic,
        name: "IC",
        ours: false,
        summary: "IMM seeds under the Independent Cascade model",
    },
    MethodDescriptor {
        id: MethodId::Lt,
        name: "LT",
        ours: false,
        summary: "IMM seeds under the Linear Threshold model",
    },
    MethodDescriptor {
        id: MethodId::Gedt,
        name: "GED-T",
        ours: false,
        summary: "Gionis et al. opinion greedy at a finite horizon",
    },
    MethodDescriptor {
        id: MethodId::Pr,
        name: "PR",
        ours: false,
        summary: "PageRank centrality",
    },
    MethodDescriptor {
        id: MethodId::Rwr,
        name: "RWR",
        ours: false,
        summary: "random walk with restart",
    },
    MethodDescriptor {
        id: MethodId::Dc,
        name: "DC",
        ours: false,
        summary: "degree centrality",
    },
];

impl MethodId {
    /// All nine methods, in the paper's legend order.
    pub fn all() -> [MethodId; 9] {
        [
            MethodId::Dm,
            MethodId::Rw,
            MethodId::Rs,
            MethodId::Ic,
            MethodId::Lt,
            MethodId::Gedt,
            MethodId::Pr,
            MethodId::Rwr,
            MethodId::Dc,
        ]
    }

    /// The paper's three proposed engines.
    pub fn proposed() -> [MethodId; 3] {
        [MethodId::Dm, MethodId::Rw, MethodId::Rs]
    }

    /// The fast subset used by wide sweeps when exact DM would dominate
    /// the wall clock.
    pub fn without_exact() -> [MethodId; 8] {
        [
            MethodId::Rw,
            MethodId::Rs,
            MethodId::Ic,
            MethodId::Lt,
            MethodId::Gedt,
            MethodId::Pr,
            MethodId::Rwr,
            MethodId::Dc,
        ]
    }

    /// The registry entry for this method.
    pub fn descriptor(self) -> &'static MethodDescriptor {
        &METHOD_REGISTRY[self as usize]
    }

    /// Display name matching the paper's legends.
    pub fn name(self) -> &'static str {
        self.descriptor().name
    }

    /// Whether this is one of the paper's proposed methods.
    pub fn is_ours(self) -> bool {
        self.descriptor().ours
    }

    /// Looks a method up by its legend name (case-sensitive).
    pub fn from_name(name: &str) -> Option<MethodId> {
        METHOD_REGISTRY
            .iter()
            .find(|d| d.name == name)
            .map(|d| d.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_indexing_matches_discriminants() {
        for (i, d) in METHOD_REGISTRY.iter().enumerate() {
            assert_eq!(d.id as usize, i, "{}", d.name);
            assert_eq!(d.id.descriptor(), d);
        }
        for (id, d) in MethodId::all().iter().zip(&METHOD_REGISTRY) {
            assert_eq!(*id, d.id);
        }
    }

    #[test]
    fn legend_names_are_unique_and_stable() {
        // The paper's legend strings are load-bearing across every figure
        // and table; any rename must be deliberate.
        let expected = ["DM", "RW", "RS", "IC", "LT", "GED-T", "PR", "RWR", "DC"];
        let names: Vec<&str> = MethodId::all().iter().map(|m| m.name()).collect();
        assert_eq!(names, expected);
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "duplicate legend name");
    }

    #[test]
    fn ours_flags_match_the_paper() {
        let ours: Vec<MethodId> = MethodId::all()
            .into_iter()
            .filter(|m| m.is_ours())
            .collect();
        assert_eq!(ours, MethodId::proposed());
        assert!(MethodId::without_exact().iter().all(|m| *m != MethodId::Dm));
    }

    #[test]
    fn from_name_round_trips() {
        for id in MethodId::all() {
            assert_eq!(MethodId::from_name(id.name()), Some(id));
        }
        assert_eq!(MethodId::from_name("nope"), None);
    }
}
