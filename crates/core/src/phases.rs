//! Process-wide per-phase wall-clock accounting for the query hot path.
//!
//! The `repro --bench-json` trajectory file attributes query time to the
//! three phases the paper's complexity analysis separates (§III-C):
//!
//! * **diffusion** — exact opinion evolution (`B^{(t)}` runs: DM's
//!   per-candidate evaluations, competitor/seedless matrices, exact
//!   score evaluations);
//! * **truncation** — walk/sketch truncation when a seed is committed
//!   (`add_seed` on the estimators);
//! * **scoring** — candidate gain computation (rank lookups, delta
//!   application, cumulative gain scans) and exact score tallies.
//!
//! Diffusion is split further into cold full solves ([`Phase::Diffusion`])
//! and warm-start frontier solves ([`Phase::DiffusionWarm`]) so the bench
//! trajectory can show how much of the exact-DM wall the warm path
//! absorbed; solve/frontier *counts* live in [`SolverCounters`].
//!
//! Counters are process-wide atomics, so the parallel pool's workers can
//! report from inside `par_iter` closures; readers take
//! [`snapshot`] deltas around the section they want attributed. The
//! phases cover the *hot* work, not every instruction — orchestration
//! (heap bookkeeping, sandwich arbitration) is deliberately left
//! unattributed, so the three phases sum to slightly less than the
//! section's wall clock. Timing the timers: one `Instant` pair per
//! greedy iteration / diffusion run, which is noise next to the work
//! being measured.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

pub use vom_diffusion::{CostBudget, CostMeter, SolverCounters};

/// A hot-path phase of the query pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Exact opinion diffusion: cold (full fixed-horizon) solves.
    Diffusion = 0,
    /// Seed-commit truncation on walk arenas / sketch sets.
    Truncation = 1,
    /// Candidate scoring: rank lookups, delta application, gain scans.
    Scoring = 2,
    /// Exact opinion diffusion: warm-start frontier solves.
    DiffusionWarm = 3,
}

static NANOS: [AtomicU64; 4] = [
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
    AtomicU64::new(0),
];

/// Adds `elapsed` to a phase's process-wide counter.
#[inline]
pub fn record(phase: Phase, elapsed: Duration) {
    NANOS[phase as usize].fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
}

/// Runs `f`, attributing its wall clock to `phase`.
#[inline]
pub fn timed<T>(phase: Phase, f: impl FnOnce() -> T) -> T {
    // audit:allow(d-wall-clock, "phase timer: elapsed feeds reported timings, never selection order")
    let start = Instant::now();
    let out = f();
    record(phase, start.elapsed());
    out
}

/// Accumulated per-phase wall clock since process start (or the sum of
/// concurrent workers' wall clocks — on a pool the phases can exceed
/// real time).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    /// Cold (full-solve) exact diffusion time.
    pub diffusion: Duration,
    /// Truncation time.
    pub truncation: Duration,
    /// Scoring time.
    pub scoring: Duration,
    /// Warm-start (frontier-solve) exact diffusion time.
    pub diffusion_warm: Duration,
}

impl PhaseTimes {
    /// The phase totals accumulated since an earlier snapshot.
    pub fn since(self, earlier: PhaseTimes) -> PhaseTimes {
        PhaseTimes {
            diffusion: self.diffusion.saturating_sub(earlier.diffusion),
            truncation: self.truncation.saturating_sub(earlier.truncation),
            scoring: self.scoring.saturating_sub(earlier.scoring),
            diffusion_warm: self.diffusion_warm.saturating_sub(earlier.diffusion_warm),
        }
    }

    /// Accumulates another breakdown into this one.
    pub fn add(&mut self, other: PhaseTimes) {
        self.diffusion += other.diffusion;
        self.truncation += other.truncation;
        self.scoring += other.scoring;
        self.diffusion_warm += other.diffusion_warm;
    }

    /// Total exact diffusion time, cold + warm — the historical
    /// `diffusion` semantics before the warm split.
    pub fn diffusion_total(&self) -> Duration {
        self.diffusion + self.diffusion_warm
    }
}

/// Worker-local phase accumulator for per-item instrumentation inside
/// parallel loops: sections accumulate into plain fields and flush to
/// the shared atomics **once, on drop** — per-item atomic RMWs on the
/// three adjacent counters would ping-pong one cache line across every
/// pool worker. Hold one in the worker's `map_init` scratch; it flushes
/// when the pool tears the scratch down.
#[derive(Debug, Default)]
pub struct PhaseLocal {
    acc: [Duration; 4],
}

impl PhaseLocal {
    /// Adds `elapsed` to the local accumulator for `phase`.
    #[inline]
    pub fn add(&mut self, phase: Phase, elapsed: Duration) {
        self.acc[phase as usize] += elapsed;
    }

    /// Runs `f`, attributing its wall clock to `phase` locally.
    #[inline]
    pub fn timed<T>(&mut self, phase: Phase, f: impl FnOnce() -> T) -> T {
        // audit:allow(d-wall-clock, "phase timer: elapsed feeds reported timings, never selection order")
        let start = Instant::now();
        let out = f();
        self.add(phase, start.elapsed());
        out
    }
}

impl Drop for PhaseLocal {
    fn drop(&mut self) {
        for (i, d) in self.acc.iter().enumerate() {
            if !d.is_zero() {
                NANOS[i].fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
            }
        }
    }
}

/// Current counter values.
pub fn snapshot() -> PhaseTimes {
    PhaseTimes {
        diffusion: Duration::from_nanos(NANOS[0].load(Ordering::Relaxed)),
        truncation: Duration::from_nanos(NANOS[1].load(Ordering::Relaxed)),
        scoring: Duration::from_nanos(NANOS[2].load(Ordering::Relaxed)),
        diffusion_warm: Duration::from_nanos(NANOS[3].load(Ordering::Relaxed)),
    }
}

/// Current process-wide solver counters (re-exported from the diffusion
/// crate so bench/report code reads phases and counters from one place).
pub fn solver_counters() -> SolverCounters {
    SolverCounters::snapshot()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timers_accumulate_and_diff() {
        let before = snapshot();
        timed(Phase::Scoring, || {
            std::thread::sleep(Duration::from_millis(2))
        });
        record(Phase::Diffusion, Duration::from_micros(5));
        record(Phase::DiffusionWarm, Duration::from_micros(7));
        let delta = snapshot().since(before);
        assert!(delta.scoring >= Duration::from_millis(2));
        assert!(delta.diffusion >= Duration::from_micros(5));
        assert!(delta.diffusion_warm >= Duration::from_micros(7));
        assert!(delta.diffusion_total() >= Duration::from_micros(12));
        let mut acc = PhaseTimes::default();
        acc.add(delta);
        assert_eq!(acc.scoring, delta.scoring);
        assert_eq!(acc.diffusion_warm, delta.diffusion_warm);
    }
}
