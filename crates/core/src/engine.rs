//! The prepared-engine selection API: build artifacts once, query many.
//!
//! The paper's practical pitch for RW/RS is that one expensive
//! precomputation (the walk arena of Algorithm 4, the sketch set of
//! Algorithm 5) amortizes over many cheap greedy queries. This module
//! makes that split explicit:
//!
//! 1. [`SeedSelector::prepare`] builds the engine's reusable artifacts
//!    for one `(instance, target, horizon)` and a seed budget, recording
//!    build time and heap bytes;
//! 2. [`Prepared::select`] answers a [`Query`] — any `k` up to the
//!    prepared budget, any scoring rule, plain or sandwich greedy —
//!    against the shared artifacts.
//!
//! Artifacts are cached per [`RuleClass`]: the walk arena differs between
//! the cumulative score (uniform λ, Theorem 10) and the competitive
//! scores (γ*-based per-node λ, Theorems 11–12), so an engine prepared on
//! one class lazily builds the other's artifacts on first use — still
//! exactly once each. The one-shot conveniences
//! [`crate::select_seeds`]/[`crate::select_seeds_plain`] are thin
//! wrappers over this lifecycle.
//!
//! External crates plug their own methods in by implementing
//! [`SeedSelector`] + [`PreparedBackend`] (the §VIII baselines in
//! `vom-baselines` do exactly that) and registering a [`MethodId`] in
//! the registry.

use crate::bounds::favorable_users;
use crate::dm::{dm_greedy_masked_cumulative, dm_greedy_with_others};
use crate::problem::Problem;
use crate::registry::MethodId;
use crate::rs::{sketch_theta, RsConfig};
use crate::rw::{competitive_arena, competitive_gammas, uniform_arena, RwConfig};
use crate::sandwich::{sandwich_select, SandwichInfo};
use crate::{CoreError, Result};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};
use vom_diffusion::OpinionMatrix;
use vom_graph::{Candidate, Node};
use vom_sketch::SketchSet;
use vom_voting::ScoringFunction;
use vom_walks::{OpinionEstimator, WalkArena};

/// The three proposed selection engines behind the prepared lifecycle
/// (§VIII compares them as DM, RW, RS). This is the type the one-shot
/// [`crate::Method`] alias points at.
#[derive(Debug, Clone)]
pub enum Engine {
    /// Exact direct matrix–vector greedy.
    Dm,
    /// Random-walk estimation (Algorithm 4).
    Rw(RwConfig),
    /// Reverse sketching (Algorithm 5) — the recommended method.
    Rs(RsConfig),
}

impl Engine {
    /// Display name matching the paper's legends (from the registry).
    pub fn name(&self) -> &'static str {
        self.id().name()
    }

    /// The registry identity of this engine.
    pub fn id(&self) -> MethodId {
        match self {
            Engine::Dm => MethodId::Dm,
            Engine::Rw(_) => MethodId::Rw,
            Engine::Rs(_) => MethodId::Rs,
        }
    }

    /// RW with paper-default parameters.
    pub fn rw_default() -> Self {
        Engine::Rw(RwConfig::default())
    }

    /// RS with paper-default parameters.
    pub fn rs_default() -> Self {
        Engine::Rs(RsConfig::default())
    }
}

/// Coarse partition of the scoring rules by the estimator artifacts they
/// need: the walk arena / sketch count is chosen per class, not per rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleClass {
    /// The submodular cumulative score (Theorem 3).
    Cumulative = 0,
    /// Plurality and the p-approval variants (Definition 3's bounds).
    Rank = 1,
    /// Copeland (pairwise duels; needs the widest estimates).
    Copeland = 2,
}

impl RuleClass {
    /// The class a scoring rule belongs to.
    pub fn of(score: &ScoringFunction) -> RuleClass {
        match score {
            ScoringFunction::Cumulative => RuleClass::Cumulative,
            ScoringFunction::Copeland => RuleClass::Copeland,
            _ => RuleClass::Rank,
        }
    }
}

/// How a query runs the greedy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectionMode {
    /// Paper behavior: plain greedy for the submodular cumulative score,
    /// sandwich approximation (Algorithm 3) for the rank-based scores.
    #[default]
    Auto,
    /// Plain greedy only (Algorithm 1/4/5 without the sandwich wrapper).
    Plain,
}

/// One selection request against a prepared engine.
#[derive(Debug, Clone)]
pub struct Query {
    /// Seed budget; must not exceed the prepared budget.
    pub k: usize,
    /// The voting-based objective to optimize.
    pub rule: ScoringFunction,
    /// Target candidate; must match the candidate the engine was
    /// prepared for (the artifacts are target-specific).
    pub target: Candidate,
    /// Plain or auto (sandwich where the paper prescribes it).
    pub mode: SelectionMode,
}

impl Query {
    /// An auto-mode query.
    pub fn new(k: usize, rule: ScoringFunction, target: Candidate) -> Query {
        Query {
            k,
            rule,
            target,
            mode: SelectionMode::Auto,
        }
    }

    /// A plain-greedy query.
    pub fn plain(k: usize, rule: ScoringFunction, target: Candidate) -> Query {
        Query {
            k,
            rule,
            target,
            mode: SelectionMode::Plain,
        }
    }
}

/// Build-side diagnostics of a prepared engine.
#[derive(Debug, Clone, Copy)]
pub struct BuildStats {
    /// Wall-clock time spent in [`SeedSelector::prepare`] (eager builds
    /// only; lazily added rule classes are not included). The build runs
    /// on the parallel pool, so this is wall time over [`BuildStats::threads`]
    /// workers, not CPU time.
    pub build_time: Duration,
    /// Worker threads the pool offered while `prepare` ran
    /// (`rayon::current_num_threads()` at prepare time — the `VOM_THREADS`
    /// setting or available parallelism).
    pub threads: usize,
    /// Heap bytes currently held by the artifacts (walk arenas / sketch
    /// sets); 0 for DM. The Figure 17(b) series.
    pub heap_bytes: usize,
    /// Number of estimator artifacts built so far (eager + lazy).
    pub artifact_builds: usize,
}

/// Outcome of a seed selection run.
#[derive(Debug, Clone)]
pub struct SelectionResult {
    /// The selected seeds (size `min(k, n)`), in selection order.
    pub seeds: Vec<Node>,
    /// Exact objective value `F(B^{(t)}[S], c_q)` of the returned set.
    pub exact_score: f64,
    /// Wall-clock selection time (excludes the final exact evaluation;
    /// the one-shot wrappers fold artifact build time in, a prepared
    /// [`Prepared::select`] does not — see [`BuildStats::build_time`]).
    pub elapsed: Duration,
    /// Heap bytes held by the estimator (walk arena / sketch set); 0 for
    /// DM. The Figure 17(b) series.
    pub estimator_heap_bytes: usize,
    /// Sandwich diagnostics, present for the non-submodular scores.
    pub sandwich: Option<SandwichInfo>,
}

/// A selection method with the build-once/query-many lifecycle.
///
/// Implementors: the three core [`Engine`]s here, the six §VIII baselines
/// in `vom-baselines`. `prepare` does the expensive, reusable work;
/// everything per-query lives behind [`Prepared::select`].
pub trait SeedSelector {
    /// The registry identity of this method.
    fn id(&self) -> MethodId;

    /// Builds the engine's artifacts for `problem`'s instance, target,
    /// horizon, and budget (`problem.k`); `problem.score` hints which
    /// rule class to build eagerly.
    fn prepare<'a>(&self, problem: &Problem<'a>) -> Result<Prepared<'a>>;

    /// One-shot convenience: prepare for exactly this problem, run one
    /// auto-mode query, and fold the build time into
    /// [`SelectionResult::elapsed`].
    fn select_once(&self, problem: &Problem<'_>) -> Result<SelectionResult> {
        select_once_with(self, problem, SelectionMode::Auto)
    }
}

/// Shared body of the one-shot wrappers (`select_seeds`,
/// `select_seeds_plain`, [`SeedSelector::select_once`]).
pub fn select_once_with<S: SeedSelector + ?Sized>(
    selector: &S,
    problem: &Problem<'_>,
    mode: SelectionMode,
) -> Result<SelectionResult> {
    let mut prepared = selector.prepare(problem)?;
    let query = Query {
        k: problem.k,
        rule: problem.score.clone(),
        target: problem.target,
        mode,
    };
    let mut res = prepared.select(&query)?;
    res.elapsed += prepared.build_stats().build_time;
    Ok(res)
}

/// The per-engine greedy primitives a [`Prepared`] drives. Implementors
/// own the reusable artifacts; the generic sandwich orchestration (mask
/// construction, feasible-solution arbitration, Algorithm 3) lives in
/// [`Prepared::select`] and is shared by every engine.
pub trait PreparedBackend<'a> {
    /// Heap bytes currently held by the artifacts.
    fn heap_bytes(&self) -> usize;

    /// Number of estimator artifacts built so far.
    fn artifact_builds(&self) -> usize {
        0
    }

    /// Plain greedy for `problem.k` seeds under `problem.score`
    /// (Algorithm 1/4/5 without the sandwich wrapper). `others` carries
    /// the exact competitor opinions whenever the score is competitive
    /// and [`PreparedBackend::needs_exact_competitors`] is true.
    fn greedy(
        &mut self,
        problem: &Problem<'a>,
        others: Option<&OpinionMatrix>,
    ) -> Result<Vec<Node>>;

    /// Greedy maximization of the masked cumulative estimate — the
    /// engine half of the sandwich bounds (Definition 3). Only called
    /// when [`PreparedBackend::supports_sandwich`] is true.
    fn greedy_masked_cumulative(
        &mut self,
        problem: &Problem<'a>,
        mask: &[bool],
        others: Option<&OpinionMatrix>,
    ) -> Result<Vec<Node>> {
        let _ = mask;
        self.greedy(problem, others)
    }

    /// Whether auto-mode queries on rank-based scores should run the
    /// sandwich approximation (the core engines) or take the engine's
    /// plain selection as-is (the baselines, per §VIII-A).
    fn supports_sandwich(&self) -> bool {
        false
    }

    /// Whether the engine's greedy needs the exact competitor opinions
    /// for competitive scores. Baselines that rank by pure structure
    /// (degree, PageRank, …) return false and skip that computation.
    fn needs_exact_competitors(&self) -> bool {
        true
    }
}

/// A prepared engine: shared artifacts plus cached exact matrices,
/// answering many [`Query`]s for one `(instance, target, horizon)`.
pub struct Prepared<'a> {
    spec: Problem<'a>,
    id: MethodId,
    backend: Box<dyn PreparedBackend<'a> + 'a>,
    build_time: Duration,
    /// Thread count in effect when the engine was prepared (captured at
    /// construction; the pool setting may change between prepare and a
    /// later `build_stats()` call).
    build_threads: usize,
    /// Exact non-target opinions at the horizon (lazily cached; depends
    /// only on the prepared instance/target/horizon).
    others: Option<OpinionMatrix>,
    /// Exact seedless opinions at the horizon (lazily cached).
    seedless: Option<OpinionMatrix>,
}

impl<'a> Prepared<'a> {
    /// Wraps a backend into the prepared lifecycle. `spec.k` becomes the
    /// prepared budget; `spec.score` records the eagerly built class.
    pub fn new(
        spec: Problem<'a>,
        id: MethodId,
        backend: Box<dyn PreparedBackend<'a> + 'a>,
        build_time: Duration,
    ) -> Prepared<'a> {
        Prepared {
            spec,
            id,
            backend,
            build_time,
            build_threads: rayon::current_num_threads(),
            others: None,
            seedless: None,
        }
    }

    /// Like [`Prepared::new`], seeding the competitor-opinion cache with
    /// a matrix the engine already computed during its build.
    pub fn with_cached_others(
        spec: Problem<'a>,
        id: MethodId,
        backend: Box<dyn PreparedBackend<'a> + 'a>,
        build_time: Duration,
        others: Option<OpinionMatrix>,
    ) -> Prepared<'a> {
        Prepared {
            others,
            ..Prepared::new(spec, id, backend, build_time)
        }
    }

    /// The registry identity of the prepared method.
    pub fn method_id(&self) -> MethodId {
        self.id
    }

    /// The maximum budget queries may request.
    pub fn budget(&self) -> usize {
        self.spec.k
    }

    /// The prepared target candidate.
    pub fn target(&self) -> Candidate {
        self.spec.target
    }

    /// The scoring rule the engine was prepared with (queries may use any
    /// other rule; its artifacts are then built on first use).
    pub fn rule(&self) -> &ScoringFunction {
        &self.spec.score
    }

    /// Build-side diagnostics.
    pub fn build_stats(&self) -> BuildStats {
        BuildStats {
            build_time: self.build_time,
            threads: self.build_threads,
            heap_bytes: self.backend.heap_bytes(),
            artifact_builds: self.backend.artifact_builds(),
        }
    }

    /// An auto-mode query for `k` seeds under the prepared rule.
    pub fn query(&self, k: usize) -> Query {
        Query::new(k, self.spec.score.clone(), self.spec.target)
    }

    /// Convenience: auto-mode selection of `k` seeds under the prepared
    /// rule.
    pub fn select_k(&mut self, k: usize) -> Result<SelectionResult> {
        let query = self.query(k);
        self.select(&query)
    }

    /// Answers one query against the shared artifacts: plain greedy, or
    /// the sandwich approximation (Algorithm 3) where auto mode
    /// prescribes it. Bit-identical to the one-shot path for the same
    /// budget and seeds (the equivalence suite in
    /// `tests/prepared_equivalence.rs` asserts this).
    pub fn select(&mut self, query: &Query) -> Result<SelectionResult> {
        if query.target != self.spec.target {
            return Err(CoreError::PreparedTargetMismatch {
                requested: query.target,
                prepared: self.spec.target,
            });
        }
        if query.k > self.spec.k {
            return Err(CoreError::BudgetExceedsPrepared {
                k: query.k,
                budget: self.spec.k,
            });
        }
        query.rule.validate(self.spec.instance.num_candidates())?;
        let problem = Problem {
            k: query.k,
            score: query.rule.clone(),
            ..self.spec.clone()
        };

        // Fill the exact-matrix caches the query needs before the timed
        // section mutably borrows the backend.
        let competitive = problem.is_competitive() && self.backend.needs_exact_competitors();
        if competitive && self.others.is_none() {
            self.others = Some(problem.non_target_opinions());
        }
        let sandwich = matches!(query.mode, SelectionMode::Auto)
            && problem.is_competitive()
            && self.backend.supports_sandwich();
        if sandwich && self.seedless.is_none() {
            self.seedless = Some(problem.opinions(&[]));
        }
        let others = if competitive {
            self.others.as_ref()
        } else {
            None
        };

        let start = Instant::now();
        let (seeds, info) = if !sandwich {
            (self.backend.greedy(&problem, others)?, None)
        } else {
            let seedless = self.seedless.as_ref().expect("cached above");
            let mask = problem.score.approval_depth().map(|p| {
                let favorable = favorable_users(seedless, problem.target, p);
                let mut mask = vec![false; problem.num_nodes()];
                for v in favorable {
                    mask[v as usize] = true;
                }
                mask
            });
            let all_mask = vec![true; problem.num_nodes()];
            let s_rank = self.backend.greedy(&problem, others)?;
            let s_cum = self
                .backend
                .greedy_masked_cumulative(&problem, &all_mask, others)?;
            let s_f = better_feasible(&problem, s_rank, s_cum);
            let s_l = match &mask {
                Some(m) => Some(self.backend.greedy_masked_cumulative(&problem, m, others)?),
                None => None,
            };
            let (seeds, info) = sandwich_select(&problem, seedless, s_f, s_l);
            (seeds, Some(info))
        };
        let elapsed = start.elapsed();
        let exact_score = problem.exact_score(&seeds);
        Ok(SelectionResult {
            seeds,
            exact_score,
            elapsed,
            estimator_heap_bytes: self.backend.heap_bytes(),
            sandwich: info,
        })
    }
}

/// Picks the better of two feasible seed sets by exact score. Algorithm 3
/// admits *any* feasible solution for `S_F`; alongside the rank-objective
/// greedy we always evaluate the cumulative-objective greedy over the
/// same estimator artifacts — on noisy estimates the myopic rank greedy
/// can trail the broad opinion-lifting strategy, and this keeps the
/// sandwich outcome no worse than a GED-T-style selection.
fn better_feasible(problem: &Problem<'_>, a: Vec<Node>, b: Vec<Node>) -> Vec<Node> {
    if problem.exact_score(&a) >= problem.exact_score(&b) {
        a
    } else {
        b
    }
}

impl SeedSelector for Engine {
    fn id(&self) -> MethodId {
        Engine::id(self)
    }

    fn prepare<'a>(&self, problem: &Problem<'a>) -> Result<Prepared<'a>> {
        let start = Instant::now();
        // The competitive artifacts (γ* pilot, rank/Copeland estimates)
        // need the exact competitor opinions; compute them once here and
        // hand the matrix to the Prepared cache so queries reuse it.
        let others = (problem.is_competitive() && !matches!(self, Engine::Dm))
            .then(|| problem.non_target_opinions());
        let backend: Box<dyn PreparedBackend<'a> + 'a> = match self {
            Engine::Dm => Box::new(DmBackend),
            Engine::Rw(cfg) => Box::new(RwBackend::prepare(cfg.clone(), problem, others.as_ref())),
            Engine::Rs(cfg) => Box::new(RsBackend::prepare(cfg.clone(), problem)),
        };
        let build_time = start.elapsed();
        Ok(Prepared::with_cached_others(
            problem.clone(),
            self.id(),
            backend,
            build_time,
            others,
        ))
    }
}

// ---------------------------------------------------------------------
// Build counters (observability for the build-once guarantees)
// ---------------------------------------------------------------------

static RW_ARENA_BUILDS: AtomicUsize = AtomicUsize::new(0);
static RS_SKETCH_BUILDS: AtomicUsize = AtomicUsize::new(0);

/// Process-wide counters of estimator artifact builds, for asserting the
/// build-once/query-many property (see `tests/build_counter.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BuildCounters {
    /// Walk arenas generated by the RW engine (per rule class).
    pub rw_arenas: usize,
    /// Sketch sets generated by the RS engine (per distinct θ).
    pub rs_sketches: usize,
}

impl BuildCounters {
    /// Current counter values.
    pub fn snapshot() -> BuildCounters {
        BuildCounters {
            rw_arenas: RW_ARENA_BUILDS.load(Ordering::Relaxed),
            rs_sketches: RS_SKETCH_BUILDS.load(Ordering::Relaxed),
        }
    }

    /// Builds since an earlier snapshot.
    pub fn since(self, earlier: BuildCounters) -> BuildCounters {
        BuildCounters {
            rw_arenas: self.rw_arenas - earlier.rw_arenas,
            rs_sketches: self.rs_sketches - earlier.rs_sketches,
        }
    }
}

pub(crate) fn count_rw_arena_build() {
    RW_ARENA_BUILDS.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn count_rs_sketch_build() {
    RS_SKETCH_BUILDS.fetch_add(1, Ordering::Relaxed);
}

// ---------------------------------------------------------------------
// DM backend
// ---------------------------------------------------------------------

/// DM holds no estimator artifacts; its reusable state is the exact
/// competitor matrix, which the [`Prepared`] cache already carries.
struct DmBackend;

impl<'a> PreparedBackend<'a> for DmBackend {
    fn heap_bytes(&self) -> usize {
        0
    }

    fn greedy(
        &mut self,
        problem: &Problem<'a>,
        others: Option<&OpinionMatrix>,
    ) -> Result<Vec<Node>> {
        Ok(dm_greedy_with_others(problem, others))
    }

    fn greedy_masked_cumulative(
        &mut self,
        problem: &Problem<'a>,
        mask: &[bool],
        _others: Option<&OpinionMatrix>,
    ) -> Result<Vec<Node>> {
        Ok(dm_greedy_masked_cumulative(problem, mask))
    }

    fn supports_sandwich(&self) -> bool {
        true
    }
}

// ---------------------------------------------------------------------
// RW backend
// ---------------------------------------------------------------------

/// Cached walk arenas, one per rule class (the λ schedule differs), plus
/// the γ* pilot shared by the two competitive classes.
struct RwBackend {
    cfg: RwConfig,
    /// The prepared budget: the γ* pilot depth derives from it (pin
    /// `RwConfig::gamma_pilot` to decouple artifacts from the budget).
    budget: usize,
    gammas: Option<Vec<f64>>,
    arenas: [Option<WalkArena>; 3],
    builds: usize,
}

impl RwBackend {
    fn prepare(cfg: RwConfig, problem: &Problem<'_>, others: Option<&OpinionMatrix>) -> RwBackend {
        let mut backend = RwBackend {
            cfg,
            budget: problem.k,
            gammas: None,
            arenas: [None, None, None],
            builds: 0,
        };
        backend.ensure_arena(problem, others);
        backend
    }

    fn ensure_arena(&mut self, problem: &Problem<'_>, others: Option<&OpinionMatrix>) {
        let class = RuleClass::of(&problem.score);
        if self.arenas[class as usize].is_some() {
            return;
        }
        let arena = match class {
            RuleClass::Cumulative => uniform_arena(problem, &self.cfg),
            RuleClass::Rank | RuleClass::Copeland => {
                let others = others.expect("competitive arena needs exact competitor opinions");
                let budget = self.budget;
                let cfg = &self.cfg;
                let gammas = self
                    .gammas
                    .get_or_insert_with(|| competitive_gammas(problem, cfg, budget, others));
                competitive_arena(
                    problem,
                    &self.cfg,
                    gammas,
                    matches!(class, RuleClass::Copeland),
                )
            }
        };
        self.builds += 1;
        self.arenas[class as usize] = Some(arena);
    }

    fn estimator<'s>(&'s self, problem: &Problem<'_>, class: RuleClass) -> OpinionEstimator<'s> {
        let arena = self.arenas[class as usize]
            .as_ref()
            .expect("arena built by ensure_arena");
        let cand = problem.instance.candidate(problem.target);
        let mut est = OpinionEstimator::new(arena, &cand.initial);
        for &s in &cand.fixed_seeds {
            est.add_seed(s);
        }
        est
    }
}

impl<'a> PreparedBackend<'a> for RwBackend {
    fn heap_bytes(&self) -> usize {
        self.arenas.iter().flatten().map(|a| a.heap_bytes()).sum()
    }

    fn artifact_builds(&self) -> usize {
        self.builds
    }

    fn greedy(
        &mut self,
        problem: &Problem<'a>,
        others: Option<&OpinionMatrix>,
    ) -> Result<Vec<Node>> {
        self.ensure_arena(problem, others);
        let mut est = self.estimator(problem, RuleClass::of(&problem.score));
        Ok(crate::greedy::greedy_on_estimate(
            &mut est,
            problem.k,
            &problem.score,
            others,
            problem.target,
        ))
    }

    fn greedy_masked_cumulative(
        &mut self,
        problem: &Problem<'a>,
        mask: &[bool],
        others: Option<&OpinionMatrix>,
    ) -> Result<Vec<Node>> {
        // The masked cumulative greedy shares the *query rule's* arena
        // (§IV-D builds the artifacts once per selection).
        self.ensure_arena(problem, others);
        let mut est = self.estimator(problem, RuleClass::of(&problem.score));
        Ok(crate::greedy::greedy_masked_cumulative(
            &mut est, problem.k, mask,
        ))
    }

    fn supports_sandwich(&self) -> bool {
        true
    }
}

// ---------------------------------------------------------------------
// RS backend
// ---------------------------------------------------------------------

/// Cached sketch sets, keyed by the sketch count θ (rule classes whose θ
/// coincide — always the case under `theta_override` — share one sketch).
struct RsBackend {
    cfg: RsConfig,
    budget: usize,
    /// θ per rule class, memoized (the Theorem 13 bound for cumulative
    /// runs a sampling-based OPT lower bound; worth caching by itself).
    thetas: [Option<usize>; 3],
    sketches: Vec<(usize, SketchSet)>,
    builds: usize,
}

impl RsBackend {
    fn prepare(cfg: RsConfig, problem: &Problem<'_>) -> RsBackend {
        let mut backend = RsBackend {
            cfg,
            budget: problem.k,
            thetas: [None, None, None],
            sketches: Vec::new(),
            builds: 0,
        };
        backend.ensure_sketch(problem);
        backend
    }

    fn theta_for(&mut self, problem: &Problem<'_>) -> usize {
        let class = RuleClass::of(&problem.score);
        if let Some(theta) = self.thetas[class as usize] {
            return theta;
        }
        let theta = crate::rs::choose_theta(&problem.with_budget(self.budget), &self.cfg);
        self.thetas[class as usize] = Some(theta);
        theta
    }

    fn ensure_sketch(&mut self, problem: &Problem<'_>) -> usize {
        let theta = self.theta_for(problem);
        if !self.sketches.iter().any(|(t, _)| *t == theta) {
            let sketch = sketch_theta(problem, &self.cfg, theta);
            self.builds += 1;
            self.sketches.push((theta, sketch));
        }
        theta
    }

    fn sketch(&self, theta: usize) -> &SketchSet {
        &self
            .sketches
            .iter()
            .find(|(t, _)| *t == theta)
            .expect("sketch built by ensure_sketch")
            .1
    }
}

impl<'a> PreparedBackend<'a> for RsBackend {
    fn heap_bytes(&self) -> usize {
        self.sketches.iter().map(|(_, s)| s.heap_bytes()).sum()
    }

    fn artifact_builds(&self) -> usize {
        self.builds
    }

    fn greedy(
        &mut self,
        problem: &Problem<'a>,
        others: Option<&OpinionMatrix>,
    ) -> Result<Vec<Node>> {
        let theta = self.ensure_sketch(problem);
        let cand = problem.instance.candidate(problem.target);
        let mut sketch = self.sketch(theta).clone();
        for &s in &cand.fixed_seeds {
            sketch.add_seed(s);
        }
        Ok(crate::greedy::greedy_on_estimate(
            &mut sketch,
            problem.k,
            &problem.score,
            others,
            problem.target,
        ))
    }

    fn greedy_masked_cumulative(
        &mut self,
        problem: &Problem<'a>,
        mask: &[bool],
        _others: Option<&OpinionMatrix>,
    ) -> Result<Vec<Node>> {
        let theta = self.ensure_sketch(problem);
        let cand = problem.instance.candidate(problem.target);
        let mut sketch = self.sketch(theta).clone();
        for &s in &cand.fixed_seeds {
            sketch.add_seed(s);
        }
        Ok(crate::greedy::greedy_masked_cumulative(
            &mut sketch,
            problem.k,
            mask,
        ))
    }

    fn supports_sandwich(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use vom_diffusion::Instance;
    use vom_graph::builder::graph_from_edges;

    fn instance() -> Instance {
        let g = Arc::new(graph_from_edges(4, &[(0, 2, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap());
        let b = OpinionMatrix::from_rows(vec![
            vec![0.40, 0.80, 0.60, 0.90],
            vec![0.35, 0.75, 1.00, 0.80],
        ])
        .unwrap();
        Instance::shared(g, b, vec![0.0, 0.0, 0.5, 0.5]).unwrap()
    }

    #[test]
    fn prepare_once_serves_every_budget_and_rule() {
        let inst = instance();
        let spec = Problem::new(&inst, 0, 2, 1, ScoringFunction::Cumulative).unwrap();
        let mut prepared = Engine::rs_default().prepare(&spec).unwrap();
        // Budget 1, cumulative: node 0 (Table I).
        let r1 = prepared.select_k(1).unwrap();
        assert_eq!(r1.seeds, vec![0]);
        // Same prepared engine, plurality rule: node 2 wins.
        let q = Query::new(1, ScoringFunction::Plurality, 0);
        let r2 = prepared.select(&q).unwrap();
        assert_eq!(r2.exact_score, 4.0);
        assert!(r2.sandwich.is_some());
        // Budget 2 still within the prepared budget.
        assert_eq!(prepared.select_k(2).unwrap().seeds.len(), 2);
    }

    #[test]
    fn select_rejects_over_budget_and_wrong_target() {
        let inst = instance();
        let spec = Problem::new(&inst, 0, 1, 1, ScoringFunction::Cumulative).unwrap();
        let mut prepared = Engine::Dm.prepare(&spec).unwrap();
        assert!(matches!(
            prepared.select_k(2),
            Err(CoreError::BudgetExceedsPrepared { k: 2, budget: 1 })
        ));
        let q = Query::new(1, ScoringFunction::Cumulative, 1);
        assert!(matches!(
            prepared.select(&q),
            Err(CoreError::PreparedTargetMismatch {
                requested: 1,
                prepared: 0
            })
        ));
    }

    #[test]
    fn build_stats_track_artifacts() {
        let inst = instance();
        let spec = Problem::new(&inst, 0, 1, 1, ScoringFunction::Cumulative).unwrap();
        let mut prepared = Engine::rw_default().prepare(&spec).unwrap();
        let stats = prepared.build_stats();
        assert_eq!(stats.artifact_builds, 1);
        assert!(stats.heap_bytes > 0);
        // Re-querying the prepared class builds nothing new.
        prepared.select_k(1).unwrap();
        prepared.select_k(1).unwrap();
        assert_eq!(prepared.build_stats().artifact_builds, 1);
        // A competitive query lazily adds that class's arena, once.
        let q = Query::new(1, ScoringFunction::Plurality, 0);
        prepared.select(&q).unwrap();
        prepared.select(&q).unwrap();
        assert_eq!(prepared.build_stats().artifact_builds, 2);
    }

    #[test]
    fn dm_holds_no_estimator_memory() {
        let inst = instance();
        let spec = Problem::new(&inst, 0, 1, 1, ScoringFunction::Plurality).unwrap();
        let mut prepared = Engine::Dm.prepare(&spec).unwrap();
        let res = prepared.select_k(1).unwrap();
        assert_eq!(res.estimator_heap_bytes, 0);
        assert_eq!(res.exact_score, 4.0);
    }
}
